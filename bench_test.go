// Benchmarks, one per reproduced table/figure of the paper (see
// EXPERIMENTS.md for the experiment index E1–E10). The paper itself reports
// no wall-clock numbers — it is a foundations paper — so these benches
// provide the performance harness its future-work section calls for:
// regenerating each artifact, timing the machinery that produces it, and
// measuring the optimizer's effect with the simulated stratum/DBMS stack.
package tqp_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/coord"
	"tqp/internal/core"
	"tqp/internal/cost"
	"tqp/internal/datagen"
	"tqp/internal/enum"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/props"
	"tqp/internal/relation"
	"tqp/internal/rules"
	"tqp/internal/schema"
	"tqp/internal/server"
	"tqp/internal/shard"
	"tqp/internal/stratum"
	"tqp/internal/testutil"
	"tqp/internal/tsql"
	"tqp/internal/value"
)

// BenchmarkE1_Figure1Query evaluates the running example's initial plan on
// the Figure 1 database (the artifact itself is pinned by tests).
func BenchmarkE1_Figure1Query(b *testing.B) {
	c := catalog.Paper()
	plan := catalog.PaperInitialPlan(c)
	ev := eval.New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2_Figure2Plans compares the initial plan of Figure 2(a) against
// the optimized plan of Figure 6(b) in the layered executor, across
// database scales: the shape the paper argues for (temporal operations in
// the stratum, sort in the DBMS) must win, increasingly with size.
func BenchmarkE2_Figure2Plans(b *testing.B) {
	for _, emps := range []int{20, 100, 400} {
		c := datagen.EmployeeDB(datagen.EmployeeSpec{
			Employees: emps, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
		for _, pl := range []struct {
			name string
			plan algebra.Node
		}{
			{"initial", catalog.PaperInitialPlan(c)},
			{"optimized", catalog.PaperOptimizedPlan(c)},
		} {
			b.Run(fmt.Sprintf("emps=%d/%s", emps, pl.name), func(b *testing.B) {
				ex := stratum.New(c, 1)
				var units float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, tr, err := ex.Execute(pl.plan)
					if err != nil {
						b.Fatal(err)
					}
					units = tr.TotalUnits()
				}
				b.ReportMetric(units, "simunits")
			})
		}
	}
}

// BenchmarkE3_RdupVsRdupT times regular vs temporal duplicate elimination
// vs coalescing (Figure 3's three relations) on generated data.
func BenchmarkE3_RdupVsRdupT(b *testing.B) {
	for _, rows := range []int{100, 1000} {
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: rows, Values: rows / 5, DupFrac: 0.2, AdjFrac: 0.3, Seed: 7,
		})
		src := eval.MapSource{"R": r}
		node := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
		for _, op := range []struct {
			name string
			plan algebra.Node
		}{
			{"rdup", algebra.NewRdup(node)},
			{"rdupT", algebra.NewTRdup(node)},
			{"coalT", algebra.NewCoal(node)},
		} {
			b.Run(fmt.Sprintf("rows=%d/%s", rows, op.name), func(b *testing.B) {
				ev := eval.New(src)
				for i := 0; i < b.N; i++ {
					if _, err := ev.Eval(op.plan); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE4_OperationTable times every operation of Table 1 on a fixed
// workload — the per-row behavioural claims are verified by tests and by
// cmd/tqbench -run E4.
func BenchmarkE4_OperationTable(b *testing.B) {
	l := datagen.Temporal(datagen.TemporalSpec{Rows: 300, Values: 40, DupFrac: 0.15, AdjFrac: 0.3, Seed: 1})
	r := datagen.Temporal(datagen.TemporalSpec{Rows: 300, Values: 40, DupFrac: 0.15, AdjFrac: 0.3, Seed: 2})
	src := eval.MapSource{"L": l, "R": r}
	ln := algebra.NewRel("L", l.Schema(), algebra.BaseInfo{})
	rn := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
	pred := expr.Compare(expr.Lt, expr.Column("Grp"), expr.Literal(value.Int(20)))
	byName := relation.OrderSpec{relation.Key("Name")}
	aggs := []expr.Aggregate{{Func: expr.CountAll, As: "cnt"}}
	ops := []struct {
		name string
		plan algebra.Node
	}{
		{"select", algebra.NewSelect(pred, ln)},
		{"project", algebra.NewProjectCols(ln, "Name", "T1", "T2")},
		{"unionall", algebra.NewUnionAll(ln, rn)},
		{"union", algebra.NewUnion(ln, rn)},
		{"unionT", algebra.NewTUnion(ln, rn)},
		{"product", algebra.NewProduct(ln, rn)},
		{"productT", algebra.NewTProduct(ln, rn)},
		{"diff", algebra.NewDiff(ln, rn)},
		{"diffT", algebra.NewTDiff(ln, rn)},
		{"aggr", algebra.NewAggregate([]string{"Name"}, aggs, ln)},
		{"aggrT", algebra.NewTAggregate([]string{"Name"}, aggs, ln)},
		{"rdup", algebra.NewRdup(ln)},
		{"rdupT", algebra.NewTRdup(ln)},
		{"coalT", algebra.NewCoal(ln)},
		{"sort", algebra.NewSort(byName, ln)},
	}
	for _, op := range ops {
		b.Run(op.name, func(b *testing.B) {
			ev := eval.New(src)
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(op.plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5_EquivalenceChecks times the six equivalence checks of
// Section 3 (Theorem 3.1's lattice is verified by tests).
func BenchmarkE5_EquivalenceChecks(b *testing.B) {
	a := datagen.Temporal(datagen.TemporalSpec{Rows: 400, Values: 50, DupFrac: 0.2, AdjFrac: 0.3, Seed: 3})
	c := a.Clone()
	for _, t := range equiv.All() {
		b.Run(t.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := equiv.Check(t, a, c); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6_RuleApplication times matching and applying the whole rule
// catalog of Figure 4/Section 4 across the paper plan's locations.
func BenchmarkE6_RuleApplication(b *testing.B) {
	c := catalog.Paper()
	plan := catalog.PaperInitialPlan(c)
	st, err := props.InferStates(plan)
	if err != nil {
		b.Fatal(err)
	}
	all := rules.All()
	paths := algebra.Paths(plan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, path := range paths {
			node, _ := algebra.NodeAt(plan, path)
			for _, rule := range all {
				rule.Apply(node, st)
			}
		}
	}
}

// BenchmarkE7_PropertyInference times the Table 2 property inference
// (states + the three booleans) over the paper plans.
func BenchmarkE7_PropertyInference(b *testing.B) {
	c := catalog.Paper()
	plans := []algebra.Node{
		catalog.PaperInitialPlan(c),
		catalog.PaperIntermediatePlan(c),
		catalog.PaperOptimizedPlan(c),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range plans {
			if _, err := props.Infer(p, equiv.ResultList, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE8_Enumeration times the Figure 5 algorithm and reports the plan
// count; sub-benches vary the result type, which changes the admissible
// rule applications (Definition 5.1).
func BenchmarkE8_Enumeration(b *testing.B) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	for _, rt := range []equiv.ResultType{equiv.ResultList, equiv.ResultMultiset, equiv.ResultSet} {
		b.Run(rt.String(), func(b *testing.B) {
			var plans int
			for i := 0; i < b.N; i++ {
				res, err := enum.Enumerate(initial, enum.Config{ResultType: rt})
				if err != nil {
					b.Fatal(err)
				}
				plans = len(res.Plans)
			}
			b.ReportMetric(float64(plans), "plans")
		})
	}
}

// BenchmarkE9_StratumPartitioning measures the end-to-end optimizer on
// scaled databases: parse → enumerate → cost → execute best, reporting the
// simulated speedup of the chosen plan over the initial one.
func BenchmarkE9_StratumPartitioning(b *testing.B) {
	for _, emps := range []int{20, 100} {
		b.Run(fmt.Sprintf("emps=%d", emps), func(b *testing.B) {
			c := datagen.EmployeeDB(datagen.EmployeeSpec{
				Employees: emps, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
			})
			opt := core.New(c)
			var speedup float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plans, err := opt.OptimizeSQL(paperSQL)
				if err != nil {
					b.Fatal(err)
				}
				_, trI, err := stratum.New(c, 1).Execute(plans.Initial)
				if err != nil {
					b.Fatal(err)
				}
				_, trB, err := stratum.New(c, 1).Execute(plans.Best)
				if err != nil {
					b.Fatal(err)
				}
				speedup = trI.TotalUnits() / trB.TotalUnits()
			}
			b.ReportMetric(speedup, "simspeedup")
		})
	}
}

// BenchmarkE10_OptimizerAblation measures enumeration restricted to ≡L
// rules only versus the full catalog: the weak-equivalence types are what
// buy the optimizer its room to move.
func BenchmarkE10_OptimizerAblation(b *testing.B) {
	c := catalog.Paper()
	q, err := tsql.Parse(paperSQL)
	if err != nil {
		b.Fatal(err)
	}
	initial, err := q.Plan(c)
	if err != nil {
		b.Fatal(err)
	}
	model := cost.New(c, cost.DefaultParams())
	variants := []struct {
		name  string
		rules []rules.Rule
	}{
		{"full", rules.All()},
		{"list-only", listOnly(rules.All())},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				res, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList, Rules: v.rules})
				if err != nil {
					b.Fatal(err)
				}
				_, bc, err := model.Best(res.Plans)
				if err != nil {
					b.Fatal(err)
				}
				best = bc
			}
			b.ReportMetric(best, "bestcost")
		})
	}
}

// benchRecord is one engine measurement of the machine-readable bench
// output: which benchmark, at which scale, on which engine, how fast, and
// how allocation-hungry (B/op and allocs/op feed the CI allocation gate —
// hardware-independent counts that compare raw across machines).
type benchRecord struct {
	Bench       string  `json:"bench"`
	Rows        int     `json:"rows"`
	Engine      string  `json:"engine"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	OutRows     int     `json:"out_rows"`
}

// memSnap is an allocation-counter snapshot bracketing a benchmark loop.
type memSnap struct{ mallocs, bytes uint64 }

func snapMem() memSnap {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memSnap{ms.Mallocs, ms.TotalAlloc}
}

// since returns the per-op allocation deltas accumulated after m0.
func (m0 memSnap) since(n int) (bPerOp, allocsPerOp float64) {
	m1 := snapMem()
	if n <= 0 {
		return 0, 0
	}
	return float64(m1.bytes-m0.bytes) / float64(n), float64(m1.mallocs-m0.mallocs) / float64(n)
}

// benchRecords accumulates engine measurements across the benchmark run;
// TestMain writes them to the file named by BENCH_JSON (the CI bench smoke
// sets BENCH_engines.json), giving the perf trajectory a machine-readable
// artifact per commit. Benchmarks run sequentially, so no locking.
var benchRecords []benchRecord

// TestMain writes the collected engine benchmark records after the run.
// Without -bench (or without BENCH_JSON in the environment) there is
// nothing to write and the run is a plain test run.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && len(benchRecords) > 0 {
		data, err := json.MarshalIndent(benchRecords, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: writing %s: %v\n", path, err)
			if code == 0 {
				code = 1
			}
		} else {
			fmt.Fprintf(os.Stderr, "bench: wrote %d records to %s\n", len(benchRecords), path)
		}
	}
	os.Exit(code)
}

// recordEngineBench times the benchmark loop wall-clock and appends one
// record; ns/op and the allocation metrics are measured directly so the
// record does not depend on testing internals.
func recordEngineBench(bench string, rows int, engine string, elapsed time.Duration, n, outRows int, bPerOp, allocsPerOp float64) {
	if n <= 0 {
		return
	}
	benchRecords = append(benchRecords, benchRecord{
		Bench: bench, Rows: rows, Engine: engine,
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(n),
		BPerOp:  bPerOp, AllocsPerOp: allocsPerOp,
		OutRows: outRows,
	})
}

// BenchmarkEngines pits the physical engines head-to-head on the
// acceptance pipeline — equijoin ⋈ᵀ (hash join vs pair loop), rdupᵀ and
// coalᵀ (hash value-partitioning vs global quadratic scans) — over datagen
// relations at n ∈ {1k, 10k, 100k, 1M} probe rows against a 256-row build
// side. The exec-novec leg runs the same tuple-at-a-time operators with
// the columnar batch pipeline disabled, so exec vs exec-novec at each
// scale is the measured value of vectorization. The reference evaluator
// sits out the 1M leg (its pair-loop join is quadratic there). The ns/op
// ratio between the reference and exec sub-benchmarks at each scale is the
// speedup trajectory; the exec engines' results are additionally asserted
// list-identical to the reference's at the smallest scale (the
// differential suite covers the rest).
func BenchmarkEngines(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		l := datagen.Temporal(datagen.TemporalSpec{
			Rows: n, Values: n / 4, TimeRange: 400, MaxPeriod: 20, Seed: 11})
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: 256, Values: n / 4, TimeRange: 400, MaxPeriod: 20, Seed: 12})
		src := eval.MapSource{"L": l, "R": r}
		ln := algebra.NewRel("L", l.Schema(), algebra.BaseInfo{})
		rn := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
		pred := expr.Compare(expr.Eq, expr.Column("1.Grp"), expr.Column("2.Grp"))
		plan := algebra.NewCoal(algebra.NewTRdup(algebra.NewTJoin(pred, ln, rn)))

		// Sorted clones drive the merge leg: both sides sorted and declared
		// on the join key, so the engine compiles the merge join on the same
		// pipeline — the columnar merge path next to the hash legs.
		byGrp := relation.OrderSpec{relation.Key("Grp")}
		lm, rm := l.Clone(), r.Clone()
		for _, rel := range []*relation.Relation{lm, rm} {
			if err := rel.SortStable(byGrp); err != nil {
				b.Fatal(err)
			}
		}
		srcM := eval.MapSource{"L": lm, "R": rm}
		planM := algebra.NewCoal(algebra.NewTRdup(algebra.NewTJoin(pred,
			algebra.NewRel("L", lm.Schema(), algebra.BaseInfo{Order: byGrp}),
			algebra.NewRel("R", rm.Schema(), algebra.BaseInfo{Order: byGrp}))))

		engines := []struct {
			name string
			eng  eval.Engine
			plan algebra.Node
		}{
			{"reference", eval.New(src), plan},
			{"exec", exec.New(src), plan},
			{"exec-novec", exec.NewWith(src, exec.Options{NoColumnar: true}), plan},
			{"exec-merge", exec.New(srcM), planM},
			{"exec-par8", exec.NewWith(src, exec.Options{Parallelism: 8}), plan},
			{"exec-mem16M", exec.NewWith(src, exec.Options{MemoryBudget: 16 << 20}), plan},
		}
		if n == 1000 {
			want, err := engines[0].eng.Eval(plan)
			if err != nil {
				b.Fatal(err)
			}
			wantM, err := eval.New(srcM).Eval(planM)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range engines[1:] {
				got, err := e.eng.Eval(e.plan)
				if err != nil {
					b.Fatalf("engine %s eval failed: %v", e.name, err)
				}
				w := want
				if e.name == "exec-merge" {
					w = wantM
				}
				if !got.EqualAsList(w) {
					b.Fatalf("%s and reference disagree on the benchmark plan", e.name)
				}
			}
		}
		for _, e := range engines {
			if n == 1000000 && e.name == "reference" {
				continue
			}
			b.Run(fmt.Sprintf("n=%d/%s", n, e.name), func(b *testing.B) {
				var rows int
				m0 := snapMem()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					out, err := e.eng.Eval(e.plan)
					if err != nil {
						b.Fatal(err)
					}
					rows = out.Len()
				}
				elapsed := time.Since(start)
				bPerOp, allocsPerOp := m0.since(b.N)
				recordEngineBench("engines", n, e.name, elapsed, b.N, rows, bPerOp, allocsPerOp)
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkColumnar isolates the columnar batch pipeline on its target
// shape — scan → filter → equijoin ⋈ᵀ → rdupᵀ → coalᵀ, every operator of
// which has a vectorized variant — at 100k and 1M probe rows. Unlike
// BenchmarkEngines (unfiltered inputs, arbitrary plans) this is the
// vectorization acceptance measurement: exec runs batch-at-a-time with
// selection vectors end to end, exec-novec runs the identical tuple
// operators, and the gap is the step-change the columnar refactor buys.
// Parity and non-vacuity (the columnar leg must actually compile vector
// operators) are asserted at the smaller scale.
func BenchmarkColumnar(b *testing.B) {
	for _, n := range []int{100000, 1000000} {
		l := datagen.Temporal(datagen.TemporalSpec{
			Rows: n, Values: n / 4, TimeRange: 400, MaxPeriod: 20, Seed: 11})
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: 256, Values: n / 4, TimeRange: 400, MaxPeriod: 20, Seed: 12})
		src := eval.MapSource{"L": l, "R": r}
		ln := algebra.NewRel("L", l.Schema(), algebra.BaseInfo{})
		rn := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
		// ~50% selective scan filter: Grp draws from [0, n/4).
		filtered := algebra.NewSelect(
			expr.Compare(expr.Lt, expr.Column("Grp"), expr.Literal(value.Int(int64(n/8)))), ln)
		pred := expr.Compare(expr.Eq, expr.Column("1.Grp"), expr.Column("2.Grp"))
		plan := algebra.NewCoal(algebra.NewTRdup(algebra.NewTJoin(pred, filtered, rn)))

		// The merge leg runs the same shape over join-key-sorted, declared
		// inputs so the merge join (and the batch paths behind it) compiles
		// instead of the hash join.
		byGrp := relation.OrderSpec{relation.Key("Grp")}
		lm, rm := l.Clone(), r.Clone()
		for _, rel := range []*relation.Relation{lm, rm} {
			if err := rel.SortStable(byGrp); err != nil {
				b.Fatal(err)
			}
		}
		srcM := eval.MapSource{"L": lm, "R": rm}
		planM := algebra.NewCoal(algebra.NewTRdup(algebra.NewTJoin(pred,
			algebra.NewSelect(
				expr.Compare(expr.Lt, expr.Column("Grp"), expr.Literal(value.Int(int64(n/8)))),
				algebra.NewRel("L", lm.Schema(), algebra.BaseInfo{Order: byGrp})),
			algebra.NewRel("R", rm.Schema(), algebra.BaseInfo{Order: byGrp}))))

		if n == 100000 {
			vec := exec.New(src)
			got, err := vec.Eval(plan)
			if err != nil {
				b.Fatal(err)
			}
			want, err := exec.NewWith(src, exec.Options{NoColumnar: true}).Eval(plan)
			if err != nil {
				b.Fatal(err)
			}
			if !got.EqualAsList(want) {
				b.Fatal("columnar and tuple engines disagree on the benchmark plan")
			}
			if st := vec.Stats(); st.VectorOps == 0 || st.VectorBatches == 0 {
				b.Fatalf("vacuous columnar benchmark: VectorOps=%d VectorBatches=%d", st.VectorOps, st.VectorBatches)
			}
			// The merge leg must really be the merge plan, columnar included.
			mrg := exec.New(srcM)
			gotM, err := mrg.Eval(planM)
			if err != nil {
				b.Fatal(err)
			}
			wantM, err := exec.NewWith(srcM, exec.Options{NoColumnar: true}).Eval(planM)
			if err != nil {
				b.Fatal(err)
			}
			if !gotM.EqualAsList(wantM) {
				b.Fatal("merge columnar and tuple engines disagree on the sorted benchmark plan")
			}
			if st := mrg.Stats(); st.MergeJoins == 0 || st.VectorOps == 0 {
				b.Fatalf("vacuous merge leg: MergeJoins=%d VectorOps=%d", st.MergeJoins, st.VectorOps)
			}
		}
		for _, e := range []struct {
			name string
			opts exec.Options
			src  eval.MapSource
			plan algebra.Node
		}{
			{"exec", exec.Options{}, src, plan},
			{"exec-novec", exec.Options{NoColumnar: true}, src, plan},
			{"exec-merge", exec.Options{}, srcM, planM},
			{"exec-par8", exec.Options{Parallelism: 8}, src, plan},
			{"exec-mem16M", exec.Options{MemoryBudget: 16 << 20}, src, plan},
		} {
			b.Run(fmt.Sprintf("n=%d/%s", n, e.name), func(b *testing.B) {
				var rows int
				m0 := snapMem()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					out, err := exec.NewWith(e.src, e.opts).Eval(e.plan)
					if err != nil {
						b.Fatal(err)
					}
					rows = out.Len()
				}
				elapsed := time.Since(start)
				bPerOp, allocsPerOp := m0.since(b.N)
				recordEngineBench("columnar", n, e.name, elapsed, b.N, rows, bPerOp, allocsPerOp)
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkMergeVsHash measures the merge operator family against the hash
// baseline on pre-sorted inputs: both relations sorted (and declared) on
// ⟨Name, Grp⟩, so the merge engine compiles a merge join, streaming
// group-at-a-time rdupᵀ/coalᵀ, and an elided top sort, while the hash-only
// engine (PR 1's operators) hashes everything and physically sorts. The
// reference evaluator joins for scale. Records land in BENCH_engines.json
// alongside BenchmarkEngines.
func BenchmarkMergeVsHash(b *testing.B) {
	byNameGrp := relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}
	for _, n := range []int{1000, 10000} {
		l := datagen.Temporal(datagen.TemporalSpec{
			Rows: n, Values: n / 4, TimeRange: 400, MaxPeriod: 20, Seed: 11})
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: 256, Values: n / 4, TimeRange: 400, MaxPeriod: 20, Seed: 12})
		for _, rel := range []*relation.Relation{l, r} {
			if err := rel.SortStable(byNameGrp); err != nil {
				b.Fatal(err)
			}
		}
		src := eval.MapSource{"L": l, "R": r}
		ln := algebra.NewRel("L", l.Schema(), algebra.BaseInfo{Order: byNameGrp})
		rn := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{Order: byNameGrp})
		pred := expr.Compare(expr.Eq, expr.Column("1.Name"), expr.Column("2.Name"))
		plan := algebra.NewSort(relation.OrderSpec{relation.Key("1.Name")},
			algebra.NewCoal(algebra.NewTRdup(algebra.NewTJoin(pred, ln, rn))))

		engines := []struct {
			name string
			eng  eval.Engine
		}{
			{"reference", eval.New(src)},
			{"exec-hash", exec.NewWith(src, exec.Options{NoMerge: true, NoSortElision: true})},
			{"exec-merge", exec.New(src)},
		}
		want, err := engines[0].eng.Eval(plan)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range engines[1:] {
			got, err := e.eng.Eval(plan)
			if err != nil {
				b.Fatal(err)
			}
			if !got.EqualAsList(want) {
				b.Fatalf("%s disagrees with the reference on the benchmark plan", e.name)
			}
		}
		for _, e := range engines {
			b.Run(fmt.Sprintf("n=%d/%s", n, e.name), func(b *testing.B) {
				var rows int
				m0 := snapMem()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					out, err := e.eng.Eval(plan)
					if err != nil {
						b.Fatal(err)
					}
					rows = out.Len()
				}
				elapsed := time.Since(start)
				bPerOp, allocsPerOp := m0.since(b.N)
				recordEngineBench("merge-vs-hash", n, e.name, elapsed, b.N, rows, bPerOp, allocsPerOp)
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkParallel extends E13's scaling curve to 1M rows and feeds
// BENCH_engines.json: the sequential engine (worker count 1) against the
// morsel-parallel engine at 2 and GOMAXPROCS workers on the acceptance
// pipeline (equijoin ⋈ᵀ → rdupᵀ → coalᵀ). On a multi-core runner the
// parallel ns/op at 100k+ rows is the speedup evidence; on one core the
// records document the exchange overhead instead. Parity across worker
// counts is asserted at the smallest scale (the differential suite covers
// the rest).
func BenchmarkParallel(b *testing.B) {
	workers := []int{1, 2}
	if w := runtime.GOMAXPROCS(0); w > 2 {
		workers = append(workers, w)
	}
	for _, n := range []int{10000, 100000, 1000000} {
		src, plan := testutil.ParallelPipeline(n)

		if n == 10000 {
			want, err := exec.New(src).Eval(plan)
			if err != nil {
				b.Fatal(err)
			}
			for _, w := range workers {
				got, err := exec.NewWith(src, exec.Options{Parallelism: w}).Eval(plan)
				if err != nil {
					b.Fatal(err)
				}
				if !got.EqualAsList(want) {
					b.Fatalf("parallelism %d disagrees with the sequential engine", w)
				}
			}
		}
		for _, w := range workers {
			name := "exec-seq"
			if w > 1 {
				name = fmt.Sprintf("exec-par%d", w)
			}
			opts := exec.Options{Parallelism: w}
			b.Run(fmt.Sprintf("n=%d/%s", n, name), func(b *testing.B) {
				var rows int
				m0 := snapMem()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					out, err := exec.NewWith(src, opts).Eval(plan)
					if err != nil {
						b.Fatal(err)
					}
					rows = out.Len()
				}
				elapsed := time.Since(start)
				bPerOp, allocsPerOp := m0.since(b.N)
				recordEngineBench("parallel", n, name, elapsed, b.N, rows, bPerOp, allocsPerOp)
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkSpill measures the memory-bounded engine against the unbudgeted
// one on the spill acceptance pipeline (rdupᵀ → coalᵀ over a single wide
// relation): at 100k and 1M rows a 16MB budget forces grace-hash spilling
// of both operators, so the records quantify the spill overhead (codec +
// temp-file I/O) next to the in-memory engine, and E14 charts the same
// curve across budgets. Results are asserted identical at the smallest
// scale; records land in BENCH_engines.json alongside the other suites.
func BenchmarkSpill(b *testing.B) {
	const budget = 16 << 20
	for _, n := range []int{100000, 1000000} {
		src, plan := testutil.SpillPipeline(n)
		if n == 100000 {
			want, err := exec.New(src).Eval(plan)
			if err != nil {
				b.Fatal(err)
			}
			eng := exec.NewWith(src, exec.Options{MemoryBudget: budget})
			got, err := eng.Eval(plan)
			if err != nil {
				b.Fatal(err)
			}
			if !got.EqualAsList(want) {
				b.Fatal("budgeted engine disagrees with the unbudgeted engine")
			}
			if eng.Stats().SpilledOps == 0 {
				b.Fatalf("vacuous spill benchmark: nothing spilled at %d bytes over %d rows", budget, n)
			}
		}
		for _, e := range []struct {
			name   string
			budget int64
		}{
			{"exec", 0},
			{"exec-mem16M", budget},
		} {
			opts := exec.Options{MemoryBudget: e.budget}
			b.Run(fmt.Sprintf("n=%d/%s", n, e.name), func(b *testing.B) {
				var rows int
				m0 := snapMem()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					out, err := exec.NewWith(src, opts).Eval(plan)
					if err != nil {
						b.Fatal(err)
					}
					rows = out.Len()
				}
				elapsed := time.Since(start)
				bPerOp, allocsPerOp := m0.since(b.N)
				recordEngineBench("spill", n, e.name, elapsed, b.N, rows, bPerOp, allocsPerOp)
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkServerThroughput measures the serving layer end to end: N
// concurrent TCP clients (1, 8, 32) firing the paper query at one server,
// with the plan cache disabled ("cold-cache": every statement re-parses
// and re-enumerates) versus enabled ("warm-cache": repeat statements skip
// straight to execution). Every client issues b.N queries, so each cell
// really runs at its client count regardless of -benchtime; the recorded
// ns_per_op is per query with that many clients in flight. The warm/cold
// ratio at each client count is the measured value of the plan cache — on
// this planning-dominant statement the beam enumeration is most of a
// query's cost, so warm should win by a wide margin. Records land in
// BENCH_engines.json ("server"; rows = client count) and gate in CI like
// the engine suites.
func BenchmarkServerThroughput(b *testing.B) {
	cat := catalog.Paper()
	for _, mode := range []struct {
		name      string
		cacheSize int
	}{
		{"cold-cache", -1}, // negative disables the cache
		{"warm-cache", 0},  // 0 selects the default capacity
	} {
		for _, clients := range []int{1, 8, 32} {
			b.Run(fmt.Sprintf("clients=%d/%s", clients, mode.name), func(b *testing.B) {
				srv, err := server.Start(server.Config{
					Catalog:       cat,
					CacheSize:     mode.cacheSize,
					MaxConcurrent: 8,
					Workers:       8,
					MaxQueue:      64,
					QueueTimeout:  time.Minute, // saturation is the point; never reject
				})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				cls := make([]*server.Client, clients)
				for i := range cls {
					cl, err := server.Dial(context.Background(), srv.Addr())
					if err != nil {
						b.Fatal(err)
					}
					defer cl.Close()
					cls[i] = cl
				}
				// Sanity (and the warm leg's cache fill): one query up front.
				r, _, err := cls[0].Query(context.Background(), paperSQL)
				if err != nil {
					b.Fatal(err)
				}
				rows := r.Len()

				b.ResetTimer()
				m0 := snapMem()
				start := time.Now()
				errc := make(chan error, clients)
				var wg sync.WaitGroup
				for _, cl := range cls {
					wg.Add(1)
					go func(cl *server.Client) {
						defer wg.Done()
						for j := 0; j < b.N; j++ {
							if _, _, err := cl.Query(context.Background(), paperSQL); err != nil {
								errc <- err
								return
							}
						}
					}(cl)
				}
				wg.Wait()
				elapsed := time.Since(start)
				close(errc)
				for err := range errc {
					b.Fatal(err)
				}
				queries := b.N * clients
				bPerOp, allocsPerOp := m0.since(queries)
				recordEngineBench("server", clients, mode.name, elapsed, queries, rows, bPerOp, allocsPerOp)
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}
}

// BenchmarkSharded measures the scale-out path end to end: an in-process
// fleet of 1, 2 and 4 shard servers behind the coordinator, firing the
// paper query at a ~1M-row synthetic employee database. Each iteration is
// one coordinated query — split, scatter over the wire protocol, per-shard
// fragment execution, deterministic gather, remainder — with the plan
// cache warm, so the cells chart how the same statement scales as shards
// are added. The 1-shard cell is the distribution overhead floor (all the
// wire and merge cost, none of the parallelism); on a multi-core host the
// speedup at 4 shards over 1 is the scale-out evidence, while on one core
// — as with BenchmarkParallel — the records document the distribution
// overhead instead (fleet and coordinator time-slice a single CPU, so
// extra shards cannot win wall-clock). Bit-identity against a single node is
// asserted at the 1-shard cell (the differential suite in internal/coord
// covers every fleet size); records land in BENCH_engines.json
// ("sharded"; rows = shard count) and gate in CI like the engine suites.
func BenchmarkSharded(b *testing.B) {
	db := datagen.EmployeeDB(datagen.EmployeeSpec{
		Employees: 143000, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
	})
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			m, err := shard.NewMapMode(db, n, shard.Auto)
			if err != nil {
				b.Fatal(err)
			}
			addrs := make([]string, n)
			for i := 0; i < n; i++ {
				sub, pos, err := m.Partition(i)
				if err != nil {
					b.Fatal(err)
				}
				srv, err := server.Start(server.Config{
					Addr: "127.0.0.1:0", Catalog: sub, ShardPositions: pos, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				addrs[i] = srv.Addr()
			}
			c, err := coord.New(context.Background(), coord.Config{
				Catalog: db, Addrs: addrs, Spec: exec.Spec(), Seed: 1,
				QueryTimeout: 10 * time.Minute,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			// Warm the plan cache; at 1 shard also pin bit-identity
			// against a single node planned with the same cost model.
			got, _, err := c.Query(context.Background(), paperSQL)
			if err != nil {
				b.Fatal(err)
			}
			if n == 1 {
				oracle := core.New(db, core.WithEngine(exec.Spec()), core.WithDBMSSeed(1),
					core.WithCostParams(core.ShardedCostParams(exec.Spec(), n)))
				prep, err := oracle.Prepare(paperSQL)
				if err != nil {
					b.Fatal(err)
				}
				want, _, err := oracle.ExecutePlan(prep.Plan, exec.Spec())
				if err != nil {
					b.Fatal(err)
				}
				if !want.EqualAsList(got) {
					b.Fatal("sharded result diverges from single node")
				}
			}
			rows := got.Len()

			b.ResetTimer()
			m0 := snapMem()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				out, _, err := c.Query(context.Background(), paperSQL)
				if err != nil {
					b.Fatal(err)
				}
				rows = out.Len()
			}
			elapsed := time.Since(start)
			bPerOp, allocsPerOp := m0.since(b.N)
			recordEngineBench("sharded", n, "coord", elapsed, b.N, rows, bPerOp, allocsPerOp)
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkStore measures the persistence layer end to end: cold open
// (manifest + every segment decoded back into memory), period scans over a
// 16-segment store at 100k and 1M rows, and append throughput (segment
// encode, fsync, manifest commit per batch). The scan legs bracket the
// period index: scan-full returns the resident relation (the no-work
// floor), scan-travel-wide is a travel scan whose period overlaps every
// fence (all rows filtered — the unindexed cost), and scan-indexed names
// one era, so the wide/indexed ns ratio is the measured value of fence
// pruning. The indexed leg asserts non-vacuity: exactly one segment
// survives the fences.
func BenchmarkStore(b *testing.B) {
	sch := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
	const segs = 16
	for _, n := range []int{100000, 1000000} {
		dir := b.TempDir()
		c, err := catalog.OpenDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		// segs eras with disjoint chronon fences, n/segs rows each.
		per := n / segs
		chunk := func(era int) [][]any {
			rows := make([][]any, per)
			base := era * 1000
			for j := range rows {
				start := base + j%990
				rows[j] = []any{fmt.Sprintf("v%d", j%257), start, start + 5}
			}
			return rows
		}
		if err := c.AddDisk("R", relation.MustFromRows(sch, chunk(0)), algebra.BaseInfo{}); err != nil {
			b.Fatal(err)
		}
		for era := 1; era < segs; era++ {
			if err := c.AppendRows("R", chunk(era)); err != nil {
				b.Fatal(err)
			}
		}

		b.Run(fmt.Sprintf("n=%d/cold-open", n), func(b *testing.B) {
			var rows int
			m0 := snapMem()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				cold, err := catalog.OpenDir(dir)
				if err != nil {
					b.Fatal(err)
				}
				r, err := cold.Resolve("R")
				if err != nil {
					b.Fatal(err)
				}
				rows = r.Len()
			}
			elapsed := time.Since(start)
			bPerOp, allocsPerOp := m0.since(b.N)
			recordEngineBench("store", n, "cold-open", elapsed, b.N, rows, bPerOp, allocsPerOp)
			b.ReportMetric(float64(rows), "rows")
		})

		scans := []struct {
			leg  string
			scan string
		}{
			{"scan-full", "R"},
			// A period overlapping every fence: no segment pruned, every
			// row filtered — what a travel scan costs without the index.
			{"scan-travel-wide", catalog.ScanName("R", &catalog.Travel{
				Kind: catalog.TravelPeriod, Start: 0, End: segs * 1000})},
			// One era's span: fences prune 15 of the 16 segments.
			{"scan-indexed", catalog.ScanName("R", &catalog.Travel{
				Kind: catalog.TravelPeriod, Start: 3000, End: 4000})},
		}
		for _, s := range scans {
			b.Run(fmt.Sprintf("n=%d/%s", n, s.leg), func(b *testing.B) {
				var rows int
				m0 := snapMem()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					r, scanned, skipped, err := c.ResolveScan(s.scan)
					if err != nil {
						b.Fatal(err)
					}
					if s.leg == "scan-indexed" && (scanned != 1 || skipped != segs-1) {
						b.Fatalf("indexed scan touched %d/%d segments — the fence pruning is vacuous", scanned, scanned+skipped)
					}
					rows = r.Len()
				}
				elapsed := time.Since(start)
				bPerOp, allocsPerOp := m0.since(b.N)
				// scan-full returns the resident relation pointer in
				// sub-microsecond time — far below the gate's noise floor —
				// so only the travel legs are recorded for benchdiff.
				if s.leg != "scan-full" {
					recordEngineBench("store", n, s.leg, elapsed, b.N, rows, bPerOp, allocsPerOp)
				}
				b.ReportMetric(float64(rows), "rows")
			})
		}
	}

	// Append throughput: one 4096-row batch per op through the full commit
	// protocol (segment write + fsync + manifest rename).
	b.Run("append-4k", func(b *testing.B) {
		const batch = 4096
		dir := b.TempDir()
		c, err := catalog.OpenDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		rows := make([][]any, batch)
		for j := range rows {
			rows[j] = []any{fmt.Sprintf("v%d", j%257), j % 990, j%990 + 5}
		}
		if err := c.AddDisk("R", relation.MustFromRows(sch, rows), algebra.BaseInfo{}); err != nil {
			b.Fatal(err)
		}
		m0 := snapMem()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if err := c.AppendRows("R", rows); err != nil {
				b.Fatal(err)
			}
		}
		elapsed := time.Since(start)
		bPerOp, allocsPerOp := m0.since(b.N)
		recordEngineBench("store", batch, "append", elapsed, b.N, batch, bPerOp, allocsPerOp)
		b.ReportMetric(float64(batch)*float64(b.N)/elapsed.Seconds(), "rows/s")
	})
}

const paperSQL = `VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`

func listOnly(rs []rules.Rule) []rules.Rule {
	var out []rules.Rule
	for _, r := range rs {
		if r.Type == equiv.List {
			out = append(out, r)
		}
	}
	return out
}
