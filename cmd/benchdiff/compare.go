package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// record mirrors the benchRecord rows of BENCH_engines.json (written by the
// repo-root TestMain collector). Allocation fields are optional: records
// from before the allocation gate carry none and are simply not alloc-gated.
type record struct {
	Bench       string  `json:"bench"`
	Rows        int     `json:"rows"`
	Engine      string  `json:"engine"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	OutRows     int     `json:"out_rows"`
}

// key names one benchmark series across files.
func (r record) key() string { return fmt.Sprintf("%s/n=%d/%s", r.Bench, r.Rows, r.Engine) }

// readRecords loads a benchmark-record file, rejecting empty record sets —
// an empty file means the bench smoke silently measured nothing, which the
// gate must surface, not mask. Repeated measurements of one benchmark
// (go test -count, and the sub-benchmark discovery pass that runs each sub
// once inside its parent) aggregate to their fastest ns/op — the minimum is
// the standard noise-floor estimator — and allocation metrics follow the
// same rule (GC timing jitters them upward, never downward).
func readRecords(path string) ([]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []record
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark records", path)
	}
	best := make(map[string]int)
	var out []record
	for _, r := range rs {
		i, ok := best[r.key()]
		if !ok {
			best[r.key()] = len(out)
			out = append(out, r)
			continue
		}
		if r.NsPerOp < out[i].NsPerOp {
			out[i].NsPerOp = r.NsPerOp
		}
		if r.BPerOp > 0 && (out[i].BPerOp == 0 || r.BPerOp < out[i].BPerOp) {
			out[i].BPerOp = r.BPerOp
		}
		if r.AllocsPerOp > 0 && (out[i].AllocsPerOp == 0 || r.AllocsPerOp < out[i].AllocsPerOp) {
			out[i].AllocsPerOp = r.AllocsPerOp
		}
	}
	return out, nil
}

// row is one comparison line of the report.
type row struct {
	Key        string
	Base, Cur  float64 // ns/op; 0 marks a side with no record
	Delta      float64 // normalized ns regression in percent (+ = slower)
	Regression bool    // ns gate breached

	BaseB, CurB           float64 // B/op; 0 marks no allocation record
	DeltaB                float64 // raw B/op regression in percent
	BaseAllocs, CurAllocs float64 // allocs/op
	DeltaAllocs           float64
	AllocRegression       bool // B/op or allocs/op gate breached
}

// result is the full comparison.
type result struct {
	Rows        []row
	Shared      int
	Calibration float64 // median current/baseline ratio (1 when not normalizing)
}

// Regressions returns the rows that breached either threshold.
func (r result) Regressions() []row {
	var out []row
	for _, w := range r.Rows {
		if w.Regression || w.AllocRegression {
			out = append(out, w)
		}
	}
	return out
}

// compare matches current records against the baseline by benchmark key.
// With normalize, each ns ratio is divided by the median ratio over the
// shared set — the machine-speed calibration — before the ns threshold
// applies, so a baseline committed on one machine still gates code
// regressions on another. Allocation metrics (B/op, allocs/op) are
// hardware-independent, so they gate raw against their own allocThreshold,
// with no calibration; a side missing allocation data (older records) is
// listed but never alloc-gated. One-sided benchmarks are listed but never
// regress.
func compare(base, cur []record, threshold, allocThreshold float64, normalize bool) result {
	bm := make(map[string]record, len(base))
	for _, r := range base {
		bm[r.key()] = r
	}
	cm := make(map[string]record, len(cur))
	var order []string
	for _, r := range cur {
		if _, dup := cm[r.key()]; !dup {
			order = append(order, r.key())
		}
		cm[r.key()] = r
	}
	var ratios []float64
	for _, k := range order {
		if b, ok := bm[k]; ok && b.NsPerOp > 0 {
			ratios = append(ratios, cm[k].NsPerOp/b.NsPerOp)
		}
	}
	calibration := 1.0
	if normalize && len(ratios) > 0 {
		sorted := append([]float64(nil), ratios...)
		sort.Float64s(sorted)
		calibration = sorted[len(sorted)/2]
		if len(sorted)%2 == 0 {
			calibration = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
		}
		if calibration <= 0 {
			calibration = 1
		}
	}
	res := result{Calibration: calibration}
	for _, k := range order {
		c := cm[k]
		b, ok := bm[k]
		w := row{Key: k, Cur: c.NsPerOp, CurB: c.BPerOp, CurAllocs: c.AllocsPerOp}
		if ok && b.NsPerOp > 0 {
			res.Shared++
			w.Base = b.NsPerOp
			w.Delta = (c.NsPerOp/b.NsPerOp/calibration - 1) * 100
			w.Regression = w.Delta > threshold
			if b.BPerOp > 0 && c.BPerOp > 0 {
				w.BaseB = b.BPerOp
				w.DeltaB = (c.BPerOp/b.BPerOp - 1) * 100
				w.AllocRegression = w.AllocRegression || w.DeltaB > allocThreshold
			}
			if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
				w.BaseAllocs = b.AllocsPerOp
				w.DeltaAllocs = (c.AllocsPerOp/b.AllocsPerOp - 1) * 100
				w.AllocRegression = w.AllocRegression || w.DeltaAllocs > allocThreshold
			}
		}
		res.Rows = append(res.Rows, w)
	}
	// Baseline-only benchmarks: shown so a vanished benchmark is visible,
	// but not gated (worker-count records legitimately follow the host).
	var missing []string
	for _, r := range base {
		if _, ok := cm[r.key()]; !ok {
			missing = append(missing, r.key())
		}
	}
	sort.Strings(missing)
	for _, k := range missing {
		res.Rows = append(res.Rows, row{Key: k, Base: bm[k].NsPerOp, BaseB: bm[k].BPerOp, BaseAllocs: bm[k].AllocsPerOp})
	}
	return res
}

// markdownTable renders the comparison for the job summary.
func markdownTable(res result, threshold, allocThreshold float64, normalize bool) string {
	var b strings.Builder
	b.WriteString("## Benchmark comparison\n\n")
	if normalize {
		fmt.Fprintf(&b, "Machine calibration (median current/baseline ratio): %.3f — ns deltas are relative to it; B/op and allocs/op compare raw (hardware-independent), gated at %.0f%%.\n\n", res.Calibration, allocThreshold)
		if res.Calibration < 0.5 || res.Calibration > 2 {
			// Normalization is blind to a slowdown that hits every
			// benchmark equally — a large drift is either a much
			// slower/faster machine or exactly that fleet-wide change.
			fmt.Fprintf(&b, "⚠️ Calibration is far from 1: either the runner's speed changed or *every* benchmark moved together — the per-benchmark gate cannot tell. Compare absolute ns/op above, and re-baseline if the runner changed.\n\n")
		}
	}
	b.WriteString("| benchmark | baseline ns/op | current ns/op | Δns (norm.) | Δ B/op | Δ allocs/op | status |\n")
	b.WriteString("|---|---:|---:|---:|---:|---:|---|\n")
	for _, w := range res.Rows {
		status := "ok"
		delta := fmt.Sprintf("%+.1f%%", w.Delta)
		deltaB, deltaAllocs := "—", "—"
		if w.BaseB > 0 && w.CurB > 0 {
			deltaB = fmt.Sprintf("%+.1f%%", w.DeltaB)
		}
		if w.BaseAllocs > 0 && w.CurAllocs > 0 {
			deltaAllocs = fmt.Sprintf("%+.1f%%", w.DeltaAllocs)
		}
		switch {
		case w.Base == 0:
			status, delta = "new", "—"
		case w.Cur == 0:
			status, delta = "baseline only", "—"
		case w.Regression && w.AllocRegression:
			status = fmt.Sprintf("**REGRESSION** (ns > %.0f%%, allocs > %.0f%%)", threshold, allocThreshold)
		case w.Regression:
			status = fmt.Sprintf("**REGRESSION** (ns > %.0f%%)", threshold)
		case w.AllocRegression:
			status = fmt.Sprintf("**REGRESSION** (allocs > %.0f%%)", allocThreshold)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s | %s |\n",
			w.Key, fmtNs(w.Base), fmtNs(w.Cur), delta, deltaB, deltaAllocs, status)
	}
	return b.String()
}

func fmtNs(ns float64) string {
	if ns == 0 {
		return "—"
	}
	return fmt.Sprintf("%.0f", ns)
}
