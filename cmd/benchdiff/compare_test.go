package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(bench string, rows int, engine string, ns float64) record {
	return record{Bench: bench, Rows: rows, Engine: engine, NsPerOp: ns}
}

// TestCompareFlagsRealRegression: one benchmark 2x slower while the rest of
// the suite is unchanged must breach a 25% gate, normalized or not.
func TestCompareFlagsRealRegression(t *testing.T) {
	base := []record{
		rec("engines", 1000, "exec", 100), rec("engines", 10000, "exec", 1000),
		rec("parallel", 10000, "exec-seq", 500), rec("parallel", 10000, "exec-par2", 400),
	}
	cur := append([]record(nil), base...)
	cur[2] = rec("parallel", 10000, "exec-seq", 1000) // 2x slower
	res := compare(base, cur, 25, 30, true)
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "parallel/n=10000/exec-seq" {
		t.Fatalf("expected exactly the doubled benchmark to regress, got %+v", regs)
	}
}

// TestCompareNormalizesMachineSpeed: a uniformly 3x-slower machine is a
// calibration shift, not a regression — no benchmark actually changed
// relative to the others.
func TestCompareNormalizesMachineSpeed(t *testing.T) {
	base := []record{
		rec("engines", 1000, "exec", 100), rec("engines", 10000, "exec", 1000),
		rec("merge-vs-hash", 1000, "exec-merge", 300), rec("parallel", 10000, "exec-seq", 500),
	}
	var cur []record
	for _, r := range base {
		r.NsPerOp *= 3
		cur = append(cur, r)
	}
	res := compare(base, cur, 25, 30, true)
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("a uniform slowdown must normalize away, got regressions %+v", regs)
	}
	if res.Calibration < 2.9 || res.Calibration > 3.1 {
		t.Fatalf("calibration should be ~3, got %.2f", res.Calibration)
	}
	// The same data without normalization must trip on every benchmark —
	// the raw mode exists for same-machine comparisons only.
	if regs := compare(base, cur, 25, 30, false).Regressions(); len(regs) != len(base) {
		t.Fatalf("raw mode should flag all %d benchmarks, got %d", len(base), len(regs))
	}
}

// TestCompareOneSidedBenchmarks: host-dependent records (a wider parallel
// engine on a bigger runner) appear as new/baseline-only rows and never
// gate.
func TestCompareOneSidedBenchmarks(t *testing.T) {
	base := []record{rec("parallel", 10000, "exec-seq", 500), rec("parallel", 10000, "exec-par8", 100)}
	cur := []record{rec("parallel", 10000, "exec-seq", 500), rec("parallel", 10000, "exec-par4", 150)}
	res := compare(base, cur, 25, 30, true)
	if regs := res.Regressions(); len(regs) != 0 {
		t.Fatalf("one-sided benchmarks must not regress, got %+v", regs)
	}
	table := markdownTable(res, 25, 30, true)
	if !strings.Contains(table, "new") || !strings.Contains(table, "baseline only") {
		t.Fatalf("table must mark one-sided rows:\n%s", table)
	}
	if res.Shared != 1 {
		t.Fatalf("exactly one shared benchmark expected, got %d", res.Shared)
	}
}

func recAlloc(bench string, rows int, engine string, ns, b, allocs float64) record {
	return record{Bench: bench, Rows: rows, Engine: engine, NsPerOp: ns, BPerOp: b, AllocsPerOp: allocs}
}

// TestCompareAllocGate: allocation counts are hardware-independent, so a
// B/op or allocs/op jump gates raw — even when the ns side is calm and even
// on a uniformly slower machine whose ns calibration is far from 1.
func TestCompareAllocGate(t *testing.T) {
	base := []record{
		recAlloc("engines", 1000, "exec", 100, 4096, 64),
		recAlloc("engines", 10000, "exec", 1000, 40960, 640),
		recAlloc("parallel", 10000, "exec-seq", 500, 20480, 320),
	}
	var cur []record
	for _, r := range base {
		r.NsPerOp *= 3 // slower machine: ns gate must stay calm
		cur = append(cur, r)
	}
	cur[1].BPerOp *= 2 // but this one also doubles its bytes per op
	res := compare(base, cur, 25, 30, true)
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "engines/n=10000/exec" || !regs[0].AllocRegression || regs[0].Regression {
		t.Fatalf("expected exactly the doubled-B/op benchmark to alloc-regress, got %+v", regs)
	}
	table := markdownTable(res, 25, 30, true)
	if !strings.Contains(table, "allocs > 30%") {
		t.Fatalf("table must name the allocation gate:\n%s", table)
	}

	// allocs/op regressions gate independently of B/op.
	cur2 := append([]record(nil), base...)
	cur2[2] = recAlloc("parallel", 10000, "exec-seq", 500, 20480, 500)
	if regs := compare(base, cur2, 25, 30, true).Regressions(); len(regs) != 1 || !regs[0].AllocRegression {
		t.Fatalf("allocs/op jump must gate, got %+v", regs)
	}
}

// TestCompareAllocMissingData: records without allocation fields (old
// baselines) list but never alloc-gate.
func TestCompareAllocMissingData(t *testing.T) {
	base := []record{rec("engines", 1000, "exec", 100)} // no alloc data
	cur := []record{recAlloc("engines", 1000, "exec", 100, 1<<30, 1<<20)}
	if regs := compare(base, cur, 25, 30, true).Regressions(); len(regs) != 0 {
		t.Fatalf("missing baseline alloc data must not gate, got %+v", regs)
	}
}

// TestReadRecordsRejectsEmpty: an empty record set is a silently-skipped
// bench run and must be an error, not a green gate.
func TestReadRecordsRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRecords(empty); err == nil {
		t.Fatal("empty record file must be rejected")
	}
	if _, err := readRecords(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing record file must be rejected")
	}
}

// TestReadRecordsTakesFastest: repeated measurements of one benchmark
// collapse to their minimum ns/op — the noise-floor comparison the
// cross-run gate depends on.
func TestReadRecordsTakesFastest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	data := `[
	 {"bench":"engines","rows":1000,"engine":"exec","ns_per_op":900,"b_per_op":5000,"allocs_per_op":70},
	 {"bench":"engines","rows":1000,"engine":"exec","ns_per_op":500,"b_per_op":6000,"allocs_per_op":90},
	 {"bench":"engines","rows":1000,"engine":"exec","ns_per_op":700,"b_per_op":4000,"allocs_per_op":60}
	]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	rs, err := readRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].NsPerOp != 500 {
		t.Fatalf("want one record at the 500ns floor, got %+v", rs)
	}
	if rs[0].BPerOp != 4000 || rs[0].AllocsPerOp != 60 {
		t.Fatalf("allocation metrics must take their own floors, got %+v", rs[0])
	}
}
