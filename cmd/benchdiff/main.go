// Command benchdiff is the CI benchmark-regression gate: it compares a
// fresh BENCH_engines.json (written by the bench smoke via TestMain's
// BENCH_JSON collector) against the committed BENCH_baseline.json, prints a
// markdown comparison table (appended to the GitHub job summary when
// GITHUB_STEP_SUMMARY is set), and exits non-zero when any shared
// benchmark regresses by more than a threshold.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline.json -current BENCH_engines.json [-threshold 25] [-alloc-threshold 30] [-normalize=false]
//
// Two gates run per shared benchmark. Wall-clock: because the baseline is
// committed from one machine and CI runs on another, raw ns/op comparisons
// would gate on hardware, not code; with -normalize (the default) every
// current/baseline ratio is divided by the median ratio across all shared
// benchmarks — the machine-speed calibration — so the gate fires on
// benchmarks that got slower *relative to the rest of the suite*, which is
// what a code regression looks like on any hardware. Allocations: B/op and
// allocs/op are hardware-independent counts, so they compare raw against
// -alloc-threshold with no calibration — an allocation regression is the
// same number on every machine. Benchmarks present on only one side (e.g.
// the GOMAXPROCS-wide parallel records, whose worker count follows the
// host) are reported but never fail either gate, as are records without
// allocation data (pre-gate baselines).
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline records")
	current := flag.String("current", "BENCH_engines.json", "freshly measured records")
	threshold := flag.Float64("threshold", 25, "maximum tolerated ns/op regression in percent")
	allocThreshold := flag.Float64("alloc-threshold", 30, "maximum tolerated B/op or allocs/op regression in percent")
	normalize := flag.Bool("normalize", true, "calibrate away machine speed via the median current/baseline ratio (ns gate only)")
	flag.Parse()

	base, err := readRecords(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := readRecords(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}

	result := compare(base, cur, *threshold, *allocThreshold, *normalize)
	table := markdownTable(result, *threshold, *allocThreshold, *normalize)
	fmt.Print(table)
	if summary := os.Getenv("GITHUB_STEP_SUMMARY"); summary != "" {
		f, err := os.OpenFile(summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprint(f, table)
			f.Close()
		}
	}
	if n := len(result.Regressions()); n > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed (ns > %.0f%% or allocs > %.0f%%)\n",
			n, *threshold, *allocThreshold)
		os.Exit(1)
	}
	fmt.Printf("\nbenchdiff: no regression beyond %.0f%% ns / %.0f%% allocs across %d shared benchmark(s)\n",
		*threshold, *allocThreshold, result.Shared)
}
