// Command tqbench regenerates every table and figure of the paper and
// prints each experiment's artifact with its verification status; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tqbench                  # run all experiments
//	tqbench -run E7          # run one experiment
//	tqbench -engine exec     # run on the streaming hash engine
//	tqbench -engine exec -parallel 8   # morsel-parallel engine, 8 workers
//	tqbench -engine exec -mem 16M      # memory-bounded engine, spilling past 16MB
//	tqbench -quiet           # status lines only
//
// -engine selects the physical engine for plan evaluation and stratum
// subplans ("reference", "exec" or "parallel"); -parallel sets the worker
// count of the morsel-parallel engine; -mem bounds the exec engine's
// blocking-operator working sets (grace-hash spilling to temp files; "64K",
// "16M", "1G" or plain bytes). All engines agree list-exactly at every
// budget, so the artifacts must come out identical either way — running
// with -engine exec (or parallel, or a -mem budget) doubles as an
// end-to-end differential check (E11 pins the engines head-to-head, E13
// the parallel scaling curve, E14 the throughput-vs-budget curve).
package main

import (
	"flag"
	"fmt"
	"os"

	"tqp/internal/core"
	"tqp/internal/exec"
	"tqp/internal/experiments"
)

func main() {
	run := flag.String("run", "", "run only the experiment with this id (E1..E14)")
	engine := flag.String("engine", "reference", "physical engine: 'reference', 'exec' or 'parallel'")
	parallel := flag.Int("parallel", 0, "worker count for the morsel-parallel engine (with -engine exec|parallel)")
	mem := flag.String("mem", "", "memory budget for the exec engine's blocking operators, e.g. 64K, 16MB, 1GB (0 or empty = unlimited)")
	quiet := flag.Bool("quiet", false, "print status lines only")
	flag.Parse()

	budget, err := core.ParseBytes(*mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqbench: -mem: %v\n", err)
		os.Exit(2)
	}
	spec, err := core.EngineFor(*engine, exec.Config{Parallelism: *parallel, MemoryBudget: budget})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqbench: %v\n", err)
		os.Exit(2)
	}

	failed := 0
	for _, r := range experiments.AllWith(spec) {
		if *run != "" && r.ID != *run {
			continue
		}
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("== %-4s [%s] %s\n", r.ID, status, r.Title)
		if !*quiet {
			fmt.Print(r.Body)
			fmt.Println()
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tqbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
