// Command tqbench regenerates every table and figure of the paper and
// prints each experiment's artifact with its verification status; see
// EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	tqbench            # run all experiments
//	tqbench -run E7    # run one experiment
//	tqbench -quiet     # status lines only
package main

import (
	"flag"
	"fmt"
	"os"

	"tqp/internal/experiments"
)

func main() {
	run := flag.String("run", "", "run only the experiment with this id (E1..E10)")
	quiet := flag.Bool("quiet", false, "print status lines only")
	flag.Parse()

	failed := 0
	for _, r := range experiments.All() {
		if *run != "" && r.ID != *run {
			continue
		}
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("== %-4s [%s] %s\n", r.ID, status, r.Title)
		if !*quiet {
			fmt.Print(r.Body)
			fmt.Println()
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "tqbench: %d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
