// Command tqcoord runs temporal SQL across shard servers: it plans each
// statement once against the full catalog, splits the chosen physical plan
// into per-shard fragments, scatters them over the wire protocol to the
// shards (tqserver -shard i/n instances holding slices of the same
// database), merges the partial results deterministically, and finishes
// the plan locally. Results are bit-identical to a single-node run over
// the same catalog, seed and engine.
//
// Point it at running shard servers:
//
//	tqserver -addr :7041 -db synth -shard 0/2 &
//	tqserver -addr :7042 -db synth -shard 1/2 &
//	tqcoord -shards 127.0.0.1:7041,127.0.0.1:7042 -db synth \
//	    -q "SELECT NAME FROM EMPLOYEE WHERE SALARY > 1500"
//
// or let it spawn an in-process fleet for a self-contained demo:
//
//	tqcoord -spawn 4 -db synth -q "..."
//
// The -db/-employees/-seed/-mode flags must match the shard servers'
// flags: both sides derive the shard map from the full catalog, and the
// bit-identity contract assumes they agree on the data and the seed.
// Without -q the command reads statements from stdin, one per line.
//
// With -addr the coordinator instead serves the wire protocol itself, so
// tqshell -connect (including \stats) works against it exactly as against
// a single tqserver; -metrics-addr adds a /metrics + /debug/pprof HTTP
// listener either way.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tqp"
	"tqp/internal/coord"
	"tqp/internal/core"
	"tqp/internal/exec"
	"tqp/internal/obs"
	"tqp/internal/server"
	"tqp/internal/shard"
)

func main() {
	var (
		shards    = flag.String("shards", "", "comma-separated shard server addresses (host:port,...)")
		spawn     = flag.Int("spawn", 0, "spawn this many in-process shard servers instead of -shards")
		db        = flag.String("db", "paper", "database: 'paper' or 'synth' (must match the shard servers)")
		employees = flag.Int("employees", 1000, "synthetic database size (with -db synth)")
		engine    = flag.String("engine", "exec", "engine for planning and the coordinator-side remainder: 'reference', 'exec' or 'parallel'")
		parallel  = flag.Int("parallel", 0, "worker count for the morsel-parallel engine")
		mem       = flag.String("mem", "", "memory budget for the exec engine's blocking operators, e.g. 64K, 16MB")
		mode        = flag.String("mode", "auto", "partitioning strategy: 'auto', 'hash' or 'range' (must match the shard servers' -shard-mode)")
		seed        = flag.Int64("seed", 1, "simulated DBMS order-nondeterminism seed (must match the shard servers)")
		query       = flag.String("q", "", "run one statement and exit (default: read statements from stdin)")
		addr        = flag.String("addr", "", "serve the coordinator over the wire protocol on this address instead of running statements (connect with tqshell -connect)")
		metricsAddr = flag.String("metrics-addr", "", "HTTP listen address for /metrics (Prometheus text) and /debug/pprof (empty = disabled)")
	)
	flag.Parse()
	if err := run(*shards, *spawn, *db, *employees, *engine, *parallel, *mem, *mode, *seed, *query, *addr, *metricsAddr, os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tqcoord: %v\n", err)
		os.Exit(1)
	}
}

func run(shards string, spawn int, db string, employees int, engine string, parallel int,
	mem, modeName string, seed int64, query, addr, metricsAddr string, in io.Reader, out io.Writer) error {
	budget, err := core.ParseBytes(mem)
	if err != nil {
		return err
	}
	spec, err := core.EngineFor(engine, exec.Config{Parallelism: parallel, MemoryBudget: budget})
	if err != nil {
		return err
	}
	mode, err := shard.ParseMode(modeName)
	if err != nil {
		return err
	}
	var cat *tqp.Catalog
	switch db {
	case "paper":
		cat = tqp.PaperCatalog()
	case "synth":
		cat = tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
			Employees: employees, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
	default:
		return fmt.Errorf("unknown database %q (want 'paper' or 'synth')", db)
	}

	var addrs []string
	switch {
	case spawn > 0 && shards != "":
		return fmt.Errorf("-shards and -spawn are mutually exclusive")
	case spawn > 0:
		fleet, fleetAddrs, err := spawnFleet(cat, spawn, mode, seed)
		if err != nil {
			return err
		}
		defer func() {
			for _, s := range fleet {
				s.Close()
			}
		}()
		addrs = fleetAddrs
		fmt.Fprintf(out, "tqcoord: spawned %d in-process shards\n", spawn)
	case shards != "":
		addrs = strings.Split(shards, ",")
	default:
		return fmt.Errorf("need -shards addr,... or -spawn N")
	}

	ctx := context.Background()
	c, err := coord.New(ctx, coord.Config{
		Catalog: cat, Addrs: addrs, Mode: mode, Spec: spec, Seed: seed,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(out, "tqcoord: coordinating %d shards over the %s database (engine %s)\n",
		len(addrs), db, spec.Name)

	if metricsAddr != "" {
		reg := obs.NewRegistry()
		c.RegisterMetrics(reg)
		bound, stopMetrics, err := obs.Serve(metricsAddr, reg)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer stopMetrics()
		fmt.Fprintf(out, "tqcoord: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", bound)
	}

	if addr != "" {
		// Listen mode: serve the coordinator over the wire protocol until
		// interrupted; any protocol client (tqshell -connect) works.
		f, err := c.Serve(addr)
		if err != nil {
			return err
		}
		defer f.Close()
		fmt.Fprintf(out, "tqcoord: serving the wire protocol on %s\n", f.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(out, "tqcoord: shutting down")
		return nil
	}

	if query != "" {
		return runOne(ctx, c, query, out)
	}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		sql := strings.TrimSpace(sc.Text())
		if sql == "" {
			continue
		}
		if err := runOne(ctx, c, sql, out); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	}
	st := c.Stats()
	fmt.Fprintf(out, "tqcoord: done — %d queries (%d cache hits), %d shard calls, %d retries, fragments %v\n",
		st.Queries, st.CacheHits, st.ShardCalls, st.Retries, st.Fragments)
	return sc.Err()
}

func runOne(ctx context.Context, c *coord.Coordinator, sql string, out io.Writer) error {
	result, meta, err := c.Query(ctx, sql)
	if err != nil {
		return err
	}
	fmt.Fprint(out, result)
	cache := "miss"
	if meta.CacheHit {
		cache = "hit"
	}
	fmt.Fprintf(out, "(%d tuples; %d plans considered; best cost %.0f; %d fragments x %d shards; plan cache %s)\n",
		result.Len(), meta.Plans, meta.BestCost, meta.Fragments, meta.Shards, cache)
	return nil
}

// spawnFleet starts n in-process shard servers on ephemeral ports, each
// holding its slice of the catalog's n-way partitioning.
func spawnFleet(cat *tqp.Catalog, n int, mode shard.Mode, seed int64) ([]*server.Server, []string, error) {
	m, err := shard.NewMapMode(cat, n, mode)
	if err != nil {
		return nil, nil, err
	}
	var fleet []*server.Server
	var addrs []string
	for i := 0; i < n; i++ {
		sub, pos, err := m.Partition(i)
		if err == nil {
			var s *server.Server
			s, err = server.Start(server.Config{
				Addr: "127.0.0.1:0", Catalog: sub, ShardPositions: pos, Seed: seed,
			})
			if err == nil {
				fleet = append(fleet, s)
				addrs = append(addrs, s.Addr())
				continue
			}
		}
		for _, s := range fleet {
			s.Close()
		}
		return nil, nil, fmt.Errorf("spawning shard %d: %w", i, err)
	}
	return fleet, addrs, nil
}
