// Command tqplan explains and optimizes temporal SQL statements over the
// paper's example database (or a scaled synthetic one): it prints the
// initial algebra expression with its property vectors (Figure 6 style),
// enumerates equivalent plans with the Figure 5 algorithm, picks the
// cheapest under the cost model, shows the SQL shipped to the DBMS, and
// optionally executes the plan.
//
// Usage:
//
//	tqplan [-db paper|synth] [-employees N] [-engine reference|exec] [-enumerate] [-execute] [-q query]
//
// The default query is the paper's running example. -engine selects the
// physical engine for stratum-assigned subplans: the reference evaluator
// (the executable specification) or the streaming hash-based exec engine;
// both produce identical results.
package main

import (
	"flag"
	"fmt"
	"os"

	"tqp"
	"tqp/internal/algebra"
	"tqp/internal/experiments"
)

func main() {
	db := flag.String("db", "paper", "database: 'paper' (Figure 1) or 'synth'")
	employees := flag.Int("employees", 100, "synthetic database size (with -db synth)")
	query := flag.String("q", experiments.PaperQuerySQL, "temporal SQL statement")
	engine := flag.String("engine", "reference", "physical engine for stratum subplans: 'reference' or 'exec'")
	enumerate := flag.Bool("enumerate", false, "list every enumerated plan")
	execute := flag.Bool("execute", true, "execute the chosen plan and print the result")
	flag.Parse()

	spec, err := tqp.ResolveEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(2)
	}

	var cat *tqp.Catalog
	switch *db {
	case "paper":
		cat = tqp.PaperCatalog()
	case "synth":
		cat = tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
			Employees: *employees, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
	default:
		fmt.Fprintf(os.Stderr, "tqplan: unknown database %q\n", *db)
		os.Exit(2)
	}

	opt := tqp.NewOptimizer(cat, tqp.WithEngine(spec))
	plans, err := opt.OptimizeSQL(*query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("query (%s result):\n  %s\n\n", plans.ResultType, *query)
	explainInitial, err := opt.Explain(plans.Initial, plans.ResultType)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("initial plan (cost %.0f), properties [OrderRequired DuplicatesRelevant PeriodPreserving]:\n%s\n",
		plans.InitialCost, explainInitial)

	if *enumerate {
		fmt.Printf("%d equivalent plans:\n", len(plans.All))
		for i, p := range plans.All {
			fmt.Printf("%4d  %s\n", i, algebra.Canonical(p))
		}
		fmt.Println()
	} else {
		fmt.Printf("enumerated %d equivalent plans\n\n", len(plans.All))
	}

	explainBest, err := opt.Explain(plans.Best, plans.ResultType)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chosen plan (cost %.0f, %.1fx cheaper):\n%s\n",
		plans.BestCost, plans.InitialCost/plans.BestCost, explainBest)

	if deriv := plans.Enumeration.Derivation(plans.Best); len(deriv) > 0 {
		fmt.Print("derivation: initial")
		for _, s := range deriv {
			fmt.Printf(" →[%s]", s.Rule)
		}
		fmt.Println()
	}

	if !*execute {
		return
	}
	result, trace, err := opt.Execute(plans.Best)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: execute: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nSQL shipped to the DBMS:")
	for _, sql := range trace.SQL {
		fmt.Printf("  ---\n%s\n", indent(sql))
	}
	fmt.Printf("\nengine %s: transferred %d tuples; simulated units: stratum=%.0f dbms=%.0f transfer=%.0f\n\n",
		trace.Engine, trace.TuplesTransferred, trace.StratumUnits, trace.DBMSUnits, trace.TransferUnits)
	fmt.Printf("result (%d tuples):\n%s", result.Len(), result)
}

func indent(s string) string {
	out := "  "
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			out += "  "
		}
	}
	return out
}
