// Command tqplan explains and optimizes temporal SQL statements over the
// paper's example database (or a scaled synthetic one): it prints the
// initial algebra expression with its property vectors (Figure 6 style),
// enumerates equivalent plans with the Figure 5 algorithm, picks the
// cheapest under the cost model, shows the physical plan with its
// merge/hash/elided operator choices (exec engine), the SQL shipped to the
// DBMS, and optionally executes the plan.
//
// Usage:
//
//	tqplan [-db paper|synth] [-employees N] [-engine reference|exec|parallel] [-parallel N] [-mem BYTES] [-sorted] [-enumerate] [-execute] [-q query]
//
// The default query is the paper's running example. -engine selects the
// physical engine for stratum-assigned subplans: the reference evaluator
// (the executable specification), the streaming hash/merge exec engine, or
// its morsel-parallel variant (-parallel sets the worker count); -mem
// bounds the exec engine's blocking-operator working sets, spilling
// grace-hash partitions to temp files past the budget ("64K", "16M", plain
// bytes); all produce identical results. -sorted pre-sorts every base relation on
// its value attributes and declares the order in the catalog, feeding the
// order-aware planner. With -engine exec the chosen plan is wrapped in an
// order-enforcing sort (the ≡SQL contract made physical), annotated with
// the per-node physical decision, and costed against the order-blind model
// — on the paper query the enforcer elides because the optimizer pushes the
// sort into the DBMS and every operation above preserves its order.
package main

import (
	"flag"
	"fmt"
	"os"

	"tqp"
	"tqp/internal/algebra"
	"tqp/internal/core"
	"tqp/internal/cost"
	"tqp/internal/experiments"
	"tqp/internal/physical"
	"tqp/internal/relation"
)

func main() {
	db := flag.String("db", "paper", "database: 'paper' (Figure 1) or 'synth'")
	employees := flag.Int("employees", 100, "synthetic database size (with -db synth)")
	query := flag.String("q", experiments.PaperQuerySQL, "temporal SQL statement")
	engine := flag.String("engine", "reference", "physical engine for stratum subplans: 'reference', 'exec' or 'parallel'")
	parallel := flag.Int("parallel", 0, "worker count for the morsel-parallel engine (with -engine exec|parallel)")
	mem := flag.String("mem", "", "memory budget for the exec engine's blocking operators, e.g. 64K, 16MB, 1GB (0 or empty = unlimited)")
	sorted := flag.Bool("sorted", false, "pre-sort base relations on their value attributes and declare the order")
	enumerate := flag.Bool("enumerate", false, "list every enumerated plan")
	execute := flag.Bool("execute", true, "execute the chosen plan and print the result")
	analyze := flag.Bool("analyze", false, "run EXPLAIN ANALYZE: execute and render per-node estimated vs actual cardinalities")
	flag.Parse()

	budget, err := core.ParseBytes(*mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: -mem: %v\n", err)
		os.Exit(2)
	}
	spec, err := tqp.ResolveEngineFor(*engine, tqp.EngineConfig{Parallelism: *parallel, MemoryBudget: budget})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(2)
	}

	var cat *tqp.Catalog
	switch *db {
	case "paper":
		cat = tqp.PaperCatalog()
	case "synth":
		cat = tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
			Employees: *employees, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
	default:
		fmt.Fprintf(os.Stderr, "tqplan: unknown database %q\n", *db)
		os.Exit(2)
	}
	if *sorted {
		if cat, err = sortedCatalog(cat); err != nil {
			fmt.Fprintf(os.Stderr, "tqplan: -sorted: %v\n", err)
			os.Exit(2)
		}
	}

	opt := tqp.NewOptimizer(cat, tqp.WithEngine(spec))

	if *analyze {
		// EXPLAIN ANALYZE mode: prepare, execute, and render the chosen
		// plan with per-node estimated vs actual cardinalities.
		prep, err := opt.Prepare(*query)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
			os.Exit(1)
		}
		an, err := opt.ExplainAnalyze(prep, spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(an.Text)
		if *execute {
			fmt.Printf("\nresult (%d tuples):\n%s", an.Result.Len(), an.Result)
		}
		return
	}

	plans, err := opt.OptimizeSQL(*query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("query (%s result):\n  %s\n\n", plans.ResultType, *query)
	explainInitial, err := opt.Explain(plans.Initial, plans.ResultType)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("initial plan (cost %.0f), properties [OrderRequired DuplicatesRelevant PeriodPreserving]:\n%s\n",
		plans.InitialCost, explainInitial)

	if *enumerate {
		fmt.Printf("%d equivalent plans:\n", len(plans.All))
		for i, p := range plans.All {
			fmt.Printf("%4d  %s\n", i, algebra.Canonical(p))
		}
		fmt.Println()
	} else {
		fmt.Printf("enumerated %d equivalent plans\n\n", len(plans.All))
	}

	explainBest, err := opt.Explain(plans.Best, plans.ResultType)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chosen plan (cost %.0f, %.1fx cheaper):\n%s\n",
		plans.BestCost, plans.InitialCost/plans.BestCost, explainBest)

	if deriv := plans.Enumeration.Derivation(plans.Best); len(deriv) > 0 {
		fmt.Print("derivation: initial")
		for _, s := range deriv {
			fmt.Printf(" →[%s]", s.Rule)
		}
		fmt.Println()
	}

	// With the exec engine the executed plan carries an explicit order
	// enforcer for the query's ORDER BY: it compiles away when the chosen
	// plan already delivers the order, and the physical annotation shows
	// it. The reference evaluator cannot elide, so it runs the chosen plan
	// as-is (its ≡SQL order guarantee is verified by the optimizer tests).
	final := plans.Best
	if spec.Streaming {
		final = core.EnforceOrder(plans.Best, plans.OrderBy)
		dec, err := physical.Annotate(final)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tqplan: annotate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nphysical plan (engine %s, order enforcer at the root):\n%s",
			spec.Name, algebra.Render(final, func(n algebra.Node, _ algebra.Path) string {
				return string(dec[n].Algo)
			}))
		sum := physical.Summarize(dec)
		awareParams := cost.ParamsFor(true)
		awareParams.Parallelism = spec.Parallelism
		awareParams.MemoryBudget = spec.MemoryBudget
		awareCost, err1 := cost.New(cat, awareParams).Cost(final)
		blindParams := cost.ParamsFor(true)
		blindParams.OrderBlind = true
		blindParams.Parallelism = spec.Parallelism
		blindParams.MemoryBudget = spec.MemoryBudget
		blindCost, err2 := cost.New(cat, blindParams).Cost(final)
		if err1 != nil || err2 != nil {
			fmt.Fprintf(os.Stderr, "tqplan: cost: %v %v\n", err1, err2)
			os.Exit(1)
		}
		fmt.Printf("physical summary: %d sort(s) elided, %d merge operator(s); order-aware cost %.0f vs order-blind %.0f (%.2fx)\n",
			sum.SortsElided, sum.MergeOps, awareCost, blindCost, blindCost/awareCost)
	}

	if !*execute {
		return
	}
	result, trace, err := opt.Execute(final)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqplan: execute: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nSQL shipped to the DBMS:")
	for _, sql := range trace.SQL {
		fmt.Printf("  ---\n%s\n", indent(sql))
	}
	fmt.Printf("\nengine %s: transferred %d tuples; simulated units: stratum=%.0f dbms=%.0f transfer=%.0f\n\n",
		trace.Engine, trace.TuplesTransferred, trace.StratumUnits, trace.DBMSUnits, trace.TransferUnits)
	fmt.Printf("result (%d tuples):\n%s", result.Len(), result)
}

// sortedCatalog rebuilds a catalog with every base relation physically
// sorted on its value attributes (non-time, in schema order) and the order
// declared in BaseInfo, so the static planner can reason from it. Other
// base flags (distinctness, coalescing) are preserved — sorting cannot
// invalidate them.
func sortedCatalog(cat *tqp.Catalog) (*tqp.Catalog, error) {
	out := tqp.NewCatalog()
	for _, name := range cat.Names() {
		e, err := cat.Entry(name)
		if err != nil {
			return nil, err
		}
		r := e.Rel.Clone()
		var spec relation.OrderSpec
		s := r.Schema()
		t1, t2 := s.TimeIndices()
		for i := 0; i < s.Len(); i++ {
			if i == t1 || i == t2 {
				continue
			}
			spec = append(spec, relation.Key(s.At(i).Name))
		}
		info := e.Info
		if len(spec) > 0 {
			if err := r.SortStable(spec); err != nil {
				return nil, err
			}
			info.Order = spec
		}
		if err := out.Add(name, r, info); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func indent(s string) string {
	out := "  "
	for _, c := range s {
		out += string(c)
		if c == '\n' {
			out += "  "
		}
	}
	return out
}
