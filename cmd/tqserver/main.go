// Command tqserver serves a catalog over TCP: the concurrent temporal-query
// service of internal/server (length-prefixed JSON protocol, per-connection
// sessions, shared plan cache, admission control). Connect with
//
//	tqshell -connect host:port
//
// or programmatically with server.Dial. SIGINT/SIGTERM shut the server
// down gracefully: in-flight queries drain, queued ones are rejected with
// the typed shutdown error, and no spill files are left behind.
//
// Flags mirror the other commands where they overlap (-db, -engine, -mem)
// and add the serving knobs: -max-concurrent, -queue, -queue-timeout,
// -workers, -cache, -spill-dir, -drain-timeout.
//
// Observability: -metrics-addr starts an HTTP listener exposing the
// Prometheus text endpoint /metrics and the pprof handlers under
// /debug/pprof/; -query-log writes one JSON record per query (see
// obs.QueryRecord), filtered by -slow-query-ms.
//
// With -shard i/n the server loads only slice i of an n-way partitioning
// of the database (derived deterministically from the full catalog; see
// internal/shard) and answers the coordinator's partial-plan requests over
// it. Start n such servers with the same -db/-seed/-shard-mode flags and
// point tqcoord at them.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tqp"
	"tqp/internal/core"
	"tqp/internal/obs"
	"tqp/internal/server"
	"tqp/internal/shard"
)

// openQueryLog resolves the -query-log flag value to a sink: "-" is
// stderr, anything else a file opened for append.
func openQueryLog(dest string) (obs.Sink, func(), error) {
	if dest == "-" {
		return obs.WriterSink(os.Stderr), func() {}, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return obs.WriterSink(f), func() { f.Close() }, nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7040", "TCP listen address (use :0 for an ephemeral port)")
		db           = flag.String("db", "paper", "database: 'paper' or 'synth'")
		dbDir        = flag.String("db-dir", "", "persistent store directory; seeded from -db on first open, read from disk after (empty = in-memory)")
		employees    = flag.Int("employees", 1000, "synthetic database size (with -db synth)")
		engine       = flag.String("engine", "exec", "default session engine: 'reference', 'exec' or 'parallel'")
		maxConc      = flag.Int("max-concurrent", 0, "concurrent query cap (0 = GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue length (0 = 4x the cap, negative = no queue)")
		queueTimeout = flag.Duration("queue-timeout", 2*time.Second, "admission queue deadline")
		workers      = flag.Int("workers", 0, "global worker pool divided across admitted queries (0 = GOMAXPROCS)")
		mem          = flag.String("mem", "", "global memory budget divided across admitted queries, e.g. 256M, 256MB (0 or empty = unlimited)")
		cacheSize    = flag.Int("cache", 256, "plan cache capacity in entries (negative disables caching)")
		spillDir     = flag.String("spill-dir", "", "directory for the budgeted engine's spill files (empty = system temp)")
		seed         = flag.Int64("seed", 1, "simulated DBMS order-nondeterminism seed")
		drain        = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown drain deadline")
		shardSpec    = flag.String("shard", "", "serve slice i of an n-way partitioning, as 'i/n' with 0 <= i < n (empty = whole database)")
		shardMode    = flag.String("shard-mode", "auto", "partitioning strategy with -shard: 'auto', 'hash' or 'range'")
		metricsAddr  = flag.String("metrics-addr", "", "HTTP listen address for /metrics (Prometheus text) and /debug/pprof (empty = disabled)")
		queryLog     = flag.String("query-log", "", "structured query log destination: a file path, or '-' for stderr (empty = disabled)")
		slowMS       = flag.Float64("slow-query-ms", 0, "with -query-log, log only queries at least this slow; errors always log (0 = every query)")
	)
	flag.Parse()

	cfg, err := buildConfig(*addr, *db, *dbDir, *employees, *engine, *maxConc, *queue, *queueTimeout,
		*workers, *mem, *cacheSize, *spillDir, *seed, *drain, *shardSpec, *shardMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqserver: %v\n", err)
		os.Exit(2)
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	if *queryLog != "" {
		sink, closeLog, err := openQueryLog(*queryLog)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tqserver: -query-log: %v\n", err)
			os.Exit(2)
		}
		defer closeLog()
		cfg.QueryLog = obs.NewQueryLog(sink, *slowMS)
	}
	srv, err := server.Start(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqserver: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("tqserver: serving the %s database on %s (engine %s, cap %d, cache %d)\n",
		*db, srv.Addr(), cfg.Engine, cfg.MaxConcurrent, cfg.CacheSize)
	if reg != nil {
		bound, stopMetrics, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tqserver: -metrics-addr: %v\n", err)
			srv.Close()
			os.Exit(2)
		}
		defer stopMetrics()
		fmt.Printf("tqserver: metrics on http://%s/metrics (pprof on /debug/pprof/)\n", bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("tqserver: shutting down (draining in-flight queries)")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "tqserver: %v\n", err)
		os.Exit(1)
	}
	cs, as := srv.CacheStats(), srv.AdmissionStats()
	fmt.Printf("tqserver: done — %d admitted, %d rejected; plan cache %d hits / %d misses / %d evictions\n",
		as.Admitted, as.Rejected, cs.Hits, cs.Misses, cs.Evictions)
}

// buildConfig resolves the flag surface to a server.Config; split out of
// main for testability.
func buildConfig(addr, db, dbDir string, employees int, engine string, maxConc, queue int,
	queueTimeout time.Duration, workers int, mem string, cacheSize int,
	spillDir string, seed int64, drain time.Duration, shardSpec, shardMode string) (server.Config, error) {
	budget, err := core.ParseBytes(mem)
	if err != nil {
		return server.Config{}, err
	}
	var cat *tqp.Catalog
	switch db {
	case "paper":
		cat = tqp.PaperCatalog()
	case "synth":
		cat = tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
			Employees: employees, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
	default:
		return server.Config{}, fmt.Errorf("unknown database %q (want 'paper' or 'synth')", db)
	}
	if dbDir != "" {
		// The in-memory catalog built above becomes the seed for a fresh
		// store; a restart on the same directory ignores it and reads disk.
		cat, err = tqp.OpenDiskCatalog(dbDir, cat)
		if err != nil {
			return server.Config{}, err
		}
	}
	var positions map[string][]int
	if shardSpec != "" {
		cat, positions, err = shardSlice(cat, shardSpec, shardMode)
		if err != nil {
			return server.Config{}, err
		}
	}
	return server.Config{
		Addr:           addr,
		Catalog:        cat,
		Engine:         engine,
		MaxConcurrent:  maxConc,
		MaxQueue:       queue,
		QueueTimeout:   queueTimeout,
		Workers:        workers,
		MemoryBudget:   budget,
		SpillDir:       spillDir,
		CacheSize:      cacheSize,
		Seed:           seed,
		DrainTimeout:   drain,
		ShardPositions: positions,
	}, nil
}

// shardSlice replaces the catalog with slice i of its n-way partitioning,
// parsed from an 'i/n' flag value.
func shardSlice(cat *tqp.Catalog, spec, modeName string) (*tqp.Catalog, map[string][]int, error) {
	var i, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil {
		return nil, nil, fmt.Errorf("bad -shard %q (want 'i/n', e.g. 0/4)", spec)
	}
	if n < 1 || i < 0 || i >= n {
		return nil, nil, fmt.Errorf("bad -shard %q (want 0 <= i < n)", spec)
	}
	mode, err := shard.ParseMode(modeName)
	if err != nil {
		return nil, nil, err
	}
	m, err := shard.NewMapMode(cat, n, mode)
	if err != nil {
		return nil, nil, err
	}
	return m.Partition(i)
}
