package main

import (
	"context"
	"testing"
	"time"

	"tqp/internal/server"
)

// TestBuildConfig pins the flag→Config resolution, including the -mem
// parse and the -db error path.
func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("127.0.0.1:0", "paper", "", 0, "exec", 4, 8,
		time.Second, 4, "64M", 32, "/tmp/spill", 7, 3*time.Second, "", "auto")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MemoryBudget != 64<<20 || cfg.MaxConcurrent != 4 || cfg.Seed != 7 || cfg.CacheSize != 32 {
		t.Fatalf("config: %+v", cfg)
	}
	if cfg.Catalog == nil || len(cfg.Catalog.Names()) == 0 {
		t.Fatal("paper catalog must resolve")
	}
	if _, err := buildConfig("x", "mystery", "", 0, "exec", 0, 0, 0, 0, "", 0, "", 1, 0, "", "auto"); err == nil {
		t.Fatal("unknown database must be rejected")
	}
	if _, err := buildConfig("x", "paper", "", 0, "exec", 0, 0, 0, 0, "not-bytes", 0, "", 1, 0, "", "auto"); err == nil {
		t.Fatal("bad -mem must be rejected")
	}
	// The synth catalog resolves and a server starts over it end to end.
	cfg, err = buildConfig("127.0.0.1:0", "synth", "", 10, "exec", 2, 0,
		time.Second, 2, "", 8, "", 1, time.Second, "", "auto")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := server.Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	r, _, err := cl.Query(context.Background(), "SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Fatal("synth catalog query returned nothing")
	}
	// An invalid default engine fails at Start, not at first query.
	cfg.Engine = "bogus"
	if _, err := server.Start(cfg); err == nil {
		t.Fatal("invalid default engine must fail Start")
	}
}

// TestBuildConfigShard pins the -shard i/n resolution: the catalog shrinks
// to one slice, the slice positions ride along, and the two slices of a
// 2-way split partition every relation.
func TestBuildConfigShard(t *testing.T) {
	whole, err := buildConfig("127.0.0.1:0", "synth", "", 10, "exec", 0, 0, 0, 0, "", 0, "", 1, 0, "", "auto")
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for i := 0; i < 2; i++ {
		cfg, err := buildConfig("127.0.0.1:0", "synth", "", 10, "exec", 0, 0, 0, 0, "", 0, "", 1, 0,
			// Both spellings of the same slice must agree.
			[]string{"0/2", "1/2"}[i], "auto")
		if err != nil {
			t.Fatal(err)
		}
		if cfg.ShardPositions == nil {
			t.Fatal("-shard must populate ShardPositions")
		}
		r, err := cfg.Catalog.Resolve("EMPLOYEE")
		if err != nil {
			t.Fatal(err)
		}
		if len(cfg.ShardPositions["EMPLOYEE"]) != r.Len() {
			t.Fatalf("positions (%d) must parallel the slice (%d)", len(cfg.ShardPositions["EMPLOYEE"]), r.Len())
		}
		total += r.Len()
	}
	rw, err := whole.Catalog.Resolve("EMPLOYEE")
	if err != nil {
		t.Fatal(err)
	}
	if total != rw.Len() {
		t.Fatalf("slices hold %d EMPLOYEE rows, whole database has %d", total, rw.Len())
	}
	for _, bad := range []string{"2/2", "-1/2", "0/0", "x/y", "1"} {
		if _, err := buildConfig("x", "paper", "", 0, "exec", 0, 0, 0, 0, "", 0, "", 1, 0, bad, "auto"); err == nil {
			t.Fatalf("bad -shard %q must be rejected", bad)
		}
	}
	if _, err := buildConfig("x", "paper", "", 0, "exec", 0, 0, 0, 0, "", 0, "", 1, 0, "0/2", "zigzag"); err == nil {
		t.Fatal("bad -shard-mode must be rejected")
	}
}
