// Command tqshell is an interactive shell over a catalog: type temporal SQL
// statements of the tsql dialect and get optimized, layered execution with
// plan and trace inspection.
//
// Meta commands:
//
//	\d           list relations
//	\d NAME      show a relation's contents
//	\plan SQL    explain without executing
//	\q           quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tqp"
	"tqp/internal/core"
)

func main() {
	db := flag.String("db", "paper", "database: 'paper' or 'synth'")
	employees := flag.Int("employees", 50, "synthetic database size (with -db synth)")
	engine := flag.String("engine", "reference", "physical engine for stratum subplans: 'reference', 'exec' or 'parallel'")
	parallel := flag.Int("parallel", 0, "worker count for the morsel-parallel engine (with -engine exec|parallel)")
	mem := flag.String("mem", "", "memory budget for the exec engine's blocking operators, e.g. 64K, 16M (0/empty = unlimited)")
	flag.Parse()

	budget, err := core.ParseBytes(*mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqshell: -mem: %v\n", err)
		os.Exit(2)
	}
	spec, err := tqp.ResolveEngineWith(*engine, *parallel, budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqshell: %v\n", err)
		os.Exit(2)
	}
	cat, err := openCatalog(*db, *employees)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqshell: %v\n", err)
		os.Exit(2)
	}
	replWith(cat, *db, spec, os.Stdin, os.Stdout)
}

// openCatalog resolves the -db flag to a catalog instance.
func openCatalog(db string, employees int) (*tqp.Catalog, error) {
	switch db {
	case "paper":
		return tqp.PaperCatalog(), nil
	case "synth":
		return tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
			Employees: employees, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		}), nil
	default:
		return nil, fmt.Errorf("unknown database %q", db)
	}
}

// repl runs the session loop over an explicit input and output, so a test
// can script a session through a pipe; the engine is the reference spec.
func repl(cat *tqp.Catalog, dbName string, in io.Reader, out io.Writer) {
	replWith(cat, dbName, tqp.EngineSpec{}, in, out)
}

// replWith is repl on an explicit physical engine (tqshell's -engine,
// -parallel and -mem flags resolve to one); a zero spec means the
// optimizer's default, the reference evaluator.
func replWith(cat *tqp.Catalog, dbName string, spec tqp.EngineSpec, in io.Reader, out io.Writer) {
	var opts []tqp.OptimizerOption
	if spec.New != nil {
		opts = append(opts, tqp.WithEngine(spec))
	}
	opt := tqp.NewOptimizer(cat, opts...)

	fmt.Fprintln(out, "tqp shell — temporal SQL over the", dbName, "database; \\q quits, \\d lists relations")
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "tqp> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\d`:
			for _, name := range cat.Names() {
				e, _ := cat.Entry(name)
				fmt.Fprintf(out, "  %-12s %s, %d tuples\n", name, e.Rel.Schema(), e.Rel.Len())
			}
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(line[3:])
			if r, err := cat.Resolve(name); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprint(out, r)
			}
		case strings.HasPrefix(line, `\plan `):
			explain(opt, strings.TrimSpace(line[6:]), out)
		default:
			runSQL(opt, line, out)
		}
		fmt.Fprint(out, "tqp> ")
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(out, "error: reading input:", err)
	}
}

func explain(opt *tqp.Optimizer, sql string, out io.Writer) {
	plans, err := opt.OptimizeSQL(sql)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	rendered, err := opt.Explain(plans.Best, plans.ResultType)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintf(out, "%d plans; best (cost %.0f, initial %.0f):\n%s",
		len(plans.All), plans.BestCost, plans.InitialCost, rendered)
}

func runSQL(opt *tqp.Optimizer, sql string, out io.Writer) {
	result, plans, trace, err := opt.Run(sql)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprint(out, result)
	fmt.Fprintf(out, "(%d tuples; %d plans considered; best cost %.0f; %d tuples transferred)\n",
		result.Len(), len(plans.All), plans.BestCost, trace.TuplesTransferred)
}
