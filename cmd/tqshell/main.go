// Command tqshell is an interactive shell over a catalog: type temporal SQL
// statements of the tsql dialect and get optimized, layered execution with
// plan and trace inspection.
//
// Meta commands:
//
//	\d           list relations
//	\d NAME      show a relation's contents
//	\plan SQL    explain without executing
//	\q           quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"tqp"
)

func main() {
	db := flag.String("db", "paper", "database: 'paper' or 'synth'")
	employees := flag.Int("employees", 50, "synthetic database size (with -db synth)")
	flag.Parse()

	var cat *tqp.Catalog
	switch *db {
	case "paper":
		cat = tqp.PaperCatalog()
	case "synth":
		cat = tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
			Employees: *employees, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
	default:
		fmt.Fprintf(os.Stderr, "tqshell: unknown database %q\n", *db)
		os.Exit(2)
	}
	opt := tqp.NewOptimizer(cat)

	fmt.Println("tqp shell — temporal SQL over the", *db, "database; \\q quits, \\d lists relations")
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("tqp> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\d`:
			for _, name := range cat.Names() {
				e, _ := cat.Entry(name)
				fmt.Printf("  %-12s %s, %d tuples\n", name, e.Rel.Schema(), e.Rel.Len())
			}
		case strings.HasPrefix(line, `\d `):
			name := strings.TrimSpace(line[3:])
			if r, err := cat.Resolve(name); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Print(r)
			}
		case strings.HasPrefix(line, `\plan `):
			explain(opt, strings.TrimSpace(line[6:]))
		default:
			runSQL(opt, line)
		}
		fmt.Print("tqp> ")
	}
}

func explain(opt *tqp.Optimizer, sql string) {
	plans, err := opt.OptimizeSQL(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	out, err := opt.Explain(plans.Best, plans.ResultType)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d plans; best (cost %.0f, initial %.0f):\n%s",
		len(plans.All), plans.BestCost, plans.InitialCost, out)
}

func runSQL(opt *tqp.Optimizer, sql string) {
	result, plans, trace, err := opt.Run(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Print(result)
	fmt.Printf("(%d tuples; %d plans considered; best cost %.0f; %d tuples transferred)\n",
		result.Len(), len(plans.All), plans.BestCost, trace.TuplesTransferred)
}
