// Command tqshell is an interactive shell for temporal SQL — local over an
// in-process catalog, or remote against a tqserver instance
// (-connect host:port), with the same REPL either way.
//
// Meta commands:
//
//	\d                list relations (local mode)
//	\d NAME           show a relation's contents (local mode)
//	\plan SQL         explain without executing (local mode)
//	\explain SQL      rendered physical plan (alias for EXPLAIN SQL)
//	\explain analyze SQL  execute and render est-vs-actual per plan node
//	\stats            server/coordinator statistics (client mode)
//	\set              show the session's engine settings
//	\set NAME VALUE   change a setting: engine, parallel or mem
//	\q                quit
//
// In client mode \set updates the server-side session (the same settings an
// in-band "SET name value" statement changes), so a session can switch
// engines, worker counts and memory budgets without reconnecting.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"tqp"
	"tqp/internal/core"
	"tqp/internal/obs"
	"tqp/internal/server"
)

func main() {
	db := flag.String("db", "paper", "database: 'paper' or 'synth' (local mode)")
	dbDir := flag.String("db-dir", "", "persistent store directory; seeded from -db on first open, read from disk after (local mode, empty = in-memory)")
	employees := flag.Int("employees", 50, "synthetic database size (with -db synth)")
	engine := flag.String("engine", "reference", "physical engine for stratum subplans: 'reference', 'exec' or 'parallel'")
	parallel := flag.Int("parallel", 0, "worker count for the morsel-parallel engine (with -engine exec|parallel)")
	mem := flag.String("mem", "", "memory budget for the exec engine's blocking operators, e.g. 64K, 16MB, 1GB (0 or empty = unlimited)")
	connect := flag.String("connect", "", "connect to a tqserver at host:port instead of evaluating locally")
	flag.Parse()

	if *connect != "" {
		cl, err := server.Dial(context.Background(), *connect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tqshell: %v\n", err)
			os.Exit(2)
		}
		defer cl.Close()
		runREPL(newRemoteBackend(cl, *connect), os.Stdin, os.Stdout)
		return
	}

	budget, err := core.ParseBytes(*mem)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqshell: -mem: %v\n", err)
		os.Exit(2)
	}
	cat, err := openCatalog(*db, *dbDir, *employees)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqshell: %v\n", err)
		os.Exit(2)
	}
	b, err := newLocalBackend(cat, *db, *engine, *parallel, budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tqshell: %v\n", err)
		os.Exit(2)
	}
	runREPL(b, os.Stdin, os.Stdout)
}

// openCatalog resolves the -db/-db-dir flags to a catalog instance.
func openCatalog(db, dbDir string, employees int) (*tqp.Catalog, error) {
	var cat *tqp.Catalog
	switch db {
	case "paper":
		cat = tqp.PaperCatalog()
	case "synth":
		cat = tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
			Employees: employees, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
	default:
		return nil, fmt.Errorf("unknown database %q", db)
	}
	if dbDir != "" {
		return tqp.OpenDiskCatalog(dbDir, cat)
	}
	return cat, nil
}

// backend is what the REPL drives: local in-process evaluation or a remote
// tqserver session.
type backend interface {
	banner() string
	// run executes a statement and renders result + trace line.
	run(sql string, out io.Writer)
	// set changes one session setting (engine, parallel, mem).
	set(name, value string) error
	// settings renders the current session settings.
	settings() string
	// describe renders \d (arg "" lists relations); plan renders \plan.
	describe(arg string, out io.Writer)
	plan(sql string, out io.Writer)
	// explain renders \explain (analyze=false) or \explain analyze.
	explain(sql string, analyze bool, out io.Writer)
	// stats renders \stats.
	stats(out io.Writer)
}

// runREPL is the session loop over an explicit input and output, so tests
// can script sessions through a pipe.
func runREPL(b backend, in io.Reader, out io.Writer) {
	fmt.Fprintln(out, b.banner())
	sc := bufio.NewScanner(in)
	fmt.Fprint(out, "tqp> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q`:
			return
		case line == `\d`:
			b.describe("", out)
		case strings.HasPrefix(line, `\d `):
			b.describe(strings.TrimSpace(line[3:]), out)
		case line == `\set`:
			fmt.Fprintln(out, b.settings())
		case strings.HasPrefix(line, `\set `):
			fields := strings.Fields(line[5:])
			if len(fields) != 2 {
				fmt.Fprintln(out, `error: usage: \set engine|parallel|mem VALUE`)
				break
			}
			if err := b.set(strings.ToLower(fields[0]), fields[1]); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, b.settings())
			}
		case strings.HasPrefix(line, `\plan `):
			b.plan(strings.TrimSpace(line[6:]), out)
		case strings.HasPrefix(line, `\explain `):
			arg := strings.TrimSpace(line[len(`\explain `):])
			if rest, ok := cutFold(arg, "analyze"); ok {
				b.explain(rest, true, out)
			} else {
				b.explain(arg, false, out)
			}
		case line == `\stats`:
			b.stats(out)
		default:
			b.run(line, out)
		}
		fmt.Fprint(out, "tqp> ")
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(out, "error: reading input:", err)
	}
}

// cutFold strips a leading case-insensitive word plus the whitespace after
// it, reporting whether the word was present.
func cutFold(s, word string) (string, bool) {
	if len(s) > len(word) && strings.EqualFold(s[:len(word)], word) &&
		(s[len(word)] == ' ' || s[len(word)] == '\t') {
		return strings.TrimSpace(s[len(word):]), true
	}
	return s, false
}

// localBackend evaluates statements in process over a catalog. It keeps
// the session's engine settings (the -engine/-parallel/-mem flags, mutable
// via \set) and rebuilds its optimizer when they change.
type localBackend struct {
	cat      *tqp.Catalog
	dbName   string
	engine   string // "" = the optimizer's default (reference, default costs)
	parallel int
	mem      int64
	opt      *tqp.Optimizer
}

// newLocalBackend builds a local backend; an empty engine name keeps the
// optimizer's defaults (the repl test helper's mode).
func newLocalBackend(cat *tqp.Catalog, dbName, engine string, parallel int, mem int64) (*localBackend, error) {
	b := &localBackend{cat: cat, dbName: dbName, engine: engine, parallel: parallel, mem: mem}
	if err := b.rebuild(); err != nil {
		return nil, err
	}
	return b, nil
}

// rebuild re-derives the optimizer from the current settings.
func (b *localBackend) rebuild() error {
	if b.engine == "" && b.parallel == 0 && b.mem == 0 {
		b.opt = tqp.NewOptimizer(b.cat)
		return nil
	}
	spec, err := tqp.ResolveEngineFor(b.engine, tqp.EngineConfig{Parallelism: b.parallel, MemoryBudget: b.mem})
	if err != nil {
		return err
	}
	b.opt = tqp.NewOptimizer(b.cat, tqp.WithEngine(spec))
	return nil
}

func (b *localBackend) banner() string {
	return "tqp shell — temporal SQL over the " + b.dbName + " database; \\q quits, \\d lists relations"
}

func (b *localBackend) set(name, value string) error {
	old := *b
	switch name {
	case "engine":
		b.engine = value
	case "parallel":
		n, err := strconv.Atoi(value)
		if err != nil || n < 0 {
			return fmt.Errorf("bad parallel %q (want a worker count)", value)
		}
		b.parallel = n
	case "mem":
		budget, err := core.ParseBytes(value)
		if err != nil {
			return err
		}
		b.mem = budget
	default:
		return fmt.Errorf("unknown setting %q (want engine, parallel or mem)", name)
	}
	if err := b.rebuild(); err != nil {
		*b = old // an invalid combination leaves the session untouched
		return err
	}
	return nil
}

func (b *localBackend) settings() string {
	engine := b.engine
	if engine == "" {
		engine = "reference"
	}
	return fmt.Sprintf("settings: engine=%s parallel=%d mem=%d", engine, b.parallel, b.mem)
}

func (b *localBackend) describe(arg string, out io.Writer) {
	if arg == "" {
		for _, name := range b.cat.Names() {
			e, _ := b.cat.Entry(name)
			fmt.Fprintf(out, "  %-12s %s, %d tuples\n", name, e.Rel.Schema(), e.Rel.Len())
		}
		return
	}
	if r, err := b.cat.Resolve(arg); err != nil {
		fmt.Fprintln(out, "error:", err)
	} else {
		fmt.Fprint(out, r)
	}
}

func (b *localBackend) plan(sql string, out io.Writer) {
	plans, err := b.opt.OptimizeSQL(sql)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	rendered, err := b.opt.Explain(plans.Best, plans.ResultType)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprintf(out, "%d plans; best (cost %.0f, initial %.0f):\n%s",
		len(plans.All), plans.BestCost, plans.InitialCost, rendered)
}

func (b *localBackend) explain(sql string, analyze bool, out io.Writer) {
	if !analyze {
		b.plan(sql, out)
		return
	}
	prep, err := b.opt.Prepare(sql)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	an, err := b.opt.ExplainAnalyze(prep, b.opt.Engine())
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprint(out, an.Text)
}

func (b *localBackend) stats(out io.Writer) {
	fmt.Fprintln(out, `error: \stats is not available in local mode (connect to a tqserver or tqcoord)`)
}

func (b *localBackend) run(sql string, out io.Writer) {
	result, plans, trace, err := b.opt.Run(sql)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	fmt.Fprint(out, result)
	fmt.Fprintf(out, "(%d tuples; %d plans considered; best cost %.0f; %d tuples transferred)\n",
		result.Len(), len(plans.All), plans.BestCost, trace.TuplesTransferred)
}

// remoteBackend drives a tqserver session. The engine settings live
// server-side; the backend tracks what it set for \set's display.
type remoteBackend struct {
	cl       *server.Client
	addr     string
	engine   string
	parallel string
	mem      string
}

func newRemoteBackend(cl *server.Client, addr string) *remoteBackend {
	return &remoteBackend{cl: cl, addr: addr, engine: "(server default)", parallel: "-", mem: "-"}
}

func (b *remoteBackend) banner() string {
	return "tqp shell — connected to tqserver at " + b.addr + "; \\q quits, \\set changes session settings"
}

func (b *remoteBackend) set(name, value string) error {
	if err := b.cl.Set(context.Background(), name, value); err != nil {
		return err
	}
	b.track(name, value)
	return nil
}

// track records a server-acknowledged setting for \set's display.
func (b *remoteBackend) track(name, value string) {
	switch name {
	case "engine":
		b.engine = value
	case "parallel":
		b.parallel = value
	case "mem":
		b.mem = value
	}
}

func (b *remoteBackend) settings() string {
	return fmt.Sprintf("settings: engine=%s parallel=%s mem=%s (session at %s)",
		b.engine, b.parallel, b.mem, b.addr)
}

func (b *remoteBackend) describe(_ string, out io.Writer) {
	fmt.Fprintln(out, `error: \d is not available in client mode (the catalog lives server-side)`)
}

func (b *remoteBackend) plan(_ string, out io.Writer) {
	fmt.Fprintln(out, `error: \plan is not available in client mode`)
}

func (b *remoteBackend) explain(sql string, analyze bool, out io.Writer) {
	prefix := "EXPLAIN "
	if analyze {
		prefix = "EXPLAIN ANALYZE "
	}
	result, _, err := b.cl.Query(context.Background(), prefix+sql)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if result == nil || result.Schema().Len() != 1 {
		fmt.Fprint(out, result)
		return
	}
	// The plan text travels as one string column, one row per line; print
	// the lines raw rather than boxing them into a result table.
	for _, t := range result.Tuples() {
		fmt.Fprintln(out, t[0].AsString())
	}
}

func (b *remoteBackend) stats(out io.Writer) {
	st, err := b.cl.Stats(context.Background())
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	head := fmt.Sprintf("endpoint %s — fingerprint %s, %d conns", b.addr, st.Fingerprint, st.Conns)
	if st.UptimeSeconds > 0 {
		head += fmt.Sprintf(", up %s", time.Duration(st.UptimeSeconds*float64(time.Second)).Round(time.Second))
	}
	if st.Queries > 0 {
		head += fmt.Sprintf(", %d queries", st.Queries)
	}
	fmt.Fprintln(out, head)
	fmt.Fprintf(out, "  plan cache: %d hits / %d misses / %d evictions (%d entries)\n",
		st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions, st.Cache.Entries)
	a := st.Admission
	if a != (server.AdmissionStats{}) {
		fmt.Fprintf(out, "  admission: %d admitted, %d rejected, %d timed out; %d active (peak %d), %d queued (peak %d)\n",
			a.Admitted, a.Rejected, a.TimedOut, a.Active, a.PeakActive, a.Queued, a.PeakQueued)
	}
	if len(st.Errors) > 0 {
		codes := make([]string, 0, len(st.Errors))
		for code := range st.Errors {
			codes = append(codes, code)
		}
		sort.Strings(codes)
		fmt.Fprint(out, "  errors:")
		for _, code := range codes {
			fmt.Fprintf(out, " %s=%d", code, st.Errors[code])
		}
		fmt.Fprintln(out)
	}
	printSnapshot(out, "latency", st.Latency)
	printSnapshot(out, "queue wait", st.QueueWait)
	if c := st.Coord; c != nil {
		fmt.Fprintf(out, "  coord: %d shards — %d queries (%d cache hits), %d shard calls, %d retries",
			c.Shards, c.Queries, c.CacheHits, c.ShardCalls, c.Retries)
		if len(c.Fragments) > 0 {
			kinds := make([]string, 0, len(c.Fragments))
			for k := range c.Fragments {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			fmt.Fprint(out, "; fragments")
			for _, k := range kinds {
				fmt.Fprintf(out, " %s=%d", k, c.Fragments[k])
			}
		}
		fmt.Fprintln(out)
	}
}

// printSnapshot renders one latency-histogram summary line, skipping
// sections an older server did not send.
func printSnapshot(out io.Writer, name string, s *obs.Snapshot) {
	if s == nil || s.Count == 0 {
		return
	}
	fmt.Fprintf(out, "  %s: n=%d p50=%s p95=%s p99=%s\n", name, s.Count,
		fmtSecs(s.P50), fmtSecs(s.P95), fmtSecs(s.P99))
}

// fmtSecs renders a quantile in seconds as a rounded duration.
func fmtSecs(v float64) string {
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}

func (b *remoteBackend) run(sql string, out io.Writer) {
	result, meta, err := b.cl.Query(context.Background(), sql)
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	if result == nil {
		// An in-band SET statement: acknowledged, no result set. Mirror it
		// into the tracked settings so \set displays what the server holds.
		if name, val, isSet, perr := server.ParseSet(sql); isSet && perr == nil {
			b.track(name, val)
		}
		fmt.Fprintln(out, "ok")
		return
	}
	cache := "miss"
	if meta.CacheHit {
		cache = "hit"
	}
	fmt.Fprint(out, result)
	fmt.Fprintf(out, "(%d tuples; plan cache %s; engine %s; %d tuples transferred)\n",
		result.Len(), cache, meta.Engine, meta.TuplesTransferred)
}
