package main

import (
	"context"
	"strings"
	"testing"

	"tqp/internal/server"
)

// session scripts one local shell run over the paper catalog (the
// optimizer's defaults, like the bare CLI before any flags) and returns
// the rendered transcript.
func session(t *testing.T, lines ...string) string {
	t.Helper()
	cat, err := openCatalog("paper", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newLocalBackend(cat, "paper", "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	runREPL(b, strings.NewReader(strings.Join(lines, "\n")+"\n"), &out)
	return out.String()
}

// TestSessionQueries scripts a full stdin session — a parse error, a
// conventional query, a temporal query, and the meta commands — and pins
// the rendered output.
func TestSessionQueries(t *testing.T) {
	got := session(t,
		`SELEC nonsense`,
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`,
		`VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`,
		`\q`,
	)
	if !strings.Contains(got, "tqp shell — temporal SQL over the paper database") {
		t.Errorf("missing banner:\n%s", got)
	}
	// The parse error reports, the shell keeps going.
	if !strings.Contains(got, "error:") {
		t.Errorf("parse error not reported:\n%s", got)
	}
	// The conventional query lists the distinct employee names in order.
	for _, name := range []string{"Anna", "John"} {
		if !strings.Contains(got, name) {
			t.Errorf("conventional query output missing %q:\n%s", name, got)
		}
	}
	// The temporal running example produces the Figure 1 Result rows and a
	// trace line.
	if !strings.Contains(got, "tuples transferred)") {
		t.Errorf("temporal query trace line missing:\n%s", got)
	}
	if c := strings.Count(got, "plans considered"); c != 2 {
		t.Errorf("expected 2 executed queries, saw %d:\n%s", c, got)
	}
	// Every interaction re-prompts: banner prompt + 4 lines.
	if c := strings.Count(got, "tqp> "); c < 4 {
		t.Errorf("expected at least 4 prompts, saw %d:\n%s", c, got)
	}
}

// TestSessionMetaCommands covers \d, \d NAME, \plan and the unknown-name
// error path.
func TestSessionMetaCommands(t *testing.T) {
	got := session(t,
		`\d`,
		`\d EMPLOYEE`,
		`\d NOSUCH`,
		`\plan VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`,
		`\q`,
	)
	for _, want := range []string{"EMPLOYEE", "PROJECT", "tuples"} {
		if !strings.Contains(got, want) {
			t.Errorf("\\d output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "error:") {
		t.Errorf("\\d NOSUCH must report an error:\n%s", got)
	}
	if !strings.Contains(got, "plans; best (cost ") {
		t.Errorf("\\plan must print the plan summary:\n%s", got)
	}
}

// TestSessionSetLocal scripts the \set meta-command in local mode: the
// session switches engines, worker counts and budgets mid-session, invalid
// combinations are rejected without clobbering the session, and queries
// keep working (and agreeing) across switches.
func TestSessionSetLocal(t *testing.T) {
	got := session(t,
		`\set`,
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`,
		`\set engine exec`,
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`,
		`\set parallel 2`,
		`\set mem 1M`,
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`,
		`\set engine reference`, // invalid: parallel 2 is still set
		`\set bogus 1`,
		`\set parallel notanumber`,
		`\set parallel 2abc`, // trailing garbage must be rejected, not truncated
		`\q`,
	)
	if !strings.Contains(got, "settings: engine=reference parallel=0 mem=0") {
		t.Errorf("\\set must show the defaults:\n%s", got)
	}
	if !strings.Contains(got, "settings: engine=exec parallel=0 mem=0") {
		t.Errorf("\\set engine exec must update the settings line:\n%s", got)
	}
	if !strings.Contains(got, "settings: engine=exec parallel=2 mem=1048576") {
		t.Errorf("\\set mem 1M must update the settings line:\n%s", got)
	}
	// Three successful queries, identical result rows each time.
	if c := strings.Count(got, "plans considered"); c != 3 {
		t.Errorf("expected 3 executed queries, saw %d:\n%s", c, got)
	}
	if c := strings.Count(got, "Anna"); c != 3 {
		t.Errorf("every engine must produce the same rows (saw Anna %d times):\n%s", c, got)
	}
	// The invalid switch to reference (single-threaded) is refused.
	if !strings.Contains(got, "single-threaded") {
		t.Errorf("reference+parallel must be rejected:\n%s", got)
	}
	for _, want := range []string{`unknown setting "bogus"`, `bad parallel "notanumber"`, `bad parallel "2abc"`} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q:\n%s", want, got)
		}
	}
}

// TestSessionClientMode scripts a session against an in-process tqserver:
// the same REPL speaks the wire protocol, \set drives the server-side
// session, in-band SET statements work, and repeat statements hit the plan
// cache.
func TestSessionClientMode(t *testing.T) {
	cat, err := openCatalog("paper", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.Start(server.Config{Catalog: cat, MaxConcurrent: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := server.Dial(context.Background(), srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	lines := []string{
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`,
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`, // cache hit
		`\set parallel 2`,
		`SET mem = 1M`, // in-band SET statement
		`\set`,         // must mirror the in-band change
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`,
		`\set engine bogus`,
		`\d`,
		`\q`,
	}
	var out strings.Builder
	runREPL(newRemoteBackend(cl, srv.Addr()), strings.NewReader(strings.Join(lines, "\n")+"\n"), &out)
	got := out.String()

	if !strings.Contains(got, "connected to tqserver at") {
		t.Errorf("missing client banner:\n%s", got)
	}
	if !strings.Contains(got, "plan cache miss") || !strings.Contains(got, "plan cache hit") {
		t.Errorf("expected a cache miss then a hit:\n%s", got)
	}
	// After \set parallel 2 and SET mem 1M the query reports the derived
	// engine spec name.
	if !strings.Contains(got, "engine exec-par2-mem1M") {
		t.Errorf("session settings must reach the engine spec:\n%s", got)
	}
	if !strings.Contains(got, "ok") {
		t.Errorf("in-band SET must acknowledge:\n%s", got)
	}
	if !strings.Contains(got, "parallel=2 mem=1M") {
		t.Errorf("\\set must mirror in-band SET statements:\n%s", got)
	}
	if !strings.Contains(got, `unknown engine "bogus"`) {
		t.Errorf("invalid engine must be rejected server-side:\n%s", got)
	}
	if !strings.Contains(got, `\d is not available in client mode`) {
		t.Errorf("\\d must explain itself in client mode:\n%s", got)
	}
	if c := strings.Count(got, "Anna"); c != 3 {
		t.Errorf("every query must return the rows (saw Anna %d times):\n%s", c, got)
	}
}

// TestOpenCatalogRejectsUnknown pins the -db error path.
func TestOpenCatalogRejectsUnknown(t *testing.T) {
	if _, err := openCatalog("mystery", "", 0); err == nil {
		t.Fatal("unknown database name must be rejected")
	}
	if cat, err := openCatalog("synth", "", 5); err != nil || len(cat.Names()) == 0 {
		t.Fatalf("synth catalog: %v", err)
	}
}
