package main

import (
	"strings"
	"testing"
)

// session scripts one shell run over the paper catalog and returns the
// rendered transcript.
func session(t *testing.T, lines ...string) string {
	t.Helper()
	cat, err := openCatalog("paper", 0)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	repl(cat, "paper", strings.NewReader(strings.Join(lines, "\n")+"\n"), &out)
	return out.String()
}

// TestSessionQueries scripts a full stdin session — a parse error, a
// conventional query, a temporal query, and the meta commands — and pins
// the rendered output.
func TestSessionQueries(t *testing.T) {
	got := session(t,
		`SELEC nonsense`,
		`SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName`,
		`VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`,
		`\q`,
	)
	if !strings.Contains(got, "tqp shell — temporal SQL over the paper database") {
		t.Errorf("missing banner:\n%s", got)
	}
	// The parse error reports, the shell keeps going.
	if !strings.Contains(got, "error:") {
		t.Errorf("parse error not reported:\n%s", got)
	}
	// The conventional query lists the distinct employee names in order.
	for _, name := range []string{"Anna", "John"} {
		if !strings.Contains(got, name) {
			t.Errorf("conventional query output missing %q:\n%s", name, got)
		}
	}
	// The temporal running example produces the Figure 1 Result rows and a
	// trace line.
	if !strings.Contains(got, "tuples transferred)") {
		t.Errorf("temporal query trace line missing:\n%s", got)
	}
	if c := strings.Count(got, "plans considered"); c != 2 {
		t.Errorf("expected 2 executed queries, saw %d:\n%s", c, got)
	}
	// Every interaction re-prompts: banner prompt + 4 lines.
	if c := strings.Count(got, "tqp> "); c < 4 {
		t.Errorf("expected at least 4 prompts, saw %d:\n%s", c, got)
	}
}

// TestSessionMetaCommands covers \d, \d NAME, \plan and the unknown-name
// error path.
func TestSessionMetaCommands(t *testing.T) {
	got := session(t,
		`\d`,
		`\d EMPLOYEE`,
		`\d NOSUCH`,
		`\plan VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`,
		`\q`,
	)
	for _, want := range []string{"EMPLOYEE", "PROJECT", "tuples"} {
		if !strings.Contains(got, want) {
			t.Errorf("\\d output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "error:") {
		t.Errorf("\\d NOSUCH must report an error:\n%s", got)
	}
	if !strings.Contains(got, "plans; best (cost ") {
		t.Errorf("\\plan must print the plan summary:\n%s", got)
	}
}

// TestOpenCatalogRejectsUnknown pins the -db error path.
func TestOpenCatalogRejectsUnknown(t *testing.T) {
	if _, err := openCatalog("mystery", 0); err == nil {
		t.Fatal("unknown database name must be rejected")
	}
	if cat, err := openCatalog("synth", 5); err != nil || len(cat.Names()) == 0 {
		t.Fatalf("synth catalog: %v", err)
	}
}
