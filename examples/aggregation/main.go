// Aggregation demonstrates temporal aggregation (𝒢ᵀ, Section 2.4): a
// sequenced GROUP BY is conceptually evaluated at every instant, producing
// a staffing history — how many people each department employed, and when.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"tqp"
)

func main() {
	cat := tqp.PaperCatalog()
	opt := tqp.NewOptimizer(cat)

	// Department headcount over time. The result is a temporal relation:
	// one tuple per department per constant interval of its headcount.
	result, plans, _, err := opt.Run(`
		VALIDTIME SELECT Dept, COUNT(*) AS headcount
		FROM EMPLOYEE GROUP BY Dept
		ORDER BY Dept`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("department staffing history:\n%s\n", result)
	fmt.Printf("(the optimizer considered %d plans)\n\n", len(plans.All))

	// Compare with the nonsequenced reading: COUNT over the stored tuples,
	// periods treated as plain data.
	flat, _, _, err := opt.Run(`
		SELECT Dept, COUNT(*) AS spells, MIN(T1) AS first, MAX(T2) AS last
		FROM EMPLOYEE GROUP BY Dept
		ORDER BY Dept`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nonsequenced department summary (spells, not headcount):\n%s\n", flat)

	// Project-load history per employee: a sequenced aggregate over
	// PROJECT shows concurrent assignments.
	load, _, _, err := opt.Run(`
		VALIDTIME SELECT EmpName, COUNT(*) AS assignments
		FROM PROJECT GROUP BY EmpName
		ORDER BY EmpName`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("project load over time:\n%s", load)
}
