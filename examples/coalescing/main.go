// Coalescing demonstrates the duplicate/coalescing semantics of Figure 3
// and Section 2.4: the difference between regular duplicate elimination
// (rdup), temporal duplicate elimination (rdupᵀ), and coalescing (coalᵀ) —
// and why the operations are kept minimal and orthogonal.
//
//	go run ./examples/coalescing
package main

import (
	"fmt"
	"log"

	"tqp"
	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/eval"
)

func main() {
	cat := tqp.PaperCatalog()
	ev := eval.New(cat)

	// R1 = π_{EmpName,T1,T2}(EMPLOYEE): uncoalesced, with duplicates in
	// snapshots (John is in two departments over [6,8)) and a regular
	// duplicate (Anna's two [2,6) tuples).
	r1n := catalog.PaperProjection(cat.MustNode("EMPLOYEE"))
	r1, err := ev.Eval(r1n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R1 = π(EMPLOYEE):\n%s\n", r1)
	fmt.Printf("  has regular duplicates:   %v\n", r1.HasDuplicates())
	fmt.Printf("  has snapshot duplicates:  %v\n", r1.HasSnapshotDuplicates())
	fmt.Printf("  is coalesced:             %v\n\n", r1.IsCoalesced())

	// rdup removes regular duplicates only; its result is a snapshot
	// relation (note the renamed 1.T1/1.T2 columns).
	r2, err := ev.Eval(algebra.NewRdup(r1n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R2 = rdup(R1) — one Anna tuple gone, periods now plain data:\n%s\n", r2)

	// rdupT removes duplicates from every snapshot: John's second period
	// is trimmed to [8,11).
	r3, err := ev.Eval(algebra.NewTRdup(r1n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R3 = rdupT(R1) — snapshots are duplicate-free:\n%s\n", r3)

	// coalT merges value-equivalent tuples with adjacent periods. Per the
	// paper's minimality requirement it does NOT merge overlapping ones;
	// Böhlen-style coalescing is the idiom coalT ∘ rdupT.
	c1, err := ev.Eval(algebra.NewCoal(r1n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coalT(R1) — Anna's adjacent [2,6)+[6,12) merge; overlaps stay:\n%s\n", c1)

	canon, err := ev.Eval(algebra.NewCoal(algebra.NewTRdup(r1n)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coalT(rdupT(R1)) — the canonical history:\n%s\n", canon)

	// The six equivalence types of Section 3 relate these variants.
	fmt.Println("equivalences holding between R1 and R3:", tqp.EquivalencesHolding(r1, r3))
	fmt.Println("equivalences holding between R1 and coalT(rdupT(R1)):", tqp.EquivalencesHolding(r1, canon))
}
