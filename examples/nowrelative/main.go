// Nowrelative demonstrates the NOW-relative extension (the paper's §7
// future work, after Clifford et al.): facts that still hold are stored
// with their period end at the NOW sentinel and bound to a reference
// instant before querying, giving consistent "as of" views of the same
// history.
//
//	go run ./examples/nowrelative
package main

import (
	"fmt"
	"log"

	"tqp"
)

func main() {
	staff := tqp.MustSchema(
		tqp.Attr("Name", tqp.KindString),
		tqp.Attr("Role", tqp.KindString),
		tqp.Attr("T1", tqp.KindTime),
		tqp.Attr("T2", tqp.KindTime),
	)
	// ada was an engineer, became a manager and still is; bob joined later
	// and still works here; eve left.
	history := tqp.RelationFromRows(staff, [][]any{
		{"ada", "engineer", 1, 6},
		{"ada", "manager", 6, int(tqp.NowMarker)},
		{"bob", "engineer", 9, int(tqp.NowMarker)},
		{"eve", "engineer", 2, 5},
	})
	fmt.Printf("stored history (NOW-relative, sentinel end = %d):\n%s\n", int64(tqp.NowMarker), history)

	for _, now := range []int{7, 12} {
		asOf := history.BindNow(tqp.Chronon(now))
		cat := tqp.NewCatalog()
		if err := cat.Add("STAFF", asOf, tqp.BaseInfo{Distinct: true}); err != nil {
			log.Fatal(err)
		}
		opt := tqp.NewOptimizer(cat)
		result, _, _, err := opt.Run(`
			VALIDTIME SELECT Role, COUNT(*) AS headcount
			FROM STAFF GROUP BY Role
			ORDER BY Role`)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("staffing as of instant %d:\n%s\n", now, result)
	}
}
