// Paperquery reproduces the paper's running example end to end: Figure 1's
// EMPLOYEE/PROJECT database, the query "Which employees worked in a
// department, but not on any project, and when?", the initial plan of
// Figure 2(a) with its property vectors, the optimization to Figure 6(b),
// and the exact Result relation of Figure 1.
//
//	go run ./examples/paperquery
package main

import (
	"fmt"
	"log"

	"tqp"
)

const query = `
	VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
	EXCEPT SELECT EmpName FROM PROJECT
	ORDER BY EmpName ASC`

func main() {
	cat := tqp.PaperCatalog()
	for _, name := range cat.Names() {
		r, _ := cat.Resolve(name)
		fmt.Printf("%s:\n%s\n", name, r)
	}

	opt := tqp.NewOptimizer(cat)
	plans, err := opt.OptimizeSQL(query)
	if err != nil {
		log.Fatal(err)
	}

	initial, err := opt.Explain(plans.Initial, plans.ResultType)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial plan — Figure 2(a) — with [OrderRequired DuplicatesRelevant PeriodPreserving]:\n%s\n", initial)

	best, err := opt.Explain(plans.Best, plans.ResultType)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized plan — the paper's Figure 6(b), found among %d enumerated plans:\n%s\n",
		len(plans.All), best)

	fmt.Print("derivation: initial")
	for _, s := range plans.Enumeration.Derivation(plans.Best) {
		fmt.Printf(" →[%s]", s.Rule)
	}
	fmt.Println()

	result, trace, err := opt.Execute(plans.Best)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL shipped to the DBMS:\n")
	for _, sql := range trace.SQL {
		fmt.Printf("---\n%s\n", sql)
	}
	fmt.Printf("\nResult — matches Figure 1:\n%s", result)
}
