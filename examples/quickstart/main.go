// Quickstart: build a temporal relation, run a sequenced query through the
// optimizer, and print the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tqp"
)

func main() {
	// A temporal relation records when each fact held: rooms and their
	// occupants, timestamped with closed-open periods [T1, T2).
	rooms := tqp.MustSchema(
		tqp.Attr("Room", tqp.KindString),
		tqp.Attr("Occupant", tqp.KindString),
		tqp.Attr("T1", tqp.KindTime),
		tqp.Attr("T2", tqp.KindTime),
	)
	data := tqp.RelationFromRows(rooms, [][]any{
		{"r1", "ada", 1, 5},
		{"r1", "ada", 5, 9}, // adjacent: coalesces with the previous fact
		{"r2", "bob", 2, 6},
		{"r1", "eve", 4, 7},
		{"r2", "bob", 8, 12},
	})

	cat := tqp.NewCatalog()
	if err := cat.Add("ROOMS", data, tqp.BaseInfo{Distinct: true}); err != nil {
		log.Fatal(err)
	}

	opt := tqp.NewOptimizer(cat)
	// A sequenced (VALIDTIME) query: who occupied room r1, and when?
	// COALESCED merges adjacent periods; DISTINCT removes duplicates in
	// every snapshot; ORDER BY makes the result a list.
	result, plans, trace, err := opt.Run(`
		VALIDTIME SELECT DISTINCT COALESCED Occupant
		FROM ROOMS WHERE Room = 'r1'
		ORDER BY Occupant`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("occupants of r1 over time:\n%s\n", result)
	fmt.Printf("the optimizer considered %d plans; the chosen one costs %.0f (initial: %.0f)\n",
		len(plans.All), plans.BestCost, plans.InitialCost)
	fmt.Printf("SQL statements shipped to the DBMS: %d; tuples transferred: %d\n",
		len(trace.SQL), trace.TuplesTransferred)
}
