// The serving layer end to end: an in-process tqserver over a persistent
// catalog (the tqserver -db-dir flag's machinery), a client session that
// switches engines mid-session, the plan cache turning repeat statements
// into execution-only work, the admission/cache statistics the server
// exposes — and a restart on the same store directory, after which the
// paper query answers bit-identically from disk. Run with:
//
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"tqp"
	"tqp/internal/server"
)

func main() {
	// A persistent store directory: the first open seeds it from the paper
	// catalog; every later open reads the segments and manifest from disk.
	dir, err := os.MkdirTemp("", "tqp-server-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cat, err := tqp.OpenDiskCatalog(dir, tqp.PaperCatalog())
	if err != nil {
		log.Fatal(err)
	}

	// Start a server on an ephemeral port: 4 concurrent queries, a global
	// pool of 16 workers and a 64M global budget divided across them (so
	// each admitted query gets a 4-worker, 16M share).
	srv, err := server.Start(server.Config{
		Addr:          "127.0.0.1:0",
		Catalog:       cat,
		MaxConcurrent: 4,
		Workers:       16,
		MemoryBudget:  64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("serving on", srv.Addr())

	cl, err := server.Dial(context.Background(), srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// The paper's running example, twice: the first run parses, beam-
	// enumerates and caches the physical plan; the second hits the cache
	// and goes straight to execution.
	const sql = `VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
	             EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`
	for i := 0; i < 2; i++ {
		result, meta, err := cl.Query(context.Background(), sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: %d tuples, cache hit: %v, engine %s\n",
			i+1, result.Len(), meta.CacheHit, meta.Engine)
		if i == 0 {
			fmt.Print(result)
		}
	}

	// Sessions carry engine settings; SET statements change them in-band.
	if _, _, err := cl.Query(context.Background(), "SET engine parallel"); err != nil {
		log.Fatal(err)
	}
	result, meta, err := cl.Query(context.Background(), sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel session: %d tuples on engine %s (cache hit: %v — each engine spec keys its own plan)\n",
		result.Len(), meta.Engine, meta.CacheHit)

	stats, err := cl.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan cache: %d hits / %d misses / %d entries; admission: %d admitted, %d rejected\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Entries,
		stats.Admission.Admitted, stats.Admission.Rejected)

	// Restart on the same directory: stop the server, reopen the store
	// (reading segments + manifest, not the seed catalog), serve again, and
	// re-run the paper query. The result is bit-identical to the in-memory
	// run — persistence changes where tuples live, never what queries say.
	first := result.String()
	cl.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	cat2, err := tqp.OpenDiskCatalog(dir, nil)
	if err != nil {
		log.Fatal(err)
	}
	srv2, err := server.Start(server.Config{Addr: "127.0.0.1:0", Catalog: cat2})
	if err != nil {
		log.Fatal(err)
	}
	defer srv2.Close()
	cl2, err := server.Dial(context.Background(), srv2.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cl2.Close()
	again, _, err := cl2.Query(context.Background(), sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after restart from %s: %d tuples, identical to the in-memory run: %v\n",
		dir, again.Len(), again.String() == first)
}
