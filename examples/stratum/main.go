// Stratum demonstrates the layered architecture of Section 2.1: the same
// query executed (a) entirely in the simulated conventional DBMS — the
// initial plan — and (b) with the paper's division of labour, where the
// stratum performs the temporal operations and the DBMS projects and sorts.
// It prints the SQL shipped to the DBMS and the simulated per-site work.
//
//	go run ./examples/stratum
package main

import (
	"fmt"
	"log"

	"tqp"
	"tqp/internal/catalog"
	"tqp/internal/stratum"
)

func main() {
	cat := tqp.SyntheticEmployeeDB(tqp.EmployeeSpec{
		Employees: 60, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 7,
	})

	// Build the two plan shapes of Figure 2 over the synthetic database.
	initial := catalog.PaperInitialPlan(cat)
	optimized := catalog.PaperOptimizedPlan(cat)

	for _, pl := range []struct {
		name string
		plan tqp.Node
	}{{"initial — everything in the DBMS", initial}, {"optimized — temporal ops in the stratum", optimized}} {
		fmt.Printf("== %s\n%s", pl.name, tqp.RenderPlan(pl.plan))
		if err := stratum.ValidateSites(pl.plan); err != nil {
			log.Fatal(err)
		}
		result, trace, err := stratum.New(cat, 1).Execute(pl.plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("result tuples: %d\n", result.Len())
		fmt.Printf("simulated units: stratum=%.0f dbms=%.0f transfer=%.0f total=%.0f\n",
			trace.StratumUnits, trace.DBMSUnits, trace.TransferUnits, trace.TotalUnits())
		fmt.Printf("SQL shipped to the DBMS (%d statement(s)):\n", len(trace.SQL))
		for _, sql := range trace.SQL {
			fmt.Printf("---\n%s\n", sql)
		}
		fmt.Println()
	}

	// The cost-based optimizer arrives at the optimized shape on its own.
	opt := tqp.NewOptimizer(cat)
	plans, err := opt.OptimizeSQL(`VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
		EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer: %d plans, initial cost %.0f, chosen cost %.0f\n",
		len(plans.All), plans.InitialCost, plans.BestCost)
}
