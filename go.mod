module tqp

go 1.23
