module tqp

go 1.24
