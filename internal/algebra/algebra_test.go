package algebra_test

import (
	"strings"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func tempSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
}

func snapSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
	)
}

func rel(name string, s *schema.Schema) algebra.Node {
	return algebra.NewRel(name, s, algebra.BaseInfo{})
}

func TestSchemaDerivation(t *testing.T) {
	ts, ss := tempSchema(), snapSchema()
	pred := expr.Compare(expr.Lt, expr.Column("Grp"), expr.Literal(value.Int(3)))
	aggs := []expr.Aggregate{{Func: expr.CountAll, As: "cnt"}}

	cases := []struct {
		name     string
		node     algebra.Node
		temporal bool
		attrs    []string
		ok       bool
	}{
		{"select", algebra.NewSelect(pred, rel("T", ts)), true,
			[]string{"Name", "Grp", "T1", "T2"}, true},
		{"select bad attr", algebra.NewSelect(
			expr.Compare(expr.Eq, expr.Column("Zed"), expr.Literal(value.Int(1))),
			rel("T", ts)), false, nil, false},
		{"project to snapshot", algebra.NewProjectCols(rel("T", ts), "Name", "Grp"), false,
			[]string{"Name", "Grp"}, true},
		{"project keeps periods", algebra.NewProjectCols(rel("T", ts), "Name", "T1", "T2"), true,
			[]string{"Name", "T1", "T2"}, true},
		{"rdup on temporal renames", algebra.NewRdup(rel("T", ts)), false,
			[]string{"Name", "Grp", "1.T1", "1.T2"}, true},
		{"rdupT keeps schema", algebra.NewTRdup(rel("T", ts)), true,
			[]string{"Name", "Grp", "T1", "T2"}, true},
		{"rdupT on snapshot fails", algebra.NewTRdup(rel("S", ss)), false, nil, false},
		{"coal on snapshot fails", algebra.NewCoal(rel("S", ss)), false, nil, false},
		{"product qualifies clashes", algebra.NewProduct(rel("S", ss), rel("S2", ss)), false,
			[]string{"1.Name", "1.Grp", "2.Name", "2.Grp"}, true},
		{"temporal product appends fresh period",
			algebra.NewTProduct(rel("A", ts), rel("B", ts)), true,
			[]string{"1.Name", "1.Grp", "1.T1", "1.T2", "2.Name", "2.Grp", "2.T1", "2.T2", "T1", "T2"}, true},
		{"tproduct needs temporal args", algebra.NewTProduct(rel("S", ss), rel("A", ts)), false, nil, false},
		{"diff equal schemas", algebra.NewDiff(rel("A", ss), rel("B", ss)), false,
			[]string{"Name", "Grp"}, true},
		{"diff on temporal qualifies", algebra.NewDiff(rel("A", ts), rel("B", ts)), false,
			[]string{"Name", "Grp", "1.T1", "1.T2"}, true},
		{"diff unequal schemas", algebra.NewDiff(rel("A", ss), rel("B", ts)), false, nil, false},
		{"tdiff", algebra.NewTDiff(rel("A", ts), rel("B", ts)), true,
			[]string{"Name", "Grp", "T1", "T2"}, true},
		{"union all", algebra.NewUnionAll(rel("A", ts), rel("B", ts)), true,
			[]string{"Name", "Grp", "T1", "T2"}, true},
		{"tunion needs temporal", algebra.NewTUnion(rel("A", ss), rel("B", ss)), false, nil, false},
		{"aggregate", algebra.NewAggregate([]string{"Name"}, aggs, rel("T", ts)), false,
			[]string{"Name", "cnt"}, true},
		{"aggregate groups on time -> qualified",
			algebra.NewAggregate([]string{"T1"}, aggs, rel("T", ts)), false,
			[]string{"1.T1", "cnt"}, true},
		{"taggregate", algebra.NewTAggregate([]string{"Name"}, aggs, rel("T", ts)), true,
			[]string{"Name", "cnt", "T1", "T2"}, true},
		{"taggregate cannot group on time",
			algebra.NewTAggregate([]string{"T1"}, aggs, rel("T", ts)), false, nil, false},
		{"sort validates keys", algebra.NewSort(relation.OrderSpec{relation.Key("Zed")}, rel("T", ts)),
			false, nil, false},
		{"join is select over product",
			algebra.NewJoin(expr.Compare(expr.Eq, expr.Column("1.Name"), expr.Column("2.Name")),
				rel("S", ss), rel("S2", ss)), false,
			[]string{"1.Name", "1.Grp", "2.Name", "2.Grp"}, true},
	}
	for _, c := range cases {
		s, err := c.node.Schema()
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
			continue
		}
		if !c.ok {
			continue
		}
		if s.Temporal() != c.temporal {
			t.Errorf("%s: temporal=%v, want %v (%s)", c.name, s.Temporal(), c.temporal, s)
		}
		if len(c.attrs) != s.Len() {
			t.Errorf("%s: schema %s, want attrs %v", c.name, s, c.attrs)
			continue
		}
		for i, want := range c.attrs {
			if s.At(i).Name != want {
				t.Errorf("%s: attr %d = %s, want %s", c.name, i, s.At(i).Name, want)
			}
		}
	}
}

func TestPathsAndReplace(t *testing.T) {
	ts := tempSchema()
	plan := algebra.NewTDiff(
		algebra.NewTRdup(rel("A", ts)),
		algebra.NewProjectCols(rel("B", ts), "Name", "Grp", "T1", "T2"))

	paths := algebra.Paths(plan)
	if len(paths) != 5 {
		t.Fatalf("Paths = %d, want 5", len(paths))
	}
	if algebra.Count(plan) != 5 {
		t.Error("Count")
	}

	n, err := algebra.NodeAt(plan, algebra.Path{0, 0})
	if err != nil || n.Label() != "A" {
		t.Fatalf("NodeAt(0,0) = %v, %v", n, err)
	}
	if _, err := algebra.NodeAt(plan, algebra.Path{3}); err == nil {
		t.Error("invalid path should fail")
	}

	repl, err := algebra.ReplaceAt(plan, algebra.Path{0}, rel("C", ts))
	if err != nil {
		t.Fatal(err)
	}
	if got := algebra.Canonical(repl); !strings.HasPrefix(got, "diffT(C,") {
		t.Errorf("ReplaceAt result: %s", got)
	}
	// The original is untouched (persistent trees).
	if got := algebra.Canonical(plan); !strings.HasPrefix(got, "diffT(rdupT(A)") {
		t.Errorf("original mutated: %s", got)
	}
	// Path strings.
	if (algebra.Path{}).String() != "ε" || (algebra.Path{1, 0}).String() != "1.0" {
		t.Error("Path.String")
	}
}

func TestCanonicalAndEqual(t *testing.T) {
	ts := tempSchema()
	a := algebra.NewTRdup(rel("A", ts))
	b := algebra.NewTRdup(rel("A", ts))
	c := algebra.NewTRdup(rel("B", ts))
	if algebra.Canonical(a) != algebra.Canonical(b) {
		t.Error("structurally equal trees must share canonical forms")
	}
	if algebra.Canonical(a) == algebra.Canonical(c) {
		t.Error("different trees must differ")
	}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal")
	}
	srt := algebra.NewSort(relation.OrderSpec{relation.Key("Name")}, rel("A", ts))
	if !strings.Contains(algebra.Canonical(srt), "sort{Name ASC}") {
		t.Errorf("sort canonical: %s", algebra.Canonical(srt))
	}
}

func TestValidate(t *testing.T) {
	ts := tempSchema()
	ok := algebra.NewTRdup(rel("A", ts))
	if err := algebra.Validate(ok); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := algebra.NewTRdup(algebra.NewProjectCols(rel("A", ts), "Name"))
	if err := algebra.Validate(bad); err == nil {
		t.Error("rdupT over a snapshot projection must fail validation")
	}
}

func TestRenderAnnotated(t *testing.T) {
	ts := tempSchema()
	plan := algebra.NewCoal(algebra.NewTRdup(rel("A", ts)))
	out := algebra.Render(plan, func(n algebra.Node, p algebra.Path) string { return "@" + p.String() })
	want := "coalT  @ε\n  rdupT  @0\n    A  @0.0\n"
	if out != want {
		t.Errorf("Render:\n%q\nwant\n%q", out, want)
	}
}

func TestJoinExpand(t *testing.T) {
	ts := tempSchema()
	p := expr.Compare(expr.Eq, expr.Column("1.Name"), expr.Column("2.Name"))
	j := algebra.NewTJoin(p, rel("A", ts), rel("B", ts))
	exp := j.Expand()
	if exp.Op() != algebra.OpSelect || exp.Children()[0].Op() != algebra.OpTProduct {
		t.Errorf("TJoin expansion: %s", algebra.Canonical(exp))
	}
	js, err := j.Schema()
	if err != nil {
		t.Fatal(err)
	}
	es, err := exp.Schema()
	if err != nil {
		t.Fatal(err)
	}
	if !js.Equal(es) {
		t.Error("idiom and expansion schemas must agree")
	}
}

func TestOpMetadata(t *testing.T) {
	if algebra.OpTDiff.ConventionalCounterpart() != algebra.OpDiff {
		t.Error("counterpart")
	}
	if algebra.OpSelect.ConventionalCounterpart() != algebra.OpInvalid {
		t.Error("σ has no counterpart")
	}
	if !algebra.OpCoal.Temporal() || algebra.OpCoal.SnapshotReducible() {
		t.Error("coalT is temporal but deliberately not snapshot-reducible")
	}
	if algebra.OpTDiff.Arity() != 2 || algebra.OpRel.Arity() != 0 || algebra.OpSort.Arity() != 1 {
		t.Error("arity")
	}
}
