package algebra

import (
	"fmt"
	"strings"

	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// Node is an immutable operator-tree node.
type Node interface {
	// Op returns the operator kind.
	Op() Op
	// Children returns the child nodes (not a copy; do not mutate).
	Children() []Node
	// WithChildren returns a copy of the node with the given children.
	WithChildren(ch ...Node) Node
	// Schema derives the node's output schema, validating this node's own
	// parameters against the children's schemas.
	Schema() (*schema.Schema, error)
	// Label renders the operator with its parameters but without children,
	// e.g. "project{EmpName,T1,T2}".
	Label() string
	// Equal reports structural equality of whole subtrees.
	Equal(other Node) bool
}

// BaseInfo carries the catalog's knowledge about a base relation, used by
// static state inference: its declared order and whether it is known to be
// duplicate-free, snapshot-duplicate-free, or coalesced.
type BaseInfo struct {
	Order            relation.OrderSpec
	Distinct         bool
	SnapshotDistinct bool
	Coalesced        bool
}

// Rel is a leaf referencing a named base relation.
type Rel struct {
	Name string
	Sch  *schema.Schema
	Info BaseInfo
}

// NewRel returns a base-relation leaf.
func NewRel(name string, sch *schema.Schema, info BaseInfo) *Rel {
	return &Rel{Name: name, Sch: sch, Info: info}
}

// Op implements Node.
func (n *Rel) Op() Op { return OpRel }

// Children implements Node.
func (n *Rel) Children() []Node { return nil }

// WithChildren implements Node.
func (n *Rel) WithChildren(ch ...Node) Node {
	if len(ch) != 0 {
		panic("algebra: Rel takes no children")
	}
	return n
}

// Schema implements Node.
func (n *Rel) Schema() (*schema.Schema, error) {
	if n.Sch == nil {
		return nil, fmt.Errorf("algebra: relation %q has no schema", n.Name)
	}
	return n.Sch, nil
}

// Label implements Node.
func (n *Rel) Label() string { return n.Name }

// Equal implements Node.
func (n *Rel) Equal(other Node) bool {
	o, ok := other.(*Rel)
	return ok && o.Name == n.Name
}

// Select is the selection σ_P. Per Table 1 it retains order, duplicates and
// coalescing... (coalescing is retained: removing whole tuples cannot create
// adjacency violations).
type Select struct {
	P     expr.Pred
	child Node
}

// NewSelect returns σ_P(child).
func NewSelect(p expr.Pred, child Node) *Select { return &Select{P: p, child: child} }

// Op implements Node.
func (n *Select) Op() Op { return OpSelect }

// Children implements Node.
func (n *Select) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Select) WithChildren(ch ...Node) Node {
	mustArity(OpSelect, len(ch))
	return &Select{P: n.P, child: ch[0]}
}

// Schema implements Node.
func (n *Select) Schema() (*schema.Schema, error) {
	s, err := n.child.Schema()
	if err != nil {
		return nil, err
	}
	for _, a := range expr.AttrsOf(n.P) {
		if !s.Has(a) {
			return nil, fmt.Errorf("algebra: selection predicate uses unknown attribute %q", a)
		}
	}
	return s, nil
}

// Label implements Node.
func (n *Select) Label() string { return "select{" + n.P.String() + "}" }

// Equal implements Node.
func (n *Select) Equal(other Node) bool {
	o, ok := other.(*Select)
	return ok && n.P.EqualPred(o.P) && n.child.Equal(o.child)
}

// ProjItem is one output column of a projection: an expression and its
// result name.
type ProjItem struct {
	Expr expr.Expr
	As   string
}

// ColItem is shorthand for projecting an attribute under its own name.
func ColItem(name string) ProjItem { return ProjItem{Expr: expr.Column(name), As: name} }

// String renders "expr AS name", shortened when the expression is the
// attribute itself.
func (p ProjItem) String() string {
	if c, ok := p.Expr.(expr.Col); ok && c.Name == p.As {
		return p.As
	}
	return p.Expr.String() + " AS " + p.As
}

// Project is the generalized projection π_{f1,...,fn}. Per Table 1 its
// result order is Prefix(Order(r), ProjPairs), it may generate duplicates,
// and it destroys coalescing.
type Project struct {
	Items []ProjItem
	child Node
}

// NewProject returns π_items(child).
func NewProject(items []ProjItem, child Node) *Project {
	return &Project{Items: items, child: child}
}

// NewProjectCols returns a projection onto the named attributes.
func NewProjectCols(child Node, names ...string) *Project {
	items := make([]ProjItem, len(names))
	for i, n := range names {
		items[i] = ColItem(n)
	}
	return NewProject(items, child)
}

// Op implements Node.
func (n *Project) Op() Op { return OpProject }

// Children implements Node.
func (n *Project) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Project) WithChildren(ch ...Node) Node {
	mustArity(OpProject, len(ch))
	return &Project{Items: n.Items, child: ch[0]}
}

// Schema implements Node.
func (n *Project) Schema() (*schema.Schema, error) {
	s, err := n.child.Schema()
	if err != nil {
		return nil, err
	}
	attrs := make([]schema.Attribute, 0, len(n.Items))
	for _, it := range n.Items {
		k, err := it.Expr.Kind(s)
		if err != nil {
			return nil, fmt.Errorf("algebra: projection item %s: %w", it, err)
		}
		if it.As == "" {
			return nil, fmt.Errorf("algebra: projection item %s lacks a result name", it.Expr)
		}
		attrs = append(attrs, schema.Attr(it.As, k))
	}
	return schema.New(attrs...)
}

// OutNames returns the projection's output attribute names in order.
func (n *Project) OutNames() []string {
	out := make([]string, len(n.Items))
	for i, it := range n.Items {
		out[i] = it.As
	}
	return out
}

// IdentityOn reports whether the projection merely passes through the named
// attribute (projects the column under its own name).
func (n *Project) IdentityOn(name string) bool {
	for _, it := range n.Items {
		if it.As == name {
			c, ok := it.Expr.(expr.Col)
			return ok && c.Name == name
		}
	}
	return false
}

// Label implements Node.
func (n *Project) Label() string {
	parts := make([]string, len(n.Items))
	for i, it := range n.Items {
		parts[i] = it.String()
	}
	return "project{" + strings.Join(parts, ",") + "}"
}

// Equal implements Node.
func (n *Project) Equal(other Node) bool {
	o, ok := other.(*Project)
	if !ok || len(o.Items) != len(n.Items) {
		return false
	}
	for i := range n.Items {
		if n.Items[i].As != o.Items[i].As || !n.Items[i].Expr.EqualExpr(o.Items[i].Expr) {
			return false
		}
	}
	return n.child.Equal(o.child)
}

// binary is the shared shape of parameter-free binary operators.
type binary struct {
	op    Op
	left  Node
	right Node
}

func (n *binary) Op() Op           { return n.op }
func (n *binary) Children() []Node { return []Node{n.left, n.right} }
func (n *binary) WithChildren(ch ...Node) Node {
	mustArity(n.op, len(ch))
	return &binary{op: n.op, left: ch[0], right: ch[1]}
}
func (n *binary) Label() string { return n.op.String() }
func (n *binary) Equal(other Node) bool {
	o, ok := other.(*binary)
	return ok && o.op == n.op && n.left.Equal(o.left) && n.right.Equal(o.right)
}

// Schema implements Node for each parameter-free binary operator.
func (n *binary) Schema() (*schema.Schema, error) {
	ls, err := n.left.Schema()
	if err != nil {
		return nil, err
	}
	rs, err := n.right.Schema()
	if err != nil {
		return nil, err
	}
	switch n.op {
	case OpUnionAll, OpUnion:
		if !ls.Equal(rs) {
			return nil, fmt.Errorf("algebra: %s over unequal schemas %s vs %s", n.op, ls, rs)
		}
		return ls, nil
	case OpTUnion:
		if !ls.Temporal() || !rs.Temporal() {
			return nil, fmt.Errorf("algebra: %s requires temporal arguments", n.op)
		}
		if !ls.Equal(rs) {
			return nil, fmt.Errorf("algebra: %s over unequal schemas %s vs %s", n.op, ls, rs)
		}
		return ls, nil
	case OpDiff:
		if !ls.Equal(rs) {
			return nil, fmt.Errorf("algebra: %s over unequal schemas %s vs %s", n.op, ls, rs)
		}
		// Regular difference has a temporal counterpart, so it produces a
		// snapshot relation: time attributes become ordinary data columns.
		return ls.QualifyTime(1), nil
	case OpTDiff:
		if !ls.Temporal() || !rs.Temporal() {
			return nil, fmt.Errorf("algebra: %s requires temporal arguments", n.op)
		}
		if !ls.Equal(rs) {
			return nil, fmt.Errorf("algebra: %s over unequal schemas %s vs %s", n.op, ls, rs)
		}
		return ls, nil
	case OpProduct:
		// Conventional product produces a snapshot relation: each side's
		// time attributes are qualified, then the sides concatenated.
		return ls.QualifyTime(1).Concat(rs.QualifyTime(2))
	case OpTProduct:
		if !ls.Temporal() || !rs.Temporal() {
			return nil, fmt.Errorf("algebra: %s requires temporal arguments", n.op)
		}
		// The temporal product retains the argument timestamps (qualified)
		// and appends a fresh period T1/T2 holding the intersection
		// (Section 4.3, rule C9's projection removes 1.T1,1.T2,2.T1,2.T2).
		core, err := ls.QualifyTime(1).Concat(rs.QualifyTime(2))
		if err != nil {
			return nil, err
		}
		attrs := append(core.Attributes(),
			schema.Attr(schema.T1, value.KindTime),
			schema.Attr(schema.T2, value.KindTime))
		return schema.New(attrs...)
	default:
		return nil, fmt.Errorf("algebra: binary schema for %s", n.op)
	}
}

// NewUnionAll returns l ⊔ r (concatenation).
func NewUnionAll(l, r Node) Node { return &binary{op: OpUnionAll, left: l, right: r} }

// NewUnion returns the multiset union l ∪ r (max multiplicity).
func NewUnion(l, r Node) Node { return &binary{op: OpUnion, left: l, right: r} }

// NewTUnion returns the temporal union l ∪ᵀ r.
func NewTUnion(l, r Node) Node { return &binary{op: OpTUnion, left: l, right: r} }

// NewProduct returns the conventional Cartesian product l × r.
func NewProduct(l, r Node) Node { return &binary{op: OpProduct, left: l, right: r} }

// NewTProduct returns the temporal Cartesian product l ×ᵀ r.
func NewTProduct(l, r Node) Node { return &binary{op: OpTProduct, left: l, right: r} }

// NewDiff returns the multiset difference l \ r.
func NewDiff(l, r Node) Node { return &binary{op: OpDiff, left: l, right: r} }

// NewTDiff returns the temporal difference l \ᵀ r.
func NewTDiff(l, r Node) Node { return &binary{op: OpTDiff, left: l, right: r} }

func mustArity(op Op, n int) {
	if op.Arity() != n {
		panic(fmt.Sprintf("algebra: %s takes %d children, got %d", op, op.Arity(), n))
	}
}
