package algebra

import (
	"fmt"
	"strings"

	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// Aggregate is the conventional aggregation 𝒢_{G1..Gn;F1..Fm}: group by the
// G attributes and compute the F aggregates. Per Table 1, its result order
// is Prefix(Order(r), GroupPairs), it eliminates duplicates, and — having a
// temporal counterpart — it produces a snapshot relation.
type Aggregate struct {
	GroupBy  []string
	Aggs     []expr.Aggregate
	child    Node
	temporal bool // true for the temporal counterpart 𝒢ᵀ
}

// NewAggregate returns 𝒢_{groupBy;aggs}(child).
func NewAggregate(groupBy []string, aggs []expr.Aggregate, child Node) *Aggregate {
	return &Aggregate{GroupBy: groupBy, Aggs: aggs, child: child}
}

// NewTAggregate returns the temporal aggregation 𝒢ᵀ_{groupBy;aggs}(child);
// groupBy must not include the time attributes.
func NewTAggregate(groupBy []string, aggs []expr.Aggregate, child Node) *Aggregate {
	return &Aggregate{GroupBy: groupBy, Aggs: aggs, child: child, temporal: true}
}

// Op implements Node.
func (n *Aggregate) Op() Op {
	if n.temporal {
		return OpTAggregate
	}
	return OpAggregate
}

// Children implements Node.
func (n *Aggregate) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Aggregate) WithChildren(ch ...Node) Node {
	mustArity(n.Op(), len(ch))
	return &Aggregate{GroupBy: n.GroupBy, Aggs: n.Aggs, child: ch[0], temporal: n.temporal}
}

// Schema implements Node.
func (n *Aggregate) Schema() (*schema.Schema, error) {
	s, err := n.child.Schema()
	if err != nil {
		return nil, err
	}
	if n.temporal && !s.Temporal() {
		return nil, fmt.Errorf("algebra: %s requires a temporal argument", n.Op())
	}
	attrs := make([]schema.Attribute, 0, len(n.GroupBy)+len(n.Aggs)+2)
	for _, g := range n.GroupBy {
		i := s.Index(g)
		if i < 0 {
			return nil, fmt.Errorf("algebra: grouping on unknown attribute %q", g)
		}
		name := g
		if !n.temporal && (g == schema.T1 || g == schema.T2) {
			// Conventional aggregation yields a snapshot relation; grouping
			// on a time attribute keeps it as data under a qualified name.
			name = "1." + g
		}
		if n.temporal && (g == schema.T1 || g == schema.T2) {
			return nil, fmt.Errorf("algebra: %s cannot group on time attribute %q", n.Op(), g)
		}
		attrs = append(attrs, schema.Attr(name, s.At(i).Kind))
	}
	for _, a := range n.Aggs {
		k, err := a.ResultKind(s)
		if err != nil {
			return nil, err
		}
		if a.As == "" {
			return nil, fmt.Errorf("algebra: aggregate %s lacks a result name", a)
		}
		attrs = append(attrs, schema.Attr(a.As, k))
	}
	if n.temporal {
		attrs = append(attrs,
			schema.Attr(schema.T1, value.KindTime),
			schema.Attr(schema.T2, value.KindTime))
	}
	return schema.New(attrs...)
}

// Label implements Node.
func (n *Aggregate) Label() string {
	parts := make([]string, 0, len(n.GroupBy)+len(n.Aggs))
	parts = append(parts, n.GroupBy...)
	for _, a := range n.Aggs {
		parts = append(parts, a.String())
	}
	return n.Op().String() + "{" + strings.Join(parts, ",") + "}"
}

// Equal implements Node.
func (n *Aggregate) Equal(other Node) bool {
	o, ok := other.(*Aggregate)
	if !ok || o.temporal != n.temporal ||
		len(o.GroupBy) != len(n.GroupBy) || len(o.Aggs) != len(n.Aggs) {
		return false
	}
	for i := range n.GroupBy {
		if n.GroupBy[i] != o.GroupBy[i] {
			return false
		}
	}
	for i := range n.Aggs {
		if n.Aggs[i] != o.Aggs[i] {
			return false
		}
	}
	return n.child.Equal(o.child)
}

// unary is the shared shape of parameter-free unary operators: rdup, rdupᵀ,
// coalᵀ, TS, TD.
type unary struct {
	op    Op
	child Node
}

func (n *unary) Op() Op           { return n.op }
func (n *unary) Children() []Node { return []Node{n.child} }
func (n *unary) WithChildren(ch ...Node) Node {
	mustArity(n.op, len(ch))
	return &unary{op: n.op, child: ch[0]}
}
func (n *unary) Label() string { return n.op.String() }
func (n *unary) Equal(other Node) bool {
	o, ok := other.(*unary)
	return ok && o.op == n.op && n.child.Equal(o.child)
}

// Schema implements Node for each parameter-free unary operator.
func (n *unary) Schema() (*schema.Schema, error) {
	s, err := n.child.Schema()
	if err != nil {
		return nil, err
	}
	switch n.op {
	case OpRdup:
		// Regular duplicate elimination produces a snapshot relation; on a
		// temporal argument the time attributes are renamed "1.T1"/"1.T2"
		// exactly as in Figure 3's R2.
		return s.QualifyTime(1), nil
	case OpTRdup, OpCoal:
		if !s.Temporal() {
			return nil, fmt.Errorf("algebra: %s requires a temporal argument", n.op)
		}
		return s, nil
	case OpTransferS, OpTransferD:
		return s, nil
	default:
		return nil, fmt.Errorf("algebra: unary schema for %s", n.op)
	}
}

// NewRdup returns rdup(child), regular duplicate elimination.
func NewRdup(child Node) Node { return &unary{op: OpRdup, child: child} }

// NewTRdup returns rdupᵀ(child), temporal duplicate elimination.
func NewTRdup(child Node) Node { return &unary{op: OpTRdup, child: child} }

// NewCoal returns coalᵀ(child), coalescing.
func NewCoal(child Node) Node { return &unary{op: OpCoal, child: child} }

// NewTransferS returns TS(child): transfer the child's result from the DBMS
// to the stratum. Everything strictly below a TS executes in the DBMS.
func NewTransferS(child Node) Node { return &unary{op: OpTransferS, child: child} }

// NewTransferD returns TD(child): transfer the child's result from the
// stratum to the DBMS.
func NewTransferD(child Node) Node { return &unary{op: OpTransferD, child: child} }

// Sort is the sorting operation sort_A. Per Table 1 it retains duplicates
// and coalescing; its result order is A — or Order(r) in the special case
// where A is a prefix of Order(r).
type Sort struct {
	Spec  relation.OrderSpec
	child Node
}

// NewSort returns sort_spec(child).
func NewSort(spec relation.OrderSpec, child Node) *Sort { return &Sort{Spec: spec, child: child} }

// Op implements Node.
func (n *Sort) Op() Op { return OpSort }

// Children implements Node.
func (n *Sort) Children() []Node { return []Node{n.child} }

// WithChildren implements Node.
func (n *Sort) WithChildren(ch ...Node) Node {
	mustArity(OpSort, len(ch))
	return &Sort{Spec: n.Spec, child: ch[0]}
}

// Schema implements Node.
func (n *Sort) Schema() (*schema.Schema, error) {
	s, err := n.child.Schema()
	if err != nil {
		return nil, err
	}
	if err := n.Spec.Validate(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Label implements Node.
func (n *Sort) Label() string {
	keys := make([]string, len(n.Spec))
	for i, k := range n.Spec {
		keys[i] = k.String()
	}
	return "sort{" + strings.Join(keys, ",") + "}"
}

// Equal implements Node.
func (n *Sort) Equal(other Node) bool {
	o, ok := other.(*Sort)
	return ok && n.Spec.Equal(o.Spec) && n.child.Equal(o.child)
}

// Join is the join idiom: σ_P(l × r) — and TJoin its temporal counterpart
// σ_P(l ×ᵀ r). Idioms are "combinations of operations ... included for
// efficiency, but ... identified as idioms" (Section 2.2). Expand converts
// a join back to its defining combination.
type Join struct {
	P        expr.Pred
	left     Node
	right    Node
	temporal bool
}

// NewJoin returns the conventional join idiom l ⋈_P r.
func NewJoin(p expr.Pred, l, r Node) *Join { return &Join{P: p, left: l, right: r} }

// NewTJoin returns the temporal join idiom l ⋈ᵀ_P r.
func NewTJoin(p expr.Pred, l, r Node) *Join {
	return &Join{P: p, left: l, right: r, temporal: true}
}

// Op implements Node.
func (n *Join) Op() Op {
	if n.temporal {
		return OpTJoin
	}
	return OpJoin
}

// Children implements Node.
func (n *Join) Children() []Node { return []Node{n.left, n.right} }

// WithChildren implements Node.
func (n *Join) WithChildren(ch ...Node) Node {
	mustArity(n.Op(), len(ch))
	return &Join{P: n.P, left: ch[0], right: ch[1], temporal: n.temporal}
}

// Schema implements Node.
func (n *Join) Schema() (*schema.Schema, error) {
	return n.Expand().Schema()
}

// Expand returns the defining combination σ_P(l × r) or σ_P(l ×ᵀ r).
func (n *Join) Expand() Node {
	if n.temporal {
		return NewSelect(n.P, NewTProduct(n.left, n.right))
	}
	return NewSelect(n.P, NewProduct(n.left, n.right))
}

// Label implements Node.
func (n *Join) Label() string { return n.Op().String() + "{" + n.P.String() + "}" }

// Equal implements Node.
func (n *Join) Equal(other Node) bool {
	o, ok := other.(*Join)
	return ok && o.temporal == n.temporal && n.P.EqualPred(o.P) &&
		n.left.Equal(o.left) && n.right.Equal(o.right)
}
