// Package algebra implements the logical operator trees of the paper's
// temporally extended algebra (Section 2.4, Table 1).
//
// Nodes are immutable: rewrites build new trees sharing unchanged subtrees.
// Every node derives its output schema, renders itself both as a canonical
// one-line string (used to deduplicate plans during enumeration) and as an
// indented tree (the style of Figures 2 and 6), and supports structural
// equality.
package algebra

// Op identifies an operator of the algebra.
type Op uint8

// The operators. The first group derives from the conventional relational
// algebra; operators prefixed with T are the temporal counterparts that are
// snapshot-reducible to them. Union is the multiset union of Albert [1]
// (max-multiplicity), distinct from UnionAll (concatenation). Coal is
// coalescing, Sort is sorting, and TransferS/TransferD are the stratum
// transfer operations of Section 4.5. Join and TJoin are idioms (Section
// 2.4): combinations of product, selection and projection included for
// efficiency and identified as such.
const (
	OpInvalid Op = iota
	OpRel
	OpSelect
	OpProject
	OpUnionAll
	OpProduct
	OpDiff
	OpAggregate
	OpRdup
	OpTProduct
	OpTDiff
	OpTAggregate
	OpTRdup
	OpUnion
	OpTUnion
	OpCoal
	OpSort
	OpTransferS
	OpTransferD
	OpJoin
	OpTJoin
)

// String returns the operator's rendering in plans, following the paper's
// notation transliterated to ASCII-plus: σ→select, π→project, ⊔→unionall,
// ×→product, \→diff, 𝒢→aggr, superscript-T→ suffix "T".
func (o Op) String() string {
	switch o {
	case OpRel:
		return "rel"
	case OpSelect:
		return "select"
	case OpProject:
		return "project"
	case OpUnionAll:
		return "unionall"
	case OpProduct:
		return "product"
	case OpDiff:
		return "diff"
	case OpAggregate:
		return "aggr"
	case OpRdup:
		return "rdup"
	case OpTProduct:
		return "productT"
	case OpTDiff:
		return "diffT"
	case OpTAggregate:
		return "aggrT"
	case OpTRdup:
		return "rdupT"
	case OpUnion:
		return "union"
	case OpTUnion:
		return "unionT"
	case OpCoal:
		return "coalT"
	case OpSort:
		return "sort"
	case OpTransferS:
		return "TS"
	case OpTransferD:
		return "TD"
	case OpJoin:
		return "join"
	case OpTJoin:
		return "joinT"
	default:
		return "invalid"
	}
}

// Temporal reports whether the operator is one of the temporal operations
// (snapshot-reducible counterparts, temporal union, or coalescing). These
// are the operations the simulated conventional DBMS cannot execute; in the
// layered architecture they run in the stratum (Section 2.1).
func (o Op) Temporal() bool {
	switch o {
	case OpTProduct, OpTDiff, OpTAggregate, OpTRdup, OpTUnion, OpCoal, OpTJoin:
		return true
	default:
		return false
	}
}

// SnapshotReducible reports whether the operator is defined as the
// snapshot-reducible counterpart of a conventional operation (Section 2.2),
// i.e. its result's snapshots are fully determined by its arguments'
// snapshots. Coalescing is deliberately not snapshot-reducible (it inspects
// periods), and sorting/selection/projection are period-insensitive in a
// different sense handled by the property inference.
func (o Op) SnapshotReducible() bool {
	switch o {
	case OpTProduct, OpTDiff, OpTAggregate, OpTRdup, OpTUnion, OpTJoin:
		return true
	default:
		return false
	}
}

// Arity returns the number of children the operator takes.
func (o Op) Arity() int {
	switch o {
	case OpRel:
		return 0
	case OpUnionAll, OpProduct, OpDiff, OpTProduct, OpTDiff, OpUnion, OpTUnion, OpJoin, OpTJoin:
		return 2
	default:
		return 1
	}
}

// ConventionalCounterpart returns the conventional operation a temporal
// operation is snapshot-reducible to, or OpInvalid.
func (o Op) ConventionalCounterpart() Op {
	switch o {
	case OpTProduct:
		return OpProduct
	case OpTDiff:
		return OpDiff
	case OpTAggregate:
		return OpAggregate
	case OpTRdup:
		return OpRdup
	case OpTUnion:
		return OpUnion
	case OpTJoin:
		return OpJoin
	default:
		return OpInvalid
	}
}
