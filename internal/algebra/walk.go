package algebra

import (
	"fmt"
	"strings"
)

// Path addresses a node within a tree as the sequence of child indices from
// the root; the empty path is the root itself. Paths are the "locations" of
// the paper's enumeration algorithm (Figure 5).
type Path []int

// String renders the path as "0.1.0"; the root is "ε".
func (p Path) String() string {
	if len(p) == 0 {
		return "ε"
	}
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, ".")
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// Child extends the path by one child index.
func (p Path) Child(i int) Path {
	out := make(Path, len(p)+1)
	copy(out, p)
	out[len(p)] = i
	return out
}

// NodeAt returns the node addressed by path, or an error if the path leaves
// the tree.
func NodeAt(root Node, path Path) (Node, error) {
	n := root
	for d, i := range path {
		ch := n.Children()
		if i < 0 || i >= len(ch) {
			return nil, fmt.Errorf("algebra: path %s invalid at depth %d under %s", path, d, n.Label())
		}
		n = ch[i]
	}
	return n, nil
}

// ReplaceAt returns a new tree in which the node addressed by path is
// replaced by repl. Untouched subtrees are shared with the original.
func ReplaceAt(root Node, path Path, repl Node) (Node, error) {
	if len(path) == 0 {
		return repl, nil
	}
	ch := root.Children()
	i := path[0]
	if i < 0 || i >= len(ch) {
		return nil, fmt.Errorf("algebra: path %s invalid under %s", path, root.Label())
	}
	newChild, err := ReplaceAt(ch[i], path[1:], repl)
	if err != nil {
		return nil, err
	}
	newCh := make([]Node, len(ch))
	copy(newCh, ch)
	newCh[i] = newChild
	return root.WithChildren(newCh...), nil
}

// Walk visits every node of the tree in pre-order, passing its path; if fn
// returns false the node's subtree is skipped.
func Walk(root Node, fn func(n Node, path Path) bool) {
	walk(root, nil, fn)
}

func walk(n Node, path Path, fn func(Node, Path) bool) {
	if !fn(n, path) {
		return
	}
	for i, c := range n.Children() {
		walk(c, path.Child(i), fn)
	}
}

// Paths returns the path of every node in pre-order.
func Paths(root Node) []Path {
	var out []Path
	Walk(root, func(_ Node, p Path) bool {
		out = append(out, p.Clone())
		return true
	})
	return out
}

// Count returns the number of nodes in the tree.
func Count(root Node) int {
	n := 0
	Walk(root, func(Node, Path) bool { n++; return true })
	return n
}

// Validate derives the schema of every node, surfacing the first structural
// error anywhere in the tree.
func Validate(root Node) error {
	var firstErr error
	Walk(root, func(n Node, p Path) bool {
		if _, err := n.Schema(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("at %s (%s): %w", p, n.Label(), err)
			}
			return false
		}
		return true
	})
	return firstErr
}

// Canonical renders the whole tree as a single-line canonical string; two
// trees are structurally equal exactly when their canonical strings match.
// The enumeration algorithm uses it to deduplicate generated plans.
func Canonical(n Node) string {
	var b strings.Builder
	writeCanonical(&b, n)
	return b.String()
}

func writeCanonical(b *strings.Builder, n Node) {
	b.WriteString(n.Label())
	ch := n.Children()
	if len(ch) == 0 {
		return
	}
	b.WriteByte('(')
	for i, c := range ch {
		if i > 0 {
			b.WriteByte(',')
		}
		writeCanonical(b, c)
	}
	b.WriteByte(')')
}

// Render prints the tree in the indented style of Figures 2 and 6, one
// operator per line, children indented beneath their parent. The optional
// annotate callback appends a suffix to each node's line (used to show the
// property vectors of Figure 6).
func Render(root Node, annotate func(n Node, path Path) string) string {
	var b strings.Builder
	render(&b, root, nil, "", annotate)
	return b.String()
}

func render(b *strings.Builder, n Node, path Path, indent string, annotate func(Node, Path) string) {
	b.WriteString(indent)
	b.WriteString(n.Label())
	if annotate != nil {
		if suffix := annotate(n, path); suffix != "" {
			b.WriteString("  ")
			b.WriteString(suffix)
		}
	}
	b.WriteByte('\n')
	for i, c := range n.Children() {
		render(b, c, path.Child(i), indent+"  ", annotate)
	}
}
