// Package catalog manages named base relations together with the metadata
// the optimizer needs: declared order, duplicate-freeness, snapshot
// duplicate-freeness, coalescing state, and simple statistics for the cost
// model. It also provides the paper's example database (Figure 1).
package catalog

import (
	"fmt"
	"hash/fnv"
	"sort"

	"tqp/internal/algebra"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/store"
	"tqp/internal/value"
)

// Stats summarizes a base relation for cardinality estimation.
type Stats struct {
	// Card is the tuple count.
	Card int
	// DistinctFrac estimates the fraction of distinct tuples.
	DistinctFrac float64
	// AvgPeriod is the mean period duration of a temporal relation.
	AvgPeriod float64
	// MinT and MaxT bound the non-empty periods of a temporal relation
	// (earliest start, latest end) — the selectivity anchors for
	// time-travel scans. Both are 0 for snapshot relations and for
	// temporal relations with no non-empty periods.
	MinT, MaxT period.Chronon
}

// Entry is one catalog relation.
type Entry struct {
	Name  string
	Rel   *relation.Relation
	Info  algebra.BaseInfo
	Stats Stats

	// segs mirrors the persistent store's segment list for a disk-backed
	// relation (append order; cumulative Rows give each segment's row
	// range within Rel). Nil for purely in-memory entries, which have no
	// period index to prune with.
	segs []store.SegmentInfo
}

// Catalog is a set of named relations.
type Catalog struct {
	entries map[string]*Entry

	// st is the persistent store backing this catalog's relations, or nil
	// for an in-memory catalog. Appends and compactions write through to
	// it, and its manifest version is folded into Fingerprint so cached
	// plans never outlive the data they were planned against.
	st *store.Store

	// met holds the cumulative scan counters (see metrics.go).
	met meters
}

// New returns an empty catalog.
func New() *Catalog { return &Catalog{entries: make(map[string]*Entry)} }

// Add registers a relation under name. The Info flags are verified against
// the instance so that the optimizer's static reasoning starts from true
// premises; Add fails on a lie (e.g., declaring Distinct over data with
// duplicates).
func (c *Catalog) Add(name string, r *relation.Relation, info algebra.BaseInfo) error {
	if _, dup := c.entries[name]; dup {
		return fmt.Errorf("catalog: relation %q already exists", name)
	}
	if err := verifyInfo(name, r, info); err != nil {
		return err
	}
	r = r.Clone()
	r.SetOrder(info.Order)
	c.entries[name] = &Entry{Name: name, Rel: r, Info: info, Stats: computeStats(r)}
	return nil
}

// AddTrusted registers a relation whose Info the caller vouches for,
// skipping Add's instance verification, the defensive clone, and the O(n)
// statistics pass. It exists for execution-only catalogs built from data
// that already passed Add once — shard slices of a verified relation, or a
// coordinator's gathered intermediate results — where re-verification per
// shard would turn setup into an O(shards·n) scan. The relation must not
// be mutated after registration. Stats are the trivial estimate; these
// catalogs execute plans, they don't cost them.
func (c *Catalog) AddTrusted(name string, r *relation.Relation, info algebra.BaseInfo) error {
	if _, dup := c.entries[name]; dup {
		return fmt.Errorf("catalog: relation %q already exists", name)
	}
	r.SetOrder(info.Order)
	c.entries[name] = &Entry{Name: name, Rel: r, Info: info, Stats: Stats{Card: r.Len(), DistinctFrac: 1}}
	return nil
}

// MustAdd is Add panicking on error, for catalog literals.
func (c *Catalog) MustAdd(name string, r *relation.Relation, info algebra.BaseInfo) {
	if err := c.Add(name, r, info); err != nil {
		panic(err)
	}
}

// verifyInfo checks declared base-info flags against the instance — the
// truth gate shared by Add and by appends to existing entries (an append
// must not silently falsify what the optimizer was promised).
func verifyInfo(name string, r *relation.Relation, info algebra.BaseInfo) error {
	if info.Distinct && r.HasDuplicates() {
		return fmt.Errorf("catalog: %q declared distinct but has duplicates", name)
	}
	if info.SnapshotDistinct && r.HasSnapshotDuplicates() {
		return fmt.Errorf("catalog: %q declared snapshot-distinct but has snapshot duplicates", name)
	}
	if info.Coalesced && !r.IsCoalesced() {
		return fmt.Errorf("catalog: %q declared coalesced but is not", name)
	}
	if !info.Order.Empty() && !r.SortedBy(info.Order) {
		return fmt.Errorf("catalog: %q declared sorted by %s but is not", name, info.Order)
	}
	return nil
}

func computeStats(r *relation.Relation) Stats {
	s := Stats{Card: r.Len(), DistinctFrac: 1}
	if r.Len() > 0 {
		distinct := make(map[string]bool, r.Len())
		for _, t := range r.Tuples() {
			distinct[t.Key()] = true
		}
		s.DistinctFrac = float64(len(distinct)) / float64(r.Len())
	}
	if r.Temporal() && r.Len() > 0 {
		var total int64
		first := true
		for _, p := range r.Periods() {
			total += p.Duration()
			if p.Empty() {
				continue
			}
			if first || p.Start < s.MinT {
				s.MinT = p.Start
			}
			if first || p.End > s.MaxT {
				s.MaxT = p.End
			}
			first = false
		}
		s.AvgPeriod = float64(total) / float64(r.Len())
	}
	return s
}

// Resolve implements eval.Source. Scan names carrying a time-travel suffix
// (see ScanName) resolve to the period-filtered view of their base
// relation.
func (c *Catalog) Resolve(name string) (*relation.Relation, error) {
	r, _, _, err := c.ResolveScan(name)
	return r, err
}

// Entry returns the catalog entry for name.
func (c *Catalog) Entry(name string) (*Entry, error) {
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return e, nil
}

// Node returns an algebra leaf for the named relation, carrying its schema
// and base info.
func (c *Catalog) Node(name string) (*algebra.Rel, error) {
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	return algebra.NewRel(e.Name, e.Rel.Schema(), e.Info), nil
}

// MustNode is Node panicking on error.
func (c *Catalog) MustNode(name string) *algebra.Rel {
	n, err := c.Node(name)
	if err != nil {
		panic(err)
	}
	return n
}

// Fingerprint returns a stable hash of the catalog's planning-relevant
// state: relation names, schemas, base-info flags, declared orders and
// statistics. Two catalogs with equal fingerprints yield identical plans
// for any statement, so the fingerprint keys cached physical plans (the
// server's plan cache) — a catalog swap or a statistics change invalidates
// every entry keyed under the old fingerprint. Instance tuples are not
// hashed; they don't influence planning, only Stats does.
func (c *Catalog) Fingerprint() string {
	h := fnv.New64a()
	for _, name := range c.Names() {
		e := c.entries[name]
		fmt.Fprintf(h, "%s|%s|%v|%v|%v|%s|%d|%.9g|%.9g|%d|%d|%d;",
			name, e.Rel.Schema(), e.Info.Distinct, e.Info.SnapshotDistinct,
			e.Info.Coalesced, e.Info.Order, e.Stats.Card,
			e.Stats.DistinctFrac, e.Stats.AvgPeriod,
			e.Stats.MinT, e.Stats.MaxT, len(e.segs))
	}
	if c.st != nil {
		// The manifest version counts every durable commit, so a cached
		// plan keyed under an older fingerprint can never be replayed over
		// appended or compacted data.
		fmt.Fprintf(h, "store|%d;", c.st.Version())
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Names returns the catalog's relation names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.entries))
	for n := range c.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// EmployeeSchema is the schema of the paper's EMPLOYEE relation.
func EmployeeSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr("Dept", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
}

// ProjectSchema is the schema of the paper's PROJECT relation.
func ProjectSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr("Prj", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
}

// Paper returns the example database of Figure 1: the EMPLOYEE and PROJECT
// temporal relations, with time values denoting months during some year and
// a closed-open representation for time periods.
func Paper() *Catalog {
	c := New()
	emp := relation.MustFromRows(EmployeeSchema(), [][]any{
		{"John", "Sales", 1, 8},
		{"John", "Advertising", 6, 11},
		{"Anna", "Sales", 2, 6},
		{"Anna", "Advertising", 2, 6},
		{"Anna", "Sales", 6, 12},
	})
	prj := relation.MustFromRows(ProjectSchema(), [][]any{
		{"John", "P1", 2, 3},
		{"John", "P2", 5, 6},
		{"John", "P1", 7, 8},
		{"John", "P3", 9, 10},
		{"Anna", "P2", 3, 4},
		{"Anna", "P2", 5, 6},
		{"Anna", "P3", 7, 8},
		{"Anna", "P3", 9, 10},
	})
	// EMPLOYEE is distinct as a list of (name, dept, period) tuples but has
	// duplicates in snapshots (Anna holds two departments over [2,6));
	// PROJECT rows are distinct and snapshot-distinct (no employee is on
	// the same project twice at once) but neither relation is coalesced as
	// projected views may become; both are stored unordered.
	c.MustAdd("EMPLOYEE", emp, algebra.BaseInfo{Distinct: true})
	c.MustAdd("PROJECT", prj, algebra.BaseInfo{Distinct: true, SnapshotDistinct: true})
	return c
}

// PaperResultRows returns the paper's expected Result relation from
// Figure 1 (sorted by EmpName ASC, coalesced, snapshot-duplicate-free) as
// raw rows over (EmpName, T1, T2).
func PaperResultRows() [][]any {
	return [][]any{
		{"Anna", 2, 3},
		{"Anna", 4, 5},
		{"Anna", 6, 7},
		{"Anna", 8, 9},
		{"Anna", 10, 12},
		{"John", 1, 2},
		{"John", 3, 5},
		{"John", 6, 7},
		{"John", 8, 9},
		{"John", 10, 11},
	}
}
