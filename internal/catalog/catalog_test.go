package catalog_test

import (
	"strings"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func TestPaperDatabase(t *testing.T) {
	c := catalog.Paper()
	emp, err := c.Resolve("EMPLOYEE")
	if err != nil {
		t.Fatal(err)
	}
	if emp.Len() != 5 {
		t.Errorf("EMPLOYEE has %d tuples, want 5", emp.Len())
	}
	prj, err := c.Resolve("PROJECT")
	if err != nil {
		t.Fatal(err)
	}
	if prj.Len() != 8 {
		t.Errorf("PROJECT has %d tuples, want 8", prj.Len())
	}
	// EMPLOYEE itself is snapshot-distinct — Anna's two [2,6) spells differ
	// in Dept. The paper's temporal duplicates only appear after projecting
	// Dept away (Figure 3), which TestFigure3R1 in package eval pins.
	if emp.HasSnapshotDuplicates() {
		t.Error("EMPLOYEE tuples are pairwise distinct in every snapshot")
	}
	if !emp.Temporal() || emp.IsCoalesced() {
		t.Error("EMPLOYEE is temporal and uncoalesced (Anna's Sales spells are adjacent)")
	}
	if prj.HasSnapshotDuplicates() {
		t.Error("PROJECT is snapshot-distinct")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "EMPLOYEE" || names[1] != "PROJECT" {
		t.Errorf("Names = %v", names)
	}
}

func TestAddValidatesDeclarations(t *testing.T) {
	s := catalog.EmployeeSchema()
	withDups := relation.MustFromRows(s, [][]any{
		{"x", "d", 1, 3},
		{"x", "d", 1, 3},
	})
	c := catalog.New()
	if err := c.Add("R", withDups, algebra.BaseInfo{Distinct: true}); err == nil {
		t.Error("declaring Distinct over duplicated data must fail")
	}
	if err := c.Add("R", withDups, algebra.BaseInfo{SnapshotDistinct: true}); err == nil {
		t.Error("declaring SnapshotDistinct over overlapping data must fail")
	}
	uncoalesced := relation.MustFromRows(s, [][]any{
		{"x", "d", 1, 3},
		{"x", "d", 3, 5},
	})
	if err := c.Add("R", uncoalesced, algebra.BaseInfo{Coalesced: true}); err == nil {
		t.Error("declaring Coalesced over adjacent value-equivalent tuples must fail")
	}
	unsorted := relation.MustFromRows(s, [][]any{
		{"z", "d", 1, 3},
		{"a", "d", 4, 6},
	})
	if err := c.Add("R", unsorted, algebra.BaseInfo{
		Order: relation.OrderSpec{relation.Key("EmpName")},
	}); err == nil {
		t.Error("declaring an order the data does not satisfy must fail")
	}
	if err := c.Add("R", unsorted, algebra.BaseInfo{Distinct: true}); err != nil {
		t.Errorf("truthful declaration rejected: %v", err)
	}
	if err := c.Add("R", unsorted, algebra.BaseInfo{}); err == nil {
		t.Error("duplicate relation names must fail")
	}
}

func TestNodeCarriesInfo(t *testing.T) {
	c := catalog.Paper()
	n, err := c.Node("PROJECT")
	if err != nil {
		t.Fatal(err)
	}
	if !n.Info.SnapshotDistinct || !n.Info.Distinct {
		t.Errorf("PROJECT info = %+v", n.Info)
	}
	if _, err := c.Node("NOPE"); err == nil {
		t.Error("unknown relation must fail")
	}
	if _, err := c.Entry("NOPE"); err == nil {
		t.Error("unknown entry must fail")
	}
}

func TestStats(t *testing.T) {
	c := catalog.Paper()
	e, err := c.Entry("EMPLOYEE")
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats.Card != 5 {
		t.Errorf("Card = %d", e.Stats.Card)
	}
	if e.Stats.DistinctFrac != 1 {
		t.Errorf("EMPLOYEE rows are pairwise distinct; frac = %f", e.Stats.DistinctFrac)
	}
	if e.Stats.AvgPeriod <= 0 {
		t.Errorf("AvgPeriod = %f", e.Stats.AvgPeriod)
	}
}

func TestPaperPlansValidate(t *testing.T) {
	c := catalog.Paper()
	for name, plan := range map[string]algebra.Node{
		"initial":      catalog.PaperInitialPlan(c),
		"intermediate": catalog.PaperIntermediatePlan(c),
		"optimized":    catalog.PaperOptimizedPlan(c),
	} {
		if err := algebra.Validate(plan); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	canon := algebra.Canonical(catalog.PaperInitialPlan(c))
	for _, part := range []string{"TS(", "sort{EmpName ASC}", "coalT", "rdupT", "diffT"} {
		if !strings.Contains(canon, part) {
			t.Errorf("initial plan missing %s: %s", part, canon)
		}
	}
}

func TestResolveCopiesAreIsolated(t *testing.T) {
	c := catalog.New()
	s := schema.MustNew(schema.Attr("A", value.KindInt))
	r := relation.MustFromRows(s, [][]any{{1}})
	if err := c.Add("R", r, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's relation after Add must not affect the catalog.
	r.Append(relation.NewTuple(value.Int(2)))
	got, _ := c.Resolve("R")
	if got.Len() != 1 {
		t.Error("catalog must hold its own copy of the tuple list")
	}
}
