package catalog

import (
	"fmt"
	"io"
	"strings"

	"tqp/internal/algebra"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// AddCSV loads a relation from CSV text whose header declares the schema as
// "name:domain" columns — e.g.
//
//	EmpName:string,Dept:string,T1:time,T2:time
//	John,Sales,1,8
//
// Domains are int, float, string, bool and time. A schema containing both
// T1:time and T2:time loads as a temporal relation. The Info flags are
// verified against the data like Add.
func (c *Catalog) AddCSV(name string, r io.Reader, info algebra.BaseInfo) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("catalog: reading csv for %q: %w", name, err)
	}
	lines := splitLines(string(data))
	if len(lines) == 0 {
		return fmt.Errorf("catalog: empty csv for %q", name)
	}
	sch, err := parseCSVHeader(lines[0])
	if err != nil {
		return fmt.Errorf("catalog: %q: %w", name, err)
	}
	rel := relation.New(sch)
	for ln, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != sch.Len() {
			return fmt.Errorf("catalog: %q line %d: %d cells, schema %s", name, ln+2, len(cells), sch)
		}
		t := make(relation.Tuple, len(cells))
		for i, cell := range cells {
			v, err := value.Parse(sch.At(i).Kind, strings.TrimSpace(cell))
			if err != nil {
				return fmt.Errorf("catalog: %q line %d: %w", name, ln+2, err)
			}
			t[i] = v
		}
		rel.Append(t)
	}
	return c.Add(name, rel, info)
}

func parseCSVHeader(header string) (*schema.Schema, error) {
	cols := strings.Split(header, ",")
	attrs := make([]schema.Attribute, 0, len(cols))
	for _, col := range cols {
		parts := strings.SplitN(strings.TrimSpace(col), ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("header column %q must be name:domain", col)
		}
		kind, err := value.ParseKind(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, schema.Attr(strings.TrimSpace(parts[0]), kind))
	}
	return schema.New(attrs...)
}

func splitLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		out = append(out, line)
	}
	return out
}

// WriteCSV renders a relation in the AddCSV format, making catalogs
// round-trippable.
func WriteCSV(w io.Writer, r *relation.Relation) error {
	sch := r.Schema()
	header := make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		a := sch.At(i)
		header[i] = a.Name + ":" + a.Kind.String()
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, t := range r.Tuples() {
		cells := make([]string, len(t))
		for i, v := range t {
			cells[i] = v.String()
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}
