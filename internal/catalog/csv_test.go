package catalog_test

import (
	"strings"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
)

const employeeCSV = `EmpName:string,Dept:string,T1:time,T2:time
John,Sales,1,8
John,Advertising,6,11
Anna,Sales,2,6
Anna,Advertising,2,6
Anna,Sales,6,12
`

func TestAddCSVRoundTrip(t *testing.T) {
	c := catalog.New()
	if err := c.AddCSV("EMP", strings.NewReader(employeeCSV), algebra.BaseInfo{Distinct: true}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Resolve("EMP")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := catalog.Paper().Resolve("EMPLOYEE")
	if !got.Schema().Equal(want.Schema()) {
		t.Fatalf("schema %s, want %s", got.Schema(), want.Schema())
	}
	if !got.EqualAsList(want) {
		t.Fatalf("csv load diverges:\n%s\nwant\n%s", got, want)
	}

	var sb strings.Builder
	if err := catalog.WriteCSV(&sb, got); err != nil {
		t.Fatal(err)
	}
	c2 := catalog.New()
	if err := c2.AddCSV("EMP2", strings.NewReader(sb.String()), algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	back, _ := c2.Resolve("EMP2")
	if !back.EqualAsList(got) {
		t.Error("WriteCSV/AddCSV round trip diverges")
	}
}

func TestAddCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"no domain", "EmpName\nJohn"},
		{"bad domain", "A:blob\n1"},
		{"arity", "A:int,B:int\n1"},
		{"bad cell", "A:int\nnotanumber"},
		{"half temporal", "A:int,T1:time\n1,2"},
	}
	for _, cse := range cases {
		c := catalog.New()
		if err := c.AddCSV("R", strings.NewReader(cse.csv), algebra.BaseInfo{}); err == nil {
			t.Errorf("%s: expected an error", cse.name)
		}
	}
}

func TestAddCSVValidatesInfo(t *testing.T) {
	c := catalog.New()
	dup := "A:int\n1\n1\n"
	if err := c.AddCSV("R", strings.NewReader(dup), algebra.BaseInfo{Distinct: true}); err == nil {
		t.Error("Distinct over duplicated CSV data must fail")
	}
}
