package catalog

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/relation"
	"tqp/internal/store"
)

// OpenDir opens (or initializes) the persistent store at dir and returns a
// catalog over its relations. Every relation is materialized on open — cold
// open is the one disk pass; scans then run in memory, with the per-segment
// period index still pruning travel scans via the manifest's fences.
func OpenDir(dir string) (*Catalog, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	c := New()
	c.st = st
	for _, name := range st.Relations() {
		if err := c.loadEntry(name); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// DiskBacked reports whether the catalog persists to a store directory.
func (c *Catalog) DiskBacked() bool { return c.st != nil }

// Store exposes the backing store (nil for in-memory catalogs), for tests
// and tooling that inspect the on-disk state.
func (c *Catalog) Store() *store.Store { return c.st }

// loadEntry (re)materializes one relation from the store into the catalog.
func (c *Catalog) loadEntry(name string) error {
	r, err := c.st.Load(name)
	if err != nil {
		return err
	}
	info, err := c.st.Info(name)
	if err != nil {
		return err
	}
	segs, err := c.st.Segments(name)
	if err != nil {
		return err
	}
	c.entries[name] = &Entry{Name: name, Rel: r, Info: info, Stats: computeStats(r), segs: segs}
	return nil
}

// AddDisk registers a relation in a disk-backed catalog, persisting its
// schema, verified info, and tuples before the in-memory entry appears; a
// crash between Create and Append leaves a committed empty relation, never a
// half-visible one.
func (c *Catalog) AddDisk(name string, r *relation.Relation, info algebra.BaseInfo) error {
	if c.st == nil {
		return fmt.Errorf("catalog: AddDisk on an in-memory catalog")
	}
	if _, dup := c.entries[name]; dup {
		return fmt.Errorf("catalog: relation %q already exists", name)
	}
	if err := verifyInfo(name, r, info); err != nil {
		return err
	}
	if err := c.st.Create(name, r.Schema(), info); err != nil {
		return err
	}
	if err := c.st.Append(name, r.Tuples()); err != nil {
		return err
	}
	return c.loadEntry(name)
}

// AppendTuples appends rows to a relation, writing a new segment through to
// the store first (disk-backed catalogs). The combined relation is
// re-verified against the declared info before anything is written: an
// append that would falsify Distinct, order, or any other planning promise
// is rejected whole.
func (c *Catalog) AppendTuples(name string, rows []relation.Tuple) error {
	e, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	if len(rows) == 0 {
		return nil
	}
	sch := e.Rel.Schema()
	combined := e.Rel.Clone()
	for _, t := range rows {
		if err := t.CheckAgainst(sch); err != nil {
			return fmt.Errorf("catalog: append to %q: %w", name, err)
		}
		combined.Append(t)
	}
	if err := verifyInfo(name, combined, e.Info); err != nil {
		return err
	}
	if c.st != nil {
		if err := c.st.Append(name, rows); err != nil {
			return err
		}
		segs, err := c.st.Segments(name)
		if err != nil {
			return err
		}
		e.segs = segs
	}
	combined.SetOrder(e.Info.Order)
	e.Rel = combined
	e.Stats = computeStats(combined)
	return nil
}

// AppendRows is AppendTuples over raw row literals.
func (c *Catalog) AppendRows(name string, rows [][]any) error {
	e, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	r, err := relation.FromRows(e.Rel.Schema(), rows)
	if err != nil {
		return fmt.Errorf("catalog: append to %q: %w", name, err)
	}
	return c.AppendTuples(name, r.Tuples())
}

// Compact rewrites a disk-backed relation's segments into one, re-fencing
// the period index over the merged run.
func (c *Catalog) Compact(name string) error {
	if c.st == nil {
		return fmt.Errorf("catalog: Compact on an in-memory catalog")
	}
	if _, ok := c.entries[name]; !ok {
		return fmt.Errorf("catalog: unknown relation %q", name)
	}
	if err := c.st.Compact(name); err != nil {
		return err
	}
	return c.loadEntry(name)
}

// ImportFrom copies every relation of src into this disk-backed catalog.
// It is the seeding path for a fresh -db-dir: open, find the store empty,
// import the built-in database once, and every later open reads disk.
func (c *Catalog) ImportFrom(src *Catalog) error {
	for _, name := range src.Names() {
		e := src.entries[name]
		if err := c.AddDisk(name, e.Rel, e.Info); err != nil {
			return err
		}
	}
	return nil
}
