package catalog_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func travelSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
}

// diskCatalogWithEras returns a disk-backed catalog whose relation R holds
// three appends with disjoint period eras — [0,10), [100,110), [200,210) —
// so each segment's fence isolates one era.
func diskCatalogWithEras(t *testing.T) *catalog.Catalog {
	t.Helper()
	c, err := catalog.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sch := travelSchema()
	first := relation.MustFromRows(sch, [][]any{{"a", 0, 5}, {"b", 4, 10}})
	if err := c.AddDisk("R", first, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][][]any{
		{{"c", 100, 105}, {"d", 104, 110}},
		{{"e", 200, 205}, {"f", 204, 210}},
	} {
		if err := c.AppendRows("R", rows); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestDiskCatalogReopen pins durability at the catalog layer: a reopened
// directory serves the same relations, tuples, flags and fingerprint.
func TestDiskCatalogReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := catalog.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ImportFrom(catalog.Paper()); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows("PROJECT", [][]any{{"Anna", "P9", 10, 11}}); err != nil {
		t.Fatal(err)
	}
	fp := c.Fingerprint()

	c2, err := catalog.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(c2.Names()), 2; got != want {
		t.Fatalf("reopened catalog has %d relations, want %d", got, want)
	}
	for _, name := range c2.Names() {
		was, err := c.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		now, err := c2.Resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		if !now.EqualAsList(was) {
			t.Fatalf("%s differs after reopen", name)
		}
	}
	e, err := c2.Entry("EMPLOYEE")
	if err != nil || !e.Info.Distinct {
		t.Fatalf("EMPLOYEE info lost across reopen: %+v, %v", e, err)
	}
	if c2.Fingerprint() != fp {
		t.Fatal("fingerprint differs across a reopen of unchanged data")
	}
}

// TestAppendVerifiesInfo rejects appends that would falsify the declared
// base-info flags, leaving both memory and disk untouched.
func TestAppendVerifiesInfo(t *testing.T) {
	c, err := catalog.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ImportFrom(catalog.Paper()); err != nil {
		t.Fatal(err)
	}
	fp := c.Fingerprint()
	before, _ := c.Resolve("EMPLOYEE")
	n := before.Len()
	// EMPLOYEE is declared Distinct; appending an existing row duplicates it.
	if err := c.AppendRows("EMPLOYEE", [][]any{{"John", "Sales", 1, 8}}); err == nil {
		t.Fatal("append violating Distinct must fail")
	}
	after, _ := c.Resolve("EMPLOYEE")
	if after.Len() != n {
		t.Fatalf("failed append changed the relation: %d → %d rows", n, after.Len())
	}
	if c.Fingerprint() != fp {
		t.Fatal("failed append changed the fingerprint")
	}
}

// TestFingerprintTracksAppends: a persisted append must invalidate cached
// plans, so the fingerprint changes with every commit.
func TestFingerprintTracksAppends(t *testing.T) {
	c := diskCatalogWithEras(t)
	fp := c.Fingerprint()
	if err := c.AppendRows("R", [][]any{{"g", 300, 301}}); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == fp {
		t.Fatal("fingerprint unchanged after a persisted append")
	}
}

// TestResolveScanPrunesSegments is the period index end to end, with the
// vacuity guard the acceptance criteria require: a travel scan over one era
// must report skipped segments, a full scan must not skip any.
func TestResolveScanPrunesSegments(t *testing.T) {
	c := diskCatalogWithEras(t)

	// Full scan: every segment read, none skipped.
	r, scanned, skipped, err := c.ResolveScan("R")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 6 || scanned != 3 || skipped != 0 {
		t.Fatalf("full scan: %d rows, %d scanned, %d skipped; want 6/3/0", r.Len(), scanned, skipped)
	}

	// AS OF 104 lives in the middle era only.
	name := catalog.ScanName("R", &catalog.Travel{Kind: catalog.TravelAsOf, T: 104})
	r, scanned, skipped, err = c.ResolveScan(name)
	if err != nil {
		t.Fatal(err)
	}
	if scanned != 1 || skipped != 2 {
		t.Fatalf("AS OF 104: %d scanned, %d skipped; want 1/2 — pruning is vacuous", scanned, skipped)
	}
	if r.Len() != 2 {
		t.Fatalf("AS OF 104 returned %d rows, want 2", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if !r.PeriodOf(i).Overlaps(period.New(104, 105)) {
			t.Fatalf("row %d does not overlap the query instant", i)
		}
	}

	// A period spanning two eras scans two segments and skips one.
	name = catalog.ScanName("R", &catalog.Travel{Kind: catalog.TravelPeriod, Start: 5, End: 105})
	r, scanned, skipped, err = c.ResolveScan(name)
	if err != nil {
		t.Fatal(err)
	}
	if scanned != 2 || skipped != 1 {
		t.Fatalf("[5,105): %d scanned, %d skipped; want 2/1", scanned, skipped)
	}

	// A period before all eras skips everything.
	name = catalog.ScanName("R", &catalog.Travel{Kind: catalog.TravelPeriod, Start: -100, End: -50})
	r, scanned, skipped, err = c.ResolveScan(name)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || scanned != 0 || skipped != 3 {
		t.Fatalf("disjoint period: %d rows, %d scanned, %d skipped; want 0/0/3", r.Len(), scanned, skipped)
	}
}

// TestTravelMatchesNaiveFilter: segment pruning must be pure optimization —
// the travel result equals the unindexed overlap filter, in base order.
func TestTravelMatchesNaiveFilter(t *testing.T) {
	c := diskCatalogWithEras(t)
	base, err := c.Resolve("R")
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []catalog.Travel{
		{Kind: catalog.TravelAsOf, T: 4},
		{Kind: catalog.TravelAsOf, T: 9},
		{Kind: catalog.TravelAsOf, T: 50},
		{Kind: catalog.TravelPeriod, Start: 0, End: 300},
		{Kind: catalog.TravelPeriod, Start: 104, End: 205},
	} {
		got, _, _, err := c.ResolveScan(catalog.ScanName("R", &tr))
		if err != nil {
			t.Fatal(err)
		}
		want := relation.FromTuplesTrusted(base.Schema(), nil)
		qp := tr.QueryPeriod()
		for i := 0; i < base.Len(); i++ {
			if base.PeriodOf(i).Overlaps(qp) {
				want.Append(base.At(i))
			}
		}
		if !got.EqualAsList(want) {
			t.Fatalf("travel %+v: indexed scan differs from naive filter (%d vs %d rows)", tr, got.Len(), want.Len())
		}
	}
}

// TestTravelOverInMemoryCatalog: the same travel scans work without a store
// — full filter, zero segment counters.
func TestTravelOverInMemoryCatalog(t *testing.T) {
	c := catalog.Paper()
	name := catalog.ScanName("EMPLOYEE", &catalog.Travel{Kind: catalog.TravelAsOf, T: 7})
	r, scanned, skipped, err := c.ResolveScan(name)
	if err != nil {
		t.Fatal(err)
	}
	if scanned != 0 || skipped != 0 {
		t.Fatalf("in-memory travel scan reported segment counters %d/%d", scanned, skipped)
	}
	// At month 7, John is in Sales+Advertising and Anna in Sales: 3 spells.
	if r.Len() != 3 {
		t.Fatalf("EMPLOYEE AS OF 7: %d rows, want 3", r.Len())
	}
}

// TestTravelNodeValidation pins the error surface: unknown relations,
// non-temporal relations and empty periods are rejected at plan-build time.
func TestTravelNodeValidation(t *testing.T) {
	c := catalog.New()
	snap := relation.MustFromRows(schema.MustNew(schema.Attr("X", value.KindInt)), [][]any{{1}})
	if err := c.Add("SNAP", snap, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	asOf := &catalog.Travel{Kind: catalog.TravelAsOf, T: 1}
	if _, err := c.TravelNode("missing", asOf); err == nil {
		t.Fatal("travel over unknown relation must fail")
	}
	if _, err := c.TravelNode("SNAP", asOf); err == nil {
		t.Fatal("travel over a snapshot relation must fail")
	}
	temporal := relation.MustFromRows(travelSchema(), [][]any{{"a", 1, 2}})
	if err := c.Add("TEMP", temporal, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TravelNode("TEMP", &catalog.Travel{Kind: catalog.TravelPeriod, Start: 5, End: 5}); err == nil {
		t.Fatal("empty query period must fail")
	}
	n, err := c.TravelNode("TEMP", asOf)
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "TEMP@asof:1" {
		t.Fatalf("travel node name %q", n.Name)
	}
	if _, err := c.Resolve(n.Name); err != nil {
		t.Fatalf("travel node name does not resolve: %v", err)
	}
}

// TestExactNameWinsOverSuffixParse: a relation whose literal name looks like
// a travel scan resolves to itself, never to a reinterpretation.
func TestExactNameWinsOverSuffixParse(t *testing.T) {
	c := catalog.New()
	weird := relation.MustFromRows(travelSchema(), [][]any{{"x", 1, 2}})
	if err := c.Add("R@asof:7", weird, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	r, scanned, skipped, err := c.ResolveScan("R@asof:7")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || scanned != 0 || skipped != 0 {
		t.Fatalf("literal name resolved wrong: %d rows, counters %d/%d", r.Len(), scanned, skipped)
	}
}

// TestScanName round-trips through ParseScanName.
func TestScanName(t *testing.T) {
	cases := []*catalog.Travel{
		nil,
		{Kind: catalog.TravelAsOf, T: 42},
		{Kind: catalog.TravelAsOf, T: -3},
		{Kind: catalog.TravelPeriod, Start: 5, End: 100},
		{Kind: catalog.TravelPeriod, Start: -10, End: -5},
	}
	for _, tr := range cases {
		name := catalog.ScanName("BASE", tr)
		base, got := catalog.ParseScanName(name)
		if base != "BASE" {
			t.Fatalf("%q parsed base %q", name, base)
		}
		switch {
		case tr == nil:
			if got != nil {
				t.Fatalf("%q parsed travel %+v, want none", name, got)
			}
		case got == nil || *got != *tr:
			t.Fatalf("%q parsed travel %+v, want %+v", name, got, tr)
		}
	}
}

// TestScanEstimate pins the cost inputs: full scans touch every segment,
// pruned scans fewer, in-memory scans none.
func TestScanEstimate(t *testing.T) {
	c := diskCatalogWithEras(t)
	full, ok := c.ScanEstimate("R")
	if !ok || full.Segments != 3 || full.Rows != 6 {
		t.Fatalf("full estimate %+v ok=%v, want 3 segments / 6 rows", full, ok)
	}
	narrow, ok := c.ScanEstimate(catalog.ScanName("R", &catalog.Travel{Kind: catalog.TravelAsOf, T: 104}))
	if !ok || narrow.Segments != 1 {
		t.Fatalf("narrow estimate %+v ok=%v, want 1 segment", narrow, ok)
	}
	if narrow.Rows >= full.Rows {
		t.Fatalf("narrow travel rows %.1f not below full %.1f", narrow.Rows, full.Rows)
	}
	mem, ok := catalog.Paper().ScanEstimate("EMPLOYEE")
	if !ok || mem.Segments != 0 {
		t.Fatalf("in-memory estimate %+v ok=%v, want 0 segments", mem, ok)
	}
	if _, ok := catalog.Paper().ScanEstimate("missing"); ok {
		t.Fatal("unknown relation must not estimate")
	}
}

// TestCatalogCompact keeps the tuple list and collapses the segment list.
func TestCatalogCompact(t *testing.T) {
	c := diskCatalogWithEras(t)
	before, _ := c.Resolve("R")
	want := before.Clone()
	if err := c.Compact("R"); err != nil {
		t.Fatal(err)
	}
	after, _, _, err := c.ResolveScan("R")
	if err != nil {
		t.Fatal(err)
	}
	if !after.EqualAsList(want) {
		t.Fatal("compact changed the tuple list")
	}
	if _, scanned, _, _ := c.ResolveScan("R"); scanned != 1 {
		t.Fatalf("compacted relation scans %d segments, want 1", scanned)
	}
}
