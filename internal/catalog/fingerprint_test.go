package catalog_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// TestFingerprint pins the plan-cache invalidation contract: equal
// catalogs fingerprint equally (stable across instances and calls), and
// any planning-relevant difference — an extra relation, different
// statistics, different base info — changes the fingerprint.
func TestFingerprint(t *testing.T) {
	a, b := catalog.Paper(), catalog.Paper()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal catalogs must fingerprint equally")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("the fingerprint must be stable across calls")
	}

	s := schema.MustNew(schema.Attr("A", value.KindInt))
	one := relation.MustFromRows(s, [][]any{{1}})
	two := relation.MustFromRows(s, [][]any{{1}, {2}})

	// An extra relation changes the fingerprint.
	if err := b.Add("EXTRA", one, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("an extra relation must change the fingerprint")
	}

	// Different statistics (cardinality) under the same name differ.
	c1, c2 := catalog.New(), catalog.New()
	if err := c1.Add("R", one, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Add("R", two, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	if c1.Fingerprint() == c2.Fingerprint() {
		t.Fatal("different cardinalities must change the fingerprint")
	}

	// Different base info under identical data differs.
	c3, c4 := catalog.New(), catalog.New()
	if err := c3.Add("R", one, algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	if err := c4.Add("R", one, algebra.BaseInfo{Distinct: true}); err != nil {
		t.Fatal(err)
	}
	if c3.Fingerprint() == c4.Fingerprint() {
		t.Fatal("different base info must change the fingerprint")
	}
}
