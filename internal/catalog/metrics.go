package catalog

import (
	"sync/atomic"

	"tqp/internal/obs"
)

// meters are the catalog's cumulative scan counters, atomic because one
// catalog serves any number of concurrent executors. They accumulate
// across queries — the per-query figures stay on stratum.Trace — so a
// scrape shows the period index's lifetime hit rate.
type meters struct {
	scans      atomic.Int64
	segScanned atomic.Int64
	segSkipped atomic.Int64
}

// countScan records one resolved scan's segment work.
func (c *Catalog) countScan(scanned, skipped int) {
	c.met.scans.Add(1)
	c.met.segScanned.Add(int64(scanned))
	c.met.segSkipped.Add(int64(skipped))
}

// RegisterMetrics exports the catalog's counters into reg as scrape-time
// readers, and the backing store's counters when the catalog is
// disk-backed.
func (c *Catalog) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("tqp_catalog_scans_total", "Base-relation scans resolved.", func() float64 {
		return float64(c.met.scans.Load())
	})
	reg.CounterFunc("tqp_segments_scanned_total", "Store segments read by base scans.", func() float64 {
		return float64(c.met.segScanned.Load())
	})
	reg.CounterFunc("tqp_segments_skipped_total", "Store segments pruned by the period index's min/max fences.", func() float64 {
		return float64(c.met.segSkipped.Load())
	})
	if c.st != nil {
		c.st.RegisterMetrics(reg)
	}
}
