package catalog

import (
	"tqp/internal/algebra"
	"tqp/internal/relation"
)

// PaperProjection is the projection list π_{EmpName,T1,T2} used throughout
// the paper's running example.
func PaperProjection(child algebra.Node) algebra.Node {
	return algebra.NewProjectCols(child, "EmpName", "T1", "T2")
}

// PaperInitialPlan builds the initial algebra expression of Figure 2(a) for
// the query "Which employees worked in a department, but not on any
// project, and when?" with the result required sorted, coalesced, and
// without duplicates in its snapshots:
//
//	TS( sort_{EmpName ASC}( coalᵀ( rdupᵀ(
//	        rdupᵀ(π_{EmpName,T1,T2}(EMPLOYEE)) \ᵀ π_{EmpName,T1,T2}(PROJECT) ) ) ) )
//
// The whole query is computed in the DBMS; the final TS transfers the
// result to the stratum.
func PaperInitialPlan(c *Catalog) algebra.Node {
	left := algebra.NewTRdup(PaperProjection(c.MustNode("EMPLOYEE")))
	right := PaperProjection(c.MustNode("PROJECT"))
	diff := algebra.NewTDiff(left, right)
	return algebra.NewTransferS(
		algebra.NewSort(relation.OrderSpec{relation.Key("EmpName")},
			algebra.NewCoal(algebra.NewTRdup(diff))))
}

// PaperIntermediatePlan builds the plan of Figure 6(a): transfers pushed
// down, the top rdupᵀ removed by rule D2, and coalescing pushed below the
// temporal difference by rule C10 (both arguments coalesced):
//
//	sort_{EmpName ASC}( coalᵀ(rdupᵀ(TS(π(EMPLOYEE)))) \ᵀ coalᵀ(TS(π(PROJECT))) )
func PaperIntermediatePlan(c *Catalog) algebra.Node {
	left := algebra.NewCoal(algebra.NewTRdup(
		algebra.NewTransferS(PaperProjection(c.MustNode("EMPLOYEE")))))
	right := algebra.NewCoal(
		algebra.NewTransferS(PaperProjection(c.MustNode("PROJECT"))))
	return algebra.NewSort(relation.OrderSpec{relation.Key("EmpName")},
		algebra.NewTDiff(left, right))
}

// PaperOptimizedPlan builds the final plan of Figure 6(b): the right-hand
// coalescing removed by rule C2 (order and periods need not be preserved in
// the right branch of a temporal difference), and the sort pushed down into
// the DBMS, whose retained order the operations above preserve:
//
//	coalᵀ(rdupᵀ(TS(sort_{EmpName ASC}(π(EMPLOYEE))))) \ᵀ TS(π(PROJECT))
func PaperOptimizedPlan(c *Catalog) algebra.Node {
	left := algebra.NewCoal(algebra.NewTRdup(
		algebra.NewTransferS(
			algebra.NewSort(relation.OrderSpec{relation.Key("EmpName")},
				PaperProjection(c.MustNode("EMPLOYEE"))))))
	right := algebra.NewTransferS(PaperProjection(c.MustNode("PROJECT")))
	return algebra.NewTDiff(left, right)
}
