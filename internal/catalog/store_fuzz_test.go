package catalog_test

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"tqp/internal/catalog"
	"tqp/internal/datagen"
	"tqp/internal/period"
	"tqp/internal/testutil"
)

// storeFuzzScale multiplies the differential suite's seed count; the
// nightly store-fuzz workflow sets TQP_STORE_FUZZ_SCALE=10 for a 10×
// deeper sweep.
func storeFuzzScale() int64 {
	if v := os.Getenv("TQP_STORE_FUZZ_SCALE"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// recordStoreFuzzFailure appends a reproduction line to the file named by
// TQP_FUZZ_FAILURE_FILE (the nightly workflow uploads it as an artifact on
// failure), then fails the test.
func recordStoreFuzzFailure(t *testing.T, format string, args ...any) {
	t.Helper()
	msg := fmt.Sprintf(format, args...)
	if path := os.Getenv("TQP_FUZZ_FAILURE_FILE"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintln(f, msg)
			f.Close()
		}
	}
	t.Fatal(msg)
}

// travelQuery is one randomly drawn scan of the differential suite.
type travelQuery struct {
	name string
	scan string // encoded scan name; equals name for a full scan
}

// TestStoreDifferentialFuzz is the persistence layer's correctness anchor:
// a disk-backed catalog seeded from a random in-memory temporal catalog,
// grown by the same random appends, must resolve every full and travel
// scan bit-identically to the in-memory original — before and after a
// compaction, and again after closing and reopening the directory (the
// restart leg). Append rejections must also agree: an info violation the
// in-memory catalog refuses must be refused by the disk catalog too, or
// the two diverge silently.
func TestStoreDifferentialFuzz(t *testing.T) {
	seeds := 6 * storeFuzzScale()
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			mem, _ := testutil.TemporalCatalogSized(seed, 20+rng.Intn(40), 15+rng.Intn(30))
			dir := t.TempDir()
			disk, err := catalog.OpenDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := disk.ImportFrom(mem); err != nil {
				t.Fatal(err)
			}

			// Random append rounds, mirrored to both catalogs. Drawn rows
			// may violate the relations' base info (duplicates into a
			// distinct relation); both sides must agree on acceptance.
			names := []string{"A", "B"}
			for round := 0; round < 4; round++ {
				extra := datagen.Temporal(datagen.TemporalSpec{
					Rows:    1 + rng.Intn(8),
					Values:  3 + rng.Intn(6),
					DupFrac: 0.25,
					AdjFrac: 0.25,
					Seed:    seed*1000 + int64(round),
				})
				name := names[rng.Intn(len(names))]
				memErr := mem.AppendTuples(name, extra.Tuples())
				diskErr := disk.AppendTuples(name, extra.Tuples())
				if (memErr == nil) != (diskErr == nil) {
					recordStoreFuzzFailure(t,
						"seed=%d round=%d rel=%s: append outcomes diverge: mem=%v disk=%v",
						seed, round, name, memErr, diskErr)
				}
			}

			// Draw the query set once so every leg answers the same scans.
			var queries []travelQuery
			for _, name := range names {
				queries = append(queries, travelQuery{name: name, scan: name})
			}
			for i := 0; i < 16; i++ {
				name := names[rng.Intn(len(names))]
				var tr catalog.Travel
				if rng.Intn(2) == 0 {
					tr = catalog.Travel{Kind: catalog.TravelAsOf, T: period.Chronon(rng.Intn(60) - 10)}
				} else {
					a := rng.Intn(60) - 10
					tr = catalog.Travel{
						Kind:  catalog.TravelPeriod,
						Start: period.Chronon(a),
						End:   period.Chronon(a + 1 + rng.Intn(25)),
					}
				}
				queries = append(queries, travelQuery{name: name, scan: catalog.ScanName(name, &tr)})
			}

			compare := func(leg string, d *catalog.Catalog) {
				t.Helper()
				for _, q := range queries {
					want, _, _, memErr := mem.ResolveScan(q.scan)
					got, _, _, diskErr := d.ResolveScan(q.scan)
					if (memErr == nil) != (diskErr == nil) {
						recordStoreFuzzFailure(t,
							"seed=%d leg=%s scan=%s: resolve errors diverge: mem=%v disk=%v",
							seed, leg, q.scan, memErr, diskErr)
					}
					if memErr != nil {
						continue
					}
					if !want.EqualAsList(got) {
						recordStoreFuzzFailure(t,
							"seed=%d leg=%s scan=%s: %d disk tuples differ from %d in-memory tuples",
							seed, leg, q.scan, got.Len(), want.Len())
					}
					if !want.Order().Equal(got.Order()) {
						recordStoreFuzzFailure(t,
							"seed=%d leg=%s scan=%s: order %v differs from %v",
							seed, leg, q.scan, got.Order(), want.Order())
					}
				}
			}

			compare("live", disk)
			if rng.Intn(2) == 0 {
				if err := disk.Compact(names[rng.Intn(len(names))]); err != nil {
					t.Fatal(err)
				}
				compare("compacted", disk)
			}
			reopened, err := catalog.OpenDir(dir)
			if err != nil {
				recordStoreFuzzFailure(t, "seed=%d: reopen: %v", seed, err)
			}
			compare("reopened", reopened)
			if disk.Fingerprint() != reopened.Fingerprint() {
				recordStoreFuzzFailure(t, "seed=%d: fingerprint changed across reopen", seed)
			}
		})
	}
}
