package catalog

import (
	"fmt"
	"strconv"
	"strings"

	"tqp/internal/algebra"
	"tqp/internal/period"
	"tqp/internal/relation"
)

// TravelKind distinguishes the two time-travel scan forms.
type TravelKind int

const (
	// TravelAsOf restricts a scan to tuples whose period contains one
	// chronon: FOR SYSTEM_TIME AS OF t.
	TravelAsOf TravelKind = iota
	// TravelPeriod restricts a scan to tuples whose period overlaps a
	// query period: FOR PERIOD [a, b).
	TravelPeriod
)

// Travel is a time-travel restriction attached to a base-relation scan.
type Travel struct {
	Kind TravelKind
	// T is the AS OF chronon (TravelAsOf only).
	T period.Chronon
	// Start and End bound the query period (TravelPeriod only).
	Start, End period.Chronon
}

// QueryPeriod returns the closed-open period a travel scan filters by. For
// integer chronons, AS OF t is exactly overlap with [t, t+1).
func (tr Travel) QueryPeriod() period.Period {
	if tr.Kind == TravelAsOf {
		return period.New(tr.T, tr.T+1)
	}
	return period.New(tr.Start, tr.End)
}

// travelAsOfSep and travelDuringSep are the scan-name suffixes that encode a
// travel restriction. The names flow through the planner and engines as
// opaque Rel names; only the catalog's resolution layer interprets them.
const (
	travelAsOfSep   = "@asof:"
	travelDuringSep = "@during:"
)

// ScanName encodes a travel restriction into a scan name: BASE@asof:t or
// BASE@during:a:b. With a nil travel it returns base unchanged.
func ScanName(base string, tr *Travel) string {
	if tr == nil {
		return base
	}
	if tr.Kind == TravelAsOf {
		return fmt.Sprintf("%s%s%d", base, travelAsOfSep, tr.T)
	}
	return fmt.Sprintf("%s%s%d:%d", base, travelDuringSep, tr.Start, tr.End)
}

// ParseScanName splits a scan name into its base relation and travel
// restriction. Names without a well-formed travel suffix parse as plain
// (name, nil) — resolution gives exact catalog entries priority anyway, so a
// literal relation name containing "@asof:" still resolves to itself.
func ParseScanName(name string) (string, *Travel) {
	if i := strings.LastIndex(name, travelAsOfSep); i > 0 {
		t, err := strconv.ParseInt(name[i+len(travelAsOfSep):], 10, 64)
		if err == nil {
			return name[:i], &Travel{Kind: TravelAsOf, T: period.Chronon(t)}
		}
	}
	if i := strings.LastIndex(name, travelDuringSep); i > 0 {
		rest := name[i+len(travelDuringSep):]
		if j := strings.IndexByte(rest, ':'); j > 0 {
			a, errA := strconv.ParseInt(rest[:j], 10, 64)
			b, errB := strconv.ParseInt(rest[j+1:], 10, 64)
			if errA == nil && errB == nil {
				return name[:i], &Travel{Kind: TravelPeriod, Start: period.Chronon(a), End: period.Chronon(b)}
			}
		}
	}
	return name, nil
}

// TravelNode returns an algebra leaf for a time-travel scan of the named
// relation. The leaf's Rel name carries the encoded restriction; its schema
// and base info are the base relation's, which stay valid for the filtered
// view: a subsequence of a distinct (snapshot-distinct, coalesced, ordered)
// tuple list keeps each property.
func (c *Catalog) TravelNode(name string, tr *Travel) (*algebra.Rel, error) {
	e, ok := c.entries[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown relation %q", name)
	}
	if tr == nil {
		return algebra.NewRel(e.Name, e.Rel.Schema(), e.Info), nil
	}
	if !e.Rel.Schema().Temporal() {
		return nil, fmt.Errorf("catalog: %q is not temporal; FOR clauses need (T1, T2) periods", name)
	}
	if tr.QueryPeriod().Empty() {
		return nil, fmt.Errorf("catalog: empty query period for %q", name)
	}
	return algebra.NewRel(ScanName(name, tr), e.Rel.Schema(), e.Info), nil
}

// ResolveScan resolves a scan name to its relation and reports the period
// index's work: how many segments the scan read and how many the min/max
// fences let it skip. Both counters are zero for in-memory entries (no
// segments to prune) and (len(segments), 0) for an unrestricted scan of a
// disk-backed relation.
func (c *Catalog) ResolveScan(name string) (*relation.Relation, int, int, error) {
	// Exact entries win: internal rebind names (@stratumN, @dbmsN) and any
	// literal name that merely looks like a travel suffix must resolve to
	// themselves, never be reinterpreted.
	if e, ok := c.entries[name]; ok {
		c.countScan(len(e.segs), 0)
		return e.Rel, len(e.segs), 0, nil
	}
	base, tr := ParseScanName(name)
	if tr == nil {
		return nil, 0, 0, fmt.Errorf("catalog: unknown relation %q", name)
	}
	e, ok := c.entries[base]
	if !ok {
		return nil, 0, 0, fmt.Errorf("catalog: unknown relation %q", base)
	}
	if !e.Rel.Schema().Temporal() {
		return nil, 0, 0, fmt.Errorf("catalog: %q is not temporal; FOR clauses need (T1, T2) periods", base)
	}
	qp := tr.QueryPeriod()
	out := relation.FromTuplesTrusted(e.Rel.Schema(), nil)
	scanned, skipped := 0, 0
	if e.segs != nil {
		// Disk-backed: walk the segment list, consulting each segment's
		// fence before touching its row range. Cumulative Rows offsets map
		// segments onto the materialized relation.
		off := 0
		for _, sg := range e.segs {
			if !sg.MayOverlap(qp) {
				skipped++
				off += sg.Rows
				continue
			}
			scanned++
			for i := off; i < off+sg.Rows; i++ {
				if e.Rel.PeriodOf(i).Overlaps(qp) {
					out.Append(e.Rel.At(i))
				}
			}
			off += sg.Rows
		}
	} else {
		for i := 0; i < e.Rel.Len(); i++ {
			if e.Rel.PeriodOf(i).Overlaps(qp) {
				out.Append(e.Rel.At(i))
			}
		}
	}
	out.SetOrder(e.Rel.Order())
	c.countScan(scanned, skipped)
	return out, scanned, skipped, nil
}

// ScanEstimate summarizes what a scan will touch, for the cost model.
type ScanEstimate struct {
	// Rows estimates the scan's output cardinality.
	Rows float64
	// Segments is how many disk segments the scan must read after fence
	// pruning; zero for in-memory relations.
	Segments int
}

// ScanEstimate prices a scan name without executing it. The row estimate for
// a travel scan scales the base cardinality by the query period's share of
// the relation's [MinT, MaxT) span, widened by the mean tuple period (a
// tuple overlaps [a,b) when its start falls in [a-avg, b)).
func (c *Catalog) ScanEstimate(name string) (ScanEstimate, bool) {
	if e, ok := c.entries[name]; ok {
		return ScanEstimate{Rows: float64(e.Stats.Card), Segments: len(e.segs)}, true
	}
	base, tr := ParseScanName(name)
	if tr == nil {
		return ScanEstimate{}, false
	}
	e, ok := c.entries[base]
	if !ok {
		return ScanEstimate{}, false
	}
	qp := tr.QueryPeriod()
	est := ScanEstimate{Rows: float64(e.Stats.Card)}
	if span := float64(e.Stats.MaxT - e.Stats.MinT); span > 0 {
		sel := (float64(qp.Duration()) + e.Stats.AvgPeriod) / span
		if sel > 1 {
			sel = 1
		}
		est.Rows *= sel
	}
	for _, sg := range e.segs {
		if sg.MayOverlap(qp) {
			est.Segments++
		}
	}
	return est, true
}
