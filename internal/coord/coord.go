// Package coord is the scale-out coordinator: a thin layer that plans a
// temporal query once against the full catalog, splits the chosen physical
// plan into per-shard fragments (internal/core's splitter), runs the
// fragments concurrently on shard servers over the wire protocol
// (internal/server's partial-plan op), merges the shard outputs
// deterministically, and executes the remainder plan locally through the
// ordinary stratum executor over a synthetic catalog holding the merged
// fragments. Because the merge reconstructs exactly the lists a
// single-node run would have materialized at the same plan points — and
// the simulated DBMS's seeded order nondeterminism is a pure function of
// the seed and those lists — a sharded query returns a result
// bit-identical to a single node with the same catalog, seed and engine.
//
// The coordinator and its shard servers never exchange a shard map: both
// derive the same deterministic partitioning (internal/shard) from the
// same catalog, the coordinator from the whole database, each server from
// tqserver's -shard i/n flag.
package coord

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/relation"
	"tqp/internal/server"
	"tqp/internal/shard"
	"tqp/internal/stratum"
)

// Config parameterizes a Coordinator. Catalog and Addrs are required; the
// zero value of everything else has a usable default.
type Config struct {
	// Catalog is the full (unsharded) database. Planning, the shard map,
	// and the cost model all derive from it; the shard servers hold its
	// slices.
	Catalog *catalog.Catalog
	// Addrs are the shard servers, index-aligned with the shard map.
	Addrs []string
	// Mode picks the partitioning strategy derivation; default Auto. It
	// must match the shard servers' -shard derivation mode.
	Mode shard.Mode
	// Spec is the engine for planning and remainder execution; default
	// the exec engine.
	Spec eval.EngineSpec
	// Seed drives the simulated DBMS's order nondeterminism; default 1.
	// With equal catalog, seed and spec, sharded results are bit-identical
	// to a single node's.
	Seed int64
	// DialTimeout bounds each shard connection attempt; default 5s.
	DialTimeout time.Duration
	// QueryTimeout bounds each per-shard fragment call; default 60s.
	QueryTimeout time.Duration
	// CacheSize bounds the prepared-plan/split cache; default 256,
	// negative disables.
	CacheSize int
}

func (c Config) withDefaults() Config {
	if c.Spec.Name == "" {
		c.Spec = exec.Spec()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 60 * time.Second
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	return c
}

// ShardError reports a failed shard call. The query fails whole — partial
// results are never returned — but the error names the shard so operators
// know where to look.
type ShardError struct {
	Index int
	Addr  string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("coord: shard %d (%s): %v", e.Index, e.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Stats counts a coordinator's work, for observability and for tests
// guarding against vacuously-green differentials (a run that pushed no
// fragments proves nothing).
type Stats struct {
	Queries   int
	CacheHits int
	// Fragments counts pushed fragments by kind ("chain", "sorted",
	// "grouped") across all planned splits.
	Fragments map[string]int
	// ShardCalls counts fragment dispatches; Retries counts redials after
	// a transient failure.
	ShardCalls int
	Retries    int
}

// Meta is the provenance of one coordinated query.
type Meta struct {
	CacheHit  bool
	Plans     int
	BestCost  float64
	Fragments int
	Shards    int
}

type cacheEntry struct {
	prep  *core.Prepared
	split *core.Split
}

// Coordinator plans, scatters and gathers. Safe for concurrent use: the
// planner and cache are concurrency-safe, and each shard connection
// serializes its requests.
type Coordinator struct {
	cfg Config
	m   *shard.Map
	opt *core.Optimizer
	fp  string

	connMu  []sync.Mutex // per-shard: guards clients[i]
	clients []*server.Client

	mu    sync.Mutex
	cache map[string]*cacheEntry
	stats Stats
}

// New derives the shard map, dials every shard, and returns a ready
// coordinator. The caller owns Close.
func New(ctx context.Context, cfg Config) (*Coordinator, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("coord: Config.Catalog is required")
	}
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("coord: Config.Addrs is required")
	}
	cfg = cfg.withDefaults()
	m, err := shard.NewMapMode(cfg.Catalog, len(cfg.Addrs), cfg.Mode)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:     cfg,
		m:       m,
		opt:     core.New(cfg.Catalog, core.WithEngine(cfg.Spec), core.WithDBMSSeed(cfg.Seed), core.WithCostParams(core.ShardedCostParams(cfg.Spec, len(cfg.Addrs)))),
		fp:      cfg.Catalog.Fingerprint(),
		connMu:  make([]sync.Mutex, len(cfg.Addrs)),
		clients: make([]*server.Client, len(cfg.Addrs)),
		cache:   make(map[string]*cacheEntry),
		stats:   Stats{Fragments: make(map[string]int)},
	}
	for i, addr := range cfg.Addrs {
		cl, err := c.dial(ctx, addr)
		if err != nil {
			c.Close()
			return nil, &ShardError{Index: i, Addr: addr, Err: err}
		}
		c.clients[i] = cl
	}
	return c, nil
}

func (c *Coordinator) dial(ctx context.Context, addr string) (*server.Client, error) {
	dctx, cancel := context.WithTimeout(ctx, c.cfg.DialTimeout)
	defer cancel()
	return server.Dial(dctx, addr)
}

// Close closes every shard connection.
func (c *Coordinator) Close() error {
	var first error
	for i, cl := range c.clients {
		if cl == nil {
			continue
		}
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
		c.clients[i] = nil
	}
	return first
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Fragments = make(map[string]int, len(c.stats.Fragments))
	for k, v := range c.stats.Fragments {
		out.Fragments[k] = v
	}
	return out
}

// prepare returns the cached (plan, split) for sql, planning on a miss.
func (c *Coordinator) prepare(sql string) (*cacheEntry, bool, error) {
	key := server.PlanKey(c.fp, c.cfg.Spec.Name, sql)
	c.mu.Lock()
	ent, ok := c.cache[key]
	c.mu.Unlock()
	if ok {
		return ent, true, nil
	}
	prep, err := c.opt.Prepare(sql)
	if err != nil {
		return nil, false, err
	}
	split, err := core.SplitForShards(prep.Plan, core.SplitPolicy{Colocated: c.m.Colocated})
	if err != nil {
		return nil, false, err
	}
	ent = &cacheEntry{prep: prep, split: split}
	c.mu.Lock()
	if c.cfg.CacheSize > 0 {
		if len(c.cache) >= c.cfg.CacheSize {
			c.cache = make(map[string]*cacheEntry) // crude but bounded
		}
		c.cache[key] = ent
	}
	for _, f := range split.Fragments {
		c.stats.Fragments[f.Kind.String()]++
	}
	c.mu.Unlock()
	return ent, false, nil
}

// partial runs one fragment on one shard, retrying once through a fresh
// connection after a transient (connection-level) failure. Server-reported
// errors are deterministic and never retried.
func (c *Coordinator) partial(ctx context.Context, i int, plan *server.WirePlan) (*relation.Relation, []int, error) {
	c.connMu[i].Lock()
	defer c.connMu[i].Unlock()
	call := func() (*relation.Relation, []int, error) {
		qctx, cancel := context.WithTimeout(ctx, c.cfg.QueryTimeout)
		defer cancel()
		return c.clients[i].Partial(qctx, plan)
	}
	rel, seqs, err := call()
	if err == nil {
		return rel, seqs, nil
	}
	var se *server.ServerError
	if errors.As(err, &se) || ctx.Err() != nil {
		return nil, nil, err
	}
	// Transient: the connection broke (or was poisoned by an earlier
	// interrupted call). Redial once and retry.
	cl, derr := c.dial(ctx, c.cfg.Addrs[i])
	if derr != nil {
		return nil, nil, err
	}
	c.clients[i].Close()
	c.clients[i] = cl
	c.mu.Lock()
	c.stats.Retries++
	c.mu.Unlock()
	return call()
}

// Query plans, scatters, gathers and finishes one statement. The result is
// bit-identical to a single-node run over the same catalog, seed and
// engine spec. Any shard failure fails the whole query with a *ShardError
// naming the shard.
func (c *Coordinator) Query(ctx context.Context, sql string) (*relation.Relation, *Meta, error) {
	if _, _, isSet, _ := server.ParseSet(sql); isSet {
		return nil, nil, fmt.Errorf("coord: SET statements are not supported (engine settings are fixed per coordinator)")
	}
	ent, hit, err := c.prepare(sql)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	c.stats.Queries++
	if hit {
		c.stats.CacheHits++
	}
	c.stats.ShardCalls += len(ent.split.Fragments) * len(c.clients)
	c.mu.Unlock()

	// Scatter: one goroutine per shard runs all fragments over that
	// shard's (serialized) connection; fragments of one shard pipeline
	// naturally, shards proceed concurrently.
	nShards := len(c.clients)
	frags := ent.split.Fragments
	type shardOut struct {
		rels []*relation.Relation
		seqs [][]int
	}
	outs := make([]shardOut, nShards)
	errs := make([]error, nShards)
	var wg sync.WaitGroup
	for i := 0; i < nShards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := shardOut{rels: make([]*relation.Relation, len(frags)), seqs: make([][]int, len(frags))}
			for fi, f := range frags {
				plan, err := server.EncodePlan(f.Rel, f.Steps)
				if err != nil {
					errs[i] = err
					return
				}
				rel, seqs, err := c.partial(ctx, i, plan)
				if err != nil {
					errs[i] = &ShardError{Index: i, Addr: c.cfg.Addrs[i], Err: err}
					return
				}
				o.rels[fi], o.seqs[fi] = rel, seqs
			}
			outs[i] = o
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}

	// Gather: merge each fragment's shard outputs into the exact list a
	// single node would hold at that plan point, and register it as the
	// fragment's placeholder relation.
	synth := catalog.New()
	for fi, f := range frags {
		var merged []relation.Tuple
		switch f.Kind {
		case core.FragmentChain, core.FragmentSorted:
			parts := make([]exec.TaggedRows, nShards)
			for i := 0; i < nShards; i++ {
				if outs[i].seqs[fi] == nil {
					return nil, nil, &ShardError{Index: i, Addr: c.cfg.Addrs[i],
						Err: fmt.Errorf("coord: shard returned no sequence keys for %s fragment %s", f.Kind, f.Name)}
				}
				parts[i] = exec.TaggedRows{Rows: outs[i].rels[fi].Tuples(), Seqs: outs[i].seqs[fi]}
			}
			if f.Kind == core.FragmentChain {
				merged = exec.MergeBySeq(parts)
			} else {
				merged = exec.MergeSorted(f.Schema, f.Keys, parts)
			}
		case core.FragmentGrouped:
			parts := make([][]relation.Tuple, nShards)
			for i := 0; i < nShards; i++ {
				parts[i] = outs[i].rels[fi].Tuples()
			}
			merged = exec.MergeGroups(f.Schema, f.Prefix, parts)
		}
		rel := relation.FromTuplesTrusted(f.Schema, merged)
		if err := synth.AddTrusted(f.Name, rel, algebra.BaseInfo{Order: f.Order}); err != nil {
			return nil, nil, err
		}
	}

	// Finish: the remainder plan replays the single-node execution over
	// the placeholders — including the simulated DBMS's seeded
	// permutations, which depend only on the seed and the (identical)
	// gathered lists.
	result, _, err := stratum.NewWithEngine(synth, c.cfg.Seed, c.cfg.Spec).Execute(ent.split.Remainder)
	if err != nil {
		return nil, nil, err
	}
	return result, &Meta{
		CacheHit:  hit,
		Plans:     ent.prep.PlanCount,
		BestCost:  ent.prep.BestCost,
		Fragments: len(frags),
		Shards:    nShards,
	}, nil
}
