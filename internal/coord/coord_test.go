package coord_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tqp/internal/catalog"
	"tqp/internal/coord"
	"tqp/internal/core"
	"tqp/internal/datagen"
	"tqp/internal/exec"
	"tqp/internal/relation"
	"tqp/internal/server"
	"tqp/internal/shard"
)

const paperSQL = `VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
	EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`

// queries covers every fragment shape: bare scans, filtered chains, pushed
// sorts, grouped push-downs, joins and set operations in the remainder.
var queries = []string{
	"SELECT EmpName, Dept FROM EMPLOYEE",
	"VALIDTIME SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Ship'",
	paperSQL,
	"VALIDTIME SELECT Dept, COUNT(*) AS headcount FROM EMPLOYEE GROUP BY Dept",
	"VALIDTIME SELECT DISTINCT 1.EmpName FROM EMPLOYEE, PROJECT WHERE 1.EmpName = 2.EmpName",
	"VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE ORDER BY EmpName ASC",
}

// startShards boots n in-process shard servers over cat's n-way
// partitioning and returns their addresses. Cleanup closes them.
func startShards(t *testing.T, cat *catalog.Catalog, n int, mode shard.Mode) []string {
	t.Helper()
	m, err := shard.NewMapMode(cat, n, mode)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		sub, pos, err := m.Partition(i)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.Start(server.Config{
			Addr: "127.0.0.1:0", Catalog: sub, ShardPositions: pos, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = srv.Addr()
	}
	return addrs
}

// TestCoordinatorDifferential is the reference-vs-sharded leg over the real
// wire protocol: for both databases, both forced partitioning strategies
// and 1/2/4 shards, every query's coordinated result must be bit-identical
// to a single node's. The fragment counters guard against a vacuously
// green run.
func TestCoordinatorDifferential(t *testing.T) {
	paper := catalog.Paper()
	synth := datagen.EmployeeDB(datagen.EmployeeSpec{
		Employees: 30, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
	})
	for _, db := range []struct {
		name string
		cat  *catalog.Catalog
	}{{"paper", paper}, {"synth", synth}} {
		for _, mode := range []shard.Mode{shard.ForceHash, shard.ForceRange} {
			for _, n := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%v/%d", db.name, mode, n), func(t *testing.T) {
					// The oracle plans exactly the way the coordinator does
					// — Prepare with the scale-out cost model — so both
					// execute the same physical plan; the bit-identity
					// contract is per plan.
					oracle := core.New(db.cat, core.WithEngine(exec.Spec()), core.WithDBMSSeed(1),
						core.WithCostParams(core.ShardedCostParams(exec.Spec(), n)))
					single := func(sql string) *relation.Relation {
						prep, err := oracle.Prepare(sql)
						if err != nil {
							t.Fatalf("%s: prepare: %v", sql, err)
						}
						want, _, err := oracle.ExecutePlan(prep.Plan, exec.Spec())
						if err != nil {
							t.Fatalf("%s: single-node: %v", sql, err)
						}
						return want
					}
					addrs := startShards(t, db.cat, n, mode)
					c, err := coord.New(context.Background(), coord.Config{
						Catalog: db.cat, Addrs: addrs, Mode: mode, Spec: exec.Spec(), Seed: 1,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer c.Close()
					for _, sql := range queries {
						want := single(sql)
						got, meta, err := c.Query(context.Background(), sql)
						if err != nil {
							t.Fatalf("%s: coordinated: %v", sql, err)
						}
						if !want.EqualAsList(got) {
							t.Fatalf("%s: sharded result diverges\nwant:\n%s\ngot:\n%s", sql, want, got)
						}
						if meta.Shards != n || meta.Fragments == 0 {
							t.Fatalf("%s: meta %+v", sql, meta)
						}
					}
					// Cached replay: bit-identical again, with a cache hit.
					got, meta, err := c.Query(context.Background(), paperSQL)
					if err != nil {
						t.Fatal(err)
					}
					if want := single(paperSQL); !want.EqualAsList(got) {
						t.Fatal("cached replay diverges")
					}
					if !meta.CacheHit {
						t.Fatal("replay must hit the plan cache")
					}
					st := c.Stats()
					if st.Fragments["chain"] == 0 || st.Fragments["sorted"]+st.Fragments["grouped"] == 0 {
						t.Fatalf("vacuous differential: fragment kinds %v", st.Fragments)
					}
					// A single range shard has no interior cuts, so every
					// group is trivially colocated and the grouped push
					// must fire; more shards may legitimately split groups.
					if mode == shard.ForceRange && n == 1 && st.Fragments["grouped"] == 0 {
						t.Fatalf("range partitioning colocates whole value groups; expected a grouped push, got %v", st.Fragments)
					}
					if st.ShardCalls == 0 || st.Queries != len(queries)+1 || st.CacheHits != 1 {
						t.Fatalf("stats %+v", st)
					}
				})
			}
		}
	}
}

// TestCoordinatorAutoMode smoke-checks the default derivation end to end.
func TestCoordinatorAutoMode(t *testing.T) {
	cat := catalog.Paper()
	addrs := startShards(t, cat, 2, shard.Auto)
	c, err := coord.New(context.Background(), coord.Config{Catalog: cat, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oracle := core.New(cat, core.WithEngine(exec.Spec()), core.WithDBMSSeed(1))
	want, _, _, err := oracle.Run(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := c.Query(context.Background(), paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualAsList(got) {
		t.Fatal("auto-mode sharded result diverges")
	}
	if _, _, err := c.Query(context.Background(), "SET engine exec"); err == nil {
		t.Fatal("SET must be rejected by the coordinator")
	}
}

// TestCoordinatorShardFailure pins the partial-failure contract: a dead
// shard fails the whole query with a *ShardError naming the shard, the
// other shards stay usable, and tearing the coordinator down leaks no
// goroutines.
func TestCoordinatorShardFailure(t *testing.T) {
	before := runtime.NumGoroutine()
	cat := catalog.Paper()
	m, err := shard.NewMapMode(cat, 2, shard.ForceHash)
	if err != nil {
		t.Fatal(err)
	}
	srvs := make([]*server.Server, 2)
	addrs := make([]string, 2)
	for i := 0; i < 2; i++ {
		sub, pos, err := m.Partition(i)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i], err = server.Start(server.Config{
			Addr: "127.0.0.1:0", Catalog: sub, ShardPositions: pos, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = srvs[i].Addr()
	}
	c, err := coord.New(context.Background(), coord.Config{
		Catalog: cat, Addrs: addrs, Mode: shard.ForceHash,
		DialTimeout: 2 * time.Second, QueryTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(context.Background(), paperSQL); err != nil {
		t.Fatalf("both shards up: %v", err)
	}

	srvs[1].Close() // kill shard 1; the redial retry must fail too
	_, _, err = c.Query(context.Background(), paperSQL)
	var se *coord.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("want *coord.ShardError, got %v", err)
	}
	if se.Index != 1 || se.Addr != addrs[1] {
		t.Fatalf("error names shard %d (%s), want 1 (%s)", se.Index, se.Addr, addrs[1])
	}

	c.Close()
	srvs[0].Close()
	// Every server and coordinator goroutine must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak: %d before, %d after shutdown", before, n)
	}
}

// TestCoordinatorDialFailure pins New's contract: an unreachable shard
// fails construction with a *ShardError and closes the connections already
// made.
func TestCoordinatorDialFailure(t *testing.T) {
	cat := catalog.Paper()
	addrs := startShards(t, cat, 1, shard.Auto)
	_, err := coord.New(context.Background(), coord.Config{
		Catalog: cat, Addrs: []string{addrs[0], "127.0.0.1:1"},
		DialTimeout: time.Second,
	})
	var se *coord.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("want *coord.ShardError, got %v", err)
	}
	if se.Index != 1 {
		t.Fatalf("error names shard %d, want 1", se.Index)
	}
}
