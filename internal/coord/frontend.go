package coord

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"tqp/internal/server"
)

// Frontend serves the coordinator over the wire protocol, so any protocol
// client — tqshell, server.Dial — can point at a coordinator exactly as it
// would at a single server. It answers the query, ping and stats
// operations; per-session settings (set, SET statements) and partial plans
// are refused with typed errors, because a coordinator's engine spec is
// fixed at construction and it is the one *sending* partial plans.
type Frontend struct {
	c     *Coordinator
	ln    net.Listener
	start time.Time

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]bool

	accept   sync.WaitGroup
	handlers sync.WaitGroup
}

// frontendWriteTimeout arms each network write to a frontend client, so a
// peer that stops reading cannot stall a handler forever.
const frontendWriteTimeout = 30 * time.Second

// frontendBatchRows is the frontend's result-streaming batch size,
// matching the server default.
const frontendBatchRows = 256

// Serve starts a protocol frontend for the coordinator on addr (use an
// ":0" port for ephemeral; read it back with Addr). The caller owns Close,
// and must close the frontend before closing the coordinator.
func (c *Coordinator) Serve(addr string) (*Frontend, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	f := &Frontend{c: c, ln: ln, start: time.Now(), conns: make(map[net.Conn]bool)}
	f.accept.Add(1)
	go f.acceptLoop()
	return f, nil
}

// Addr returns the frontend's bound listen address.
func (f *Frontend) Addr() string { return f.ln.Addr().String() }

// Close stops accepting, drops open connections and waits for handlers.
func (f *Frontend) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	conns := make([]net.Conn, 0, len(f.conns))
	for conn := range f.conns {
		conns = append(conns, conn)
	}
	f.mu.Unlock()
	err := f.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	f.accept.Wait()
	f.handlers.Wait()
	return err
}

func (f *Frontend) acceptLoop() {
	defer f.accept.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return // listener closed
		}
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			conn.Close()
			return
		}
		f.conns[conn] = true
		f.mu.Unlock()
		f.handlers.Add(1)
		go f.handleConn(conn)
	}
}

func (f *Frontend) dropConn(conn net.Conn) {
	f.mu.Lock()
	delete(f.conns, conn)
	f.mu.Unlock()
	conn.Close()
}

func (f *Frontend) handleConn(conn net.Conn) {
	defer f.handlers.Done()
	defer f.dropConn(conn)

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(frontWriter{conn: conn})
	for {
		var req server.Request
		if err := server.ReadFrame(br, &req); err != nil {
			return // hangup, framing error or bad payload: drop the peer
		}
		if err := f.handleRequest(&req, bw); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// frontWriter arms a fresh write deadline before each underlying write.
type frontWriter struct {
	conn net.Conn
}

func (w frontWriter) Write(p []byte) (int, error) {
	if err := w.conn.SetWriteDeadline(time.Now().Add(frontendWriteTimeout)); err != nil {
		return 0, err
	}
	return w.conn.Write(p)
}

func (f *Frontend) handleRequest(req *server.Request, w io.Writer) error {
	switch req.Op {
	case server.OpPing:
		return server.WriteFrame(w, &server.Response{Kind: server.KindPong})
	case server.OpStats:
		return server.WriteFrame(w, &server.Response{Kind: server.KindStats, Stats: f.statsReply()})
	case server.OpQuery:
		return f.runQuery(req.SQL, w)
	case server.OpSet:
		return writeError(w, server.CodeSet,
			errors.New("coord: session settings are fixed per coordinator"))
	case server.OpPartial:
		return writeError(w, server.CodeProto,
			errors.New("coord: partial plans are not accepted by a coordinator"))
	default:
		return writeError(w, server.CodeProto, fmt.Errorf("coord: unknown op %q", req.Op))
	}
}

// statsReply renders the coordinator's state in the server's stats shape:
// the shared fields a client renders for any endpoint plus the Coord
// section only a coordinator fills.
func (f *Frontend) statsReply() *server.StatsReply {
	st := f.c.Stats()
	f.mu.Lock()
	conns := len(f.conns)
	f.mu.Unlock()
	f.c.mu.Lock()
	entries := len(f.c.cache)
	f.c.mu.Unlock()
	return &server.StatsReply{
		Cache: server.CacheStats{
			Hits:    int64(st.CacheHits),
			Misses:  int64(st.Queries - st.CacheHits),
			Entries: entries,
		},
		Conns:         conns,
		Fingerprint:   f.c.fp,
		UptimeSeconds: time.Since(f.start).Seconds(),
		Queries:       int64(st.Queries),
		Coord:         f.c.wireStats(),
	}
}

// runQuery plans and executes one statement through the coordinator and
// streams the gathered result back in protocol frames.
func (f *Frontend) runQuery(sql string, w io.Writer) error {
	result, meta, err := f.c.Query(context.Background(), sql)
	if err != nil {
		// Classify exactly as the server does: unparsable → parse; shard
		// execution failures → exec; everything between → plan.
		code := server.CodePlan
		var se *ShardError
		if errors.As(err, &se) {
			code = server.CodeExec
		} else if _, perr := f.c.opt.Parse(sql); perr != nil {
			code = server.CodeParse
		}
		return writeError(w, code, err)
	}
	return server.StreamResult(w, result, frontendBatchRows, &server.Done{
		Tuples:   result.Len(),
		Plans:    meta.Plans,
		CacheHit: meta.CacheHit,
		BestCost: meta.BestCost,
		Engine:   f.c.cfg.Spec.Name,
	})
}

// writeError writes one typed error frame.
func writeError(w io.Writer, code string, err error) error {
	return server.WriteFrame(w, &server.Response{
		Kind: server.KindError,
		Err:  &server.WireError{Code: code, Msg: err.Error()},
	})
}
