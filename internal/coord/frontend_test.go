package coord_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"tqp/internal/catalog"
	"tqp/internal/coord"
	"tqp/internal/obs"
	"tqp/internal/server"
	"tqp/internal/shard"
)

// startCoordinator builds a coordinator over an in-process shard fleet.
func startCoordinator(t *testing.T, shards int) (*coord.Coordinator, *catalog.Catalog) {
	t.Helper()
	cat := catalog.Paper()
	addrs := startShards(t, cat, shards, shard.Auto)
	c, err := coord.New(context.Background(), coord.Config{Catalog: cat, Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, cat
}

// TestFrontendServesProtocol drives a protocol client against the
// coordinator's frontend: ping, a query whose result must be bit-identical
// to a direct coordinator call, a stats reply with the Coord section, and
// the typed refusals for set and partial.
func TestFrontendServesProtocol(t *testing.T) {
	c, _ := startCoordinator(t, 2)
	f, err := c.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })

	cl, err := server.Dial(context.Background(), f.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}

	direct, _, err := c.Query(context.Background(), paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	viaWire, meta, err := cl.Query(context.Background(), paperSQL)
	if err != nil {
		t.Fatalf("query via frontend: %v", err)
	}
	if !viaWire.EqualAsList(direct) {
		t.Errorf("wire result differs from direct coordinator result:\n%s\nvs\n%s", viaWire, direct)
	}
	if !meta.CacheHit { // the direct call populated the coordinator cache
		t.Error("second coordination of the same statement must hit the cache")
	}

	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Coord == nil {
		t.Fatal("frontend stats must fill the Coord section")
	}
	if st.Coord.Shards != 2 {
		t.Errorf("shards = %d, want 2", st.Coord.Shards)
	}
	if st.Coord.Queries != 2 || st.Coord.CacheHits != 1 {
		t.Errorf("queries/hits = %d/%d, want 2/1", st.Coord.Queries, st.Coord.CacheHits)
	}
	if len(st.Coord.Fragments) == 0 {
		t.Error("fragment-kind counts missing")
	}
	if st.Coord.ShardCalls == 0 {
		t.Error("shard calls missing — a vacuous run proves nothing")
	}
	if st.UptimeSeconds <= 0 || st.Fingerprint == "" {
		t.Errorf("shared stats fields missing: %+v", st)
	}

	if err := cl.Set(context.Background(), "engine", "reference"); err == nil {
		t.Fatal("set must be refused by a coordinator")
	}

	// Errors classify like the server's: parse for garbage, plan for
	// unknown names.
	if _, _, err := cl.Query(context.Background(), "SELECT"); err == nil ||
		!strings.Contains(err.Error(), "[parse]") {
		t.Errorf("garbage statement error = %v, want a parse code", err)
	}
	if _, _, err := cl.Query(context.Background(), "SELECT x FROM NOWHERE"); err == nil ||
		!strings.Contains(err.Error(), "[plan]") {
		t.Errorf("unknown relation error = %v, want a plan code", err)
	}
}

// TestCoordinatorMetrics registers the coordinator into a registry, runs a
// query, and asserts the scrape covers the coordinator families including
// the per-kind fragment counters.
func TestCoordinatorMetrics(t *testing.T) {
	c, _ := startCoordinator(t, 2)
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	addr, shutdown, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	if _, _, err := c.Query(context.Background(), paperSQL); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		"tqp_coord_shards 2",
		"tqp_coord_queries_total 1",
		"tqp_coord_shard_calls_total",
		"tqp_coord_retries_total 0",
		`tqp_coord_fragments_total{kind="chain"}`,
		`tqp_coord_fragments_total{kind="sorted"}`,
		`tqp_coord_fragments_total{kind="grouped"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}
