package coord

import (
	"tqp/internal/core"
	"tqp/internal/obs"
	"tqp/internal/server"
)

// RegisterMetrics exports the coordinator's counters into reg as
// scrape-time readers over Stats — the coordinator's hot path keeps its
// own counters under c.mu and never touches registry handles. The
// fragment-kind series are registered eagerly for every kind the splitter
// can produce, so a scrape always shows the full family even before the
// first query.
func (c *Coordinator) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("tqp_coord_shards", "Shard servers this coordinator scatters to.", func() float64 {
		return float64(len(c.cfg.Addrs))
	})
	reg.CounterFunc("tqp_coord_queries_total", "Statements planned by the coordinator.", func() float64 {
		return float64(c.Stats().Queries)
	})
	reg.CounterFunc("tqp_coord_cache_hits_total", "Coordinator plan/split cache hits.", func() float64 {
		return float64(c.Stats().CacheHits)
	})
	reg.CounterFunc("tqp_coord_shard_calls_total", "Partial-plan round trips dispatched to shards.", func() float64 {
		return float64(c.Stats().ShardCalls)
	})
	reg.CounterFunc("tqp_coord_retries_total", "Shard calls recovered by redial-and-retry.", func() float64 {
		return float64(c.Stats().Retries)
	})
	for _, kind := range []core.FragmentKind{core.FragmentChain, core.FragmentSorted, core.FragmentGrouped} {
		name := kind.String()
		reg.CounterFunc("tqp_coord_fragments_total", "Pushed-down fragments planned, by merge kind.", func() float64 {
			return float64(c.Stats().Fragments[name])
		}, obs.L("kind", name))
	}
}

// wireStats renders the coordinator's counters as the stats reply's Coord
// section.
func (c *Coordinator) wireStats() *server.CoordStats {
	st := c.Stats()
	frags := make(map[string]int, len(st.Fragments))
	for k, v := range st.Fragments {
		frags[k] = v
	}
	return &server.CoordStats{
		Shards:     len(c.cfg.Addrs),
		Queries:    int64(st.Queries),
		CacheHits:  int64(st.CacheHits),
		Fragments:  frags,
		ShardCalls: int64(st.ShardCalls),
		Retries:    int64(st.Retries),
	}
}
