package core_test

import (
	"strings"
	"testing"

	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/exec"
	"tqp/internal/obs"
)

// TestExplainAnalyzePaperQuery pins the rendered analysis on the paper's
// running example: a header with wall/rows/fingerprint, per-node est-vs-
// actual annotations on stratum nodes, and the (dbms) marker on nodes
// that executed inside the DBMS black box.
func TestExplainAnalyzePaperQuery(t *testing.T) {
	opt := core.New(catalog.Paper(), core.WithEngine(exec.Spec()))
	prep, err := opt.Prepare(engineTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	an, err := opt.ExplainAnalyze(prep, exec.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if an.Result.Len() != len(catalog.PaperResultRows()) {
		t.Fatalf("analyzed run returned %d rows, want %d", an.Result.Len(), len(catalog.PaperResultRows()))
	}
	text := an.Text
	if !strings.HasPrefix(text, "EXPLAIN ANALYZE") {
		t.Fatalf("missing header:\n%s", text)
	}
	for _, want := range []string{
		"plan=" + prep.Fingerprint, // header names the plan identity
		"rows est≈",                // estimates rendered
		" act=",                    // actuals rendered
		"act=(dbms)",               // DBMS-interior nodes are a black box
		"(×",                       // misestimate ratio
	} {
		if !strings.Contains(text, want) {
			t.Errorf("analysis missing %q:\n%s", want, text)
		}
	}
	if an.Probe.Len() == 0 {
		t.Fatal("no per-node actuals collected")
	}
	if an.Trace == nil || an.Trace.TuplesTransferred == 0 {
		t.Fatal("analysis lost the execution trace")
	}
}

// TestExplainAnalyzeParity executes one prepared plan under every engine
// and demands bit-identical results plus identical per-node actuals: each
// stratum node's actual row count must equal the reference evaluator's
// intermediate cardinality at the same plan position, whatever engine
// materialized it.
func TestExplainAnalyzeParity(t *testing.T) {
	c := catalog.Paper()
	opt := core.New(c, core.WithEngine(exec.Spec()))
	prep, err := opt.Prepare(engineTestSQL)
	if err != nil {
		t.Fatal(err)
	}

	refSpec, err := core.EngineSpec("reference")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := opt.ExplainAnalyze(prep, refSpec)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	refRows := map[string]int64{}
	ref.Probe.Each(func(path string, n *obs.NodeStats) { refRows[path] = n.Rows })
	if len(refRows) == 0 {
		t.Fatal("reference run observed no nodes")
	}

	for _, e := range []struct {
		name     string
		parallel int
		mem      int64
	}{
		{"exec", 0, 0},        // streaming hash engine
		{"exec", 4, 0},        // morsel-parallel
		{"parallel", 2, 0},    // parallel alias
		{"exec", 0, 64 << 10}, // budgeted, spills on this plan's joins
		{"exec", 2, 16 << 20}, // parallel + budgeted
	} {
		spec, err := core.EngineFor(e.name, exec.Config{Parallelism: e.parallel, MemoryBudget: e.mem})
		if err != nil {
			t.Fatal(err)
		}
		an, err := opt.ExplainAnalyze(prep, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if !an.Result.EqualAsList(ref.Result) {
			t.Errorf("%s: result differs from reference:\n%s\nvs\n%s", spec.Name, an.Result, ref.Result)
		}
		if an.Probe.Len() != len(refRows) {
			t.Errorf("%s: observed %d nodes, reference %d", spec.Name, an.Probe.Len(), len(refRows))
		}
		an.Probe.Each(func(path string, n *obs.NodeStats) {
			want, ok := refRows[path]
			if !ok {
				t.Errorf("%s: node %s observed but not by the reference run", spec.Name, path)
				return
			}
			if n.Rows != want {
				t.Errorf("%s: node %s actual rows = %d, reference intermediate cardinality = %d",
					spec.Name, path, n.Rows, want)
			}
		})
	}
}

// TestPreparedEstimates pins that Prepare retains the cost model's
// per-node estimates keyed by plan path, including the root.
func TestPreparedEstimates(t *testing.T) {
	opt := core.New(catalog.Paper(), core.WithEngine(exec.Spec()))
	prep, err := opt.Prepare(engineTestSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Estimates) == 0 {
		t.Fatal("no per-node estimates retained")
	}
	root, ok := prep.Estimates["ε"]
	if !ok || root.Rows <= 0 {
		t.Fatalf("root estimate missing or empty: %+v (have %d nodes)", root, len(prep.Estimates))
	}
	if prep.Fingerprint == "" || len(prep.Fingerprint) != 16 {
		t.Fatalf("plan fingerprint %q", prep.Fingerprint)
	}
}
