package core_test

import (
	"testing"

	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/equiv"
	"tqp/internal/relation"
	"tqp/internal/tsql"
)

// TestOptimizeBeamEndToEnd: the heuristic optimizer reaches the exhaustive
// best on the paper query, and its chosen plan executes correctly in the
// layered architecture.
func TestOptimizeBeamEndToEnd(t *testing.T) {
	c := catalog.Paper()
	o := core.New(c)
	q, err := tsql.Parse(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	initial, err := q.Plan(c)
	if err != nil {
		t.Fatal(err)
	}

	exhaustive, err := o.Optimize(initial, q.ResultType(), q.OrderBy())
	if err != nil {
		t.Fatal(err)
	}
	beam, err := o.OptimizeBeam(initial, q.ResultType(), q.OrderBy())
	if err != nil {
		t.Fatal(err)
	}
	if beam.BestCost > exhaustive.BestCost*1.001 {
		t.Errorf("beam best %.1f vs exhaustive %.1f", beam.BestCost, exhaustive.BestCost)
	}
	if len(beam.All) >= len(exhaustive.All) {
		t.Errorf("beam should visit fewer plans: %d vs %d", len(beam.All), len(exhaustive.All))
	}

	got, _, err := o.Execute(beam.Best)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustFromRows(got.Schema(), catalog.PaperResultRows())
	ok, err := equiv.CheckSQL(equiv.ResultList,
		relation.OrderSpec{relation.Key("EmpName")}, want, got)
	if err != nil || !ok {
		t.Errorf("beam-chosen plan produced a wrong result (err=%v):\n%s", err, got)
	}
}
