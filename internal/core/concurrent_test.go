package core_test

// The concurrency audit the serving layer relies on: one Optimizer (and
// one cached Prepared) used from many goroutines at once must be safe and
// deterministic. CI runs this under -race; any shared mutable state on the
// parse → plan → enumerate → cost → execute path surfaces here. The
// invariant is strong on purpose: not merely "no race", but every
// concurrent execution returns the exact result list the sequential path
// returns.

import (
	"fmt"
	"sync"
	"testing"

	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/exec"
	"tqp/internal/relation"
)

// auditStatements covers the pipeline breadth-first: conventional and
// sequenced selects, set operations, grouping, coalescing, a qualified
// join, and the paper's running example.
var auditStatements = []string{
	"SELECT EmpName FROM EMPLOYEE",
	"SELECT DISTINCT EmpName FROM EMPLOYEE ORDER BY EmpName",
	"SELECT EmpName, Dept FROM EMPLOYEE WHERE Dept = 'Sales' ORDER BY EmpName DESC",
	"VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC",
	"SELECT EmpName FROM EMPLOYEE UNION SELECT EmpName FROM PROJECT ORDER BY EmpName",
	"VALIDTIME SELECT Dept, COUNT(*) AS headcount FROM EMPLOYEE GROUP BY Dept",
	"VALIDTIME SELECT DISTINCT 1.EmpName FROM EMPLOYEE, PROJECT WHERE 1.EmpName = 2.EmpName",
}

// TestOptimizerConcurrentUse shares one Optimizer across N goroutines,
// each independently preparing and executing the audit statements, and
// requires every result to be bit-identical to the sequential outcome.
func TestOptimizerConcurrentUse(t *testing.T) {
	cat := catalog.Paper()
	spec := exec.NewSpec(exec.Config{Parallelism: 2})
	opt := core.New(cat, core.WithEngine(spec), core.WithDBMSSeed(1))

	// Sequential oracle first.
	want := make(map[string]*relation.Relation, len(auditStatements))
	for _, sql := range auditStatements {
		prep, err := opt.Prepare(sql)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		r, _, err := opt.ExecutePlan(prep.Plan, spec)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		want[sql] = r
	}

	const goroutines = 8
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, sql := range auditStatements {
				// Rotate the starting statement so goroutines collide on
				// different statements at any instant.
				sql = auditStatements[(i+g)%len(auditStatements)]
				prep, err := opt.Prepare(sql)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d: prepare %q: %w", g, sql, err)
					return
				}
				got, _, err := opt.ExecutePlan(prep.Plan, spec)
				if err != nil {
					errc <- fmt.Errorf("goroutine %d: execute %q: %w", g, sql, err)
					return
				}
				if !got.EqualAsList(want[sql]) {
					errc <- fmt.Errorf("goroutine %d: %q: concurrent result differs from sequential", g, sql)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestSharedPreparedConcurrentExecution executes one cached Prepared — one
// shared plan tree — from many goroutines on distinct engine specs at
// once. This is exactly what a plan-cache hit does on a busy server: the
// tree must behave as immutable under execution.
func TestSharedPreparedConcurrentExecution(t *testing.T) {
	cat := catalog.Paper()
	opt := core.New(cat, core.WithDBMSSeed(1))
	const sql = "VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC"
	prep, err := opt.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	specs := []struct {
		name string
		opts exec.Config
	}{
		{"seq", exec.Config{}},
		{"par2", exec.Config{Parallelism: 2}},
		{"mem64K", exec.Config{MemoryBudget: 64 << 10}},
	}
	want, _, err := opt.ExecutePlan(prep.Plan, exec.NewSpec(specs[0].opts))
	if err != nil {
		t.Fatal(err)
	}

	const perSpec = 4
	errc := make(chan error, len(specs)*perSpec)
	var wg sync.WaitGroup
	for _, sc := range specs {
		for k := 0; k < perSpec; k++ {
			wg.Add(1)
			go func(name string, o exec.Config) {
				defer wg.Done()
				got, _, err := opt.ExecutePlan(prep.Plan, exec.NewSpec(o))
				if err != nil {
					errc <- fmt.Errorf("%s: %w", name, err)
					return
				}
				if !got.EqualAsList(want) {
					errc <- fmt.Errorf("%s: shared-plan execution differs", name)
				}
			}(sc.name, sc.opts)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestOptimizerConcurrentRunAndExplain exercises the remaining public
// surface concurrently — Run (with its ≡SQL verification), OptimizeSQL and
// Explain — since the shell and the server lean on all three.
func TestOptimizerConcurrentRunAndExplain(t *testing.T) {
	cat := catalog.Paper()
	spec, err := core.EngineSpec("exec")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.New(cat, core.WithEngine(spec))
	const goroutines = 6
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sql := auditStatements[g%len(auditStatements)]
			result, plans, _, err := opt.Run(sql)
			if err != nil {
				errc <- fmt.Errorf("run %q: %w", sql, err)
				return
			}
			if result.Len() == 0 {
				// Every audit statement yields rows on the paper catalog;
				// a zero-length result marks a wrong plan.
				errc <- fmt.Errorf("run %q: empty result", sql)
				return
			}
			if _, err := opt.Explain(plans.Best, plans.ResultType); err != nil {
				errc <- fmt.Errorf("explain %q: %w", sql, err)
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
