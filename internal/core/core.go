// Package core is the paper's primary contribution assembled into one
// component: a provably correct temporal query optimizer. It wires the
// three stages the paper assigns to the database implementor (Section 7) —
// formally specified operations (packages algebra/eval), transformation
// rules with proven equivalence types (package rules), and
// property-guarded plan enumeration (packages props/enum) — and extends
// them with the cost-based selection the paper lists as future work
// (package cost) and the layered stratum/DBMS execution (packages
// stratum/dbms).
package core

import (
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"time"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/cost"
	"tqp/internal/enum"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/obs"
	"tqp/internal/physical"
	"tqp/internal/props"
	"tqp/internal/relation"
	"tqp/internal/rules"
	"tqp/internal/stratum"
	"tqp/internal/tsql"
)

// Optimizer plans and executes queries over one catalog.
type Optimizer struct {
	cat    *catalog.Catalog
	model  *cost.Model
	config enum.Config
	seed   int64
	engine eval.EngineSpec
}

// Option configures an Optimizer.
type Option func(*Optimizer)

// EngineSpec resolves a physical-engine name: "reference" is the executable
// specification of package eval, "exec" the streaming hash/merge engine of
// package exec, "parallel" its morsel-parallel variant at GOMAXPROCS
// workers. All produce identical result lists; they differ in speed and
// therefore in the cost shapes the optimizer assumes.
func EngineSpec(name string) (eval.EngineSpec, error) { return EngineFor(name, exec.Config{}) }

// EngineFor resolves an engine name against an exec.Config (the CLIs' and
// sessions' -parallel/-mem/-spill knobs in one struct): "exec" and
// "parallel" honor every Config field — parallelism > 1 selects the
// morsel-parallel engine at that width, MemoryBudget > 0 bounds the
// blocking operators with grace-hash spilling, and "parallel" defaults a
// missing width to GOMAXPROCS. The reference evaluator is single-threaded
// and unbudgeted; it rejects both requests.
func EngineFor(name string, cfg exec.Config) (eval.EngineSpec, error) {
	if cfg.MemoryBudget < 0 {
		return eval.EngineSpec{}, fmt.Errorf("core: negative memory budget %d", cfg.MemoryBudget)
	}
	switch name {
	case "", "reference":
		if cfg.Parallelism > 1 {
			return eval.EngineSpec{}, fmt.Errorf("core: the reference evaluator is single-threaded; use -engine exec with -parallel %d", cfg.Parallelism)
		}
		if cfg.MemoryBudget > 0 {
			return eval.EngineSpec{}, fmt.Errorf("core: the reference evaluator does not spill; use -engine exec with -mem")
		}
		return eval.Reference(), nil
	case "exec":
		return exec.NewSpec(cfg), nil
	case "parallel":
		if cfg.Parallelism < 1 {
			cfg.Parallelism = runtime.GOMAXPROCS(0)
		}
		if cfg.Parallelism == 1 && cfg.MemoryBudget <= 0 {
			// Keep the historical "exec-par1" name for the degenerate
			// width so single-core experiment traces stay distinguishable
			// from plain "exec" runs.
			return exec.ParallelSpec(1), nil
		}
		return exec.NewSpec(cfg), nil
	default:
		return eval.EngineSpec{}, fmt.Errorf("core: unknown engine %q (want \"reference\", \"exec\" or \"parallel\")", name)
	}
}

// EngineSpecWith resolves an engine name with positional worker-count and
// memory-budget arguments.
//
// Deprecated: use EngineFor, which takes the knobs as an exec.Config.
func EngineSpecWith(name string, parallelism int, memBudget int64) (eval.EngineSpec, error) {
	return EngineFor(name, exec.Config{Parallelism: parallelism, MemoryBudget: memBudget})
}

// ParseBytes parses a human-friendly byte count for the CLIs' -mem flags:
// a plain integer is bytes, and a K/M/G suffix (case-insensitive) scales by
// the binary unit. An optional trailing b/B is accepted, so the common
// two-letter spellings work too ("64K", "64KB", "16MB", "1GB"). The empty
// string is an explicit alias for 0: both mean unlimited (no memory budget
// is applied).
func ParseBytes(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	orig := s
	if last := s[len(s)-1]; (last == 'b' || last == 'B') && len(s) > 1 {
		switch s[len(s)-2] {
		case 'k', 'K', 'm', 'M', 'g', 'G':
			s = s[:len(s)-1] // unit suffix: "64KB" → "64K"
		default:
			if s[len(s)-2] >= '0' && s[len(s)-2] <= '9' {
				s = s[:len(s)-1] // plain bytes: "512B" → "512"
			}
		}
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("core: bad byte count %q (want e.g. 65536, 64K, 16MB)", orig)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("core: byte count %q overflows", orig)
	}
	return n * mult, nil
}

// WithEngine selects the physical engine that executes stratum-assigned
// subplans and recalibrates the cost model to its operator shapes (a later
// WithCostParams overrides the calibration).
func WithEngine(spec eval.EngineSpec) Option {
	return func(o *Optimizer) {
		o.engine = spec
		p := cost.ParamsFor(spec.Streaming)
		// Price order-exploiting variants only for engines that compile
		// them (spec.OrderAware); otherwise fall back to the blind shapes.
		p.OrderBlind = !spec.OrderAware
		// Price partitioned operators with the engine's fan-out width, and
		// spilling against the engine's memory budget.
		p.Parallelism = spec.Parallelism
		p.MemoryBudget = spec.MemoryBudget
		// A columnar engine's exchanges and spills move batch views, not
		// copied tuples; price them with the vectorized discounts.
		p.Vectorized = spec.Vectorized
		o.model = cost.New(o.cat, p)
	}
}

// WithRules restricts the transformation-rule set.
func WithRules(rs []rules.Rule) Option {
	return func(o *Optimizer) { o.config.Rules = rs }
}

// WithMaxPlans caps enumeration.
func WithMaxPlans(n int) Option {
	return func(o *Optimizer) { o.config.MaxPlans = n }
}

// ShardedCostParams is the calibration for a coordinator planning over N
// shards: the engine spec's shapes (streaming, order-aware, parallel,
// budgeted, vectorized) plus the scale-out pricing — DBMS-site work
// divides across the shards, shipped tuples pay the wire-and-merge hop.
func ShardedCostParams(spec eval.EngineSpec, shards int) cost.Params {
	p := cost.ParamsFor(spec.Streaming)
	p.OrderBlind = !spec.OrderAware
	p.Parallelism = spec.Parallelism
	p.MemoryBudget = spec.MemoryBudget
	p.Vectorized = spec.Vectorized
	p.Shards = shards
	return p
}

// WithCostParams overrides the cost model calibration.
func WithCostParams(p cost.Params) Option {
	return func(o *Optimizer) { o.model = cost.New(o.cat, p) }
}

// WithDBMSSeed sets the simulated DBMS's order-nondeterminism seed.
func WithDBMSSeed(seed int64) Option {
	return func(o *Optimizer) { o.seed = seed }
}

// New returns an optimizer over the catalog.
func New(cat *catalog.Catalog, opts ...Option) *Optimizer {
	o := &Optimizer{
		cat:    cat,
		model:  cost.New(cat, cost.DefaultParams()),
		seed:   1,
		engine: eval.Reference(),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Catalog returns the optimizer's catalog.
func (o *Optimizer) Catalog() *catalog.Catalog { return o.cat }

// Plans is the outcome of optimizing one query.
type Plans struct {
	// Query is the parsed statement (nil when optimizing a hand-built plan).
	Query *tsql.Query
	// Initial is the straightforward mapping of the query.
	Initial algebra.Node
	// All holds every enumerated plan, the initial plan first.
	All []algebra.Node
	// Best is the cheapest plan under the cost model.
	Best algebra.Node
	// BestCost and InitialCost are the model's estimates.
	BestCost    float64
	InitialCost float64
	// ResultType and OrderBy derive from Definition 5.1.
	ResultType equiv.ResultType
	OrderBy    relation.OrderSpec
	// Enumeration carries provenance and guard statistics.
	Enumeration *enum.Result
}

// Parse parses a statement against the catalog's dialect.
func (o *Optimizer) Parse(sql string) (*tsql.Query, error) { return tsql.Parse(sql) }

// OptimizeSQL parses, plans, enumerates and costs a statement.
func (o *Optimizer) OptimizeSQL(sql string) (*Plans, error) {
	q, err := tsql.Parse(sql)
	if err != nil {
		return nil, err
	}
	initial, err := q.Plan(o.cat)
	if err != nil {
		return nil, err
	}
	ps, err := o.Optimize(initial, q.ResultType(), q.OrderBy())
	if err != nil {
		return nil, err
	}
	ps.Query = q
	return ps, nil
}

// Optimize enumerates and costs plans for a hand-built initial plan.
func (o *Optimizer) Optimize(initial algebra.Node, rt equiv.ResultType, orderBy relation.OrderSpec) (*Plans, error) {
	cfg := o.config
	cfg.ResultType = rt
	res, err := enum.Enumerate(initial, cfg)
	if err != nil {
		return nil, err
	}
	best, bestCost, err := o.model.Best(res.Plans)
	if err != nil {
		return nil, err
	}
	initialCost, err := o.model.Cost(initial)
	if err != nil {
		return nil, err
	}
	return &Plans{
		Initial:     initial,
		All:         res.Plans,
		Best:        best,
		BestCost:    bestCost,
		InitialCost: initialCost,
		ResultType:  rt,
		OrderBy:     orderBy,
		Enumeration: res,
	}, nil
}

// OptimizeBeam is the heuristic alternative to Optimize for plans whose
// exhaustive closure would be too large: a cost-guided beam search
// (internal/enum.Beam) that typically reaches the same best plan while
// visiting a fraction of the space.
func (o *Optimizer) OptimizeBeam(initial algebra.Node, rt equiv.ResultType, orderBy relation.OrderSpec) (*Plans, error) {
	cfg := enum.BeamConfig{
		Config: o.config,
		Score:  o.model.Cost,
	}
	cfg.ResultType = rt
	res, err := enum.Beam(initial, cfg)
	if err != nil {
		return nil, err
	}
	best, bestCost, err := o.model.Best(res.Plans)
	if err != nil {
		return nil, err
	}
	initialCost, err := o.model.Cost(initial)
	if err != nil {
		return nil, err
	}
	return &Plans{
		Initial:     initial,
		All:         res.Plans,
		Best:        best,
		BestCost:    bestCost,
		InitialCost: initialCost,
		ResultType:  rt,
		OrderBy:     orderBy,
		Enumeration: res,
	}, nil
}

// Prepared is a statement optimized down to one executable physical plan —
// the unit the serving layer caches. It carries everything needed to run
// the statement again without parsing or enumerating: the chosen plan
// (wrapped in its EnforceOrder sort, so the ORDER BY contract is physical),
// the result type, and the planning provenance the server reports with
// results. A Prepared is immutable after Prepare returns; plan trees are
// never mutated by execution (the stratum executor rebinds children into
// fresh nodes), so one Prepared may be executed from any number of
// goroutines concurrently.
type Prepared struct {
	// SQL is the statement text as planned.
	SQL string
	// Plan is the best plan under the cost model, order-enforced at the root.
	Plan algebra.Node
	// ResultType and OrderBy derive from Definition 5.1.
	ResultType equiv.ResultType
	OrderBy    relation.OrderSpec
	// PlanCount and BestCost record the enumeration outcome.
	PlanCount int
	BestCost  float64
	// Estimates holds the cost model's per-node predictions keyed by
	// algebra path ("ε", "0", "0.1"). Plan trees are immutable, so paths
	// are stable node IDs; EXPLAIN ANALYZE joins execution actuals against
	// this map, and the ROADMAP's cardinality-feedback loop will consume
	// the same pairs.
	Estimates map[string]NodeEstimate
	// Fingerprint identifies the physical plan: a truncated SHA-256 over
	// its canonical text. The structured query log records it, so a slow
	// query can be joined back to the exact plan that ran it.
	Fingerprint string
}

// NodeEstimate is the estimator's prediction for one plan node.
type NodeEstimate struct {
	Rows float64
	Cost float64
}

// Prepare parses, plans and costs a statement down to a single executable
// physical plan — the plan-cache hook: the server calls Prepare on a cache
// miss, stores the result keyed by (normalized SQL, catalog fingerprint,
// engine spec), and executes cached Prepareds directly on a hit, skipping
// the parse and the beam enumeration entirely. Enumeration uses the
// cost-guided beam search (OptimizeBeam), the production path for
// statements whose exhaustive closure would be large.
func (o *Optimizer) Prepare(sql string) (*Prepared, error) {
	q, err := tsql.Parse(sql)
	if err != nil {
		return nil, err
	}
	initial, err := q.Plan(o.cat)
	if err != nil {
		return nil, err
	}
	ps, err := o.OptimizeBeam(initial, q.ResultType(), q.OrderBy())
	if err != nil {
		return nil, err
	}
	plan := EnforceOrder(ps.Best, ps.OrderBy)
	if err := stratum.ValidateSites(plan); err != nil {
		return nil, err
	}
	es, err := o.model.Plan(plan)
	if err != nil {
		return nil, err
	}
	estimates := make(map[string]NodeEstimate, algebra.Count(plan))
	algebra.Walk(plan, func(n algebra.Node, p algebra.Path) bool {
		e := es[n]
		estimates[p.String()] = NodeEstimate{Rows: e.Rows, Cost: e.Cost}
		return true
	})
	return &Prepared{
		SQL:         sql,
		Plan:        plan,
		ResultType:  ps.ResultType,
		OrderBy:     ps.OrderBy,
		PlanCount:   len(ps.All),
		BestCost:    ps.BestCost,
		Estimates:   estimates,
		Fingerprint: obs.Hash(algebra.Canonical(plan)),
	}, nil
}

// ExecutePlan runs a plan through the layered stratum/DBMS executor on an
// explicit physical engine spec, overriding the optimizer's own (see
// WithEngine). This is the per-query execution path of the serving layer:
// the admission controller derives a spec from each query's resource grant
// (worker share, memory share, spill directory) and executes the cached
// plan on it, while planning stays keyed to the session's engine settings.
// A fresh executor is built per call, so concurrent ExecutePlan calls on
// one Optimizer never share mutable state.
func (o *Optimizer) ExecutePlan(plan algebra.Node, spec eval.EngineSpec) (*relation.Relation, *stratum.Trace, error) {
	if err := stratum.ValidateSites(plan); err != nil {
		return nil, nil, err
	}
	return stratum.NewWithEngine(o.cat, o.seed, spec).Execute(plan)
}

// Fingerprint returns the catalog's planning fingerprint (see
// catalog.Fingerprint) — one of the three components of a plan-cache key.
func (o *Optimizer) Fingerprint() string { return o.cat.Fingerprint() }

// Engine returns the optimizer's physical engine spec.
func (o *Optimizer) Engine() eval.EngineSpec { return o.engine }

// EnforceOrder wraps a plan in sort_{orderBy}, physically guaranteeing the
// ≡SQL order contract of Definition 5.1 at the root. The wrapper costs
// next to nothing where the optimizer did its job: the exec engine elides
// the sort whenever the plan already delivers an order orderBy is a prefix
// of (e.g. Figure 6(b), whose DBMS sort's order every operation above
// preserves), and the order-aware cost model prices exactly that. An empty
// orderBy returns the plan unchanged.
func EnforceOrder(plan algebra.Node, orderBy relation.OrderSpec) algebra.Node {
	if orderBy.Empty() {
		return plan
	}
	return algebra.NewSort(orderBy, plan)
}

// Execute runs a plan through the layered stratum/DBMS executor on the
// optimizer's physical engine (see WithEngine).
func (o *Optimizer) Execute(plan algebra.Node) (*relation.Relation, *stratum.Trace, error) {
	if err := stratum.ValidateSites(plan); err != nil {
		return nil, nil, err
	}
	return stratum.NewWithEngine(o.cat, o.seed, o.engine).Execute(plan)
}

// Reference evaluates a plan with the reference evaluator (transfers are
// identities), for verification against the layered execution.
func (o *Optimizer) Reference(plan algebra.Node) (*relation.Relation, error) {
	return eval.New(o.cat).Eval(plan)
}

// Run is the end-to-end convenience: parse, optimize, execute the best
// plan, and verify it against the initial plan under ≡SQL (Definition 5.1).
func (o *Optimizer) Run(sql string) (*relation.Relation, *Plans, *stratum.Trace, error) {
	ps, err := o.OptimizeSQL(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	got, trace, err := o.Execute(ps.Best)
	if err != nil {
		return nil, nil, nil, err
	}
	want, err := o.Reference(ps.Initial)
	if err != nil {
		return nil, nil, nil, err
	}
	ok, err := equiv.CheckSQL(ps.ResultType, ps.OrderBy, want, got)
	if err != nil {
		return nil, nil, nil, err
	}
	if !ok {
		return nil, nil, nil, fmt.Errorf(
			"core: best plan's layered execution is not ≡SQL to the reference result (plan %s)",
			algebra.Canonical(ps.Best))
	}
	return got, ps, trace, nil
}

// Explain renders a plan with its property vectors (Figure 6 style) and
// cost estimates.
func (o *Optimizer) Explain(plan algebra.Node, rt equiv.ResultType) (string, error) {
	st, err := props.InferStates(plan)
	if err != nil {
		return "", err
	}
	pm, err := props.Infer(plan, rt, st)
	if err != nil {
		return "", err
	}
	es, err := o.model.Plan(plan)
	if err != nil {
		return "", err
	}
	return algebra.Render(plan, func(n algebra.Node, _ algebra.Path) string {
		return fmt.Sprintf("%s  site=%s rows≈%.0f cost≈%.0f",
			pm[n].Vector(), st[n].Site, es[n].Rows, es[n].Cost)
	}), nil
}

// Analysis is the outcome of one EXPLAIN ANALYZE execution: the rendered
// annotated plan plus the artifacts callers verify with (the result
// relation — analyzed runs must be bit-identical to plain runs — and the
// probe holding raw per-node actuals for programmatic consumers).
type Analysis struct {
	Text   string
	Result *relation.Relation
	Trace  *stratum.Trace
	Probe  *obs.PlanProbe
	Wall   time.Duration
}

// ExplainAnalyze executes a prepared plan with per-node instrumentation on
// the given engine spec and renders the physical tree with estimated
// versus actual rows and the misestimate ratio per node. Actuals exist for
// every node the stratum executor evaluates — stratum operators and TS
// transfers (whose actual is the transferred row count, timed over the
// whole DBMS region below) — while nodes inside a DBMS region render
// estimates only: the simulated DBMS rewrites its subplan before running
// it, so per-node actuals below a TS do not exist in the layered
// architecture. Instrumentation only observes; the result is bit-identical
// to an unanalyzed ExecutePlan of the same plan and spec.
func (o *Optimizer) ExplainAnalyze(prep *Prepared, spec eval.EngineSpec) (*Analysis, error) {
	if err := stratum.ValidateSites(prep.Plan); err != nil {
		return nil, err
	}
	x := stratum.NewWithEngine(o.cat, o.seed, spec)
	probe := obs.NewPlanProbe()
	x.SetProbe(probe.Observe)
	start := time.Now()
	r, tr, err := x.Execute(prep.Plan)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)

	st, err := props.InferStates(prep.Plan)
	if err != nil {
		return nil, err
	}
	dec, err := physical.Annotate(prep.Plan)
	if err != nil {
		return nil, err
	}
	tree := algebra.Render(prep.Plan, func(n algebra.Node, p algebra.Path) string {
		est, hasEst := prep.Estimates[p.String()]
		var b strings.Builder
		if d, ok := dec[n]; ok && d.Algo != "" {
			fmt.Fprintf(&b, "(%s)  ", d.Algo)
		}
		if hasEst {
			fmt.Fprintf(&b, "rows est≈%.0f", est.Rows)
		} else {
			b.WriteString("rows est=?")
		}
		ns := probe.Get(p.String())
		if ns == nil {
			// Inside the DBMS black box (or never evaluated): no actuals.
			if st[n].Site == props.DBMS {
				b.WriteString(" act=(dbms)")
			} else {
				b.WriteString(" act=?")
			}
			return b.String()
		}
		fmt.Fprintf(&b, " act=%d", ns.Rows)
		if hasEst {
			fmt.Fprintf(&b, " (%s)", misestimate(est.Rows, float64(ns.Rows)))
		}
		fmt.Fprintf(&b, "  time=%s", fmtWall(ns.Wall))
		if ns.Batches > 0 {
			fmt.Fprintf(&b, " batches=%d", ns.Batches)
		}
		if ns.SpilledOps > 0 {
			fmt.Fprintf(&b, " spilled=%dB/%dops", ns.SpilledBytes, ns.SpilledOps)
		}
		if ns.Evals > 1 {
			fmt.Fprintf(&b, " evals=%d", ns.Evals)
		}
		return b.String()
	})
	header := fmt.Sprintf(
		"EXPLAIN ANALYZE  engine=%s  wall=%s  rows=%d  transferred=%d  plan=%s",
		spec.Name, fmtWall(wall), r.Len(), tr.TuplesTransferred, prep.Fingerprint)
	return &Analysis{
		Text:   header + "\n" + tree,
		Result: r,
		Trace:  tr,
		Probe:  probe,
		Wall:   wall,
	}, nil
}

// misestimate renders the actual/estimated row ratio ("×1.00" is a perfect
// estimate; "×25.00" a 25-fold underestimate — the shape the cardinality-
// feedback loop hunts for).
func misestimate(est, act float64) string {
	if est <= 0 {
		if act == 0 {
			return "×1.00"
		}
		return "×∞"
	}
	return fmt.Sprintf("×%.2f", act/est)
}

// fmtWall renders a wall time compactly for plan annotations.
func fmtWall(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
