package core_test

import (
	"strings"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/equiv"
	"tqp/internal/relation"
)

const paperSQL = `VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
	EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`

// TestRunPaperQuery drives the complete pipeline — parse, enumerate, cost,
// pick, execute in the layered architecture, verify ≡SQL — and pins the
// paper's Result relation.
func TestRunPaperQuery(t *testing.T) {
	o := core.New(catalog.Paper())
	got, plans, trace, err := o.Run(paperSQL)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := relation.MustFromRows(got.Schema(), catalog.PaperResultRows())
	ok, err := equiv.CheckSQL(equiv.ResultList, plans.OrderBy, want, got)
	if err != nil || !ok {
		t.Errorf("layered result is not the paper's Result (err=%v):\n%s", err, got)
	}
	if plans.BestCost >= plans.InitialCost {
		t.Errorf("best plan cost %.1f should beat the initial plan's %.1f",
			plans.BestCost, plans.InitialCost)
	}
	if len(trace.SQL) == 0 {
		t.Error("expected SQL shipped to the DBMS")
	}
	t.Logf("plans=%d initial=%.0f best=%.0f transferred=%d tuples",
		len(plans.All), plans.InitialCost, plans.BestCost, trace.TuplesTransferred)
}

// TestBestPlanShape: under the default cost calibration the chosen plan
// must, like the paper's Figure 6(b), evaluate the temporal operations in
// the stratum (no temporal operation below a TS) and keep a DBMS-side sort.
func TestBestPlanShape(t *testing.T) {
	o := core.New(catalog.Paper())
	plans, err := o.OptimizeSQL(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	best := algebra.Canonical(plans.Best)
	t.Logf("best plan: %s", best)

	inDBMS := false
	var walkDBMS func(n algebra.Node, below bool)
	walkDBMS = func(n algebra.Node, below bool) {
		if below && n.Op().Temporal() {
			inDBMS = true
		}
		next := below
		if n.Op() == algebra.OpTransferS {
			next = true
		}
		for _, c := range n.Children() {
			walkDBMS(c, next)
		}
	}
	walkDBMS(plans.Best, false)
	if inDBMS {
		t.Errorf("best plan leaves a temporal operation in the DBMS: %s", best)
	}
	if !strings.Contains(best, "sort") {
		t.Errorf("best plan should retain a sort for the ORDER BY: %s", best)
	}
}

// TestExplain renders the chosen plan with property vectors and costs.
func TestExplain(t *testing.T) {
	o := core.New(catalog.Paper())
	plans, err := o.OptimizeSQL(paperSQL)
	if err != nil {
		t.Fatal(err)
	}
	out, err := o.Explain(plans.Best, plans.ResultType)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantPart := range []string{"diffT", "site=dbms", "site=stratum", "rows≈", "["} {
		if !strings.Contains(out, wantPart) {
			t.Errorf("explain output missing %q:\n%s", wantPart, out)
		}
	}
}

// TestRunVariousQueries exercises the pipeline across statement shapes and
// both architectures' agreement.
func TestRunVariousQueries(t *testing.T) {
	o := core.New(catalog.Paper())
	for _, sql := range []string{
		"SELECT * FROM EMPLOYEE",
		"SELECT DISTINCT Dept FROM EMPLOYEE ORDER BY Dept",
		"SELECT EmpName, COUNT(*) AS spells FROM EMPLOYEE GROUP BY EmpName ORDER BY EmpName",
		"VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE ORDER BY EmpName",
		"VALIDTIME SELECT EmpName FROM EMPLOYEE UNION SELECT EmpName FROM PROJECT",
		"SELECT 1.EmpName, Prj FROM EMPLOYEE, PROJECT WHERE 1.EmpName = 2.EmpName AND Dept = 'Sales'",
		"VALIDTIME SELECT EmpName, COUNT(*) AS load FROM PROJECT GROUP BY EmpName ORDER BY EmpName",
	} {
		if _, _, _, err := o.Run(sql); err != nil {
			t.Errorf("%s: %v", sql, err)
		}
	}
}

// TestDBMSSeedIndependence: the ≡SQL verification inside Run must succeed
// for any DBMS order-nondeterminism seed — correctness cannot depend on the
// order the DBMS happens to produce.
func TestDBMSSeedIndependence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		o := core.New(catalog.Paper(), core.WithDBMSSeed(seed))
		got, _, _, err := o.Run(paperSQL)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := relation.MustFromRows(got.Schema(), catalog.PaperResultRows())
		ok, _ := equiv.CheckSQL(equiv.ResultList,
			relation.OrderSpec{relation.Key("EmpName")}, want, got)
		if !ok {
			t.Errorf("seed %d: wrong result:\n%s", seed, got)
		}
	}
}
