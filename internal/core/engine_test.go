package core_test

import (
	"testing"

	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/exec"
	"tqp/internal/relation"
)

const engineTestSQL = `VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`

// TestRunOnBothEngines drives the full pipeline — parse, enumerate, cost,
// layered execution, ≡SQL verification — on each physical engine and pins
// all of them to the paper's Result relation. Run itself re-verifies the
// layered result against the reference evaluation, so a pass on the exec
// and parallel engines is an end-to-end differential check through the
// stratum.
func TestRunOnBothEngines(t *testing.T) {
	for _, tc := range []struct {
		name     string
		parallel int
		mem      int64
		want     string
	}{
		{"reference", 0, 0, "reference"},
		{"exec", 0, 0, "exec"},
		{"exec", 4, 0, "exec-par4"},
		{"parallel", 2, 0, "exec-par2"},
		{"exec", 0, 64 << 10, "exec-mem64K"},
		{"exec", 2, 16 << 20, "exec-par2-mem16M"},
	} {
		spec, err := core.EngineFor(tc.name, exec.Config{Parallelism: tc.parallel, MemoryBudget: tc.mem})
		if err != nil {
			t.Fatal(err)
		}
		c := catalog.Paper()
		opt := core.New(c, core.WithEngine(spec))
		got, _, trace, err := opt.Run(engineTestSQL)
		if err != nil {
			t.Fatalf("engine %s: Run: %v", tc.want, err)
		}
		if trace.Engine != tc.want {
			t.Errorf("engine %s: trace records engine %q", tc.want, trace.Engine)
		}
		want := relation.MustFromRows(got.Schema(), catalog.PaperResultRows())
		if !got.EqualAsList(want) {
			t.Errorf("engine %s: result differs from Figure 1:\n%s", tc.want, got)
		}
	}
}

// TestEngineSpecRejectsUnknown pins the registry's error paths the cmd
// flags rely on.
func TestEngineSpecRejectsUnknown(t *testing.T) {
	if _, err := core.EngineSpec("vectorized"); err == nil {
		t.Fatal("unknown engine name must be rejected")
	}
	spec, err := core.EngineSpec("")
	if err != nil || spec.Name != "reference" {
		t.Fatalf("empty name must default to the reference engine, got %q, %v", spec.Name, err)
	}
	if _, err := core.EngineFor("reference", exec.Config{Parallelism: 8}); err == nil {
		t.Fatal("the single-threaded reference evaluator must reject a parallelism request")
	}
	if _, err := core.EngineFor("reference", exec.Config{MemoryBudget: 1 << 20}); err == nil {
		t.Fatal("the reference evaluator must reject a memory budget")
	}
	if _, err := core.EngineFor("exec", exec.Config{MemoryBudget: -1}); err == nil {
		t.Fatal("a negative memory budget must be rejected")
	}
	spec, err = core.EngineFor("parallel", exec.Config{})
	if err != nil || spec.Parallelism < 1 {
		t.Fatalf("'parallel' must default to a positive worker count, got %d, %v", spec.Parallelism, err)
	}
	spec, err = core.EngineFor("exec", exec.Config{MemoryBudget: 64 << 10})
	if err != nil || spec.MemoryBudget != 64<<10 {
		t.Fatalf("budgeted spec must carry its budget, got %d, %v", spec.MemoryBudget, err)
	}
	// The deprecated positional wrapper must resolve identically.
	old, err := core.EngineSpecWith("exec", 2, 16<<20)
	if err != nil || old.Name != "exec-par2-mem16M" {
		t.Fatalf("EngineSpecWith wrapper: got %q, %v", old.Name, err)
	}
}

// TestParseBytes pins the -mem flag syntax.
func TestParseBytes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"", 0}, {"0", 0}, {"65536", 65536},
		{"64K", 64 << 10}, {"64k", 64 << 10},
		{"16M", 16 << 20}, {"2g", 2 << 30},
		// Two-letter unit spellings: a trailing b/B after a unit letter.
		{"64KB", 64 << 10}, {"64kb", 64 << 10}, {"64Kb", 64 << 10},
		{"16MB", 16 << 20}, {"16mB", 16 << 20}, {"1GB", 1 << 30}, {"2gb", 2 << 30},
		// A trailing b/B after a digit is plain bytes.
		{"512B", 512}, {"512b", 512}, {"0B", 0},
	} {
		got, err := core.ParseBytes(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"x", "-1", "12xy3", "K", "17179869184G", "9223372036854775807M",
		"B", "b", "KB", "64KBB", "64BK", "xB"} {
		if _, err := core.ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) should fail", bad)
		}
	}
}
