package core_test

import (
	"testing"

	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/relation"
)

const engineTestSQL = `VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`

// TestRunOnBothEngines drives the full pipeline — parse, enumerate, cost,
// layered execution, ≡SQL verification — on each physical engine and pins
// both to the paper's Result relation. Run itself re-verifies the layered
// result against the reference evaluation, so a pass on the exec engine is
// an end-to-end differential check through the stratum.
func TestRunOnBothEngines(t *testing.T) {
	for _, name := range []string{"reference", "exec"} {
		spec, err := core.EngineSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		c := catalog.Paper()
		opt := core.New(c, core.WithEngine(spec))
		got, _, trace, err := opt.Run(engineTestSQL)
		if err != nil {
			t.Fatalf("engine %s: Run: %v", name, err)
		}
		if trace.Engine != name {
			t.Errorf("engine %s: trace records engine %q", name, trace.Engine)
		}
		want := relation.MustFromRows(got.Schema(), catalog.PaperResultRows())
		if !got.EqualAsList(want) {
			t.Errorf("engine %s: result differs from Figure 1:\n%s", name, got)
		}
	}
}

// TestEngineSpecRejectsUnknown pins the registry's error path the cmd flags
// rely on.
func TestEngineSpecRejectsUnknown(t *testing.T) {
	if _, err := core.EngineSpec("vectorized"); err == nil {
		t.Fatal("unknown engine name must be rejected")
	}
	spec, err := core.EngineSpec("")
	if err != nil || spec.Name != "reference" {
		t.Fatalf("empty name must default to the reference engine, got %q, %v", spec.Name, err)
	}
}
