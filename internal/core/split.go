package core

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// This file splits a chosen physical plan for sharded execution: it
// extracts the maximal per-shard fragments — chains over one base relation
// that every shard can run independently over its slice — and rewrites the
// plan so each extracted subtree reads a placeholder relation instead. The
// coordinator runs the fragments on the shards, merges their outputs
// deterministically (internal/exec's merge kernels), registers the merged
// results as the placeholder relations of a synthetic catalog, and
// executes the remainder plan through the ordinary stratum executor. The
// rewrite is engineered so the remainder replays the single-node
// execution bit-identically:
//
//   - A chain fragment (σ/π steps over a scan, no sort) merges by sequence key
//     back into the exact stored-order list the single-node DBMS would
//     have produced, and its placeholder sits where the chain sat — the
//     simulated DBMS's seeded permutation then applies to the same list
//     with the same length, so the same permuted list comes out.
//   - A sorted fragment pushes the sort down too (each shard sorts its
//     slice by the full spec; stability makes the local result the
//     restriction of the global stable sort), merges by (keys, sequence),
//     and keeps the Sort node in the remainder: re-sorting the already
//     sorted placeholder is a stable identity, and a sort-topped DBMS
//     subplan is exactly the case the simulated DBMS does not permute —
//     matching the single-node run.
//   - A grouped fragment additionally pushes one group operation
//     (temporal coalescing, temporal duplicate elimination, or a
//     conventional aggregate) from directly above the transfer, valid
//     only when the partitioning keeps every group on one shard and the
//     pushed sort's covering prefix lines up the groups contiguously.
//     Group outputs merge block-wise on that prefix; the replacement
//     TS(sort_prefix(placeholder)) keeps the site contract and the
//     no-permute gating intact while the sort is again a stable identity.
//
// Everything else — joins, set operations, projections, stratum-side
// operators, transfers — stays in the remainder and runs once,
// coordinator-side, exactly as a single node would run it.

// SplitPolicy tells the splitter what the partitioning guarantees.
type SplitPolicy struct {
	// Colocated reports whether every group of rel's rows agreeing on
	// attrs lives wholly on one shard. nil disables group push-down.
	Colocated func(rel string, attrs []string) bool
}

// FragmentKind classifies how a fragment's shard outputs merge.
type FragmentKind uint8

const (
	// FragmentChain merges by global sequence key (stored order).
	FragmentChain FragmentKind = iota
	// FragmentSorted merges by (sort keys, sequence key).
	FragmentSorted
	// FragmentGrouped merges whole group blocks on the grouping prefix.
	FragmentGrouped
)

// String names the kind.
func (k FragmentKind) String() string {
	switch k {
	case FragmentChain:
		return "chain"
	case FragmentSorted:
		return "sorted"
	default:
		return "grouped"
	}
}

// Fragment is one pushed-down chain: what every shard runs over its slice
// of Rel, plus what the coordinator needs to merge the outputs and stand
// in a placeholder relation for the remainder plan.
type Fragment struct {
	// Name is the placeholder relation registered for the merged result.
	Name string
	Kind FragmentKind
	// Rel is the base relation the fragment scans.
	Rel string
	// Steps is the per-shard chain (see exec.RunFragment).
	Steps []exec.FragmentStep
	// Schema is the fragment's output schema.
	Schema *schema.Schema
	// Order is the merged result's delivered order (declared on the
	// placeholder): the base declared order for chains, the sort spec for
	// sorted fragments, the grouping prefix for grouped ones.
	Order relation.OrderSpec
	// Keys are the sorted-fragment merge keys (the full pushed sort spec).
	Keys relation.OrderSpec
	// Prefix is the grouped-fragment merge prefix (the covering prefix of
	// the pushed sort over the grouping attributes).
	Prefix relation.OrderSpec
}

// Split is a plan divided for sharded execution.
type Split struct {
	Fragments []Fragment
	// Remainder is the plan with every fragment subtree replaced by its
	// placeholder; its base-relation leaves are exactly the placeholders.
	Remainder algebra.Node
}

type splitter struct {
	policy SplitPolicy
	frags  []Fragment
	err    error
}

// SplitForShards divides a physical plan (with its transfer nodes, as
// prepared by the optimizer) into per-shard fragments and a coordinator
// remainder. Every base-relation access ends up in some fragment — a bare
// scan is a degenerate chain — so the remainder never touches base data.
func SplitForShards(plan algebra.Node, policy SplitPolicy) (*Split, error) {
	s := &splitter{policy: policy}
	remainder := s.rewriteStratum(plan)
	if s.err != nil {
		return nil, s.err
	}
	return &Split{Fragments: s.frags, Remainder: remainder}, nil
}

// rewriteStratum walks a stratum region: group operations directly above a
// transfer may push down whole; transfers switch to the DBMS walker.
func (s *splitter) rewriteStratum(n algebra.Node) algebra.Node {
	if s.err != nil {
		return n
	}
	if repl, ok := s.tryGrouped(n); ok {
		return repl
	}
	if n.Op() == algebra.OpTransferS {
		return algebra.NewTransferS(s.rewriteDBMS(n.Children()[0]))
	}
	return s.rewriteChildren(n, s.rewriteStratum)
}

// rewriteDBMS walks a DBMS region: maximal sort?((σ|π)*(scan)) chains
// become fragments; a TD switches back to the stratum walker.
func (s *splitter) rewriteDBMS(n algebra.Node) algebra.Node {
	if s.err != nil {
		return n
	}
	if repl, ok := s.tryChain(n); ok {
		return repl
	}
	if n.Op() == algebra.OpTransferD {
		return algebra.NewTransferD(s.rewriteStratum(n.Children()[0]))
	}
	return s.rewriteChildren(n, s.rewriteDBMS)
}

func (s *splitter) rewriteChildren(n algebra.Node, walk func(algebra.Node) algebra.Node) algebra.Node {
	ch := n.Children()
	if len(ch) == 0 {
		if n.Op() == algebra.OpRel {
			// validateSites rejects this before splitting; defend anyway.
			s.fail(fmt.Errorf("core: base relation %s outside a DBMS region", n.Label()))
		}
		return n
	}
	out := make([]algebra.Node, len(ch))
	for i, c := range ch {
		out[i] = walk(c)
	}
	return n.WithChildren(out...)
}

func (s *splitter) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// chainMatch is a matched sort?((σ|π)*(Rel)) chain: the leaf, the
// select/project steps in execution (innermost-first) order, the optional
// top sort, and the chain's pre-sort output schema, delivered order, and
// output-name → base-attribute mapping (projections rename; an output
// column computed by a non-column expression has no base attribute and is
// absent from the map).
type chainMatch struct {
	rel   *algebra.Rel
	steps []exec.FragmentStep
	srt   *algebra.Sort
	sch   *schema.Schema
	order relation.OrderSpec
	base  map[string]string
}

// matchChain matches n against sort?((σ|π)*(Rel)).
func matchChain(n algebra.Node) (*chainMatch, bool) {
	var srt *algebra.Sort
	if sn, ok := n.(*algebra.Sort); ok {
		srt = sn
		n = sn.Children()[0]
	}
	var nodes []algebra.Node // outermost first
	for {
		switch n.(type) {
		case *algebra.Select, *algebra.Project:
			nodes = append(nodes, n)
			n = n.Children()[0]
			continue
		}
		break
	}
	rel, ok := n.(*algebra.Rel)
	if !ok {
		return nil, false
	}
	m := &chainMatch{
		rel:   rel,
		srt:   srt,
		sch:   rel.Sch,
		order: rel.Info.Order,
		base:  make(map[string]string, rel.Sch.Len()),
	}
	for i := 0; i < rel.Sch.Len(); i++ {
		m.base[rel.Sch.At(i).Name] = rel.Sch.At(i).Name
	}
	// Apply innermost first, threading schema, order and renames.
	for i := len(nodes) - 1; i >= 0; i-- {
		switch v := nodes[i].(type) {
		case *algebra.Select:
			m.steps = append(m.steps, exec.FragmentStep{Op: exec.FragSelect, Pred: v.P})
		case *algebra.Project:
			m.steps = append(m.steps, exec.FragmentStep{Op: exec.FragProject, Items: v.Items})
			outSch, err := v.Schema()
			if err != nil {
				return nil, false
			}
			next := make(map[string]string, len(v.Items))
			for _, it := range v.Items {
				if col, ok := it.Expr.(expr.Col); ok {
					if src, ok := m.base[col.Name]; ok {
						if _, dup := next[it.As]; !dup {
							next[it.As] = src
						}
					}
				}
			}
			m.order = eval.OrderAfterProject(m.order, v)
			m.sch, m.base = outSch, next
		}
	}
	return m, true
}

// tryChain extracts a chain or sorted fragment rooted at n.
func (s *splitter) tryChain(n algebra.Node) (algebra.Node, bool) {
	m, ok := matchChain(n)
	if !ok {
		return nil, false
	}
	f := Fragment{
		Name:   fmt.Sprintf("@part%d", len(s.frags)),
		Kind:   FragmentChain,
		Rel:    m.rel.Name,
		Steps:  m.steps,
		Schema: m.sch,
		Order:  m.order,
	}
	if m.srt != nil {
		f.Kind = FragmentSorted
		f.Steps = append(f.Steps, exec.FragmentStep{Op: exec.FragSort, Keys: m.srt.Spec})
		f.Order = m.srt.Spec
		f.Keys = m.srt.Spec
	}
	s.frags = append(s.frags, f)
	placeholder := algebra.NewRel(f.Name, f.Schema, algebra.BaseInfo{Order: f.Order})
	if m.srt != nil {
		// Keep the sort in the remainder: a stable re-sort of the merged
		// (already sorted) placeholder is the identity, and the DBMS's
		// sort-topped no-permute gating stays exactly as single-node.
		return algebra.NewSort(m.srt.Spec, placeholder), true
	}
	return placeholder, true
}

// tryGrouped extracts a grouped fragment: one group operation directly
// above TS(sort((σ|π)*(Rel))), pushed only when the partitioning colocates
// the groups and the pushed sort lines them up contiguously.
func (s *splitter) tryGrouped(n algebra.Node) (algebra.Node, bool) {
	if s.policy.Colocated == nil {
		return nil, false
	}
	var groupStep exec.FragmentStep
	switch n.Op() {
	case algebra.OpCoal:
		groupStep = exec.FragmentStep{Op: exec.FragCoalT}
	case algebra.OpTRdup:
		groupStep = exec.FragmentStep{Op: exec.FragRdupT}
	case algebra.OpAggregate:
		agg := n.(*algebra.Aggregate)
		if len(agg.GroupBy) == 0 {
			return nil, false
		}
		groupStep = exec.FragmentStep{Op: exec.FragAggr, GroupBy: agg.GroupBy, Aggs: agg.Aggs}
	default:
		return nil, false
	}
	ts := n.Children()[0]
	if ts.Op() != algebra.OpTransferS {
		return nil, false
	}
	m, ok := matchChain(ts.Children()[0])
	if !ok || m.srt == nil {
		return nil, false
	}
	// The grouping attributes, in the chain's output schema: the value
	// attributes for the temporal group operations, the GROUP BY list for
	// the aggregate (time attributes excluded — the conventional aggregate
	// renames them).
	sch := m.sch
	var gidx []int
	if groupStep.Op == exec.FragAggr {
		t1, t2 := sch.TimeIndices()
		for _, a := range groupStep.GroupBy {
			j := sch.Index(a)
			if j < 0 || j == t1 || j == t2 {
				return nil, false
			}
			gidx = append(gidx, j)
		}
	} else {
		gidx = physical.ValueIdx(sch)
	}
	// Colocation is a property of the base relation's storage, so map each
	// grouping attribute back through the chain's projections to its base
	// attribute; a computed column has none, which forbids the push.
	attrs := make([]string, len(gidx))
	for i, j := range gidx {
		src, ok := m.base[sch.At(j).Name]
		if !ok {
			return nil, false
		}
		attrs[i] = src
	}
	prefix, ok := physical.CoveringPrefix(m.srt.Spec, sch, gidx)
	if !ok || !s.policy.Colocated(m.rel.Name, attrs) {
		return nil, false
	}
	f := Fragment{
		Name:   fmt.Sprintf("@part%d", len(s.frags)),
		Kind:   FragmentGrouped,
		Rel:    m.rel.Name,
		Steps:  append(append(m.steps, exec.FragmentStep{Op: exec.FragSort, Keys: m.srt.Spec}), groupStep),
		Order:  prefix,
		Prefix: prefix,
	}
	outSch, err := n.Schema()
	if err != nil {
		s.fail(err)
		return nil, false
	}
	f.Schema = outSch
	s.frags = append(s.frags, f)
	placeholder := algebra.NewRel(f.Name, f.Schema, algebra.BaseInfo{Order: prefix})
	// TS(sort_prefix(placeholder)): site-valid, permute-gated, identity.
	return algebra.NewTransferS(algebra.NewSort(prefix, placeholder)), true
}
