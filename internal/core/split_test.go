package core_test

import (
	"fmt"
	"strings"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/datagen"
	"tqp/internal/exec"
	"tqp/internal/relation"
	"tqp/internal/shard"
	"tqp/internal/stratum"
)

// splitQueries exercises every fragment shape the splitter knows: bare
// scans, filtered chains, pushed sorts, and group operations above a
// sort-topped transfer.
var splitQueries = []string{
	"SELECT EmpName, Dept FROM EMPLOYEE",
	"VALIDTIME SELECT EmpName FROM EMPLOYEE WHERE Dept = 'Ship'",
	paperSQL,
	"VALIDTIME SELECT Dept, COUNT(*) AS headcount FROM EMPLOYEE GROUP BY Dept",
	"VALIDTIME SELECT DISTINCT 1.EmpName FROM EMPLOYEE, PROJECT WHERE 1.EmpName = 2.EmpName",
	"VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE ORDER BY EmpName ASC",
}

// TestSplitCoversEveryScan pins the splitter's core contract: every base
// relation access moves into a fragment, so the remainder only reads
// placeholders.
func TestSplitCoversEveryScan(t *testing.T) {
	cat := catalog.Paper()
	o := core.New(cat)
	total := 0
	for _, sql := range splitQueries {
		prep, err := o.Prepare(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		split, err := core.SplitForShards(prep.Plan, core.SplitPolicy{})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(split.Fragments) == 0 {
			t.Fatalf("%s: no fragments extracted", sql)
		}
		total += len(split.Fragments)
		names := make(map[string]bool)
		for _, f := range split.Fragments {
			if !strings.HasPrefix(f.Name, "@part") {
				t.Fatalf("%s: fragment name %q", sql, f.Name)
			}
			if names[f.Name] {
				t.Fatalf("%s: duplicate fragment name %q", sql, f.Name)
			}
			names[f.Name] = true
			if _, err := cat.Resolve(f.Rel); err != nil {
				t.Fatalf("%s: fragment scans unknown relation %q", sql, f.Rel)
			}
			if f.Schema == nil {
				t.Fatalf("%s: fragment %s has no schema", sql, f.Name)
			}
		}
		algebra.Walk(split.Remainder, func(n algebra.Node, _ algebra.Path) bool {
			if n.Op() == algebra.OpRel {
				rel := n.(*algebra.Rel)
				if !names[rel.Name] {
					t.Fatalf("%s: remainder still reads base relation %q", sql, rel.Name)
				}
			}
			return true
		})
	}
	if total < len(splitQueries) {
		t.Fatalf("vacuous: %d fragments across %d queries", total, len(splitQueries))
	}
}

// TestSplitGroupPush pins the grouped-fragment path: with a colocating
// partitioning, at least one of the suite's group operations pushes down;
// with colocation denied, none do.
func TestSplitGroupPush(t *testing.T) {
	o := core.New(catalog.Paper())
	count := func(colocated func(string, []string) bool) map[core.FragmentKind]int {
		kinds := make(map[core.FragmentKind]int)
		for _, sql := range splitQueries {
			prep, err := o.Prepare(sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			split, err := core.SplitForShards(prep.Plan, core.SplitPolicy{Colocated: colocated})
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			for _, f := range split.Fragments {
				kinds[f.Kind]++
			}
		}
		return kinds
	}
	always := count(func(string, []string) bool { return true })
	if always[core.FragmentGrouped] == 0 {
		t.Fatalf("no grouped fragment pushed with universal colocation: %v", always)
	}
	never := count(nil)
	if never[core.FragmentGrouped] != 0 {
		t.Fatalf("grouped fragments pushed without colocation: %v", never)
	}
}

// TestSplitDifferential is the in-process reference-vs-sharded leg: for
// every query, shard count and partitioning mode, running the fragments
// over the shard slices, merging, and executing the remainder over the
// merged placeholders must reproduce the single-node result bit for bit.
// The wire-protocol version of the same differential lives in
// internal/coord; this one isolates the split/merge algebra.
func TestSplitDifferential(t *testing.T) {
	paper := catalog.Paper()
	synthDB := datagen.EmployeeDB(datagen.EmployeeSpec{
		Employees: 30, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
	})
	for _, tc := range []struct {
		name string
		cat  *catalog.Catalog
	}{{"paper", paper}, {"synth", synthDB}} {
		spec := exec.Spec()
		o := core.New(tc.cat, core.WithEngine(spec), core.WithDBMSSeed(1))
		for _, sql := range splitQueries {
			prep, err := o.Prepare(sql)
			if err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
			want, _, err := o.ExecutePlan(prep.Plan, spec)
			if err != nil {
				t.Fatalf("%s: single-node: %v", sql, err)
			}
			for _, mode := range []shard.Mode{shard.Auto, shard.ForceHash, shard.ForceRange} {
				for _, n := range []int{1, 2, 4} {
					t.Run(fmt.Sprintf("%s/%v/%d/%s", tc.name, mode, n, sql[:24]), func(t *testing.T) {
						got := shardedRun(t, tc.cat, prep.Plan, mode, n)
						if !want.EqualAsList(got) {
							t.Fatalf("sharded result diverges from single node\nwant:\n%s\ngot:\n%s", want, got)
						}
					})
				}
			}
		}
	}
}

// shardedRun executes plan the way the coordinator does, but in process:
// partition the catalog, run each fragment on every slice, merge, and
// finish the remainder over the merged placeholders.
func shardedRun(t *testing.T, cat *catalog.Catalog, plan algebra.Node, mode shard.Mode, n int) *relation.Relation {
	t.Helper()
	m, err := shard.NewMapMode(cat, n, mode)
	if err != nil {
		t.Fatal(err)
	}
	split, err := core.SplitForShards(plan, core.SplitPolicy{Colocated: m.Colocated})
	if err != nil {
		t.Fatal(err)
	}
	type slice struct {
		sub *catalog.Catalog
		pos map[string][]int
	}
	slices := make([]slice, n)
	for i := 0; i < n; i++ {
		sub, pos, err := m.Partition(i)
		if err != nil {
			t.Fatal(err)
		}
		slices[i] = slice{sub, pos}
	}
	synth := catalog.New()
	for _, f := range split.Fragments {
		var merged []relation.Tuple
		if f.Kind == core.FragmentGrouped {
			parts := make([][]relation.Tuple, n)
			for i, s := range slices {
				base, err := s.sub.Resolve(f.Rel)
				if err != nil {
					t.Fatal(err)
				}
				rel, seqs, err := exec.RunFragment(base, s.pos[f.Rel], f.Steps)
				if err != nil {
					t.Fatal(err)
				}
				if seqs != nil {
					t.Fatalf("grouped fragment %s returned sequence keys", f.Name)
				}
				parts[i] = rel.Tuples()
			}
			merged = exec.MergeGroups(f.Schema, f.Prefix, parts)
		} else {
			parts := make([]exec.TaggedRows, n)
			for i, s := range slices {
				base, err := s.sub.Resolve(f.Rel)
				if err != nil {
					t.Fatal(err)
				}
				rel, seqs, err := exec.RunFragment(base, s.pos[f.Rel], f.Steps)
				if err != nil {
					t.Fatal(err)
				}
				if seqs == nil {
					t.Fatalf("fragment %s returned no sequence keys", f.Name)
				}
				parts[i] = exec.TaggedRows{Rows: rel.Tuples(), Seqs: seqs}
			}
			if f.Kind == core.FragmentChain {
				merged = exec.MergeBySeq(parts)
			} else {
				merged = exec.MergeSorted(f.Schema, f.Keys, parts)
			}
		}
		if err := synth.AddTrusted(f.Name, relation.FromTuplesTrusted(f.Schema, merged), algebra.BaseInfo{Order: f.Order}); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := stratum.NewWithEngine(synth, 1, exec.Spec()).Execute(split.Remainder)
	if err != nil {
		t.Fatal(err)
	}
	return got
}
