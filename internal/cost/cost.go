// Package cost implements the cost model the paper defers to future work
// ("integrating the provided transformation rules with heuristics and cost
// estimation techniques"): cardinality estimation grounded in Table 1's
// cardinality column plus catalog statistics, per-operation cost functions,
// and the stratum/DBMS asymmetry of the layered architecture — the DBMS
// executes conventional operations faster and "sorts faster than the
// stratum" (Section 2.1), while complex temporal operations are "often not
// processed efficiently in conventional DBMSs"; transfers pay a per-tuple
// price.
package cost

import (
	"fmt"
	"math"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/physical"
	"tqp/internal/props"
	"tqp/internal/relation"
)

// Params weight the cost model.
type Params struct {
	// StratumTuple is the per-tuple processing cost in the stratum.
	StratumTuple float64
	// DBMSTuple is the per-tuple processing cost of conventional
	// operations in the DBMS (a mature executor: cheaper).
	DBMSTuple float64
	// DBMSSortFactor scales sorting inside the DBMS relative to a stratum
	// sort ("the DBMS sorts faster than the stratum").
	DBMSSortFactor float64
	// DBMSTemporalPenalty multiplies temporal operations executed in the
	// DBMS, which must be expressed as complex self-join SQL.
	DBMSTemporalPenalty float64
	// TransferTuple is the per-tuple cost of a TS/TD transfer.
	TransferTuple float64
	// DefaultSelectivity estimates σ when nothing better is known.
	DefaultSelectivity float64
	// HashTuple is the per-tuple cost of a hash-table build or probe in the
	// exec engine's hash operators (hash join, hash rdup, value-group
	// partitioning). It is charged on top of StratumTuple for the tuples a
	// streaming operator hashes.
	HashTuple float64
	// MergeTuple is the per-tuple cost of the adjacent-comparison merge
	// pass that replaces hashing when a streaming operator's inputs already
	// deliver the order its groups or keys need (merge join, merge
	// diff/union, sorted dedup, group-at-a-time temporal operators). It is
	// cheaper than HashTuple: a comparison against the previous tuple
	// instead of a hash-table build and probe.
	MergeTuple float64
	// SortVerifyFactor prices an elided sort — one whose input already
	// delivers an order the requested spec is a prefix of — as a fraction
	// of a linear pass instead of N·log N work. The stratum meter uses the
	// same factor, so recalibration keeps model and trace consistent.
	SortVerifyFactor float64
	// MergeUnitsFactor scales the stratum meter's simulated units for a
	// streaming operator compiled as its merge variant, relative to the
	// hash variant's linear shape (the estimate-side counterpart is
	// MergeTuple replacing HashTuple).
	MergeUnitsFactor float64
	// Streaming declares that the stratum runs the exec engine: products
	// and joins cost build+probe+output instead of pairwise work, and the
	// temporal grouping operators drop their scan factors (see OpUnits).
	Streaming bool
	// OrderBlind disables delivered-order reasoning: every operator is
	// priced as if its inputs were unordered, exactly the PR 1 model. Used
	// for ablation (E12) and the tqplan order-aware/order-blind comparison.
	OrderBlind bool
	// Parallelism is the worker count of the morsel-parallel exec engine
	// (exec.ParallelSpec); 0 or 1 prices sequential execution. With W > 1
	// every partitionable operator's own work divides by W while each input
	// tuple pays ExchangeTuple and each output tuple GatherTuple — the
	// Amdahl shape of partition + work + deterministic merge.
	Parallelism int
	// ExchangeTuple is the per-tuple cost of routing a tuple through a
	// parallel exchange (a partition hash or segment lookup plus a copy
	// into the partition stream).
	ExchangeTuple float64
	// GatherTuple is the per-tuple cost of the deterministic ordered gather
	// (one k-way merge step by sequence key and partition index).
	GatherTuple float64
	// MemoryBudget is the exec engine's working-set bound in bytes; 0 means
	// unlimited. When an operator's estimated materialized state exceeds
	// the per-worker budget share, the model adds the grace-hash spill
	// shape: every input tuple pays one SpillWrite and one SpillRead. This
	// is what lets the beam trade an explicit sort (whose streaming variant
	// never materializes) against a spilling hash operator.
	MemoryBudget int64
	// SpillWrite is the per-tuple cost of encoding and writing one tuple to
	// a spill partition.
	SpillWrite float64
	// SpillRead is the per-tuple cost of reading and decoding one spilled
	// tuple back.
	SpillRead float64
	// TupleBytes estimates the resident bytes of one tuple, converting
	// cardinality estimates into working-set bytes for the spill decision.
	TupleBytes float64
	// Vectorized declares that the engine runs the columnar batch pipeline
	// (eval.EngineSpec.Vectorized): exchanges route row positions over
	// shared column planes instead of copying tuples, and budgeted
	// operators encode spill blocks straight off the planes. The per-tuple
	// exchange/gather and spill prices scale by the factors below.
	Vectorized bool
	// VecExchangeFactor scales ExchangeTuple and GatherTuple for a
	// vectorized engine: the scatter is a hash over column planes plus one
	// appended row index, and the gather merges ascending selection
	// vectors — no tuple copy on either side.
	VecExchangeFactor float64
	// VecSpillFactor scales SpillWrite and SpillRead for a vectorized
	// engine: the block codec reads cells off the planes on the way out and
	// decodes block-at-a-time into batches on the way back, skipping the
	// per-tuple materialization of the boxed path.
	VecSpillFactor float64
	// Shards prices coordinated scale-out execution: with N > 1 shards the
	// DBMS-site work of a plan — the pushed-down scan/filter/sort chains —
	// runs on all shards concurrently, so each DBMS operation's own cost
	// divides by N, while every tuple crossing a transfer additionally
	// pays ShipTuple for the wire hop and the coordinator's deterministic
	// merge step. 0 or 1 prices single-node execution.
	Shards int
	// ShipTuple is the per-tuple cost of shipping one shard-result row to
	// the coordinator and routing it through the k-way gather merge.
	ShipTuple float64
	// SegmentRead is the per-segment cost of a disk-backed base scan: one
	// store segment's worth of block reads, CRC checks and decoding. A
	// time-travel scan pays it only for segments surviving the period
	// index's fence pruning, which is what makes an indexed scan of a
	// narrow period cheaper than a full scan of the same relation.
	// In-memory relations have no segments and price scans at zero, as
	// before.
	SegmentRead float64
}

// DefaultParams returns the calibration used by the experiments, matching
// the reference evaluator's operator shapes in the stratum.
func DefaultParams() Params {
	return Params{
		StratumTuple:        1.0,
		DBMSTuple:           0.4,
		DBMSSortFactor:      0.25,
		DBMSTemporalPenalty: 20.0,
		TransferTuple:       2.0,
		DefaultSelectivity:  1.0 / 3,
		HashTuple:           0.5,
		MergeTuple:          0.1,
		SortVerifyFactor:    0.25,
		MergeUnitsFactor:    0.5,
		ExchangeTuple:       0.2,
		GatherTuple:         0.05,
		SpillWrite:          0.8,
		SpillRead:           0.6,
		TupleBytes:          192,
		VecExchangeFactor:   0.4,
		VecSpillFactor:      0.6,
		ShipTuple:           0.5,
		SegmentRead:         32.0,
	}
}

// partitionedOp reports that the exec engine fans op out through a parallel
// exchange when Options.Parallelism > 1 (see exec/parallel.go); streaming
// tuple-at-a-time operators (σ, π, ⊔) and transfers stay sequential.
func partitionedOp(op algebra.Op) bool {
	switch op {
	case algebra.OpSort, algebra.OpProduct, algebra.OpTProduct, algebra.OpJoin, algebra.OpTJoin,
		algebra.OpRdup, algebra.OpDiff, algebra.OpUnion, algebra.OpAggregate,
		algebra.OpTRdup, algebra.OpCoal, algebra.OpTDiff, algebra.OpTUnion, algebra.OpTAggregate:
		return true
	}
	return false
}

// vecBatchOp reports the operators the columnar engine carries as batch
// pipelines through its parallel exchanges and grace spills: the hash
// family — dedup, the diff/union budgets, and the keyed joins. The sort,
// the temporal group family and the keyless products run tuple-at-a-time
// on those paths, so they keep the boxed exchange and spill prices; the
// discount must not make the optimizer prefer shapes the engine cannot
// actually vectorize.
func vecBatchOp(op algebra.Op) bool {
	switch op {
	case algebra.OpRdup, algebra.OpDiff, algebra.OpUnion, algebra.OpJoin, algebra.OpTJoin:
		return true
	}
	return false
}

// parallelShape reprices one partitioned operator's own cost for a W-way
// parallel engine: the per-partition work is the sequential work divided
// across the workers, every input tuple pays the exchange routing, and
// every output tuple one gather-merge step.
// A vectorized engine's exchange scatters batch views (a hash plus a row
// index per tuple, no copy), so the routing and gather prices of the
// batch-compiled operators scale by VecExchangeFactor.
func (p Params) parallelShape(op algebra.Op, own, inRows, outRows float64) float64 {
	if p.Parallelism <= 1 {
		return own
	}
	ex, ga := p.ExchangeTuple, p.GatherTuple
	if p.Vectorized && vecBatchOp(op) {
		ex *= p.VecExchangeFactor
		ga *= p.VecExchangeFactor
	}
	return own/float64(p.Parallelism) + inRows*ex + outRows*ga
}

// memShare is the per-worker budget share the engine compares operator
// state against (exec's opShare, estimate-side).
func (p Params) memShare() float64 {
	w := p.Parallelism
	if w < 1 {
		w = 1
	}
	return float64(p.MemoryBudget) / float64(w)
}

// spillShape adds the grace-hash spill charge when an operator's estimated
// materialized state — inRows tuples at TupleBytes each — exceeds the
// per-worker budget share: one spill write and one read per input tuple
// (recursive re-partitioning passes are rare and left unpriced).
// A vectorized engine encodes spill blocks straight off the column planes
// and re-reads them block-at-a-time into batches, so the per-tuple spill
// prices of the batch-compiled operators scale by VecSpillFactor.
func (p Params) spillShape(op algebra.Op, own, inRows float64) float64 {
	if p.MemoryBudget <= 0 || inRows*p.TupleBytes <= p.memShare() {
		return own
	}
	wr, rd := p.SpillWrite, p.SpillRead
	if p.Vectorized && vecBatchOp(op) {
		wr *= p.VecSpillFactor
		rd *= p.VecSpillFactor
	}
	return own + inRows*(wr+rd)
}

// spillExempt reports the compilations whose budgeted state is bounded
// without partitioning, so no spill charge applies however large the
// input: the streaming group-at-a-time merge family, which the budgeted
// engine prefers whenever the delivered order proves groups contiguous.
// The two-sided merge variants (diff/union/join) still materialize a side,
// so the budgeted engine graces them and they stay priced.
func spillExempt(op algebra.Op, ordered bool) bool {
	if !ordered {
		return false
	}
	switch op {
	case algebra.OpRdup, algebra.OpAggregate, algebra.OpTRdup, algebra.OpCoal, algebra.OpTAggregate:
		return true
	}
	return false
}

// ParamsFor returns the calibration for a stratum engine: the default
// reference shapes, or the streaming shapes of the exec engine.
func ParamsFor(streaming bool) Params {
	p := DefaultParams()
	p.Streaming = streaming
	return p
}

// OpUnits assigns simulated work units to one operation over the given
// input cardinality; the stratum executor meters actual executions with it.
// streaming selects the exec engine's hash/one-pass shapes — linear
// products, joins and temporal grouping operators — over the reference
// evaluator's pairwise and scan-heavy ones.
func OpUnits(op algebra.Op, rows int, tupleCost, penalty float64, streaming bool) float64 {
	return DefaultParams().OpUnitsOrdered(op, rows, tupleCost, penalty, streaming, false)
}

// OpUnitsOrdered is OpUnits with delivered-order awareness: ordered reports
// that the streaming engine compiled the order-exploiting variant at this
// node (an elided sort, a merge join, or a contiguous-group merge pass), so
// the metered work drops accordingly — an elided sort is a verify pass
// (SortVerifyFactor), a merge pass scales the hash variant's per-tuple work
// by MergeUnitsFactor. The factors come from the calibration so model and
// meter recalibrate together. The reference evaluator (streaming=false) has
// no such variants, so ordered is ignored. With Parallelism > 1 the
// partitioned operators additionally take the parallel shape (per-partition
// work plus exchange and gather, with the input cardinality standing in for
// the output's, which the meter does not know).
func (p Params) OpUnitsOrdered(op algebra.Op, rows int, tupleCost, penalty float64, streaming, ordered bool) float64 {
	units := p.opUnitsSequential(op, rows, tupleCost, penalty, streaming, ordered)
	// An ordered sort is an elided sort — a compiled-away no-op with no
	// exchange to meter and no state to spill. Ordered grouping operators
	// keep both shapes: they still fan out (range exchange) and, budgeted,
	// their materializing variants still partition to disk.
	if streaming && partitionedOp(op) && !(op == algebra.OpSort && ordered) {
		units = p.parallelShape(op, units, float64(rows), float64(rows))
		if !spillExempt(op, ordered) {
			units = p.spillShape(op, units, float64(rows))
		}
	}
	return units
}

// OpUnitsForNode is OpUnitsOrdered with the node in hand — the stratum
// meter's entry point. The node exposes the one exchange guard the
// operator kind alone cannot: a GROUP-BY-less aggregate is one global
// group the engine leaves on its sequential path, so no parallel shape
// applies (mirroring the estimator's parallelApplies).
func (p Params) OpUnitsForNode(n algebra.Node, rows int, tupleCost, penalty float64, streaming, ordered bool) float64 {
	if agg, ok := n.(*algebra.Aggregate); ok && len(agg.GroupBy) == 0 {
		return p.opUnitsSequential(n.Op(), rows, tupleCost, penalty, streaming, ordered)
	}
	return p.OpUnitsOrdered(n.Op(), rows, tupleCost, penalty, streaming, ordered)
}

func (p Params) opUnitsSequential(op algebra.Op, rows int, tupleCost, penalty float64, streaming, ordered bool) float64 {
	r := float64(rows)
	logR := 1.0
	if r >= 2 {
		logR = math.Log2(r)
	}
	ordered = ordered && streaming
	switch op {
	case algebra.OpSort:
		if ordered {
			return r * tupleCost * penalty * p.SortVerifyFactor
		}
		return r * logR * tupleCost * penalty
	case algebra.OpProduct, algebra.OpTProduct, algebra.OpJoin, algebra.OpTJoin:
		if streaming {
			units := r * tupleCost * penalty
			if ordered {
				units *= p.MergeUnitsFactor
			}
			return units
		}
		return r * r * tupleCost * penalty / 4
	case algebra.OpTDiff, algebra.OpTRdup, algebra.OpTAggregate, algebra.OpTUnion, algebra.OpCoal:
		if streaming {
			units := r * tupleCost * penalty
			if ordered {
				units *= p.MergeUnitsFactor
			}
			return units
		}
		return r * logR * tupleCost * penalty * 2
	case algebra.OpTransferS, algebra.OpTransferD:
		return 0
	default:
		if ordered {
			return r * tupleCost * penalty * p.MergeUnitsFactor
		}
		return r * tupleCost * penalty
	}
}

// Estimate is the per-node outcome: estimated result rows and the
// cumulative cost of producing them.
type Estimate struct {
	Rows float64
	Cost float64
}

// Estimates maps plan nodes to their estimates.
type Estimates map[algebra.Node]Estimate

// Model estimates plans against a catalog's statistics.
type Model struct {
	params Params
	cat    *catalog.Catalog
}

// New returns a model over the catalog with the given parameters.
func New(cat *catalog.Catalog, params Params) *Model {
	return &Model{params: params, cat: cat}
}

// Plan estimates every node of the plan; the root's Estimate carries the
// total plan cost.
func (m *Model) Plan(plan algebra.Node) (Estimates, error) {
	st, err := props.InferStates(plan)
	if err != nil {
		return nil, err
	}
	es := make(Estimates)
	if _, err := m.node(plan, st, es); err != nil {
		return nil, err
	}
	return es, nil
}

// Cost returns the total estimated cost of the plan.
func (m *Model) Cost(plan algebra.Node) (float64, error) {
	es, err := m.Plan(plan)
	if err != nil {
		return 0, err
	}
	return es[plan].Cost, nil
}

// Best returns the cheapest plan of the given set and its cost.
func (m *Model) Best(plans []algebra.Node) (algebra.Node, float64, error) {
	if len(plans) == 0 {
		return nil, 0, fmt.Errorf("cost: no plans")
	}
	var best algebra.Node
	bestCost := math.Inf(1)
	for _, p := range plans {
		c, err := m.Cost(p)
		if err != nil {
			return nil, 0, err
		}
		if c < bestCost {
			best, bestCost = p, c
		}
	}
	return best, bestCost, nil
}

func (m *Model) node(n algebra.Node, st props.States, es Estimates) (Estimate, error) {
	if e, ok := es[n]; ok {
		return e, nil
	}
	ch := n.Children()
	ce := make([]Estimate, len(ch))
	orders := make([]relation.OrderSpec, len(ch))
	for i, c := range ch {
		e, err := m.node(c, st, es)
		if err != nil {
			return Estimate{}, err
		}
		ce[i] = e
		orders[i] = st[c].Order
	}
	site := st[n].Site
	e := m.estimate(n, site, ce, orders)
	for _, c := range ce {
		e.Cost += c.Cost
	}
	es[n] = e
	return e, nil
}

// estimate derives one node's output cardinality (Table 1's cardinality
// column used as an estimator) and its own processing cost. With the
// streaming engine and OrderBlind unset the cost is order-conditional: the
// children's statically inferred orders (Table 1 propagation) are run
// through the same physical decision procedure the engine compiles with
// (package physical), and the merge/elided variants are priced with
// MergeTuple/SortVerifyFactor instead of HashTuple and N·log N. With
// Parallelism > 1 every partitioned operator then takes the parallel shape:
// per-partition work plus an exchange charge on the input rows and a gather
// charge on the output rows.
func (m *Model) estimate(n algebra.Node, site props.Site, ce []Estimate, orders []relation.OrderSpec) Estimate {
	est := m.estimateOne(n, site, ce, orders)
	p := m.params
	// Scale-out: DBMS-site operations run sharded (each shard works its
	// slice concurrently), transfers additionally pay the wire hop and the
	// coordinator's gather merge per shipped tuple.
	if p.Shards > 1 {
		switch {
		case n.Op() == algebra.OpTransferS || n.Op() == algebra.OpTransferD:
			est.Cost += ce[0].Rows * p.ShipTuple
		case site == props.DBMS:
			est.Cost /= float64(p.Shards)
		}
	}
	// The sequential unbudgeted configuration — the common case, paid per
	// candidate plan by the beam search — takes neither shape; skip the
	// decision work outright.
	if (p.Parallelism > 1 || p.MemoryBudget > 0) && p.Streaming && site != props.DBMS &&
		partitionedOp(n.Op()) && m.parallelApplies(n, orders) {
		in := 0.0
		for _, c := range ce {
			in += c.Rows
		}
		if p.Parallelism > 1 {
			est.Cost = p.parallelShape(n.Op(), est.Cost, in, est.Rows)
		}
		if p.MemoryBudget > 0 {
			ordered := false
			if !p.OrderBlind {
				ordered = physical.Decide(n, orders).Ordered()
			}
			if !spillExempt(n.Op(), ordered) {
				est.Cost = p.spillShape(n.Op(), est.Cost, in)
			}
		}
	}
	return est
}

// parallelApplies mirrors the engine's per-node exchange guards beyond the
// operator kind: an elided sort compiles to nothing (no exchange to price),
// and a GROUP-BY-less aggregate is one global group the engine leaves on
// its sequential path.
func (m *Model) parallelApplies(n algebra.Node, orders []relation.OrderSpec) bool {
	switch node := n.(type) {
	case *algebra.Sort:
		if !m.params.OrderBlind && physical.Decide(n, orders).SortElided {
			return false
		}
	case *algebra.Aggregate:
		return len(node.GroupBy) > 0
	}
	return true
}

func (m *Model) estimateOne(n algebra.Node, site props.Site, ce []Estimate, orders []relation.OrderSpec) Estimate {
	p := m.params
	tuple := p.StratumTuple
	if site == props.DBMS {
		tuple = p.DBMSTuple
	}
	temporalPenalty := 1.0
	if site == props.DBMS && n.Op().Temporal() {
		temporalPenalty = p.DBMSTemporalPenalty
	}
	// The exec engine's hash and merge operators only run in the stratum;
	// DBMS subplans are always priced with the conventional shapes.
	streaming := p.Streaming && site != props.DBMS
	var dec physical.Decision
	if streaming && !p.OrderBlind {
		dec = physical.Decide(n, orders)
	}
	// groupTuple is the per-tuple partitioning cost of a streaming grouping
	// operator: a hash build/probe, or the cheaper adjacent comparison when
	// the input's delivered order keeps the operator's groups contiguous.
	groupTuple := p.HashTuple
	if dec.Merge {
		groupTuple = p.MergeTuple
	}
	logN := func(x float64) float64 {
		if x < 2 {
			return 1
		}
		return math.Log2(x)
	}

	switch n.Op() {
	case algebra.OpRel:
		rows, cst := 32.0, 0.0
		if rel, ok := n.(*algebra.Rel); ok {
			// The catalog's scan estimate understands travel-suffixed names
			// (BASE@asof:t) and counts only the disk segments surviving the
			// period index's fence pruning; in-memory relations report zero
			// segments and keep the historical free scan.
			if est, ok := m.cat.ScanEstimate(rel.Name); ok {
				rows = est.Rows
				cst = float64(est.Segments) * p.SegmentRead
			}
		}
		return Estimate{Rows: rows, Cost: cst}
	case algebra.OpSelect:
		in := ce[0].Rows
		return Estimate{Rows: in * p.DefaultSelectivity, Cost: in * tuple}
	case algebra.OpProject:
		in := ce[0].Rows
		return Estimate{Rows: in, Cost: in * tuple}
	case algebra.OpSort:
		in := ce[0].Rows
		if streaming && dec.SortElided {
			// The engine compiles the sort away; charge a verify pass.
			return Estimate{Rows: in, Cost: in * tuple * p.SortVerifyFactor}
		}
		factor := 1.0
		if site == props.DBMS {
			factor = p.DBMSSortFactor
		}
		return Estimate{Rows: in, Cost: in * logN(in) * tuple * factor}
	case algebra.OpRdup:
		in := ce[0].Rows
		if streaming && dec.Merge {
			// Sorted input: dedup is an adjacent comparison per tuple.
			return Estimate{Rows: math.Max(1, in*0.6), Cost: in * (tuple*0.5 + p.MergeTuple)}
		}
		return Estimate{Rows: math.Max(1, in*0.6), Cost: in * tuple}
	case algebra.OpAggregate:
		in := ce[0].Rows
		if streaming && dec.Merge {
			return Estimate{Rows: math.Max(1, in*0.3), Cost: in * (tuple*0.5 + p.MergeTuple)}
		}
		return Estimate{Rows: math.Max(1, in*0.3), Cost: in * tuple}
	case algebra.OpUnionAll:
		return Estimate{Rows: ce[0].Rows + ce[1].Rows, Cost: (ce[0].Rows + ce[1].Rows) * tuple * 0.25}
	case algebra.OpUnion:
		// Between max(n1,n2) and n1+n2 (Table 1).
		rows := math.Max(ce[0].Rows, ce[1].Rows) + 0.5*math.Min(ce[0].Rows, ce[1].Rows)
		if streaming && dec.Merge {
			return Estimate{Rows: rows, Cost: (ce[0].Rows + ce[1].Rows) * (tuple*0.5 + p.MergeTuple)}
		}
		return Estimate{Rows: rows, Cost: (ce[0].Rows + ce[1].Rows) * tuple}
	case algebra.OpProduct, algebra.OpJoin:
		rows := ce[0].Rows * ce[1].Rows
		if n.Op() == algebra.OpJoin {
			rows *= p.DefaultSelectivity
		}
		if streaming && n.Op() == algebra.OpJoin {
			// Hash join: build + probe + emit, not pairwise work — or, with
			// key-covering input orders, a merge join at MergeTuple per input
			// tuple instead of the hash build/probe.
			return Estimate{Rows: rows, Cost: (ce[0].Rows+ce[1].Rows)*groupTuple + rows*tuple}
		}
		return Estimate{Rows: rows, Cost: ce[0].Rows * ce[1].Rows * tuple}
	case algebra.OpDiff:
		// Between n1−n2 and n1 (Table 1): take the midpoint.
		lo := math.Max(ce[0].Rows-ce[1].Rows, 0)
		rows := (lo + ce[0].Rows) / 2
		if streaming && dec.Merge {
			return Estimate{Rows: rows, Cost: (ce[0].Rows + ce[1].Rows) * (tuple*0.5 + p.MergeTuple)}
		}
		return Estimate{Rows: rows, Cost: (ce[0].Rows + ce[1].Rows) * tuple}
	case algebra.OpTProduct, algebra.OpTJoin:
		// Pairs that overlap in time: a fraction of the full product.
		overlap := 0.3
		rows := ce[0].Rows * ce[1].Rows * overlap
		if n.Op() == algebra.OpTJoin {
			rows *= p.DefaultSelectivity
		}
		if streaming && n.Op() == algebra.OpTJoin {
			return Estimate{Rows: rows, Cost: (ce[0].Rows+ce[1].Rows)*groupTuple + rows*tuple}
		}
		return Estimate{Rows: rows, Cost: ce[0].Rows * ce[1].Rows * tuple * temporalPenalty}
	case algebra.OpTDiff:
		// At most 2·n1 fragments (Table 1).
		n1, n2 := ce[0].Rows, ce[1].Rows
		work := (n1 + n2) * logN(n1+n2)
		if streaming {
			// Hash partition both sides, one pass per value group.
			work = (n1 + n2)
			return Estimate{Rows: math.Min(2*n1, n1*1.25), Cost: (n1+n2)*p.HashTuple + work*tuple}
		}
		return Estimate{Rows: math.Min(2*n1, n1*1.25), Cost: work * tuple * temporalPenalty}
	case algebra.OpTAggregate:
		in := ce[0].Rows
		// At most 2·n−1 constant intervals (Table 1).
		if streaming {
			return Estimate{Rows: math.Max(1, in*1.5), Cost: in*groupTuple + in*2*tuple}
		}
		return Estimate{Rows: math.Max(1, in*1.5), Cost: in * logN(in) * 2 * tuple * temporalPenalty}
	case algebra.OpTRdup:
		in := ce[0].Rows
		// At most 2·n−1 (Table 1); duplicates also disappear.
		if streaming {
			return Estimate{Rows: math.Max(1, in*0.8), Cost: in*groupTuple + in*tuple}
		}
		return Estimate{Rows: math.Max(1, in*0.8), Cost: in * logN(in) * 2 * tuple * temporalPenalty}
	case algebra.OpTUnion:
		n1, n2 := ce[0].Rows, ce[1].Rows
		// At least n1, at most n1+2·n2 (Table 1).
		if streaming {
			return Estimate{Rows: n1 + n2, Cost: (n1+n2)*p.HashTuple + (n1+n2)*tuple}
		}
		return Estimate{Rows: n1 + n2, Cost: (n1 + n2) * logN(n1+n2) * tuple * temporalPenalty}
	case algebra.OpCoal:
		in := ce[0].Rows
		if streaming {
			return Estimate{Rows: math.Max(1, in*0.7), Cost: in*groupTuple + in*tuple}
		}
		return Estimate{Rows: math.Max(1, in*0.7), Cost: in * logN(in) * tuple * temporalPenalty}
	case algebra.OpTransferS, algebra.OpTransferD:
		in := ce[0].Rows
		return Estimate{Rows: in, Cost: in * p.TransferTuple}
	default:
		return Estimate{Rows: ce[0].Rows, Cost: ce[0].Rows * tuple}
	}
}
