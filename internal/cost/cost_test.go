package cost_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/cost"
	"tqp/internal/datagen"
	"tqp/internal/relation"
)

func TestOptimizedPlanCheaper(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	initial, err := m.Cost(catalog.PaperInitialPlan(c))
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := m.Cost(catalog.PaperOptimizedPlan(c))
	if err != nil {
		t.Fatal(err)
	}
	if optimized >= initial {
		t.Errorf("optimized %.1f should beat initial %.1f", optimized, initial)
	}
}

func TestCardinalityUsesCatalog(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	// Leaf estimates come from the catalog stats: EMPLOYEE has 5 tuples,
	// and projection preserves cardinality.
	plan := catalog.PaperProjection(c.MustNode("EMPLOYEE"))
	es, err := m.Plan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := es[plan].Rows; got != 5 {
		t.Errorf("π(EMPLOYEE) estimated rows = %.1f, want 5", got)
	}
}

func TestSortSiteAsymmetry(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	spec := relation.OrderSpec{relation.Key("EmpName")}
	proj := func() algebra.Node { return catalog.PaperProjection(c.MustNode("EMPLOYEE")) }
	// sort inside the DBMS vs in the stratum: the paper's premise is that
	// "the DBMS sorts faster than the stratum".
	inDBMS := algebra.NewTransferS(algebra.NewSort(spec, proj()))
	inStratum := algebra.NewSort(spec, algebra.NewTransferS(proj()))
	cd, err := m.Cost(inDBMS)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.Cost(inStratum)
	if err != nil {
		t.Fatal(err)
	}
	if cd >= cs {
		t.Errorf("DBMS sort (%.2f) should be cheaper than stratum sort (%.2f)", cd, cs)
	}
}

func TestTemporalPenaltyInDBMS(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	proj := func() algebra.Node { return catalog.PaperProjection(c.MustNode("EMPLOYEE")) }
	inDBMS := algebra.NewTransferS(algebra.NewTRdup(proj()))
	inStratum := algebra.NewTRdup(algebra.NewTransferS(proj()))
	cd, err := m.Cost(inDBMS)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.Cost(inStratum)
	if err != nil {
		t.Fatal(err)
	}
	if cs >= cd {
		t.Errorf("temporal op in the stratum (%.2f) should be cheaper than in the DBMS (%.2f)", cs, cd)
	}
}

func TestBestSelection(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	plans := []algebra.Node{
		catalog.PaperInitialPlan(c),
		catalog.PaperIntermediatePlan(c),
		catalog.PaperOptimizedPlan(c),
	}
	best, bc, err := m.Best(plans)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Equal(plans[2]) {
		t.Errorf("expected the Figure 6(b) plan to win, got %s (%.1f)", algebra.Canonical(best), bc)
	}
	if _, _, err := m.Best(nil); err == nil {
		t.Error("Best over no plans must fail")
	}
}

func TestEstimatesScaleWithData(t *testing.T) {
	small := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 10, SpellsPerEmp: 2, AssignmentsPerEmp: 2, Seed: 1})
	large := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 100, SpellsPerEmp: 2, AssignmentsPerEmp: 2, Seed: 1})
	cs, err := cost.New(small, cost.DefaultParams()).Cost(catalog.PaperInitialPlan(small))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cost.New(large, cost.DefaultParams()).Cost(catalog.PaperInitialPlan(large))
	if err != nil {
		t.Fatal(err)
	}
	if cl <= cs {
		t.Errorf("cost should grow with the database: %.1f vs %.1f", cl, cs)
	}
}

// TestParallelShape pins the parallelism-aware calibration: a partitioned
// operator over a large input gets cheaper as workers are added (the
// per-partition work dominates the exchange/gather charges), while small
// inputs can price higher than sequential — the exchange overhead is real
// and the model must say so.
func TestParallelShape(t *testing.T) {
	c := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 400, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 1})
	// The optimized plan runs its temporal operators in the stratum, where
	// the exec engine partitions them; the initial plan is all-DBMS and
	// must ignore Parallelism entirely.
	plan := catalog.PaperOptimizedPlan(c)
	costAt := func(w int) float64 {
		p := cost.ParamsFor(true)
		p.Parallelism = w
		got, err := cost.New(c, p).Cost(plan)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	seq, par2, par8 := costAt(1), costAt(2), costAt(8)
	if !(par8 < par2 && par2 < seq) {
		t.Errorf("parallel costs must fall with workers on a large plan: w1=%.0f w2=%.0f w8=%.0f", seq, par2, par8)
	}
	// The exchange/gather floor: parallel cost cannot drop below the
	// per-tuple routing work, so an 8-way plan is more than seq/8.
	if par8 <= seq/8 {
		t.Errorf("8-way cost %.0f must stay above the exchange floor (seq/8 = %.0f)", par8, seq/8)
	}
}

// TestReferenceParamsIgnoreParallelism: the parallel shape is an exec-engine
// property; a non-streaming calibration must price identically regardless
// of the Parallelism field (the reference evaluator cannot partition).
func TestReferenceParamsIgnoreParallelism(t *testing.T) {
	c := catalog.Paper()
	plan := catalog.PaperInitialPlan(c)
	p := cost.DefaultParams()
	seq, err := cost.New(c, p).Cost(plan)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 8
	par, err := cost.New(c, p).Cost(plan)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("non-streaming params must ignore Parallelism: %.1f vs %.1f", seq, par)
	}
}
