package cost_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/cost"
	"tqp/internal/datagen"
	"tqp/internal/relation"
)

func TestOptimizedPlanCheaper(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	initial, err := m.Cost(catalog.PaperInitialPlan(c))
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := m.Cost(catalog.PaperOptimizedPlan(c))
	if err != nil {
		t.Fatal(err)
	}
	if optimized >= initial {
		t.Errorf("optimized %.1f should beat initial %.1f", optimized, initial)
	}
}

func TestCardinalityUsesCatalog(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	// Leaf estimates come from the catalog stats: EMPLOYEE has 5 tuples,
	// and projection preserves cardinality.
	plan := catalog.PaperProjection(c.MustNode("EMPLOYEE"))
	es, err := m.Plan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := es[plan].Rows; got != 5 {
		t.Errorf("π(EMPLOYEE) estimated rows = %.1f, want 5", got)
	}
}

func TestSortSiteAsymmetry(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	spec := relation.OrderSpec{relation.Key("EmpName")}
	proj := func() algebra.Node { return catalog.PaperProjection(c.MustNode("EMPLOYEE")) }
	// sort inside the DBMS vs in the stratum: the paper's premise is that
	// "the DBMS sorts faster than the stratum".
	inDBMS := algebra.NewTransferS(algebra.NewSort(spec, proj()))
	inStratum := algebra.NewSort(spec, algebra.NewTransferS(proj()))
	cd, err := m.Cost(inDBMS)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.Cost(inStratum)
	if err != nil {
		t.Fatal(err)
	}
	if cd >= cs {
		t.Errorf("DBMS sort (%.2f) should be cheaper than stratum sort (%.2f)", cd, cs)
	}
}

func TestTemporalPenaltyInDBMS(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	proj := func() algebra.Node { return catalog.PaperProjection(c.MustNode("EMPLOYEE")) }
	inDBMS := algebra.NewTransferS(algebra.NewTRdup(proj()))
	inStratum := algebra.NewTRdup(algebra.NewTransferS(proj()))
	cd, err := m.Cost(inDBMS)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := m.Cost(inStratum)
	if err != nil {
		t.Fatal(err)
	}
	if cs >= cd {
		t.Errorf("temporal op in the stratum (%.2f) should be cheaper than in the DBMS (%.2f)", cs, cd)
	}
}

func TestBestSelection(t *testing.T) {
	c := catalog.Paper()
	m := cost.New(c, cost.DefaultParams())
	plans := []algebra.Node{
		catalog.PaperInitialPlan(c),
		catalog.PaperIntermediatePlan(c),
		catalog.PaperOptimizedPlan(c),
	}
	best, bc, err := m.Best(plans)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Equal(plans[2]) {
		t.Errorf("expected the Figure 6(b) plan to win, got %s (%.1f)", algebra.Canonical(best), bc)
	}
	if _, _, err := m.Best(nil); err == nil {
		t.Error("Best over no plans must fail")
	}
}

func TestEstimatesScaleWithData(t *testing.T) {
	small := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 10, SpellsPerEmp: 2, AssignmentsPerEmp: 2, Seed: 1})
	large := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 100, SpellsPerEmp: 2, AssignmentsPerEmp: 2, Seed: 1})
	cs, err := cost.New(small, cost.DefaultParams()).Cost(catalog.PaperInitialPlan(small))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cost.New(large, cost.DefaultParams()).Cost(catalog.PaperInitialPlan(large))
	if err != nil {
		t.Fatal(err)
	}
	if cl <= cs {
		t.Errorf("cost should grow with the database: %.1f vs %.1f", cl, cs)
	}
}

// TestParallelShape pins the parallelism-aware calibration: a partitioned
// operator over a large input gets cheaper as workers are added (the
// per-partition work dominates the exchange/gather charges), while small
// inputs can price higher than sequential — the exchange overhead is real
// and the model must say so.
func TestParallelShape(t *testing.T) {
	c := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 400, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 1})
	// The optimized plan runs its temporal operators in the stratum, where
	// the exec engine partitions them; the initial plan is all-DBMS and
	// must ignore Parallelism entirely.
	plan := catalog.PaperOptimizedPlan(c)
	costAt := func(w int) float64 {
		p := cost.ParamsFor(true)
		p.Parallelism = w
		got, err := cost.New(c, p).Cost(plan)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	seq, par2, par8 := costAt(1), costAt(2), costAt(8)
	if !(par8 < par2 && par2 < seq) {
		t.Errorf("parallel costs must fall with workers on a large plan: w1=%.0f w2=%.0f w8=%.0f", seq, par2, par8)
	}
	// The exchange/gather floor: parallel cost cannot drop below the
	// per-tuple routing work, so an 8-way plan is more than seq/8.
	if par8 <= seq/8 {
		t.Errorf("8-way cost %.0f must stay above the exchange floor (seq/8 = %.0f)", par8, seq/8)
	}
}

// TestReferenceParamsIgnoreParallelism: the parallel shape is an exec-engine
// property; a non-streaming calibration must price identically regardless
// of the Parallelism field (the reference evaluator cannot partition).
func TestReferenceParamsIgnoreParallelism(t *testing.T) {
	c := catalog.Paper()
	plan := catalog.PaperInitialPlan(c)
	p := cost.DefaultParams()
	seq, err := cost.New(c, p).Cost(plan)
	if err != nil {
		t.Fatal(err)
	}
	p.Parallelism = 8
	par, err := cost.New(c, p).Cost(plan)
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("non-streaming params must ignore Parallelism: %.1f vs %.1f", seq, par)
	}
}

// TestVectorizedDiscount pins the columnar calibration: a parallel (and
// budgeted) plan whose operators the engine batch-compiles — the hash
// family — prices cheaper for a vectorized engine, while operators the
// engine runs tuple-at-a-time on those paths (the sort, the temporal
// group family) keep the boxed prices exactly. The discount is a factor,
// never an exemption, and never reaches shapes the engine cannot
// vectorize — a sort-family discount once steered the optimizer onto
// plans whose layered execution lost the DBMS's order determinism.
func TestVectorizedDiscount(t *testing.T) {
	c := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 400, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 1})
	costWith := func(plan algebra.Node, vec bool, par int, budget int64) float64 {
		p := cost.ParamsFor(true)
		p.Parallelism = par
		p.MemoryBudget = budget
		p.Vectorized = vec
		got, err := cost.New(c, p).Cost(plan)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	// The exchange discount shows on a partitioned hash-family operator:
	// dedup over the 1200-row EMPLOYEE scan, fanned out four ways.
	dedup := algebra.NewRdup(algebra.NewTransferS(catalog.PaperProjection(c.MustNode("EMPLOYEE"))))
	boxed, vec := costWith(dedup, false, 4, 0), costWith(dedup, true, 4, 0)
	if !(vec < boxed) {
		t.Errorf("vectorized exchange must price below the boxed one: vec=%.0f boxed=%.0f", vec, boxed)
	}
	// The spill discount shows on the same operator when its build state
	// outgrows a 64 KiB budget share.
	boxedSpill, vecSpill := costWith(dedup, false, 1, 64<<10), costWith(dedup, true, 1, 64<<10)
	if !(vecSpill < boxedSpill) {
		t.Errorf("vectorized spill must price below the boxed one: vec=%.0f boxed=%.0f", vecSpill, boxedSpill)
	}
	// The paper's optimized plan partitions only sorts and temporal group
	// operators — shapes the engine exchanges tuple-wise — so the flag must
	// not move its price; a blanket discount here once steered the server
	// onto a plan whose layered execution lost the DBMS's order guarantee.
	plan := catalog.PaperOptimizedPlan(c)
	if bp, vp := costWith(plan, false, 4, 0), costWith(plan, true, 4, 0); bp != vp {
		t.Errorf("temporal-family plan must ignore the vectorized flag: boxed=%.0f vec=%.0f", bp, vp)
	}
	// A stratum sort spills and exchanges tuple-wise — no batch variant on
	// either path — so the vectorized flag must not move its price at all.
	srt := algebra.NewSort(relation.OrderSpec{relation.Key("EmpName")},
		algebra.NewTransferS(catalog.PaperProjection(c.MustNode("EMPLOYEE"))))
	for _, cfg := range []struct {
		name   string
		par    int
		budget int64
	}{{"budgeted", 1, 64 << 10}, {"parallel", 4, 0}} {
		bs, vs := costWith(srt, false, cfg.par, cfg.budget), costWith(srt, true, cfg.par, cfg.budget)
		if bs != vs {
			t.Errorf("%s sort must ignore the vectorized flag: boxed=%.0f vec=%.0f", cfg.name, bs, vs)
		}
	}
	// The discount scales the charges; it must not erase them. A no-charge
	// bound: sequential unbudgeted cost divided by the worker count.
	seq := costWith(dedup, true, 1, 0)
	if vec <= seq/4 {
		t.Errorf("vectorized 4-way cost %.0f must stay above the exchange floor (seq/4 = %.0f)", vec, seq/4)
	}
}
