package cost_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/cost"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// TestTravelScanPricing pins the store-aware leaf pricing: a disk-backed
// scan costs segments × SegmentRead, fence pruning makes a narrow travel
// scan strictly cheaper than a full scan, and in-memory scans stay free —
// the historical model is unchanged where there is no disk.
func TestTravelScanPricing(t *testing.T) {
	c, err := catalog.OpenDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sch := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
	if err := c.AddDisk("R", relation.MustFromRows(sch, [][]any{{"a", 0, 5}}), algebra.BaseInfo{}); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows("R", [][]any{{"b", 100, 105}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendRows("R", [][]any{{"c", 200, 205}}); err != nil {
		t.Fatal(err)
	}

	p := cost.DefaultParams()
	m := cost.New(c, p)
	full, err := m.Cost(c.MustNode("R"))
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * p.SegmentRead; full != want {
		t.Fatalf("full disk scan costs %.1f, want %d segments × %.1f = %.1f", full, 3, p.SegmentRead, want)
	}

	narrowNode, err := c.TravelNode("R", &catalog.Travel{Kind: catalog.TravelAsOf, T: 104})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := m.Cost(narrowNode)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 * p.SegmentRead; narrow != want {
		t.Fatalf("pruned travel scan costs %.1f, want %.1f", narrow, want)
	}
	if narrow >= full {
		t.Fatalf("indexed travel scan (%.1f) not cheaper than full scan (%.1f)", narrow, full)
	}

	// Travel scans also shrink the row estimate feeding parent operators.
	fullNode := c.MustNode("R")
	es, err := m.Plan(narrowNode)
	if err != nil {
		t.Fatal(err)
	}
	esFull, err := m.Plan(fullNode)
	if err != nil {
		t.Fatal(err)
	}
	if es[narrowNode].Rows >= esFull[fullNode].Rows {
		t.Fatalf("travel row estimate %.2f not below full %.2f", es[narrowNode].Rows, esFull[fullNode].Rows)
	}

	// In-memory catalogs keep the historical free leaf.
	mem := catalog.Paper()
	mm := cost.New(mem, p)
	free, err := mm.Cost(mem.MustNode("EMPLOYEE"))
	if err != nil {
		t.Fatal(err)
	}
	if free != 0 {
		t.Fatalf("in-memory scan costs %.1f, want 0", free)
	}
}
