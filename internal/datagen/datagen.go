// Package datagen generates seeded synthetic relations for tests and
// benchmarks. The knobs are exactly the factors the paper's algebra is
// sensitive to: cardinality, duplicate ratio, snapshot-duplicate pressure
// (period overlap), adjacency (coalescability), and value skew.
package datagen

import (
	"fmt"
	"math/rand"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// TemporalSpec parameterizes a synthetic temporal relation over the schema
// (Name string, Grp int, T1, T2).
type TemporalSpec struct {
	// Rows is the tuple count.
	Rows int
	// Values is the number of distinct (Name, Grp) combinations to draw
	// from; smaller values create more value-equivalent tuples.
	Values int
	// TimeRange is the span of the time domain used.
	TimeRange int
	// MaxPeriod is the maximum period duration.
	MaxPeriod int
	// DupFrac is the probability that a tuple is an exact duplicate of an
	// earlier one.
	DupFrac float64
	// AdjFrac is the probability that a tuple's period is made adjacent to
	// the previous tuple of the same value combination (coalescable).
	AdjFrac float64
	// Seed drives the generator.
	Seed int64
}

// TemporalSchema returns the schema used by Temporal.
func TemporalSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
}

// Temporal generates a temporal relation per spec.
func Temporal(spec TemporalSpec) *relation.Relation {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Values <= 0 {
		spec.Values = 4
	}
	if spec.TimeRange <= 0 {
		spec.TimeRange = 40
	}
	if spec.MaxPeriod <= 0 {
		spec.MaxPeriod = 10
	}
	r := relation.New(TemporalSchema())
	lastOfValue := make(map[int]period.Period)
	for i := 0; i < spec.Rows; i++ {
		if r.Len() > 0 && rng.Float64() < spec.DupFrac {
			r.Append(r.At(rng.Intn(r.Len())).Clone())
			continue
		}
		v := rng.Intn(spec.Values)
		var p period.Period
		if prev, ok := lastOfValue[v]; ok && rng.Float64() < spec.AdjFrac {
			end := prev.End + period.Chronon(1+rng.Intn(spec.MaxPeriod))
			p = period.New(prev.End, end)
		} else {
			start := period.Chronon(rng.Intn(spec.TimeRange))
			p = period.New(start, start+period.Chronon(1+rng.Intn(spec.MaxPeriod)))
		}
		lastOfValue[v] = p
		r.Append(relation.NewTuple(
			value.String_(fmt.Sprintf("v%d", v%26)),
			value.Int(int64(v)),
			value.Time(p.Start),
			value.Time(p.End),
		))
	}
	return r
}

// SnapshotSpec parameterizes a synthetic snapshot relation over the schema
// (Name string, Grp int).
type SnapshotSpec struct {
	Rows    int
	Values  int
	DupFrac float64
	Seed    int64
}

// SnapshotSchema returns the schema used by Snapshot.
func SnapshotSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
	)
}

// Snapshot generates a conventional relation per spec.
func Snapshot(spec SnapshotSpec) *relation.Relation {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Values <= 0 {
		spec.Values = 4
	}
	r := relation.New(SnapshotSchema())
	for i := 0; i < spec.Rows; i++ {
		if r.Len() > 0 && rng.Float64() < spec.DupFrac {
			r.Append(r.At(rng.Intn(r.Len())).Clone())
			continue
		}
		v := rng.Intn(spec.Values)
		r.Append(relation.NewTuple(
			value.String_(fmt.Sprintf("v%d", v%26)),
			value.Int(int64(v)),
		))
	}
	return r
}

// EmployeeSpec parameterizes a scaled version of the paper's EMPLOYEE /
// PROJECT database for benchmarks.
type EmployeeSpec struct {
	// Employees is the number of distinct employee names.
	Employees int
	// Depts is the department domain size.
	Depts int
	// Projects is the project domain size.
	Projects int
	// SpellsPerEmp is the number of department spells per employee.
	SpellsPerEmp int
	// AssignmentsPerEmp is the number of project assignments per employee.
	AssignmentsPerEmp int
	// TimeRange spans the chronon domain.
	TimeRange int
	// Seed drives the generator.
	Seed int64
}

// EmployeeDB builds a catalog with EMPLOYEE and PROJECT relations shaped
// like Figure 1 but scaled per spec.
func EmployeeDB(spec EmployeeSpec) *catalog.Catalog {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.TimeRange <= 0 {
		spec.TimeRange = 100
	}
	if spec.Depts <= 0 {
		spec.Depts = 8
	}
	if spec.Projects <= 0 {
		spec.Projects = 16
	}
	emp := relation.New(catalog.EmployeeSchema())
	prj := relation.New(catalog.ProjectSchema())
	for e := 0; e < spec.Employees; e++ {
		name := fmt.Sprintf("emp%04d", e)
		for s := 0; s < spec.SpellsPerEmp; s++ {
			start := period.Chronon(rng.Intn(spec.TimeRange))
			length := period.Chronon(1 + rng.Intn(spec.TimeRange/4+1))
			emp.Append(relation.NewTuple(
				value.String_(name),
				value.String_(fmt.Sprintf("dept%02d", rng.Intn(spec.Depts))),
				value.Time(start),
				value.Time(start+length),
			))
		}
		for a := 0; a < spec.AssignmentsPerEmp; a++ {
			start := period.Chronon(rng.Intn(spec.TimeRange))
			length := period.Chronon(1 + rng.Intn(spec.TimeRange/8+1))
			prj.Append(relation.NewTuple(
				value.String_(name),
				value.String_(fmt.Sprintf("prj%03d", rng.Intn(spec.Projects))),
				value.Time(start),
				value.Time(start+length),
			))
		}
	}
	c := catalog.New()
	c.MustAdd("EMPLOYEE", emp, algebra.BaseInfo{})
	c.MustAdd("PROJECT", prj, algebra.BaseInfo{})
	return c
}
