package datagen_test

import (
	"testing"

	"tqp/internal/datagen"
)

func TestTemporalDeterministic(t *testing.T) {
	spec := datagen.TemporalSpec{Rows: 50, Values: 5, DupFrac: 0.2, AdjFrac: 0.3, Seed: 11}
	a := datagen.Temporal(spec)
	b := datagen.Temporal(spec)
	if !a.EqualAsList(b) {
		t.Error("same spec must generate the same relation")
	}
	c := datagen.Temporal(datagen.TemporalSpec{Rows: 50, Values: 5, DupFrac: 0.2, AdjFrac: 0.3, Seed: 12})
	if a.EqualAsList(c) {
		t.Error("different seeds should generate different relations")
	}
	if a.Len() != 50 {
		t.Errorf("Rows = %d", a.Len())
	}
	if !a.Temporal() {
		t.Error("generated relation must be temporal")
	}
	for i := 0; i < a.Len(); i++ {
		if a.PeriodOf(i).Empty() {
			t.Fatalf("tuple %d has an empty period", i)
		}
	}
}

func TestKnobsHaveEffect(t *testing.T) {
	noDups := datagen.Temporal(datagen.TemporalSpec{Rows: 60, Values: 30, TimeRange: 1000, MaxPeriod: 3, DupFrac: 0, Seed: 3})
	manyDups := datagen.Temporal(datagen.TemporalSpec{Rows: 60, Values: 30, DupFrac: 0.8, Seed: 3})
	if !manyDups.HasDuplicates() {
		t.Error("DupFrac 0.8 should create duplicates")
	}
	if noDups.HasDuplicates() {
		t.Error("DupFrac 0 with a sparse domain should avoid duplicates")
	}
	adjacent := datagen.Temporal(datagen.TemporalSpec{Rows: 60, Values: 4, AdjFrac: 0.9, Seed: 4})
	if adjacent.IsCoalesced() {
		t.Error("AdjFrac 0.9 should create coalescable adjacency")
	}
}

func TestSnapshotGenerator(t *testing.T) {
	s := datagen.Snapshot(datagen.SnapshotSpec{Rows: 30, Values: 5, DupFrac: 0.3, Seed: 5})
	if s.Len() != 30 || s.Temporal() {
		t.Errorf("snapshot generator: %d tuples, temporal=%v", s.Len(), s.Temporal())
	}
	if !s.HasDuplicates() {
		t.Error("DupFrac 0.3 over a 5-value domain should duplicate")
	}
}

func TestEmployeeDB(t *testing.T) {
	c := datagen.EmployeeDB(datagen.EmployeeSpec{
		Employees: 10, SpellsPerEmp: 3, AssignmentsPerEmp: 2, Seed: 9,
	})
	emp, err := c.Resolve("EMPLOYEE")
	if err != nil {
		t.Fatal(err)
	}
	if emp.Len() != 30 {
		t.Errorf("EMPLOYEE = %d tuples, want 30", emp.Len())
	}
	prj, err := c.Resolve("PROJECT")
	if err != nil {
		t.Fatal(err)
	}
	if prj.Len() != 20 {
		t.Errorf("PROJECT = %d tuples, want 20", prj.Len())
	}
	// Schemas match the paper database so the paper plans run unchanged.
	paper := datagen.EmployeeDB(datagen.EmployeeSpec{Employees: 1, SpellsPerEmp: 1, AssignmentsPerEmp: 1, Seed: 1})
	e2, _ := paper.Resolve("EMPLOYEE")
	if !emp.Schema().Equal(e2.Schema()) {
		t.Error("schemas must be stable across specs")
	}
}
