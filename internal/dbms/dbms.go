// Package dbms simulates the conventional DBMS underneath the stratum
// (Section 2.1). The simulation models exactly the three properties the
// paper relies on:
//
//  1. multiset semantics — the engine computes the same tuple multisets as
//     the reference evaluator;
//  2. no order guarantee — the result of a subplan is permuted
//     deterministically (seeded) unless the subplan's top operation is a
//     sort, "sort being the only exception" (Section 4.5);
//  3. its own optimizer — an ≡L-only rewriter (selection pushdown and
//     cascades) runs before execution, standing in for "the DBMS, which
//     will perform its own optimization".
//
// Temporal operations are executable (the paper's initial plans compute
// everything in the DBMS) but are priced punitively by the cost model: a
// conventional DBMS runs them as complex self-join SQL.
package dbms

import (
	"fmt"
	"math/rand"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/props"
	"tqp/internal/relation"
	"tqp/internal/rules"
	"tqp/internal/sqlgen"
)

// StratumCallback executes a TD-transferred stratum subtree; the stratum
// executor supplies it so that plans may ship intermediate stratum results
// back into the DBMS.
type StratumCallback func(n algebra.Node) (*relation.Relation, error)

// Engine is one simulated DBMS instance.
type Engine struct {
	src      eval.Source
	seed     int64
	stratum  StratumCallback
	rewrites []rules.Rule
}

// New returns an engine over the given base-relation source. The seed
// drives the order nondeterminism; two engines with different seeds are two
// "DBMS implementations" that may sort results differently.
func New(src eval.Source, seed int64) *Engine {
	return &Engine{
		src:  src,
		seed: seed,
		// The DBMS's own rewriter: ≡L rules only, so it is always safe
		// regardless of result-type context.
		rewrites: rules.ByName("P2", "P3", "P4", "P5", "P6b", "PP2", "PP1"),
	}
}

// SetStratumCallback wires the executor handling TD subtrees.
func (e *Engine) SetStratumCallback(cb StratumCallback) { e.stratum = cb }

// Result is a DBMS execution outcome.
type Result struct {
	// Rel is the result relation. Its recorded order is the subplan's
	// ORDER BY guarantee (empty unless the top operation is a sort).
	Rel *relation.Relation
	// SQL is the statement the stratum would have shipped.
	SQL string
	// Rewritten is the subplan after the DBMS's own rewriter.
	Rewritten algebra.Node
}

// Execute runs a subplan fully inside the DBMS.
func (e *Engine) Execute(subplan algebra.Node) (*Result, error) {
	sql, err := sqlgen.Generate(subplan)
	if err != nil {
		// Plans containing TD subtrees have no single-statement SQL form;
		// keep a marker for the trace.
		sql = "-- (subplan with stratum round-trip; no single SQL statement)"
	}
	optimized := e.rewrite(subplan)
	r, err := e.eval(optimized)
	if err != nil {
		return nil, err
	}
	out := r.Clone()
	if subplan.Op() != algebra.OpSort {
		e.permute(out)
		out.SetOrder(nil)
	} else {
		out.SetOrder(sqlgen.OrderByOf(subplan))
	}
	return &Result{Rel: out, SQL: sql, Rewritten: optimized}, nil
}

// eval evaluates a DBMS subplan, dispatching TD subtrees to the stratum.
func (e *Engine) eval(n algebra.Node) (*relation.Relation, error) {
	if n.Op() == algebra.OpTransferD {
		if e.stratum == nil {
			return nil, fmt.Errorf("dbms: TD encountered but no stratum callback installed")
		}
		return e.stratum(n.Children()[0])
	}
	if n.Op() == algebra.OpTransferS {
		return nil, fmt.Errorf("dbms: nested TS inside a DBMS subplan")
	}
	ch := n.Children()
	if len(ch) == 0 {
		return eval.New(e.src).Eval(n)
	}
	// Materialize children (handling TD recursively), then evaluate this
	// operation over them.
	src := make(eval.MapSource)
	newCh := make([]algebra.Node, len(ch))
	for i, c := range ch {
		r, err := e.eval(c)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("@dbms%d", i)
		src[name] = r
		newCh[i] = algebra.NewRel(name, r.Schema(), algebra.BaseInfo{Order: r.Order()})
	}
	return eval.New(src).Eval(n.WithChildren(newCh...))
}

// rewrite applies the DBMS's own ≡L rewriter to a fixpoint (bounded).
func (e *Engine) rewrite(plan algebra.Node) algebra.Node {
	for round := 0; round < 16; round++ {
		st, err := props.InferStates(plan)
		if err != nil {
			return plan
		}
		changed := false
		for _, path := range algebra.Paths(plan) {
			node, err := algebra.NodeAt(plan, path)
			if err != nil {
				continue
			}
			for _, rule := range e.rewrites {
				rw := rule.Apply(node, st)
				if rw == nil {
					continue
				}
				if next, err := algebra.ReplaceAt(plan, path, rw.Result); err == nil {
					plan = next
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
		if !changed {
			return plan
		}
	}
	return plan
}

// permute applies the engine's deterministic seeded permutation — the
// "whatever order the DBMS happens to produce" of Section 4.5.
func (e *Engine) permute(r *relation.Relation) {
	ts := r.Tuples()
	rng := rand.New(rand.NewSource(e.seed + int64(len(ts))))
	rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
}
