package dbms_test

import (
	"strings"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/dbms"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/stratum"
	"tqp/internal/value"
)

func TestMultisetFidelity(t *testing.T) {
	c := catalog.Paper()
	sub := algebra.NewSelect(
		expr.Compare(expr.Eq, expr.Column("Dept"), expr.Literal(value.String_("Sales"))),
		c.MustNode("EMPLOYEE"))
	want, err := eval.New(c).Eval(sub)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbms.New(c, 5).Execute(sub)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := equiv.Check(equiv.Multiset, want, res.Rel)
	if err != nil || !ok {
		t.Errorf("DBMS execution must be multiset-faithful:\n%s\nvs\n%s", res.Rel, want)
	}
}

// TestOrderNondeterminism: without a top-level sort the DBMS gives no order
// guarantee — different seeds produce differently ordered (but
// multiset-equal) results, and the result's recorded order is empty.
func TestOrderNondeterminism(t *testing.T) {
	c := catalog.Paper()
	sub := c.MustNode("EMPLOYEE")
	r1, err := dbms.New(c, 1).Execute(sub)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dbms.New(c, 2).Execute(sub)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Rel.Order().Empty() {
		t.Error("no order guarantee without a top sort")
	}
	if ok, _ := equiv.Check(equiv.Multiset, r1.Rel, r2.Rel); !ok {
		t.Error("different seeds must still agree as multisets")
	}
	if r1.Rel.EqualAsList(r2.Rel) {
		t.Log("seeds 1 and 2 happened to agree as lists; acceptable but unusual")
	}
}

// TestSortException: "sort being the only exception" — a subplan topped by
// a sort keeps its order across the boundary.
func TestSortException(t *testing.T) {
	c := catalog.Paper()
	spec := relation.OrderSpec{relation.Key("EmpName"), relation.Key("Dept")}
	sub := algebra.NewSort(spec, c.MustNode("EMPLOYEE"))
	for seed := int64(1); seed <= 5; seed++ {
		res, err := dbms.New(c, seed).Execute(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rel.Order().Equal(spec) {
			t.Fatalf("seed %d: sort order not recorded: %s", seed, res.Rel.Order())
		}
		if !res.Rel.SortedBy(spec) {
			t.Fatalf("seed %d: result not actually sorted", seed)
		}
	}
}

func TestRewriterPushesSelections(t *testing.T) {
	c := catalog.Paper()
	// σ over a projection: the DBMS's own rewriter (≡L rules) should push
	// the selection below the projection.
	sub := algebra.NewSelect(
		expr.Compare(expr.Eq, expr.Column("EmpName"), expr.Literal(value.String_("Anna"))),
		algebra.NewProjectCols(c.MustNode("EMPLOYEE"), "EmpName", "Dept"))
	res, err := dbms.New(c, 1).Execute(sub)
	if err != nil {
		t.Fatal(err)
	}
	canon := algebra.Canonical(res.Rewritten)
	if !strings.HasPrefix(canon, "project") {
		t.Errorf("expected the selection pushed below the projection, got %s", canon)
	}
	// And the rewrite is semantics-preserving.
	want, _ := eval.New(c).Eval(sub)
	if ok, _ := equiv.Check(equiv.Multiset, want, res.Rel); !ok {
		t.Error("rewriter changed the result")
	}
}

func TestSQLAttached(t *testing.T) {
	c := catalog.Paper()
	res, err := dbms.New(c, 1).Execute(algebra.NewRdup(c.MustNode("PROJECT")))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.SQL, "SELECT DISTINCT") {
		t.Errorf("SQL missing DISTINCT:\n%s", res.SQL)
	}
}

func TestTransferDCallback(t *testing.T) {
	c := catalog.Paper()
	// A full round trip: the stratum coalesces, ships the result back into
	// the DBMS for sorting, and transfers it up again.
	plan := algebra.NewTransferS(
		algebra.NewSort(relation.OrderSpec{relation.Key("EmpName")},
			algebra.NewTransferD(
				algebra.NewCoal(algebra.NewTRdup(
					algebra.NewTransferS(catalog.PaperProjection(c.MustNode("EMPLOYEE"))))))))
	got, trace, err := stratum.New(c, 1).Execute(plan)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !got.SortedBy(relation.OrderSpec{relation.Key("EmpName")}) {
		t.Error("round-trip result must be sorted by the DBMS")
	}
	if trace.TuplesTransferred < got.Len()*2 {
		t.Errorf("expected at least two boundary crossings, transferred=%d", trace.TuplesTransferred)
	}
	// Content agrees with the reference evaluation.
	want, err := eval.New(c).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := equiv.Check(equiv.Multiset, want, got); !ok {
		t.Errorf("round trip diverged:\n%s\nvs\n%s", got, want)
	}
	// Without a stratum callback, a bare engine must reject TD.
	if _, err := dbms.New(c, 1).Execute(algebra.NewTransferD(c.MustNode("EMPLOYEE"))); err == nil {
		t.Error("TD without a callback must fail")
	}
}
