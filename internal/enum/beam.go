package enum

import (
	"fmt"
	"sort"

	"tqp/internal/algebra"
	"tqp/internal/props"
	"tqp/internal/rules"
)

// BeamConfig controls the cost-guided beam search — the "heuristics ...
// necessary to achieve an efficient and effective optimizer" of the paper's
// future-work section. Instead of closing the plan space like Enumerate,
// each round expands the current beam by one guarded rewrite step and keeps
// the Width cheapest distinct plans; the search stops after Rounds rounds
// or when a round yields no new plan.
type BeamConfig struct {
	Config
	// Width is the beam width (default 16).
	Width int
	// Rounds bounds the search depth (default 24).
	Rounds int
	// Score returns a plan's cost; lower is better.
	Score func(algebra.Node) (float64, error)
}

// Beam runs the beam search from the initial plan. The returned Result
// lists every beam member ever visited (initial plan first) with
// provenance; the caller picks the best by score.
func Beam(initial algebra.Node, cfg BeamConfig) (*Result, error) {
	if cfg.Score == nil {
		return nil, fmt.Errorf("enum: beam search needs a Score function")
	}
	if err := algebra.Validate(initial); err != nil {
		return nil, fmt.Errorf("enum: invalid initial plan: %w", err)
	}
	width := cfg.Width
	if width <= 0 {
		width = 16
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 24
	}
	ruleSet := cfg.Rules
	if ruleSet == nil {
		ruleSet = rules.All()
	}
	if !cfg.IncludeExpanding {
		ruleSet = rules.NonExpanding(ruleSet)
	}

	res := &Result{
		Provenance:      make(map[string]Step),
		GuardRejections: make(map[string]int),
		Applications:    make(map[string]int),
	}
	type scored struct {
		plan  algebra.Node
		score float64
	}
	seen := map[string]bool{algebra.Canonical(initial): true}
	res.Plans = append(res.Plans, initial)
	initScore, err := cfg.Score(initial)
	if err != nil {
		return nil, err
	}
	beam := []scored{{plan: initial, score: initScore}}

	for round := 0; round < rounds; round++ {
		var candidates []scored
		for _, member := range beam {
			plan := member.plan
			planKey := algebra.Canonical(plan)
			st, err := props.InferStates(plan)
			if err != nil {
				return nil, err
			}
			pm, err := props.Infer(plan, cfg.ResultType, st)
			if err != nil {
				return nil, err
			}
			for _, path := range algebra.Paths(plan) {
				node, err := algebra.NodeAt(plan, path)
				if err != nil {
					return nil, err
				}
				for _, rule := range ruleSet {
					rewrite := rule.Apply(node, st)
					if rewrite == nil {
						continue
					}
					if !guardAllows(rule, rewrite, pm) {
						res.GuardRejections[rule.Name]++
						continue
					}
					newPlan, err := algebra.ReplaceAt(plan, path, rewrite.Result)
					if err != nil {
						return nil, err
					}
					res.Applications[rule.Name]++
					key := algebra.Canonical(newPlan)
					if seen[key] {
						continue
					}
					seen[key] = true
					score, err := cfg.Score(newPlan)
					if err != nil {
						return nil, err
					}
					candidates = append(candidates, scored{plan: newPlan, score: score})
					res.Plans = append(res.Plans, newPlan)
					res.Provenance[key] = Step{
						Parent:   planKey,
						Rule:     rule.Name,
						RuleType: rule.Type,
						Path:     path.Clone(),
					}
				}
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Next beam: the cheapest Width of old beam ∪ candidates, so a
		// plateau can still be crossed while good plans are never lost.
		candidates = append(candidates, beam...)
		sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].score < candidates[j].score })
		if len(candidates) > width {
			candidates = candidates[:width]
		}
		beam = candidates
	}
	return res, nil
}
