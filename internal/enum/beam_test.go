package enum_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/cost"
	"tqp/internal/enum"
	"tqp/internal/equiv"
)

// TestBeamMatchesExhaustiveBest: on the paper query the beam search must
// reach the same best cost as the exhaustive Figure 5 closure while
// visiting fewer plans.
func TestBeamMatchesExhaustiveBest(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	model := cost.New(c, cost.DefaultParams())

	full, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList})
	if err != nil {
		t.Fatal(err)
	}
	_, fullBest, err := model.Best(full.Plans)
	if err != nil {
		t.Fatal(err)
	}

	beam, err := enum.Beam(initial, enum.BeamConfig{
		Config: enum.Config{ResultType: equiv.ResultList},
		Score:  model.Cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, beamBest, err := model.Best(beam.Plans)
	if err != nil {
		t.Fatal(err)
	}
	if beamBest > fullBest*1.001 {
		t.Errorf("beam best %.1f worse than exhaustive best %.1f", beamBest, fullBest)
	}
	if len(beam.Plans) >= len(full.Plans) {
		t.Errorf("beam visited %d plans, exhaustive %d — no saving", len(beam.Plans), len(full.Plans))
	}
	t.Logf("beam visited %d plans vs %d exhaustive; best %.1f vs %.1f",
		len(beam.Plans), len(full.Plans), beamBest, fullBest)
}

// TestBeamPlansAreCorrect: beam-search plans obey the same guard, so every
// visited plan is still ≡SQL to the initial one (spot check: evaluating the
// best one equals the reference).
func TestBeamPlansAreCorrect(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	model := cost.New(c, cost.DefaultParams())
	beam, err := enum.Beam(initial, enum.BeamConfig{
		Config: enum.Config{ResultType: equiv.ResultList},
		Score:  model.Cost,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range beam.Plans {
		if err := algebra.Validate(p); err != nil {
			t.Fatalf("beam produced an invalid plan: %v", err)
		}
	}
	if beam.GuardRejections["S2"] == 0 {
		t.Error("the guard must still gate the beam search")
	}
}

func TestBeamNeedsScore(t *testing.T) {
	c := catalog.Paper()
	if _, err := enum.Beam(catalog.PaperInitialPlan(c), enum.BeamConfig{
		Config: enum.Config{ResultType: equiv.ResultList},
	}); err == nil {
		t.Error("beam without a score function must fail")
	}
}
