package enum_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/enum"
	"tqp/internal/equiv"
	"tqp/internal/rules"
)

// TestPlanCap: a tiny cap stops the fixpoint and flags the result.
func TestPlanCap(t *testing.T) {
	c := catalog.Paper()
	res, err := enum.Enumerate(catalog.PaperInitialPlan(c), enum.Config{
		ResultType: equiv.ResultList,
		MaxPlans:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped || len(res.Plans) != 5 {
		t.Errorf("capped=%v plans=%d, want capped at 5", res.Capped, len(res.Plans))
	}
}

// TestExpandingRulesExcludedByDefault: the enumerator must terminate on the
// full catalog because expanding rules (r →S rdup(r), r →SM coalT(r)) are
// filtered out — with them admitted and a cap, plans grow.
func TestExpandingRulesExcludedByDefault(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	base, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultSet})
	if err != nil {
		t.Fatal(err)
	}
	if base.Capped {
		t.Fatal("default enumeration must terminate without the cap")
	}
	withExpanding, err := enum.Enumerate(initial, enum.Config{
		ResultType:       equiv.ResultSet,
		IncludeExpanding: true,
		MaxPlans:         len(base.Plans) + 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(withExpanding.Plans) <= len(base.Plans) {
		t.Errorf("expanding rules should reach more plans: %d vs %d",
			len(withExpanding.Plans), len(base.Plans))
	}
}

// TestProvenanceChains: every non-initial plan has a derivation that walks
// back to the initial plan.
func TestProvenanceChains(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	res, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList})
	if err != nil {
		t.Fatal(err)
	}
	initialKey := algebra.Canonical(initial)
	for i, p := range res.Plans {
		steps := res.Derivation(p)
		if i == 0 {
			if len(steps) != 0 {
				t.Error("the initial plan has no derivation")
			}
			continue
		}
		if len(steps) == 0 {
			t.Fatalf("plan %d has no provenance", i)
		}
		if steps[0].Parent != initialKey {
			t.Fatalf("plan %d's derivation does not start at the initial plan", i)
		}
	}
}

// TestRestrictedRuleSets: with only the sorting rules, the reachable space
// is tiny and every plan still validates.
func TestRestrictedRuleSets(t *testing.T) {
	c := catalog.Paper()
	res, err := enum.Enumerate(catalog.PaperInitialPlan(c), enum.Config{
		ResultType: equiv.ResultList,
		Rules:      rules.SortRules(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Plans) < 2 {
		t.Errorf("sort rules alone should still move the sort: %d plans", len(res.Plans))
	}
	for _, p := range res.Plans {
		if err := algebra.Validate(p); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInvalidInitialPlanRejected: enumeration refuses to start from a plan
// that does not validate.
func TestInvalidInitialPlanRejected(t *testing.T) {
	c := catalog.Paper()
	bad := algebra.NewTRdup(algebra.NewProjectCols(c.MustNode("EMPLOYEE"), "EmpName"))
	if _, err := enum.Enumerate(bad, enum.Config{ResultType: equiv.ResultList}); err == nil {
		t.Error("invalid initial plan must be rejected")
	}
}
