// Package enum implements the query plan enumeration algorithm of Figure 5:
// a worklist fixpoint over a set of plans and a set of transformation rules,
// where a rule of equivalence type T may be applied at a location only when
// the operation properties of every participating operation permit T
// (package props). Per Theorem 6.1 the algorithm generates only correct
// plans; per the paper's remark it is deterministic — the generated set does
// not depend on the order of rules or locations.
//
// To terminate, the rule set must not contain expanding rules such as
// r →S rdup(r) (Section 6); the default configuration excludes them, and a
// plan cap bounds the walk regardless.
package enum

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/equiv"
	"tqp/internal/props"
	"tqp/internal/rules"
)

// Config controls an enumeration run.
type Config struct {
	// Rules is the transformation-rule set; nil means the full non-expanding
	// catalog.
	Rules []rules.Rule
	// ResultType is the query's result type per Definition 5.1, which
	// seeds the property inference at the root.
	ResultType equiv.ResultType
	// MaxPlans caps the number of generated plans (0 = 4096). The cap is a
	// safety net; if it is hit, Result.Capped is set and determinism across
	// rule orders is no longer guaranteed.
	MaxPlans int
	// IncludeExpanding admits expanding rules (plan-growing); use only with
	// a tight MaxPlans.
	IncludeExpanding bool
}

// Step records how a plan was derived.
type Step struct {
	// Parent is the canonical form of the plan the rule was applied to.
	Parent string
	// Rule is the name of the applied rule.
	Rule string
	// RuleType is the rule's equivalence type.
	RuleType equiv.Type
	// Path locates the rewritten node in the parent plan.
	Path algebra.Path
}

// Result is the outcome of an enumeration.
type Result struct {
	// Plans holds every generated plan, the initial plan first, in
	// discovery order.
	Plans []algebra.Node
	// Provenance maps each plan's canonical form to the step that first
	// produced it (absent for the initial plan).
	Provenance map[string]Step
	// GuardRejections counts, per rule, how many syntactic matches the
	// property guard of Figure 5 rejected.
	GuardRejections map[string]int
	// Applications counts, per rule, how many times it produced a plan
	// (including rediscoveries of known plans).
	Applications map[string]int
	// Capped reports that MaxPlans stopped the fixpoint early.
	Capped bool
}

// Enumerate runs the Figure 5 algorithm from the initial plan.
func Enumerate(initial algebra.Node, cfg Config) (*Result, error) {
	if err := algebra.Validate(initial); err != nil {
		return nil, fmt.Errorf("enum: invalid initial plan: %w", err)
	}
	ruleSet := cfg.Rules
	if ruleSet == nil {
		ruleSet = rules.All()
	}
	if !cfg.IncludeExpanding {
		ruleSet = rules.NonExpanding(ruleSet)
	}
	maxPlans := cfg.MaxPlans
	if maxPlans <= 0 {
		maxPlans = 4096
	}

	res := &Result{
		Provenance:      make(map[string]Step),
		GuardRejections: make(map[string]int),
		Applications:    make(map[string]int),
	}
	seen := map[string]bool{algebra.Canonical(initial): true}
	res.Plans = append(res.Plans, initial)

	for i := 0; i < len(res.Plans); i++ {
		plan := res.Plans[i]
		planKey := algebra.Canonical(plan)
		st, err := props.InferStates(plan)
		if err != nil {
			return nil, fmt.Errorf("enum: state inference: %w", err)
		}
		pm, err := props.Infer(plan, cfg.ResultType, st)
		if err != nil {
			return nil, fmt.Errorf("enum: property inference: %w", err)
		}
		for _, path := range algebra.Paths(plan) {
			node, err := algebra.NodeAt(plan, path)
			if err != nil {
				return nil, err
			}
			for _, rule := range ruleSet {
				rewrite := rule.Apply(node, st)
				if rewrite == nil {
					continue
				}
				if !guardAllows(rule, rewrite, pm) {
					res.GuardRejections[rule.Name]++
					continue
				}
				newPlan, err := algebra.ReplaceAt(plan, path, rewrite.Result)
				if err != nil {
					return nil, err
				}
				if err := algebra.Validate(newPlan); err != nil {
					return nil, fmt.Errorf("enum: rule %s at %s produced invalid plan: %w",
						rule.Name, path, err)
				}
				res.Applications[rule.Name]++
				key := algebra.Canonical(newPlan)
				if seen[key] {
					continue
				}
				seen[key] = true
				res.Plans = append(res.Plans, newPlan)
				res.Provenance[key] = Step{
					Parent:   planKey,
					Rule:     rule.Name,
					RuleType: rule.Type,
					Path:     path.Clone(),
				}
				if len(res.Plans) >= maxPlans {
					res.Capped = true
					return res, nil
				}
			}
		}
	}
	return res, nil
}

// guardAllows implements the applicability condition of Figure 5: every
// participating operation's properties must permit the rule's equivalence
// type.
func guardAllows(rule rules.Rule, rewrite *rules.Rewrite, pm props.PropsMap) bool {
	ps := make([]props.Props, 0, len(rewrite.Participants))
	for _, p := range rewrite.Participants {
		prop, ok := pm[p]
		if !ok {
			// A participant outside the current plan (should not happen);
			// be conservative.
			return false
		}
		ps = append(ps, prop)
	}
	return props.Applicable(rule.Type, ps)
}

// Derivation reconstructs the chain of steps that produced the given plan,
// earliest step first.
func (r *Result) Derivation(plan algebra.Node) []Step {
	var out []Step
	key := algebra.Canonical(plan)
	for {
		step, ok := r.Provenance[key]
		if !ok {
			break
		}
		out = append([]Step{step}, out...)
		key = step.Parent
	}
	return out
}
