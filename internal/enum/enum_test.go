package enum_test

import (
	"math/rand"
	"sort"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/enum"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/relation"
	"tqp/internal/rules"
)

func canonSet(plans []algebra.Node) []string {
	out := make([]string, len(plans))
	for i, p := range plans {
		out[i] = algebra.Canonical(p)
	}
	sort.Strings(out)
	return out
}

// TestEnumerateFindsPaperPlan runs the Figure 5 algorithm on the paper's
// initial plan (Figure 2(a)) with the full rule catalog and checks that the
// walk discovers both the intermediate plan of Figure 6(a) and the final
// plan of Figure 6(b).
func TestEnumerateFindsPaperPlan(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	res, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList})
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatalf("enumeration hit the plan cap (%d plans); tighten the rule set", len(res.Plans))
	}
	t.Logf("enumerated %d plans", len(res.Plans))

	seen := make(map[string]bool, len(res.Plans))
	for _, p := range res.Plans {
		seen[algebra.Canonical(p)] = true
	}
	mid := algebra.Canonical(catalog.PaperIntermediatePlan(c))
	final := algebra.Canonical(catalog.PaperOptimizedPlan(c))
	if !seen[mid] {
		t.Errorf("Figure 6(a) plan not found among %d plans", len(res.Plans))
	}
	if !seen[final] {
		t.Errorf("Figure 6(b) plan not found among %d plans", len(res.Plans))
	}

	if !seen[final] || testing.Verbose() {
		for _, p := range res.Plans[:min(len(res.Plans), 30)] {
			t.Logf("plan: %s", algebra.Canonical(p))
		}
	}
}

// TestEnumerationCorrectness is Theorem 6.1 in executable form: every
// enumerated plan must be ≡SQL-equivalent to the initial plan — here for a
// list result ordered by EmpName, ≡M plus agreement on the EmpName
// projection.
func TestEnumerationCorrectness(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	res, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList})
	if err != nil {
		t.Fatal(err)
	}
	ev := eval.New(c)
	want, err := ev.Eval(initial)
	if err != nil {
		t.Fatal(err)
	}
	orderBy := relation.OrderSpec{relation.Key("EmpName")}
	for i, p := range res.Plans {
		got, err := ev.Eval(p)
		if err != nil {
			t.Fatalf("plan %d (%s): %v", i, algebra.Canonical(p), err)
		}
		ok, err := equiv.CheckSQL(equiv.ResultList, orderBy, want, got)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if !ok {
			steps := res.Derivation(p)
			t.Errorf("plan %d is not ≡SQL to the initial plan: %s (derived via %v)",
				i, algebra.Canonical(p), steps)
		}
	}
}

// TestEnumerationDeterminism checks the paper's determinism claim: the
// generated plan set does not depend on the order of transformation rules.
func TestEnumerationDeterminism(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)

	base, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList})
	if err != nil {
		t.Fatal(err)
	}
	baseSet := canonSet(base.Plans)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3; trial++ {
		shuffled := rules.All()
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		res, err := enum.Enumerate(initial, enum.Config{
			ResultType: equiv.ResultList,
			Rules:      shuffled,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := canonSet(res.Plans)
		if len(got) != len(baseSet) {
			t.Fatalf("trial %d: %d plans vs %d with default rule order", trial, len(got), len(baseSet))
		}
		for i := range got {
			if got[i] != baseSet[i] {
				t.Fatalf("trial %d: plan sets differ at %d:\n%s\nvs\n%s", trial, i, got[i], baseSet[i])
			}
		}
	}
}

// TestGuardMatters: without the property guard, rules of weak equivalence
// types would be applied in positions where they change the query result.
// We verify the guard actually rejects applications on the paper's plan
// (e.g., S2 — drop the sort — must be rejected at the top of an ORDER BY
// query), and that for a multiset-result query the same rule is admitted.
func TestGuardMatters(t *testing.T) {
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)

	res, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList})
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardRejections["S2"] == 0 {
		t.Error("expected the guard to reject S2 (sort elimination) somewhere in a list-result query")
	}
	// Dropping the sort must not be possible anywhere in this plan: every
	// sort in every enumerated plan sits on the order-critical path.
	for _, p := range res.Plans {
		if !planOrdered(t, c, p) {
			t.Errorf("enumerated plan loses the EmpName order: %s", algebra.Canonical(p))
		}
	}

	resM, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultMultiset})
	if err != nil {
		t.Fatal(err)
	}
	if resM.Applications["S2"] == 0 {
		t.Error("for a multiset result the guard should admit S2 (sort elimination)")
	}
	if len(resM.Plans) <= len(res.Plans) {
		t.Errorf("multiset result should admit at least as many plans: %d vs %d",
			len(resM.Plans), len(res.Plans))
	}
}

func planOrdered(t *testing.T, c *catalog.Catalog, p algebra.Node) bool {
	t.Helper()
	r, err := eval.New(c).Eval(p)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return r.SortedBy(relation.OrderSpec{relation.Key("EmpName")})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
