// Package equiv implements the six relation equivalence types of Section 3
// of the paper — list, multiset and set equivalence, and their snapshot
// counterparts — plus the ORDER-BY-projected list equivalence ≡L,A used by
// Definition 5.1, and the implication lattice of Theorem 3.1.
package equiv

import (
	"fmt"

	"tqp/internal/period"
	"tqp/internal/relation"
)

// Type identifies one of the six equivalence types.
type Type uint8

// The equivalence types, strongest first within each row of Theorem 3.1's
// lattice.
const (
	List Type = iota
	Multiset
	Set
	SnapshotList
	SnapshotMultiset
	SnapshotSet
)

// String renders the type in the paper's notation.
func (t Type) String() string {
	switch t {
	case List:
		return "≡L"
	case Multiset:
		return "≡M"
	case Set:
		return "≡S"
	case SnapshotList:
		return "≡SL"
	case SnapshotMultiset:
		return "≡SM"
	case SnapshotSet:
		return "≡SS"
	default:
		return "≡?"
	}
}

// Snapshot reports whether the type is one of the snapshot equivalences,
// which are only defined between temporal relations.
func (t Type) Snapshot() bool { return t >= SnapshotList }

// Implies reports the implication lattice of Theorem 3.1:
//
//	≡L ⇒ ≡M ⇒ ≡S
//	⇓     ⇓     ⇓      (downward implications apply to temporal relations)
//	≡SL ⇒ ≡SM ⇒ ≡SS
func (t Type) Implies(u Type) bool {
	if t == u {
		return true
	}
	switch t {
	case List:
		return true // implies everything (for temporal relations)
	case Multiset:
		return u == Set || u == SnapshotMultiset || u == SnapshotSet
	case Set:
		return u == SnapshotSet
	case SnapshotList:
		return u == SnapshotMultiset || u == SnapshotSet
	case SnapshotMultiset:
		return u == SnapshotSet
	default:
		return false
	}
}

// All returns the six types, strongest to weakest row by row.
func All() []Type {
	return []Type{List, Multiset, Set, SnapshotList, SnapshotMultiset, SnapshotSet}
}

// Check reports whether relations a and b are equivalent under t. Snapshot
// types require both relations to be temporal; comparing relations with
// different schemas yields false, never an error, except for snapshot types
// over non-temporal relations, which are undefined (Section 3) and return
// an error.
func Check(t Type, a, b *relation.Relation) (bool, error) {
	if t.Snapshot() {
		if !a.Temporal() || !b.Temporal() {
			return false, fmt.Errorf("equiv: %s undefined for snapshot relations", t)
		}
		return snapshotCheck(t, a, b), nil
	}
	if !a.Schema().Equal(b.Schema()) {
		return false, nil
	}
	switch t {
	case List:
		return a.EqualAsList(b), nil
	case Multiset:
		return multisetEqual(a, b), nil
	default:
		return setEqual(a, b), nil
	}
}

// Holding returns every type under which a and b are equivalent; snapshot
// types are skipped for non-temporal relations.
func Holding(a, b *relation.Relation) []Type {
	var out []Type
	for _, t := range All() {
		ok, err := Check(t, a, b)
		if err == nil && ok {
			out = append(out, t)
		}
	}
	return out
}

func multisetEqual(a, b *relation.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	counts := make(map[string]int, a.Len())
	for _, t := range a.Tuples() {
		counts[t.Key()]++
	}
	for _, t := range b.Tuples() {
		k := t.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

func setEqual(a, b *relation.Relation) bool {
	as := make(map[string]bool, a.Len())
	for _, t := range a.Tuples() {
		as[t.Key()] = true
	}
	bs := make(map[string]bool, b.Len())
	for _, t := range b.Tuples() {
		bs[t.Key()] = true
	}
	if len(as) != len(bs) {
		return false
	}
	for k := range as {
		if !bs[k] {
			return false
		}
	}
	return true
}

// snapshotCheck compares the snapshots of two temporal relations at one
// witness instant per elementary interval of their combined periods;
// between witnesses the snapshots are constant, so this covers the whole
// time domain.
func snapshotCheck(t Type, a, b *relation.Relation) bool {
	ps := append(a.Periods(), b.Periods()...)
	for _, w := range period.Witnesses(ps) {
		sa, sb := a.Snapshot(w), b.Snapshot(w)
		var ok bool
		switch t {
		case SnapshotList:
			ok = sa.Schema().Equal(sb.Schema()) && sa.EqualAsList(sb)
		case SnapshotMultiset:
			ok = sa.Schema().Equal(sb.Schema()) && multisetEqual(sa, sb)
		default:
			ok = sa.Schema().Equal(sb.Schema()) && setEqual(sa, sb)
		}
		if !ok {
			return false
		}
	}
	return true
}

// ListOn implements ≡L,A of Definition 5.1: relations are ≡L,A equivalent
// when their projections onto the ORDER BY list A are list equivalent. It
// is what a query with ORDER BY A must preserve — attributes outside A may
// tie-break differently.
func ListOn(spec relation.OrderSpec, a, b *relation.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	sa, sb := a.Schema(), b.Schema()
	for _, k := range spec {
		ia, ib := sa.Index(k.Attr), sb.Index(k.Attr)
		if ia < 0 || ib < 0 {
			return false
		}
		for x := 0; x < a.Len(); x++ {
			if !a.At(x)[ia].Equal(b.At(x)[ib]) {
				return false
			}
		}
	}
	return true
}
