package equiv_test

import (
	"testing"

	"tqp/internal/datagen"
	"tqp/internal/equiv"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func tempSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
}

func tempRel(rows [][]any) *relation.Relation {
	return relation.MustFromRows(tempSchema(), rows)
}

func TestBasicEquivalences(t *testing.T) {
	a := tempRel([][]any{{"x", 1, 4}, {"y", 2, 6}})
	sameList := tempRel([][]any{{"x", 1, 4}, {"y", 2, 6}})
	reordered := tempRel([][]any{{"y", 2, 6}, {"x", 1, 4}})
	extraDup := tempRel([][]any{{"x", 1, 4}, {"x", 1, 4}, {"y", 2, 6}})
	fragmented := tempRel([][]any{{"x", 1, 2}, {"x", 2, 4}, {"y", 2, 6}})
	different := tempRel([][]any{{"z", 1, 4}})

	check := func(typ equiv.Type, x, y *relation.Relation, want bool, what string) {
		t.Helper()
		got, err := equiv.Check(typ, x, y)
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if got != want {
			t.Errorf("%s: %s = %v, want %v", what, typ, got, want)
		}
	}

	check(equiv.List, a, sameList, true, "identical lists")
	check(equiv.List, a, reordered, false, "reordering breaks ≡L")
	check(equiv.Multiset, a, reordered, true, "reordering keeps ≡M")
	check(equiv.Multiset, a, extraDup, false, "duplicate count breaks ≡M")
	check(equiv.Set, a, extraDup, true, "duplicates don't matter for ≡S")
	check(equiv.Set, a, different, false, "different content breaks ≡S")
	check(equiv.SnapshotList, a, fragmented, true, "fragmentation keeps snapshot lists")
	check(equiv.SnapshotMultiset, a, fragmented, true, "fragmentation keeps snapshot multisets")
	check(equiv.SnapshotSet, a, fragmented, true, "fragmentation keeps snapshot sets")
	check(equiv.Multiset, a, fragmented, false, "fragmentation breaks ≡M")

	// Snapshot multiset vs set: a duplicated fragment.
	dupFrag := tempRel([][]any{{"x", 1, 4}, {"x", 1, 4}, {"y", 2, 6}})
	check(equiv.SnapshotSet, a, dupFrag, true, "snapshot sets ignore per-instant counts")
	check(equiv.SnapshotMultiset, a, dupFrag, false, "snapshot multisets count per instant")

	// Snapshot-list order sensitivity within a snapshot.
	ab := tempRel([][]any{{"x", 1, 4}, {"y", 1, 4}})
	ba := tempRel([][]any{{"y", 1, 4}, {"x", 1, 4}})
	check(equiv.SnapshotList, ab, ba, false, "within-snapshot order breaks ≡SL")
	check(equiv.SnapshotMultiset, ab, ba, true, "…but keeps ≡SM")
}

func TestSnapshotUndefinedForConventional(t *testing.T) {
	s := schema.MustNew(schema.Attr("A", value.KindInt))
	a := relation.MustFromRows(s, [][]any{{1}})
	if _, err := equiv.Check(equiv.SnapshotSet, a, a); err == nil {
		t.Error("snapshot equivalence is undefined for snapshot relations (Section 3)")
	}
}

func TestSchemasMustMatch(t *testing.T) {
	a := tempRel([][]any{{"x", 1, 4}})
	s2 := schema.MustNew(
		schema.Attr("Other", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
	b := relation.MustFromRows(s2, [][]any{{"x", 1, 4}})
	ok, err := equiv.Check(equiv.List, a, b)
	if err != nil || ok {
		t.Error("different schemas are never list-equivalent")
	}
}

func TestImpliesLattice(t *testing.T) {
	cases := []struct {
		from, to equiv.Type
		want     bool
	}{
		{equiv.List, equiv.Multiset, true},
		{equiv.List, equiv.Set, true},
		{equiv.List, equiv.SnapshotList, true},
		{equiv.List, equiv.SnapshotSet, true},
		{equiv.Multiset, equiv.Set, true},
		{equiv.Multiset, equiv.SnapshotMultiset, true},
		{equiv.Multiset, equiv.List, false},
		{equiv.Multiset, equiv.SnapshotList, false},
		{equiv.Set, equiv.SnapshotSet, true},
		{equiv.Set, equiv.Multiset, false},
		{equiv.SnapshotList, equiv.SnapshotMultiset, true},
		{equiv.SnapshotMultiset, equiv.SnapshotSet, true},
		{equiv.SnapshotSet, equiv.Set, false},
		{equiv.SnapshotList, equiv.List, false},
	}
	for _, c := range cases {
		if got := c.from.Implies(c.to); got != c.want {
			t.Errorf("%s ⇒ %s = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

// TestHoldingRespectsLattice: on random pairs, the set of equivalences that
// hold is upward closed under implication (Theorem 3.1).
func TestHoldingRespectsLattice(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		a := datagen.Temporal(datagen.TemporalSpec{Rows: 7, Values: 3, DupFrac: 0.3, AdjFrac: 0.3, Seed: seed})
		b := datagen.Temporal(datagen.TemporalSpec{Rows: 7, Values: 3, DupFrac: 0.3, AdjFrac: 0.3, Seed: seed / 2})
		holding := equiv.Holding(a, b)
		set := map[equiv.Type]bool{}
		for _, h := range holding {
			set[h] = true
		}
		for _, h := range holding {
			for _, u := range equiv.All() {
				if h.Implies(u) && !set[u] {
					t.Fatalf("seed %d: %s holds but implied %s does not", seed, h, u)
				}
			}
		}
	}
}

func TestListOn(t *testing.T) {
	spec := relation.OrderSpec{relation.Key("Name")}
	a := tempRel([][]any{{"x", 1, 4}, {"y", 2, 6}})
	// Same Name sequence, different periods: ≡L,A holds.
	b := tempRel([][]any{{"x", 7, 9}, {"y", 1, 2}})
	if !equiv.ListOn(spec, a, b) {
		t.Error("≡L,A compares only the ORDER BY projection")
	}
	c := tempRel([][]any{{"y", 1, 4}, {"x", 2, 6}})
	if equiv.ListOn(spec, a, c) {
		t.Error("different Name sequences break ≡L,A")
	}
	if equiv.ListOn(spec, a, tempRel(nil)) {
		t.Error("length mismatch breaks ≡L,A")
	}
}

func TestCheckSQL(t *testing.T) {
	spec := relation.OrderSpec{relation.Key("Name")}
	a := tempRel([][]any{{"x", 1, 4}, {"y", 2, 6}})
	sameMultisetSameOrder := tempRel([][]any{{"x", 1, 4}, {"y", 2, 6}})
	reordered := tempRel([][]any{{"y", 2, 6}, {"x", 1, 4}})

	ok, err := equiv.CheckSQL(equiv.ResultList, spec, a, sameMultisetSameOrder)
	if err != nil || !ok {
		t.Error("list result: same multiset and A-order must pass")
	}
	ok, _ = equiv.CheckSQL(equiv.ResultList, spec, a, reordered)
	if ok {
		t.Error("list result: reordering on A must fail")
	}
	ok, _ = equiv.CheckSQL(equiv.ResultMultiset, nil, a, reordered)
	if !ok {
		t.Error("multiset result: reordering is fine")
	}
	dup := tempRel([][]any{{"x", 1, 4}, {"x", 1, 4}, {"y", 2, 6}})
	ok, _ = equiv.CheckSQL(equiv.ResultSet, nil, a, dup)
	if !ok {
		t.Error("set result: duplicate counts are immaterial")
	}
	ok, _ = equiv.CheckSQL(equiv.ResultMultiset, nil, a, dup)
	if ok {
		t.Error("multiset result: duplicate counts matter")
	}
}

func TestGuardMapping(t *testing.T) {
	if equiv.ResultList.Guard() != equiv.List ||
		equiv.ResultMultiset.Guard() != equiv.Multiset ||
		equiv.ResultSet.Guard() != equiv.Set {
		t.Error("Definition 5.1 guard mapping")
	}
}
