package equiv

import "tqp/internal/relation"

// ResultType is the type of result a user-level query specifies
// (Definition 5.1): a list when ORDER BY is present, a set when DISTINCT is
// present without ORDER BY, and a multiset otherwise.
type ResultType uint8

// Result types per Definition 5.1.
const (
	ResultMultiset ResultType = iota
	ResultList
	ResultSet
)

// String renders the result type.
func (rt ResultType) String() string {
	switch rt {
	case ResultList:
		return "list"
	case ResultSet:
		return "set"
	default:
		return "multiset"
	}
}

// Guard returns the equivalence the plans of a query with this result type
// must preserve (the ≡SQL of Definition 5.1), ignoring the ORDER BY
// refinement of the list case.
func (rt ResultType) Guard() Type {
	switch rt {
	case ResultList:
		return List
	case ResultSet:
		return Set
	default:
		return Multiset
	}
}

// CheckSQL implements the ≡SQL test of Definition 5.1: it reports whether
// two query results are interchangeable for a query with the given result
// type and ORDER BY list.
//
// For the list case the paper uses ≡L,A — agreement of the projections onto
// the ORDER BY list A; we additionally require multiset equality so that a
// "correct" plan cannot change the result's content off the A attributes
// (the paper's Definition 5.1 leaves that implicit; see DESIGN.md).
func CheckSQL(rt ResultType, orderBy relation.OrderSpec, a, b *relation.Relation) (bool, error) {
	switch rt {
	case ResultList:
		ok, err := Check(Multiset, a, b)
		if err != nil || !ok {
			return false, err
		}
		return ListOn(orderBy, a, b), nil
	case ResultSet:
		return Check(Set, a, b)
	default:
		return Check(Multiset, a, b)
	}
}
