package eval

import (
	"tqp/internal/algebra"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// evalUnionAll implements ⊔: concatenation of the argument lists. The
// result is unordered per Table 1 (we nevertheless produce the
// deterministic left-then-right list; "unordered" means no order guarantee
// is recorded for the optimizer).
func (e *Evaluator) evalUnionAll(n algebra.Node) (*relation.Relation, error) {
	l, r, err := e.evalBoth(n)
	if err != nil {
		return nil, err
	}
	out := relation.New(l.Schema())
	for _, t := range l.Tuples() {
		out.Append(t)
	}
	for _, t := range r.Tuples() {
		out.Append(t)
	}
	return out, nil
}

// evalUnion implements the multiset union ∪ of Albert [1]: a tuple occurs
// in the result as many times as it occurs in the argument with the most
// occurrences of it. The list form is all of r1 followed by the excess
// occurrences from r2 in their r2 order; the result is unordered.
func (e *Evaluator) evalUnion(n algebra.Node) (*relation.Relation, error) {
	l, r, err := e.evalBoth(n)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int, l.Len())
	for _, t := range l.Tuples() {
		counts[t.Key()]++
	}
	out := relation.New(l.Schema())
	for _, t := range l.Tuples() {
		out.Append(t)
	}
	for _, t := range r.Tuples() {
		k := t.Key()
		if counts[k] > 0 {
			counts[k]--
			continue
		}
		out.Append(t)
	}
	return out, nil
}

// evalProduct implements the conventional Cartesian product ×: a left-major
// pair loop. Result order is Order(r1) (renamed under qualification).
func (e *Evaluator) evalProduct(n algebra.Node) (*relation.Relation, error) {
	return e.evalProductFiltered(n, nil)
}

// evalProductFiltered implements × with an optional fused join predicate.
func (e *Evaluator) evalProductFiltered(n algebra.Node, p expr.Pred) (*relation.Relation, error) {
	l, r, err := e.evalBoth(n)
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	lw := l.Schema().Len()
	for _, lt := range l.Tuples() {
		for _, rt := range r.Tuples() {
			nt := make(relation.Tuple, lw+r.Schema().Len())
			copy(nt, lt)
			copy(nt[lw:], rt)
			if p != nil {
				ok, err := p.Holds(outSchema, nt)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out.Append(nt)
		}
	}
	out.SetOrder(OrderAfterProduct(l.Order(), r.Schema(), outSchema))
	return out, nil
}

// OrderAfterProduct maps the left argument's order spec into a product's
// result schema: time attributes and attributes clashing with the right
// argument acquire the "1." qualification; anything that still cannot be
// found in the result schema ends the preserved prefix.
func OrderAfterProduct(in relation.OrderSpec, right, outSchema *schema.Schema) relation.OrderSpec {
	var out relation.OrderSpec
	for _, k := range in {
		name := k.Attr
		if name == schema.T1 || name == schema.T2 || right.Has(name) {
			name = "1." + name
		}
		if !outSchema.Has(name) {
			break
		}
		out = append(out, relation.OrderKey{Attr: name, Dir: k.Dir})
	}
	return out
}

// evalDiff implements the multiset difference \: each tuple occurs
// max(n1(t)−n2(t), 0) times. The earliest occurrences in r1 are the ones
// cancelled, so the result retains the order (and the late duplicates) of
// r1. On temporal arguments the result is a snapshot relation (time
// attributes qualified); the tuple values are unchanged.
func (e *Evaluator) evalDiff(n algebra.Node) (*relation.Relation, error) {
	l, r, err := e.evalBoth(n)
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	budget := make(map[string]int, r.Len())
	for _, t := range r.Tuples() {
		budget[t.Key()]++
	}
	out := relation.New(outSchema)
	for _, t := range l.Tuples() {
		k := t.Key()
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out.Append(t)
	}
	out.SetOrder(OrderQualifyTime(l.Order(), outSchema))
	return out, nil
}

// OrderQualifyTime renames T1/T2 order keys to their "1."-qualified result
// names for operations whose snapshot result keeps periods as plain data.
func OrderQualifyTime(in relation.OrderSpec, outSchema *schema.Schema) relation.OrderSpec {
	var out relation.OrderSpec
	for _, k := range in {
		name := k.Attr
		if name == schema.T1 || name == schema.T2 {
			name = "1." + name
		}
		if !outSchema.Has(name) {
			break
		}
		out = append(out, relation.OrderKey{Attr: name, Dir: k.Dir})
	}
	return out
}

// evalRdup implements regular duplicate elimination rdup: the first
// occurrence of each tuple survives, so the order of the argument is
// retained. On temporal arguments the result is a snapshot relation with
// qualified time attributes (Figure 3, R2).
func (e *Evaluator) evalRdup(n algebra.Node) (*relation.Relation, error) {
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, in.Len())
	out := relation.New(outSchema)
	for _, t := range in.Tuples() {
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out.Append(t)
	}
	out.SetOrder(OrderQualifyTime(in.Order(), outSchema))
	return out, nil
}

// evalAggregate implements 𝒢 (and dispatches 𝒢ᵀ): group by the G
// attributes, emit one tuple per group in order of first occurrence, so the
// result order is Prefix(Order(r), GroupPairs) per Table 1.
func (e *Evaluator) evalAggregate(n *algebra.Aggregate) (*relation.Relation, error) {
	if n.Op() == algebra.OpTAggregate {
		return e.evalTAggregate(n)
	}
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	gidx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		gidx[i] = in.Schema().Index(g)
	}
	type group struct {
		rep  relation.Tuple
		accs []*expr.Accumulator
	}
	var orderKeys []string
	groups := make(map[string]*group)
	for _, t := range in.Tuples() {
		k := t.KeyOn(gidx)
		g, ok := groups[k]
		if !ok {
			g = &group{rep: t, accs: NewAccumulators(n.Aggs, in.Schema())}
			groups[k] = g
			orderKeys = append(orderKeys, k)
		}
		if err := FoldAggregates(g.accs, n.Aggs, in.Schema(), t); err != nil {
			return nil, err
		}
	}
	out := relation.New(outSchema)
	for _, k := range orderKeys {
		g := groups[k]
		nt := make(relation.Tuple, 0, outSchema.Len())
		for _, gi := range gidx {
			nt = append(nt, g.rep[gi])
		}
		for _, acc := range g.accs {
			nt = append(nt, acc.Result())
		}
		out.Append(nt)
	}
	out.SetOrder(OrderAfterGroup(in.Order(), n.GroupBy))
	return out, nil
}

// OrderAfterGroup computes Prefix(Order(r), GroupPairs).
func OrderAfterGroup(in relation.OrderSpec, groupBy []string) relation.OrderSpec {
	return in.Prefix(groupBy)
}

func NewAccumulators(aggs []expr.Aggregate, s *schema.Schema) []*expr.Accumulator {
	out := make([]*expr.Accumulator, len(aggs))
	for i, a := range aggs {
		isInt := false
		if a.Func == expr.Sum {
			if k, err := s.KindOf(a.Arg); err == nil && k == value.KindInt {
				isInt = true
			}
		}
		out[i] = expr.NewAccumulator(a.Func, isInt)
	}
	return out
}

func FoldAggregates(accs []*expr.Accumulator, aggs []expr.Aggregate, s *schema.Schema, t relation.Tuple) error {
	for i, a := range aggs {
		switch a.Func {
		case expr.CountAll:
			accs[i].Add(value.Value{})
		default:
			j := s.Index(a.Arg)
			accs[i].Add(t[j])
		}
	}
	return nil
}

func (e *Evaluator) evalBoth(n algebra.Node) (l, r *relation.Relation, err error) {
	ch := n.Children()
	l, err = e.Eval(ch[0])
	if err != nil {
		return nil, nil, err
	}
	r, err = e.Eval(ch[1])
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}
