package eval_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func snapSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
	)
}

func fixture() (eval.MapSource, algebra.Node, algebra.Node) {
	s := snapSchema()
	l := relation.MustFromRows(s, [][]any{
		{"a", 1}, {"b", 2}, {"a", 1}, {"c", 3},
	})
	r := relation.MustFromRows(s, [][]any{
		{"a", 1}, {"d", 4}, {"a", 1}, {"a", 1},
	})
	src := eval.MapSource{"L": l, "R": r}
	return src,
		algebra.NewRel("L", s, algebra.BaseInfo{}),
		algebra.NewRel("R", s, algebra.BaseInfo{})
}

func evalNode(t *testing.T, src eval.Source, n algebra.Node) *relation.Relation {
	t.Helper()
	out, err := eval.New(src).Eval(n)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func wantList(t *testing.T, got *relation.Relation, rows [][]any) {
	t.Helper()
	want := relation.MustFromRows(got.Schema(), rows)
	if !got.EqualAsList(want) {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

// TestUnionAllList: ⊔ concatenates, left list then right list.
func TestUnionAllList(t *testing.T) {
	src, l, r := fixture()
	got := evalNode(t, src, algebra.NewUnionAll(l, r))
	wantList(t, got, [][]any{
		{"a", 1}, {"b", 2}, {"a", 1}, {"c", 3},
		{"a", 1}, {"d", 4}, {"a", 1}, {"a", 1},
	})
}

// TestUnionMaxMultiplicity: ∪ keeps each tuple max(n1,n2) times — all of L,
// then R's excess occurrences in R's order (Albert's multiset union).
func TestUnionMaxMultiplicity(t *testing.T) {
	src, l, r := fixture()
	got := evalNode(t, src, algebra.NewUnion(l, r))
	// L has a×2; R has a×3 → one extra a; d is new.
	wantList(t, got, [][]any{
		{"a", 1}, {"b", 2}, {"a", 1}, {"c", 3},
		{"d", 4}, {"a", 1},
	})
}

// TestDiffCancelsEarliest: \ removes min(n1,n2) occurrences of each tuple,
// cancelling the earliest left occurrences so late duplicates survive in
// order.
func TestDiffCancelsEarliest(t *testing.T) {
	src, l, r := fixture()
	got := evalNode(t, src, algebra.NewDiff(l, r))
	// L = a,b,a,c; R has a×3 → both a's cancelled.
	wantList(t, got, [][]any{{"b", 2}, {"c", 3}})
	// And the other direction: R \ L keeps one a (3−2) and d.
	got = evalNode(t, src, algebra.NewDiff(r, l))
	wantList(t, got, [][]any{{"d", 4}, {"a", 1}})
}

// TestRdupKeepsFirst: rdup keeps first occurrences in order.
func TestRdupKeepsFirst(t *testing.T) {
	src, l, _ := fixture()
	got := evalNode(t, src, algebra.NewRdup(l))
	wantList(t, got, [][]any{{"a", 1}, {"b", 2}, {"c", 3}})
}

// TestProductLeftMajor: × enumerates pairs left-major, preserving both
// argument orders.
func TestProductLeftMajor(t *testing.T) {
	s := snapSchema()
	l := relation.MustFromRows(s, [][]any{{"x", 1}, {"y", 2}})
	r := relation.MustFromRows(schema.MustNew(schema.Attr("P", value.KindString)),
		[][]any{{"p"}, {"q"}})
	src := eval.MapSource{"L": l, "R": r}
	got := evalNode(t, src,
		algebra.NewProduct(
			algebra.NewRel("L", l.Schema(), algebra.BaseInfo{}),
			algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})))
	wantList(t, got, [][]any{
		{"x", 1, "p"}, {"x", 1, "q"},
		{"y", 2, "p"}, {"y", 2, "q"},
	})
}

// TestAggregateGroupsInFirstSeenOrder: 𝒢 emits one tuple per group in
// first-occurrence order with correct aggregate values.
func TestAggregateGroupsInFirstSeenOrder(t *testing.T) {
	src, l, _ := fixture()
	got := evalNode(t, src, algebra.NewAggregate(
		[]string{"Name"},
		[]expr.Aggregate{
			{Func: expr.CountAll, As: "cnt"},
			{Func: expr.Sum, Arg: "Grp", As: "total"},
		}, l))
	wantList(t, got, [][]any{
		{"a", 2, 2},
		{"b", 1, 2},
		{"c", 1, 3},
	})
}

// TestSelectOrderRetention: σ over a sorted relation keeps the order spec.
func TestSelectOrderRetention(t *testing.T) {
	s := snapSchema()
	l := relation.MustFromRows(s, [][]any{{"a", 1}, {"b", 2}, {"c", 3}})
	src := eval.MapSource{"L": l}
	spec := relation.OrderSpec{relation.Key("Name")}
	node := algebra.NewSelect(
		expr.Compare(expr.Ne, expr.Column("Name"), expr.Literal(value.String_("b"))),
		algebra.NewRel("L", s, algebra.BaseInfo{Order: spec}))
	got := evalNode(t, src, node)
	if !got.Order().Equal(spec) {
		t.Errorf("σ should retain order %s, got %s", spec, got.Order())
	}
	wantList(t, got, [][]any{{"a", 1}, {"c", 3}})
}

// TestProjectionComputes: generalized projection evaluates expressions and
// renames.
func TestProjectionComputes(t *testing.T) {
	src, l, _ := fixture()
	got := evalNode(t, src, algebra.NewProject([]algebra.ProjItem{
		{Expr: expr.Column("Name"), As: "Who"},
		{Expr: expr.Arith{Op: expr.Mul, L: expr.Column("Grp"), R: expr.Literal(value.Int(10))}, As: "Tens"},
	}, l))
	wantList(t, got, [][]any{
		{"a", 10}, {"b", 20}, {"a", 10}, {"c", 30},
	})
}

// TestEvalErrorsPropagate: unknown relations and failing predicates surface
// as errors, not panics.
func TestEvalErrorsPropagate(t *testing.T) {
	src, l, _ := fixture()
	ghost := algebra.NewRel("GHOST", snapSchema(), algebra.BaseInfo{})
	if _, err := eval.New(src).Eval(ghost); err == nil {
		t.Error("unknown relation must fail")
	}
	divZero := algebra.NewSelect(
		expr.Compare(expr.Gt,
			expr.Arith{Op: expr.Div, L: expr.Column("Grp"), R: expr.Literal(value.Int(0))},
			expr.Literal(value.Int(1))), l)
	if _, err := eval.New(src).Eval(divZero); err == nil {
		t.Error("division by zero must fail")
	}
	// Schema drift between plan and instance.
	drifted := algebra.NewRel("L", schema.MustNew(schema.Attr("Other", value.KindInt)), algebra.BaseInfo{})
	if _, err := eval.New(src).Eval(drifted); err == nil {
		t.Error("schema mismatch must fail")
	}
}
