// Package eval implements the reference evaluator of the algebra: a direct,
// list-semantics implementation of every operation of Section 2.4, faithful
// to the paper's definitions including tuple order, duplicate handling, and
// coalescing behaviour (Table 1).
//
// The evaluator is deliberately straightforward — it is the executable
// specification against which transformation rules, property inference and
// the stratum executor are verified. Temporal operations are implemented
// with exact snapshot-reducible semantics and deterministic list output.
package eval

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/expr"
	"tqp/internal/relation"
)

// Source resolves base-relation names to instances; the catalog implements
// it.
type Source interface {
	Resolve(name string) (*relation.Relation, error)
}

// MapSource is a trivial Source over a map, for tests and examples.
type MapSource map[string]*relation.Relation

// Resolve implements Source.
func (m MapSource) Resolve(name string) (*relation.Relation, error) {
	r, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("eval: unknown relation %q", name)
	}
	return r, nil
}

// Engine evaluates operator trees to relations. Two implementations exist:
// the reference Evaluator of this package (the executable specification) and
// the streaming hash-based engine of package exec. Both produce identical
// result lists — exec is verified against the evaluator by differential
// testing — so they are interchangeable wherever a plan is run.
type Engine interface {
	Eval(n algebra.Node) (*relation.Relation, error)
}

// Factory constructs an engine over a tuple source. The stratum executor
// materializes intermediate results per node and re-binds them as base
// relations, so it needs a factory rather than a single engine instance.
type Factory func(src Source) Engine

// EngineSpec names a physical engine and carries what the executor and the
// cost model need to know about it.
type EngineSpec struct {
	// Name identifies the engine ("reference" or "exec").
	Name string
	// New constructs an engine over a source.
	New Factory
	// Streaming reports that the engine uses hash/one-pass physical
	// operators, changing the stratum's cost shapes from pairwise and
	// log-factor formulas to linear ones.
	Streaming bool
	// OrderAware reports that the engine compiles the order-exploiting
	// physical variants (merge operators, sort elision) when its inputs'
	// delivered orders allow. The cost model and the stratum meter price
	// those variants only for engines that actually compile them.
	OrderAware bool
	// Parallelism is the worker count of a morsel-parallel engine (exec's
	// ParallelSpec); 0 or 1 means sequential execution. The cost model uses
	// it to price partitioned operators as per-partition work plus exchange
	// and gather charges.
	Parallelism int
	// MemoryBudget is the working-set byte bound of a memory-bounded engine
	// (exec's BudgetedSpec); 0 means unlimited. The cost model uses it to
	// price grace-hash spilling (SpillWrite/SpillRead per tuple) on
	// operators whose estimated state exceeds the per-worker budget share,
	// so the optimizer can trade sorts against spilling hash operators.
	MemoryBudget int64
	// Vectorized reports that the engine runs the columnar batch pipeline:
	// parallel exchanges scatter batch views over shared column planes
	// instead of copying tuples, and budgeted operators write spill
	// partitions as columnar blocks without materializing rows. The cost
	// model scales its per-tuple exchange and spill prices down accordingly
	// (cost.Params VecExchangeFactor/VecSpillFactor).
	Vectorized bool
}

// Instantiate constructs a fresh engine over src from the spec — the
// per-query instantiation path: holders share one immutable EngineSpec (the
// server's sessions, the stratum executor) and build a private engine per
// evaluation, so no engine state is ever shared across concurrent queries.
// A zero spec (nil New) instantiates the reference evaluator.
func (s EngineSpec) Instantiate(src Source) Engine {
	if s.New == nil {
		return New(src)
	}
	return s.New(src)
}

// Reference returns the spec of this package's reference evaluator.
func Reference() EngineSpec {
	return EngineSpec{
		Name:      "reference",
		New:       func(src Source) Engine { return New(src) },
		Streaming: false,
	}
}

// Evaluator evaluates operator trees against a Source.
type Evaluator struct {
	src Source
}

// New returns an evaluator over src.
func New(src Source) *Evaluator { return &Evaluator{src: src} }

// Eval evaluates the tree rooted at n and returns its result relation. The
// result's Order() reflects the order guarantee of Table 1.
func (e *Evaluator) Eval(n algebra.Node) (*relation.Relation, error) {
	switch node := n.(type) {
	case *algebra.Rel:
		return e.evalRel(node)
	case *algebra.Select:
		return e.evalSelect(node)
	case *algebra.Project:
		return e.evalProject(node)
	case *algebra.Aggregate:
		return e.evalAggregate(node)
	case *algebra.Sort:
		return e.evalSort(node)
	case *algebra.Join:
		return e.evalJoin(node)
	}
	switch n.Op() {
	case algebra.OpUnionAll:
		return e.evalUnionAll(n)
	case algebra.OpUnion:
		return e.evalUnion(n)
	case algebra.OpTUnion:
		return e.evalTUnion(n)
	case algebra.OpProduct:
		return e.evalProduct(n)
	case algebra.OpTProduct:
		return e.evalTProduct(n, nil)
	case algebra.OpDiff:
		return e.evalDiff(n)
	case algebra.OpTDiff:
		return e.evalTDiff(n)
	case algebra.OpRdup:
		return e.evalRdup(n)
	case algebra.OpTRdup:
		return e.evalTRdup(n)
	case algebra.OpCoal:
		return e.evalCoal(n)
	case algebra.OpTransferS, algebra.OpTransferD:
		// In the reference evaluator, transfers are identities on data;
		// their cost and site semantics live in the stratum executor.
		return e.Eval(n.Children()[0])
	default:
		return nil, fmt.Errorf("eval: unsupported operator %s", n.Op())
	}
}

func (e *Evaluator) evalRel(n *algebra.Rel) (*relation.Relation, error) {
	r, err := e.src.Resolve(n.Name)
	if err != nil {
		return nil, err
	}
	if !r.Schema().Equal(n.Sch) {
		return nil, fmt.Errorf("eval: relation %q schema mismatch: plan %s vs instance %s",
			n.Name, n.Sch, r.Schema())
	}
	out := r.Clone()
	if !n.Info.Order.Empty() {
		out.SetOrder(n.Info.Order)
	}
	return out, nil
}

// evalSelect implements σ_P: retains order, duplicates and coalescing.
func (e *Evaluator) evalSelect(n *algebra.Select) (*relation.Relation, error) {
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	out := relation.New(in.Schema())
	for _, t := range in.Tuples() {
		ok, err := n.P.Holds(in.Schema(), t)
		if err != nil {
			return nil, err
		}
		if ok {
			out.Append(t)
		}
	}
	out.SetOrder(in.Order())
	return out, nil
}

// evalProject implements the generalized projection π. Result order is
// Prefix(Order(r), ProjPairs): the largest prefix of the argument's order
// whose attributes survive the projection (identity or pure-rename items).
func (e *Evaluator) evalProject(n *algebra.Project) (*relation.Relation, error) {
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	out := relation.New(outSchema)
	for _, t := range in.Tuples() {
		nt := make(relation.Tuple, len(n.Items))
		for i, it := range n.Items {
			v, err := it.Expr.Eval(in.Schema(), t)
			if err != nil {
				return nil, err
			}
			nt[i] = v
		}
		out.Append(nt)
	}
	out.SetOrder(OrderAfterProject(in.Order(), n))
	return out, nil
}

// OrderAfterProject computes Prefix(Order(r), ProjPairs), following renames of
// pure column items: an order key survives while its source attribute is
// projected as a plain column (possibly under a new name).
func OrderAfterProject(in relation.OrderSpec, n *algebra.Project) relation.OrderSpec {
	rename := make(map[string]string) // source attr -> output name
	for _, it := range n.Items {
		if col, ok := it.Expr.(expr.Col); ok {
			if _, seen := rename[col.Name]; !seen {
				rename[col.Name] = it.As
			}
		}
	}
	var out relation.OrderSpec
	for _, k := range in {
		newName, ok := rename[k.Attr]
		if !ok {
			break
		}
		out = append(out, relation.OrderKey{Attr: newName, Dir: k.Dir})
	}
	return out
}

// evalSort implements sort_A via a stable sort; stability preserves the
// relative order of tuples equal under the spec, so sorting "retains
// duplicates" and the special case of Table 1 — sorting on a prefix of
// Order(r) keeps the full order — holds operationally.
func (e *Evaluator) evalSort(n *algebra.Sort) (*relation.Relation, error) {
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	out := in.Clone()
	if err := out.SortStable(n.Spec); err != nil {
		return nil, err
	}
	if n.Spec.IsPrefixOf(in.Order()) {
		// Special case of Table 1: the argument was already sorted on a
		// list extending the requested one; the stronger order survives.
		out.SetOrder(in.Order())
	}
	return out, nil
}

// evalJoin evaluates the join idioms by their defining expansion, fusing
// the selection into the pair loop.
func (e *Evaluator) evalJoin(n *algebra.Join) (*relation.Relation, error) {
	if n.Op() == algebra.OpTJoin {
		return e.evalTProduct(n.Expand().Children()[0], n.P)
	}
	expanded := n.Expand()
	sel := expanded.(*algebra.Select)
	prod := sel.Children()[0]
	return e.evalProductFiltered(prod, n.P)
}
