package eval_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// figure3Input builds R1 = π_{EmpName,T1,T2}(EMPLOYEE) of Figure 3.
func figure3Input(t *testing.T) (*eval.Evaluator, algebra.Node) {
	t.Helper()
	c := catalog.Paper()
	return eval.New(c), catalog.PaperProjection(c.MustNode("EMPLOYEE"))
}

func mustEval(t *testing.T, e *eval.Evaluator, n algebra.Node) *relation.Relation {
	t.Helper()
	r, err := e.Eval(n)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return r
}

func wantRows(t *testing.T, got *relation.Relation, s *schema.Schema, rows [][]any) {
	t.Helper()
	want := relation.MustFromRows(s, rows)
	if !got.Schema().Equal(s) {
		t.Fatalf("schema = %s, want %s", got.Schema(), s)
	}
	if !got.EqualAsList(want) {
		t.Fatalf("result:\n%s\nwant:\n%s", got, want)
	}
}

// TestFigure3R1 pins the projected EMPLOYEE relation R1 exactly.
func TestFigure3R1(t *testing.T) {
	e, r1 := figure3Input(t)
	got := mustEval(t, e, r1)
	s := schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	wantRows(t, got, s, [][]any{
		{"John", 1, 8},
		{"John", 6, 11},
		{"Anna", 2, 6},
		{"Anna", 2, 6},
		{"Anna", 6, 12},
	})
	if !got.Temporal() {
		t.Error("R1 must be temporal")
	}
	if got.IsCoalesced() {
		t.Error("R1 is not coalesced: Anna's [2,6) and [6,12) are adjacent")
	}
	if !got.HasSnapshotDuplicates() {
		t.Error("R1 has temporal duplicates: John at time 6")
	}
}

// TestFigure3R2 pins R2 = rdup(R1): one Anna [2,6) tuple removed, time
// attributes renamed 1.T1/1.T2 because the result of regular duplicate
// elimination is a snapshot relation.
func TestFigure3R2(t *testing.T) {
	e, r1 := figure3Input(t)
	got := mustEval(t, e, algebra.NewRdup(r1))
	s := schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr("1.T1", value.KindTime),
		schema.Attr("1.T2", value.KindTime))
	wantRows(t, got, s, [][]any{
		{"John", 1, 8},
		{"John", 6, 11},
		{"Anna", 2, 6},
		{"Anna", 6, 12},
	})
	if got.Temporal() {
		t.Error("R2 must be a snapshot relation")
	}
}

// TestFigure3R3 pins R3 = rdupᵀ(R1): John's second period is cut to [8,11)
// and Anna's duplicate [2,6) disappears, exactly the paper's relation.
func TestFigure3R3(t *testing.T) {
	e, r1 := figure3Input(t)
	got := mustEval(t, e, algebra.NewTRdup(r1))
	s := schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	wantRows(t, got, s, [][]any{
		{"John", 1, 8},
		{"John", 8, 11},
		{"Anna", 2, 6},
		{"Anna", 6, 12},
	})
	if got.HasSnapshotDuplicates() {
		t.Error("R3 must be free of duplicates in snapshots")
	}
}

// TestFigure3Equivalences pins Section 3's worked equivalence claims:
// R1 ≡S R2 only (ignoring snapshot types, undefined across temporal and
// snapshot relations), and R1 ≡SS R3 only.
func TestFigure3Equivalences(t *testing.T) {
	e, r1n := figure3Input(t)
	r1 := mustEval(t, e, r1n)
	r3 := mustEval(t, e, algebra.NewTRdup(r1n))

	for _, c := range []struct {
		typ  equiv.Type
		want bool
	}{
		{equiv.List, false},
		{equiv.Multiset, false},
		{equiv.Set, false},
		{equiv.SnapshotList, false},
		{equiv.SnapshotMultiset, false},
		{equiv.SnapshotSet, true},
	} {
		got, err := equiv.Check(c.typ, r1, r3)
		if err != nil {
			t.Fatalf("Check(%s): %v", c.typ, err)
		}
		if got != c.want {
			t.Errorf("R1 %s R3 = %v, want %v", c.typ, got, c.want)
		}
	}

	// R2 has a different (snapshot) schema; the paper compares tuple
	// content: R1 and R2 hold the same tuples as sets. We verify via the
	// renamed schema: rebuild R2 under the temporal schema.
	r2 := mustEval(t, e, algebra.NewRdup(r1n))
	r2t := relation.New(r1.Schema())
	for _, tp := range r2.Tuples() {
		r2t.Append(tp)
	}
	for _, c := range []struct {
		typ  equiv.Type
		want bool
	}{
		{equiv.List, false},
		{equiv.Multiset, false},
		{equiv.Set, true},
	} {
		got, err := equiv.Check(c.typ, r1, r2t)
		if err != nil {
			t.Fatalf("Check(%s): %v", c.typ, err)
		}
		if got != c.want {
			t.Errorf("R1 %s R2 = %v, want %v", c.typ, got, c.want)
		}
	}
}

func resultSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
}

// TestFigure1ResultInitialPlan evaluates the initial plan of Figure 2(a)
// and pins the exact Result relation of Figure 1.
func TestFigure1ResultInitialPlan(t *testing.T) {
	c := catalog.Paper()
	e := eval.New(c)
	got := mustEval(t, e, catalog.PaperInitialPlan(c))
	wantRows(t, got, resultSchema(), catalog.PaperResultRows())
	if got.HasSnapshotDuplicates() {
		t.Error("result must be snapshot-duplicate-free")
	}
	if !got.IsCoalesced() {
		t.Error("result must be coalesced")
	}
	if !got.SortedBy(relation.OrderSpec{relation.Key("EmpName")}) {
		t.Error("result must be sorted by EmpName")
	}
}

// TestFigure1ResultAcrossPlans evaluates the intermediate (Figure 6(a)) and
// optimized (Figure 6(b)) plans; all three must produce the same list here,
// and in general must be ≡SQL-equivalent for a list result ordered by
// EmpName.
func TestFigure1ResultAcrossPlans(t *testing.T) {
	c := catalog.Paper()
	e := eval.New(c)
	initial := mustEval(t, e, catalog.PaperInitialPlan(c))
	mid := mustEval(t, e, catalog.PaperIntermediatePlan(c))
	final := mustEval(t, e, catalog.PaperOptimizedPlan(c))

	wantRows(t, mid, resultSchema(), catalog.PaperResultRows())
	wantRows(t, final, resultSchema(), catalog.PaperResultRows())

	orderBy := relation.OrderSpec{relation.Key("EmpName")}
	for name, r := range map[string]*relation.Relation{"6(a)": mid, "6(b)": final} {
		ok, err := equiv.CheckSQL(equiv.ResultList, orderBy, initial, r)
		if err != nil {
			t.Fatalf("CheckSQL(%s): %v", name, err)
		}
		if !ok {
			t.Errorf("plan %s is not ≡SQL to the initial plan", name)
		}
	}

	// The optimized plan needs no final sort: the temporal difference
	// retains its left argument's EmpName order.
	if !final.SortedBy(orderBy) {
		t.Error("optimized plan's result must arrive sorted by EmpName")
	}
}
