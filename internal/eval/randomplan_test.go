package eval_test

import (
	"math/rand"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/datagen"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/props"
	"tqp/internal/relation"
	"tqp/internal/value"
)

// randomPlan builds a random type-correct, schema-preserving plan of
// bounded depth over the given temporal base relations (all operators here
// keep the bases' schema, so binary set operations always type-check); the
// caller may additionally cap the plan with a schema-changing temporal
// aggregation.
func randomPlan(rng *rand.Rand, bases []algebra.Node, depth int) algebra.Node {
	if depth <= 0 {
		return bases[rng.Intn(len(bases))]
	}
	child := func() algebra.Node { return randomPlan(rng, bases, depth-1) }
	pred := expr.Compare(expr.Lt, expr.Column("Grp"), expr.Literal(value.Int(int64(rng.Intn(4)))))
	byName := relation.OrderSpec{relation.Key("Name")}
	switch rng.Intn(9) {
	case 0:
		return algebra.NewSelect(pred, child())
	case 1:
		return algebra.NewProjectCols(child(), "Name", "Grp", "T1", "T2")
	case 2:
		return algebra.NewSort(byName, child())
	case 3:
		return algebra.NewTRdup(child())
	case 4:
		return algebra.NewCoal(child())
	case 5:
		return algebra.NewUnionAll(child(), child())
	case 6:
		return algebra.NewTUnion(child(), child())
	case 7:
		return algebra.NewTDiff(child(), child())
	default:
		return algebra.NewSelect(pred, algebra.NewSort(byName, child()))
	}
}

// TestRandomPlanInvariants generates hundreds of random temporal plans and
// checks the invariants that hold for every evaluation:
//
//  1. the result conforms to the node's derived schema;
//  2. the order the evaluator records actually holds (Table 1's order
//     column is truthful);
//  3. every static claim of props.InferStates (order, distinctness,
//     snapshot-distinctness, coalescedness) holds dynamically — static
//     implies dynamic, the planner's soundness contract.
func TestRandomPlanInvariants(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := catalog.New()
		for i, spec := range []datagen.TemporalSpec{
			{Rows: 8, Values: 3, DupFrac: 0.25, AdjFrac: 0.25, Seed: seed},
			{Rows: 6, Values: 3, DupFrac: 0.1, AdjFrac: 0.4, Seed: seed + 100},
		} {
			r := datagen.Temporal(spec)
			info := algebra.BaseInfo{
				Distinct:         !r.HasDuplicates(),
				SnapshotDistinct: !r.HasSnapshotDuplicates(),
				Coalesced:        r.IsCoalesced(),
			}
			name := []string{"A", "B"}[i]
			if err := c.Add(name, r, info); err != nil {
				t.Fatal(err)
			}
		}
		bases := []algebra.Node{c.MustNode("A"), c.MustNode("B")}
		ev := eval.New(c)

		for trial := 0; trial < 8; trial++ {
			plan := randomPlan(rng, bases, 2+rng.Intn(2))
			if rng.Intn(4) == 0 {
				plan = algebra.NewTAggregate([]string{"Name"},
					[]expr.Aggregate{{Func: expr.CountAll, As: "cnt"}}, plan)
			}
			if err := algebra.Validate(plan); err != nil {
				t.Fatalf("seed %d: generator produced an invalid plan: %v", seed, err)
			}
			st, err := props.InferStates(plan)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			var check func(n algebra.Node)
			check = func(n algebra.Node) {
				for _, ch := range n.Children() {
					check(ch)
				}
				out, err := ev.Eval(n)
				if err != nil {
					t.Fatalf("seed %d: eval %s: %v", seed, algebra.Canonical(n), err)
				}
				wantSchema, err := n.Schema()
				if err != nil {
					t.Fatal(err)
				}
				if !out.Schema().Equal(wantSchema) {
					t.Fatalf("seed %d: %s result schema %s ≠ derived %s",
						seed, n.Label(), out.Schema(), wantSchema)
				}
				if !out.SortedBy(out.Order()) {
					t.Fatalf("seed %d: %s claims order %s but the list is not sorted",
						seed, algebra.Canonical(n), out.Order())
				}
				s := st[n]
				if !s.Order.Empty() && !out.SortedBy(s.Order) {
					t.Fatalf("seed %d: static order %s of %s does not hold",
						seed, s.Order, algebra.Canonical(n))
				}
				if s.Distinct && out.HasDuplicates() {
					t.Fatalf("seed %d: static Distinct of %s is wrong", seed, algebra.Canonical(n))
				}
				if s.SnapshotDistinct && out.HasSnapshotDuplicates() {
					t.Fatalf("seed %d: static SnapshotDistinct of %s is wrong", seed, algebra.Canonical(n))
				}
				if s.Coalesced && out.Temporal() && !out.IsCoalesced() {
					t.Fatalf("seed %d: static Coalesced of %s is wrong", seed, algebra.Canonical(n))
				}
			}
			check(plan)
		}
	}
}
