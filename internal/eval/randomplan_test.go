package eval_test

import (
	"math/rand"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/props"
	"tqp/internal/testutil"
)

// TestRandomPlanInvariants generates hundreds of random conventional and
// temporal plans (shared generator: internal/testutil) and checks the
// invariants that hold for every evaluation:
//
//  1. the result conforms to the node's derived schema;
//  2. the order the evaluator records actually holds (Table 1's order
//     column is truthful);
//  3. every static claim of props.InferStates (order, distinctness,
//     snapshot-distinctness, coalescedness) holds dynamically — static
//     implies dynamic, the planner's soundness contract.
func TestRandomPlanInvariants(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalog(seed)
		ev := eval.New(c)

		for trial := 0; trial < 8; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			if err := algebra.Validate(plan); err != nil {
				t.Fatalf("seed %d: generator produced an invalid plan: %v", seed, err)
			}
			st, err := props.InferStates(plan)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			var check func(n algebra.Node)
			check = func(n algebra.Node) {
				for _, ch := range n.Children() {
					check(ch)
				}
				out, err := ev.Eval(n)
				if err != nil {
					t.Fatalf("seed %d: eval %s: %v", seed, algebra.Canonical(n), err)
				}
				wantSchema, err := n.Schema()
				if err != nil {
					t.Fatal(err)
				}
				if !out.Schema().Equal(wantSchema) {
					t.Fatalf("seed %d: %s result schema %s ≠ derived %s",
						seed, n.Label(), out.Schema(), wantSchema)
				}
				if !out.SortedBy(out.Order()) {
					t.Fatalf("seed %d: %s claims order %s but the list is not sorted",
						seed, algebra.Canonical(n), out.Order())
				}
				s := st[n]
				if !s.Order.Empty() && !out.SortedBy(s.Order) {
					t.Fatalf("seed %d: static order %s of %s does not hold",
						seed, s.Order, algebra.Canonical(n))
				}
				if s.Distinct && out.HasDuplicates() {
					t.Fatalf("seed %d: static Distinct of %s is wrong", seed, algebra.Canonical(n))
				}
				if s.SnapshotDistinct && out.HasSnapshotDuplicates() {
					t.Fatalf("seed %d: static SnapshotDistinct of %s is wrong", seed, algebra.Canonical(n))
				}
				if s.Coalesced && out.Temporal() && !out.IsCoalesced() {
					t.Fatalf("seed %d: static Coalesced of %s is wrong", seed, algebra.Canonical(n))
				}
			}
			check(plan)
		}
	}
}
