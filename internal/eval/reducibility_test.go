package eval_test

import (
	"fmt"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/datagen"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/relation"
)

// snapshotReducibilityCase pairs a temporal operation with its conventional
// counterpart for the Section 2.2 test: for every instant t,
// snap(opᵀ(r), t) ≡M op(snap(r, t)).
type snapshotReducibilityCase struct {
	name string
	// temporal builds the temporal operation over temporal inputs.
	temporal func(l, r algebra.Node) algebra.Node
	// conventional builds the counterpart over snapshot inputs.
	conventional func(l, r algebra.Node) algebra.Node
	binary       bool
	// project trims the temporal result's snapshot to make the schemas
	// comparable (×ᵀ retains qualified argument timestamps as data).
	project func(snap *relation.Relation) *relation.Relation
}

func reducibilityCases() []snapshotReducibilityCase {
	aggs := []expr.Aggregate{
		{Func: expr.CountAll, As: "cnt"},
		{Func: expr.Min, Arg: "Grp", As: "mn"},
		{Func: expr.Sum, Arg: "Grp", As: "sm"},
	}
	return []snapshotReducibilityCase{
		{
			name:         "rdupT",
			temporal:     func(l, _ algebra.Node) algebra.Node { return algebra.NewTRdup(l) },
			conventional: func(l, _ algebra.Node) algebra.Node { return algebra.NewRdup(l) },
		},
		{
			name:         "diffT",
			temporal:     func(l, r algebra.Node) algebra.Node { return algebra.NewTDiff(l, r) },
			conventional: func(l, r algebra.Node) algebra.Node { return algebra.NewDiff(l, r) },
			binary:       true,
		},
		{
			name:         "unionT",
			temporal:     func(l, r algebra.Node) algebra.Node { return algebra.NewTUnion(l, r) },
			conventional: func(l, r algebra.Node) algebra.Node { return algebra.NewUnion(l, r) },
			binary:       true,
		},
		{
			name: "aggrT",
			temporal: func(l, _ algebra.Node) algebra.Node {
				return algebra.NewTAggregate([]string{"Name"}, aggs, l)
			},
			conventional: func(l, _ algebra.Node) algebra.Node {
				return algebra.NewAggregate([]string{"Name"}, aggs, l)
			},
		},
		{
			name: "productT",
			temporal: func(l, r algebra.Node) algebra.Node {
				// Project away the retained argument timestamps so that the
				// snapshot matches the conventional product of snapshots.
				prod := algebra.NewTProduct(l, r)
				s, err := prod.Schema()
				if err != nil {
					panic(err)
				}
				drop := map[string]bool{"1.T1": true, "1.T2": true, "2.T1": true, "2.T2": true}
				var keep []string
				for _, a := range s.Attributes() {
					if !drop[a.Name] {
						keep = append(keep, a.Name)
					}
				}
				return algebra.NewProjectCols(prod, keep...)
			},
			conventional: func(l, r algebra.Node) algebra.Node { return algebra.NewProduct(l, r) },
			binary:       true,
		},
	}
}

// TestSnapshotReducibility is the defining property of the temporal
// operations (Section 2.2): conceptually they evaluate their conventional
// counterpart at each point of time. We verify, for randomized inputs and
// at one witness instant per elementary interval, that the snapshot of the
// temporal result is multiset-equal to the counterpart applied to the
// snapshots of the arguments.
func TestSnapshotReducibility(t *testing.T) {
	for _, tc := range reducibilityCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 30; seed++ {
				l := datagen.Temporal(datagen.TemporalSpec{
					Rows: 10, Values: 3, DupFrac: 0.25, AdjFrac: 0.25, Seed: seed,
				})
				r := datagen.Temporal(datagen.TemporalSpec{
					Rows: 8, Values: 3, DupFrac: 0.25, AdjFrac: 0.25, Seed: seed + 500,
				})
				if err := checkReducibility(tc, l, r); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func checkReducibility(tc snapshotReducibilityCase, l, r *relation.Relation) error {
	src := eval.MapSource{"L": l, "R": r}
	ev := eval.New(src)
	ln := algebra.NewRel("L", l.Schema(), algebra.BaseInfo{})
	rn := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})

	tempOut, err := ev.Eval(tc.temporal(ln, rn))
	if err != nil {
		return fmt.Errorf("temporal eval: %v", err)
	}

	ps := append(l.Periods(), r.Periods()...)
	ps = append(ps, tempOut.Periods()...)
	for _, w := range period.Witnesses(ps) {
		snapL, snapR := l.Snapshot(w), r.Snapshot(w)
		snapSrc := eval.MapSource{"SL": snapL, "SR": snapR}
		sn := algebra.NewRel("SL", snapL.Schema(), algebra.BaseInfo{})
		srn := algebra.NewRel("SR", snapR.Schema(), algebra.BaseInfo{})
		want, err := eval.New(snapSrc).Eval(tc.conventional(sn, srn))
		if err != nil {
			return fmt.Errorf("conventional eval at %d: %v", w, err)
		}
		got := tempOut.Snapshot(w)
		ok, err := equiv.Check(equiv.Multiset, got, renamed(want, got))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("at instant %d: snap(opT(r)) ≠M op(snap(r)):\ngot\n%s\nwant\n%s",
				w, got, want)
		}
	}
	return nil
}

// renamed rebuilds want's tuples under got's schema when the two agree in
// arity and domains but differ in attribute names (conventional
// counterparts rename time attributes; snapshots drop them differently).
func renamed(want, got *relation.Relation) *relation.Relation {
	ws, gs := want.Schema(), got.Schema()
	if ws.Equal(gs) || ws.Len() != gs.Len() {
		return want
	}
	for i := 0; i < ws.Len(); i++ {
		if ws.At(i).Kind != gs.At(i).Kind {
			return want
		}
	}
	out := relation.New(gs)
	for _, tp := range want.Tuples() {
		out.Append(tp)
	}
	return out
}

// TestTRdupIdempotent: rdupᵀ is idempotent, and its output never has
// duplicates in snapshots.
func TestTRdupIdempotent(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: 12, Values: 3, DupFrac: 0.3, AdjFrac: 0.3, Seed: seed,
		})
		src := eval.MapSource{"R": r}
		ev := eval.New(src)
		node := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
		once, err := ev.Eval(algebra.NewTRdup(node))
		if err != nil {
			t.Fatal(err)
		}
		if once.HasSnapshotDuplicates() {
			t.Fatalf("seed %d: rdupT output has snapshot duplicates:\n%s", seed, once)
		}
		src2 := eval.MapSource{"O": once}
		twice, err := eval.New(src2).Eval(algebra.NewTRdup(algebra.NewRel("O", once.Schema(), algebra.BaseInfo{})))
		if err != nil {
			t.Fatal(err)
		}
		if !once.EqualAsList(twice) {
			t.Fatalf("seed %d: rdupT is not idempotent", seed)
		}
	}
}

// TestCoalProperties: coalescing never changes any snapshot (rule C2's
// ground truth), is idempotent, and enforces adjacency-freeness.
func TestCoalProperties(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: 12, Values: 3, DupFrac: 0.2, AdjFrac: 0.5, Seed: seed,
		})
		src := eval.MapSource{"R": r}
		ev := eval.New(src)
		node := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
		coal, err := ev.Eval(algebra.NewCoal(node))
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := equiv.Check(equiv.SnapshotMultiset, r, coal); err != nil || !ok {
			t.Fatalf("seed %d: coalT changed some snapshot (err=%v)", seed, err)
		}
		if !coal.IsCoalesced() {
			t.Fatalf("seed %d: coalT output is not coalesced:\n%s", seed, coal)
		}
		src2 := eval.MapSource{"C": coal}
		again, err := eval.New(src2).Eval(algebra.NewCoal(algebra.NewRel("C", coal.Schema(), algebra.BaseInfo{})))
		if err != nil {
			t.Fatal(err)
		}
		if !coal.EqualAsList(again) {
			t.Fatalf("seed %d: coalT is not idempotent", seed)
		}
	}
}

// TestCanonicalization: coalT ∘ rdupT produces the same set of tuples for
// any snapshot-equivalent inputs — the canonicity that lets periods go
// unpreserved below coalescing (Section 5.2).
func TestCanonicalization(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: 10, Values: 3, DupFrac: 0.3, AdjFrac: 0.4, Seed: seed,
		})
		// A snapshot-equivalent variant: fragment every tuple at its period
		// midpoint.
		t1, t2 := r.Schema().TimeIndices()
		frag := relation.New(r.Schema())
		for i, tp := range r.Tuples() {
			p := r.PeriodOf(i)
			if p.Duration() >= 2 {
				mid := p.Start + period.Chronon(p.Duration()/2)
				frag.Append(tp.WithPeriodAt(t1, t2, period.New(p.Start, mid)))
				frag.Append(tp.WithPeriodAt(t1, t2, period.New(mid, p.End)))
			} else {
				frag.Append(tp)
			}
		}
		if ok, _ := equiv.Check(equiv.SnapshotMultiset, r, frag); !ok {
			t.Fatalf("seed %d: fragmentation should preserve snapshots", seed)
		}

		canon := func(in *relation.Relation) *relation.Relation {
			src := eval.MapSource{"X": in}
			out, err := eval.New(src).Eval(
				algebra.NewCoal(algebra.NewTRdup(algebra.NewRel("X", in.Schema(), algebra.BaseInfo{}))))
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		a, b := canon(r), canon(frag)
		if ok, _ := equiv.Check(equiv.Multiset, a, b); !ok {
			t.Fatalf("seed %d: coalT∘rdupT is not canonical across snapshot-equivalent inputs:\n%s\nvs\n%s",
				seed, a, b)
		}
	}
}
