package eval

import (
	"tqp/internal/algebra"
	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/value"
)

// evalTProduct implements the temporal Cartesian product ×ᵀ: every pair of
// tuples with overlapping periods joins; the result retains both argument
// timestamps under qualified names and carries the intersection period as
// its own T1/T2 (Section 4.3). An optional fused predicate implements the
// temporal-join idiom.
func (e *Evaluator) evalTProduct(n algebra.Node, p expr.Pred) (*relation.Relation, error) {
	l, r, err := e.evalBoth(n)
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	lw, rw := l.Schema().Len(), r.Schema().Len()
	out := relation.New(outSchema)
	for i, lt := range l.Tuples() {
		lp := l.PeriodOf(i)
		for j, rt := range r.Tuples() {
			iv := lp.Intersect(r.PeriodOf(j))
			if iv.Empty() {
				continue
			}
			nt := make(relation.Tuple, lw+rw+2)
			copy(nt, lt)
			copy(nt[lw:], rt)
			nt[lw+rw] = value.Time(iv.Start)
			nt[lw+rw+1] = value.Time(iv.End)
			if p != nil {
				ok, err := p.Holds(outSchema, nt)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out.Append(nt)
		}
	}
	// Table 1: the order of ×ᵀ is Order(r1) \ TimePairs — the left order's
	// time-free prefix, renamed under qualification.
	out.SetOrder(OrderAfterProduct(l.Order().TimeFreePrefix(), r.Schema(), outSchema))
	return out, nil
}

// valueGroups partitions the tuple indices of a temporal relation by
// value-equivalence (equality on all non-time attributes), preserving
// first-occurrence order of the groups and list order within each group.
func valueGroups(r *relation.Relation) (keys []string, groups map[string][]int) {
	t1, t2 := r.Schema().TimeIndices()
	idx := make([]int, 0, r.Schema().Len()-2)
	for i := 0; i < r.Schema().Len(); i++ {
		if i != t1 && i != t2 {
			idx = append(idx, i)
		}
	}
	groups = make(map[string][]int)
	for i, t := range r.Tuples() {
		k := t.KeyOn(idx)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	return keys, groups
}

// evalTDiff implements the temporal difference \ᵀ with exact
// snapshot-reducible semantics: at every instant t, a value occurs
// max(n1(v,t) − n2(v,t), 0) times in the result. The left argument's tuples
// are processed in list order and the earliest left occurrences absorb the
// subtraction at each instant, so with a snapshot-duplicate-free left
// argument this is exactly "left period minus the union of the right
// group's periods", the reading of Section 2.1's example query.
//
// The paper's Table 1 bounds the cardinality by 2·n(r1), which holds for
// the pairwise recursion it sketches; exact per-snapshot semantics against
// a fragmented right argument can produce more fragments (see DESIGN.md) —
// the cost model uses the paper's bound as an estimate only.
func (e *Evaluator) evalTDiff(n algebra.Node) (*relation.Relation, error) {
	l, r, err := e.evalBoth(n)
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	lt1, lt2 := l.Schema().TimeIndices()

	_, rGroups := valueGroups(r)
	lKeys, lGroups := valueGroups(l)

	// frag[i] collects the surviving fragments of left tuple i.
	frag := make(map[int][]period.Period, l.Len())
	for _, k := range lKeys {
		leftIdx := lGroups[k]
		var rightPeriods []period.Period
		for _, j := range rGroups[k] {
			if p := r.PeriodOf(j); !p.Empty() {
				rightPeriods = append(rightPeriods, p)
			}
		}
		all := make([]period.Period, 0, len(leftIdx)+len(rightPeriods))
		for _, i := range leftIdx {
			all = append(all, l.PeriodOf(i))
		}
		all = append(all, rightPeriods...)
		ivs := period.ElementaryIntervals(all)
		// budget[x] = how many right-copies remain to cancel left tuples on
		// elementary interval x.
		budget := make([]int, len(ivs))
		for x, iv := range ivs {
			for _, rp := range rightPeriods {
				if rp.ContainsPeriod(iv) {
					budget[x]++
				}
			}
		}
		for _, i := range leftIdx {
			lp := l.PeriodOf(i)
			if lp.Empty() {
				continue
			}
			var cur period.Period
			for x, iv := range ivs {
				if !lp.ContainsPeriod(iv) || iv.Empty() {
					continue
				}
				if budget[x] > 0 {
					budget[x]--
					if !cur.Empty() {
						frag[i] = append(frag[i], cur)
						cur = period.Period{}
					}
					continue
				}
				if !cur.Empty() && cur.End == iv.Start {
					cur.End = iv.End
				} else {
					if !cur.Empty() {
						frag[i] = append(frag[i], cur)
					}
					cur = iv
				}
			}
			if !cur.Empty() {
				frag[i] = append(frag[i], cur)
			}
		}
	}

	out := relation.New(outSchema)
	for i, t := range l.Tuples() {
		for _, p := range frag[i] {
			out.Append(t.WithPeriodAt(lt1, lt2, p))
		}
	}
	out.SetOrder(l.Order().TimeFreePrefix())
	return out, nil
}

// evalTRdup implements temporal duplicate elimination rdupᵀ exactly per the
// paper's λ-calculus definition (Section 2.5), iteratively: for each tuple
// (the "head"), repeatedly find the first later value-equivalent tuple
// whose period overlaps (Overᵀ) and replace it in place with its period
// minus the head's period (Changeᵀ with [overlapping] \ᵀ [head] — zero, one
// or two tuples).
func (e *Evaluator) evalTRdup(n algebra.Node) (*relation.Relation, error) {
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	t1, t2 := in.Schema().TimeIndices()
	valIdx := make([]int, 0, in.Schema().Len()-2)
	for i := 0; i < in.Schema().Len(); i++ {
		if i != t1 && i != t2 {
			valIdx = append(valIdx, i)
		}
	}

	type row struct {
		t relation.Tuple
		p period.Period
		k string
	}
	rows := make([]row, 0, in.Len())
	for _, t := range in.Tuples() {
		rows = append(rows, row{t: t, p: t.PeriodAt(t1, t2), k: t.KeyOn(valIdx)})
	}

	for i := 0; i < len(rows); i++ {
		head := rows[i]
		for {
			j := -1
			for x := i + 1; x < len(rows); x++ {
				if rows[x].k == head.k && rows[x].p.Overlaps(head.p) {
					j = x
					break
				}
			}
			if j < 0 {
				break
			}
			frags := rows[j].p.Subtract(head.p)
			repl := make([]row, 0, 2)
			for _, f := range frags {
				repl = append(repl, row{t: rows[j].t.WithPeriodAt(t1, t2, f), p: f, k: rows[j].k})
			}
			rows = append(rows[:j], append(repl, rows[j+1:]...)...)
		}
	}

	out := relation.New(in.Schema())
	for _, rw := range rows {
		out.Append(rw.t)
	}
	out.SetOrder(in.Order().TimeFreePrefix())
	return out, nil
}

// evalCoal implements coalescing coalᵀ per the paper's minimal definition
// (Section 2.4): value-equivalent tuples with *adjacent* periods are merged,
// tuple order is retained (the merged tuple stays at the earlier position),
// and — unlike Böhlen et al.'s coalescing — overlapping periods are not
// merged; that effect is obtained by applying rdupᵀ first.
func (e *Evaluator) evalCoal(n algebra.Node) (*relation.Relation, error) {
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	t1, t2 := in.Schema().TimeIndices()
	valIdx := make([]int, 0, in.Schema().Len()-2)
	for i := 0; i < in.Schema().Len(); i++ {
		if i != t1 && i != t2 {
			valIdx = append(valIdx, i)
		}
	}
	type row struct {
		t relation.Tuple
		p period.Period
		k string
	}
	rows := make([]row, 0, in.Len())
	for _, t := range in.Tuples() {
		rows = append(rows, row{t: t, p: t.PeriodAt(t1, t2), k: t.KeyOn(valIdx)})
	}
	for i := 0; i < len(rows); {
		merged := false
		for j := i + 1; j < len(rows); j++ {
			if rows[j].k != rows[i].k || !rows[i].p.Adjacent(rows[j].p) {
				continue
			}
			u, _ := rows[i].p.Union(rows[j].p)
			rows[i].p = u
			rows[i].t = rows[i].t.WithPeriodAt(t1, t2, u)
			rows = append(rows[:j], rows[j+1:]...)
			merged = true
			break
		}
		if !merged {
			i++
		}
	}
	out := relation.New(in.Schema())
	for _, rw := range rows {
		out.Append(rw.t)
	}
	out.SetOrder(in.Order().TimeFreePrefix())
	return out, nil
}

// evalTAggregate implements the temporal aggregation 𝒢ᵀ, snapshot-reducible
// to 𝒢: conceptually the aggregate is computed at each instant; the
// implementation decomposes each group's timeline into elementary intervals
// (within which the live tuple set is constant) and emits one result tuple
// per interval with at least one live tuple. Adjacent intervals with equal
// aggregate values are *not* merged — Table 1 records that 𝒢ᵀ destroys
// coalescing, and its cardinality bound 2·n(r)−1 is the elementary-interval
// count.
func (e *Evaluator) evalTAggregate(n *algebra.Aggregate) (*relation.Relation, error) {
	in, err := e.Eval(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	gidx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		gidx[i] = in.Schema().Index(g)
	}
	var keys []string
	groups := make(map[string][]int)
	for i, t := range in.Tuples() {
		k := t.KeyOn(gidx)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := relation.New(outSchema)
	for _, k := range keys {
		members := groups[k]
		ps := make([]period.Period, len(members))
		for x, i := range members {
			ps[x] = in.PeriodOf(i)
		}
		for _, iv := range period.ElementaryIntervals(ps) {
			accs := NewAccumulators(n.Aggs, in.Schema())
			live := 0
			for x, i := range members {
				if !ps[x].ContainsPeriod(iv) {
					continue
				}
				live++
				if err := FoldAggregates(accs, n.Aggs, in.Schema(), in.At(i)); err != nil {
					return nil, err
				}
			}
			if live == 0 {
				continue
			}
			nt := make(relation.Tuple, 0, outSchema.Len())
			rep := in.At(members[0])
			for _, gi := range gidx {
				nt = append(nt, rep[gi])
			}
			for _, acc := range accs {
				nt = append(nt, acc.Result())
			}
			nt = append(nt, value.Time(iv.Start), value.Time(iv.End))
			out.Append(nt)
		}
	}
	out.SetOrder(OrderAfterGroup(in.Order(), n.GroupBy))
	return out, nil
}

// evalTUnion implements the temporal union ∪ᵀ, snapshot-reducible to the
// multiset union ∪: at every instant each value occurs max(n1, n2) times.
// The result is all of r1 followed by, per value group and per excess
// layer, the maximal periods over which r2's multiplicity exceeds r1's.
func (e *Evaluator) evalTUnion(n algebra.Node) (*relation.Relation, error) {
	l, r, err := e.evalBoth(n)
	if err != nil {
		return nil, err
	}
	t1, t2 := l.Schema().TimeIndices()

	out := relation.New(l.Schema())
	for _, t := range l.Tuples() {
		out.Append(t)
	}

	rKeys, rGroups := valueGroups(r)
	_, lGroups := valueGroups(l)
	for _, k := range rKeys {
		var all []period.Period
		var rps, lps []period.Period
		for _, j := range rGroups[k] {
			p := r.PeriodOf(j)
			if !p.Empty() {
				rps = append(rps, p)
			}
		}
		for _, i := range lGroups[k] {
			p := l.PeriodOf(i)
			if !p.Empty() {
				lps = append(lps, p)
			}
		}
		all = append(append(all, rps...), lps...)
		ivs := period.ElementaryIntervals(all)
		extra := make([]int, len(ivs))
		maxExtra := 0
		for x, iv := range ivs {
			c1, c2 := 0, 0
			for _, p := range lps {
				if p.ContainsPeriod(iv) {
					c1++
				}
			}
			for _, p := range rps {
				if p.ContainsPeriod(iv) {
					c2++
				}
			}
			if c2 > c1 {
				extra[x] = c2 - c1
				if extra[x] > maxExtra {
					maxExtra = extra[x]
				}
			}
		}
		if maxExtra == 0 {
			continue
		}
		rep := r.At(rGroups[k][0])
		for layer := 1; layer <= maxExtra; layer++ {
			var cur period.Period
			flush := func() {
				if !cur.Empty() {
					out.Append(rep.WithPeriodAt(t1, t2, cur))
					cur = period.Period{}
				}
			}
			for x, iv := range ivs {
				if extra[x] < layer {
					flush()
					continue
				}
				if !cur.Empty() && cur.End == iv.Start {
					cur.End = iv.End
				} else {
					flush()
					cur = iv
				}
			}
			flush()
		}
	}
	return out, nil
}
