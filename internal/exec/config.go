package exec

import (
	"fmt"

	"tqp/internal/eval"
)

// Config is the one engine-configuration surface: every knob of the exec
// engine in a single struct, consumed by NewSpec. It replaces the
// constructor sprawl of Spec/HashOnlySpec/ParallelSpec/BudgetedSpec/SpecWith
// — those remain as thin deprecated wrappers for one release. The zero
// value is the fully-enabled sequential engine ("exec").
type Config struct {
	// Parallelism is the number of workers a partitionable operator may fan
	// out to (see parallel.go): join/product, rdup, \, ∪, the temporal
	// value-group family and aggregation hash- or range-partition their
	// inputs, sort parallelizes run generation, and a deterministic gather
	// keeps every result list bit-identical to the sequential engine's.
	// 0 or 1 compiles the sequential pipeline.
	Parallelism int
	// MemoryBudget bounds the working-set bytes of the blocking operators
	// (hash tables, materialized build sides, sort runs; see grace.go). An
	// operator whose state would exceed its share grace-hash partitions its
	// inputs to temp files and processes one partition at a time, recursing
	// while a partition still exceeds the share; the spilled partitions
	// replay in original list order via sequence keys, so results stay
	// bit-identical to the unbudgeted engine. 0 means unlimited (no
	// spilling). With Parallelism > 1 the budget divides into per-worker
	// shares: W partition tasks run concurrently, each bounded by budget/W.
	MemoryBudget int64
	// SpillDir is the directory spill files are created under (a fresh
	// subdirectory per Eval, removed when the run ends — success or error).
	// Empty means the system temp directory.
	SpillDir string
	// NoMerge disables the merge/sort-based variants (merge join, merge
	// diff/union, adjacent-compare dedup, streaming group-at-a-time
	// temporal operators); every operator uses its hash variant.
	NoMerge bool
	// NoSortElision forces every sort node to physically sort, even when
	// its input already delivers the requested order.
	NoSortElision bool
	// NoColumnar disables the vectorized columnar variants (see vec.go):
	// every operator that would compile batch-at-a-time falls back to its
	// tuple-at-a-time implementation. The flag exists for differential
	// testing and for measuring vectorization in isolation; columnar
	// execution is also implicitly off under NoMerge/NoSortElision (the
	// hash-only differential baseline).
	NoColumnar bool
}

// SpecOption adjusts a Config functionally — the composable form of the
// same knobs, for call sites that build a spec from a base configuration.
type SpecOption func(*Config)

// WithParallelism sets the worker fan-out width.
func WithParallelism(n int) SpecOption { return func(c *Config) { c.Parallelism = n } }

// WithMemoryBudget bounds the blocking operators' working sets to b bytes.
func WithMemoryBudget(b int64) SpecOption { return func(c *Config) { c.MemoryBudget = b } }

// WithSpillDir roots the budgeted engine's spill files at dir.
func WithSpillDir(dir string) SpecOption { return func(c *Config) { c.SpillDir = dir } }

// WithHashOnly restricts the engine to PR 1's hash variants (no merge
// operators, no sort elision) — the differential baseline.
func WithHashOnly() SpecOption {
	return func(c *Config) { c.NoMerge, c.NoSortElision = true, true }
}

// WithoutColumnar disables the vectorized columnar variants.
func WithoutColumnar() SpecOption { return func(c *Config) { c.NoColumnar = true } }

// NewSpec derives an immutable engine spec from a Config (optionally
// adjusted by functional options), named consistently across the whole
// surface: "exec", "exec-hash", "exec-novec", "exec-par4", "exec-par4-mem16M",
// …. It is the general constructor: a session's engine settings plus the
// admission controller's resource shares (and the server's spill directory)
// become one spec, instantiated per query via eval.EngineSpec.Instantiate.
// The restriction flags (NoMerge, NoSortElision) are reflected in OrderAware
// so the cost model never prices variants the engine won't compile.
func NewSpec(cfg Config, opts ...SpecOption) eval.EngineSpec {
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Parallelism < 1 {
		cfg.Parallelism = 1
	}
	name := "exec"
	if cfg.NoMerge || cfg.NoSortElision {
		name = "exec-hash"
	} else if cfg.NoColumnar {
		name += "-novec"
	}
	if cfg.Parallelism > 1 {
		name += fmt.Sprintf("-par%d", cfg.Parallelism)
	}
	if cfg.MemoryBudget > 0 {
		name += "-mem" + memString(cfg.MemoryBudget)
	}
	return eval.EngineSpec{
		Name:         name,
		New:          func(src eval.Source) eval.Engine { return NewWith(src, Options(cfg)) },
		Streaming:    true,
		OrderAware:   !cfg.NoMerge && !cfg.NoSortElision,
		Parallelism:  cfg.Parallelism,
		MemoryBudget: cfg.MemoryBudget,
		Vectorized:   !cfg.NoColumnar && !cfg.NoMerge && !cfg.NoSortElision,
	}
}
