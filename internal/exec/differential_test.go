package exec_test

import (
	"math/rand"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/testutil"
	"tqp/internal/value"
)

// TestDifferentialVsReference is the exec engine's correctness anchor: it
// drives hundreds of random plans covering the conventional and temporal
// operators through both engines and asserts *exact list* equivalence —
// identical tuple sequences — plus identical Table 1 order annotations.
// List equality is deliberately stronger than the paper's per-operator
// guarantees (which pin order only where Table 1 records one, multiset
// equality elsewhere): the engines are built to agree on the full list so
// that every downstream operator — in particular coalescing, which is not
// confluent under reordering — sees identical input from either engine.
func TestDifferentialVsReference(t *testing.T) {
	plans := 0
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalog(seed)
		ref := eval.New(c)
		ex := exec.New(c)

		for trial := 0; trial < 8; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			if err := algebra.Validate(plan); err != nil {
				t.Fatalf("seed %d: generator produced an invalid plan: %v", seed, err)
			}
			want, errRef := ref.Eval(plan)
			got, errExec := ex.Eval(plan)
			if (errRef == nil) != (errExec == nil) {
				t.Fatalf("seed %d: engines disagree on failure for %s: reference=%v exec=%v",
					seed, algebra.Canonical(plan), errRef, errExec)
			}
			if errRef != nil {
				continue
			}
			plans++
			if !got.Schema().Equal(want.Schema()) {
				t.Fatalf("seed %d: %s: exec schema %s ≠ reference %s",
					seed, algebra.Canonical(plan), got.Schema(), want.Schema())
			}
			if !got.EqualAsList(want) {
				t.Fatalf("seed %d: %s: exec result differs from reference\nexec (%d tuples):\n%s\nreference (%d tuples):\n%s",
					seed, algebra.Canonical(plan), got.Len(), got, want.Len(), want)
			}
			if !got.Order().Equal(want.Order()) {
				t.Fatalf("seed %d: %s: exec order %s ≠ reference order %s",
					seed, algebra.Canonical(plan), got.Order(), want.Order())
			}
			if !got.SortedBy(got.Order()) {
				t.Fatalf("seed %d: %s: exec claims order %s but the list is not sorted",
					seed, algebra.Canonical(plan), got.Order())
			}
		}
	}
	if plans < 500 {
		t.Fatalf("differential suite covered only %d plans, want ≥ 500", plans)
	}
}

// TestDifferentialDuplicateSortKey is the regression for the
// groupsContiguous duplicate-key bug: rdupᵀ over a sort that repeats a key
// (valid per OrderSpec.Validate) used to take the contiguous fast path on
// groups that are not contiguous, splitting value groups and skipping the
// overlap subtraction.
func TestDifferentialDuplicateSortKey(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	r := relation.MustFromRows(s, [][]any{
		{"a", 1, 0, 10},
		{"a", 2, 0, 10},
		{"a", 1, 5, 15},
	})
	src := eval.MapSource{"R": r}
	base := algebra.NewRel("R", s, algebra.BaseInfo{})
	dupSort := relation.OrderSpec{relation.Key("Name"), relation.Key("Name")}
	for _, plan := range []algebra.Node{
		algebra.NewTRdup(algebra.NewSort(dupSort, base)),
		algebra.NewCoal(algebra.NewSort(dupSort, base)),
	} {
		want, err := eval.New(src).Eval(plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.New(src).Eval(plan)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsList(want) {
			t.Fatalf("%s: exec differs\nexec:\n%s\nreference:\n%s",
				algebra.Canonical(plan), got, want)
		}
	}
}

// TestDifferentialHugeIntKeys is the regression for the numeric hash/equality
// mismatch: ints beyond 2^53 used to compare through float64 (collapsing
// 2^62 and 2^62+1 into one value) while hashing exactly, so the reference's
// predicate join and exec's hash join disagreed. Comparison is now exact, and
// both engines must agree that the keys differ.
func TestDifferentialHugeIntKeys(t *testing.T) {
	s := schema.MustNew(schema.Attr("K", value.KindInt))
	l := relation.MustFromRows(s, [][]any{{int64(1) << 62}})
	r := relation.MustFromRows(s, [][]any{{int64(1)<<62 + 1}})
	src := eval.MapSource{"L": l, "R": r}
	pred := expr.Compare(expr.Eq, expr.Column("1.K"), expr.Column("2.K"))
	plan := algebra.NewJoin(pred,
		algebra.NewRel("L", s, algebra.BaseInfo{}),
		algebra.NewRel("R", s, algebra.BaseInfo{}))
	want, err := eval.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 0 || got.Len() != 0 {
		t.Fatalf("2^62 and 2^62+1 must not join: reference %d rows, exec %d rows", want.Len(), got.Len())
	}
	if !got.EqualAsList(want) {
		t.Fatal("engines disagree on huge int keys")
	}
}

// TestDifferentialPerNode re-runs the differential check on every subtree of
// a smaller plan sample, so a disagreement is pinned to the narrowest
// operator rather than a whole plan.
func TestDifferentialPerNode(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalog(seed)
		ref := eval.New(c)
		ex := exec.New(c)
		for trial := 0; trial < 4; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			var check func(n algebra.Node)
			check = func(n algebra.Node) {
				for _, ch := range n.Children() {
					check(ch)
				}
				want, err := ref.Eval(n)
				if err != nil {
					t.Fatalf("seed %d: reference eval %s: %v", seed, algebra.Canonical(n), err)
				}
				got, err := ex.Eval(n)
				if err != nil {
					t.Fatalf("seed %d: exec eval %s: %v", seed, algebra.Canonical(n), err)
				}
				if !got.EqualAsList(want) {
					t.Fatalf("seed %d: node %s: exec differs\nexec:\n%s\nreference:\n%s",
						seed, algebra.Canonical(n), got, want)
				}
				if !got.Order().Equal(want.Order()) {
					t.Fatalf("seed %d: node %s: exec order %s ≠ reference order %s",
						seed, algebra.Canonical(n), got.Order(), want.Order())
				}
			}
			check(plan)
		}
	}
}
