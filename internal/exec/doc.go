// Package exec implements the streaming, hash- and merge-based execution
// engine: a Volcano-style pull-iterator evaluator over algebra plans whose
// physical operators beat the reference evaluator (package eval)
// asymptotically while producing bit-identical result lists.
//
// # Two engines, one semantics
//
// The reference evaluator is the executable specification — every operator
// materializes its input and joins or deduplicates with nested loops, making
// it easy to audit against the paper's definitions but quadratic nearly
// everywhere. This package is the performance engine the ROADMAP's "fast as
// the hardware allows" goal calls for. Both implement eval.Engine and both
// produce the same result *list* for every plan, not merely an equivalent
// multiset. That strong contract is deliberate: the list algebra is
// order-sensitive (coalescing on a permuted input can produce a genuinely
// different multiset), so the only safe division of labour is for physical
// operators to change *how* a result is computed, never *which list* comes
// out. Differential tests (differential_test.go, order_test.go) drive
// hundreds of random conventional and temporal plans through the reference,
// the hash-only engine and the full merge engine and assert exact list
// equality plus identical Table 1 order annotations.
//
// # The delivered-order contract
//
// Every compiled pipeline stage (the internal source struct) carries,
// besides its iterator and schema, the order its stream delivers — derived
// at build time with the same Table 1 propagation rules the reference
// evaluator applies at run time (and that props.State.Order derives
// statically; the golden matrix in order_golden_test.go pins all three to
// each other). Delivered orders are list invariants, and the engine spends
// them in three ways, all decided by the shared procedure in package
// physical so the cost model prices exactly what the engine compiles:
//
//   - Sort elision. sort_A over an input delivering an order A is a prefix
//     of is a physical no-op (a stable sort cannot move any tuple); the
//     build step returns the input stage unchanged, stronger order
//     included. Options.NoSortElision disables this for differential
//     testing, and the elided/performed property test asserts bit-equal
//     outputs either way.
//
//   - Merge operators. With key-covering aligned orders on both inputs,
//     joins merge instead of hashing (mergeJoinIter: a monotone pointer
//     over the materialized sorted right side, emitting the hash join's
//     exact left-major pair order); \ and ∪ run two-pointer merges over a
//     shared total order; rdup degenerates to an adjacent comparison.
//
//   - Streaming grouping. rdupᵀ, coalᵀ, 𝒢 and 𝒢ᵀ over inputs whose
//     delivered order keeps their groups contiguous run group-at-a-time
//     (groupIter): pull one group, transform it with the same group-local
//     algorithm the hash path uses, emit, repeat — bounded state, no hash
//     table, no global materialization.
//
// When no order helps, the PR 1 hash variants run unchanged: hash join on
// extracted equi-keys with a block-nested-loop fallback, hash multiplicity
// counters for \ and ∪, hash-partitioned group-local temporal operators
// (skipping the hash table when materialized input order proves groups
// contiguous), and pipelined hash aggregation. An explicit external merge
// sort (mergeSortIter: bounded stable-sorted runs, heap-merged with a
// run-index tie-break that reproduces the global stable sort) replaces the
// monolithic materialize-and-sort. The engine deliberately does NOT "sort
// first and merge" when an input is unsorted: coalescing is not confluent
// under reordering, so a sort-based coalᵀ would change the result multiset,
// not just its order. Options.NoMerge restricts the engine to the hash
// variants (the exec-hash spec), and Stats counts which variants compiled.
//
// Two further layers compose onto the same operator bodies without
// changing any result list: the morsel-parallel exchange (parallel.go,
// Options.Parallelism) partitions an operator's materialized inputs across
// a worker pool and reassembles them through a deterministic sequence-key
// gather, and the memory-bounded mode (grace.go, Options.MemoryBudget)
// grace-hash partitions a blocking operator's too-big state to temp files
// (package spill) and replays the partitions through that same gather —
// budgeted plans run the identical per-partition algorithms, spilled or
// not, sequential or parallel.
//
// # Adding a physical operator
//
// Add a case to (*Engine).build returning a source (iterator + schema +
// Table 1 order annotation). Derive the order with the helpers exported
// from package eval (OrderAfterProject, OrderAfterProduct, OrderQualifyTime,
// OrderAfterGroup) so the engines cannot drift. If the operator has an
// order-exploiting variant, put its applicability test in package physical's
// Decide so the engine, the cost model, and the stratum meter make the same
// choice, and extend the differential fuzz generator (internal/testutil)
// with shapes that trigger it. The cost model's order-conditional formulas
// (cost.Params MergeTuple/SortVerifyFactor/MergeUnitsFactor and the
// Params.OpUnitsOrdered meter) should be recalibrated when a variant's
// asymptotic shape changes.
package exec
