// Package exec implements the streaming, hash-based execution engine: a
// Volcano-style pull-iterator evaluator over algebra plans whose physical
// operators beat the reference evaluator (package eval) asymptotically while
// producing bit-identical result lists.
//
// # Two engines, one semantics
//
// The reference evaluator is the executable specification — every operator
// materializes its input and joins or deduplicates with nested loops, making
// it easy to audit against the paper's definitions but quadratic nearly
// everywhere. This package is the performance engine the ROADMAP's "fast as
// the hardware allows" goal calls for. Both implement eval.Engine and both
// produce the same result *list* for every plan, not merely an equivalent
// multiset. That strong contract is deliberate: the list algebra is
// order-sensitive (coalescing on a permuted input can produce a genuinely
// different multiset), so the only safe division of labour is for physical
// operators to change *how* a result is computed, never *which list* comes
// out. Differential tests (differential_test.go) drive hundreds of random
// conventional and temporal plans through both engines and assert exact list
// equality plus identical Table 1 order annotations.
//
// # Physical operators
//
//   - Scan, selection, projection, and union-all stream tuple-at-a-time.
//   - Products and the join idioms extract equality conjuncts ("1.Grp" =
//     "2.Grp") from the fused predicate and run a hash join: the right side
//     is built into a collision-safe hash table (tuple hashes confirmed with
//     value equality), the left side probes in list order, and matches are
//     emitted in the right argument's list order — exactly the reference's
//     left-major pair order at O(n+m+out) instead of O(n·m). Non-equi
//     predicates fall back to a block nested loop that reuses a scratch
//     tuple, allocating only for emitted pairs.
//   - rdup streams through a hash set; diff and the max-multiplicity union
//     build hash multiplicity counters on one side and stream the other.
//   - Aggregation pipelines its input into per-group accumulators held in a
//     hash table that preserves first-occurrence group order.
//   - The temporal operators (rdupT, coalT, diffT, unionT, aggrT) partition
//     by value-equivalence with tuple hashes instead of the reference's
//     string keys, skipping the hash table entirely when the input's
//     OrderSpec already makes value groups contiguous; the per-group work
//     then runs group-locally — O(Σ g²) in the worst case versus the
//     reference's global O(n²), and coalT additionally detects sorted,
//     non-overlapping groups at run time and merges them in one pass.
//     Fragments are re-interleaved by original tuple position so the output
//     list matches the reference exactly. The engine deliberately does NOT
//     "sort first and merge" when the input is unsorted: coalescing is not
//     confluent under reordering, so a sort-based coalT would change the
//     result multiset, not just its order.
//
// # Adding a physical operator
//
// Add a case to (*Engine).build returning a source (iterator + schema +
// Table 1 order annotation). Derive the order with the helpers exported from
// package eval (OrderAfterProject, OrderAfterProduct, OrderQualifyTime,
// OrderAfterGroup) so the two engines cannot drift, and extend the
// differential fuzz generator (internal/testutil) to cover the operator.
// The cost model's streaming formulas (cost.OpUnits with streaming=true)
// should be recalibrated when an operator's asymptotic shape changes.
package exec
