package exec

import (
	"fmt"
	"time"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/obs"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/spill"
)

// Options is the historical name for the engine knob struct.
//
// Deprecated: use Config. Options is an alias kept for one release so
// existing NewWith call sites keep compiling.
type Options = Config

// Stats counts the physical variants the engine's most recent Eval
// compiled and ran — the run-time record that the order-exploiting,
// parallel and spilling paths actually fired. Eval resets the counters on
// entry, so a reused Engine reports per-run stats, never an accumulation
// across queries.
type Stats struct {
	SortsElided int // sort nodes compiled away (input already ordered)
	MergeSorts  int // external merge sorts performed
	MergeJoins  int // merge joins chosen over hash joins
	MergeOps    int // merge diff/union/dedup and streaming group operators
	ParallelOps int // operators compiled with a parallel exchange
	Partitions  int // partitions fanned out across those operators

	SpilledOps   int   // operators that exceeded their budget share and spilled
	SpilledBytes int64 // encoded bytes written to spill files this run
	PeakBytes    int64 // peak accounted working-set bytes this run

	VectorOps     int // operators compiled batch-at-a-time over columnar input
	VectorBatches int // columnar batches emitted by those operators this run

	SegmentsScanned int // store segments read by base scans this run
	SegmentsSkipped int // store segments pruned by the period index this run
}

// Engine is the streaming hash- and merge-based engine. It implements
// eval.Engine and produces the same result list as the reference evaluator
// for every plan; when an input's delivered order allows it (and Options
// permit), it compiles the cheaper merge/sort-based variant of an operator.
type Engine struct {
	src   eval.Source
	opts  Options
	stats Stats

	// Per-run memory-bounded execution state, set up by Eval when
	// Options.MemoryBudget > 0 and torn down when the run ends.
	mem      *arbiter
	spillMgr *spill.Manager

	// probe, when set, receives one RunSample at the end of each successful
	// Eval. EXPLAIN ANALYZE installs it through the stratum executor, which
	// evaluates layered plans node-by-node on fresh engine instances — so
	// each sample is one plan node's actuals. When nil (every normal query)
	// the instrumentation is a single branch on the Eval exit path.
	probe func(obs.RunSample)
}

// SetProbe installs (or, with nil, removes) the per-run sample callback.
func (e *Engine) SetProbe(fn func(obs.RunSample)) { e.probe = fn }

// columnar reports whether the engine may compile the vectorized columnar
// variants. Hash-only mode (NoMerge/NoSortElision) keeps its tuple pipeline
// untouched — it is PR 1's differential baseline — but the parallel and
// budgeted engines are columnar-capable: their exchanges scatter batch
// views over shared column planes and their grace operators spill columnar
// blocks, falling back to tuple adapters only where no batch variant
// exists.
func (e *Engine) columnar() bool {
	return !e.opts.NoColumnar && !e.opts.NoMerge && !e.opts.NoSortElision
}

// batchOf returns r's columnar image, converting on first use. The image
// caches on the relation itself (see Relation.ColumnarImage), so the
// one-time tuple→batch transposition amortizes across every engine and
// query scanning r — the load-time conversion of a columnar store, paid
// lazily. The cached batch is immutable; mutating relation methods drop
// the cache.
func (e *Engine) batchOf(r *relation.Relation) *batch {
	if b, ok := r.ColumnarImage().(*batch); ok {
		return b
	}
	// Capture the list version before reading the tuples: a mutation racing
	// with the conversion bumps it, and the versioned store below then
	// drops the stale image instead of caching pre-mutation order.
	v := r.ColumnarVersion()
	b := batchOfTuples(r.Schema(), r.Tuples())
	r.SetColumnarImage(b, v)
	return b
}

// New returns an engine over src with every physical variant enabled.
func New(src eval.Source) *Engine { return &Engine{src: src} }

// NewWith returns an engine over src restricted by opts.
func NewWith(src eval.Source, opts Options) *Engine {
	return &Engine{src: src, opts: opts}
}

// Stats reports the physical-variant counters of the most recent Eval.
func (e *Engine) Stats() Stats { return e.stats }

// Close releases any spill state left behind by an interrupted run. Eval
// removes its spill files on every path — success, error, panic — so Close
// is idempotent insurance for holders that cache engines; it is always safe
// to call, budgeted or not.
func (e *Engine) Close() error {
	if e.spillMgr != nil {
		mgr := e.spillMgr
		e.spillMgr = nil
		return mgr.Cleanup()
	}
	return nil
}

// Spec returns the fully-enabled sequential engine's spec.
//
// Deprecated: use NewSpec(Config{}).
func Spec() eval.EngineSpec {
	return eval.EngineSpec{
		Name:       "exec",
		New:        func(src eval.Source) eval.Engine { return New(src) },
		Streaming:  true,
		OrderAware: true,
		Vectorized: true,
	}
}

// HashOnlySpec returns the engine restricted to PR 1's hash variants.
//
// Deprecated: use NewSpec(Config{}, WithHashOnly()).
func HashOnlySpec() eval.EngineSpec {
	return NewSpec(Config{}, WithHashOnly())
}

// ParallelSpec returns the morsel-parallel engine.
//
// Deprecated: use NewSpec(Config{Parallelism: n}). Note NewSpec names the
// sequential degenerate "exec" where ParallelSpec named it "exec-par1";
// this wrapper keeps the old name for parallelism-1 experiment traces.
func ParallelSpec(n int) eval.EngineSpec {
	if n < 1 {
		n = 1
	}
	s := NewSpec(Config{Parallelism: n})
	if n == 1 {
		s.Name = "exec-par1"
	}
	return s
}

// BudgetedSpec returns the memory-bounded engine.
//
// Deprecated: use NewSpec(Config{Parallelism: workers, MemoryBudget: budget}).
func BudgetedSpec(workers int, budget int64) eval.EngineSpec {
	return NewSpec(Config{Parallelism: workers, MemoryBudget: budget})
}

// SpecWith returns the engine spec for an arbitrary Options value.
//
// Deprecated: use NewSpec, which takes the same struct under its new name
// (Config) plus functional options.
func SpecWith(opts Options) eval.EngineSpec {
	return NewSpec(opts)
}

// memString renders a byte count compactly for engine names ("64K", "16M",
// "1G", or plain bytes when not a whole unit).
func memString(b int64) string {
	switch {
	case b >= 1<<30 && b%(1<<30) == 0:
		return fmt.Sprintf("%dG", b>>30)
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dM", b>>20)
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dK", b>>10)
	default:
		return fmt.Sprintf("%d", b)
	}
}

// Eval evaluates the tree rooted at n by building its iterator pipeline and
// draining the root. The result's Order() carries the Table 1 guarantee.
// Stats are reset on entry and describe this run alone. Under a memory
// budget the run's spill files live in a fresh temp directory that is
// removed before Eval returns, on the success and error paths alike.
func (e *Engine) Eval(n algebra.Node) (*relation.Relation, error) {
	if e.probe == nil {
		return e.eval(n)
	}
	start := time.Now()
	r, err := e.eval(n)
	if err != nil {
		return nil, err
	}
	e.probe(obs.RunSample{
		Rows:         int64(r.Len()),
		Batches:      int64(e.stats.VectorBatches),
		Wall:         time.Since(start),
		SpilledBytes: e.stats.SpilledBytes,
		SpilledOps:   int64(e.stats.SpilledOps),
		PeakBytes:    e.stats.PeakBytes,
	})
	return r, nil
}

// eval is Eval's uninstrumented body.
func (e *Engine) eval(n algebra.Node) (*relation.Relation, error) {
	e.stats = Stats{}
	if e.opts.MemoryBudget > 0 {
		e.mem = &arbiter{}
		e.spillMgr = spill.NewManager(e.opts.SpillDir)
		defer func() {
			e.stats.SpilledBytes = e.spillMgr.BytesWritten()
			e.stats.PeakBytes = e.mem.peakBytes()
			e.Close()
			e.mem = nil
		}()
	}
	s, err := e.build(n)
	if err != nil {
		return nil, err
	}
	return drain(s)
}

// source is one built pipeline stage: an iterator plus the static knowledge
// the parent stages and the root need — the output schema and the Table 1
// order annotation (derived at build time with the same rules the reference
// evaluator applies at run time).
type source struct {
	it     iterator
	schema *schema.Schema
	order  relation.OrderSpec

	// vec is the stage's columnar view, set when the stage compiled
	// batch-at-a-time (see vec.go). A columnar parent pulls vec directly;
	// a tuple-at-a-time parent pulls it, which for such a stage is the
	// batch→tuple adapter over the same stream. Exactly one of the two
	// views is ever consumed.
	vec vecIterator
}

// iterator is the pull interface of the engine. next returns (nil, nil) when
// the stream is exhausted.
type iterator interface {
	next() (relation.Tuple, error)
	close() error
}

// bulkIter is an iterator that can surrender its remaining tuples at once,
// letting drain skip the per-tuple Append loop (and its slice-growth
// churn) for stages that are already materialized.
type bulkIter interface {
	rest() ([]relation.Tuple, error)
}

// drain materializes a source into a relation and closes it. A columnar
// stage drains batch-at-a-time straight from its vec view, skipping the
// tuple adapter; a stage that can hand over its tuples outright (a scan,
// a lazy materialization) stays on the cheaper bulk path — for those the
// vec view is a convert-on-demand alternative that was never pulled.
func drain(s *source) (*relation.Relation, error) {
	if b, ok := s.it.(bulkIter); ok {
		ts, err := b.rest()
		if err != nil {
			s.it.close()
			return nil, err
		}
		if err := s.it.close(); err != nil {
			return nil, err
		}
		out := relation.FromTuplesTrusted(s.schema, ts)
		out.SetOrder(s.order)
		return out, nil
	}
	if s.vec != nil {
		return drainVec(s)
	}
	out := relation.New(s.schema)
	for {
		t, err := s.it.next()
		if err != nil {
			s.it.close()
			return nil, err
		}
		if t == nil {
			break
		}
		out.Append(t)
	}
	if err := s.it.close(); err != nil {
		return nil, err
	}
	out.SetOrder(s.order)
	return out, nil
}

// build compiles a logical node into a physical pipeline stage.
func (e *Engine) build(n algebra.Node) (*source, error) {
	switch node := n.(type) {
	case *algebra.Rel:
		return e.buildRel(node)
	case *algebra.Select:
		return e.buildSelect(node)
	case *algebra.Project:
		return e.buildProject(node)
	case *algebra.Aggregate:
		if node.Op() == algebra.OpTAggregate {
			return e.buildTAggregate(node)
		}
		return e.buildAggregate(node)
	case *algebra.Sort:
		return e.buildSort(node)
	case *algebra.Join:
		// The join idioms evaluate as their defining expansion with the
		// predicate fused into the product — σ_P(l × r), σ_P(l ×ᵀ r).
		if node.Op() == algebra.OpTJoin {
			prod := node.Expand().Children()[0]
			return e.buildProduct(prod, node.P, true)
		}
		prod := node.Expand().Children()[0]
		return e.buildProduct(prod, node.P, false)
	}
	switch n.Op() {
	case algebra.OpUnionAll:
		return e.buildUnionAll(n)
	case algebra.OpUnion:
		return e.buildUnion(n)
	case algebra.OpTUnion:
		return e.buildTUnion(n)
	case algebra.OpProduct:
		return e.buildProduct(n, nil, false)
	case algebra.OpTProduct:
		return e.buildProduct(n, nil, true)
	case algebra.OpDiff:
		return e.buildDiff(n)
	case algebra.OpTDiff:
		return e.buildTDiff(n)
	case algebra.OpRdup:
		return e.buildRdup(n)
	case algebra.OpTRdup:
		return e.buildTRdup(n)
	case algebra.OpCoal:
		return e.buildCoal(n)
	case algebra.OpTransferS, algebra.OpTransferD:
		// Transfers are identities on data; their cost and site semantics
		// live in the stratum executor.
		return e.build(n.Children()[0])
	default:
		return nil, fmt.Errorf("exec: unsupported operator %s", n.Op())
	}
}

// buildBoth builds both children of a binary node.
func (e *Engine) buildBoth(n algebra.Node) (l, r *source, err error) {
	ch := n.Children()
	l, err = e.build(ch[0])
	if err != nil {
		return nil, nil, err
	}
	r, err = e.build(ch[1])
	if err != nil {
		return nil, nil, err
	}
	return l, r, nil
}

// sliceIter iterates over a pre-computed tuple list. owned marks a list the
// iterator may hand over outright in the bulk drain path; an un-owned list
// (a base relation's tuples) is copied on handover so the relinquished
// relation can be freely permuted.
type sliceIter struct {
	ts    []relation.Tuple
	i     int
	owned bool
}

func (s *sliceIter) next() (relation.Tuple, error) {
	if s.i >= len(s.ts) {
		return nil, nil
	}
	t := s.ts[s.i]
	s.i++
	return t, nil
}

func (s *sliceIter) rest() ([]relation.Tuple, error) {
	ts := s.ts[s.i:]
	s.i = len(s.ts)
	if !s.owned {
		ts = append([]relation.Tuple(nil), ts...)
	}
	return ts, nil
}

func (s *sliceIter) close() error { return nil }

// lazyIter defers a materializing computation (sort, grouping) to the first
// pull, keeping the pipeline demand-driven end to end. The computed list is
// owned: a bulk drain takes it without copying.
type lazyIter struct {
	compute func() ([]relation.Tuple, error)
	inner   sliceIter
	done    bool
}

func (l *lazyIter) force() error {
	if l.done {
		return nil
	}
	ts, err := l.compute()
	if err != nil {
		return err
	}
	l.inner = sliceIter{ts: ts, owned: true}
	l.done = true
	return nil
}

func (l *lazyIter) next() (relation.Tuple, error) {
	if err := l.force(); err != nil {
		return nil, err
	}
	return l.inner.next()
}

func (l *lazyIter) rest() ([]relation.Tuple, error) {
	if err := l.force(); err != nil {
		return nil, err
	}
	return l.inner.rest()
}

func (l *lazyIter) close() error { return nil }

// lazySource wraps a materializing computation as a pipeline stage.
func lazySource(sch *schema.Schema, order relation.OrderSpec, compute func() ([]relation.Tuple, error)) *source {
	return &source{it: &lazyIter{compute: compute}, schema: sch, order: order}
}
