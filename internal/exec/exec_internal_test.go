package exec

import (
	"math/rand"
	"testing"

	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func productSchema(t *testing.T) *schema.Schema {
	t.Helper()
	left := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	out, err := left.QualifyTime(1).Concat(left.QualifyTime(2))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEquiKeys pins the predicate split driving physical join selection.
func TestEquiKeys(t *testing.T) {
	out := productSchema(t) // 1.Name 1.Grp 1.T1 1.T2 2.Name 2.Grp 2.T1 2.T2
	lw, rw := 4, 4

	eq := expr.Compare(expr.Eq, expr.Column("1.Grp"), expr.Column("2.Grp"))
	lidx, ridx, residual := physical.EquiKeys(eq, out, lw, rw)
	if len(lidx) != 1 || lidx[0] != 1 || ridx[0] != 1 || residual != nil {
		t.Fatalf("equi conjunct: lidx=%v ridx=%v residual=%v", lidx, ridx, residual)
	}

	// Reversed operand order must extract the same pair.
	rev := expr.Compare(expr.Eq, expr.Column("2.Name"), expr.Column("1.Name"))
	lidx, ridx, residual = physical.EquiKeys(rev, out, lw, rw)
	if len(lidx) != 1 || lidx[0] != 0 || ridx[0] != 0 || residual != nil {
		t.Fatalf("reversed equi conjunct: lidx=%v ridx=%v residual=%v", lidx, ridx, residual)
	}

	// Mixed predicate: the equality hashes, the inequality stays residual.
	mixed := expr.Conj(eq, expr.Compare(expr.Lt, expr.Column("1.T1"), expr.Column("2.T1")))
	lidx, _, residual = physical.EquiKeys(mixed, out, lw, rw)
	if len(lidx) != 1 || residual == nil {
		t.Fatalf("mixed predicate: lidx=%v residual=%v", lidx, residual)
	}

	// Same-side equality cannot be a hash key.
	sameSide := expr.Compare(expr.Eq, expr.Column("1.Name"), expr.Column("1.Grp"))
	lidx, _, residual = physical.EquiKeys(sameSide, out, lw, rw)
	if lidx != nil || residual == nil {
		t.Fatalf("same-side equality must stay residual: lidx=%v residual=%v", lidx, residual)
	}

	// A non-equi predicate falls back entirely.
	theta := expr.Compare(expr.Lt, expr.Column("1.Grp"), expr.Column("2.Grp"))
	lidx, _, residual = physical.EquiKeys(theta, out, lw, rw)
	if lidx != nil || residual == nil {
		t.Fatalf("theta predicate must stay residual: lidx=%v residual=%v", lidx, residual)
	}
}

// TestGroupsContiguous pins the OrderSpec reasoning that lets the grouping
// operators skip the hash table.
func TestGroupsContiguous(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	vidx := valueIdx(s) // Name, Grp
	cases := []struct {
		ord  relation.OrderSpec
		want bool
	}{
		{nil, false},
		{relation.OrderSpec{relation.Key("Name")}, false}, // Grp still varies
		{relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}, true},
		{relation.OrderSpec{relation.KeyDesc("Grp"), relation.Key("Name")}, true}, // direction irrelevant
		{relation.OrderSpec{relation.Key("Name"), relation.Key("Grp"), relation.Key("T1")}, true},
		{relation.OrderSpec{relation.Key("T1"), relation.Key("Name"), relation.Key("Grp")}, false}, // time attr splits groups
	}
	for _, c := range cases {
		if got := groupsContiguous(c.ord, s, vidx); got != c.want {
			t.Errorf("groupsContiguous(%s) = %v, want %v", c.ord, got, c.want)
		}
	}
}

// TestGroupsContiguousDuplicateKeys is the regression for the duplicate
// order-key bug: sort_{Name,Name} covers only Name, so it must NOT prove
// (Name, Grp) groups contiguous — counting the repeat twice used to take
// the hash-free path and split value groups.
func TestGroupsContiguousDuplicateKeys(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	vidx := valueIdx(s)
	dup := relation.OrderSpec{relation.Key("Name"), relation.Key("Name")}
	if groupsContiguous(dup, s, vidx) {
		t.Fatal("sort_{Name,Name} must not prove (Name,Grp) contiguity")
	}
	if !groupsContiguous(relation.OrderSpec{relation.Key("Grp"), relation.Key("Grp"), relation.Key("Name")}, s, vidx) {
		t.Fatal("duplicates are harmless once every value attribute is covered")
	}
}

// TestCoalesceOnePassMatchesIterative cross-checks the sorted-group fast
// path against the reference shape of the iterative merge on random
// sorted, non-overlapping groups.
func TestCoalesceOnePassMatchesIterative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	t1, t2 := s.TimeIndices()
	for trial := 0; trial < 2000; trial++ {
		var rows []row
		cur := period.Chronon(rng.Intn(3))
		for i := 0; i < rng.Intn(8); i++ {
			if rng.Intn(2) == 0 {
				cur += period.Chronon(1 + rng.Intn(3)) // gap
			}
			end := cur + period.Chronon(1+rng.Intn(3))
			p := period.New(cur, end)
			tp := relation.NewTuple(value.String_("a"), value.Time(p.Start), value.Time(p.End))
			rows = append(rows, row{orig: i, t: tp, p: p})
			cur = end
		}
		if !sortedDisjoint(rows) {
			t.Fatalf("generator must produce sorted disjoint groups")
		}
		fast := coalesceOnePass(append([]row(nil), rows...), t1, t2)

		// The reference algorithm, group-locally.
		slow := append([]row(nil), rows...)
		for i := 0; i < len(slow); {
			merged := false
			for j := i + 1; j < len(slow); j++ {
				if !slow[i].p.Adjacent(slow[j].p) {
					continue
				}
				u, _ := slow[i].p.Union(slow[j].p)
				slow[i].p = u
				slow[i].t = slow[i].t.WithPeriodAt(t1, t2, u)
				slow = append(slow[:j], slow[j+1:]...)
				merged = true
				break
			}
			if !merged {
				i++
			}
		}
		if len(fast) != len(slow) {
			t.Fatalf("one-pass produced %d rows, iterative %d", len(fast), len(slow))
		}
		for i := range fast {
			if !fast[i].t.Equal(slow[i].t) || fast[i].orig != slow[i].orig {
				t.Fatalf("row %d: one-pass %s (orig %d) vs iterative %s (orig %d)",
					i, fast[i].t, fast[i].orig, slow[i].t, slow[i].orig)
			}
		}
	}
}

// TestSortedDisjoint pins the fast-path guard.
func TestSortedDisjoint(t *testing.T) {
	p := func(a, b int) period.Period { return period.New(period.Chronon(a), period.Chronon(b)) }
	mk := func(ps ...period.Period) []row {
		rows := make([]row, len(ps))
		for i, pp := range ps {
			rows[i] = row{orig: i, p: pp}
		}
		return rows
	}
	if !sortedDisjoint(mk(p(1, 2), p(2, 3), p(5, 7))) {
		t.Error("adjacent+gapped sorted periods must qualify")
	}
	if sortedDisjoint(mk(p(1, 3), p(2, 4))) {
		t.Error("overlap must disqualify")
	}
	if sortedDisjoint(mk(p(3, 4), p(1, 2))) {
		t.Error("unsorted must disqualify")
	}
	if sortedDisjoint(mk(p(2, 2))) {
		t.Error("empty period must disqualify")
	}
	if !sortedDisjoint(nil) {
		t.Error("the empty group qualifies vacuously")
	}
}
