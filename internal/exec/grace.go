// Memory-bounded execution (Options.MemoryBudget > 0): a per-run byte
// arbiter plus grace-hash recursive partitioning that lets every blocking
// hash operator scale past memory, exactly as the paper presents its
// partitioning algorithms.
//
// The shape mirrors the parallel exchange of parallel.go, traded from
// space-parallelism to time: an operator whose materialized state would
// exceed its budget share routes its input rows — tagged with their
// original list positions — into hash partitions on disk (package spill),
// so every key group lands wholly in one partition in list order. The
// partitions are then processed one at a time (or workers at a time when
// composed with Options.Parallelism, each worker bounded by budget/W) with
// the same per-partition algorithms the parallel exchange uses, and the
// tagged outputs merge back through the same deterministic sequence-key
// gather. A partition that still exceeds the share re-partitions
// recursively on fresh bits of the canonical key hash; the recursion is
// depth-capped, so a pathological single-key skew degrades to in-memory
// processing rather than looping.
//
// Because the gather is the parallel exchange's — and that gather is
// proven bit-identical to the sequential engine by the differential suite —
// a budgeted plan produces the reference evaluator's exact result list at
// every budget, spilling or not.
//
// What the budget bounds is the working set of the blocking operators:
// hash tables, materialized build sides, value-group partitions, sort
// runs. Streams between operators and the query's result are outputs, not
// operator state, and are exempt — the standard work_mem contract. Two
// shapes keep unbounded state by construction and are documented rather
// than bounded: a GROUP-BY-less temporal aggregate (one global group whose
// constant intervals need every row) and the fixed floor of the spill
// writers' buffers (fanout × 16KB) under budgets smaller than that.
package exec

import (
	"sort"
	"sync/atomic"

	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/spill"
)

// sortRowsByOrig stable-sorts transformed rows back into original list
// order; fragments of one row keep their in-place sequence.
func sortRowsByOrig(rows []row) {
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].orig < rows[j].orig })
}

// spillFanout is the grace-hash fan-out: each partitioning pass splits a
// too-big input into this many hash partitions.
const spillFanout = 8

// maxSpillLevel caps the recursive re-partitioning depth. Each level
// consumes 3 fresh bits of the 64-bit canonical key hash, so the cap is a
// skew guard, not a capacity limit: beyond it a partition processes in
// memory regardless of size (all rows share a key that no hash can split).
const maxSpillLevel = 6

// minShare floors the per-operator budget share so degenerate budgets
// (budget ≪ fanout × writer buffers) still terminate promptly.
const minShare = 4 << 10

// arbiter tracks the accounted working-set bytes of one engine run. The
// spill decisions themselves are deterministic — each operator compares its
// own accounted bytes against its share (opShare), never the arbiter's
// fluctuating total — so the arbiter is bookkeeping for Stats.PeakBytes,
// safe under the concurrent partition tasks.
type arbiter struct {
	used atomic.Int64
	peak atomic.Int64
}

func (a *arbiter) grow(n int64) {
	u := a.used.Add(n)
	for {
		p := a.peak.Load()
		if u <= p || a.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

func (a *arbiter) release(n int64)  { a.used.Add(-n) }
func (a *arbiter) peakBytes() int64 { return a.peak.Load() }

// budgeted reports that the engine compiles memory-bounded operators.
func (e *Engine) budgeted() bool { return e.opts.MemoryBudget > 0 }

// workers is the partition-task concurrency of the budgeted paths.
func (e *Engine) workers() int {
	if e.opts.Parallelism > 1 {
		return e.opts.Parallelism
	}
	return 1
}

// opShare is one blocking operator's in-memory byte allowance: the budget
// divided into per-worker shares, floored so degenerate configurations
// still make progress.
func (e *Engine) opShare() int64 {
	s := e.opts.MemoryBudget / int64(e.workers())
	if s < minShare {
		s = minShare
	}
	return s
}

// spillBucket routes a canonical key hash to a fan-out bucket at recursion
// level lvl. Levels consume disjoint bit triples of the hash, so keys that
// collide at one level split at the next.
func spillBucket(h uint64, lvl int) int {
	return int((h >> (3 * uint(lvl))) & (spillFanout - 1))
}

// partSource is one grace partition's rows: resident or on disk. bytes and
// count drive the recursion decision without touching the data.
type partSource struct {
	rows  []prow
	file  *spill.File
	bytes int64
	count int
}

// graceSide is a fully drained operator input: resident when it fit its
// share, otherwise fanned out into level-0 hash partitions on disk.
type graceSide struct {
	rows    []prow
	bytes   int64
	count   int
	spilled bool
	parts   []partSource
}

// drainGrace consumes a source into memory until share is exceeded, then
// switches to spilling: the buffered rows flush into fan-out partitions by
// the level-0 hash of idx, and the rest of the stream routes directly.
// Rows are tagged with their arrival positions; partitioning preserves
// arrival order within each partition, so key groups land whole and in
// list order — the invariant every per-partition algorithm relies on.
func (e *Engine) drainGrace(in *source, idx []int, share int64) (*graceSide, error) {
	side := &graceSide{}
	var writers []*spill.Writer
	abort := func() {
		for _, w := range writers {
			if w != nil {
				w.Abort()
			}
		}
	}
	write := func(pr prow) error {
		return writers[spillBucket(pr.t.HashOn(idx), 0)].Append(pr.orig, pr.t)
	}
	for {
		t, err := in.it.next()
		if err != nil {
			abort()
			in.it.close()
			return nil, err
		}
		if t == nil {
			break
		}
		pr := prow{orig: side.count, t: t}
		side.count++
		side.bytes += spill.TupleMemSize(t)
		if !side.spilled {
			side.rows = append(side.rows, pr)
			e.mem.grow(spill.TupleMemSize(t))
			if side.bytes > share {
				// Switch to spilling: everything buffered so far fans out,
				// and the resident bytes return to the arbiter.
				side.spilled = true
				writers = make([]*spill.Writer, spillFanout)
				for b := range writers {
					if writers[b], err = e.spillMgr.Create(); err != nil {
						abort()
						in.it.close()
						return nil, err
					}
				}
				for _, br := range side.rows {
					if err := write(br); err != nil {
						abort()
						in.it.close()
						return nil, err
					}
				}
				e.mem.release(side.bytes)
				side.rows = nil
			}
			continue
		}
		if err := write(pr); err != nil {
			abort()
			in.it.close()
			return nil, err
		}
	}
	if err := in.it.close(); err != nil {
		abort()
		return nil, err
	}
	if !side.spilled {
		return side, nil
	}
	side.parts = make([]partSource, spillFanout)
	for b, w := range writers {
		f, err := w.Finish()
		if err != nil {
			abort()
			return nil, err
		}
		writers[b] = nil
		if f.Count() == 0 {
			f.Remove()
			continue
		}
		side.parts[b] = partSource{file: f, bytes: f.MemBytes(), count: f.Count()}
	}
	return side, nil
}

// releaseResident returns a side's resident bytes to the arbiter once its
// rows are no longer the operator's working set.
func (e *Engine) releaseResident(side *graceSide) {
	if !side.spilled {
		e.mem.release(side.bytes)
	}
}

// splitResident partitions resident rows into fan-out buckets at the given
// level, preserving order. No disk is involved: the rows are already
// resident and the buckets alias them.
func splitResident(rows []prow, idx []int, lvl int) []partSource {
	parts := make([]partSource, spillFanout)
	for _, pr := range rows {
		b := spillBucket(pr.t.HashOn(idx), lvl)
		parts[b].rows = append(parts[b].rows, pr)
		parts[b].bytes += spill.TupleMemSize(pr.t)
		parts[b].count++
	}
	return parts
}

// repartition splits one partition at the given level: resident rows split
// in memory, an on-disk partition streams through fresh writers without
// materializing, and the source file is removed as soon as it is consumed.
func (e *Engine) repartition(ps partSource, idx []int, lvl int) ([]partSource, error) {
	if ps.file == nil {
		return splitResident(ps.rows, idx, lvl), nil
	}
	writers := make([]*spill.Writer, spillFanout)
	abort := func() {
		for _, w := range writers {
			if w != nil {
				w.Abort()
			}
		}
	}
	var err error
	for b := range writers {
		if writers[b], err = e.spillMgr.Create(); err != nil {
			abort()
			return nil, err
		}
	}
	r, err := ps.file.Open()
	if err != nil {
		abort()
		return nil, err
	}
	for {
		seq, t, ok, err := r.Next()
		if err != nil {
			r.Close()
			abort()
			return nil, err
		}
		if !ok {
			break
		}
		if err := writers[spillBucket(t.HashOn(idx), lvl)].Append(seq, t); err != nil {
			r.Close()
			abort()
			return nil, err
		}
	}
	if err := r.Close(); err != nil {
		abort()
		return nil, err
	}
	ps.file.Remove()
	parts := make([]partSource, spillFanout)
	for b, w := range writers {
		f, err := w.Finish()
		if err != nil {
			abort()
			return nil, err
		}
		writers[b] = nil
		if f.Count() == 0 {
			f.Remove()
			continue
		}
		parts[b] = partSource{file: f, bytes: f.MemBytes(), count: f.Count()}
	}
	return parts, nil
}

// loadPart materializes one partition, growing the arbiter by its bytes
// (the caller releases after processing) and removing the backing file.
func (e *Engine) loadPart(ps partSource) ([]prow, error) {
	if ps.file == nil {
		return ps.rows, nil
	}
	r, err := ps.file.Open()
	if err != nil {
		return nil, err
	}
	rows := make([]prow, 0, ps.count)
	for {
		seq, t, ok, err := r.Next()
		if err != nil {
			r.Close()
			return nil, err
		}
		if !ok {
			break
		}
		rows = append(rows, prow{orig: seq, t: t})
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	ps.file.Remove()
	e.mem.grow(ps.bytes)
	return rows, nil
}

// graceEmit1 and graceEmit2 are the per-partition operator bodies: pure
// in-memory functions over sequence-tagged rows whose outputs are
// non-decreasing in sequence key — the contract mergeTagged gathers by.
type (
	graceEmit1 func(part []prow) ([]tagged, error)
	graceEmit2 func(lp, rp []prow) ([]tagged, error)
)

// processGrace1 runs emit over one partition, re-partitioning while the
// partition exceeds the share and can still split.
func (e *Engine) processGrace1(ps partSource, idx []int, lvl int, emit graceEmit1) ([]tagged, error) {
	if ps.count == 0 {
		return nil, nil
	}
	if ps.bytes <= e.opShare() || lvl > maxSpillLevel || ps.count <= 1 {
		rows, err := e.loadPart(ps)
		if err != nil {
			return nil, err
		}
		out, err := emit(rows)
		if ps.file != nil {
			e.mem.release(ps.bytes)
		}
		return out, err
	}
	subs, err := e.repartition(ps, idx, lvl)
	if err != nil {
		return nil, err
	}
	outs := make([][]tagged, spillFanout)
	for b := range subs {
		if outs[b], err = e.processGrace1(subs[b], idx, lvl+1, emit); err != nil {
			return nil, err
		}
	}
	return mergeTaggedSorted(outs), nil
}

// processGrace2 is processGrace1 for a two-sided operator: the pair of
// partitions holding one bucket's left and right rows processes together,
// splitting together while their combined size exceeds the share. Left and
// right hash on their own key columns (lidx/ridx), which agree on equal
// keys by canonical hashing — the same pairing the parallel exchange uses.
func (e *Engine) processGrace2(lp, rp partSource, lidx, ridx []int, lvl int, emit graceEmit2) ([]tagged, error) {
	if lp.count == 0 && rp.count == 0 {
		return nil, nil
	}
	if lp.bytes+rp.bytes <= e.opShare() || lvl > maxSpillLevel || lp.count+rp.count <= 1 {
		lrows, err := e.loadPart(lp)
		if err != nil {
			return nil, err
		}
		rrows, err := e.loadPart(rp)
		if err != nil {
			return nil, err
		}
		out, err := emit(lrows, rrows)
		if lp.file != nil {
			e.mem.release(lp.bytes)
		}
		if rp.file != nil {
			e.mem.release(rp.bytes)
		}
		return out, err
	}
	lsubs, err := e.repartition(lp, lidx, lvl)
	if err != nil {
		return nil, err
	}
	rsubs, err := e.repartition(rp, ridx, lvl)
	if err != nil {
		return nil, err
	}
	outs := make([][]tagged, spillFanout)
	for b := range lsubs {
		if outs[b], err = e.processGrace2(lsubs[b], rsubs[b], lidx, ridx, lvl+1, emit); err != nil {
			return nil, err
		}
	}
	return mergeTaggedSorted(outs), nil
}

// mergeTaggedSorted is mergeTagged keeping the gather keys: the recursive
// grace merge needs its intermediate results to stay tagged, because a
// bucket's merged output becomes one input stream of the level above.
// Ties on seq break by partition index, and equal-seq tuples never span
// partitions; the heap loop itself is shared (mergeTaggedInto).
func mergeTaggedSorted(parts [][]tagged) []tagged {
	out := make([]tagged, 0, taggedTotal(parts))
	mergeTaggedInto(parts, func(tg tagged) { out = append(out, tg) })
	return out
}

// untag strips the gather keys off a merged output.
func untag(ts []tagged) []relation.Tuple {
	out := make([]relation.Tuple, len(ts))
	for i, t := range ts {
		out[i] = t.t
	}
	return out
}

// graceNoteSpill records that one operator actually spilled, and — when the
// engine is also parallel — that its partitions fan out to the worker pool.
func (e *Engine) graceNoteSpill() {
	e.stats.SpilledOps++
	if w := e.workers(); w > 1 {
		e.stats.ParallelOps++
		e.stats.Partitions += w
	}
}

// graceRun1 drives a one-sided grace operator end to end: drain (spilling
// past the share), process partitions (concurrently under Parallelism),
// gather by sequence key.
func (e *Engine) graceRun1(in *source, idx []int, emit graceEmit1) ([]relation.Tuple, error) {
	side, err := e.drainGrace(in, idx, e.opShare())
	if err != nil {
		return nil, err
	}
	if !side.spilled {
		out, err := emit(side.rows)
		e.releaseResident(side)
		if err != nil {
			return nil, err
		}
		return untag(out), nil
	}
	e.graceNoteSpill()
	outs := make([][]tagged, spillFanout)
	if err := runTasks(e.workers(), spillFanout, func(b int) error {
		res, err := e.processGrace1(side.parts[b], idx, 1, emit)
		outs[b] = res
		return err
	}); err != nil {
		return nil, err
	}
	return untag(mergeTaggedSorted(outs)), nil
}

// graceRun2 drives a two-sided grace operator: both sides drain against
// half the share; if either spilled, both sides partition (a resident side
// splits in memory) and the bucket pairs process together.
func (e *Engine) graceRun2(l, r *source, lidx, ridx []int, emit func(ls, rs *graceSide) graceEmit2) ([]relation.Tuple, error) {
	ls, err := e.drainGrace(l, lidx, e.opShare()/2)
	if err != nil {
		r.it.close()
		return nil, err
	}
	rs, err := e.drainGrace(r, ridx, e.opShare()/2)
	if err != nil {
		return nil, err
	}
	return e.graceRun2From(ls, rs, lidx, ridx, emit)
}

// graceRun2From is graceRun2 after the drains, for callers that drain the
// sides themselves (the hybrid join drains its build side first and only
// drains the probe side when the build overflowed).
func (e *Engine) graceRun2From(ls, rs *graceSide, lidx, ridx []int, emit func(ls, rs *graceSide) graceEmit2) ([]relation.Tuple, error) {
	em := emit(ls, rs)
	if !ls.spilled && !rs.spilled {
		out, err := em(ls.rows, rs.rows)
		e.releaseResident(ls)
		e.releaseResident(rs)
		if err != nil {
			return nil, err
		}
		return untag(out), nil
	}
	e.graceNoteSpill()
	lparts, rparts := ls.parts, rs.parts
	if !ls.spilled {
		lparts = splitResident(ls.rows, lidx, 0)
	}
	if !rs.spilled {
		rparts = splitResident(rs.rows, ridx, 0)
	}
	outs := make([][]tagged, spillFanout)
	if err := runTasks(e.workers(), spillFanout, func(b int) error {
		res, err := e.processGrace2(lparts[b], rparts[b], lidx, ridx, 1, em)
		outs[b] = res
		return err
	}); err != nil {
		return nil, err
	}
	e.releaseResident(ls)
	e.releaseResident(rs)
	return untag(mergeTaggedSorted(outs)), nil
}

// ---- shared per-partition operator bodies -------------------------------
//
// These are the in-memory partition algorithms shared by the parallel
// exchange (parallel.go) and the grace spill paths: each takes one
// partition's sequence-tagged rows and returns outputs non-decreasing in
// sequence key.

// rdupPartition keeps the first occurrence of each full-tuple group.
func rdupPartition(part []prow, idx []int) []tagged {
	groups := newHashGroups(idx, len(part))
	var res []tagged
	for _, pr := range part {
		if _, fresh := groups.groupOf(pr.t); fresh {
			res = append(res, tagged{seq: pr.orig, t: pr.t})
		}
	}
	return res
}

// budgetedPartition is the core of \ and ∪: fund rows build per-key
// multiplicity budgets, scan rows stream against them with budget hits
// cancelling, and survivors carry their scan position plus offset.
func budgetedPartition(fund, scan []prow, idx []int, offset int) []tagged {
	groups := newHashGroups(idx, len(fund))
	var budget []int
	for _, pr := range fund {
		gid, fresh := groups.groupOf(pr.t)
		if fresh {
			budget = append(budget, 0)
		}
		budget[gid]++
	}
	var res []tagged
	for _, pr := range scan {
		if gid := groups.lookup(pr.t, idx); gid >= 0 && budget[gid] > 0 {
			budget[gid]--
			continue
		}
		res = append(res, tagged{seq: offset + pr.orig, t: pr.t})
	}
	return res
}

// passThrough emits a partition's rows unchanged under their own sequence
// keys — the left side of ∪ and ∪ᵀ, which passes through whole.
func passThrough(part []prow) []tagged {
	res := make([]tagged, len(part))
	for i, pr := range part {
		res[i] = tagged{seq: pr.orig, t: pr.t}
	}
	return res
}

// groupAggPartition runs a grouping operator over one partition: one output
// batch per group, tagged with the group's first-occurrence position.
func groupAggPartition(part []prow, gidx []int, emit func([]relation.Tuple) ([]relation.Tuple, error)) ([]tagged, error) {
	groups := newHashGroups(gidx, len(part))
	var first []int
	var tuples [][]relation.Tuple
	for _, pr := range part {
		gid, fresh := groups.groupOf(pr.t)
		if fresh {
			first = append(first, pr.orig)
			tuples = append(tuples, nil)
		}
		tuples[gid] = append(tuples[gid], pr.t)
	}
	var res []tagged
	for g := range tuples {
		out, err := emit(tuples[g])
		if err != nil {
			return nil, err
		}
		for _, t := range out {
			res = append(res, tagged{seq: first[g], t: t})
		}
	}
	return res, nil
}

// valueGroupPartition runs a value-equivalence group transform (rdupᵀ's
// head/subtract elimination, coalᵀ's adjacency merge) over one partition,
// re-interleaving the fragments into original list order.
func valueGroupPartition(part []prow, vidx []int, t1, t2 int, transform func([]row, int, int) []row) []tagged {
	groups := newHashGroups(vidx, len(part))
	var members [][]row
	for _, pr := range part {
		gid, fresh := groups.groupOf(pr.t)
		if fresh {
			members = append(members, nil)
		}
		members[gid] = append(members[gid], row{orig: pr.orig, t: pr.t, p: pr.t.PeriodAt(t1, t2)})
	}
	var all []row
	for g := range members {
		all = append(all, transform(members[g], t1, t2)...)
	}
	sortRowsByOrig(all)
	res := make([]tagged, len(all))
	for i, rw := range all {
		res[i] = tagged{seq: rw.orig, t: rw.t}
	}
	return res
}

// tdiffPartition runs \ᵀ over one partition pair: per value group, the
// elementary-interval subtraction, surviving fragments in left list order.
func tdiffPartition(lp, rp []prow, vidx []int, t1, t2 int) []tagged {
	leftMembers, rightMembers, _ := valueMembership(lp, rp, vidx)
	frag := make([][]relation.Tuple, len(lp))
	for gid, lIdx := range leftMembers {
		if len(lIdx) == 0 {
			continue
		}
		lps := memberPeriods(lp, lIdx, t1, t2)
		rps := memberPeriods(rp, rightMembers[gid], t1, t2)
		for x, fs := range tdiffGroupFragments(lps, rps) {
			k := lIdx[x]
			for _, p := range fs {
				frag[k] = append(frag[k], lp[k].t.WithPeriodAt(t1, t2, p))
			}
		}
	}
	var res []tagged
	for k, pr := range lp {
		for _, t := range frag[k] {
			res = append(res, tagged{seq: pr.orig, t: t})
		}
	}
	return res
}

// tunionPartition computes ∪ᵀ's right-excess contribution for one
// partition pair: per value group in first-right-occurrence order, the
// excess-layer periods, tagged with the group's first right position plus
// offset (so they gather behind a whole left list when offset is the left
// cardinality).
func tunionPartition(lp, rp []prow, vidx []int, t1, t2, offset int) []tagged {
	leftMembers, rightMembers, rOrder := valueMembership(lp, rp, vidx)
	var res []tagged
	for _, gid := range rOrder {
		lps := memberPeriods(lp, leftMembers[gid], t1, t2)
		rps := memberPeriods(rp, rightMembers[gid], t1, t2)
		rep := rp[rightMembers[gid][0]]
		for _, p := range tunionExtraPeriods(lps, rps) {
			res = append(res, tagged{seq: offset + rep.orig, t: rep.t.WithPeriodAt(t1, t2, p)})
		}
	}
	return res
}

// ---- budgeted operator sources ------------------------------------------

// graceGroupSource compiles a one-sided keyed blocking operator (rdup, the
// temporal value-group family, aggregation) in memory-bounded mode.
func (e *Engine) graceGroupSource(in *source, idx []int, outSchema *schema.Schema, order relation.OrderSpec, emit graceEmit1) *source {
	return lazySource(outSchema, order, func() ([]relation.Tuple, error) {
		return e.graceRun1(in, idx, emit)
	})
}

// graceDiffSource compiles \ in memory-bounded mode: both sides partition
// on the full tuple, the right side funds per-key budgets, left survivors
// gather in left list order.
func (e *Engine) graceDiffSource(l, r *source, outSchema *schema.Schema, order relation.OrderSpec) *source {
	idx := identityIdx(l.schema.Len())
	return lazySource(outSchema, order, func() ([]relation.Tuple, error) {
		return e.graceRun2(l, r, idx, idx, func(_, _ *graceSide) graceEmit2 {
			return func(lp, rp []prow) ([]tagged, error) {
				return budgetedPartition(rp, lp, idx, 0), nil
			}
		})
	})
}

// graceUnionSource compiles the max-multiplicity ∪ in memory-bounded mode:
// the left list passes through whole (its rows gather back into list order
// by sequence key), right tuples exceeding the left multiplicities follow.
func (e *Engine) graceUnionSource(l, r *source, outSchema *schema.Schema) *source {
	idx := identityIdx(l.schema.Len())
	return lazySource(outSchema, nil, func() ([]relation.Tuple, error) {
		return e.graceRun2(l, r, idx, idx, func(ls, _ *graceSide) graceEmit2 {
			offset := ls.count
			return func(lp, rp []prow) ([]tagged, error) {
				return append(passThrough(lp), budgetedPartition(lp, rp, idx, offset)...), nil
			}
		})
	})
}

// graceTDiffSource compiles \ᵀ in memory-bounded mode.
func (e *Engine) graceTDiffSource(l, r *source, order relation.OrderSpec) *source {
	vidx := valueIdx(l.schema)
	t1, t2 := l.schema.TimeIndices()
	return lazySource(l.schema, order, func() ([]relation.Tuple, error) {
		return e.graceRun2(l, r, vidx, vidx, func(_, _ *graceSide) graceEmit2 {
			return func(lp, rp []prow) ([]tagged, error) {
				return tdiffPartition(lp, rp, vidx, t1, t2), nil
			}
		})
	})
}

// graceTUnionSource compiles ∪ᵀ in memory-bounded mode.
func (e *Engine) graceTUnionSource(l, r *source) *source {
	vidx := valueIdx(l.schema)
	t1, t2 := l.schema.TimeIndices()
	return lazySource(l.schema, nil, func() ([]relation.Tuple, error) {
		return e.graceRun2(l, r, vidx, vidx, func(ls, _ *graceSide) graceEmit2 {
			offset := ls.count
			return func(lp, rp []prow) ([]tagged, error) {
				return append(passThrough(lp), tunionPartition(lp, rp, vidx, t1, t2, offset)...), nil
			}
		})
	})
}

// residentSource wraps a drained-but-resident grace side as an ordinary
// build-side source, the rows in their arrival order.
func residentSource(side *graceSide, sch *schema.Schema) *source {
	brows := make([]relation.Tuple, len(side.rows))
	for i, pr := range side.rows {
		brows[i] = pr.t
	}
	rel := relation.FromTuplesTrusted(sch, brows)
	return &source{it: &sliceIter{ts: rel.Tuples(), owned: true}, schema: sch}
}

// graceJoinSource compiles an equi-keyed × / ×ᵀ in memory-bounded mode as a
// hybrid hash join. The build (right) side drains against half the operator
// share first; while it stays resident the probe side is a stream between
// operators — not operator state — so it is never drained, and the ordinary
// hash join runs against the resident build rows, columnar when the engine
// is columnar. Only when the build side itself overflows do both sides
// grace-partition on the join keys, each bucket building on its right rows
// and probing its left rows in sequence order, the pairs gathering into the
// reference's left-major sequence.
func (e *Engine) graceJoinSource(l, r *source, j *pairJoiner, order relation.OrderSpec) *source {
	if e.columnar() {
		e.stats.VectorOps++
		compute := func() ([]*batch, error) {
			rs, err := e.drainGrace(r, j.ridx, e.opShare()/2)
			if err != nil {
				l.it.close()
				return nil, err
			}
			if !rs.spilled {
				defer e.releaseResident(rs)
				v := &vecJoinIter{
					e: e, left: l.vecInput(), right: residentSource(rs, r.schema),
					out: j.out, lw: j.lw, rw: j.rw,
					lidx: j.lidx, ridx: j.ridx, residual: j.residual,
					temporal: j.temporal, lt1: j.lt1, lt2: j.lt2,
				}
				var out []*batch
				for {
					b, err := v.nextBatch()
					if err != nil {
						v.close()
						return nil, err
					}
					if b == nil {
						break
					}
					out = append(out, b)
				}
				if err := v.close(); err != nil {
					return nil, err
				}
				return out, nil
			}
			ts, err := e.graceJoinSpilled(l, rs, j)
			if err != nil {
				return nil, err
			}
			out := tupleBatches(j.out, ts)
			e.stats.VectorBatches += len(out)
			return out, nil
		}
		return vecSource(&lazyBatchesIter{compute: compute}, j.out, order)
	}
	return lazySource(j.out, order, func() ([]relation.Tuple, error) {
		rs, err := e.drainGrace(r, j.ridx, e.opShare()/2)
		if err != nil {
			l.it.close()
			return nil, err
		}
		if !rs.spilled {
			defer e.releaseResident(rs)
			it := &productIter{
				left: l.it, right: residentSource(rs, r.schema),
				out: j.out, lw: j.lw, rw: j.rw, lidx: j.lidx, ridx: j.ridx,
				residual: j.residual, temporal: j.temporal, lt1: j.lt1, lt2: j.lt2,
			}
			var out []relation.Tuple
			for {
				t, err := it.next()
				if err != nil {
					it.close()
					return nil, err
				}
				if t == nil {
					break
				}
				out = append(out, t)
			}
			if err := it.close(); err != nil {
				return nil, err
			}
			return out, nil
		}
		return e.graceJoinSpilled(l, rs, j)
	})
}

// graceJoinSpilled is the hybrid's overflow path: with the build side
// already partitioned to disk the probe side drains against its half-share
// too, and the two-sided grace recursion pairs the buckets.
func (e *Engine) graceJoinSpilled(l *source, rs *graceSide, j *pairJoiner) ([]relation.Tuple, error) {
	ls, err := e.drainGrace(l, j.lidx, e.opShare()/2)
	if err != nil {
		return nil, err
	}
	return e.graceRun2From(ls, rs, j.lidx, j.ridx, func(_, _ *graceSide) graceEmit2 {
		return j.joinPartition
	})
}
