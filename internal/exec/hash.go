package exec

import (
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// hashGroups assigns dense group ids to tuples equal on a key-column set.
// Collisions are resolved by chaining on the canonical tuple hash and every
// candidate is confirmed with value equality, so distinct keys never share a
// group. Group ids are allocated in first-occurrence order, which is the
// iteration order the reference evaluator's string-keyed maps expose.
type hashGroups struct {
	idx     []int
	buckets map[uint64][]int
	reps    []relation.Tuple
}

func newHashGroups(idx []int, sizeHint int) *hashGroups {
	return &hashGroups{idx: idx, buckets: make(map[uint64][]int, sizeHint)}
}

// groupOf returns t's group id, allocating a fresh one (fresh=true) for the
// first tuple with a given key.
func (g *hashGroups) groupOf(t relation.Tuple) (id int, fresh bool) {
	h := t.HashOn(g.idx)
	for _, gid := range g.buckets[h] {
		if g.reps[gid].EqualOn(g.idx, t) {
			return gid, false
		}
	}
	id = len(g.reps)
	g.reps = append(g.reps, t)
	g.buckets[h] = append(g.buckets[h], id)
	return id, true
}

// lookup finds the group whose key equals t restricted to probeIdx —
// position k of probeIdx pairs with position k of the table's key — or -1.
func (g *hashGroups) lookup(t relation.Tuple, probeIdx []int) int {
	h := t.HashOn(probeIdx)
	for _, gid := range g.buckets[h] {
		rep := g.reps[gid]
		match := true
		for k, pj := range probeIdx {
			if !t[pj].Equal(rep[g.idx[k]]) {
				match = false
				break
			}
		}
		if match {
			return gid
		}
	}
	return -1
}

// size returns the number of distinct groups seen.
func (g *hashGroups) size() int { return len(g.reps) }

// identityIdx returns [0, 1, ..., n).
func identityIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// valueIdx returns the positions of a temporal schema's non-time attributes:
// the value-equivalence columns of Section 2.1.
func valueIdx(s *schema.Schema) []int {
	t1, t2 := s.TimeIndices()
	out := make([]int, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		if i == t1 || i == t2 {
			continue
		}
		out = append(out, i)
	}
	return out
}

// groupsContiguous reports whether tuples equal on idx are guaranteed to be
// adjacent in a list sorted by ord: some prefix of ord covers exactly the
// idx attribute set. When true the grouping operators run without a hash
// table in a single comparison pass.
func groupsContiguous(ord relation.OrderSpec, s *schema.Schema, idx []int) bool {
	want := make(map[string]bool, len(idx))
	for _, j := range idx {
		want[s.At(j).Name] = true
	}
	// Count each distinct attribute once: an order spec may repeat a key
	// (sort_{Name,Name} is valid), and a repeat proves nothing new.
	covered := 0
	seen := make(map[string]bool, len(want))
	for _, k := range ord {
		if !want[k.Attr] {
			return false
		}
		if !seen[k.Attr] {
			seen[k.Attr] = true
			covered++
		}
		if covered == len(want) {
			return true
		}
	}
	return len(want) == 0
}

// groupRows partitions row indices by equality on idx, preserving
// first-occurrence group order and list order within each group. With
// contiguous=true (the caller proved equal rows adjacent via the input's
// OrderSpec) it runs hash-free in one comparison pass.
func groupRows(rows []relation.Tuple, idx []int, contiguous bool) [][]int {
	if len(rows) == 0 {
		return nil
	}
	if contiguous {
		var out [][]int
		cur := []int{0}
		for i := 1; i < len(rows); i++ {
			if rows[i].EqualOn(idx, rows[i-1]) {
				cur = append(cur, i)
				continue
			}
			out = append(out, cur)
			cur = []int{i}
		}
		return append(out, cur)
	}
	groups := newHashGroups(idx, len(rows))
	var out [][]int
	for i, t := range rows {
		gid, fresh := groups.groupOf(t)
		if fresh {
			out = append(out, nil)
		}
		out[gid] = append(out[gid], i)
	}
	return out
}
