package exec

import (
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// hashGroups assigns dense group ids to tuples equal on a key-column set.
// Collisions are resolved by chaining on the canonical tuple hash and every
// candidate is confirmed with value equality, so distinct keys never share a
// group. Group ids are allocated in first-occurrence order, which is the
// iteration order the reference evaluator's string-keyed maps expose.
type hashGroups struct {
	idx     []int
	buckets map[uint64][]int
	reps    []relation.Tuple
}

func newHashGroups(idx []int, sizeHint int) *hashGroups {
	return &hashGroups{idx: idx, buckets: make(map[uint64][]int, sizeHint)}
}

// groupOf returns t's group id, allocating a fresh one (fresh=true) for the
// first tuple with a given key.
func (g *hashGroups) groupOf(t relation.Tuple) (id int, fresh bool) {
	h := t.HashOn(g.idx)
	for _, gid := range g.buckets[h] {
		if g.reps[gid].EqualOn(g.idx, t) {
			return gid, false
		}
	}
	id = len(g.reps)
	g.reps = append(g.reps, t)
	g.buckets[h] = append(g.buckets[h], id)
	return id, true
}

// lookup finds the group whose key equals t restricted to probeIdx —
// position k of probeIdx pairs with position k of the table's key — or -1.
func (g *hashGroups) lookup(t relation.Tuple, probeIdx []int) int {
	h := t.HashOn(probeIdx)
	for _, gid := range g.buckets[h] {
		rep := g.reps[gid]
		match := true
		for k, pj := range probeIdx {
			if !t[pj].Equal(rep[g.idx[k]]) {
				match = false
				break
			}
		}
		if match {
			return gid
		}
	}
	return -1
}

// size returns the number of distinct groups seen.
func (g *hashGroups) size() int { return len(g.reps) }

// identityIdx returns [0, 1, ..., n).
func identityIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// valueIdx returns the positions of a temporal schema's non-time attributes:
// the value-equivalence columns of Section 2.1 (shared with the planner's
// decision procedure in package physical).
func valueIdx(s *schema.Schema) []int { return physical.ValueIdx(s) }

// groupsContiguous reports whether tuples equal on idx are guaranteed to be
// adjacent in a list sorted by ord. The decision lives in package physical
// so the engine, the cost model and the stratum meter agree; the empty-idx
// case (grouping on no columns: one global group, trivially contiguous) is
// engine-local because physical treats "no keys" as "no merge variant".
func groupsContiguous(ord relation.OrderSpec, s *schema.Schema, idx []int) bool {
	if len(idx) == 0 {
		return true
	}
	return physical.GroupsContiguous(ord, s, idx)
}

// groupRows partitions row indices by equality on idx, preserving
// first-occurrence group order and list order within each group. With
// contiguous=true (the caller proved equal rows adjacent via the input's
// OrderSpec) it runs hash-free in one comparison pass.
func groupRows(rows []relation.Tuple, idx []int, contiguous bool) [][]int {
	if len(rows) == 0 {
		return nil
	}
	if contiguous {
		var out [][]int
		cur := []int{0}
		for i := 1; i < len(rows); i++ {
			if rows[i].EqualOn(idx, rows[i-1]) {
				cur = append(cur, i)
				continue
			}
			out = append(out, cur)
			cur = []int{i}
		}
		return append(out, cur)
	}
	groups := newHashGroups(idx, len(rows))
	var out [][]int
	for i, t := range rows {
		gid, fresh := groups.groupOf(t)
		if fresh {
			out = append(out, nil)
		}
		out[gid] = append(out[gid], i)
	}
	return out
}
