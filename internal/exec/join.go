package exec

import (
	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// equiKeys splits a (possibly fused) product predicate into hashable
// equality pairs — conjuncts of the form leftCol = rightCol over the
// product's output schema — and the residual predicate evaluated per
// candidate pair. Columns at or beyond lw+rw (a temporal product's fresh
// intersection period) cannot be hashed and stay residual.
func equiKeys(p expr.Pred, out *schema.Schema, lw, rw int) (lidx, ridx []int, residual expr.Pred) {
	if p == nil {
		return nil, nil, nil
	}
	var rest []expr.Pred
	for _, c := range expr.SplitConj(p) {
		if cmp, ok := c.(expr.Cmp); ok && cmp.Op == expr.Eq {
			lc, lok := cmp.L.(expr.Col)
			rc, rok := cmp.R.(expr.Col)
			if lok && rok {
				i, j := out.Index(lc.Name), out.Index(rc.Name)
				switch {
				case i >= 0 && i < lw && j >= lw && j < lw+rw:
					lidx = append(lidx, i)
					ridx = append(ridx, j-lw)
					continue
				case j >= 0 && j < lw && i >= lw && i < lw+rw:
					lidx = append(lidx, j)
					ridx = append(ridx, i-lw)
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	if len(lidx) == 0 {
		return nil, nil, p
	}
	if len(rest) == 0 {
		return lidx, ridx, nil
	}
	return lidx, ridx, expr.ConjList(rest)
}

// productIter evaluates × and ×ᵀ (optionally with a fused join predicate) in
// the reference's left-major, right-list order. With equality keys it is a
// hash join: the right side is built into a collision-safe table and each
// left tuple visits only its key's candidates. Without keys it is a block
// nested loop over the materialized right side that reuses a scratch tuple,
// allocating only for emitted pairs.
type productIter struct {
	left     iterator
	right    *source
	out      *schema.Schema
	lw, rw   int
	lidx     []int // probe columns in the combined schema (left positions)
	ridx     []int // build columns in the right schema
	residual expr.Pred
	temporal bool
	lt1, lt2 int // left period positions (temporal)

	built   bool
	rows    []relation.Tuple
	periods []period.Period
	table   *hashGroups
	members [][]int

	cur  relation.Tuple
	curP period.Period
	cand []int
	ci   int
	buf  relation.Tuple
}

func (p *productIter) build() error {
	r, err := drain(p.right)
	if err != nil {
		return err
	}
	p.rows = r.Tuples()
	if p.temporal {
		p.periods = r.Periods()
	}
	if len(p.lidx) > 0 {
		p.table = newHashGroups(p.ridx, len(p.rows))
		for i, t := range p.rows {
			gid, fresh := p.table.groupOf(t)
			if fresh {
				p.members = append(p.members, nil)
			}
			p.members[gid] = append(p.members[gid], i)
		}
	} else {
		p.cand = identityIdx(len(p.rows))
	}
	p.built = true
	return nil
}

// advance pulls the next probe tuple and positions the candidate cursor.
func (p *productIter) advance() error {
	for {
		t, err := p.left.next()
		if err != nil {
			return err
		}
		if t == nil {
			p.cur = nil
			return nil
		}
		p.cur = t
		if p.temporal {
			p.curP = t.PeriodAt(p.lt1, p.lt2)
		}
		p.ci = 0
		if p.table == nil {
			return nil // nested loop: all right rows are candidates
		}
		if gid := p.table.lookup(t, p.lidx); gid >= 0 {
			p.cand = p.members[gid]
			return nil
		}
		// No hash match: try the next left tuple.
	}
}

func (p *productIter) next() (relation.Tuple, error) {
	if !p.built {
		if err := p.build(); err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	width := p.lw + p.rw
	if p.temporal {
		width += 2
	}
	for p.cur != nil {
		for p.ci < len(p.cand) {
			ri := p.cand[p.ci]
			p.ci++
			var iv period.Period
			if p.temporal {
				iv = p.curP.Intersect(p.periods[ri])
				if iv.Empty() {
					continue
				}
			}
			if p.buf == nil {
				p.buf = make(relation.Tuple, width)
			}
			copy(p.buf, p.cur)
			copy(p.buf[p.lw:], p.rows[ri])
			if p.temporal {
				p.buf[p.lw+p.rw] = value.Time(iv.Start)
				p.buf[p.lw+p.rw+1] = value.Time(iv.End)
			}
			if p.residual != nil {
				ok, err := p.residual.Holds(p.out, p.buf)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			t := p.buf
			p.buf = nil
			return t, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

func (p *productIter) close() error { return p.left.close() }

// buildProduct compiles × / ×ᵀ with an optional fused join predicate; the
// join idioms dispatch here with their predicate.
func (e *Engine) buildProduct(n algebra.Node, pred expr.Pred, temporal bool) (*source, error) {
	l, r, err := e.buildBoth(n)
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	lw, rw := l.schema.Len(), r.schema.Len()
	lidx, ridx, residual := equiKeys(pred, outSchema, lw, rw)
	it := &productIter{
		left:     l.it,
		right:    r,
		out:      outSchema,
		lw:       lw,
		rw:       rw,
		lidx:     lidx,
		ridx:     ridx,
		residual: residual,
		temporal: temporal,
	}
	leftOrder := l.order
	if temporal {
		it.lt1, it.lt2 = l.schema.TimeIndices()
		// Table 1: the order of ×ᵀ is the left order's time-free prefix.
		leftOrder = leftOrder.TimeFreePrefix()
	}
	return &source{
		it:     it,
		schema: outSchema,
		order:  eval.OrderAfterProduct(leftOrder, r.schema, outSchema),
	}, nil
}
