package exec

import (
	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/spill"
	"tqp/internal/value"
)

// productIter evaluates × and ×ᵀ (optionally with a fused join predicate) in
// the reference's left-major, right-list order. With equality keys it is a
// hash join: the right side is built into a collision-safe table and each
// left tuple visits only its key's candidates. Without keys it is a block
// nested loop over the materialized right side that reuses a scratch tuple,
// allocating only for emitted pairs.
type productIter struct {
	left     iterator
	right    *source
	out      *schema.Schema
	lw, rw   int
	lidx     []int // probe columns in the combined schema (left positions)
	ridx     []int // build columns in the right schema
	residual expr.Pred
	temporal bool
	lt1, lt2 int // left period positions (temporal)

	built   bool
	rows    []relation.Tuple
	periods []period.Period
	table   *hashGroups
	members [][]int

	cur  relation.Tuple
	curP period.Period
	cand []int
	ci   int
	buf  relation.Tuple
}

func (p *productIter) build() error {
	r, err := drain(p.right)
	if err != nil {
		return err
	}
	p.rows = r.Tuples()
	if p.temporal {
		p.periods = r.Periods()
	}
	if len(p.lidx) > 0 {
		p.table = newHashGroups(p.ridx, len(p.rows))
		for i, t := range p.rows {
			gid, fresh := p.table.groupOf(t)
			if fresh {
				p.members = append(p.members, nil)
			}
			p.members[gid] = append(p.members[gid], i)
		}
	} else {
		p.cand = identityIdx(len(p.rows))
	}
	p.built = true
	return nil
}

// advance pulls the next probe tuple and positions the candidate cursor.
func (p *productIter) advance() error {
	for {
		t, err := p.left.next()
		if err != nil {
			return err
		}
		if t == nil {
			p.cur = nil
			return nil
		}
		p.cur = t
		if p.temporal {
			p.curP = t.PeriodAt(p.lt1, p.lt2)
		}
		p.ci = 0
		if p.table == nil {
			return nil // nested loop: all right rows are candidates
		}
		if gid := p.table.lookup(t, p.lidx); gid >= 0 {
			p.cand = p.members[gid]
			return nil
		}
		// No hash match: try the next left tuple.
	}
}

func (p *productIter) next() (relation.Tuple, error) {
	if !p.built {
		if err := p.build(); err != nil {
			return nil, err
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	width := p.lw + p.rw
	if p.temporal {
		width += 2
	}
	for p.cur != nil {
		for p.ci < len(p.cand) {
			ri := p.cand[p.ci]
			p.ci++
			var iv period.Period
			if p.temporal {
				iv = p.curP.Intersect(p.periods[ri])
				if iv.Empty() {
					continue
				}
			}
			if p.buf == nil {
				p.buf = make(relation.Tuple, width)
			}
			copy(p.buf, p.cur)
			copy(p.buf[p.lw:], p.rows[ri])
			if p.temporal {
				p.buf[p.lw+p.rw] = value.Time(iv.Start)
				p.buf[p.lw+p.rw+1] = value.Time(iv.End)
			}
			if p.residual != nil {
				ok, err := p.residual.Holds(p.out, p.buf)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			t := p.buf
			p.buf = nil
			return t, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

func (p *productIter) close() error { return p.left.close() }

// mergeJoinIter evaluates an equi-key join over inputs both delivered in a
// key-covering order: the right side is materialized once (as the hash join
// does to build its table) and a single pointer advances monotonically as
// the sorted left side streams through, each left tuple pairing with its
// contiguous right key group in right-list order. The output is the exact
// left-major pair sequence of the hash join — only the lookup machinery
// differs — at zero hashing cost.
type mergeJoinIter struct {
	left     iterator
	right    *source
	out      *schema.Schema
	lw, rw   int
	keys     physical.JoinKeys
	residual expr.Pred
	temporal bool
	lt1, lt2 int

	built   bool
	rows    []relation.Tuple
	periods []period.Period
	ri      int // start of the current (or next) right key group
	gEnd    int // end of the current right key group

	cur  relation.Tuple
	curP period.Period
	ci   int
	buf  relation.Tuple
}

func (m *mergeJoinIter) build() error {
	r, err := drain(m.right)
	if err != nil {
		return err
	}
	m.rows = r.Tuples()
	if m.temporal {
		m.periods = r.Periods()
	}
	m.built = true
	return nil
}

// advance pulls the next left tuple and aligns the right group pointer.
func (m *mergeJoinIter) advance() error {
	for {
		t, err := m.left.next()
		if err != nil {
			return err
		}
		if t == nil {
			m.cur = nil
			return nil
		}
		// Left tuples arrive in key order, so the right pointer never moves
		// backwards; a left key equal to the previous one reuses the group.
		cmp := -1 // right side exhausted: no match for any further left key
		for m.ri < len(m.rows) {
			cmp = m.keys.Compare(t, m.rows[m.ri])
			if cmp <= 0 {
				break
			}
			m.ri++
		}
		if cmp == 0 {
			if m.gEnd <= m.ri {
				m.gEnd = m.ri + 1
				for m.gEnd < len(m.rows) && m.keys.Compare(t, m.rows[m.gEnd]) == 0 {
					m.gEnd++
				}
			}
			m.cur = t
			if m.temporal {
				m.curP = t.PeriodAt(m.lt1, m.lt2)
			}
			m.ci = m.ri
			return nil
		}
		// No right group for this key: try the next left tuple.
	}
}

func (m *mergeJoinIter) next() (relation.Tuple, error) {
	if !m.built {
		if err := m.build(); err != nil {
			return nil, err
		}
		if err := m.advance(); err != nil {
			return nil, err
		}
	}
	width := m.lw + m.rw
	if m.temporal {
		width += 2
	}
	for m.cur != nil {
		for m.ci < m.gEnd {
			ri := m.ci
			m.ci++
			var iv period.Period
			if m.temporal {
				iv = m.curP.Intersect(m.periods[ri])
				if iv.Empty() {
					continue
				}
			}
			if m.buf == nil {
				m.buf = make(relation.Tuple, width)
			}
			copy(m.buf, m.cur)
			copy(m.buf[m.lw:], m.rows[ri])
			if m.temporal {
				m.buf[m.lw+m.rw] = value.Time(iv.Start)
				m.buf[m.lw+m.rw+1] = value.Time(iv.End)
			}
			if m.residual != nil {
				ok, err := m.residual.Holds(m.out, m.buf)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			t := m.buf
			m.buf = nil
			return t, nil
		}
		if err := m.advance(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

func (m *mergeJoinIter) close() error { return m.left.close() }

// pairJoiner carries the physical parameters of one × / ×ᵀ compilation —
// schemas, key columns, residual predicate, time positions — shared by the
// parallel exchange (parallel.go) and the grace spill paths (grace.go), so
// the pair-emission semantics exist exactly once.
type pairJoiner struct {
	out        *schema.Schema
	lw, rw     int
	lidx, ridx []int
	residual   expr.Pred
	temporal   bool
	lt1, lt2   int
	rt1, rt2   int
	width      int
}

func newPairJoiner(l, r *source, out *schema.Schema, lidx, ridx []int, residual expr.Pred, temporal bool) *pairJoiner {
	j := &pairJoiner{
		out: out, lw: l.schema.Len(), rw: r.schema.Len(),
		lidx: lidx, ridx: ridx, residual: residual, temporal: temporal,
	}
	j.width = j.lw + j.rw
	if temporal {
		j.width += 2
		j.lt1, j.lt2 = l.schema.TimeIndices()
		j.rt1, j.rt2 = r.schema.TimeIndices()
	}
	return j
}

// periodsOf precomputes the build side's periods (nil when conventional).
func (j *pairJoiner) periodsOf(rows []relation.Tuple) []period.Period {
	if !j.temporal {
		return nil
	}
	ps := make([]period.Period, len(rows))
	for i, t := range rows {
		ps[i] = t.PeriodAt(j.rt1, j.rt2)
	}
	return ps
}

// pairOne emits the (probe, build) pair into a fresh tuple, or nil when the
// temporal intersection is empty or the residual rejects it.
func (j *pairJoiner) pairOne(lt relation.Tuple, curP period.Period, bt relation.Tuple, bp period.Period) (relation.Tuple, error) {
	var iv period.Period
	if j.temporal {
		iv = curP.Intersect(bp)
		if iv.Empty() {
			return nil, nil
		}
	}
	nt := make(relation.Tuple, j.width)
	copy(nt, lt)
	copy(nt[j.lw:], bt)
	if j.temporal {
		nt[j.lw+j.rw] = value.Time(iv.Start)
		nt[j.lw+j.rw+1] = value.Time(iv.End)
	}
	if j.residual != nil {
		ok, err := j.residual.Holds(j.out, nt)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}
	return nt, nil
}

// joinChunk joins probe tuples (with their global positions) against one
// build-side row set, appending tagged pairs in probe order. table/members,
// when non-nil, restrict each probe tuple to its key group; rps carries the
// precomputed build periods.
func (j *pairJoiner) joinChunk(probe []relation.Tuple, origBase int, origs []int, brows []relation.Tuple, rps []period.Period, table *hashGroups, members [][]int) ([]tagged, error) {
	var res []tagged
	for pi, lt := range probe {
		orig := origBase + pi
		if origs != nil {
			orig = origs[pi]
		}
		n := len(brows)
		var group []int
		if table != nil {
			gid := table.lookup(lt, j.lidx)
			if gid < 0 {
				continue
			}
			group = members[gid]
			n = len(group)
		}
		var curP period.Period
		if j.temporal {
			curP = lt.PeriodAt(j.lt1, j.lt2)
		}
		for k := 0; k < n; k++ {
			bi := k
			if group != nil {
				bi = group[k]
			}
			var bp period.Period
			if j.temporal {
				bp = rps[bi]
			}
			nt, err := j.pairOne(lt, curP, brows[bi], bp)
			if err != nil {
				return nil, err
			}
			if nt != nil {
				res = append(res, tagged{seq: orig, t: nt})
			}
		}
	}
	return res, nil
}

// joinPartition is the grace-bucket body: build a table over the bucket's
// right rows, probe its left rows in sequence order.
func (j *pairJoiner) joinPartition(lp, rp []prow) ([]tagged, error) {
	brows := make([]relation.Tuple, len(rp))
	for i, pr := range rp {
		brows[i] = pr.t
	}
	table := newHashGroups(j.ridx, len(brows))
	var members [][]int
	for i, t := range brows {
		gid, fresh := table.groupOf(t)
		if fresh {
			members = append(members, nil)
		}
		members[gid] = append(members[gid], i)
	}
	probe := make([]relation.Tuple, len(lp))
	origs := make([]int, len(lp))
	for i, pr := range lp {
		probe[i] = pr.t
		origs[i] = pr.orig
	}
	return j.joinChunk(probe, 0, origs, brows, j.periodsOf(brows), table, members)
}

// spillLoopIter is the memory-bounded keyless product: the build side, too
// big for its share, lives in one spill file and is re-scanned per probe
// tuple — the tuple-at-a-time nested loop with the inner relation on disk.
// There is no key to grace-partition on, so this is the bounded fallback;
// its output order is trivially the reference's left-major sequence. One
// reader stays open across the whole probe side, rewound per probe tuple,
// so the repeated scans reuse the file handle and buffer.
type spillLoopIter struct {
	left iterator
	j    *pairJoiner

	file *spill.File
	r    *spill.Reader

	cur  relation.Tuple
	curP period.Period
}

func (s *spillLoopIter) next() (relation.Tuple, error) {
	for {
		if s.cur == nil {
			t, err := s.left.next()
			if err != nil {
				return nil, err
			}
			if t == nil {
				return nil, nil
			}
			s.cur = t
			if s.j.temporal {
				s.curP = t.PeriodAt(s.j.lt1, s.j.lt2)
			}
			if s.r == nil {
				r, err := s.file.Open()
				if err != nil {
					return nil, err
				}
				s.r = r
			} else if err := s.r.Rewind(); err != nil {
				return nil, err
			}
		}
		for {
			_, bt, ok, err := s.r.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				s.cur = nil
				break
			}
			var bp period.Period
			if s.j.temporal {
				bp = bt.PeriodAt(s.j.rt1, s.j.rt2)
			}
			nt, err := s.j.pairOne(s.cur, s.curP, bt, bp)
			if err != nil {
				return nil, err
			}
			if nt != nil {
				return nt, nil
			}
		}
	}
}

func (s *spillLoopIter) close() error {
	if s.r != nil {
		s.r.Close()
		s.r = nil
	}
	return s.left.close()
}

// graceProductSource compiles the keyless × / ×ᵀ in memory-bounded mode:
// the build side drains against the share; if it fits, the ordinary block
// nested loop runs, otherwise the build side spills to one file and the
// probe side streams against it.
func (e *Engine) graceProductSource(l, r *source, j *pairJoiner, order relation.OrderSpec) *source {
	return lazySource(j.out, order, func() ([]relation.Tuple, error) {
		side, err := e.drainGrace(r, nil, e.opShare())
		if err != nil {
			l.it.close()
			return nil, err
		}
		// The resident build side is this operator's working set; its
		// accounting returns to the arbiter when the loop finishes.
		defer e.releaseResident(side)
		var it iterator
		if !side.spilled {
			brows := make([]relation.Tuple, len(side.rows))
			for i, pr := range side.rows {
				brows[i] = pr.t
			}
			rel := relation.FromTuplesTrusted(r.schema, brows)
			it = &productIter{
				left: l.it, right: &source{it: &sliceIter{ts: rel.Tuples(), owned: true}, schema: r.schema},
				out: j.out, lw: j.lw, rw: j.rw, residual: j.residual,
				temporal: j.temporal, lt1: j.lt1, lt2: j.lt2,
			}
		} else {
			// With no keys every drained row landed in the single bucket of
			// the empty-key hash, in list order — exactly the one file the
			// nested loop needs.
			var f *spill.File
			for _, ps := range side.parts {
				if ps.file != nil {
					f = ps.file
					break
				}
			}
			e.graceNoteSpill()
			it = &spillLoopIter{left: l.it, j: j, file: f}
		}
		var out []relation.Tuple
		for {
			t, err := it.next()
			if err != nil {
				it.close()
				return nil, err
			}
			if t == nil {
				break
			}
			out = append(out, t)
		}
		if err := it.close(); err != nil {
			return nil, err
		}
		return out, nil
	})
}

// buildProduct compiles × / ×ᵀ with an optional fused join predicate; the
// join idioms dispatch here with their predicate. With equality keys and
// both inputs delivered in a key-covering order the merge join is chosen;
// with keys alone, the hash join; otherwise the block nested loop. In
// memory-bounded mode the keyed variants grace-hash partition both sides
// and the keyless product spills its build side (grace.go).
func (e *Engine) buildProduct(n algebra.Node, pred expr.Pred, temporal bool) (*source, error) {
	l, r, err := e.buildBoth(n)
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	lw, rw := l.schema.Len(), r.schema.Len()
	lidx, ridx, residual := physical.EquiKeys(pred, outSchema, lw, rw)
	leftOrder := l.order
	outOrder := leftOrder
	if temporal {
		// Table 1: the order of ×ᵀ is the left order's time-free prefix.
		outOrder = leftOrder.TimeFreePrefix()
	}
	src := &source{
		schema: outSchema,
		order:  eval.OrderAfterProduct(outOrder, r.schema, outSchema),
	}
	if e.budgeted() {
		j := newPairJoiner(l, r, outSchema, lidx, ridx, residual, temporal)
		if len(lidx) > 0 {
			return e.graceJoinSource(l, r, j, src.order), nil
		}
		return e.graceProductSource(l, r, j, src.order), nil
	}
	if e.parallel() {
		if e.columnar() && len(lidx) > 0 && l.vec != nil {
			return e.vecParallelJoinSource(l, r, outSchema, lidx, ridx, residual, temporal, src.order), nil
		}
		src.it = e.parallelProductIter(l, r, outSchema, lidx, ridx, residual, temporal)
		return src, nil
	}
	if !e.opts.NoMerge && len(lidx) > 0 {
		if keys, ok := physical.MergeJoinKeys(leftOrder, r.order, l.schema, r.schema, lidx, ridx); ok {
			e.stats.MergeJoins++
			if e.columnar() && l.vec != nil {
				e.stats.VectorOps++
				v := &vecMergeJoinIter{
					e: e, left: l.vec, right: r, out: outSchema, lw: lw, rw: rw,
					cmp: compileVecJoinCmp(l.schema, r.schema, keys), residual: residual, temporal: temporal,
				}
				if temporal {
					v.lt1, v.lt2 = l.schema.TimeIndices()
				}
				return vecSource(v, outSchema, src.order), nil
			}
			it := &mergeJoinIter{
				left: l.it, right: r, out: outSchema, lw: lw, rw: rw,
				keys: keys, residual: residual, temporal: temporal,
			}
			if temporal {
				it.lt1, it.lt2 = l.schema.TimeIndices()
			}
			src.it = it
			return src, nil
		}
	}
	if e.columnar() && len(lidx) > 0 && l.vec != nil {
		e.stats.VectorOps++
		v := &vecJoinIter{
			e: e, left: l.vec, right: r, out: outSchema, lw: lw, rw: rw,
			lidx: lidx, ridx: ridx, residual: residual, temporal: temporal,
		}
		if temporal {
			v.lt1, v.lt2 = l.schema.TimeIndices()
		}
		return vecSource(v, outSchema, src.order), nil
	}
	it := &productIter{
		left:     l.it,
		right:    r,
		out:      outSchema,
		lw:       lw,
		rw:       rw,
		lidx:     lidx,
		ridx:     ridx,
		residual: residual,
		temporal: temporal,
	}
	if temporal {
		it.lt1, it.lt2 = l.schema.TimeIndices()
	}
	src.it = it
	return src, nil
}
