package exec

import (
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// dedupSortedIter streams rdup over an input whose delivered order covers
// every attribute: equal tuples are contiguous, so the first of each run
// survives and a single adjacent comparison replaces the hash set.
type dedupSortedIter struct {
	in   iterator
	prev relation.Tuple
}

func (d *dedupSortedIter) next() (relation.Tuple, error) {
	for {
		t, err := d.in.next()
		if err != nil || t == nil {
			return nil, err
		}
		if d.prev != nil && t.Equal(d.prev) {
			continue
		}
		d.prev = t
		return t, nil
	}
}

func (d *dedupSortedIter) close() error { return d.in.close() }

// mergeDiffIter implements the multiset difference \ when both inputs
// deliver one shared total order: the sorted right side is materialized and
// a single pointer sweeps it alongside the streaming left side, each right
// key group's multiplicity absorbing that many left occurrences. Semantics
// and output list are exactly the hash diff's — the earliest left
// occurrences are the ones cancelled, and equal tuples are
// indistinguishable — without a hash table.
type mergeDiffIter struct {
	left   iterator
	right  *source
	schema *schema.Schema
	spec   relation.OrderSpec

	built    bool
	rows     []relation.Tuple
	ri       int // start of the current right group
	gEnd     int // end of the current right group
	consumed int // left occurrences the current group has absorbed
}

func (m *mergeDiffIter) next() (relation.Tuple, error) {
	if !m.built {
		r, err := drain(m.right)
		if err != nil {
			return nil, err
		}
		m.rows = r.Tuples()
		m.built = true
	}
	for {
		t, err := m.left.next()
		if err != nil || t == nil {
			return nil, err
		}
		cmp := 1 // right side exhausted: every remaining left tuple survives
		for m.ri < len(m.rows) {
			cmp = relation.CompareOn(m.schema, m.spec, m.rows[m.ri], t)
			if cmp >= 0 {
				break
			}
			m.ri++
			m.gEnd = m.ri
			m.consumed = 0
		}
		if cmp == 0 {
			for m.gEnd < len(m.rows) && relation.CompareOn(m.schema, m.spec, m.rows[m.gEnd], t) == 0 {
				m.gEnd++
			}
			if m.consumed < m.gEnd-m.ri {
				m.consumed++
				continue
			}
		}
		return t, nil
	}
}

func (m *mergeDiffIter) close() error { return m.left.close() }

// mergeUnionIter implements the max-multiplicity union ∪ when both inputs
// deliver one shared total order: the left list is emitted in full (as the
// hash union does), then the right side streams against a pointer into the
// sorted left list, each left group's multiplicity cancelling that many
// right occurrences.
type mergeUnionIter struct {
	left   *source
	right  iterator
	schema *schema.Schema
	spec   relation.OrderSpec

	built    bool
	lts      []relation.Tuple
	li       int // emission cursor over the left list
	gi       int // start of the current left group (right-side phase)
	gEnd     int
	consumed int
}

func (m *mergeUnionIter) next() (relation.Tuple, error) {
	if !m.built {
		l, err := drain(m.left)
		if err != nil {
			return nil, err
		}
		m.lts = l.Tuples()
		m.built = true
	}
	if m.li < len(m.lts) {
		t := m.lts[m.li]
		m.li++
		return t, nil
	}
	for {
		t, err := m.right.next()
		if err != nil || t == nil {
			return nil, err
		}
		cmp := 1 // left side exhausted: every remaining right tuple survives
		for m.gi < len(m.lts) {
			cmp = relation.CompareOn(m.schema, m.spec, m.lts[m.gi], t)
			if cmp >= 0 {
				break
			}
			m.gi++
			m.gEnd = m.gi
			m.consumed = 0
		}
		if cmp == 0 {
			for m.gEnd < len(m.lts) && relation.CompareOn(m.schema, m.spec, m.lts[m.gEnd], t) == 0 {
				m.gEnd++
			}
			if m.consumed < m.gEnd-m.gi {
				m.consumed++
				continue
			}
		}
		return t, nil
	}
}

func (m *mergeUnionIter) close() error { return m.right.close() }

// groupIter runs a grouping operator group-at-a-time over an input whose
// delivered order keeps groups contiguous: tuples are pulled until the
// grouping columns change, the group is transformed as a unit, and its
// output tuples stream out before the next group is read. Because groups
// are contiguous and the transforms preserve within-group list order, the
// concatenated group outputs equal the materializing hash variant's
// re-interleaved result exactly.
type groupIter struct {
	in      iterator
	idx     []int // grouping columns (equality defines a group boundary)
	emit    func(group []relation.Tuple) ([]relation.Tuple, error)
	pending relation.Tuple // first tuple of the next group, already pulled
	out     []relation.Tuple
	oi      int
	done    bool
}

func (g *groupIter) next() (relation.Tuple, error) {
	for {
		if g.oi < len(g.out) {
			t := g.out[g.oi]
			g.oi++
			return t, nil
		}
		if g.done {
			return nil, nil
		}
		first := g.pending
		g.pending = nil
		if first == nil {
			t, err := g.in.next()
			if err != nil {
				return nil, err
			}
			if t == nil {
				g.done = true
				return nil, nil
			}
			first = t
		}
		group := []relation.Tuple{first}
		for {
			t, err := g.in.next()
			if err != nil {
				return nil, err
			}
			if t == nil {
				g.done = true
				break
			}
			if !t.EqualOn(g.idx, first) {
				g.pending = t
				break
			}
			group = append(group, t)
		}
		out, err := g.emit(group)
		if err != nil {
			return nil, err
		}
		g.out, g.oi = out, 0
	}
}

func (g *groupIter) close() error { return g.in.close() }
