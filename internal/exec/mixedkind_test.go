package exec_test

import (
	"math"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// mixedKindSource builds a relation whose declared-int "Grp" column holds a
// mix of Int and Float values — including cross-kind equal pairs like
// Int(3) / Float(3.0) — through the trusted constructor, which performs no
// kind coercion. The columnar scan must demote such a column to boxed
// storage, and every downstream compare/hash/equality must fall back to
// the canonical generic semantics. Nothing in the algebra produces such a
// column today, but the storage layer admits it, so the engines must agree
// on it.
func mixedKindSource() (eval.MapSource, algebra.Node) {
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	mk := func(n string, g value.Value, t1, t2 int64) relation.Tuple {
		return relation.Tuple{value.String_(n), g, value.Time(period.Chronon(t1)), value.Time(period.Chronon(t2))}
	}
	ts := []relation.Tuple{
		mk("a", value.Int(3), 0, 10),
		mk("a", value.Float(3), 0, 10), // cross-kind duplicate of the row above
		mk("a", value.Float(2.5), 2, 8),
		mk("b", value.Int(-1), 5, 15),
		mk("b", value.Float(math.NaN()), 5, 15),
		mk("b", value.Float(math.NaN()), 5, 15), // NaN duplicates must dedup together
		mk("c", value.Float(math.Inf(1)), 1, 4),
		mk("c", value.Float(math.Copysign(0, -1)), 1, 4),
		mk("c", value.Int(0), 1, 4), // -0.0 vs 0: canonically equal numerics
	}
	r := relation.FromTuplesTrusted(s, ts)
	return eval.MapSource{"M": r}, algebra.NewRel("M", s, algebra.BaseInfo{})
}

// TestDifferentialMixedKindColumn pins the demotion boundary: plans over a
// kind-mixed column run identically on the reference evaluator, the
// columnar engine and the columnar-off engine, across the operators with
// typed columnar fast paths (sort, sorted dedup, merge diff/union, hash
// rdup, grouping).
func TestDifferentialMixedKindColumn(t *testing.T) {
	src, base := mixedKindSource()
	byAll := relation.OrderSpec{
		relation.Key("Name"), relation.Key("Grp"), relation.Key(schema.T1), relation.Key(schema.T2),
	}
	plans := []algebra.Node{
		algebra.NewSort(byAll, base),
		algebra.NewRdup(base),
		algebra.NewRdup(algebra.NewSort(byAll, base)),
		algebra.NewDiff(algebra.NewSort(byAll, base), algebra.NewSort(byAll, base)),
		algebra.NewUnion(algebra.NewSort(byAll, base), algebra.NewSort(byAll, base)),
		algebra.NewTRdup(base),
		algebra.NewCoal(algebra.NewSort(relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}, base)),
	}
	engines := []struct {
		name string
		opts exec.Options
	}{
		{"exec", exec.Options{}},
		{"exec-novec", exec.Options{NoColumnar: true}},
		{"exec-par3", exec.Options{Parallelism: 3}},
		{"exec-mem", exec.Options{MemoryBudget: 1 << 10}},
	}
	for _, plan := range plans {
		want, err := eval.New(src).Eval(plan)
		if err != nil {
			t.Fatalf("%s: reference: %v", algebra.Canonical(plan), err)
		}
		for _, eng := range engines {
			e := exec.NewWith(src, eng.opts)
			got, err := e.Eval(plan)
			if cerr := e.Close(); cerr != nil {
				t.Fatalf("%s: %s: close: %v", algebra.Canonical(plan), eng.name, cerr)
			}
			if err != nil {
				t.Fatalf("%s: %s: %v", algebra.Canonical(plan), eng.name, err)
			}
			if !got.EqualAsList(want) {
				t.Fatalf("%s: %s differs on the kind-mixed column\n%s:\n%s\nreference:\n%s",
					algebra.Canonical(plan), eng.name, eng.name, got, want)
			}
		}
	}
}

// TestDifferentialFloatBoundaries pins the float column boundaries on a
// well-kinded schema: NaN (canonical order, not IEEE), signed zero,
// infinities, and integral floats that equal int literals under the
// cross-kind comparison — through sorts, dedups and set operations on
// every engine.
func TestDifferentialFloatBoundaries(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("X", value.KindFloat),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	r := relation.MustFromRows(s, [][]any{
		{"a", math.NaN(), 0, 10},
		{"a", math.NaN(), 0, 10},
		{"a", 3.0, 0, 10},
		{"b", math.Inf(1), 2, 6},
		{"b", math.Inf(-1), 2, 6},
		{"b", math.Copysign(0, -1), 2, 6},
		{"c", 0.0, 1, 4},
		{"c", 2.5, 1, 4},
		{"c", float64(1 << 53), 1, 4},
	})
	src := eval.MapSource{"F": r}
	base := algebra.NewRel("F", s, algebra.BaseInfo{})
	byAll := relation.OrderSpec{
		relation.Key("Name"), relation.Key("X"), relation.Key(schema.T1), relation.Key(schema.T2),
	}
	byX := relation.OrderSpec{relation.KeyDesc("X")}
	plans := []algebra.Node{
		algebra.NewSort(byX, base),
		algebra.NewRdup(algebra.NewSort(byAll, base)),
		algebra.NewDiff(algebra.NewSort(byAll, base), algebra.NewSort(byAll, base)),
		algebra.NewUnion(algebra.NewSort(byAll, base), algebra.NewSort(byAll, base)),
		algebra.NewRdup(base),
		algebra.NewTRdup(base),
	}
	engines := []struct {
		name string
		opts exec.Options
	}{
		{"exec", exec.Options{}},
		{"exec-novec", exec.Options{NoColumnar: true}},
		{"exec-par3", exec.Options{Parallelism: 3}},
		{"exec-mem", exec.Options{MemoryBudget: 1 << 10}},
	}
	for _, plan := range plans {
		want, err := eval.New(src).Eval(plan)
		if err != nil {
			t.Fatalf("%s: reference: %v", algebra.Canonical(plan), err)
		}
		for _, eng := range engines {
			e := exec.NewWith(src, eng.opts)
			got, err := e.Eval(plan)
			if cerr := e.Close(); cerr != nil {
				t.Fatalf("%s: %s: close: %v", algebra.Canonical(plan), eng.name, cerr)
			}
			if err != nil {
				t.Fatalf("%s: %s: %v", algebra.Canonical(plan), eng.name, err)
			}
			if !got.EqualAsList(want) {
				t.Fatalf("%s: %s differs on float boundaries\n%s:\n%s\nreference:\n%s",
					algebra.Canonical(plan), eng.name, eng.name, got, want)
			}
		}
	}
}
