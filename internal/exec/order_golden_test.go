package exec_test

import (
	"fmt"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/datagen"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/props"
	"tqp/internal/relation"
	"tqp/internal/value"
)

// TestOrderPropagationMatrix is the golden pin of Table 1's Order column as
// a three-way contract: for every operator × input-order case, the order
// the static inference derives (props.State.Order), the order the reference
// evaluator records, and the order the exec engine's compiled pipeline
// reports must be one and the same spec — and the result list must actually
// satisfy it. A hand-written golden sub-table additionally pins the
// distinctive rows (prefix-keeping sorts, time qualification, time-free
// prefixes, grouping prefixes, product qualification) against literal
// expected specs, so a coordinated drift of all three implementations
// cannot slip through.
func TestOrderPropagationMatrix(t *testing.T) {
	base := datagen.Temporal(datagen.TemporalSpec{
		Rows: 10, Values: 3, DupFrac: 0.3, AdjFrac: 0.3, TimeRange: 40, MaxPeriod: 8, Seed: 9,
	})
	inputOrders := []struct {
		name string
		spec relation.OrderSpec
	}{
		{"unordered", nil},
		{"name", relation.OrderSpec{relation.Key("Name")}},
		{"name-grp", relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}},
		{"t1", relation.OrderSpec{relation.Key("T1")}},
		{"grp-desc", relation.OrderSpec{relation.KeyDesc("Grp")}},
	}

	src := make(eval.MapSource)
	leaves := map[string]algebra.Node{}
	for _, in := range inputOrders {
		for _, side := range []string{"L", "R"} {
			r := base.Clone()
			info := algebra.BaseInfo{Order: in.spec}
			if !in.spec.Empty() {
				if err := r.SortStable(in.spec); err != nil {
					t.Fatal(err)
				}
			}
			name := side + "-" + in.name
			src[name] = r
			leaves[name] = algebra.NewRel(name, r.Schema(), info)
		}
	}

	pred := expr.Compare(expr.Lt, expr.Column("Grp"), expr.Literal(value.Int(2)))
	aggs := []expr.Aggregate{{Func: expr.CountAll, As: "cnt"}}
	byGrp := relation.OrderSpec{relation.Key("Grp")}
	byName := relation.OrderSpec{relation.Key("Name")}
	ops := []struct {
		name  string
		build func(l, r algebra.Node) algebra.Node
	}{
		{"select", func(l, _ algebra.Node) algebra.Node { return algebra.NewSelect(pred, l) }},
		{"project-all", func(l, _ algebra.Node) algebra.Node {
			return algebra.NewProjectCols(l, "Name", "Grp", "T1", "T2")
		}},
		{"project-value", func(l, _ algebra.Node) algebra.Node { return algebra.NewProjectCols(l, "Name", "Grp") }},
		{"sort-grp", func(l, _ algebra.Node) algebra.Node { return algebra.NewSort(byGrp, l) }},
		{"sort-name", func(l, _ algebra.Node) algebra.Node { return algebra.NewSort(byName, l) }},
		{"rdup", func(l, _ algebra.Node) algebra.Node { return algebra.NewRdup(l) }},
		{"rdupT", func(l, _ algebra.Node) algebra.Node { return algebra.NewTRdup(l) }},
		{"coalT", func(l, _ algebra.Node) algebra.Node { return algebra.NewCoal(l) }},
		{"aggr", func(l, _ algebra.Node) algebra.Node {
			return algebra.NewAggregate([]string{"Name", "Grp"}, aggs, l)
		}},
		{"aggrT", func(l, _ algebra.Node) algebra.Node { return algebra.NewTAggregate([]string{"Name"}, aggs, l) }},
		{"unionall", algebra.NewUnionAll},
		{"union", algebra.NewUnion},
		{"unionT", algebra.NewTUnion},
		{"diff", algebra.NewDiff},
		{"diffT", algebra.NewTDiff},
		{"product", algebra.NewProduct},
		{"productT", algebra.NewTProduct},
		{"join", func(l, r algebra.Node) algebra.Node {
			return algebra.NewJoin(expr.Compare(expr.Eq, expr.Column("1.Grp"), expr.Column("2.Grp")), l, r)
		}},
		{"joinT", func(l, r algebra.Node) algebra.Node {
			return algebra.NewTJoin(expr.Compare(expr.Eq, expr.Column("1.Name"), expr.Column("2.Name")), l, r)
		}},
	}

	// The golden sub-table: "op/input-order" → expected delivered order.
	golden := map[string]string{
		"select/name-grp":    "⟨Name ASC, Grp ASC⟩", // σ retains order
		"project-all/t1":     "⟨T1 ASC⟩",            // identity projection keeps time keys
		"project-value/name": "⟨Name ASC⟩",          // prefix survives the projection
		"project-value/t1":   "⟨⟩",                  // dropped attribute ends the prefix
		"sort-grp/name-grp":  "⟨Grp ASC⟩",           // not a prefix: new order
		"sort-grp/grp-desc":  "⟨Grp ASC⟩",           // direction matters
		"sort-name/name-grp": "⟨Name ASC, Grp ASC⟩", // prefix: the stronger order survives
		"rdup/t1":            "⟨1.T1 ASC⟩",          // snapshot result qualifies time keys
		"rdup/name":          "⟨Name ASC⟩",          // first occurrence survives: order retained
		"rdupT/name-grp":     "⟨Name ASC, Grp ASC⟩", // time-free prefix is the whole spec
		"rdupT/t1":           "⟨⟩",                  // periods change: time keys do not survive
		"coalT/name":         "⟨Name ASC⟩",          // time-free prefix
		"aggr/name":          "⟨Name ASC⟩",          // Prefix(order, group attrs)
		"aggr/grp-desc":      "⟨Grp DESC⟩",          // grouping keeps directions
		"aggrT/name-grp":     "⟨Name ASC⟩",          // Grp not grouped: prefix stops
		"unionall/name-grp":  "⟨⟩",                  // ⊔ is unordered
		"union/name-grp":     "⟨⟩",                  // ∪ is unordered
		"unionT/name-grp":    "⟨⟩",                  // ∪ᵀ is unordered
		"diff/t1":            "⟨1.T1 ASC⟩",          // left order, time keys qualified
		"diffT/name-grp":     "⟨Name ASC, Grp ASC⟩", // left time-free prefix
		"diffT/t1":           "⟨⟩",                  // fragments break time order
		"product/name":       "⟨1.Name ASC⟩",        // clashing attrs qualified "1."
		"productT/name-grp":  "⟨1.Name ASC, 1.Grp ASC⟩",
		"productT/t1":        "⟨⟩", // ×ᵀ: time-free prefix first
		"join/grp-desc":      "⟨1.Grp DESC⟩",
		"joinT/name":         "⟨1.Name ASC⟩",
	}

	checked := 0
	for _, op := range ops {
		for _, in := range inputOrders {
			key := fmt.Sprintf("%s/%s", op.name, in.name)
			plan := op.build(leaves["L-"+in.name], leaves["R-name"])
			st, err := props.InferStates(plan)
			if err != nil {
				t.Fatalf("%s: infer states: %v", key, err)
			}
			static := st[plan].Order

			want, err := eval.New(src).Eval(plan)
			if err != nil {
				t.Fatalf("%s: reference eval: %v", key, err)
			}
			got, err := exec.New(src).Eval(plan)
			if err != nil {
				t.Fatalf("%s: exec eval: %v", key, err)
			}
			if !got.Order().Equal(static) {
				t.Errorf("%s: engine delivers %s, props derives %s", key, got.Order(), static)
			}
			if !want.Order().Equal(static) {
				t.Errorf("%s: reference delivers %s, props derives %s", key, want.Order(), static)
			}
			if !got.SortedBy(got.Order()) {
				t.Errorf("%s: engine claims %s but the list is not sorted", key, got.Order())
			}
			if !got.EqualAsList(want) {
				t.Errorf("%s: engine result differs from reference", key)
			}
			if exp, ok := golden[key]; ok {
				checked++
				if got.Order().String() != exp {
					t.Errorf("%s: delivered order %s, golden table says %s", key, got.Order(), exp)
				}
			}
		}
	}
	if checked != len(golden) {
		t.Fatalf("golden sub-table mismatch: %d of %d entries checked (stale key?)", checked, len(golden))
	}
}
