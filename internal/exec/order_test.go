package exec_test

import (
	"math/rand"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/datagen"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/relation"
	"tqp/internal/testutil"
)

// TestDifferentialThreeWay is the merge family's correctness anchor: every
// random plan runs through the reference evaluator, the hash-only engine
// (PR 1's physical operators) and the full engine with the merge/sort-based
// variants and sort elision enabled, and all three must produce the
// identical tuple list and the identical Table 1 order annotation. The
// generator over-weights order-sensitive shapes, and the accumulated engine
// stats prove the merge paths actually compiled — a three-way pass over
// plans that never hit a merge operator would be vacuous.
func TestDifferentialThreeWay(t *testing.T) {
	plans := 0
	var total exec.Stats
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalog(seed)
		ref := eval.New(c)
		hash := exec.NewWith(c, exec.Options{NoMerge: true, NoSortElision: true})
		merge := exec.New(c)

		for trial := 0; trial < 8; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			want, errRef := ref.Eval(plan)
			gotHash, errHash := hash.Eval(plan)
			gotMerge, errMerge := merge.Eval(plan)
			if (errRef == nil) != (errHash == nil) || (errRef == nil) != (errMerge == nil) {
				t.Fatalf("seed %d: engines disagree on failure for %s: reference=%v hash=%v merge=%v",
					seed, algebra.Canonical(plan), errRef, errHash, errMerge)
			}
			if errRef != nil {
				continue
			}
			plans++
			if !gotHash.EqualAsList(want) {
				t.Fatalf("seed %d: %s: hash-only engine differs from reference\nhash (%d tuples):\n%s\nreference (%d tuples):\n%s",
					seed, algebra.Canonical(plan), gotHash.Len(), gotHash, want.Len(), want)
			}
			if !gotMerge.EqualAsList(want) {
				t.Fatalf("seed %d: %s: merge engine differs from reference\nmerge (%d tuples):\n%s\nreference (%d tuples):\n%s",
					seed, algebra.Canonical(plan), gotMerge.Len(), gotMerge, want.Len(), want)
			}
			if !gotHash.Order().Equal(want.Order()) || !gotMerge.Order().Equal(want.Order()) {
				t.Fatalf("seed %d: %s: order annotations differ: reference %s hash %s merge %s",
					seed, algebra.Canonical(plan), want.Order(), gotHash.Order(), gotMerge.Order())
			}
			// Stats are per-run (Eval resets them), so accumulate per plan.
			s := merge.Stats()
			total.SortsElided += s.SortsElided
			total.MergeSorts += s.MergeSorts
			total.MergeJoins += s.MergeJoins
			total.MergeOps += s.MergeOps
		}
	}
	if plans < 300 {
		t.Fatalf("three-way suite covered only %d plans, want ≥ 300", plans)
	}
	if total.SortsElided == 0 || total.MergeJoins == 0 || total.MergeOps == 0 || total.MergeSorts == 0 {
		t.Fatalf("merge paths did not all fire across the suite: %+v", total)
	}
}

// TestSortElisionSafe is the elided-sort property test: for random plans,
// compiling with sort elision on and off must produce bit-identical result
// lists and order annotations — eliding a sort whose spec is a prefix of
// the delivered order can never move a tuple, because a stable sort of a
// list already sorted on a stronger order is the identity.
func TestSortElisionSafe(t *testing.T) {
	plans, elided := 0, 0
	for seed := int64(500); seed < 540; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalog(seed)
		withElision := exec.New(c)
		withoutElision := exec.NewWith(c, exec.Options{NoSortElision: true})

		for trial := 0; trial < 8; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			got, err1 := withElision.Eval(plan)
			want, err2 := withoutElision.Eval(plan)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d: elision changes failure behaviour for %s: %v vs %v",
					seed, algebra.Canonical(plan), err1, err2)
			}
			if err1 != nil {
				continue
			}
			plans++
			if !got.EqualAsList(want) {
				t.Fatalf("seed %d: %s: elided-sort result differs\nelided:\n%s\nperformed:\n%s",
					seed, algebra.Canonical(plan), got, want)
			}
			if !got.Order().Equal(want.Order()) {
				t.Fatalf("seed %d: %s: elided-sort order %s ≠ performed order %s",
					seed, algebra.Canonical(plan), got.Order(), want.Order())
			}
			// Stats are per-run (Eval resets them), so accumulate per plan.
			elided += withElision.Stats().SortsElided
		}
	}
	if plans < 200 {
		t.Fatalf("elision suite covered only %d plans, want ≥ 200", plans)
	}
	if elided == 0 {
		t.Fatal("no sort was ever elided: the property test is vacuous")
	}
}

// TestExternalMergeSortSpansRuns pins the external merge sort across run
// boundaries: an input larger than one run (sortRunSize = 4096) must come
// out exactly as the reference's stable sort, including the relative order
// of equal keys that land in different runs — the heap's run-index
// tie-break is what this test guards.
func TestExternalMergeSortSpansRuns(t *testing.T) {
	r := datagen.Temporal(datagen.TemporalSpec{
		Rows: 10000, Values: 40, DupFrac: 0.3, AdjFrac: 0.2, TimeRange: 300, MaxPeriod: 15, Seed: 42,
	})
	src := eval.MapSource{"R": r}
	base := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
	// Few distinct Name values over 10k rows: every run contains every key,
	// so stability across runs is load-bearing, not incidental.
	plan := algebra.NewSort(relation.OrderSpec{relation.Key("Name")}, base)
	want, err := eval.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	ex := exec.New(src)
	got, err := ex.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Stats().MergeSorts != 1 {
		t.Fatalf("expected one external merge sort, stats %+v", ex.Stats())
	}
	if !got.EqualAsList(want) {
		t.Fatal("external merge sort differs from the reference stable sort")
	}
	if !got.Order().Equal(want.Order()) {
		t.Fatalf("order annotation %s ≠ reference %s", got.Order(), want.Order())
	}
}
