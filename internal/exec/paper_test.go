package exec_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/exec"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// The golden parity tests pin the exec engine to the paper's fixtures —
// the same Figure 1/2/3 artifacts internal/eval/paper_test.go pins for the
// reference evaluator — so both engines are anchored to the paper's
// expected outputs, not merely to each other.

func mustExec(t *testing.T, e *exec.Engine, n algebra.Node) *relation.Relation {
	t.Helper()
	r, err := e.Eval(n)
	if err != nil {
		t.Fatalf("exec.Eval: %v", err)
	}
	return r
}

func wantRows(t *testing.T, got *relation.Relation, s *schema.Schema, rows [][]any) {
	t.Helper()
	want := relation.MustFromRows(s, rows)
	if !got.Schema().Equal(s) {
		t.Fatalf("schema = %s, want %s", got.Schema(), s)
	}
	if !got.EqualAsList(want) {
		t.Fatalf("result:\n%s\nwant:\n%s", got, want)
	}
}

func resultSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
}

// TestFigure3OnExec pins R1 = π(EMPLOYEE), R2 = rdup(R1), R3 = rdupᵀ(R1) of
// Figure 3 on the exec engine.
func TestFigure3OnExec(t *testing.T) {
	c := catalog.Paper()
	e := exec.New(c)
	r1n := catalog.PaperProjection(c.MustNode("EMPLOYEE"))

	temporal := schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	wantRows(t, mustExec(t, e, r1n), temporal, [][]any{
		{"John", 1, 8},
		{"John", 6, 11},
		{"Anna", 2, 6},
		{"Anna", 2, 6},
		{"Anna", 6, 12},
	})

	snapshot := schema.MustNew(
		schema.Attr("EmpName", value.KindString),
		schema.Attr("1.T1", value.KindTime),
		schema.Attr("1.T2", value.KindTime))
	wantRows(t, mustExec(t, e, algebra.NewRdup(r1n)), snapshot, [][]any{
		{"John", 1, 8},
		{"John", 6, 11},
		{"Anna", 2, 6},
		{"Anna", 6, 12},
	})

	r3 := mustExec(t, e, algebra.NewTRdup(r1n))
	wantRows(t, r3, temporal, [][]any{
		{"John", 1, 8},
		{"John", 8, 11},
		{"Anna", 2, 6},
		{"Anna", 6, 12},
	})
	if r3.HasSnapshotDuplicates() {
		t.Error("R3 must be free of duplicates in snapshots")
	}
}

// TestFigure1ResultOnExec evaluates the three paper plans — Figure 2(a)
// initial, Figure 6(a) intermediate, Figure 6(b) optimized — with the exec
// engine and pins each to the exact Result relation of Figure 1.
func TestFigure1ResultOnExec(t *testing.T) {
	c := catalog.Paper()
	e := exec.New(c)
	for name, plan := range map[string]algebra.Node{
		"initial 2(a)":      catalog.PaperInitialPlan(c),
		"intermediate 6(a)": catalog.PaperIntermediatePlan(c),
		"optimized 6(b)":    catalog.PaperOptimizedPlan(c),
	} {
		got := mustExec(t, e, plan)
		want := relation.MustFromRows(resultSchema(), catalog.PaperResultRows())
		if !got.EqualAsList(want) {
			t.Errorf("plan %s:\n%s\nwant:\n%s", name, got, want)
		}
		if got.HasSnapshotDuplicates() {
			t.Errorf("plan %s: result must be snapshot-duplicate-free", name)
		}
		if !got.IsCoalesced() {
			t.Errorf("plan %s: result must be coalesced", name)
		}
		if !got.SortedBy(relation.OrderSpec{relation.Key("EmpName")}) {
			t.Errorf("plan %s: result must be sorted by EmpName", name)
		}
	}
}
