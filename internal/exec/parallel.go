// Morsel-driven parallel execution (Options.Parallelism > 1): a bounded
// worker pool plus exchange operators that partition an operator's
// materialized inputs, run the per-partition work concurrently, and gather
// the partition outputs through a deterministic merge — so every parallel
// plan produces the bit-identical result list of the sequential engine, and
// therefore of the reference evaluator.
//
// Two exchange shapes exist, mirroring the physical decision procedure of
// package physical:
//
//   - hash exchange: tuples route to partitions by the canonical hash of the
//     operator's key columns (equi-join keys, full tuples for rdup/\/∪, the
//     value-equivalence or grouping columns for the temporal family), so
//     every key group lands wholly in one partition in list order and the
//     sequential per-group algorithms apply unchanged per partition. Each
//     emitted tuple carries a deterministic sequence key — its probe-side
//     list position, or its group's first-occurrence position — and the
//     gather is a k-way merge by (sequence, partition index).
//
//   - range exchange: when the input's delivered order proves the operator's
//     groups contiguous (a covering prefix of the delivered order, via
//     physical.GroupsContiguous), the input splits into contiguous segments
//     aligned with group boundaries; each worker's output is then
//     independently ordered and the gather is concatenation in segment
//     order.
//
// Sorting fans out run generation — the bounded stable runs of the external
// merge sort are sorted concurrently as morsels — and gathers through the
// same run-index tie-breaking heap the sequential sort uses, which is
// exactly the global stable sort.
//
// Scheduling is morsel-driven: workers claim task indices (input chunks,
// partitions, runs, segments) from a shared counter. The scan and
// run-generation phases are morsel-granular, so a slow chunk never idles
// the pool; the per-partition operator phase is one task per partition, so
// a heavily skewed key distribution serializes on its hot partition — the
// price of keeping each key group whole, which the deterministic gather
// depends on. The pool is bounded per exchange; pull-based evaluation
// materializes one operator at a time, so a plan's exchanges run their
// pools in sequence, not stacked.
package exec

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"

	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// morselSize is the chunk granularity of parallel input scans.
const morselSize = 4096

// parallel reports that the engine compiles partitioned operators.
func (e *Engine) parallel() bool { return e.opts.Parallelism > 1 }

// exchange records one parallel operator compilation in the engine's stats
// and returns the partition count (the worker fan-out width).
func (e *Engine) exchange() int {
	p := e.opts.Parallelism
	e.stats.ParallelOps++
	e.stats.Partitions += p
	return p
}

// runTasks runs fn(0..tasks-1) on up to workers goroutines that claim task
// indices from a shared counter. After any task fails, workers stop
// claiming new tasks (in-flight ones finish), and the lowest-index error
// among the executed tasks is returned — the whole exchange is being
// abandoned, so which of several failing tasks reports is immaterial.
func runTasks(workers, tasks int, fn func(task int) error) error {
	if tasks == 0 {
		return nil
	}
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for i := 0; i < tasks; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, tasks)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= tasks {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// prow is a tuple tagged with its global list position — the currency of
// the hash exchange. Partitions preserve relative order, and the positions
// drive the deterministic gather.
type prow struct {
	orig int
	t    relation.Tuple
}

// hashPartition routes rows into p partitions by the canonical hash of the
// idx columns, preserving relative list order within each partition, so any
// set of tuples equal on idx lands wholly in one partition in list order.
// The exchange is a two-pass morsel-parallel scatter: workers first hash
// their chunks into a partition-id array with per-chunk counts, then —
// after exact-size partition buffers are carved from the counts — write
// their chunks into disjoint target ranges. No append growth, no
// contention, and chunk-major offsets keep the partition order equal to
// the sequential scan's. Both scan closures are infallible, so the
// runTasks errors are structurally nil and intentionally dropped.
func hashPartition(workers int, rows []relation.Tuple, idx []int, p int) [][]prow {
	n := len(rows)
	chunks := chunkRanges(n, (n+morselSize-1)/morselSize)
	pids := make([]uint32, n)
	counts := make([][]int, len(chunks))
	runTasks(workers, len(chunks), func(c int) error {
		cnt := make([]int, p)
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			b := uint32(rows[i].HashOn(idx) % uint64(p))
			pids[i] = b
			cnt[b]++
		}
		counts[c] = cnt
		return nil
	})
	// offs[c][b]: where chunk c's partition-b rows start within out[b].
	offs := make([][]int, len(chunks))
	total := make([]int, p)
	for c := range chunks {
		offs[c] = make([]int, p)
		for b := 0; b < p; b++ {
			offs[c][b] = total[b]
			total[b] += counts[c][b]
		}
	}
	out := make([][]prow, p)
	for b := 0; b < p; b++ {
		out[b] = make([]prow, total[b])
	}
	runTasks(workers, len(chunks), func(c int) error {
		pos := offs[c]
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			b := pids[i]
			out[b][pos[b]] = prow{orig: i, t: rows[i]}
			pos[b]++
		}
		return nil
	})
	return out
}

// chunkRanges splits n positions into at most p consecutive ranges — the
// positional exchange of the keyless and broadcast paths.
func chunkRanges(n, p int) [][2]int {
	if p < 1 {
		p = 1
	}
	target := (n + p - 1) / p
	var out [][2]int
	for lo := 0; lo < n; lo += target {
		hi := lo + target
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// segmentRows splits rows into at most p contiguous segments whose
// boundaries never split a run of rows equal on idx — the range exchange:
// with the delivered order proving groups contiguous, each segment holds
// whole groups and the segment outputs concatenate in order.
func segmentRows(rows []relation.Tuple, idx []int, p int) [][2]int {
	var segs [][2]int
	n := len(rows)
	target := (n + p - 1) / p
	for lo := 0; lo < n; {
		hi := lo + target
		if hi > n {
			hi = n
		}
		for hi < n && rows[hi].EqualOn(idx, rows[hi-1]) {
			hi++
		}
		segs = append(segs, [2]int{lo, hi})
		lo = hi
	}
	return segs
}

// runSegmented applies a per-group emitter over contiguous whole-group
// segments concurrently and concatenates the segment outputs in segment
// order — which is the sequential group-at-a-time output exactly, because
// every group is whole within its segment.
func runSegmented(workers int, rows []relation.Tuple, idx []int, emit func([]relation.Tuple) ([]relation.Tuple, error)) ([]relation.Tuple, error) {
	segs := segmentRows(rows, idx, workers)
	outs := make([][]relation.Tuple, len(segs))
	if err := runTasks(workers, len(segs), func(s int) error {
		lo, hi := segs[s][0], segs[s][1]
		var res []relation.Tuple
		for glo := lo; glo < hi; {
			ghi := glo + 1
			for ghi < hi && rows[ghi].EqualOn(idx, rows[glo]) {
				ghi++
			}
			out, err := emit(rows[glo:ghi])
			if err != nil {
				return err
			}
			res = append(res, out...)
			glo = ghi
		}
		outs[s] = res
		return nil
	}); err != nil {
		return nil, err
	}
	var out []relation.Tuple
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}

// tagged is one parallel output tuple with its deterministic gather key.
type tagged struct {
	seq int
	t   relation.Tuple
}

// mergeTagged is the deterministic ordered gather: each partition's stream
// is non-decreasing in seq, and the k-way merge pops the smallest
// (seq, partition index) head from a binary min-heap — O(N·log W), keeping
// the single-threaded gather off the exchange's critical path. Tuples
// sharing a seq — one probe tuple's join matches, one group's fragments —
// always live in a single partition, so they stay in their partition-local
// emission order and the merged list is the sequential operator's exact
// output.
func mergeTagged(parts [][]tagged) []relation.Tuple {
	out := make([]relation.Tuple, 0, taggedTotal(parts))
	mergeTaggedInto(parts, func(tg tagged) { out = append(out, tg.t) })
	return out
}

func taggedTotal(parts [][]tagged) int {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	return total
}

// mergeTaggedInto is the one gather loop behind mergeTagged and the grace
// recursion's mergeTaggedSorted: a hand-rolled cursor heap (h holds
// partition indices, pos the heads) — unlike the sort gather's
// container/heap runHeap, this runs once per output tuple of every hash
// exchange, where the interface dispatch of heap.Interface is measurable.
func mergeTaggedInto(parts [][]tagged, emit func(tagged)) {
	pos := make([]int, len(parts))
	less := func(a, b int) bool {
		sa, sb := parts[a][pos[a]].seq, parts[b][pos[b]].seq
		if sa != sb {
			return sa < sb
		}
		return a < b
	}
	var h []int
	siftDown := func(i int) {
		for {
			c := 2*i + 1
			if c >= len(h) {
				return
			}
			if c+1 < len(h) && less(h[c+1], h[c]) {
				c++
			}
			if !less(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for i, p := range parts {
		if len(p) > 0 {
			h = append(h, i)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		p := h[0]
		emit(parts[p][pos[p]])
		pos[p]++
		if pos[p] >= len(parts[p]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(0)
	}
}

// parallelSortSource compiles sort_A with parallel run generation: the
// drained input splits into the external sort's consecutive bounded runs,
// workers stable-sort the runs concurrently, and the gather is the
// sequential operator's own run-index tie-breaking heap — the merged
// stream is exactly the stable sort of the whole input.
func (e *Engine) parallelSortSource(in *source, spec relation.OrderSpec, order relation.OrderSpec) *source {
	workers := e.exchange()
	return lazySource(in.schema, order, func() ([]relation.Tuple, error) {
		r, err := drain(in)
		if err != nil {
			return nil, err
		}
		// drain materialized a fresh tuple slice, so the runs sort in place.
		rows := r.Tuples()
		nRuns := (len(rows) + sortRunSize - 1) / sortRunSize
		runs := make([][]relation.Tuple, nRuns)
		if err := runTasks(workers, nRuns, func(i int) error {
			lo, hi := i*sortRunSize, (i+1)*sortRunSize
			if hi > len(rows) {
				hi = len(rows)
			}
			run := rows[lo:hi:hi]
			sort.SliceStable(run, func(a, b int) bool {
				return relation.CompareOn(in.schema, spec, run[a], run[b]) < 0
			})
			runs[i] = run
			return nil
		}); err != nil {
			return nil, err
		}
		h := runHeap{schema: in.schema, spec: spec}
		for i, run := range runs {
			h.cursors = append(h.cursors, &runCursor{run: run, idx: i})
		}
		heap.Init(&h)
		out := make([]relation.Tuple, 0, len(rows))
		for h.Len() > 0 {
			c := h.cursors[0]
			out = append(out, c.run[c.pos])
			c.pos++
			if c.pos >= len(c.run) {
				heap.Pop(&h)
			} else {
				heap.Fix(&h, 0)
			}
		}
		return out, nil
	})
}

// broadcastLimit is the build-side size at or below which a keyed parallel
// join shares one read-only hash table across the workers (the probe side
// splits into positional chunks); larger build sides hash-partition on the
// equi-keys so the build work parallelizes too. Keyless products always
// broadcast — there is nothing to partition on.
const broadcastLimit = 2048

// parallelProductIter evaluates × / ×ᵀ (optionally with a fused join
// predicate) under a parallel exchange. With equi-keys over a large build
// side, both sides route by the shared key hash and each worker hash-joins
// its partition; with a small (or absent) key table the probe side chunks
// positionally against the shared build side. Every emitted pair is tagged
// with its probe tuple's global position, so the gather restores the
// reference's left-major pair sequence exactly.
func (e *Engine) parallelProductIter(l, r *source, out *schema.Schema, lidx, ridx []int, residual expr.Pred, temporal bool) iterator {
	workers := e.exchange()
	j := newPairJoiner(l, r, out, lidx, ridx, residual, temporal)
	return &lazyIter{compute: func() ([]relation.Tuple, error) {
		lr, err := drain(l)
		if err != nil {
			return nil, err
		}
		rr, err := drain(r)
		if err != nil {
			return nil, err
		}
		if len(lidx) == 0 || rr.Len() <= broadcastLimit {
			// Broadcast: one shared build side, probed read-only; the probe
			// side splits into positional chunks.
			brows := rr.Tuples()
			rps := j.periodsOf(brows)
			var table *hashGroups
			var members [][]int
			if len(lidx) > 0 {
				table = newHashGroups(ridx, len(brows))
				for bi, t := range brows {
					gid, fresh := table.groupOf(t)
					if fresh {
						members = append(members, nil)
					}
					members[gid] = append(members[gid], bi)
				}
			}
			chunks := chunkRanges(lr.Len(), workers)
			outParts := make([][]tagged, len(chunks))
			if err := runTasks(workers, len(chunks), func(c int) error {
				res, err := j.joinChunk(lr.Tuples()[chunks[c][0]:chunks[c][1]], chunks[c][0], nil, brows, rps, table, members)
				if err != nil {
					return err
				}
				outParts[c] = res
				return nil
			}); err != nil {
				return nil, err
			}
			return mergeTagged(outParts), nil
		}

		// Partitioned: both sides route by the shared key hash; each worker
		// builds and probes its own partition.
		lparts := hashPartition(workers, lr.Tuples(), lidx, workers)
		rparts := hashPartition(workers, rr.Tuples(), ridx, workers)
		outParts := make([][]tagged, len(lparts))
		if err := runTasks(workers, len(lparts), func(pt int) error {
			res, err := j.joinPartition(lparts[pt], rparts[pt])
			if err != nil {
				return err
			}
			outParts[pt] = res
			return nil
		}); err != nil {
			return nil, err
		}
		return mergeTagged(outParts), nil
	}}
}

// parallelBudgetedIter is the shared shape of \ and ∪ under a full-tuple
// hash exchange: equal tuples land in one partition in list order on both
// sides, one side funds per-key multiplicity budgets, the other streams
// against them with budget hits cancelling, and the survivors merge back
// into their side's list order. For \ (budgetLeft=false) the right side
// funds and the filtered left survivors are the result; for ∪
// (budgetLeft=true) the left side funds and the filtered right survivors
// append behind the whole left list.
func (e *Engine) parallelBudgetedIter(l, r *source, budgetLeft bool) iterator {
	workers := e.exchange()
	idx := identityIdx(l.schema.Len())
	return &lazyIter{compute: func() ([]relation.Tuple, error) {
		lr, err := drain(l)
		if err != nil {
			return nil, err
		}
		rr, err := drain(r)
		if err != nil {
			return nil, err
		}
		lparts := hashPartition(workers, lr.Tuples(), idx, workers)
		rparts := hashPartition(workers, rr.Tuples(), idx, workers)
		fundParts, scanParts := rparts, lparts
		if budgetLeft {
			fundParts, scanParts = lparts, rparts
		}
		outParts := make([][]tagged, workers)
		if err := runTasks(workers, workers, func(pt int) error {
			outParts[pt] = budgetedPartition(fundParts[pt], scanParts[pt], idx, 0)
			return nil
		}); err != nil {
			return nil, err
		}
		merged := mergeTagged(outParts)
		if !budgetLeft {
			return merged, nil
		}
		out := make([]relation.Tuple, 0, lr.Len()+len(merged))
		out = append(out, lr.Tuples()...)
		return append(out, merged...), nil
	}}
}

// parallelDiffIter runs \: the earliest left occurrences absorb the right
// multiplicities, survivors in left list order.
func (e *Engine) parallelDiffIter(l, r *source) iterator {
	return e.parallelBudgetedIter(l, r, false)
}

// parallelUnionIter runs the max-multiplicity ∪: the left list passes
// through whole, right tuples exceeding the left multiplicities follow in
// right list order.
func (e *Engine) parallelUnionIter(l, r *source) iterator {
	return e.parallelBudgetedIter(l, r, true)
}

// parallelValueGroupSource runs a value-equivalence group transform
// (rdupᵀ's head/subtract elimination, coalᵀ's adjacency merge) under a
// parallel exchange. With a delivered order proving value groups contiguous
// the exchange is range-shaped: whole-group segments process independently
// and concatenate. Otherwise tuples route by value hash, each worker
// transforms its partition's groups over globally-positioned rows, and the
// gather re-interleaves the fragments into original list order — exactly
// the sequential mergeByOrig, computed across partitions.
func (e *Engine) parallelValueGroupSource(in *source, vidx []int, order relation.OrderSpec, transform func([]row, int, int) []row) *source {
	workers := e.exchange()
	t1, t2 := in.schema.TimeIndices()
	contiguous := !e.opts.NoMerge && physical.GroupsContiguous(in.order, in.schema, vidx)
	return lazySource(in.schema, order, func() ([]relation.Tuple, error) {
		r, err := drain(in)
		if err != nil {
			return nil, err
		}
		rows := r.Tuples()
		if contiguous {
			return runSegmented(workers, rows, vidx, groupEmitter(t1, t2, transform))
		}
		parts := hashPartition(workers, rows, vidx, workers)
		outParts := make([][]tagged, len(parts))
		if err := runTasks(workers, len(parts), func(pt int) error {
			outParts[pt] = valueGroupPartition(parts[pt], vidx, t1, t2, transform)
			return nil
		}); err != nil {
			return nil, err
		}
		return mergeTagged(outParts), nil
	})
}

// parallelGroupAggSource runs a grouping operator whose output is one batch
// of tuples per group in group first-occurrence order — aggregation, its
// temporal variant, and rdup (grouping on every attribute, the first
// occurrence surviving). The exchange is range-shaped when the delivered
// order proves groups contiguous, hash otherwise; the hash gather tags each
// group's batch with the group's first-occurrence position and merges.
func (e *Engine) parallelGroupAggSource(in *source, gidx []int, outSchema *schema.Schema, order relation.OrderSpec, emit func([]relation.Tuple) ([]relation.Tuple, error)) *source {
	workers := e.exchange()
	contiguous := !e.opts.NoMerge && physical.GroupsContiguous(in.order, in.schema, gidx)
	return lazySource(outSchema, order, func() ([]relation.Tuple, error) {
		r, err := drain(in)
		if err != nil {
			return nil, err
		}
		rows := r.Tuples()
		if contiguous {
			return runSegmented(workers, rows, gidx, emit)
		}
		parts := hashPartition(workers, rows, gidx, workers)
		outParts := make([][]tagged, len(parts))
		if err := runTasks(workers, len(parts), func(pt int) error {
			res, err := groupAggPartition(parts[pt], gidx, emit)
			if err != nil {
				return err
			}
			outParts[pt] = res
			return nil
		}); err != nil {
			return nil, err
		}
		return mergeTagged(outParts), nil
	})
}

// valueMembership groups one partition's two sides into a shared
// value-equivalence id space — the common scaffolding of the two-sided
// temporal exchanges. leftMembers/rightMembers hold partition-local row
// indices per group; rOrder lists the group ids in first-right-occurrence
// order (∪ᵀ's emission order; \ᵀ ignores it).
func valueMembership(lp, rp []prow, vidx []int) (leftMembers, rightMembers [][]int, rOrder []int) {
	groups := newHashGroups(vidx, len(lp)+len(rp))
	grow := func(fresh bool) {
		if fresh {
			leftMembers = append(leftMembers, nil)
			rightMembers = append(rightMembers, nil)
		}
	}
	for k, pr := range lp {
		gid, fresh := groups.groupOf(pr.t)
		grow(fresh)
		leftMembers[gid] = append(leftMembers[gid], k)
	}
	for k, pr := range rp {
		gid, fresh := groups.groupOf(pr.t)
		grow(fresh)
		if len(rightMembers[gid]) == 0 {
			rOrder = append(rOrder, gid)
		}
		rightMembers[gid] = append(rightMembers[gid], k)
	}
	return leftMembers, rightMembers, rOrder
}

// memberPeriods collects the periods of the partition rows at idxs.
func memberPeriods(rows []prow, idxs []int, t1, t2 int) []period.Period {
	ps := make([]period.Period, len(idxs))
	for x, k := range idxs {
		ps[x] = rows[k].t.PeriodAt(t1, t2)
	}
	return ps
}

// parallelTDiffSource runs \ᵀ with a value-hash exchange on both sides:
// every value-equivalence group lands wholly in one partition, the
// sequential per-group elementary-interval subtraction runs per partition,
// and the surviving fragments merge back into left list order.
func (e *Engine) parallelTDiffSource(l, r *source, order relation.OrderSpec) *source {
	workers := e.exchange()
	return lazySource(l.schema, order, func() ([]relation.Tuple, error) {
		lr, err := drain(l)
		if err != nil {
			return nil, err
		}
		rr, err := drain(r)
		if err != nil {
			return nil, err
		}
		t1, t2 := lr.Schema().TimeIndices()
		vidx := valueIdx(lr.Schema())
		lparts := hashPartition(workers, lr.Tuples(), vidx, workers)
		rparts := hashPartition(workers, rr.Tuples(), vidx, workers)
		outParts := make([][]tagged, workers)
		if err := runTasks(workers, workers, func(pt int) error {
			outParts[pt] = tdiffPartition(lparts[pt], rparts[pt], vidx, t1, t2)
			return nil
		}); err != nil {
			return nil, err
		}
		return mergeTagged(outParts), nil
	})
}

// parallelTUnionSource runs ∪ᵀ with a value-hash exchange on both sides:
// the left list passes through whole, each worker computes its partition's
// right-excess layers per value group, and the gather merges the group
// contributions into global first-right-occurrence order behind the left
// list.
func (e *Engine) parallelTUnionSource(l, r *source) *source {
	workers := e.exchange()
	return lazySource(l.schema, nil, func() ([]relation.Tuple, error) {
		lr, err := drain(l)
		if err != nil {
			return nil, err
		}
		rr, err := drain(r)
		if err != nil {
			return nil, err
		}
		t1, t2 := lr.Schema().TimeIndices()
		vidx := valueIdx(lr.Schema())
		lparts := hashPartition(workers, lr.Tuples(), vidx, workers)
		rparts := hashPartition(workers, rr.Tuples(), vidx, workers)
		outParts := make([][]tagged, workers)
		if err := runTasks(workers, workers, func(pt int) error {
			outParts[pt] = tunionPartition(lparts[pt], rparts[pt], vidx, t1, t2, 0)
			return nil
		}); err != nil {
			return nil, err
		}
		extra := mergeTagged(outParts)
		out := make([]relation.Tuple, 0, lr.Len()+len(extra))
		out = append(out, lr.Tuples()...)
		return append(out, extra...), nil
	})
}
