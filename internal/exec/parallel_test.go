package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/datagen"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/testutil"
)

// TestDifferentialFourWay is the parallel engine's correctness anchor: it
// drives random conventional+temporal plans through four paths — the
// reference evaluator, the hash-only engine (PR 1), the merge engine
// (PR 2), and the morsel-parallel engine — at parallelism 1, 2 and 8, and
// asserts bit-identical result lists and Table 1 order annotations across
// all of them. Run under -race in CI, this is also the determinism proof:
// any scheduling-dependent gather would diverge from the reference list.
// The suite is vacuity-guarded: the parallel engine must report compiled
// exchanges, or the parallel paths were never exercised.
func TestDifferentialFourWay(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			plans, exchanges, vecOps := 0, 0, 0
			for seed := int64(200); seed < 230; seed++ {
				rng := rand.New(rand.NewSource(seed))
				c, bases := testutil.TemporalCatalog(seed)
				ref := eval.New(c)
				for trial := 0; trial < 6; trial++ {
					plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
					want, errRef := ref.Eval(plan)
					for _, eng := range []struct {
						name string
						e    *exec.Engine
					}{
						{"exec-hash", exec.NewWith(c, exec.Options{NoMerge: true, NoSortElision: true})},
						{"exec-merge", exec.New(c)},
						{"exec-parallel", exec.NewWith(c, exec.Options{Parallelism: par})},
					} {
						got, err := eng.e.Eval(plan)
						if (errRef == nil) != (err == nil) {
							t.Fatalf("seed %d: %s disagrees on failure for %s: reference=%v engine=%v",
								seed, eng.name, algebra.Canonical(plan), errRef, err)
						}
						if errRef != nil {
							continue
						}
						if !got.EqualAsList(want) {
							t.Fatalf("seed %d: %s: %s result differs from reference\nengine (%d tuples):\n%s\nreference (%d tuples):\n%s",
								seed, algebra.Canonical(plan), eng.name, got.Len(), got, want.Len(), want)
						}
						if !got.Order().Equal(want.Order()) {
							t.Fatalf("seed %d: %s: %s order %s ≠ reference order %s",
								seed, algebra.Canonical(plan), eng.name, got.Order(), want.Order())
						}
						if eng.name == "exec-parallel" {
							exchanges += eng.e.Stats().ParallelOps
							vecOps += eng.e.Stats().VectorOps
						}
					}
					if errRef == nil {
						plans++
					}
				}
			}
			if plans < 100 {
				t.Fatalf("four-way differential covered only %d plans, want ≥ 100", plans)
			}
			if par > 1 && exchanges == 0 {
				t.Fatal("vacuous run: the parallel engine never compiled an exchange")
			}
			if vecOps == 0 {
				t.Fatal("vacuous run: the parallel engine never compiled a columnar operator")
			}
		})
	}
}

// TestParallelPipelineLarge pins the parallel engine against the sequential
// merge engine on the heavy acceptance pipeline — equijoin ⋈ᵀ, rdupᵀ,
// coalᵀ, top-level sort — at a scale where every exchange carries multiple
// morsels, including partition counts in the Stats record.
func TestParallelPipelineLarge(t *testing.T) {
	l := datagen.Temporal(datagen.TemporalSpec{
		Rows: 12000, Values: 700, TimeRange: 400, MaxPeriod: 20, Seed: 31})
	r := datagen.Temporal(datagen.TemporalSpec{
		Rows: 256, Values: 700, TimeRange: 400, MaxPeriod: 20, Seed: 32})
	src := eval.MapSource{"L": l, "R": r}
	ln := algebra.NewRel("L", l.Schema(), algebra.BaseInfo{})
	rn := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
	pred := expr.Compare(expr.Eq, expr.Column("1.Grp"), expr.Column("2.Grp"))
	plan := algebra.NewSort(relation.OrderSpec{relation.Key("1.Name")},
		algebra.NewCoal(algebra.NewTRdup(algebra.NewTJoin(pred, ln, rn))))

	want, err := exec.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 8} {
		eng := exec.NewWith(src, exec.Options{Parallelism: par})
		got, err := eng.Eval(plan)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsList(want) {
			t.Fatalf("parallelism %d: result differs from the sequential engine (%d vs %d tuples)",
				par, got.Len(), want.Len())
		}
		st := eng.Stats()
		if st.ParallelOps < 4 {
			t.Fatalf("parallelism %d: expected ≥4 exchanges (join, rdupT, coalT, sort), got %d", par, st.ParallelOps)
		}
		if st.Partitions != st.ParallelOps*par {
			t.Fatalf("parallelism %d: partition counter %d ≠ %d exchanges × %d workers",
				par, st.Partitions, st.ParallelOps, par)
		}
	}
}

// TestParallelSortStable verifies the parallel run-generation sort is the
// stable sort: duplicate keys keep their input sequence across run
// boundaries (run-index tie-break in the gather heap).
func TestParallelSortStable(t *testing.T) {
	// 3 full runs of equal keys: instability would interleave run suffixes.
	rows := 3 * 4096
	r := datagen.Temporal(datagen.TemporalSpec{
		Rows: rows, Values: 5, DupFrac: 0.5, TimeRange: 50, MaxPeriod: 10, Seed: 9})
	src := eval.MapSource{"R": r}
	plan := algebra.NewSort(relation.OrderSpec{relation.Key("Grp")},
		algebra.NewRel("R", r.Schema(), algebra.BaseInfo{}))
	want, err := eval.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.NewWith(src, exec.Options{Parallelism: 4}).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsList(want) {
		t.Fatal("parallel sort is not the stable sort of the input")
	}
}

// TestParallelRangeExchange verifies the range-shaped exchange: over inputs
// whose delivered order proves groups contiguous, the parallel engine still
// produces the sequential group-at-a-time output (segments aligned with
// group boundaries concatenate in order).
func TestParallelRangeExchange(t *testing.T) {
	byNameGrp := relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}
	r := datagen.Temporal(datagen.TemporalSpec{
		Rows: 9000, Values: 400, DupFrac: 0.2, AdjFrac: 0.3, TimeRange: 300, MaxPeriod: 15, Seed: 13})
	if err := r.SortStable(byNameGrp); err != nil {
		t.Fatal(err)
	}
	src := eval.MapSource{"R": r}
	base := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{Order: byNameGrp})
	for _, plan := range []algebra.Node{
		algebra.NewTRdup(base),
		algebra.NewCoal(base),
		algebra.NewRdup(algebra.NewSort(relation.OrderSpec{
			relation.Key("Name"), relation.Key("Grp"), relation.Key("T1"), relation.Key("T2")}, base)),
	} {
		want, err := eval.New(src).Eval(plan)
		if err != nil {
			t.Fatal(err)
		}
		got, err := exec.NewWith(src, exec.Options{Parallelism: 6}).Eval(plan)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsList(want) {
			t.Fatalf("%s: range-exchange result differs from reference", algebra.Canonical(plan))
		}
	}
}
