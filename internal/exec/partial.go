package exec

import (
	"fmt"
	"sort"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// This file is the shard side of distributed execution: a tiny interpreter
// for pushed-down plan fragments, plus the merge kernels the coordinator
// uses to reassemble per-shard results into exactly the list a single-node
// run would produce.
//
// A fragment is a chain over one base relation: zero or more selections
// and projections, optionally a sort, optionally one group operation
// (temporal coalescing, temporal duplicate elimination, or a conventional
// aggregate) on top of the sort. Each shard runs the chain over its slice of the relation while
// threading the rows' global sequence keys — their positions in the
// unsharded stored order — so the coordinator can merge deterministically:
// by sequence key alone for unsorted chains, by (sort keys, sequence key)
// for sorted ones. Group operations consume provenance (their outputs are
// groups, not stored rows), so grouped fragments return nil sequence keys
// and are merged block-wise on the grouping prefix instead.

// FragmentOp enumerates the steps a pushed-down fragment may contain.
type FragmentOp uint8

const (
	// FragSelect filters rows by a predicate, preserving order and
	// sequence keys.
	FragSelect FragmentOp = iota
	// FragProject maps each row through a projection list (π), preserving
	// sequence keys row for row.
	FragProject
	// FragSort stably sorts the rows on Keys. Stability over the
	// sequence-ascending input makes the local order the restriction of
	// the global stable sort to this shard's rows.
	FragSort
	// FragCoalT coalesces value-equivalent rows with adjacent or
	// overlapping periods (the paper's coal operation). Requires the
	// fragment's groups to be shard-local and contiguous.
	FragCoalT
	// FragRdupT is temporal duplicate elimination under the same
	// contiguity contract as FragCoalT.
	FragRdupT
	// FragAggr is a conventional aggregate (GROUP BY + aggregate list),
	// again over shard-local contiguous groups.
	FragAggr
)

// String names the op for diagnostics and the wire codec.
func (op FragmentOp) String() string {
	switch op {
	case FragSelect:
		return "select"
	case FragProject:
		return "project"
	case FragSort:
		return "sort"
	case FragCoalT:
		return "coalT"
	case FragRdupT:
		return "rdupT"
	case FragAggr:
		return "aggr"
	default:
		return fmt.Sprintf("frag(%d)", uint8(op))
	}
}

// FragmentStep is one step of a fragment chain; which fields matter depends
// on Op (see the FragmentOp docs).
type FragmentStep struct {
	Op      FragmentOp
	Pred    expr.Pred          // FragSelect
	Items   []algebra.ProjItem // FragProject
	Keys    relation.OrderSpec // FragSort
	GroupBy []string           // FragAggr
	Aggs    []expr.Aggregate   // FragAggr
}

// RunFragment executes a fragment chain over one shard's slice of a base
// relation. seqs carries the slice rows' global sequence keys (nil means
// the identity — an unsharded run). It returns the result plus the output
// rows' sequence keys; a grouped fragment (coalT/rdupT/aggr tail) returns
// nil keys because its rows are derived groups, not stored tuples.
func RunFragment(rel *relation.Relation, seqs []int, steps []FragmentStep) (*relation.Relation, []int, error) {
	sch := rel.Schema()
	n := rel.Len()
	if seqs == nil {
		seqs = make([]int, n)
		for i := range seqs {
			seqs[i] = i
		}
	} else if len(seqs) != n {
		return nil, nil, fmt.Errorf("exec: %d sequence keys for a %d-row shard slice", len(seqs), n)
	} else {
		seqs = append([]int(nil), seqs...)
	}
	cur := make([]relation.Tuple, n)
	for i := range cur {
		cur[i] = rel.At(i)
	}
	order := rel.Order()

	for si, st := range steps {
		switch st.Op {
		case FragSelect:
			if st.Pred == nil {
				return nil, nil, fmt.Errorf("exec: fragment step %d: select without a predicate", si)
			}
			kept := cur[:0]
			keptSeqs := seqs[:0]
			for i, t := range cur {
				ok, err := st.Pred.Holds(sch, t)
				if err != nil {
					return nil, nil, err
				}
				if ok {
					kept = append(kept, t)
					keptSeqs = append(keptSeqs, seqs[i])
				}
			}
			cur, seqs = kept, keptSeqs

		case FragProject:
			if len(st.Items) == 0 {
				return nil, nil, fmt.Errorf("exec: fragment step %d: projection without items", si)
			}
			node := algebra.NewProject(st.Items, algebra.NewRel("@frag", sch, algebra.BaseInfo{}))
			outSch, err := node.Schema()
			if err != nil {
				return nil, nil, fmt.Errorf("exec: fragment step %d: %w", si, err)
			}
			nt := make([]relation.Tuple, len(cur))
			for i, t := range cur {
				row := make(relation.Tuple, len(st.Items))
				for j, it := range st.Items {
					v, err := it.Expr.Eval(sch, t)
					if err != nil {
						return nil, nil, err
					}
					row[j] = v
				}
				nt[i] = row
			}
			cur, sch, order = nt, outSch, eval.OrderAfterProject(order, node)

		case FragSort:
			if len(st.Keys) == 0 {
				return nil, nil, fmt.Errorf("exec: fragment step %d: sort without keys", si)
			}
			idx := make([]int, len(cur))
			for i := range idx {
				idx[i] = i
			}
			keys := st.Keys
			sort.SliceStable(idx, func(a, b int) bool {
				return relation.CompareOn(sch, keys, cur[idx[a]], cur[idx[b]]) < 0
			})
			nt := make([]relation.Tuple, len(cur))
			ns := make([]int, len(cur))
			for i, j := range idx {
				nt[i], ns[i] = cur[j], seqs[j]
			}
			cur, seqs, order = nt, ns, keys

		case FragCoalT, FragRdupT, FragAggr:
			if si != len(steps)-1 {
				return nil, nil, fmt.Errorf("exec: fragment step %d: %s must be the final step", si, st.Op)
			}
			in := relation.FromTuplesTrusted(sch, cur)
			in.SetOrder(order)
			leaf := algebra.NewRel("@frag", sch, algebra.BaseInfo{Order: order})
			var node algebra.Node
			switch st.Op {
			case FragCoalT:
				node = algebra.NewCoal(leaf)
			case FragRdupT:
				node = algebra.NewTRdup(leaf)
			default:
				node = algebra.NewAggregate(st.GroupBy, st.Aggs, leaf)
			}
			out, err := New(eval.MapSource{"@frag": in}).Eval(node)
			if err != nil {
				return nil, nil, fmt.Errorf("exec: fragment %s: %w", st.Op, err)
			}
			return out, nil, nil

		default:
			return nil, nil, fmt.Errorf("exec: fragment step %d: unknown op %d", si, uint8(st.Op))
		}
	}
	out := relation.FromTuplesTrusted(sch, cur)
	out.SetOrder(order)
	return out, seqs, nil
}

// TaggedRows pairs one shard's fragment output with its sequence keys,
// parallel slices (Seqs[i] is Rows[i]'s global stored position).
type TaggedRows struct {
	Rows []relation.Tuple
	Seqs []int
}

// MergeBySeq merges per-shard fragment outputs back into the global stored
// order: ascending sequence key. Partitioning assigns each stored row to
// exactly one shard, so the keys are disjoint and the merge is a plain
// k-way minimum.
func MergeBySeq(parts []TaggedRows) []relation.Tuple {
	total := 0
	for _, p := range parts {
		total += len(p.Rows)
	}
	out := make([]relation.Tuple, 0, total)
	at := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for k, p := range parts {
			if at[k] >= len(p.Rows) {
				continue
			}
			if best < 0 || p.Seqs[at[k]] < parts[best].Seqs[at[best]] {
				best = k
			}
		}
		out = append(out, parts[best].Rows[at[best]])
		at[best]++
	}
	return out
}

// MergeSorted merges per-shard sorted fragment outputs into the global
// stable sort order: by the sort keys, ties broken by sequence key. Each
// shard's list is sorted by exactly that compound order (a stable local
// sort over a sequence-ascending slice), so this is a standard k-way merge.
func MergeSorted(sch *schema.Schema, keys relation.OrderSpec, parts []TaggedRows) []relation.Tuple {
	total := 0
	for _, p := range parts {
		total += len(p.Rows)
	}
	out := make([]relation.Tuple, 0, total)
	at := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for k, p := range parts {
			if at[k] >= len(p.Rows) {
				continue
			}
			if best < 0 {
				best = k
				continue
			}
			c := relation.CompareOn(sch, keys, p.Rows[at[k]], parts[best].Rows[at[best]])
			if c < 0 || (c == 0 && p.Seqs[at[k]] < parts[best].Seqs[at[best]]) {
				best = k
			}
		}
		out = append(out, parts[best].Rows[at[best]])
		at[best]++
	}
	return out
}

// MergeGroups merges per-shard grouped fragment outputs block-wise on the
// grouping prefix. The push-down contract guarantees every group lives
// wholly on one shard and distinct groups differ on the prefix, so whole
// blocks of prefix-equal rows move intact; ties across shards cannot occur
// for real groups, and shard index breaks them deterministically anyway.
func MergeGroups(sch *schema.Schema, prefix relation.OrderSpec, parts [][]relation.Tuple) []relation.Tuple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]relation.Tuple, 0, total)
	at := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for k, p := range parts {
			if at[k] >= len(p) {
				continue
			}
			if best < 0 || relation.CompareOn(sch, prefix, p[at[k]], parts[best][at[best]]) < 0 {
				best = k
			}
		}
		// Move the whole prefix-equal block from the chosen shard.
		p := parts[best]
		head := p[at[best]]
		for at[best] < len(p) && relation.CompareOn(sch, prefix, p[at[best]], head) == 0 {
			out = append(out, p[at[best]])
			at[best]++
		}
	}
	return out
}
