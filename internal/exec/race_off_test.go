//go:build !race

package exec_test

// raceEnabled reports a race-instrumented test binary.
const raceEnabled = false
