//go:build race

package exec_test

// raceEnabled reports a race-instrumented test binary; the heaviest scale
// tests skip under it (their logic is covered at smaller scales).
const raceEnabled = true
