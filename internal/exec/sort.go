package exec

import (
	"container/heap"
	"sort"

	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/spill"
)

// sortRunSize bounds the tuples sorted per run of the external merge sort.
// In-memory the bound only caps per-run sort working sets; under a memory
// budget the same run machinery cuts runs by bytes and spills them to temp
// files instead (budget-driven run cutting).
const sortRunSize = 4096

// mergeSortIter is the explicit external-merge sort operator: the input is
// consumed into consecutive bounded runs, each stable-sorted in place, and
// the runs are merged through a min-heap whose tie-break — run index, then
// position within the run — makes the merged sequence exactly the stable
// sort of the whole input. Emission streams tuple-at-a-time from the heap,
// so downstream operators start before the full output materializes.
//
// With the engine budgeted (Options.MemoryBudget > 0), run cutting is
// byte-driven: while the accumulated input fits the operator's share, runs
// stay in memory exactly as in the unbudgeted shape; past the share, every
// resident run flushes to a spill file and further runs cut at half the
// share, sort, and spill. The merge heap then streams from the files. Run
// boundaries are pure bookkeeping — any consecutive partition into stable-
// sorted runs merges to the identical global stable sort — so budgeted and
// unbudgeted sorts agree bit-for-bit.
type mergeSortIter struct {
	eng    *Engine
	in     *source
	spec   relation.OrderSpec
	schema *schema.Schema

	built    bool
	h        runHeap
	resident int64 // accounted bytes of in-memory runs, released on close
}

// runCursor is one run's merge position: a resident run indexed by pos, or
// a spilled run streamed through a reader with a one-tuple head.
type runCursor struct {
	run []relation.Tuple
	idx int // run index: the stability tie-break
	pos int

	file *spill.File
	r    *spill.Reader
	head relation.Tuple
}

// top returns the cursor's current tuple.
func (c *runCursor) top() relation.Tuple {
	if c.r != nil {
		return c.head
	}
	return c.run[c.pos]
}

// advance moves past the current tuple; ok=false reports run exhaustion.
func (c *runCursor) advance() (ok bool, err error) {
	if c.r == nil {
		c.pos++
		return c.pos < len(c.run), nil
	}
	_, t, ok, err := c.r.Next()
	if err != nil {
		return false, err
	}
	if !ok {
		c.close()
		return false, nil
	}
	c.head = t
	return true, nil
}

// open readies a spilled cursor's reader and first head.
func (c *runCursor) open() error {
	if c.file == nil {
		return nil
	}
	r, err := c.file.Open()
	if err != nil {
		return err
	}
	_, t, ok, err := r.Next()
	if err != nil || !ok {
		r.Close()
		if err == nil {
			c.file.Remove()
			c.file = nil
		}
		return err
	}
	c.r, c.head = r, t
	return nil
}

// close releases a spilled cursor's reader and file.
func (c *runCursor) close() {
	if c.r != nil {
		c.r.Close()
		c.r = nil
	}
	if c.file != nil {
		c.file.Remove()
		c.file = nil
	}
}

type runHeap struct {
	cursors []*runCursor
	schema  *schema.Schema
	spec    relation.OrderSpec
}

func (h *runHeap) Len() int { return len(h.cursors) }
func (h *runHeap) Less(i, j int) bool {
	a, b := h.cursors[i], h.cursors[j]
	c := relation.CompareOn(h.schema, h.spec, a.top(), b.top())
	if c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}
func (h *runHeap) Swap(i, j int) { h.cursors[i], h.cursors[j] = h.cursors[j], h.cursors[i] }
func (h *runHeap) Push(x any)    { h.cursors = append(h.cursors, x.(*runCursor)) }
func (h *runHeap) Pop() any {
	n := len(h.cursors)
	c := h.cursors[n-1]
	h.cursors = h.cursors[:n-1]
	return c
}

func (m *mergeSortIter) build() error {
	budgeted := m.eng != nil && m.eng.budgeted()
	var share int64
	if budgeted {
		share = m.eng.opShare()
	}

	var cursors []*runCursor
	var residentBytes int64
	spilling := false

	run := make([]relation.Tuple, 0, sortRunSize)
	var runBytes int64

	sortRun := func(r []relation.Tuple) {
		sort.SliceStable(r, func(i, j int) bool {
			return relation.CompareOn(m.schema, m.spec, r[i], r[j]) < 0
		})
	}
	spillRun := func(r []relation.Tuple) (*spill.File, error) {
		w, err := m.eng.spillMgr.Create()
		if err != nil {
			return nil, err
		}
		for _, t := range r {
			if err := w.Append(0, t); err != nil {
				w.Abort()
				return nil, err
			}
		}
		return w.Finish()
	}
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		r := run
		sortRun(r)
		c := &runCursor{idx: len(cursors)}
		if spilling {
			f, err := spillRun(r)
			if err != nil {
				return err
			}
			c.file = f
		} else {
			c.run = r
			residentBytes += runBytes
			if m.eng != nil && m.eng.mem != nil {
				m.eng.mem.grow(runBytes)
			}
		}
		cursors = append(cursors, c)
		run = make([]relation.Tuple, 0, sortRunSize)
		runBytes = 0
		return nil
	}
	// startSpilling converts every resident run to a spill file in place —
	// run indices (the stability tie-break) keep their arrival order — so
	// from here on the working set is one run buffer plus writer buffers.
	startSpilling := func() error {
		spilling = true
		m.eng.stats.SpilledOps++
		for _, c := range cursors {
			f, err := spillRun(c.run)
			if err != nil {
				return err
			}
			c.file = f
			c.run = nil
		}
		if m.eng.mem != nil {
			m.eng.mem.release(residentBytes)
		}
		residentBytes = 0
		return nil
	}

	fail := func(err error) error {
		for _, c := range cursors {
			c.close()
		}
		m.in.it.close()
		return err
	}

	for {
		t, err := m.in.it.next()
		if err != nil {
			return fail(err)
		}
		if t == nil {
			break
		}
		run = append(run, t)
		if budgeted {
			runBytes += spill.TupleMemSize(t)
			if !spilling && residentBytes+runBytes > share {
				if err := startSpilling(); err != nil {
					return fail(err)
				}
			}
			if spilling && runBytes > share/2 {
				if err := flush(); err != nil {
					return fail(err)
				}
			}
		}
		if len(run) == sortRunSize {
			if err := flush(); err != nil {
				return fail(err)
			}
		}
	}
	if err := m.in.it.close(); err != nil {
		for _, c := range cursors {
			c.close()
		}
		return err
	}
	if err := flush(); err != nil {
		for _, c := range cursors {
			c.close()
		}
		return err
	}

	m.h = runHeap{schema: m.schema, spec: m.spec}
	for _, c := range cursors {
		if err := c.open(); err != nil {
			for _, cc := range cursors {
				cc.close()
			}
			return err
		}
		if c.file == nil && c.r == nil && c.run == nil {
			continue // empty spilled run
		}
		m.h.cursors = append(m.h.cursors, c)
	}
	heap.Init(&m.h)
	m.resident = residentBytes
	m.built = true
	return nil
}

func (m *mergeSortIter) next() (relation.Tuple, error) {
	if !m.built {
		if err := m.build(); err != nil {
			return nil, err
		}
	}
	if m.h.Len() == 0 {
		return nil, nil
	}
	c := m.h.cursors[0]
	t := c.top()
	ok, err := c.advance()
	if err != nil {
		return nil, err
	}
	if !ok {
		heap.Pop(&m.h)
	} else {
		heap.Fix(&m.h, 0)
	}
	return t, nil
}

func (m *mergeSortIter) close() error {
	for _, c := range m.h.cursors {
		c.close()
	}
	m.h.cursors = nil
	if m.eng != nil && m.eng.mem != nil && m.resident > 0 {
		m.eng.mem.release(m.resident)
		m.resident = 0
	}
	return nil
}
