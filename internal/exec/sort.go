package exec

import (
	"container/heap"
	"sort"

	"tqp/internal/relation"
	"tqp/internal/schema"
)

// sortRunSize bounds the tuples sorted per run of the external merge sort.
// In-memory the bound only caps per-run sort working sets, but the operator
// is written run-based so the same code serves spilling runs later.
const sortRunSize = 4096

// mergeSortIter is the explicit external-merge sort operator: the input is
// consumed into consecutive bounded runs, each stable-sorted in place, and
// the runs are merged through a min-heap whose tie-break — run index, then
// position within the run — makes the merged sequence exactly the stable
// sort of the whole input. Emission streams tuple-at-a-time from the heap,
// so downstream operators start before the full output materializes.
type mergeSortIter struct {
	in     *source
	spec   relation.OrderSpec
	schema *schema.Schema

	built bool
	runs  [][]relation.Tuple
	h     runHeap
}

// runCursor is one run's merge position.
type runCursor struct {
	run []relation.Tuple
	idx int // run index: the stability tie-break
	pos int
}

type runHeap struct {
	cursors []*runCursor
	schema  *schema.Schema
	spec    relation.OrderSpec
}

func (h *runHeap) Len() int { return len(h.cursors) }
func (h *runHeap) Less(i, j int) bool {
	a, b := h.cursors[i], h.cursors[j]
	c := relation.CompareOn(h.schema, h.spec, a.run[a.pos], b.run[b.pos])
	if c != 0 {
		return c < 0
	}
	return a.idx < b.idx
}
func (h *runHeap) Swap(i, j int) { h.cursors[i], h.cursors[j] = h.cursors[j], h.cursors[i] }
func (h *runHeap) Push(x any)    { h.cursors = append(h.cursors, x.(*runCursor)) }
func (h *runHeap) Pop() any {
	n := len(h.cursors)
	c := h.cursors[n-1]
	h.cursors = h.cursors[:n-1]
	return c
}

func (m *mergeSortIter) build() error {
	run := make([]relation.Tuple, 0, sortRunSize)
	flush := func() {
		if len(run) == 0 {
			return
		}
		r := run
		sort.SliceStable(r, func(i, j int) bool {
			return relation.CompareOn(m.schema, m.spec, r[i], r[j]) < 0
		})
		m.runs = append(m.runs, r)
		run = make([]relation.Tuple, 0, sortRunSize)
	}
	for {
		t, err := m.in.it.next()
		if err != nil {
			m.in.it.close()
			return err
		}
		if t == nil {
			break
		}
		run = append(run, t)
		if len(run) == sortRunSize {
			flush()
		}
	}
	if err := m.in.it.close(); err != nil {
		return err
	}
	flush()
	m.h = runHeap{schema: m.schema, spec: m.spec}
	for i, r := range m.runs {
		m.h.cursors = append(m.h.cursors, &runCursor{run: r, idx: i})
	}
	heap.Init(&m.h)
	m.built = true
	return nil
}

func (m *mergeSortIter) next() (relation.Tuple, error) {
	if !m.built {
		if err := m.build(); err != nil {
			return nil, err
		}
	}
	if m.h.Len() == 0 {
		return nil, nil
	}
	c := m.h.cursors[0]
	t := c.run[c.pos]
	c.pos++
	if c.pos >= len(c.run) {
		heap.Pop(&m.h)
	} else {
		heap.Fix(&m.h, 0)
	}
	return t, nil
}

func (m *mergeSortIter) close() error { return nil }
