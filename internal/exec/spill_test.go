package exec_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/datagen"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/testutil"
	"tqp/internal/value"
)

// fuzzScale multiplies the differential suites' seed counts; the nightly
// spill-fuzz workflow sets TQP_FUZZ_SCALE=10 for a 10× deeper sweep.
func fuzzScale() int64 {
	if v := os.Getenv("TQP_FUZZ_SCALE"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// smallBudget is the spill-forcing budget of the five-way suite; the
// nightly workflow can tighten it via TQP_FUZZ_MEM (bytes).
func smallBudget() int64 {
	if v := os.Getenv("TQP_FUZZ_MEM"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n > 0 {
			return n
		}
	}
	return 64 << 10
}

// recordFuzzFailure appends a reproduction line to the file named by
// TQP_FUZZ_FAILURE_FILE (the nightly workflow uploads it as an artifact on
// failure), then fails the test.
func recordFuzzFailure(t *testing.T, format string, args ...any) {
	t.Helper()
	msg := fmt.Sprintf(format, args...)
	if path := os.Getenv("TQP_FUZZ_FAILURE_FILE"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintln(f, msg)
			f.Close()
		}
	}
	t.Fatal(msg)
}

// TestDifferentialFiveWay is the memory-bounded engine's correctness
// anchor: reference vs hash-only vs columnar vs tuple-at-a-time vs parallel
// vs budgeted-spill at budgets {64KB, 1MB, unlimited}, all bit-identical on
// random plans. The default engine compiles the vectorized columnar
// variants (vec.go); the exec-novec leg pins the tuple pipeline those
// variants replaced, so the two sides of every batch↔tuple adapter
// boundary are compared on the same plans. Two sweeps run: tiny catalogs
// for plan-shape coverage, and sized catalogs (hundreds of rows) so the
// small budget genuinely forces the grace-hash spill paths — vacuity
// guards assert Stats.SpilledOps > 0 there and Stats.VectorOps > 0 on the
// columnar leg. The parallel budgeted leg exercises the per-worker budget
// shares.
func TestDifferentialFiveWay(t *testing.T) {
	small := smallBudget()
	type leg struct {
		name string
		opts exec.Options
	}
	legs := []leg{
		{"exec-hash", exec.Options{NoMerge: true, NoSortElision: true}},
		{"exec-merge", exec.Options{}},
		{"exec-novec", exec.Options{NoColumnar: true}},
		{"exec-par3", exec.Options{Parallelism: 3}},
		{"spill-small", exec.Options{MemoryBudget: small}},
		{"spill-1M", exec.Options{MemoryBudget: 1 << 20}},
		// An effectively unlimited budget keeps the grace code paths
		// compiled but never spilling — the in-memory grace shape.
		{"spill-unlimited", exec.Options{MemoryBudget: 1 << 40}},
		{"spill-small-par3", exec.Options{MemoryBudget: small, Parallelism: 3}},
	}

	spillDir := t.TempDir()
	plans, spilledSmall, vectorOps, vectorBatches := 0, 0, 0, 0
	vectorOpsPar, vectorOpsSpill := 0, 0
	sweep := func(seedLo, seedHi int64, rowsA, rowsB, trials int) {
		for seed := seedLo; seed < seedHi; seed++ {
			rng := rand.New(rand.NewSource(seed))
			c, bases := testutil.TemporalCatalogSized(seed, rowsA, rowsB)
			ref := eval.New(c)
			for trial := 0; trial < trials; trial++ {
				plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
				want, errRef := ref.Eval(plan)
				for _, lg := range legs {
					opts := lg.opts
					opts.SpillDir = spillDir
					eng := exec.NewWith(c, opts)
					got, err := eng.Eval(plan)
					if (errRef == nil) != (err == nil) {
						recordFuzzFailure(t, "seed %d leg %s: engines disagree on failure for %s: reference=%v leg=%v",
							seed, lg.name, algebra.Canonical(plan), errRef, err)
					}
					if errRef != nil {
						continue
					}
					if !got.EqualAsList(want) {
						recordFuzzFailure(t, "seed %d leg %s: %s: result differs from reference (%d vs %d tuples)",
							seed, lg.name, algebra.Canonical(plan), got.Len(), want.Len())
					}
					if !got.Order().Equal(want.Order()) {
						recordFuzzFailure(t, "seed %d leg %s: %s: order %s ≠ reference %s",
							seed, lg.name, algebra.Canonical(plan), got.Order(), want.Order())
					}
					st := eng.Stats()
					if lg.opts.MemoryBudget == small {
						spilledSmall += st.SpilledOps
					}
					if st.SpilledOps > 0 && st.SpilledBytes == 0 {
						t.Fatalf("seed %d leg %s: spilled %d ops but recorded no bytes", seed, lg.name, st.SpilledOps)
					}
					switch lg.name {
					case "exec-merge":
						vectorOps += st.VectorOps
						vectorBatches += st.VectorBatches
					case "exec-par3":
						vectorOpsPar += st.VectorOps
					case "spill-small", "spill-1M", "spill-unlimited", "spill-small-par3":
						vectorOpsSpill += st.VectorOps
					case "exec-novec", "exec-hash":
						if st.VectorOps != 0 {
							t.Fatalf("seed %d leg %s: columnar operators compiled with columnar execution disabled", seed, lg.name)
						}
					}
				}
				if errRef == nil {
					plans++
				}
			}
		}
	}
	scale := fuzzScale()
	sweep(0, 16*scale, 8, 6, 8)            // plan-shape coverage on the tiny catalogs
	sweep(1000, 1000+6*scale, 300, 200, 4) // sized catalogs: the small budget must spill

	if plans < 100 {
		t.Fatalf("five-way differential covered only %d plans, want ≥ 100", plans)
	}
	if spilledSmall == 0 {
		t.Fatalf("vacuous run: the %d-byte budget never spilled across %d plans", small, plans)
	}
	if vectorOps == 0 || vectorBatches == 0 {
		t.Fatalf("vacuous run: the columnar leg compiled %d vectorized operators and flowed %d batches across %d plans",
			vectorOps, vectorBatches, plans)
	}
	// The parallel and budgeted engines are columnar-capable now; either
	// counter at zero means a newly-columnar path regressed to tuples.
	if vectorOpsPar == 0 || vectorOpsSpill == 0 {
		t.Fatalf("vacuous run: parallel leg compiled %d vectorized operators, budgeted legs %d",
			vectorOpsPar, vectorOpsSpill)
	}
	// The shared spill directory must be empty again: every Eval removes
	// its run directory on completion.
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("spill directory not empty after the suite: %v", entries)
	}
	t.Logf("five-way differential: %d plans, %d spilled ops under the %d-byte budget", plans, spilledSmall, small)
}

// sizedTemporal returns a temporal relation big enough to exceed small
// budgets, with value groups and overlaps that keep the temporal operators
// busy.
func sizedTemporal(rows int, seed int64) *relation.Relation {
	return datagen.Temporal(datagen.TemporalSpec{
		Rows: rows, Values: rows / 10, DupFrac: 0.2, AdjFrac: 0.3,
		TimeRange: 400, MaxPeriod: 20, Seed: seed,
	})
}

// TestSpillFileLifecycle pins the temp-file contract: a spilling query
// leaves the spill directory empty after Eval (files are consumed eagerly
// and the run directory is removed), and Close stays a safe no-op after.
func TestSpillFileLifecycle(t *testing.T) {
	dir := t.TempDir()
	r := sizedTemporal(3000, 21)
	src := eval.MapSource{"R": r}
	plan := algebra.NewCoal(algebra.NewTRdup(algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})))

	eng := exec.NewWith(src, exec.Options{MemoryBudget: 32 << 10, SpillDir: dir})
	out, err := eng.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SpilledOps == 0 || st.SpilledBytes == 0 {
		t.Fatalf("expected spilling at a 32KB budget over %d rows, stats %+v", r.Len(), st)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("spill files leaked after a successful Eval: %v", names)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close after a clean Eval: %v", err)
	}
	want, err := exec.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualAsList(want) {
		t.Fatal("spilled result differs from the unbudgeted engine")
	}
}

// TestSpillLifecycleMidQueryError forces a runtime error after spilling
// has begun — a division by zero whose row surfaces deep into the stream —
// and verifies the error propagates and no spill file or directory
// survives.
func TestSpillLifecycleMidQueryError(t *testing.T) {
	dir := t.TempDir()
	r := sizedTemporal(3000, 22)
	// Find a Grp value whose first occurrence lies in the last quarter of
	// the list: rows before it drain (and spill) fine, then 1/(Grp-x)
	// faults.
	gi := r.Schema().Index("Grp")
	seen := map[int64]bool{}
	var bad int64
	found := false
	for i := 0; i < r.Len(); i++ {
		v := r.At(i)[gi].AsInt()
		if i >= 3*r.Len()/4 && !seen[v] {
			bad, found = v, true
			break
		}
		seen[v] = true
	}
	if !found {
		t.Skip("no late-first-occurrence Grp value in this dataset")
	}
	src := eval.MapSource{"R": r}
	div := expr.Arith{Op: expr.Div, L: expr.Literal(value.Int(1)),
		R: expr.Arith{Op: expr.Sub, L: expr.Column("Grp"), R: expr.Literal(value.Int(bad))}}
	pred := expr.Compare(expr.Lt, div, expr.Literal(value.Int(1<<30)))
	plan := algebra.NewTRdup(algebra.NewSelect(pred, algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})))

	eng := exec.NewWith(src, exec.Options{MemoryBudget: 16 << 10, SpillDir: dir})
	if _, err := eng.Eval(plan); err == nil {
		t.Fatal("expected the division by zero to surface")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = filepath.Join(dir, e.Name())
		}
		t.Fatalf("spill state leaked after a mid-query error: %v", names)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close after a failed Eval: %v", err)
	}
}

// TestStatsResetPerRun pins the per-run stats contract: a reused Engine
// reports the most recent Eval's counters only, for the merge family and
// the new spill counters alike.
func TestStatsResetPerRun(t *testing.T) {
	r := sizedTemporal(2000, 23)
	src := eval.MapSource{"R": r}
	base := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
	spilling := algebra.NewTRdup(base)
	trivial := algebra.NewSelect(expr.TruePred{}, base)

	eng := exec.NewWith(src, exec.Options{MemoryBudget: 16 << 10, SpillDir: t.TempDir()})
	if _, err := eng.Eval(spilling); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SpilledOps == 0 || st.SpilledBytes == 0 || st.PeakBytes == 0 {
		t.Fatalf("first run should spill and account, stats %+v", st)
	}
	if _, err := eng.Eval(trivial); err != nil {
		t.Fatal(err)
	}
	st = eng.Stats()
	if st.SpilledOps != 0 || st.SpilledBytes != 0 {
		t.Fatalf("stats leaked across runs: %+v", st)
	}

	// The merge-family counters reset the same way.
	sortPlan := algebra.NewSort(relation.OrderSpec{relation.Key("Name")}, base)
	plain := exec.New(src)
	if _, err := plain.Eval(sortPlan); err != nil {
		t.Fatal(err)
	}
	if plain.Stats().MergeSorts != 1 {
		t.Fatalf("expected one merge sort, stats %+v", plain.Stats())
	}
	if _, err := plain.Eval(trivial); err != nil {
		t.Fatal(err)
	}
	if plain.Stats().MergeSorts != 0 {
		t.Fatalf("MergeSorts leaked across runs: %+v", plain.Stats())
	}
}

// TestBudgetedSortSpillStability pins the budget-driven run cutting: a
// sort whose input exceeds the share must spill its runs and still emit
// the exact stable sort — equal keys from different spilled runs keep
// their arrival order through the run-index tie-break.
func TestBudgetedSortSpillStability(t *testing.T) {
	r := datagen.Temporal(datagen.TemporalSpec{
		Rows: 10000, Values: 40, DupFrac: 0.3, AdjFrac: 0.2, TimeRange: 300, MaxPeriod: 15, Seed: 42,
	})
	src := eval.MapSource{"R": r}
	plan := algebra.NewSort(relation.OrderSpec{relation.Key("Name")},
		algebra.NewRel("R", r.Schema(), algebra.BaseInfo{}))
	want, err := eval.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.NewWith(src, exec.Options{MemoryBudget: 64 << 10, SpillDir: t.TempDir()})
	got, err := eng.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.MergeSorts != 1 || st.SpilledOps == 0 {
		t.Fatalf("expected one spilling external sort, stats %+v", st)
	}
	if !got.EqualAsList(want) {
		t.Fatal("budgeted external sort differs from the reference stable sort")
	}
}

// TestKeylessProductSpill pins the no-key fallback: a product with no
// equi-keys cannot grace-partition, so its build side spills to one file
// and re-scans per probe tuple — output order identical to the reference.
func TestKeylessProductSpill(t *testing.T) {
	l := sizedTemporal(300, 31)
	r := sizedTemporal(300, 32)
	src := eval.MapSource{"L": l, "R": r}
	plan := algebra.NewProduct(
		algebra.NewRel("L", l.Schema(), algebra.BaseInfo{}),
		algebra.NewRel("R", r.Schema(), algebra.BaseInfo{}))
	want, err := eval.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	eng := exec.NewWith(src, exec.Options{MemoryBudget: 16 << 10, SpillDir: t.TempDir()})
	got, err := eng.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().SpilledOps == 0 {
		t.Fatalf("expected the keyless product's build side to spill, stats %+v", eng.Stats())
	}
	if !got.EqualAsList(want) {
		t.Fatal("spilled keyless product differs from the reference")
	}
}

// TestBudgetPrefersStreamingMerge: when the delivered order proves groups
// contiguous, the budgeted engine keeps the bounded group-at-a-time
// streaming variant — no partitioning, no spilling, however small the
// budget.
func TestBudgetPrefersStreamingMerge(t *testing.T) {
	r := sizedTemporal(3000, 33)
	byValue := relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}
	if err := r.SortStable(byValue); err != nil {
		t.Fatal(err)
	}
	src := eval.MapSource{"R": r}
	plan := algebra.NewCoal(algebra.NewRel("R", r.Schema(), algebra.BaseInfo{Order: byValue}))
	eng := exec.NewWith(src, exec.Options{MemoryBudget: 16 << 10, SpillDir: t.TempDir()})
	got, err := eng.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SpilledOps != 0 {
		t.Fatalf("sorted input must stream group-at-a-time, not spill: %+v", st)
	}
	if st.MergeOps == 0 {
		t.Fatalf("expected the streaming merge variant to compile: %+v", st)
	}
	want, err := eval.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsList(want) {
		t.Fatal("streaming budgeted coalescing differs from the reference")
	}
}

// TestMillionRowPipelineUnderBudget is the scale acceptance: a 1M-row
// rdupᵀ → coalᵀ pipeline completes under a 16MB budget, spilling both
// operators, with the accounted peak held to the budget (one tuple of
// drain overshoot allowed) — and the result matches the unbudgeted engine
// bit for bit.
func TestMillionRowPipelineUnderBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row pipeline skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("1M-row pipeline skipped under the race detector (covered at smaller scales)")
	}
	const budget = 16 << 20
	r := datagen.Temporal(datagen.TemporalSpec{
		Rows: 1000000, Values: 20000, TimeRange: 500, MaxPeriod: 25, Seed: 9,
	})
	src := eval.MapSource{"R": r}
	plan := algebra.NewCoal(algebra.NewTRdup(algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})))

	eng := exec.NewWith(src, exec.Options{MemoryBudget: budget, SpillDir: t.TempDir()})
	got, err := eng.Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.SpilledOps < 2 {
		t.Fatalf("both rdupᵀ and coalᵀ should spill at 16MB over 1M rows, stats %+v", st)
	}
	if st.PeakBytes > budget+1<<10 {
		t.Fatalf("accounted peak %d exceeds the %d budget beyond drain overshoot", st.PeakBytes, budget)
	}
	want, err := exec.New(src).Eval(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsList(want) {
		t.Fatal("1M-row budgeted pipeline differs from the unbudgeted engine")
	}
	t.Logf("1M rows under 16MB: %d spilled ops, %d spilled bytes, peak %d", st.SpilledOps, st.SpilledBytes, st.PeakBytes)
}
