package exec

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// scanSource is the optional richer resolution interface a source may
// implement (the catalog does): alongside the relation it reports how many
// store segments the scan read and how many the period index pruned. The
// assertion is structural so exec needs no catalog import.
type scanSource interface {
	ResolveScan(name string) (*relation.Relation, int, int, error)
}

// buildRel compiles a base-relation scan.
func (e *Engine) buildRel(n *algebra.Rel) (*source, error) {
	var r *relation.Relation
	var err error
	if ss, ok := e.src.(scanSource); ok {
		var scanned, skipped int
		r, scanned, skipped, err = ss.ResolveScan(n.Name)
		e.stats.SegmentsScanned += scanned
		e.stats.SegmentsSkipped += skipped
	} else {
		r, err = e.src.Resolve(n.Name)
	}
	if err != nil {
		return nil, err
	}
	if !r.Schema().Equal(n.Sch) {
		return nil, fmt.Errorf("exec: relation %q schema mismatch: plan %s vs instance %s",
			n.Name, n.Sch, r.Schema())
	}
	order := r.Order()
	if !n.Info.Order.Empty() {
		order = n.Info.Order
	}
	src := &source{it: &sliceIter{ts: r.Tuples()}, schema: r.Schema(), order: order}
	if e.columnar() {
		// The columnar view converts lazily on the first batch pull (and is
		// cached per relation), so a plan whose parents stay tuple-at-a-time
		// pays nothing for it.
		src.vec = &onceBatchIter{compute: func() (*batch, error) { return e.batchOf(r), nil }}
	}
	return src, nil
}

// selectIter streams tuples satisfying the predicate.
type selectIter struct {
	in     iterator
	p      expr.Pred
	schema *schema.Schema
}

func (s *selectIter) next() (relation.Tuple, error) {
	for {
		t, err := s.in.next()
		if err != nil || t == nil {
			return nil, err
		}
		ok, err := s.p.Holds(s.schema, t)
		if err != nil {
			return nil, err
		}
		if ok {
			return t, nil
		}
	}
}

func (s *selectIter) close() error { return s.in.close() }

// buildSelect compiles σ_P: a streaming filter that retains order,
// duplicates and coalescing.
func (e *Engine) buildSelect(n *algebra.Select) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	if _, err := n.Schema(); err != nil {
		return nil, err
	}
	if e.columnar() && in.vec != nil {
		e.stats.VectorOps++
		v := &vecFilterIter{e: e, in: in.vec, p: n.P, schema: in.schema, fast: compileVecPred(n.P, in.schema)}
		return vecSource(v, in.schema, in.order), nil
	}
	return &source{
		it:     &selectIter{in: in.it, p: n.P, schema: in.schema},
		schema: in.schema,
		order:  in.order,
	}, nil
}

// projectIter streams the generalized projection π.
type projectIter struct {
	in       iterator
	items    []algebra.ProjItem
	inSchema *schema.Schema
}

func (p *projectIter) next() (relation.Tuple, error) {
	t, err := p.in.next()
	if err != nil || t == nil {
		return nil, err
	}
	nt := make(relation.Tuple, len(p.items))
	for i, it := range p.items {
		v, err := it.Expr.Eval(p.inSchema, t)
		if err != nil {
			return nil, err
		}
		nt[i] = v
	}
	return nt, nil
}

func (p *projectIter) close() error { return p.in.close() }

// buildProject compiles π with the Prefix(Order(r), ProjPairs) order rule.
func (e *Engine) buildProject(n *algebra.Project) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	order := eval.OrderAfterProject(in.order, n)
	if e.columnar() && in.vec != nil {
		e.stats.VectorOps++
		items := make([]projVecItem, len(n.Items))
		for i, it := range n.Items {
			items[i].eval = it.Expr
		}
		gather := compileProjItems(items, in.schema)
		v := &vecProjectIter{e: e, in: in.vec, items: items, gather: gather, inSchema: in.schema, outSchema: outSchema}
		return vecSource(v, outSchema, order), nil
	}
	return &source{
		it:     &projectIter{in: in.it, items: n.Items, inSchema: in.schema},
		schema: outSchema,
		order:  order,
	}, nil
}

// buildSort compiles sort_A. When the input already delivers an order A is
// a prefix of, the sort is a physical no-op (a stable sort cannot move any
// tuple) and compilation elides it outright, passing the input stage —
// and its stronger order — through. Otherwise an explicit external merge
// sort runs: bounded stable-sorted runs merged through a heap whose
// run-index tie-break reproduces the global stable sort, streaming tuples
// as the merge proceeds.
func (e *Engine) buildSort(n *algebra.Sort) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	if err := n.Spec.Validate(in.schema); err != nil {
		return nil, err
	}
	if !e.opts.NoSortElision && n.Spec.IsPrefixOf(in.order) {
		e.stats.SortsElided++
		return in, nil
	}
	order := n.Spec
	if n.Spec.IsPrefixOf(in.order) {
		// Table 1's special case: sorting on a prefix of the existing order
		// keeps the stronger order (reachable only with NoSortElision).
		order = in.order
	}
	e.stats.MergeSorts++
	if e.columnar() && in.vec != nil && !e.budgeted() {
		// Stable permutation of row indices over the unmoved planes; sorts
		// its runs across the worker pool under Parallelism. The budgeted
		// engine keeps the run-spilling external sort below.
		return e.vecSortSource(in, n.Spec, order), nil
	}
	if e.parallel() && !e.budgeted() {
		return e.parallelSortSource(in, n.Spec, order), nil
	}
	// Under a budget the run machinery cuts runs by bytes and spills them;
	// unbudgeted it keeps the fixed in-memory run size (see sort.go).
	return &source{
		it:     &mergeSortIter{eng: e, in: in, spec: n.Spec, schema: in.schema},
		schema: in.schema,
		order:  order,
	}, nil
}

// concatIter streams the left iterator, then the right.
type concatIter struct {
	cur, rest iterator
}

func (c *concatIter) next() (relation.Tuple, error) {
	t, err := c.cur.next()
	if err != nil || t != nil {
		return t, err
	}
	if c.rest == nil {
		return nil, nil
	}
	if err := c.cur.close(); err != nil {
		return nil, err
	}
	c.cur, c.rest = c.rest, nil
	return c.next()
}

func (c *concatIter) close() error {
	err := c.cur.close()
	if c.rest != nil {
		if err2 := c.rest.close(); err == nil {
			err = err2
		}
	}
	return err
}

// buildUnionAll compiles ⊔: streaming concatenation, unordered result.
func (e *Engine) buildUnionAll(n algebra.Node) (*source, error) {
	l, r, err := e.buildBoth(n)
	if err != nil {
		return nil, err
	}
	if _, err := n.Schema(); err != nil {
		return nil, err
	}
	return &source{it: &concatIter{cur: l.it, rest: r.it}, schema: l.schema}, nil
}

// rdupIter streams the first occurrence of each tuple through a hash set.
type rdupIter struct {
	in   iterator
	seen *hashGroups
}

func (r *rdupIter) next() (relation.Tuple, error) {
	for {
		t, err := r.in.next()
		if err != nil || t == nil {
			return nil, err
		}
		if r.seen.idx == nil {
			r.seen.idx = identityIdx(len(t))
		}
		if _, fresh := r.seen.groupOf(t); fresh {
			return t, nil
		}
	}
}

func (r *rdupIter) close() error { return r.in.close() }

// buildRdup compiles rdup: streaming duplicate elimination. The first
// occurrence survives, so the argument's order is retained (time attributes
// qualified — the result is a snapshot relation). An input delivered in an
// order covering every attribute keeps equal tuples contiguous, so a single
// adjacent comparison replaces the hash set.
func (e *Engine) buildRdup(n algebra.Node) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	src := &source{
		schema: outSchema,
		order:  eval.OrderQualifyTime(in.order, outSchema),
	}
	if e.parallel() && !e.budgeted() {
		if e.columnar() && in.vec != nil {
			// Columnar exchange: scatter row positions by plane hash, merge
			// ascending survivors into one selection view.
			return e.vecParallelRdupSource(in, outSchema, src.order), nil
		}
		// rdup is grouping on every attribute with the group's first
		// occurrence surviving; the parallel group exchange merges survivors
		// back into first-occurrence order.
		return e.parallelGroupAggSource(in, identityIdx(in.schema.Len()), outSchema, src.order,
			func(group []relation.Tuple) ([]relation.Tuple, error) { return group[:1], nil }), nil
	}
	if !e.opts.NoMerge && physical.GroupsContiguous(in.order, in.schema, identityIdx(in.schema.Len())) {
		if e.columnar() && in.vec != nil {
			// The columnar adjacent-compare dedup carries one (batch, row)
			// reference of state — as memory-bounded as the tuple variant.
			e.stats.MergeOps++
			e.stats.VectorOps++
			return vecSource(&vecDedupSortedIter{e: e, in: in.vec}, outSchema, src.order), nil
		}
		// The adjacent-compare variant holds one tuple of state — already
		// memory-bounded, so the budgeted engine prefers it too.
		e.stats.MergeOps++
		src.it = &dedupSortedIter{in: in.it}
		return src, nil
	}
	if e.budgeted() {
		if e.columnar() && in.vec != nil {
			// Budgeted columnar rdup: batches spill as columnar blocks and
			// partitions re-read as batches (vecgrace.go).
			return e.vecGraceRdupSource(in, outSchema, src.order), nil
		}
		idx := identityIdx(in.schema.Len())
		return e.graceGroupSource(in, idx, outSchema, src.order, func(part []prow) ([]tagged, error) {
			return rdupPartition(part, idx), nil
		}), nil
	}
	if e.columnar() && in.vec != nil {
		e.stats.VectorOps++
		return vecSource(&vecRdupIter{e: e, in: in.vec}, outSchema, src.order), nil
	}
	src.it = &rdupIter{in: in.it, seen: newHashGroups(nil, 0)}
	return src, nil
}

// diffIter implements the multiset difference \: the right side is drained
// into hash multiplicity counters on first pull, then the left side streams
// through, each tuple consuming one counter or surviving.
type diffIter struct {
	left   iterator
	right  *source
	groups *hashGroups
	budget []int
	built  bool
}

func (d *diffIter) next() (relation.Tuple, error) {
	if !d.built {
		r, err := drain(d.right)
		if err != nil {
			return nil, err
		}
		for _, t := range r.Tuples() {
			if d.groups.idx == nil {
				d.groups.idx = identityIdx(len(t))
			}
			gid, fresh := d.groups.groupOf(t)
			if fresh {
				d.budget = append(d.budget, 0)
			}
			d.budget[gid]++
		}
		d.built = true
	}
	for {
		t, err := d.left.next()
		if err != nil || t == nil {
			return nil, err
		}
		if d.groups.idx == nil {
			d.groups.idx = identityIdx(len(t))
		}
		if gid := d.groups.lookup(t, d.groups.idx); gid >= 0 && d.budget[gid] > 0 {
			d.budget[gid]--
			continue
		}
		return t, nil
	}
}

func (d *diffIter) close() error { return d.left.close() }

// buildDiff compiles the multiset difference \: the earliest left
// occurrences absorb the subtraction, retaining the left order and the late
// duplicates. When both inputs deliver one shared total order, a two-pointer
// merge replaces the hash multiplicity counters; otherwise the hash
// anti-semi pass runs.
func (e *Engine) buildDiff(n algebra.Node) (*source, error) {
	l, r, err := e.buildBoth(n)
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	src := &source{
		schema: outSchema,
		order:  eval.OrderQualifyTime(l.order, outSchema),
	}
	if e.budgeted() {
		// Both the hash and the merge variant materialize the right side;
		// under a budget the grace exchange bounds it instead.
		return e.graceDiffSource(l, r, outSchema, src.order), nil
	}
	if e.parallel() {
		if e.columnar() && (l.vec != nil || r.vec != nil) {
			s := e.vecParallelBudgetedSource(l, r, false)
			s.schema = outSchema
			s.order = src.order
			return s, nil
		}
		src.it = e.parallelDiffIter(l, r)
		return src, nil
	}
	if !e.opts.NoMerge {
		if spec, ok := physical.AlignedTotalOrder(l.order, r.order, l.schema); ok {
			e.stats.MergeOps++
			if e.columnar() && l.vec != nil {
				e.stats.VectorOps++
				m := &vecMergeDiffIter{e: e, left: l.vec, right: r,
					cmp: compileVecCmp(l.schema, spec)}
				return vecSource(m, outSchema, src.order), nil
			}
			src.it = &mergeDiffIter{left: l.it, right: r, schema: l.schema, spec: spec}
			return src, nil
		}
	}
	src.it = &diffIter{left: l.it, right: r, groups: newHashGroups(nil, 0)}
	return src, nil
}

// unionIter implements the max-multiplicity union ∪: all of the left list,
// followed by the right tuples exceeding the left's multiplicity counters.
type unionIter struct {
	left   *source
	right  iterator
	groups *hashGroups
	budget []int
	lts    []relation.Tuple
	li     int
	built  bool
}

func (u *unionIter) next() (relation.Tuple, error) {
	if !u.built {
		l, err := drain(u.left)
		if err != nil {
			return nil, err
		}
		u.lts = l.Tuples()
		for _, t := range u.lts {
			if u.groups.idx == nil {
				u.groups.idx = identityIdx(len(t))
			}
			gid, fresh := u.groups.groupOf(t)
			if fresh {
				u.budget = append(u.budget, 0)
			}
			u.budget[gid]++
		}
		u.built = true
	}
	if u.li < len(u.lts) {
		t := u.lts[u.li]
		u.li++
		return t, nil
	}
	for {
		t, err := u.right.next()
		if err != nil || t == nil {
			return nil, err
		}
		if u.groups.idx == nil {
			u.groups.idx = identityIdx(len(t))
		}
		if gid := u.groups.lookup(t, u.groups.idx); gid >= 0 && u.budget[gid] > 0 {
			u.budget[gid]--
			continue
		}
		return t, nil
	}
}

func (u *unionIter) close() error { return u.right.close() }

// buildUnion compiles the multiset union ∪ of Albert [1]: each tuple occurs
// max(n1, n2) times; unordered result. When both inputs deliver one shared
// total order, a two-pointer merge replaces the hash multiplicity counters.
func (e *Engine) buildUnion(n algebra.Node) (*source, error) {
	l, r, err := e.buildBoth(n)
	if err != nil {
		return nil, err
	}
	if _, err := n.Schema(); err != nil {
		return nil, err
	}
	src := &source{schema: l.schema}
	if e.budgeted() {
		return e.graceUnionSource(l, r, l.schema), nil
	}
	if e.parallel() {
		if e.columnar() && (l.vec != nil || r.vec != nil) {
			return e.vecParallelBudgetedSource(l, r, true), nil
		}
		src.it = e.parallelUnionIter(l, r)
		return src, nil
	}
	if !e.opts.NoMerge {
		if spec, ok := physical.AlignedTotalOrder(l.order, r.order, l.schema); ok {
			e.stats.MergeOps++
			if e.columnar() && r.vec != nil {
				e.stats.VectorOps++
				m := &vecMergeUnionIter{e: e, left: l, right: r.vec,
					cmp: compileVecCmp(l.schema, spec)}
				return vecSource(m, l.schema, nil), nil
			}
			src.it = &mergeUnionIter{left: l, right: r.it, schema: l.schema, spec: spec}
			return src, nil
		}
	}
	src.it = &unionIter{left: l, right: r.it, groups: newHashGroups(nil, 0)}
	return src, nil
}

// buildAggregate compiles 𝒢. Over an input whose delivered order keeps
// grouping columns contiguous, the operator runs group-at-a-time: each
// group's accumulators fold as its tuples arrive and the group's result
// tuple is emitted the moment the group ends — a true pipeline with
// bounded state. Otherwise the input streams into per-group accumulators
// held in a first-occurrence-ordered hash table and one tuple per group is
// emitted once the input is exhausted; the group orders coincide because
// contiguous groups appear in first-occurrence order.
func (e *Engine) buildAggregate(n *algebra.Aggregate) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	gidx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		gidx[i] = in.schema.Index(g)
	}
	order := eval.OrderAfterGroup(in.order, n.GroupBy)
	emit := func(group []relation.Tuple) ([]relation.Tuple, error) {
		accs := eval.NewAccumulators(n.Aggs, in.schema)
		for _, t := range group {
			if err := eval.FoldAggregates(accs, n.Aggs, in.schema, t); err != nil {
				return nil, err
			}
		}
		nt := make(relation.Tuple, 0, outSchema.Len())
		for _, gi := range gidx {
			nt = append(nt, group[0][gi])
		}
		for _, acc := range accs {
			nt = append(nt, acc.Result())
		}
		return []relation.Tuple{nt}, nil
	}
	if e.parallel() && !e.budgeted() && len(gidx) > 0 {
		return e.parallelGroupAggSource(in, gidx, outSchema, order, emit), nil
	}
	if len(gidx) > 0 && !e.opts.NoMerge && physical.GroupsContiguous(in.order, in.schema, gidx) {
		// Group-at-a-time streaming holds one group of state — bounded, so
		// the budgeted engine prefers it over partitioning.
		e.stats.MergeOps++
		return &source{
			it:     &groupIter{in: in.it, idx: gidx, emit: emit},
			schema: outSchema,
			order:  order,
		}, nil
	}
	if e.budgeted() && len(gidx) > 0 {
		// Grace aggregation: partition rows by the grouping columns, one
		// group's rows land whole in one partition. A GROUP-BY-less
		// aggregate folds one global set of accumulators below — state
		// bounded by construction, nothing to spill.
		return e.graceGroupSource(in, gidx, outSchema, order, func(part []prow) ([]tagged, error) {
			return groupAggPartition(part, gidx, emit)
		}), nil
	}
	if e.columnar() && in.vec != nil {
		return e.vecAggregateSource(in, gidx, outSchema, order, n.Aggs), nil
	}
	return lazySource(outSchema, order, func() ([]relation.Tuple, error) {
		groups := newHashGroups(gidx, 0)
		var accs [][]*expr.Accumulator
		for {
			t, err := in.it.next()
			if err != nil {
				return nil, err
			}
			if t == nil {
				break
			}
			gid, fresh := groups.groupOf(t)
			if fresh {
				accs = append(accs, eval.NewAccumulators(n.Aggs, in.schema))
			}
			if err := eval.FoldAggregates(accs[gid], n.Aggs, in.schema, t); err != nil {
				return nil, err
			}
		}
		if err := in.it.close(); err != nil {
			return nil, err
		}
		out := make([]relation.Tuple, 0, groups.size())
		for gid := 0; gid < groups.size(); gid++ {
			nt := make(relation.Tuple, 0, outSchema.Len())
			rep := groups.reps[gid]
			for _, gi := range gidx {
				nt = append(nt, rep[gi])
			}
			for _, acc := range accs[gid] {
				nt = append(nt, acc.Result())
			}
			out = append(out, nt)
		}
		return out, nil
	}), nil
}
