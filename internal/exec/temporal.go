package exec

import (
	"sort"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/period"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/value"
)

// row is one tuple of a value-equivalence group during temporal grouping,
// tagged with its original list position so fragments re-interleave into the
// reference's output order.
type row struct {
	orig int
	t    relation.Tuple
	p    period.Period
}

// groupRowsOf partitions a temporal relation's tuples into value-equivalence
// groups of position-tagged rows, exploiting a contiguity-proving OrderSpec
// to skip the hash table.
func groupRowsOf(r *relation.Relation) [][]row {
	vidx := valueIdx(r.Schema())
	contiguous := groupsContiguous(r.Order(), r.Schema(), vidx)
	idxGroups := groupRows(r.Tuples(), vidx, contiguous)
	t1, t2 := r.Schema().TimeIndices()
	out := make([][]row, len(idxGroups))
	for g, members := range idxGroups {
		rows := make([]row, len(members))
		for x, i := range members {
			rows[x] = row{orig: i, t: r.At(i), p: r.At(i).PeriodAt(t1, t2)}
		}
		out[g] = rows
	}
	return out
}

// mergeByOrig re-interleaves per-group result rows into original list order.
// Each original position belongs to exactly one group and every group is
// already ascending on orig, so a stable sort restores the global order with
// fragments kept in their in-place sequence.
func mergeByOrig(groups [][]row) []relation.Tuple {
	n := 0
	for _, g := range groups {
		n += len(g)
	}
	all := make([]row, 0, n)
	for _, g := range groups {
		all = append(all, g...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].orig < all[j].orig })
	out := make([]relation.Tuple, len(all))
	for i, rw := range all {
		out[i] = rw.t
	}
	return out
}

// rdupTGroup runs the paper's iterative head/subtract algorithm on one
// value-equivalence group, in place of the group's list order. A group
// whose periods arrive sorted and non-overlapping is recognized in a linear
// pre-scan and returned outright.
func rdupTGroup(rows []row, t1, t2 int) []row {
	if sortedDisjoint(rows) {
		return rows // no overlaps exist: nothing to eliminate
	}
	for i := 0; i < len(rows); i++ {
		head := rows[i]
		for {
			j := -1
			for x := i + 1; x < len(rows); x++ {
				if rows[x].p.Overlaps(head.p) {
					j = x
					break
				}
			}
			if j < 0 {
				break
			}
			frags := rows[j].p.Subtract(head.p)
			repl := make([]row, 0, 2)
			for _, f := range frags {
				repl = append(repl, row{orig: rows[j].orig, t: rows[j].t.WithPeriodAt(t1, t2, f), p: f})
			}
			rows = append(rows[:j], append(repl, rows[j+1:]...)...)
		}
	}
	return rows
}

// groupEmitter adapts a group-local row transform into a groupIter emit
// function for the streaming contiguous-groups path.
func groupEmitter(t1, t2 int, transform func([]row, int, int) []row) func([]relation.Tuple) ([]relation.Tuple, error) {
	return func(group []relation.Tuple) ([]relation.Tuple, error) {
		rows := make([]row, len(group))
		for i, t := range group {
			rows[i] = row{orig: i, t: t, p: t.PeriodAt(t1, t2)}
		}
		rows = transform(rows, t1, t2)
		out := make([]relation.Tuple, len(rows))
		for i, rw := range rows {
			out[i] = rw.t
		}
		return out, nil
	}
}

// buildTRdup compiles rdupᵀ: partition by value-equivalence, then run the
// paper's iterative head/subtract algorithm group-locally. Rows of
// different groups never interact and in-place replacement preserves their
// relative order, so the group-local runs compose into exactly the
// reference's global result at O(Σ g²) instead of O(n²). An input whose
// delivered order keeps value groups contiguous streams group-at-a-time
// with no hash table and no global materialization; otherwise the input is
// materialized and hash-partitioned.
func (e *Engine) buildTRdup(n algebra.Node) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	if _, err := n.Schema(); err != nil {
		return nil, err
	}
	order := in.order.TimeFreePrefix()
	t1, t2 := in.schema.TimeIndices()
	vidx := physical.ValueIdx(in.schema)
	if e.parallel() && !e.budgeted() {
		return e.parallelValueGroupSource(in, vidx, order, rdupTGroup), nil
	}
	if !e.opts.NoMerge && physical.GroupsContiguous(in.order, in.schema, vidx) {
		e.stats.MergeOps++
		emit := groupEmitter(t1, t2, func(rows []row, t1, t2 int) []row { return rdupTGroup(rows, t1, t2) })
		return &source{it: &groupIter{in: in.it, idx: vidx, emit: emit}, schema: in.schema, order: order}, nil
	}
	if e.budgeted() {
		return e.graceGroupSource(in, vidx, in.schema, order, func(part []prow) ([]tagged, error) {
			return valueGroupPartition(part, vidx, t1, t2, rdupTGroup), nil
		}), nil
	}
	if e.columnar() && in.vec != nil {
		return e.vecValueGroupSource(in, vidx, order, rdupTSpans), nil
	}
	return lazySource(in.schema, order, func() ([]relation.Tuple, error) {
		r, err := drain(in)
		if err != nil {
			return nil, err
		}
		groups := groupRowsOf(r)
		for g, rows := range groups {
			groups[g] = rdupTGroup(rows, t1, t2)
		}
		return mergeByOrig(groups), nil
	}), nil
}

// sortedDisjoint reports that a group's periods are non-empty, sorted by
// start, and pairwise non-overlapping — the shape left behind by a prior
// rdupᵀ or a sort, under which overlap-driven work is provably absent.
func sortedDisjoint(rows []row) bool {
	for i, rw := range rows {
		if rw.p.Empty() {
			return false
		}
		if i > 0 && rw.p.Start < rows[i-1].p.End {
			return false
		}
	}
	return true
}

// coalTGroup coalesces one value-equivalence group. A group whose periods
// are sorted and non-overlapping merges in one pass; otherwise the
// reference's iterative merge runs group-locally.
func coalTGroup(rows []row, t1, t2 int) []row {
	if sortedDisjoint(rows) {
		return coalesceOnePass(rows, t1, t2)
	}
	for i := 0; i < len(rows); {
		merged := false
		for j := i + 1; j < len(rows); j++ {
			if !rows[i].p.Adjacent(rows[j].p) {
				continue
			}
			u, _ := rows[i].p.Union(rows[j].p)
			rows[i].p = u
			rows[i].t = rows[i].t.WithPeriodAt(t1, t2, u)
			rows = append(rows[:j], rows[j+1:]...)
			merged = true
			break
		}
		if !merged {
			i++
		}
	}
	return rows
}

// buildCoal compiles coalᵀ: group-local adjacency merging (the engine never
// sorts first — coalescing is not confluent under reordering, so that would
// change the result multiset, not just its order). An input whose delivered
// order keeps value groups contiguous streams group-at-a-time; otherwise
// the input is materialized and hash-partitioned.
func (e *Engine) buildCoal(n algebra.Node) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	if _, err := n.Schema(); err != nil {
		return nil, err
	}
	order := in.order.TimeFreePrefix()
	t1, t2 := in.schema.TimeIndices()
	vidx := physical.ValueIdx(in.schema)
	if e.parallel() && !e.budgeted() {
		return e.parallelValueGroupSource(in, vidx, order, coalTGroup), nil
	}
	if !e.opts.NoMerge && physical.GroupsContiguous(in.order, in.schema, vidx) {
		e.stats.MergeOps++
		emit := groupEmitter(t1, t2, coalTGroup)
		return &source{it: &groupIter{in: in.it, idx: vidx, emit: emit}, schema: in.schema, order: order}, nil
	}
	if e.budgeted() {
		return e.graceGroupSource(in, vidx, in.schema, order, func(part []prow) ([]tagged, error) {
			return valueGroupPartition(part, vidx, t1, t2, coalTGroup), nil
		}), nil
	}
	if e.columnar() && in.vec != nil {
		return e.vecValueGroupSource(in, vidx, order, coalTSpans), nil
	}
	return lazySource(in.schema, order, func() ([]relation.Tuple, error) {
		r, err := drain(in)
		if err != nil {
			return nil, err
		}
		groups := groupRowsOf(r)
		for g, rows := range groups {
			groups[g] = coalTGroup(rows, t1, t2)
		}
		return mergeByOrig(groups), nil
	}), nil
}

// coalesceOnePass merges a sorted, non-overlapping group in a single sweep.
// Under sortedDisjoint the first later adjacent row is always the immediate
// successor and merging preserves the invariant, so this reproduces the
// iterative algorithm exactly.
func coalesceOnePass(rows []row, t1, t2 int) []row {
	if len(rows) == 0 {
		return rows
	}
	out := rows[:0:0]
	cur := rows[0]
	dirty := false
	for _, rw := range rows[1:] {
		if cur.p.End == rw.p.Start {
			cur.p.End = rw.p.End
			dirty = true
			continue
		}
		if dirty {
			cur.t = cur.t.WithPeriodAt(t1, t2, cur.p)
		}
		out = append(out, cur)
		cur = rw
		dirty = false
	}
	if dirty {
		cur.t = cur.t.WithPeriodAt(t1, t2, cur.p)
	}
	return append(out, cur)
}

// buildTDiff compiles the temporal difference \ᵀ with exact per-snapshot
// semantics: both sides hash-partition by value equivalence, each left
// group's timeline decomposes into elementary intervals where the matching
// right group's multiplicity forms a budget, and surviving fragments of each
// left tuple re-emit in left list order — the reference's algorithm with
// tuple hashes in place of string keys.
func (e *Engine) buildTDiff(n algebra.Node) (*source, error) {
	l, r, err := e.buildBoth(n)
	if err != nil {
		return nil, err
	}
	if _, err := n.Schema(); err != nil {
		return nil, err
	}
	order := l.order.TimeFreePrefix()
	if e.budgeted() {
		return e.graceTDiffSource(l, r, order), nil
	}
	if e.parallel() {
		return e.parallelTDiffSource(l, r, order), nil
	}
	return lazySource(l.schema, order, func() ([]relation.Tuple, error) {
		lr, err := drain(l)
		if err != nil {
			return nil, err
		}
		rr, err := drain(r)
		if err != nil {
			return nil, err
		}
		t1, t2 := lr.Schema().TimeIndices()
		vidx := valueIdx(lr.Schema())

		// One shared id space over both sides' value-equivalence keys.
		groups := newHashGroups(vidx, lr.Len()+rr.Len())
		var leftMembers, rightMembers [][]int
		grow := func(fresh bool) {
			if fresh {
				leftMembers = append(leftMembers, nil)
				rightMembers = append(rightMembers, nil)
			}
		}
		for i, t := range lr.Tuples() {
			gid, fresh := groups.groupOf(t)
			grow(fresh)
			leftMembers[gid] = append(leftMembers[gid], i)
		}
		for j, t := range rr.Tuples() {
			gid, fresh := groups.groupOf(t)
			grow(fresh)
			rightMembers[gid] = append(rightMembers[gid], j)
		}

		frag := make([][]period.Period, lr.Len())
		for gid, leftIdx := range leftMembers {
			if len(leftIdx) == 0 {
				continue
			}
			lps := make([]period.Period, len(leftIdx))
			for k, i := range leftIdx {
				lps[k] = lr.PeriodOf(i)
			}
			rps := make([]period.Period, len(rightMembers[gid]))
			for k, j := range rightMembers[gid] {
				rps[k] = rr.PeriodOf(j)
			}
			for k, fs := range tdiffGroupFragments(lps, rps) {
				frag[leftIdx[k]] = fs
			}
		}

		var out []relation.Tuple
		for i, t := range lr.Tuples() {
			for _, p := range frag[i] {
				out = append(out, t.WithPeriodAt(t1, t2, p))
			}
		}
		return out, nil
	}), nil
}

// buildTUnion compiles the temporal union ∪ᵀ: all of the left list followed
// by, per right value group in first-occurrence order, the maximal periods
// over which the right multiplicity exceeds the left's, layer by layer.
func (e *Engine) buildTUnion(n algebra.Node) (*source, error) {
	l, r, err := e.buildBoth(n)
	if err != nil {
		return nil, err
	}
	if _, err := n.Schema(); err != nil {
		return nil, err
	}
	if e.budgeted() {
		return e.graceTUnionSource(l, r), nil
	}
	if e.parallel() {
		return e.parallelTUnionSource(l, r), nil
	}
	return lazySource(l.schema, nil, func() ([]relation.Tuple, error) {
		lr, err := drain(l)
		if err != nil {
			return nil, err
		}
		rr, err := drain(r)
		if err != nil {
			return nil, err
		}
		t1, t2 := lr.Schema().TimeIndices()
		vidx := valueIdx(lr.Schema())

		groups := newHashGroups(vidx, lr.Len()+rr.Len())
		var leftMembers, rightMembers [][]int
		grow := func(fresh bool) {
			if fresh {
				leftMembers = append(leftMembers, nil)
				rightMembers = append(rightMembers, nil)
			}
		}
		for i, t := range lr.Tuples() {
			gid, fresh := groups.groupOf(t)
			grow(fresh)
			leftMembers[gid] = append(leftMembers[gid], i)
		}
		var rOrder []int // right groups in first right occurrence order
		for j, t := range rr.Tuples() {
			gid, fresh := groups.groupOf(t)
			grow(fresh)
			if len(rightMembers[gid]) == 0 {
				rOrder = append(rOrder, gid)
			}
			rightMembers[gid] = append(rightMembers[gid], j)
		}

		out := make([]relation.Tuple, 0, lr.Len())
		out = append(out, lr.Tuples()...)
		for _, gid := range rOrder {
			lps := make([]period.Period, len(leftMembers[gid]))
			for k, i := range leftMembers[gid] {
				lps[k] = lr.PeriodOf(i)
			}
			rps := make([]period.Period, len(rightMembers[gid]))
			for k, j := range rightMembers[gid] {
				rps[k] = rr.PeriodOf(j)
			}
			rep := rr.At(rightMembers[gid][0])
			for _, p := range tunionExtraPeriods(lps, rps) {
				out = append(out, rep.WithPeriodAt(t1, t2, p))
			}
		}
		return out, nil
	}), nil
}

// tdiffGroupFragments runs the temporal difference on one value-equivalence
// group: the group's timeline decomposes into elementary intervals, each
// non-empty right period contributes one unit of budget to the intervals it
// covers, and each left period — in list order, the earliest occurrences
// absorbing the subtraction — either consumes budget or keeps the interval,
// adjacent kept intervals fusing into maximal fragments. The result aligns
// positionally with lps; empty left periods yield no fragments.
func tdiffGroupFragments(lps, rps []period.Period) [][]period.Period {
	var rightPeriods []period.Period
	for _, p := range rps {
		if !p.Empty() {
			rightPeriods = append(rightPeriods, p)
		}
	}
	all := make([]period.Period, 0, len(lps)+len(rightPeriods))
	all = append(all, lps...)
	all = append(all, rightPeriods...)
	ivs := period.ElementaryIntervals(all)
	budget := make([]int, len(ivs))
	for x, iv := range ivs {
		for _, rp := range rightPeriods {
			if rp.ContainsPeriod(iv) {
				budget[x]++
			}
		}
	}
	frag := make([][]period.Period, len(lps))
	for k, lp := range lps {
		if lp.Empty() {
			continue
		}
		var cur period.Period
		for x, iv := range ivs {
			if !lp.ContainsPeriod(iv) || iv.Empty() {
				continue
			}
			if budget[x] > 0 {
				budget[x]--
				if !cur.Empty() {
					frag[k] = append(frag[k], cur)
					cur = period.Period{}
				}
				continue
			}
			if !cur.Empty() && cur.End == iv.Start {
				cur.End = iv.End
			} else {
				if !cur.Empty() {
					frag[k] = append(frag[k], cur)
				}
				cur = iv
			}
		}
		if !cur.Empty() {
			frag[k] = append(frag[k], cur)
		}
	}
	return frag
}

// tunionExtraPeriods computes one value-equivalence group's contribution
// beyond the left list under ∪ᵀ: for each excess layer 1..max, the maximal
// periods over which the right multiplicity exceeds the left's by at least
// that layer, in layer-then-timeline emission order. Empty periods on
// either side are ignored.
func tunionExtraPeriods(lpsIn, rpsIn []period.Period) []period.Period {
	var rps, lps []period.Period
	for _, p := range rpsIn {
		if !p.Empty() {
			rps = append(rps, p)
		}
	}
	for _, p := range lpsIn {
		if !p.Empty() {
			lps = append(lps, p)
		}
	}
	all := append(append([]period.Period{}, rps...), lps...)
	ivs := period.ElementaryIntervals(all)
	extra := make([]int, len(ivs))
	maxExtra := 0
	for x, iv := range ivs {
		c1, c2 := 0, 0
		for _, p := range lps {
			if p.ContainsPeriod(iv) {
				c1++
			}
		}
		for _, p := range rps {
			if p.ContainsPeriod(iv) {
				c2++
			}
		}
		if c2 > c1 {
			extra[x] = c2 - c1
			if extra[x] > maxExtra {
				maxExtra = extra[x]
			}
		}
	}
	var out []period.Period
	for layer := 1; layer <= maxExtra; layer++ {
		var cur period.Period
		flush := func() {
			if !cur.Empty() {
				out = append(out, cur)
				cur = period.Period{}
			}
		}
		for x, iv := range ivs {
			if extra[x] < layer {
				flush()
				continue
			}
			if !cur.Empty() && cur.End == iv.Start {
				cur.End = iv.End
			} else {
				flush()
				cur = iv
			}
		}
		flush()
	}
	return out
}

// buildTAggregate compiles 𝒢ᵀ: grouping in first-occurrence order, then
// per group one result tuple per elementary interval with live tuples,
// exactly the reference's constant-interval evaluation. An input whose
// delivered order keeps grouping columns contiguous streams group-at-a-time
// (each group's constant intervals are computed and emitted the moment the
// group ends); otherwise the input materializes and hash-partitions.
func (e *Engine) buildTAggregate(n *algebra.Aggregate) (*source, error) {
	in, err := e.build(n.Children()[0])
	if err != nil {
		return nil, err
	}
	outSchema, err := n.Schema()
	if err != nil {
		return nil, err
	}
	gidx := make([]int, len(n.GroupBy))
	for i, g := range n.GroupBy {
		gidx[i] = in.schema.Index(g)
	}
	order := eval.OrderAfterGroup(in.order, n.GroupBy)
	t1, t2 := in.schema.TimeIndices()
	groupOut := func(group []relation.Tuple) ([]relation.Tuple, error) {
		ps := make([]period.Period, len(group))
		for x, t := range group {
			ps[x] = t.PeriodAt(t1, t2)
		}
		var out []relation.Tuple
		for _, iv := range period.ElementaryIntervals(ps) {
			accs := eval.NewAccumulators(n.Aggs, in.schema)
			live := 0
			for x, t := range group {
				if !ps[x].ContainsPeriod(iv) {
					continue
				}
				live++
				if err := eval.FoldAggregates(accs, n.Aggs, in.schema, t); err != nil {
					return nil, err
				}
			}
			if live == 0 {
				continue
			}
			nt := make(relation.Tuple, 0, outSchema.Len())
			for _, gi := range gidx {
				nt = append(nt, group[0][gi])
			}
			for _, acc := range accs {
				nt = append(nt, acc.Result())
			}
			nt = append(nt, value.Time(iv.Start), value.Time(iv.End))
			out = append(out, nt)
		}
		return out, nil
	}
	if e.parallel() && !e.budgeted() && len(gidx) > 0 {
		return e.parallelGroupAggSource(in, gidx, outSchema, order, groupOut), nil
	}
	if !e.opts.NoMerge && physical.GroupsContiguous(in.order, in.schema, gidx) {
		e.stats.MergeOps++
		return &source{
			it:     &groupIter{in: in.it, idx: gidx, emit: groupOut},
			schema: outSchema,
			order:  order,
		}, nil
	}
	if e.budgeted() && len(gidx) > 0 {
		// A GROUP-BY-less 𝒢ᵀ is one global group whose constant intervals
		// need every row at once — nothing to partition on; it stays on the
		// materializing path below (documented bound exemption).
		return e.graceGroupSource(in, gidx, outSchema, order, func(part []prow) ([]tagged, error) {
			return groupAggPartition(part, gidx, groupOut)
		}), nil
	}
	if e.columnar() && in.vec != nil {
		return e.vecGroupEmitSource(in, gidx, outSchema, order, groupOut), nil
	}
	return lazySource(outSchema, order, func() ([]relation.Tuple, error) {
		r, err := drain(in)
		if err != nil {
			return nil, err
		}
		contiguous := groupsContiguous(r.Order(), r.Schema(), gidx)
		groups := groupRows(r.Tuples(), gidx, contiguous)
		var out []relation.Tuple
		for _, members := range groups {
			group := make([]relation.Tuple, len(members))
			for x, i := range members {
				group[x] = r.At(i)
			}
			res, err := groupOut(group)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
		return out, nil
	}), nil
}
