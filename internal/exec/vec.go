package exec

import (
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// vecBatchRows is the row capacity the columnar operators target per batch:
// large enough to amortize per-batch bookkeeping, small enough that a
// pipeline's working batches stay cache-resident. Scans are the exception —
// a base relation converts once and travels as a single batch, so its
// columns are never re-sliced or copied.
const vecBatchRows = 1024

// colvec is one column of a batch: per-kind typed storage over value.Value
// kinds. A column created for a schema attribute stores its payloads
// unboxed — int, bool and time share the int64 plane exactly as
// value.Value does internally, floats and strings get their own — and
// reconstructs a value.Value only at materialization boundaries. A column
// that ever receives a value of a foreign kind demotes itself to the boxed
// fallback (vals), so kind-mixed columns remain correct, merely slower;
// schema-checked pipelines never take that path.
type colvec struct {
	kind   value.Kind // homogeneous storage kind; KindInvalid = boxed fallback
	ints   []int64    // int, bool (0/1), time (chronon)
	floats []float64
	strs   []string
	vals   []value.Value // boxed fallback, used iff kind == KindInvalid
}

// newColvec returns an empty column for kind k with room for capHint values.
func newColvec(k value.Kind, capHint int) colvec {
	c := colvec{kind: k}
	switch k {
	case value.KindInt, value.KindBool, value.KindTime:
		c.ints = make([]int64, 0, capHint)
	case value.KindFloat:
		c.floats = make([]float64, 0, capHint)
	case value.KindString:
		c.strs = make([]string, 0, capHint)
	default:
		c.kind = value.KindInvalid
		c.vals = make([]value.Value, 0, capHint)
	}
	return c
}

// length returns the number of values stored.
func (c *colvec) length() int {
	switch c.kind {
	case value.KindInt, value.KindBool, value.KindTime:
		return len(c.ints)
	case value.KindFloat:
		return len(c.floats)
	case value.KindString:
		return len(c.strs)
	default:
		return len(c.vals)
	}
}

// at reconstructs the value at index i. The result is a plain struct — no
// allocation — and Equal/Compare/HashInto on it agree bit-for-bit with the
// tuple the column was filled from.
func (c *colvec) at(i int) value.Value {
	switch c.kind {
	case value.KindInt:
		return value.Int(c.ints[i])
	case value.KindBool:
		return value.Bool(c.ints[i] != 0)
	case value.KindTime:
		return value.Time(period.Chronon(c.ints[i]))
	case value.KindFloat:
		return value.Float(c.floats[i])
	case value.KindString:
		return value.String_(c.strs[i])
	default:
		return c.vals[i]
	}
}

// demote converts the column to boxed storage; the escape hatch for
// kind-mixed appends.
func (c *colvec) demote() {
	n := c.length()
	vals := make([]value.Value, n, n+1)
	for i := 0; i < n; i++ {
		vals[i] = c.at(i)
	}
	c.kind = value.KindInvalid
	c.ints, c.floats, c.strs = nil, nil, nil
	c.vals = vals
}

// append adds v, demoting to boxed storage when v's kind does not match.
func (c *colvec) append(v value.Value) {
	if c.kind != v.Kind() && c.kind != value.KindInvalid {
		c.demote()
	}
	switch c.kind {
	case value.KindInt:
		c.ints = append(c.ints, v.AsInt())
	case value.KindBool:
		if v.AsBool() {
			c.ints = append(c.ints, 1)
		} else {
			c.ints = append(c.ints, 0)
		}
	case value.KindTime:
		c.ints = append(c.ints, int64(v.AsTime()))
	case value.KindFloat:
		c.floats = append(c.floats, v.AsFloat())
	case value.KindString:
		c.strs = append(c.strs, v.AsString())
	default:
		c.vals = append(c.vals, v)
	}
}

// appendFrom copies o's value at i, staying on the typed plane when the
// storage kinds match.
func (c *colvec) appendFrom(o *colvec, i int) {
	if c.kind == o.kind {
		switch c.kind {
		case value.KindInt, value.KindBool, value.KindTime:
			c.ints = append(c.ints, o.ints[i])
			return
		case value.KindFloat:
			c.floats = append(c.floats, o.floats[i])
			return
		case value.KindString:
			c.strs = append(c.strs, o.strs[i])
			return
		}
	}
	c.append(o.at(i))
}

// appendRange bulk-copies o's values [lo,hi), staying typed when possible.
func (c *colvec) appendRange(o *colvec, lo, hi int) {
	if c.kind == o.kind {
		switch c.kind {
		case value.KindInt, value.KindBool, value.KindTime:
			c.ints = append(c.ints, o.ints[lo:hi]...)
			return
		case value.KindFloat:
			c.floats = append(c.floats, o.floats[lo:hi]...)
			return
		case value.KindString:
			c.strs = append(c.strs, o.strs[lo:hi]...)
			return
		}
	}
	for i := lo; i < hi; i++ {
		c.append(o.at(i))
	}
}

// hashInto folds the value at i into a running hash, producing exactly the
// bits value.Value.HashInto produces for the equal tuple value. Typed
// planes feed the value package's typed kernels directly, so hashing a
// group key or a join key never boxes a Value.
func (c *colvec) hashInto(i int, h uint64) uint64 {
	switch c.kind {
	case value.KindInt:
		return value.HashIntInto(h, c.ints[i])
	case value.KindBool:
		return value.HashBoolInto(h, c.ints[i] != 0)
	case value.KindTime:
		return value.HashTimeInto(h, c.ints[i])
	case value.KindFloat:
		return value.HashFloatInto(h, c.floats[i])
	case value.KindString:
		return value.HashStringInto(h, c.strs[i])
	default:
		return c.vals[i].HashInto(h)
	}
}

// equalAt reports value equality between c[i] and o[j] under the canonical
// Compare order, with typed fast paths for the exact-match kinds. Floats go
// through the generic path so NaN and cross-kind numeric equality keep the
// canonical semantics.
func (c *colvec) equalAt(i int, o *colvec, j int) bool {
	if c.kind == o.kind {
		switch c.kind {
		case value.KindInt, value.KindBool, value.KindTime:
			return c.ints[i] == o.ints[j]
		case value.KindString:
			return c.strs[i] == o.strs[j]
		}
	}
	return c.at(i).Equal(o.at(j))
}

// batch is a columnar slice of a tuple stream: one colvec per schema
// attribute, n physical rows, and an optional selection vector. With sel
// non-nil the batch presents rows sel[0..len(sel)) in that order; filters
// emit selections instead of compacting, and the consumer compacts (or
// gathers) only when it materializes. Batches flowing between operators are
// immutable — a filter wraps its input in a new batch struct sharing the
// columns, never mutating them.
type batch struct {
	schema *schema.Schema
	cols   []colvec
	n      int   // physical rows in the columns
	sel    []int // selected physical row indices, nil = all rows
}

// newBatch returns an empty batch for s with per-column room for capHint.
func newBatch(s *schema.Schema, capHint int) *batch {
	b := &batch{schema: s, cols: make([]colvec, s.Len())}
	for i := range b.cols {
		b.cols[i] = newColvec(s.At(i).Kind, capHint)
	}
	return b
}

// rows returns the presented row count (the selection's, when one is set).
func (b *batch) rows() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.n
}

// rowIndex maps a presented position to its physical row index.
func (b *batch) rowIndex(k int) int {
	if b.sel != nil {
		return b.sel[k]
	}
	return k
}

// tupleAt materializes the physical row i as a tuple.
func (b *batch) tupleAt(i int) relation.Tuple {
	t := make(relation.Tuple, len(b.cols))
	for c := range b.cols {
		t[c] = b.cols[c].at(i)
	}
	return t
}

// fillTuple writes the physical row i into a caller-owned scratch tuple.
func (b *batch) fillTuple(t relation.Tuple, i int) {
	for c := range b.cols {
		t[c] = b.cols[c].at(i)
	}
}

// appendTuple appends t as a new physical row.
func (b *batch) appendTuple(t relation.Tuple) {
	for c := range b.cols {
		b.cols[c].append(t[c])
	}
	b.n++
}

// appendRow appends src's physical row i as a new physical row.
func (b *batch) appendRow(src *batch, i int) {
	for c := range b.cols {
		b.cols[c].appendFrom(&src.cols[c], i)
	}
	b.n++
}

// periodAt reads the period at time positions t1/t2 of physical row i.
func (b *batch) periodAt(t1, t2, i int) period.Period {
	c1, c2 := &b.cols[t1], &b.cols[t2]
	if c1.kind == value.KindTime && c2.kind == value.KindTime {
		return period.Period{Start: period.Chronon(c1.ints[i]), End: period.Chronon(c2.ints[i])}
	}
	return period.Period{Start: c1.at(i).AsTime(), End: c2.at(i).AsTime()}
}

// compact resolves the selection vector into dense columns. A batch with no
// selection is returned as-is.
func (b *batch) compact() *batch {
	if b.sel == nil {
		return b
	}
	out := newBatch(b.schema, len(b.sel))
	for c := range out.cols {
		for _, i := range b.sel {
			out.cols[c].appendFrom(&b.cols[c], i)
		}
	}
	out.n = len(b.sel)
	return out
}

// withSel returns a view of b presenting exactly the physical rows in sel,
// sharing b's columns.
func (b *batch) withSel(sel []int) *batch {
	nb := *b
	nb.sel = sel
	return &nb
}

// slice returns a capacity-capped view of the values [lo,hi): shared
// storage, zero copies, and any append on the view reallocates instead of
// clobbering the parent plane.
func (c *colvec) slice(lo, hi int) colvec {
	s := colvec{kind: c.kind}
	switch c.kind {
	case value.KindInt, value.KindBool, value.KindTime:
		s.ints = c.ints[lo:hi:hi]
	case value.KindFloat:
		s.floats = c.floats[lo:hi:hi]
	case value.KindString:
		s.strs = c.strs[lo:hi:hi]
	default:
		s.vals = c.vals[lo:hi:hi]
	}
	return s
}

// rangeView returns a zero-copy view of b's presented rows [lo,hi). An
// unselected batch subslices its column planes — an offset view over the
// shared storage with no selection indirection on later scans; a selected
// batch subslices the selection instead.
func (b *batch) rangeView(lo, hi int) *batch {
	if b.sel != nil {
		return b.withSel(b.sel[lo:hi])
	}
	nb := &batch{schema: b.schema, cols: make([]colvec, len(b.cols)), n: hi - lo}
	for c := range b.cols {
		nb.cols[c] = b.cols[c].slice(lo, hi)
	}
	return nb
}

// batchOfTuples converts a tuple list to one batch.
func batchOfTuples(s *schema.Schema, ts []relation.Tuple) *batch {
	b := newBatch(s, len(ts))
	for c := range b.cols {
		col := &b.cols[c]
		for _, t := range ts {
			col.append(t[c])
		}
	}
	b.n = len(ts)
	return b
}

// vecIterator is the pull interface of the columnar pipeline. nextBatch
// returns (nil, nil) when the stream is exhausted; emitted batches are
// immutable and may be views sharing column storage with earlier batches.
type vecIterator interface {
	nextBatch() (*batch, error)
	close() error
}

// batchTupleIter adapts a columnar stage for a tuple-at-a-time parent — the
// downstream half of the batch↔tuple adapter boundary.
type batchTupleIter struct {
	in  vecIterator
	cur *batch
	k   int
}

func (a *batchTupleIter) next() (relation.Tuple, error) {
	for {
		if a.cur != nil && a.k < a.cur.rows() {
			i := a.cur.rowIndex(a.k)
			a.k++
			return a.cur.tupleAt(i), nil
		}
		b, err := a.in.nextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		a.cur, a.k = b, 0
	}
}

func (a *batchTupleIter) close() error { return a.in.close() }

// tupleBatchIter adapts a tuple stage for a columnar parent — the upstream
// half of the adapter boundary. Tuples are packed into fresh batches of
// vecBatchRows.
type tupleBatchIter struct {
	in     iterator
	schema *schema.Schema
	done   bool
}

func (a *tupleBatchIter) nextBatch() (*batch, error) {
	if a.done {
		return nil, nil
	}
	b := newBatch(a.schema, vecBatchRows)
	for b.n < vecBatchRows {
		t, err := a.in.next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			a.done = true
			break
		}
		b.appendTuple(t)
	}
	if b.n == 0 {
		return nil, nil
	}
	return b, nil
}

func (a *tupleBatchIter) close() error { return a.in.close() }

// vecInput returns s's columnar view: the stage's own batch stream when it
// compiled columnar, otherwise its tuple iterator behind an adapter.
func (s *source) vecInput() vecIterator {
	if s.vec != nil {
		return s.vec
	}
	return &tupleBatchIter{in: s.it, schema: s.schema}
}

// vecSource wraps a columnar iterator as a pipeline stage. The tuple view
// (source.it) is the adapter, so a tuple-at-a-time parent can consume the
// stage without knowing it is columnar; exactly one of the two views is
// ever pulled.
func vecSource(v vecIterator, sch *schema.Schema, order relation.OrderSpec) *source {
	return &source{it: &batchTupleIter{in: v}, vec: v, schema: sch, order: order}
}

// vecDrainOne drains a columnar stream into a single compacted batch (the
// build/materialization points: hash-join build sides, value-group and
// grouping inputs). A stream of exactly one unselected batch is returned
// as-is, copy-free.
func vecDrainOne(v vecIterator, sch *schema.Schema) (*batch, error) {
	b, err := vecDrainOneView(v, sch)
	if err != nil {
		return nil, err
	}
	return b.compact(), nil
}

// vecDrainOneView drains v into a single batch like vecDrainOne but keeps
// a lone selected batch as its selection view instead of compacting it —
// for consumers that split or scan presented rows and never index the
// physical planes directly.
func vecDrainOneView(v vecIterator, sch *schema.Schema) (*batch, error) {
	var parts []*batch
	total := 0
	for {
		b, err := v.nextBatch()
		if err != nil {
			v.close()
			return nil, err
		}
		if b == nil {
			break
		}
		parts = append(parts, b)
		total += b.rows()
	}
	if err := v.close(); err != nil {
		return nil, err
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	out := newBatch(sch, total)
	for c := range out.cols {
		col := &out.cols[c]
		for _, p := range parts {
			src := &p.cols[c]
			if p.sel == nil {
				col.appendRange(src, 0, p.n)
				continue
			}
			for _, i := range p.sel {
				col.appendFrom(src, i)
			}
		}
	}
	out.n = total
	return out, nil
}

// tupleBatches packs a materialized tuple list into vecBatchRows-sized
// batches — the re-batching step when a grace overflow path hands its
// gathered tuples back to a columnar parent.
func tupleBatches(sch *schema.Schema, ts []relation.Tuple) []*batch {
	var out []*batch
	for lo := 0; lo < len(ts); lo += vecBatchRows {
		hi := lo + vecBatchRows
		if hi > len(ts) {
			hi = len(ts)
		}
		out = append(out, batchOfTuples(sch, ts[lo:hi]))
	}
	return out
}

// drainVec materializes a columnar stage into a relation.
func drainVec(s *source) (*relation.Relation, error) {
	var ts []relation.Tuple
	for {
		b, err := s.vec.nextBatch()
		if err != nil {
			s.vec.close()
			return nil, err
		}
		if b == nil {
			break
		}
		if ts == nil {
			ts = make([]relation.Tuple, 0, b.rows())
		}
		for k := 0; k < b.rows(); k++ {
			ts = append(ts, b.tupleAt(b.rowIndex(k)))
		}
	}
	if err := s.vec.close(); err != nil {
		return nil, err
	}
	out := relation.FromTuplesTrusted(s.schema, ts)
	out.SetOrder(s.order)
	return out, nil
}

// vecGroups assigns dense group ids to batch rows equal on a key-column
// set: the columnar counterpart of hashGroups, hashing straight off the
// column storage. Ids are allocated in first-occurrence order and
// representatives are (batch, row) references, so no tuple is ever
// materialized. The referenced batches stay alive as long as the table.
type vecGroups struct {
	idx     []int
	buckets map[uint64][]int
	repB    []*batch
	repRow  []int
}

func newVecGroups(idx []int, sizeHint int) *vecGroups {
	return &vecGroups{idx: idx, buckets: make(map[uint64][]int, sizeHint)}
}

func (g *vecGroups) hashAt(b *batch, i int) uint64 {
	h := value.HashSeed()
	for _, c := range g.idx {
		h = b.cols[c].hashInto(i, h)
	}
	return h
}

// groupOf returns row i's group id, allocating a fresh one (fresh=true) for
// the first row with a given key.
func (g *vecGroups) groupOf(b *batch, i int) (id int, fresh bool) {
	h := g.hashAt(b, i)
	for _, gid := range g.buckets[h] {
		if g.equalRep(gid, b, i) {
			return gid, false
		}
	}
	id = len(g.repB)
	g.repB = append(g.repB, b)
	g.repRow = append(g.repRow, i)
	g.buckets[h] = append(g.buckets[h], id)
	return id, true
}

func (g *vecGroups) equalRep(gid int, b *batch, i int) bool {
	rb, ri := g.repB[gid], g.repRow[gid]
	for _, c := range g.idx {
		if !rb.cols[c].equalAt(ri, &b.cols[c], i) {
			return false
		}
	}
	return true
}

// lookup finds the group whose key equals row i restricted to probeIdx —
// position k of probeIdx pairs with position k of the table's key — or -1.
func (g *vecGroups) lookup(b *batch, i int, probeIdx []int) int {
	h := value.HashSeed()
	for _, c := range probeIdx {
		h = b.cols[c].hashInto(i, h)
	}
	for _, gid := range g.buckets[h] {
		rb, ri := g.repB[gid], g.repRow[gid]
		match := true
		for k, pc := range probeIdx {
			if !b.cols[pc].equalAt(i, &rb.cols[g.idx[k]], ri) {
				match = false
				break
			}
		}
		if match {
			return gid
		}
	}
	return -1
}

// size returns the number of distinct groups seen.
func (g *vecGroups) size() int { return len(g.repB) }

// vecGroupRows partitions a compacted batch's rows by equality on idx,
// preserving first-occurrence group order and row order within each group;
// the columnar counterpart of groupRows. contiguous=true (equal rows proved
// adjacent by the input's OrderSpec) runs hash-free; an empty idx is one
// global group.
func vecGroupRows(b *batch, idx []int, contiguous bool) [][]int {
	if b.n == 0 {
		return nil
	}
	if len(idx) == 0 {
		all := make([]int, b.n)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	if contiguous {
		var out [][]int
		cur := []int{0}
		for i := 1; i < b.n; i++ {
			same := true
			for _, c := range idx {
				if !b.cols[c].equalAt(i, &b.cols[c], i-1) {
					same = false
					break
				}
			}
			if same {
				cur = append(cur, i)
				continue
			}
			out = append(out, cur)
			cur = []int{i}
		}
		return append(out, cur)
	}
	groups := newVecGroups(idx, b.n)
	var out [][]int
	for i := 0; i < b.n; i++ {
		gid, fresh := groups.groupOf(b, i)
		if fresh {
			out = append(out, nil)
		}
		out[gid] = append(out[gid], i)
	}
	return out
}
