package exec

import (
	"math"
	"math/rand"
	"testing"

	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// TestColvecRoundTrip checks that every value kind survives the typed
// column storage bit-for-bit: at(i) must reconstruct a value that is Equal
// to the appended one and hashes to the same bits.
func TestColvecRoundTrip(t *testing.T) {
	cases := []struct {
		kind value.Kind
		vals []value.Value
	}{
		{value.KindInt, []value.Value{value.Int(0), value.Int(-7), value.Int(1 << 62), value.Int(math.MinInt64)}},
		{value.KindBool, []value.Value{value.Bool(true), value.Bool(false)}},
		{value.KindTime, []value.Value{value.Time(0), value.Time(42), value.Time(period.NowMarker), value.Time(period.Beginning)}},
		{value.KindFloat, []value.Value{value.Float(0), value.Float(-1.5), value.Float(math.NaN()), value.Float(math.Inf(1))}},
		{value.KindString, []value.Value{value.String_(""), value.String_("a"), value.String_("it's")}},
	}
	for _, tc := range cases {
		c := newColvec(tc.kind, 0)
		for _, v := range tc.vals {
			c.append(v)
		}
		if c.kind != tc.kind {
			t.Fatalf("kind %v: column demoted to %v on same-kind appends", tc.kind, c.kind)
		}
		if c.length() != len(tc.vals) {
			t.Fatalf("kind %v: length %d, want %d", tc.kind, c.length(), len(tc.vals))
		}
		for i, v := range tc.vals {
			got := c.at(i)
			if !got.Equal(v) || got.Kind() != v.Kind() {
				t.Fatalf("kind %v: at(%d) = %v (%v), want %v", tc.kind, i, got, got.Kind(), v)
			}
			if got.HashInto(value.HashSeed()) != v.HashInto(value.HashSeed()) {
				t.Fatalf("kind %v: at(%d) hashes differently from the appended value", tc.kind, i)
			}
			if !c.equalAt(i, &c, i) {
				t.Fatalf("kind %v: equalAt(%d,%d) false on the same slot", tc.kind, i, i)
			}
		}
	}
}

// TestColvecKindMixed checks the demotion escape hatch: a column fed a
// foreign kind falls back to boxed storage without losing the earlier
// typed values — including cross-kind numeric equality semantics.
func TestColvecKindMixed(t *testing.T) {
	c := newColvec(value.KindInt, 0)
	c.append(value.Int(3))
	c.append(value.Float(3.5)) // demotes
	c.append(value.String_("x"))
	if c.kind != value.KindInvalid {
		t.Fatalf("mixed column kept kind %v, want boxed fallback", c.kind)
	}
	want := []value.Value{value.Int(3), value.Float(3.5), value.String_("x")}
	for i, v := range want {
		if got := c.at(i); !got.Equal(v) || got.Kind() != v.Kind() {
			t.Fatalf("after demotion at(%d) = %v (%v), want %v", i, got, got.Kind(), v)
		}
	}
	// Cross-kind numeric equality must keep the canonical Compare result:
	// Int(3) == Float(3.0) even across differently-typed columns.
	f := newColvec(value.KindFloat, 0)
	f.append(value.Float(3))
	if !c.equalAt(0, &f, 0) {
		t.Fatal("Int(3) and Float(3.0) must compare equal across columns")
	}
	// NaN equals NaN under the canonical total order.
	n1 := newColvec(value.KindFloat, 0)
	n1.append(value.Float(math.NaN()))
	if !n1.equalAt(0, &n1, 0) {
		t.Fatal("NaN must equal NaN under the canonical order")
	}
}

// TestBatchSelectionCompact checks selection-vector semantics: a view
// presents exactly the selected rows in selection order, compaction
// resolves it into dense columns, and the underlying batch is untouched.
func TestBatchSelectionCompact(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("K", value.KindInt),
		schema.Attr("S", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	var tuples []relation.Tuple
	for i := 0; i < 6; i++ {
		tuples = append(tuples, relation.Tuple{
			value.Int(int64(i)), value.String_(string(rune('a' + i))),
			value.Time(period.Chronon(i)), value.Time(period.Chronon(i + 10)),
		})
	}
	b := batchOfTuples(s, tuples)
	if b.n != 6 || b.rows() != 6 {
		t.Fatalf("batch rows = %d/%d, want 6/6", b.n, b.rows())
	}
	v := b.withSel([]int{4, 1, 3})
	if v.rows() != 3 {
		t.Fatalf("view rows = %d, want 3", v.rows())
	}
	for k, phys := range []int{4, 1, 3} {
		if got := v.rowIndex(k); got != phys {
			t.Fatalf("view rowIndex(%d) = %d, want %d", k, got, phys)
		}
		if !v.tupleAt(v.rowIndex(k)).Equal(tuples[phys]) {
			t.Fatalf("view row %d differs from source tuple %d", k, phys)
		}
	}
	c := v.compact()
	if c.sel != nil || c.n != 3 {
		t.Fatalf("compacted batch n=%d sel=%v, want 3/nil", c.n, c.sel)
	}
	for k, phys := range []int{4, 1, 3} {
		if !c.tupleAt(k).Equal(tuples[phys]) {
			t.Fatalf("compacted row %d differs from source tuple %d", k, phys)
		}
	}
	// The shared base is untouched by the view and the compaction.
	if b.sel != nil || b.n != 6 {
		t.Fatal("selection view mutated its base batch")
	}
	for i, tu := range tuples {
		if !b.tupleAt(i).Equal(tu) {
			t.Fatalf("base batch row %d changed", i)
		}
	}
	// periodAt must read NOW-relative periods through the typed time plane.
	nb := batchOfTuples(s, []relation.Tuple{{
		value.Int(1), value.String_("now"), value.Time(5), value.Time(period.NowMarker),
	}})
	p := nb.periodAt(2, 3, 0)
	if p.Start != 5 || p.End != period.NowMarker || !p.IsNowRelative() {
		t.Fatalf("periodAt = %v, want [5, NOW)", p)
	}
}

// TestVecDrainOne checks the materialization helper: a multi-batch stream
// with selections compacts into one dense batch in presented order, and a
// single unselected batch passes through without copying.
func TestVecDrainOne(t *testing.T) {
	s := schema.MustNew(schema.Attr("K", value.KindInt))
	mk := func(vals ...int64) *batch {
		b := newBatch(s, len(vals))
		for _, v := range vals {
			b.appendTuple(relation.Tuple{value.Int(v)})
		}
		return b
	}
	b1 := mk(1, 2, 3).withSel([]int{2, 0})
	b2 := mk(4, 5)
	out, err := vecDrainOne(&stubVecIter{batches: []*batch{b1, b2}}, s)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 1, 4, 5}
	if out.n != len(want) || out.sel != nil {
		t.Fatalf("drained n=%d sel=%v, want %d/nil", out.n, out.sel, len(want))
	}
	for i, w := range want {
		if got := out.cols[0].at(i); got.AsInt() != w {
			t.Fatalf("drained row %d = %v, want %d", i, got, w)
		}
	}
	single := mk(7, 8)
	out, err = vecDrainOne(&stubVecIter{batches: []*batch{single}}, s)
	if err != nil {
		t.Fatal(err)
	}
	if out != single {
		t.Fatal("a single unselected batch must pass through vecDrainOne without copying")
	}
}

type stubVecIter struct {
	batches []*batch
	i       int
}

func (s *stubVecIter) nextBatch() (*batch, error) {
	if s.i >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.i]
	s.i++
	return b, nil
}

func (s *stubVecIter) close() error { return nil }

// TestVecGroupsMatchesHashGroups drives random kind-mixed tuples through
// the columnar and the tuple hash-grouping side by side: identical group
// ids in identical order, and identical cross-schema lookups.
func TestVecGroupsMatchesHashGroups(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("A", value.KindInt),
		schema.Attr("B", value.KindString),
		schema.Attr("C", value.KindFloat))
	rng := rand.New(rand.NewSource(7))
	var tuples []relation.Tuple
	for i := 0; i < 400; i++ {
		tuples = append(tuples, relation.Tuple{
			value.Int(int64(rng.Intn(5))),
			value.String_(string(rune('a' + rng.Intn(3)))),
			value.Float(float64(rng.Intn(3))),
		})
	}
	idx := []int{0, 1, 2}
	b := batchOfTuples(s, tuples)
	hg := newHashGroups(idx, 0)
	vg := newVecGroups(idx, 0)
	for i, tu := range tuples {
		hid, hfresh := hg.groupOf(tu)
		vid, vfresh := vg.groupOf(b, i)
		if hid != vid || hfresh != vfresh {
			t.Fatalf("row %d: hashGroups (%d,%v) ≠ vecGroups (%d,%v)", i, hid, hfresh, vid, vfresh)
		}
	}
	for i, tu := range tuples {
		if hg.lookup(tu, idx) != vg.lookup(b, i, idx) {
			t.Fatalf("row %d: lookup disagrees", i)
		}
	}
}

// TestSpanAlgorithmsMatchRowAlgorithms is the property test tying the
// span-level temporal algorithms to the row-level ones they mirror: on
// random period multisets (overlaps, duplicates, empties, NOW markers)
// rdupTSpans/coalTSpans must produce exactly the fragment sequence of
// rdupTGroup/coalTGroup.
func TestSpanAlgorithmsMatchRowAlgorithms(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("V", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	t1, t2 := s.TimeIndices()
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		rows := make([]row, n)
		for i := 0; i < n; i++ {
			start := period.Chronon(rng.Intn(10))
			end := start + period.Chronon(rng.Intn(8))
			if rng.Intn(10) == 0 {
				end = period.NowMarker // NOW-relative period
			}
			p := period.Period{Start: start, End: end}
			tu := relation.Tuple{value.Int(1), value.Time(p.Start), value.Time(p.End)}
			rows[i] = row{orig: i, t: tu, p: p}
		}
		spans := make([]vspan, n)
		for i, rw := range rows {
			spans[i] = vspan{src: i, p: rw.p}
		}
		check := func(name string, gotSpans []vspan, wantRows []row) {
			if len(gotSpans) != len(wantRows) {
				t.Fatalf("seed %d %s: %d spans vs %d rows", seed, name, len(gotSpans), len(wantRows))
			}
			for k := range gotSpans {
				if gotSpans[k].p != wantRows[k].p {
					t.Fatalf("seed %d %s: fragment %d period %v ≠ %v", seed, name, k, gotSpans[k].p, wantRows[k].p)
				}
				if gotSpans[k].src != wantRows[k].orig {
					t.Fatalf("seed %d %s: fragment %d source %d ≠ orig %d", seed, name, k, gotSpans[k].src, wantRows[k].orig)
				}
				wantP := wantRows[k].t.PeriodAt(t1, t2)
				if gotSpans[k].p != wantP {
					t.Fatalf("seed %d %s: fragment %d span period %v ≠ tuple period %v", seed, name, k, gotSpans[k].p, wantP)
				}
			}
		}
		rCopy := append([]row(nil), rows...)
		sCopy := append([]vspan(nil), spans...)
		check("rdupT", rdupTSpans(sCopy), rdupTGroup(rCopy, t1, t2))
		rCopy = append([]row(nil), rows...)
		sCopy = append([]vspan(nil), spans...)
		check("coalT", coalTSpans(sCopy), coalTGroup(rCopy, t1, t2))
	}
}

// TestVecPredCompiler checks the columnar predicate fast path against
// Pred.Holds over every comparison operator and the boolean connectives.
func TestVecPredCompiler(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("A", value.KindInt),
		schema.Attr("B", value.KindFloat))
	var tuples []relation.Tuple
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		tuples = append(tuples, relation.Tuple{
			value.Int(int64(rng.Intn(7) - 3)),
			value.Float(float64(rng.Intn(7)) - 3.5),
		})
	}
	b := batchOfTuples(s, tuples)
	a, bcol := expr.Column("A"), expr.Column("B")
	zero := expr.Literal(value.Int(0))
	preds := []expr.Pred{
		expr.TruePred{},
		expr.Compare(expr.Eq, a, zero),
		expr.Compare(expr.Ne, a, zero),
		expr.Compare(expr.Lt, a, bcol), // cross-kind int vs float comparison
		expr.Compare(expr.Le, a, bcol),
		expr.Compare(expr.Gt, bcol, expr.Literal(value.Float(0.5))),
		expr.Compare(expr.Ge, a, expr.Literal(value.Int(-1))),
		expr.Neg(expr.Compare(expr.Eq, a, zero)),
		expr.Conj(expr.Compare(expr.Gt, a, zero), expr.Compare(expr.Lt, bcol, expr.Literal(value.Float(2)))),
		expr.Disj(expr.Compare(expr.Lt, a, zero), expr.Compare(expr.Gt, bcol, expr.Literal(value.Float(1)))),
	}
	for pi, p := range preds {
		fast := compileVecPred(p, s)
		if fast == nil {
			t.Fatalf("pred %d (%s): compiler refused a supported shape", pi, p)
		}
		for i, tu := range tuples {
			want, err := p.Holds(s, tu)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fast(b, i)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("pred %d (%s) row %d: fast %v ≠ Holds %v", pi, p, i, got, want)
			}
		}
	}
}
