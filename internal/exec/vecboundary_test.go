package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// boundaryRelation builds a duplicate-heavy temporal relation of exactly n
// rows: a small name alphabet and group range so dedup, diff and union all
// have real work at every size.
func boundaryRelation(n int, seed int64) (*relation.Relation, *schema.Schema) {
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	rng := rand.New(rand.NewSource(seed))
	ts := make([]relation.Tuple, n)
	for i := range ts {
		t1 := period.Chronon(rng.Intn(16))
		ts[i] = relation.Tuple{
			value.String_(string(rune('a' + rng.Intn(4)))),
			value.Int(int64(rng.Intn(5))),
			value.Time(t1),
			value.Time(t1 + period.Chronon(1+rng.Intn(8))),
		}
	}
	return relation.FromTuplesTrusted(s, ts), s
}

// TestVecBatchBoundarySizes drives every batch-compiled operator family —
// sort, sorted dedup, merge diff/union, hash dedup, temporal dedup — at
// the batch-arithmetic edge cases: empty input, a single row, and sizes
// straddling the vecBatchRows boundary. Each engine configuration
// (sequential columnar, parallel exchange, grace-spilling budget, and
// both combined) must match the reference evaluator exactly, and the
// columnar counters must show the batch paths actually ran.
func TestVecBatchBoundarySizes(t *testing.T) {
	sizes := []int{0, 1, 2, vecBatchRows - 1, vecBatchRows, vecBatchRows + 1, 2*vecBatchRows + 3}
	engines := []struct {
		name string
		opts Options
	}{
		{"exec", Options{}},
		{"exec-par3", Options{Parallelism: 3}},
		{"exec-mem", Options{MemoryBudget: 1 << 12}},
		{"exec-par2-mem", Options{Parallelism: 2, MemoryBudget: 1 << 13}},
	}
	for _, n := range sizes {
		r, s := boundaryRelation(n, int64(n)*37+1)
		src := eval.MapSource{"B": r}
		base := algebra.NewRel("B", s, algebra.BaseInfo{})
		byAll := relation.OrderSpec{
			relation.Key("Name"), relation.Key("Grp"), relation.Key(schema.T1), relation.Key(schema.T2),
		}
		plans := []algebra.Node{
			algebra.NewSort(byAll, base),
			algebra.NewRdup(algebra.NewSort(byAll, base)),
			algebra.NewDiff(algebra.NewSort(byAll, base), algebra.NewSort(byAll, base)),
			algebra.NewUnion(algebra.NewSort(byAll, base), algebra.NewSort(byAll, base)),
			algebra.NewRdup(base),
			algebra.NewTRdup(base),
		}
		for pi, plan := range plans {
			want, err := eval.New(src).Eval(plan)
			if err != nil {
				t.Fatalf("n=%d plan %d: reference: %v", n, pi, err)
			}
			for _, eng := range engines {
				e := NewWith(src, eng.opts)
				got, err := e.Eval(plan)
				st := e.Stats()
				if cerr := e.Close(); cerr != nil {
					t.Fatalf("n=%d plan %d %s: close: %v", n, pi, eng.name, cerr)
				}
				if err != nil {
					t.Fatalf("n=%d plan %d %s: %v", n, pi, eng.name, err)
				}
				if !got.EqualAsList(want) {
					t.Fatalf("n=%d plan %d %s: result differs\ngot:\n%s\nwant:\n%s",
						n, pi, eng.name, got, want)
				}
				// Vacuity guard on the sequential columnar engine for the
				// plans with batch-compiled roots (TRdup has no batch
				// variant): VectorOps fires even on empty input — operators
				// count at compile time — and batches flow once there are
				// rows to carry.
				if eng.name == "exec" && pi < 5 {
					if st.VectorOps == 0 {
						t.Fatalf("n=%d plan %d: VectorOps == 0 — columnar path did not compile", n, pi)
					}
					if n > 0 && st.VectorBatches == 0 {
						t.Fatalf("n=%d plan %d: VectorBatches == 0 on %d rows", n, pi, n)
					}
				}
			}
		}
	}
}

// TestVecHashPartitionGather pins the scatter/gather contract the parallel
// batch operators rely on: vecHashPartition splits a batch view into
// disjoint ascending index lists that cover every visible row, and
// mergeAscending reassembles them into the original ascending order —
// which is what makes parallel plans bit-identical to sequential ones.
func TestVecHashPartitionGather(t *testing.T) {
	s := schema.MustNew(
		schema.Attr("K", value.KindInt),
		schema.Attr("S", value.KindString),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{0, 1, 2, 63, vecBatchRows} {
		var ts []relation.Tuple
		for i := 0; i < n; i++ {
			ts = append(ts, relation.Tuple{
				value.Int(int64(rng.Intn(7))),
				value.String_(fmt.Sprintf("s%d", rng.Intn(3))),
				value.Time(period.Chronon(i)),
				value.Time(period.Chronon(i + 1)),
			})
		}
		b := batchOfTuples(s, ts)
		for _, selected := range []bool{false, true} {
			view := b
			if selected {
				// Select every other row, then compact: the scatter's
				// contract is physical rows of a compacted batch, and this
				// is how the parallel sources feed it selection views.
				var sel []int
				for i := 0; i < n; i += 2 {
					sel = append(sel, i)
				}
				view = b.withSel(sel).compact()
			}
			for _, p := range []int{1, 3, 8} {
				parts := vecHashPartition(view, []int{0, 1}, p)
				if len(parts) != p {
					t.Fatalf("n=%d p=%d: %d partitions", n, p, len(parts))
				}
				seen := make(map[int]int)
				for pi, part := range parts {
					for i := 1; i < len(part); i++ {
						if part[i] <= part[i-1] {
							t.Fatalf("n=%d p=%d: partition %d not ascending: %v", n, p, pi, part)
						}
					}
					for _, idx := range part {
						if _, dup := seen[idx]; dup {
							t.Fatalf("n=%d p=%d: row %d scattered twice", n, p, idx)
						}
						seen[idx] = pi
					}
				}
				if len(seen) != view.rows() {
					t.Fatalf("n=%d p=%d: scattered %d rows, view has %d", n, p, len(seen), view.rows())
				}
				merged := mergeAscending(parts)
				if len(merged) != view.rows() {
					t.Fatalf("n=%d p=%d: gather of %d rows, want %d", n, p, len(merged), view.rows())
				}
				for i := 1; i < len(merged); i++ {
					if merged[i] <= merged[i-1] {
						t.Fatalf("n=%d p=%d: gather not ascending at %d: %v", n, p, i, merged)
					}
				}
				// Rows on the same key must land in the same partition —
				// the property hash repartitioning correctness rests on.
				for i := 0; i < view.rows(); i++ {
					for j := i + 1; j < view.rows(); j++ {
						if view.cols[0].equalAt(i, &view.cols[0], j) && view.cols[1].equalAt(i, &view.cols[1], j) &&
							seen[i] != seen[j] {
							t.Fatalf("n=%d p=%d: equal keys split across partitions %d/%d", n, p, seen[i], seen[j])
						}
					}
				}
			}
		}
	}
}
