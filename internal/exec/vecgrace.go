// Columnar variants of the grace spill path (grace.go): a budgeted
// operator's input drains as batches with per-row arbiter accounting read
// straight off the column planes, the spill switch writes fan-out
// partitions through the block codec's columnar write path (no tuple is
// materialized on the way to disk), and spilled partitions re-read
// block-at-a-time into batches for the columnar partition bodies. The
// on-disk format, the hash that routes rows to buckets, and the memory
// accounting are all bit-identical to the tuple path's, so leaf/recurse
// decisions, arbiter peaks and replay order match the tuple engine exactly.
package exec

import (
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/spill"
	"tqp/internal/value"
)

// batchRowMemSize is spill.TupleMemSize for a batch row, computed off the
// column planes without building the tuple. The arbiter must account a row
// identically whether it flows boxed or columnar, or the two pipelines'
// spill decisions diverge on the same plan.
func batchRowMemSize(b *batch, i int) int64 {
	n := spill.RowMemSize(len(b.cols))
	for c := range b.cols {
		col := &b.cols[c]
		switch col.kind {
		case value.KindString:
			n += int64(len(col.strs[i]))
		case value.KindInvalid:
			if v := col.vals[i]; v.Kind() == value.KindString {
				n += int64(len(v.AsString()))
			}
		}
	}
	return n
}

// vecGraceSide is the columnar graceSide: compacted resident batches, or
// fan-out partitions written as columnar blocks.
type vecGraceSide struct {
	batches []*batch
	bytes   int64
	count   int
	spilled bool
	parts   []partSource
}

// vecPending buffers one spill bucket's routed rows as (batch, row)
// references until a block's worth accumulates; the flush hands the block
// codec an accessor over the planes.
type vecPending struct {
	seqs  []int
	bs    []*batch
	rows  []int
	bytes int64
}

// drainGraceVec is drainGrace over batches: the input accumulates as
// compacted batches (each growing the arbiter by its rows' accounted bytes)
// until share is exceeded, then everything buffered fans out to columnar
// block writers by the level-0 hash of idx and the rest of the stream
// routes directly. Row sequence tags are arrival positions, and routing
// preserves arrival order within each bucket — the same invariant the
// tuple drain establishes.
func (e *Engine) drainGraceVec(in *source, idx []int, share int64) (*vecGraceSide, error) {
	side := &vecGraceSide{}
	v := in.vecInput()
	arity := in.schema.Len()
	var writers []*spill.Writer
	var pend []vecPending
	abort := func() {
		for _, w := range writers {
			if w != nil {
				w.Abort()
			}
		}
	}
	flushBucket := func(bk int) error {
		p := &pend[bk]
		if len(p.seqs) == 0 {
			return nil
		}
		err := writers[bk].AppendBlockCols(p.seqs, arity, p.bytes, func(row, col int) value.Value {
			return p.bs[row].cols[col].at(p.rows[row])
		})
		p.seqs, p.bs, p.rows, p.bytes = p.seqs[:0], p.bs[:0], p.rows[:0], 0
		return err
	}
	route := func(b *batch, i, seq int, m int64) error {
		h := value.HashSeed()
		for _, c := range idx {
			h = b.cols[c].hashInto(i, h)
		}
		bk := spillBucket(h, 0)
		p := &pend[bk]
		p.seqs = append(p.seqs, seq)
		p.bs = append(p.bs, b)
		p.rows = append(p.rows, i)
		p.bytes += m
		if len(p.seqs) >= spill.BlockRows {
			return flushBucket(bk)
		}
		return nil
	}
	fail := func(err error) (*vecGraceSide, error) {
		abort()
		v.close()
		return nil, err
	}
	for {
		b, err := v.nextBatch()
		if err != nil {
			return fail(err)
		}
		if b == nil {
			break
		}
		if side.spilled {
			for k := 0; k < b.rows(); k++ {
				i := b.rowIndex(k)
				m := batchRowMemSize(b, i)
				side.bytes += m
				if err := route(b, i, side.count, m); err != nil {
					return fail(err)
				}
				side.count++
			}
			continue
		}
		cb := b.compact()
		var bb int64
		for i := 0; i < cb.n; i++ {
			bb += batchRowMemSize(cb, i)
		}
		side.batches = append(side.batches, cb)
		side.count += cb.n
		side.bytes += bb
		e.mem.grow(bb)
		if side.bytes > share {
			side.spilled = true
			writers = make([]*spill.Writer, spillFanout)
			pend = make([]vecPending, spillFanout)
			for bk := range writers {
				if writers[bk], err = e.spillMgr.Create(); err != nil {
					return fail(err)
				}
			}
			seq := 0
			for _, sb := range side.batches {
				for i := 0; i < sb.n; i++ {
					if err := route(sb, i, seq, batchRowMemSize(sb, i)); err != nil {
						return fail(err)
					}
					seq++
				}
			}
			e.mem.release(side.bytes)
			side.batches = nil
		}
	}
	if err := v.close(); err != nil {
		abort()
		return nil, err
	}
	if !side.spilled {
		return side, nil
	}
	side.parts = make([]partSource, spillFanout)
	for bk, w := range writers {
		if err := flushBucket(bk); err != nil {
			abort()
			return nil, err
		}
		f, err := w.Finish()
		if err != nil {
			abort()
			return nil, err
		}
		writers[bk] = nil
		if f.Count() == 0 {
			f.Remove()
			continue
		}
		side.parts[bk] = partSource{file: f, bytes: f.MemBytes(), count: f.Count()}
	}
	return side, nil
}

// vecRdupLeaf re-reads one spilled partition block-at-a-time, runs the
// columnar group table across the blocks' batches, and returns the
// first-occurrence survivors tagged with their arrival positions. File
// order is arrival order within the bucket, so the result is ascending in
// seq — the contract the tagged merge gathers by.
func (e *Engine) vecRdupLeaf(ps partSource, sch *schema.Schema, idx []int) ([]tagged, error) {
	r, err := ps.file.Open()
	if err != nil {
		return nil, err
	}
	groups := newVecGroups(idx, ps.count)
	var res []tagged
	for {
		seqs, rows, ok, err := r.NextBlock()
		if err != nil {
			r.Close()
			return nil, err
		}
		if !ok {
			break
		}
		b := batchOfTuples(sch, rows)
		for i := 0; i < b.n; i++ {
			if _, fresh := groups.groupOf(b, i); fresh {
				res = append(res, tagged{seq: seqs[i], t: rows[i]})
			}
		}
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	ps.file.Remove()
	return res, nil
}

// processGraceVecRdup is processGrace1 with a columnar leaf: partitions
// still too big repartition through the shared (format-identical) streaming
// splitter, and partitions that fit decode into batches for the group
// table instead of materializing a prow list.
func (e *Engine) processGraceVecRdup(ps partSource, sch *schema.Schema, idx []int, lvl int) ([]tagged, error) {
	if ps.count == 0 {
		return nil, nil
	}
	if ps.bytes <= e.opShare() || lvl > maxSpillLevel || ps.count <= 1 {
		if ps.file == nil {
			return rdupPartition(ps.rows, idx), nil
		}
		e.mem.grow(ps.bytes)
		out, err := e.vecRdupLeaf(ps, sch, idx)
		e.mem.release(ps.bytes)
		return out, err
	}
	subs, err := e.repartition(ps, idx, lvl)
	if err != nil {
		return nil, err
	}
	outs := make([][]tagged, spillFanout)
	for b := range subs {
		if outs[b], err = e.processGraceVecRdup(subs[b], sch, idx, lvl+1); err != nil {
			return nil, err
		}
	}
	return mergeTaggedSorted(outs), nil
}

// vecGraceRdupSource is the budgeted columnar rdup: the input drains as
// batches against the operator share, a resident side dedups in place with
// survivors emitted as selection views over the buffered batches, and a
// spilled side runs the columnar grace recursion with the gathered
// survivors re-batched for the columnar parent.
func (e *Engine) vecGraceRdupSource(in *source, outSchema *schema.Schema, order relation.OrderSpec) *source {
	e.stats.VectorOps++
	sch := in.schema
	idx := identityIdx(sch.Len())
	it := &lazyBatchesIter{compute: func() ([]*batch, error) {
		side, err := e.drainGraceVec(in, idx, e.opShare())
		if err != nil {
			return nil, err
		}
		if !side.spilled {
			groups := newVecGroups(idx, side.count)
			var out []*batch
			for _, b := range side.batches {
				sel := make([]int, 0, b.n)
				for i := 0; i < b.n; i++ {
					if _, fresh := groups.groupOf(b, i); fresh {
						sel = append(sel, i)
					}
				}
				switch {
				case len(sel) == 0:
				case len(sel) == b.n:
					out = append(out, b)
				default:
					out = append(out, b.withSel(sel))
				}
			}
			e.mem.release(side.bytes)
			e.stats.VectorBatches += len(out)
			return out, nil
		}
		e.graceNoteSpill()
		outs := make([][]tagged, spillFanout)
		if err := runTasks(e.workers(), spillFanout, func(b int) error {
			res, err := e.processGraceVecRdup(side.parts[b], sch, idx, 1)
			outs[b] = res
			return err
		}); err != nil {
			return nil, err
		}
		merged := mergeTaggedSorted(outs)
		ts := make([]relation.Tuple, len(merged))
		for k := range ts {
			ts[k] = merged[k].t
		}
		out := tupleBatches(sch, ts)
		e.stats.VectorBatches += len(out)
		return out, nil
	}}
	return vecSource(it, outSchema, order)
}
