// Columnar variants of the merge operator family (merge.go, sort.go):
// order-spec comparison compiled against column planes, adjacent-compare
// dedup, the two-pointer merge diff/union sweeps, and sort as a stable
// permutation of row indices emitted as one selection view. Every operator
// here is bit-identical to its tuple counterpart — the compare, equality
// and hash kernels are the exact typed specializations of the canonical
// value semantics — so the differential suites compare the two pipelines
// on the same plans.
package exec

import (
	"sort"

	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// vecCmp orders row ai of batch a against row bi of batch b (physical
// indices) under a compiled order spec, with the sign contract of
// relation.CompareOn.
type vecCmp func(a *batch, ai int, b *batch, bi int) int

// intPlaneKind reports the kinds stored unboxed on the int64 plane, whose
// payload order is the canonical Compare order for same-kind values.
func intPlaneKind(k value.Kind) bool {
	return k == value.KindInt || k == value.KindBool || k == value.KindTime
}

// compileVecCmp compiles an order spec against a schema into a columnar
// comparator: per key, a typed plane compare when both columns hold the
// schema kind unboxed, the generic value compare otherwise (floats always —
// their NaN and cross-kind ordering is the generic path's). The result is
// CompareOn restricted to the spec, computed without constructing tuples.
func compileVecCmp(s *schema.Schema, spec relation.OrderSpec) vecCmp {
	type key struct {
		col  int
		kind value.Kind
		desc bool
	}
	keys := make([]key, len(spec))
	for i, k := range spec {
		c := s.Index(k.Attr)
		keys[i] = key{col: c, kind: s.At(c).Kind, desc: k.Dir == relation.Desc}
	}
	return func(a *batch, ai int, b *batch, bi int) int {
		for _, k := range keys {
			ca, cb := &a.cols[k.col], &b.cols[k.col]
			var c int
			switch {
			case intPlaneKind(k.kind) && ca.kind == k.kind && cb.kind == k.kind:
				va, vb := ca.ints[ai], cb.ints[bi]
				switch {
				case va < vb:
					c = -1
				case va > vb:
					c = 1
				}
			case k.kind == value.KindString && ca.kind == value.KindString && cb.kind == value.KindString:
				va, vb := ca.strs[ai], cb.strs[bi]
				switch {
				case va < vb:
					c = -1
				case va > vb:
					c = 1
				}
			default:
				c = ca.at(ai).Compare(cb.at(bi))
			}
			if k.desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
}

// rowsEqual reports full-row equality between two batch rows (physical
// indices) — the columnar Tuple.Equal.
func rowsEqual(a *batch, ai int, b *batch, bi int) bool {
	for c := range a.cols {
		if !a.cols[c].equalAt(ai, &b.cols[c], bi) {
			return false
		}
	}
	return true
}

// vecDedupSortedIter streams rdup over a columnar input whose delivered
// order covers every attribute: the first row of each equal run survives,
// found by a single adjacent comparison carried across batch boundaries.
// Survivors are emitted as selection views over the input batches.
type vecDedupSortedIter struct {
	e     *Engine
	in    vecIterator
	prevB *batch
	prevI int
}

func (d *vecDedupSortedIter) nextBatch() (*batch, error) {
	for {
		b, err := d.in.nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.rows()
		sel := make([]int, 0, n)
		for k := 0; k < n; k++ {
			i := b.rowIndex(k)
			if d.prevB != nil && rowsEqual(b, i, d.prevB, d.prevI) {
				continue
			}
			d.prevB, d.prevI = b, i
			sel = append(sel, i)
		}
		if len(sel) == 0 {
			continue
		}
		d.e.stats.VectorBatches++
		if b.sel == nil && len(sel) == n {
			return b, nil
		}
		return b.withSel(sel), nil
	}
}

func (d *vecDedupSortedIter) close() error { return d.in.close() }

// vecMergeDiffIter is mergeDiffIter over batches: the sorted right side
// drains into one compacted batch, a single pointer sweeps it alongside
// the streaming left batches, and each left batch's survivors emit as a
// selection view. The sweep state persists across batches because the left
// stream is globally ordered.
type vecMergeDiffIter struct {
	e     *Engine
	left  vecIterator
	right *source
	cmp   vecCmp

	built    bool
	rb       *batch
	ri       int // start of the current right group
	gEnd     int // end of the current right group
	consumed int // left occurrences the current group has absorbed
}

func (m *vecMergeDiffIter) nextBatch() (*batch, error) {
	if !m.built {
		rb, err := vecDrainOne(m.right.vecInput(), m.right.schema)
		if err != nil {
			return nil, err
		}
		m.rb = rb
		m.built = true
	}
	for {
		b, err := m.left.nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.rows()
		sel := make([]int, 0, n)
		for k := 0; k < n; k++ {
			i := b.rowIndex(k)
			cmp := 1 // right side exhausted: every remaining left row survives
			for m.ri < m.rb.n {
				cmp = m.cmp(m.rb, m.ri, b, i)
				if cmp >= 0 {
					break
				}
				m.ri++
				m.gEnd = m.ri
				m.consumed = 0
			}
			if cmp == 0 {
				for m.gEnd < m.rb.n && m.cmp(m.rb, m.gEnd, b, i) == 0 {
					m.gEnd++
				}
				if m.consumed < m.gEnd-m.ri {
					m.consumed++
					continue
				}
			}
			sel = append(sel, i)
		}
		if len(sel) == 0 {
			continue
		}
		m.e.stats.VectorBatches++
		if b.sel == nil && len(sel) == n {
			return b, nil
		}
		return b.withSel(sel), nil
	}
}

func (m *vecMergeDiffIter) close() error { return m.left.close() }

// vecMergeUnionIter is mergeUnionIter over batches: the left side drains
// into one compacted batch and emits in full, then the right batches stream
// against a pointer into it, survivors emitting as selection views.
type vecMergeUnionIter struct {
	e     *Engine
	left  *source
	right vecIterator
	cmp   vecCmp

	built    bool
	emitted  bool
	lb       *batch
	gi       int // start of the current left group (right-side phase)
	gEnd     int
	consumed int
}

func (m *vecMergeUnionIter) nextBatch() (*batch, error) {
	if !m.built {
		lb, err := vecDrainOne(m.left.vecInput(), m.left.schema)
		if err != nil {
			return nil, err
		}
		m.lb = lb
		m.built = true
	}
	if !m.emitted {
		m.emitted = true
		if m.lb.n > 0 {
			m.e.stats.VectorBatches++
			return m.lb, nil
		}
	}
	for {
		b, err := m.right.nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		n := b.rows()
		sel := make([]int, 0, n)
		for k := 0; k < n; k++ {
			i := b.rowIndex(k)
			cmp := 1 // left side exhausted: every remaining right row survives
			for m.gi < m.lb.n {
				cmp = m.cmp(m.lb, m.gi, b, i)
				if cmp >= 0 {
					break
				}
				m.gi++
				m.gEnd = m.gi
				m.consumed = 0
			}
			if cmp == 0 {
				for m.gEnd < m.lb.n && m.cmp(m.lb, m.gEnd, b, i) == 0 {
					m.gEnd++
				}
				if m.consumed < m.gEnd-m.gi {
					m.consumed++
					continue
				}
			}
			sel = append(sel, i)
		}
		if len(sel) == 0 {
			continue
		}
		m.e.stats.VectorBatches++
		if b.sel == nil && len(sel) == n {
			return b, nil
		}
		return b.withSel(sel), nil
	}
}

func (m *vecMergeUnionIter) close() error { return m.right.close() }

// vecSortSource sorts a columnar input without materializing tuples: the
// input drains into one compacted batch, a row-index permutation stable-
// sorts under the compiled comparator, and the result is a single selection
// view over the unmoved column planes. Under Parallelism the permutation
// sorts as fixed-size index runs across the worker pool and gathers through
// a k-way merge whose run-index tie-break reproduces the global stable sort
// — the columnar form of parallelSortSource's run heap.
func (e *Engine) vecSortSource(in *source, spec relation.OrderSpec, order relation.OrderSpec) *source {
	workers := 1
	if e.parallel() {
		workers = e.exchange()
	}
	e.stats.VectorOps++
	sch := in.schema
	compute := func() (*batch, error) {
		b, err := vecDrainOne(in.vec, sch)
		if err != nil {
			return nil, err
		}
		if b.n == 0 {
			return nil, nil
		}
		cmp := compileVecCmp(sch, spec)
		idx := make([]int, b.n)
		for i := range idx {
			idx[i] = i
		}
		if workers <= 1 || b.n <= sortRunSize {
			sort.SliceStable(idx, func(x, y int) bool {
				return cmp(b, idx[x], b, idx[y]) < 0
			})
			e.stats.VectorBatches++
			return b.withSel(idx), nil
		}
		nRuns := (b.n + sortRunSize - 1) / sortRunSize
		if err := runTasks(workers, nRuns, func(r int) error {
			lo, hi := r*sortRunSize, (r+1)*sortRunSize
			if hi > b.n {
				hi = b.n
			}
			run := idx[lo:hi]
			sort.SliceStable(run, func(x, y int) bool {
				return cmp(b, run[x], b, run[y]) < 0
			})
			return nil
		}); err != nil {
			return nil, err
		}
		e.stats.VectorBatches++
		return b.withSel(mergeSortedRuns(b, idx, nRuns, cmp)), nil
	}
	return vecSource(&onceBatchIter{compute: compute}, sch, order)
}

// mergeSortedRuns k-way merges the sorted index runs idx[r*sortRunSize :
// (r+1)*sortRunSize) into one sorted permutation, breaking comparator ties
// by run index — runs partition the input in order, so the tie-break is
// exactly the stable sort's arrival order.
func mergeSortedRuns(b *batch, idx []int, nRuns int, cmp vecCmp) []int {
	type cursor struct {
		run []int
		pos int
		r   int
	}
	h := make([]*cursor, 0, nRuns)
	for r := 0; r < nRuns; r++ {
		lo, hi := r*sortRunSize, (r+1)*sortRunSize
		if hi > len(idx) {
			hi = len(idx)
		}
		if lo < hi {
			h = append(h, &cursor{run: idx[lo:hi], r: r})
		}
	}
	less := func(a, c *cursor) bool {
		d := cmp(b, a.run[a.pos], b, c.run[c.pos])
		if d != 0 {
			return d < 0
		}
		return a.r < c.r
	}
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	out := make([]int, 0, len(idx))
	for len(h) > 0 {
		c := h[0]
		out = append(out, c.run[c.pos])
		c.pos++
		if c.pos >= len(c.run) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		down(0)
	}
	return out
}

// compileVecJoinCmp compiles a merge join's aligned key sequence into a
// cross-schema columnar comparator: left column L[k] against right column
// R[k] under Dirs[k], on the typed planes when both sides store the same
// unboxed kind, the generic value compare otherwise (floats always — their
// NaN and cross-kind ordering is the generic path's). The sign contract is
// physical.JoinKeys.Compare's exactly.
func compileVecJoinCmp(ls, rs *schema.Schema, keys physical.JoinKeys) vecCmp {
	type key struct {
		lc, rc int
		kind   value.Kind // shared unboxed kind; KindInvalid = generic path
		desc   bool
	}
	ks := make([]key, len(keys.L))
	for i := range keys.L {
		k := ls.At(keys.L[i]).Kind
		if rs.At(keys.R[i]).Kind != k {
			k = value.KindInvalid
		}
		ks[i] = key{lc: keys.L[i], rc: keys.R[i], kind: k, desc: keys.Dirs[i] == relation.Desc}
	}
	return func(a *batch, ai int, b *batch, bi int) int {
		for _, k := range ks {
			ca, cb := &a.cols[k.lc], &b.cols[k.rc]
			var c int
			switch {
			case intPlaneKind(k.kind) && ca.kind == k.kind && cb.kind == k.kind:
				va, vb := ca.ints[ai], cb.ints[bi]
				switch {
				case va < vb:
					c = -1
				case va > vb:
					c = 1
				}
			case k.kind == value.KindString && ca.kind == value.KindString && cb.kind == value.KindString:
				va, vb := ca.strs[ai], cb.strs[bi]
				switch {
				case va < vb:
					c = -1
				case va > vb:
					c = 1
				}
			default:
				c = ca.at(ai).Compare(cb.at(bi))
			}
			if k.desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
}

// vecMergeJoinIter is mergeJoinIter over batches: the sorted right side
// drains into one compacted batch, a single group pointer advances
// monotonically as the sorted left batches stream through, and output rows
// assemble column-wise — each probe row pairing with its contiguous right
// key group in right-list order, the tuple merge join's exact left-major
// sequence at zero hashing cost.
type vecMergeJoinIter struct {
	e        *Engine
	left     vecIterator
	right    *source
	out      *schema.Schema
	lw, rw   int
	cmp      vecCmp // left key columns against right key columns
	residual expr.Pred
	temporal bool
	lt1, lt2 int

	built    bool
	rb       *batch
	periods  []period.Period
	ri, gEnd int // current right key group [ri, gEnd)

	pb      *batch
	pk      int // next presented row in pb
	cur     int // physical probe row parked on the cursor
	ci      int // next right row within the parked group
	curP    period.Period
	live    bool
	scratch relation.Tuple
}

func (m *vecMergeJoinIter) buildSide() error {
	rb, err := vecDrainOne(m.right.vecInput(), m.right.schema)
	if err != nil {
		return err
	}
	m.rb = rb
	if m.temporal {
		rt1, rt2 := m.right.schema.TimeIndices()
		m.periods = make([]period.Period, rb.n)
		for i := 0; i < rb.n; i++ {
			m.periods[i] = rb.periodAt(rt1, rt2, i)
		}
	}
	m.built = true
	return nil
}

// advance parks the cursor on the next probe row with a right key group,
// pulling probe batches as needed; false when the left is exhausted. Left
// rows arrive in key order, so the right pointer never moves backwards.
func (m *vecMergeJoinIter) advance() (bool, error) {
	for {
		if m.pb == nil || m.pk >= m.pb.rows() {
			b, err := m.left.nextBatch()
			if err != nil {
				return false, err
			}
			if b == nil {
				return false, nil
			}
			m.pb, m.pk = b, 0
			continue
		}
		i := m.pb.rowIndex(m.pk)
		m.pk++
		cmp := -1 // right side exhausted: no match for any further left key
		for m.ri < m.rb.n {
			cmp = m.cmp(m.pb, i, m.rb, m.ri)
			if cmp <= 0 {
				break
			}
			m.ri++
		}
		if cmp == 0 {
			if m.gEnd <= m.ri {
				m.gEnd = m.ri + 1
				for m.gEnd < m.rb.n && m.cmp(m.pb, i, m.rb, m.gEnd) == 0 {
					m.gEnd++
				}
			}
			m.cur = i
			m.ci = m.ri
			if m.temporal {
				m.curP = m.pb.periodAt(m.lt1, m.lt2, i)
			}
			return true, nil
		}
	}
}

func (m *vecMergeJoinIter) nextBatch() (*batch, error) {
	if !m.built {
		if err := m.buildSide(); err != nil {
			return nil, err
		}
		ok, err := m.advance()
		if err != nil {
			return nil, err
		}
		m.live = ok
	}
	if !m.live {
		return nil, nil
	}
	out := newBatch(m.out, vecBatchRows)
	for m.live {
		for m.ci < m.gEnd {
			ri := m.ci
			m.ci++
			var iv period.Period
			if m.temporal {
				iv = m.curP.Intersect(m.periods[ri])
				if iv.Empty() {
					continue
				}
			}
			if m.residual != nil {
				ok, err := m.residualHolds(ri, iv)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			for c := 0; c < m.lw; c++ {
				out.cols[c].appendFrom(&m.pb.cols[c], m.cur)
			}
			for c := 0; c < m.rw; c++ {
				out.cols[m.lw+c].appendFrom(&m.rb.cols[c], ri)
			}
			if m.temporal {
				out.cols[m.lw+m.rw].append(value.Time(iv.Start))
				out.cols[m.lw+m.rw+1].append(value.Time(iv.End))
			}
			out.n++
		}
		if out.n >= vecBatchRows {
			break
		}
		ok, err := m.advance()
		if err != nil {
			return nil, err
		}
		m.live = ok
	}
	if out.n == 0 {
		return nil, nil
	}
	m.e.stats.VectorBatches++
	return out, nil
}

// residualHolds evaluates the fused residual on the would-be output row,
// assembled into a reused scratch tuple exactly as the hash join does.
func (m *vecMergeJoinIter) residualHolds(ri int, iv period.Period) (bool, error) {
	if m.scratch == nil {
		width := m.lw + m.rw
		if m.temporal {
			width += 2
		}
		m.scratch = make(relation.Tuple, width)
	}
	for c := 0; c < m.lw; c++ {
		m.scratch[c] = m.pb.cols[c].at(m.cur)
	}
	for c := 0; c < m.rw; c++ {
		m.scratch[m.lw+c] = m.rb.cols[c].at(ri)
	}
	if m.temporal {
		m.scratch[m.lw+m.rw] = value.Time(iv.Start)
		m.scratch[m.lw+m.rw+1] = value.Time(iv.End)
	}
	return m.residual.Holds(m.out, m.scratch)
}

func (m *vecMergeJoinIter) close() error { return m.left.close() }
