package exec

import (
	"sort"

	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// This file holds the batch-at-a-time operator variants. Each mirrors the
// semantics of the hash fallback it replaces exactly — first-occurrence
// group order, left-major/right-list join order, group-local temporal
// transforms re-interleaved by original position — so the columnar engine
// stays bit-identical to the tuple engine; only the storage layout and the
// per-row constant factors change. The builders install a columnar variant
// only when the stage's input itself compiled columnar (regions grow
// outward from scans) and e.columnar() holds, so the merge, parallel and
// grace variants keep their existing precedence untouched.

// onceBatchIter defers a batch-producing computation to the first pull and
// emits its result as a single batch; the columnar counterpart of lazyIter.
type onceBatchIter struct {
	compute func() (*batch, error)
	done    bool
}

func (o *onceBatchIter) nextBatch() (*batch, error) {
	if o.done {
		return nil, nil
	}
	o.done = true
	b, err := o.compute()
	if err != nil {
		return nil, err
	}
	if b == nil || b.rows() == 0 {
		return nil, nil
	}
	return b, nil
}

func (o *onceBatchIter) close() error { return nil }

// vecPred is a predicate compiled against columnar input: evaluated on the
// physical row i of b without materializing a tuple.
type vecPred func(b *batch, i int) (bool, error)

// compileVecPred builds a columnar evaluator for p over s, or nil when p
// contains a shape the compiler does not specialize (arithmetic, period
// predicates); the caller then falls back to scratch-tuple evaluation.
// Comparisons reconstruct values straight off the columns and reuse
// value.Compare, so the result is the one Pred.Holds computes.
func compileVecPred(p expr.Pred, s *schema.Schema) vecPred {
	switch q := p.(type) {
	case expr.TruePred:
		return func(*batch, int) (bool, error) { return true, nil }
	case expr.Not:
		inner := compileVecPred(q.P, s)
		if inner == nil {
			return nil
		}
		return func(b *batch, i int) (bool, error) {
			ok, err := inner(b, i)
			return !ok, err
		}
	case expr.And:
		l, r := compileVecPred(q.L, s), compileVecPred(q.R, s)
		if l == nil || r == nil {
			return nil
		}
		return func(b *batch, i int) (bool, error) {
			ok, err := l(b, i)
			if err != nil || !ok {
				return false, err
			}
			return r(b, i)
		}
	case expr.Or:
		l, r := compileVecPred(q.L, s), compileVecPred(q.R, s)
		if l == nil || r == nil {
			return nil
		}
		return func(b *batch, i int) (bool, error) {
			ok, err := l(b, i)
			if err != nil || ok {
				return ok, err
			}
			return r(b, i)
		}
	case expr.Cmp:
		if fast := compileTypedCmp(q, s); fast != nil {
			return fast
		}
		lv := compileVecExpr(q.L, s)
		rv := compileVecExpr(q.R, s)
		if lv == nil || rv == nil {
			return nil
		}
		op := q.Op
		return func(b *batch, i int) (bool, error) {
			cr := lv(b, i).Compare(rv(b, i))
			return cmpHolds(op, cr), nil
		}
	}
	return nil
}

// cmpHolds applies a comparison operator to a three-way Compare result.
func cmpHolds(op expr.CmpOp, cr int) bool {
	switch op {
	case expr.Eq:
		return cr == 0
	case expr.Ne:
		return cr != 0
	case expr.Lt:
		return cr < 0
	case expr.Le:
		return cr <= 0
	case expr.Gt:
		return cr > 0
	default:
		return cr >= 0
	}
}

// intCmp returns op as a direct int64 comparison — exact for same-kind
// int, bool and time values, whose canonical Compare is the payload order.
func intCmp(op expr.CmpOp) func(a, b int64) bool {
	switch op {
	case expr.Eq:
		return func(a, b int64) bool { return a == b }
	case expr.Ne:
		return func(a, b int64) bool { return a != b }
	case expr.Lt:
		return func(a, b int64) bool { return a < b }
	case expr.Le:
		return func(a, b int64) bool { return a <= b }
	case expr.Gt:
		return func(a, b int64) bool { return a > b }
	default:
		return func(a, b int64) bool { return a >= b }
	}
}

// strCmp is intCmp's string-plane counterpart.
func strCmp(op expr.CmpOp) func(a, b string) bool {
	switch op {
	case expr.Eq:
		return func(a, b string) bool { return a == b }
	case expr.Ne:
		return func(a, b string) bool { return a != b }
	case expr.Lt:
		return func(a, b string) bool { return a < b }
	case expr.Le:
		return func(a, b string) bool { return a <= b }
	case expr.Gt:
		return func(a, b string) bool { return a > b }
	default:
		return func(a, b string) bool { return a >= b }
	}
}

// compileTypedCmp specializes Col-vs-Lit and Col-vs-Col comparisons to read
// the typed column planes directly — no value.Value construction, no
// generic Compare — whenever the runtime storage kind matches the schema
// kind the closure was compiled for. Only exact-payload kinds specialize:
// int, bool and time compare as their int64 payloads and strings as
// strings, exactly value.Compare's same-kind order. Floats (NaN, cross-kind
// numeric equality) and demoted columns take the generic path, which every
// closure falls back to per row when the plane check fails.
func compileTypedCmp(q expr.Cmp, s *schema.Schema) vecPred {
	generic := func(op expr.CmpOp) func(a, b value.Value) bool {
		return func(a, b value.Value) bool { return cmpHolds(op, a.Compare(b)) }
	}
	intPlane := func(k value.Kind) bool {
		return k == value.KindInt || k == value.KindBool || k == value.KindTime
	}
	lcol, lok := q.L.(expr.Col)
	if !lok {
		return nil
	}
	li := s.Index(lcol.Name)
	if li < 0 {
		return nil
	}
	lk := s.At(li).Kind
	switch r := q.R.(type) {
	case expr.Lit:
		lit := r.Val
		if intPlane(lk) && lk == lit.Kind() {
			var k int64
			switch lk {
			case value.KindInt:
				k = lit.AsInt()
			case value.KindBool:
				if lit.AsBool() {
					k = 1
				}
			default:
				k = int64(lit.AsTime())
			}
			cmp, slow := intCmp(q.Op), generic(q.Op)
			return func(b *batch, i int) (bool, error) {
				if c := &b.cols[li]; c.kind == lk {
					return cmp(c.ints[i], k), nil
				}
				return slow(b.cols[li].at(i), lit), nil
			}
		}
		if lk == value.KindString && lit.Kind() == value.KindString {
			k := lit.AsString()
			cmp, slow := strCmp(q.Op), generic(q.Op)
			return func(b *batch, i int) (bool, error) {
				if c := &b.cols[li]; c.kind == value.KindString {
					return cmp(c.strs[i], k), nil
				}
				return slow(b.cols[li].at(i), lit), nil
			}
		}
	case expr.Col:
		ri := s.Index(r.Name)
		if ri < 0 {
			return nil
		}
		rk := s.At(ri).Kind
		if intPlane(lk) && lk == rk {
			cmp, slow := intCmp(q.Op), generic(q.Op)
			return func(b *batch, i int) (bool, error) {
				lc, rc := &b.cols[li], &b.cols[ri]
				if lc.kind == lk && rc.kind == lk {
					return cmp(lc.ints[i], rc.ints[i]), nil
				}
				return slow(lc.at(i), rc.at(i)), nil
			}
		}
		if lk == value.KindString && rk == value.KindString {
			cmp, slow := strCmp(q.Op), generic(q.Op)
			return func(b *batch, i int) (bool, error) {
				lc, rc := &b.cols[li], &b.cols[ri]
				if lc.kind == value.KindString && rc.kind == value.KindString {
					return cmp(lc.strs[i], rc.strs[i]), nil
				}
				return slow(lc.at(i), rc.at(i)), nil
			}
		}
	}
	return nil
}

// compileVecExpr specializes a scalar expression to a column read or a
// constant; nil for any other shape.
func compileVecExpr(e expr.Expr, s *schema.Schema) func(b *batch, i int) value.Value {
	switch x := e.(type) {
	case expr.Col:
		ci := s.Index(x.Name)
		if ci < 0 {
			return nil
		}
		return func(b *batch, i int) value.Value { return b.cols[ci].at(i) }
	case expr.Lit:
		v := x.Val
		return func(*batch, int) value.Value { return v }
	}
	return nil
}

// vecFilterIter is the columnar σ_P: per input batch it evaluates the
// predicate over the presented rows and emits a selection-vector view — no
// row is copied, a fully-passing batch passes through as-is.
type vecFilterIter struct {
	e       *Engine
	in      vecIterator
	p       expr.Pred
	schema  *schema.Schema
	fast    vecPred
	scratch relation.Tuple
}

func (f *vecFilterIter) holds(b *batch, i int) (bool, error) {
	if f.fast != nil {
		return f.fast(b, i)
	}
	if f.scratch == nil {
		f.scratch = make(relation.Tuple, f.schema.Len())
	}
	b.fillTuple(f.scratch, i)
	return f.p.Holds(f.schema, f.scratch)
}

func (f *vecFilterIter) nextBatch() (*batch, error) {
	for {
		b, err := f.in.nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		// Preallocate the selection at the only bound that is always right
		// (every row passes): one allocation per input batch instead of a
		// growslice doubling chain — on a full scan batch the copies and
		// the GC churn they cause would dominate the filter itself. The
		// slice cannot be reused across batches: the emitted view owns it,
		// and downstream group operators retain batches.
		n := b.rows()
		sel := make([]int, 0, n)
		pass := 0
		for k := 0; k < n; k++ {
			i := b.rowIndex(k)
			ok, err := f.holds(b, i)
			if err != nil {
				return nil, err
			}
			if ok {
				pass++
				sel = append(sel, i)
			}
		}
		if pass == 0 {
			continue
		}
		f.e.stats.VectorBatches++
		if pass == n {
			return b, nil
		}
		return b.withSel(sel), nil
	}
}

func (f *vecFilterIter) close() error { return f.in.close() }

// vecProjectIter is the columnar π. A projection whose items are all bare
// column references is a zero-copy column gather — the output batch shares
// the input's storage and selection; anything else evaluates row-at-a-time
// into a fresh batch through a reused scratch tuple.
type vecProjectIter struct {
	e         *Engine
	in        vecIterator
	items     []projVecItem
	gather    bool // every item is a plain column reference
	inSchema  *schema.Schema
	outSchema *schema.Schema
	scratch   relation.Tuple
}

// projVecItem is one compiled projection item: a source column index when
// the item is a bare reference, else the expression to evaluate.
type projVecItem struct {
	col  int
	eval expr.Expr
}

func compileProjItems(items []projVecItem, in *schema.Schema) bool {
	gather := true
	for i := range items {
		items[i].col = -1
		if c, ok := items[i].eval.(expr.Col); ok {
			if ci := in.Index(c.Name); ci >= 0 {
				items[i].col = ci
				continue
			}
		}
		gather = false
	}
	return gather
}

func (p *vecProjectIter) nextBatch() (*batch, error) {
	b, err := p.in.nextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	p.e.stats.VectorBatches++
	if p.gather {
		out := &batch{schema: p.outSchema, cols: make([]colvec, len(p.items)), n: b.n, sel: b.sel}
		for k, it := range p.items {
			out.cols[k] = b.cols[it.col]
		}
		return out, nil
	}
	n := b.rows()
	out := newBatch(p.outSchema, n)
	if p.scratch == nil {
		p.scratch = make(relation.Tuple, p.inSchema.Len())
	}
	for k := 0; k < n; k++ {
		i := b.rowIndex(k)
		for c, it := range p.items {
			if it.col >= 0 {
				out.cols[c].appendFrom(&b.cols[it.col], i)
				continue
			}
			b.fillTuple(p.scratch, i)
			v, err := it.eval.Eval(p.inSchema, p.scratch)
			if err != nil {
				return nil, err
			}
			out.cols[c].append(v)
		}
	}
	out.n = n
	return out, nil
}

func (p *vecProjectIter) close() error { return p.in.close() }

// vecRdupIter is the columnar rdup: a streaming hash set over the columns,
// emitting each batch's first-occurrence rows as a selection view. The set
// holds (batch, row) references, so surviving rows are never copied.
type vecRdupIter struct {
	e    *Engine
	in   vecIterator
	seen *vecGroups
}

func (r *vecRdupIter) nextBatch() (*batch, error) {
	for {
		b, err := r.in.nextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		if r.seen == nil {
			r.seen = newVecGroups(identityIdx(len(b.cols)), 0)
		}
		var sel []int
		n := b.rows()
		for k := 0; k < n; k++ {
			i := b.rowIndex(k)
			if _, fresh := r.seen.groupOf(b, i); fresh {
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			continue
		}
		r.e.stats.VectorBatches++
		if b.sel == nil && len(sel) == n {
			return b, nil
		}
		return b.withSel(sel), nil
	}
}

func (r *vecRdupIter) close() error { return r.in.close() }

// vecJoinIter is the columnar equi-key × / ×ᵀ: the build side drains into
// one batch plus a columnar hash table, then probe batches stream through,
// each probe row pairing with its key group in right-list order. Output
// rows are assembled column-wise — the hash fallback's per-pair tuple
// allocation disappears — and the emission order is exactly productIter's
// left-major sequence.
type vecJoinIter struct {
	e        *Engine
	left     vecIterator
	right    *source
	out      *schema.Schema
	lw, rw   int
	lidx     []int
	ridx     []int
	residual expr.Pred
	temporal bool
	lt1, lt2 int

	built   bool // the shared build state below is ready
	started bool // this iterator's probe cursor has taken its first step
	build   *batch
	periods []period.Period
	table   *vecGroups
	members [][]int

	pb       *batch // current probe batch
	pk       int    // next presented row in pb
	curProbe int    // physical index of the probe row the cursor is on
	ci       int    // next candidate within cand
	cand     []int
	curP     period.Period
	live     bool // a probe row with candidates is parked on the cursor
	scratch  relation.Tuple
}

func (j *vecJoinIter) buildSide() error {
	b, err := vecDrainOne(j.right.vecInput(), j.right.schema)
	if err != nil {
		return err
	}
	j.build = b
	if j.temporal {
		rt1, rt2 := j.right.schema.TimeIndices()
		j.periods = make([]period.Period, b.n)
		for i := 0; i < b.n; i++ {
			j.periods[i] = b.periodAt(rt1, rt2, i)
		}
	}
	j.table = newVecGroups(j.ridx, b.n)
	for i := 0; i < b.n; i++ {
		gid, fresh := j.table.groupOf(b, i)
		if fresh {
			j.members = append(j.members, nil)
		}
		j.members[gid] = append(j.members[gid], i)
	}
	j.built = true
	return nil
}

// advance positions the candidate cursor on the next probe row with a key
// match, pulling probe batches as needed; false when the left is exhausted.
func (j *vecJoinIter) advance() (bool, error) {
	for {
		if j.pb == nil || j.pk >= j.pb.rows() {
			b, err := j.left.nextBatch()
			if err != nil {
				return false, err
			}
			if b == nil {
				return false, nil
			}
			j.pb, j.pk = b, 0
			continue
		}
		i := j.pb.rowIndex(j.pk)
		j.pk++
		if gid := j.table.lookup(j.pb, i, j.lidx); gid >= 0 {
			j.cand = j.members[gid]
			j.ci = 0
			if j.temporal {
				j.curP = j.pb.periodAt(j.lt1, j.lt2, i)
			}
			// Park the probe row index in cand's cursor state: emit pairs
			// against it until the candidate list is spent.
			j.curProbe = i
			return true, nil
		}
	}
}

func (j *vecJoinIter) nextBatch() (*batch, error) {
	if !j.built {
		if err := j.buildSide(); err != nil {
			return nil, err
		}
	}
	// The probe cursor starts separately from the build: the parallel join
	// hands each worker a copy with the build state already shared (built
	// but not started), and every copy advances its own probe range.
	if !j.started {
		j.started = true
		ok, err := j.advance()
		if err != nil {
			return nil, err
		}
		j.live = ok
	}
	if !j.live {
		return nil, nil
	}
	out := newBatch(j.out, vecBatchRows)
	for j.live {
		for j.ci < len(j.cand) {
			ri := j.cand[j.ci]
			j.ci++
			var iv period.Period
			if j.temporal {
				iv = j.curP.Intersect(j.periods[ri])
				if iv.Empty() {
					continue
				}
			}
			if j.residual != nil {
				ok, err := j.residualHolds(ri, iv)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			for c := 0; c < j.lw; c++ {
				out.cols[c].appendFrom(&j.pb.cols[c], j.curProbe)
			}
			for c := 0; c < j.rw; c++ {
				out.cols[j.lw+c].appendFrom(&j.build.cols[c], ri)
			}
			if j.temporal {
				out.cols[j.lw+j.rw].append(value.Time(iv.Start))
				out.cols[j.lw+j.rw+1].append(value.Time(iv.End))
			}
			out.n++
		}
		if out.n >= vecBatchRows {
			break
		}
		ok, err := j.advance()
		if err != nil {
			return nil, err
		}
		j.live = ok
	}
	if out.n == 0 {
		return nil, nil
	}
	// Worker copies in the parallel join run with e == nil: the spawner
	// owns the batch counter, so concurrent workers never race on stats.
	if j.e != nil {
		j.e.stats.VectorBatches++
	}
	return out, nil
}

// residualHolds evaluates the fused residual predicate on the would-be
// output row, assembled into a reused scratch tuple exactly as the hash
// join assembles its buffer.
func (j *vecJoinIter) residualHolds(ri int, iv period.Period) (bool, error) {
	if j.scratch == nil {
		width := j.lw + j.rw
		if j.temporal {
			width += 2
		}
		j.scratch = make(relation.Tuple, width)
	}
	for c := 0; c < j.lw; c++ {
		j.scratch[c] = j.pb.cols[c].at(j.curProbe)
	}
	for c := 0; c < j.rw; c++ {
		j.scratch[j.lw+c] = j.build.cols[c].at(ri)
	}
	if j.temporal {
		j.scratch[j.lw+j.rw] = value.Time(iv.Start)
		j.scratch[j.lw+j.rw+1] = value.Time(iv.End)
	}
	return j.residual.Holds(j.out, j.scratch)
}

func (j *vecJoinIter) close() error { return j.left.close() }

// vspan is one period fragment of a value-equivalence group during columnar
// temporal grouping: the physical row its values come from (which is also
// its original list position — the merge key) plus its current period. The
// value columns are never touched until the final gather, so the temporal
// algorithms below run on 24-byte structs instead of tuples.
type vspan struct {
	src int
	p   period.Period
}

// spansSortedDisjoint mirrors sortedDisjoint on spans.
func spansSortedDisjoint(ss []vspan) bool {
	for i, s := range ss {
		if s.p.Empty() {
			return false
		}
		if i > 0 && s.p.Start < ss[i-1].p.End {
			return false
		}
	}
	return true
}

// rdupTSpans mirrors rdupTGroup: the paper's iterative head/subtract
// algorithm on one value-equivalence group, reading and writing only
// periods. Fragments inherit their source row.
func rdupTSpans(ss []vspan) []vspan {
	if spansSortedDisjoint(ss) {
		return ss
	}
	for i := 0; i < len(ss); i++ {
		head := ss[i]
		for {
			j := -1
			for x := i + 1; x < len(ss); x++ {
				if ss[x].p.Overlaps(head.p) {
					j = x
					break
				}
			}
			if j < 0 {
				break
			}
			frags := ss[j].p.Subtract(head.p)
			repl := make([]vspan, 0, 2)
			for _, f := range frags {
				repl = append(repl, vspan{src: ss[j].src, p: f})
			}
			ss = append(ss[:j], append(repl, ss[j+1:]...)...)
		}
	}
	return ss
}

// coalTSpans mirrors coalTGroup: group-local adjacency merging, the merged
// span keeping the earlier row's values.
func coalTSpans(ss []vspan) []vspan {
	if spansSortedDisjoint(ss) {
		return coalesceOnePassSpans(ss)
	}
	for i := 0; i < len(ss); {
		merged := false
		for j := i + 1; j < len(ss); j++ {
			if !ss[i].p.Adjacent(ss[j].p) {
				continue
			}
			u, _ := ss[i].p.Union(ss[j].p)
			ss[i].p = u
			ss = append(ss[:j], ss[j+1:]...)
			merged = true
			break
		}
		if !merged {
			i++
		}
	}
	return ss
}

// coalesceOnePassSpans mirrors coalesceOnePass on spans.
func coalesceOnePassSpans(ss []vspan) []vspan {
	if len(ss) == 0 {
		return ss
	}
	out := ss[:0:0]
	cur := ss[0]
	for _, s := range ss[1:] {
		if cur.p.End == s.p.Start {
			cur.p.End = s.p.End
			continue
		}
		out = append(out, cur)
		cur = s
	}
	return append(out, cur)
}

// vecValueGroupSource compiles the columnar rdupᵀ / coalᵀ: drain the input
// into one batch, partition rows by value equivalence off the columns, run
// the span-level transform group-locally, stable-merge the surviving spans
// back into original list order, and gather the result column-wise — value
// columns copied straight from the input batch, period columns written from
// the spans. This is the hash fallback's drain → group → transform →
// mergeByOrig pipeline with the per-row tuple work removed.
func (e *Engine) vecValueGroupSource(in *source, vidx []int, order relation.OrderSpec, transform func([]vspan) []vspan) *source {
	e.stats.VectorOps++
	t1, t2 := in.schema.TimeIndices()
	compute := func() (*batch, error) {
		b, err := vecDrainOne(in.vec, in.schema)
		if err != nil {
			return nil, err
		}
		contiguous := groupsContiguous(in.order, in.schema, vidx)
		groups := vecGroupRows(b, vidx, contiguous)
		var all []vspan
		for _, members := range groups {
			ss := make([]vspan, len(members))
			for k, i := range members {
				ss[k] = vspan{src: i, p: b.periodAt(t1, t2, i)}
			}
			all = append(all, transform(ss)...)
		}
		// src doubles as the original list position, so the stable sort is
		// exactly mergeByOrig: fragments of one row keep their order.
		sort.SliceStable(all, func(x, y int) bool { return all[x].src < all[y].src })
		out := newBatch(in.schema, len(all))
		for _, c := range vidx {
			col := &out.cols[c]
			for _, s := range all {
				col.appendFrom(&b.cols[c], s.src)
			}
		}
		for _, s := range all {
			out.cols[t1].append(value.Time(s.p.Start))
			out.cols[t2].append(value.Time(s.p.End))
		}
		out.n = len(all)
		e.stats.VectorBatches++
		return out, nil
	}
	return vecSource(&onceBatchIter{compute: compute}, in.schema, order)
}

// vecAggregateSource compiles the columnar 𝒢 hash path: batches stream
// into per-group accumulators keyed off the columns, grouping keys are
// read back from the group representatives' column positions, and one
// tuple per group emits in first-occurrence order.
func (e *Engine) vecAggregateSource(in *source, gidx []int, outSchema *schema.Schema, order relation.OrderSpec, aggs []expr.Aggregate) *source {
	e.stats.VectorOps++
	return lazySource(outSchema, order, func() ([]relation.Tuple, error) {
		groups := newVecGroups(gidx, 0)
		var accs [][]*expr.Accumulator
		scratch := make(relation.Tuple, in.schema.Len())
		for {
			b, err := in.vec.nextBatch()
			if err != nil {
				in.vec.close()
				return nil, err
			}
			if b == nil {
				break
			}
			e.stats.VectorBatches++
			n := b.rows()
			for k := 0; k < n; k++ {
				i := b.rowIndex(k)
				gid, fresh := groups.groupOf(b, i)
				if fresh {
					accs = append(accs, eval.NewAccumulators(aggs, in.schema))
				}
				b.fillTuple(scratch, i)
				if err := eval.FoldAggregates(accs[gid], aggs, in.schema, scratch); err != nil {
					return nil, err
				}
			}
		}
		if err := in.vec.close(); err != nil {
			return nil, err
		}
		out := make([]relation.Tuple, 0, groups.size())
		for gid := 0; gid < groups.size(); gid++ {
			nt := make(relation.Tuple, 0, outSchema.Len())
			rb, ri := groups.repB[gid], groups.repRow[gid]
			for _, gi := range gidx {
				nt = append(nt, rb.cols[gi].at(ri))
			}
			for _, acc := range accs[gid] {
				nt = append(nt, acc.Result())
			}
			out = append(out, nt)
		}
		return out, nil
	})
}

// vecGroupEmitSource compiles the columnar 𝒢ᵀ hash path: drain into one
// batch, partition by grouping columns off the columns, then hand each
// group — materialized once — to the shared per-group emitter.
func (e *Engine) vecGroupEmitSource(in *source, gidx []int, outSchema *schema.Schema, order relation.OrderSpec, groupOut func([]relation.Tuple) ([]relation.Tuple, error)) *source {
	e.stats.VectorOps++
	return lazySource(outSchema, order, func() ([]relation.Tuple, error) {
		b, err := vecDrainOne(in.vec, in.schema)
		if err != nil {
			return nil, err
		}
		e.stats.VectorBatches++
		contiguous := groupsContiguous(in.order, in.schema, gidx)
		groups := vecGroupRows(b, gidx, contiguous)
		var out []relation.Tuple
		for _, members := range groups {
			group := make([]relation.Tuple, len(members))
			for x, i := range members {
				group[x] = b.tupleAt(i)
			}
			res, err := groupOut(group)
			if err != nil {
				return nil, err
			}
			out = append(out, res...)
		}
		return out, nil
	})
}
