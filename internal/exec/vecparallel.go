// Columnar variants of the morsel-parallel exchanges (parallel.go): the
// scatter routes presented row positions — not copied tuples — into
// per-worker partitions by hashing straight off the column planes, the
// per-partition bodies run the columnar group table, and the gather merges
// the partitions' ascending survivor positions back into one selection
// view over the shared, unmoved planes. Because the scatter preserves
// arrival order within each partition and the canonical hash is
// bit-identical to Tuple.HashOn, the merged selection equals the tuple
// exchange's sequence-key gather exactly.
package exec

import (
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// vecHashPartition scatters a compacted batch's physical rows into p
// partitions by the canonical hash of the key columns, preserving row order
// within each partition (each partition's list is ascending).
func vecHashPartition(b *batch, idx []int, p int) [][]int {
	counts := make([]int, p)
	buckets := make([]int32, b.n)
	for i := 0; i < b.n; i++ {
		h := value.HashSeed()
		for _, c := range idx {
			h = b.cols[c].hashInto(i, h)
		}
		bk := int(h % uint64(p))
		buckets[i] = int32(bk)
		counts[bk]++
	}
	parts := make([][]int, p)
	for bk := range parts {
		parts[bk] = make([]int, 0, counts[bk])
	}
	for i := 0; i < b.n; i++ {
		bk := buckets[i]
		parts[bk] = append(parts[bk], i)
	}
	return parts
}

// mergeAscending merges disjoint ascending int lists into one ascending
// list — the selection-vector form of the tagged sequence-key gather (a
// survivor's physical row index is its arrival position in the compacted
// batch, which is exactly the tag the tuple exchange would carry).
func mergeAscending(parts [][]int) []int {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]int, 0, total)
	pos := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for p := range parts {
			if pos[p] >= len(parts[p]) {
				continue
			}
			if best < 0 || parts[p][pos[p]] < parts[best][pos[best]] {
				best = p
			}
		}
		out = append(out, parts[best][pos[best]])
		pos[best]++
	}
	return out
}

// lazyBatchesIter computes a fixed batch list on first pull and emits the
// non-empty entries in order.
type lazyBatchesIter struct {
	compute func() ([]*batch, error)
	started bool
	bs      []*batch
	k       int
}

func (it *lazyBatchesIter) nextBatch() (*batch, error) {
	if !it.started {
		bs, err := it.compute()
		if err != nil {
			return nil, err
		}
		it.bs, it.started = bs, true
	}
	for it.k < len(it.bs) {
		b := it.bs[it.k]
		it.k++
		if b != nil && b.rows() > 0 {
			return b, nil
		}
	}
	return nil, nil
}

func (it *lazyBatchesIter) close() error { return nil }

// vecParallelRdupSource is the columnar parallel rdup: the input drains
// into one compacted batch, rows scatter by full-row hash across the
// worker pool, each partition keeps its first occurrences via the columnar
// group table, and the ascending survivor merge restores first-occurrence
// order — one selection view, no tuple ever built.
func (e *Engine) vecParallelRdupSource(in *source, outSchema *schema.Schema, order relation.OrderSpec) *source {
	workers := e.exchange()
	e.stats.VectorOps++
	sch := in.schema
	idx := identityIdx(sch.Len())
	compute := func() ([]*batch, error) {
		b, err := vecDrainOne(in.vecInput(), sch)
		if err != nil {
			return nil, err
		}
		if b.n == 0 {
			return nil, nil
		}
		parts := vecHashPartition(b, idx, workers)
		survivors := make([][]int, len(parts))
		if err := runTasks(workers, len(parts), func(p int) error {
			rows := parts[p]
			groups := newVecGroups(idx, len(rows))
			sel := make([]int, 0, len(rows))
			for _, i := range rows {
				if _, fresh := groups.groupOf(b, i); fresh {
					sel = append(sel, i)
				}
			}
			survivors[p] = sel
			return nil
		}); err != nil {
			return nil, err
		}
		e.stats.VectorBatches++
		return []*batch{b.withSel(mergeAscending(survivors))}, nil
	}
	return vecSource(&lazyBatchesIter{compute: compute}, outSchema, order)
}

// rangeBatchIter presents one contiguous physical-row range of a compacted
// batch as a single-batch columnar stream — an offset slice over the shared
// planes, so a worker scans its range with no selection indirection and
// nothing is copied.
type rangeBatchIter struct {
	b      *batch
	lo, hi int
	done   bool
}

func (it *rangeBatchIter) nextBatch() (*batch, error) {
	if it.done || it.lo >= it.hi {
		return nil, nil
	}
	it.done = true
	return it.b.rangeView(it.lo, it.hi), nil
}

func (it *rangeBatchIter) close() error { return nil }

// vecParallelJoinSource is the columnar parallel equi-key × / ×ᵀ: the build
// side drains once into the shared columnar hash table, the probe side
// drains into one compacted batch whose physical rows split into contiguous
// worker ranges, each worker streams its range through its own probe cursor
// over the shared read-only table, and the workers' output batches
// concatenate in range order — which is exactly the sequential join's
// left-major emission order, so no tag gather is needed.
func (e *Engine) vecParallelJoinSource(l, r *source, out *schema.Schema, lidx, ridx []int, residual expr.Pred, temporal bool, order relation.OrderSpec) *source {
	workers := e.exchange()
	e.stats.VectorOps++
	tmpl := &vecJoinIter{
		right: r, out: out, lw: l.schema.Len(), rw: r.schema.Len(),
		lidx: lidx, ridx: ridx, residual: residual, temporal: temporal,
	}
	if temporal {
		tmpl.lt1, tmpl.lt2 = l.schema.TimeIndices()
	}
	compute := func() ([]*batch, error) {
		// The view drain: a filtered scan arrives as one selection view and
		// splits by presented rows — compacting 50% of a million-row batch
		// before the scatter would cost more than the exchange saves.
		pb, err := vecDrainOneView(l.vecInput(), l.schema)
		if err != nil {
			r.it.close()
			return nil, err
		}
		if err := tmpl.buildSide(); err != nil {
			return nil, err
		}
		rows := pb.rows()
		if rows == 0 || tmpl.build.n == 0 {
			return nil, nil
		}
		outs := make([][]*batch, workers)
		if err := runTasks(workers, workers, func(p int) error {
			// Worker copy: shared build table (read-only after buildSide),
			// own probe cursor. The template's engine is nil, so the copies
			// never write stats concurrently — the batch count below is the
			// spawner's.
			w := *tmpl
			w.left = &rangeBatchIter{b: pb, lo: p * rows / workers, hi: (p + 1) * rows / workers}
			for {
				ob, err := w.nextBatch()
				if err != nil {
					return err
				}
				if ob == nil {
					return nil
				}
				outs[p] = append(outs[p], ob)
			}
		}); err != nil {
			return nil, err
		}
		var bs []*batch
		for _, o := range outs {
			bs = append(bs, o...)
		}
		e.stats.VectorBatches += len(bs)
		return bs, nil
	}
	return vecSource(&lazyBatchesIter{compute: compute}, out, order)
}

// vecParallelBudgetedSource is the columnar core of parallel \ and ∪: both
// sides drain to compacted batches and scatter by full-row hash with the
// same partition function, fund rows build per-key multiplicity budgets in
// each partition, scan rows stream against them with budget hits
// cancelling, and the surviving scan positions merge ascending. For diff
// (budgetLeft=false) the survivors view the left batch; for union
// (budgetLeft=true) the whole left batch emits first with the survivors
// viewing the right batch behind it.
func (e *Engine) vecParallelBudgetedSource(l, r *source, budgetLeft bool) *source {
	workers := e.exchange()
	e.stats.VectorOps++
	sch := l.schema
	idx := identityIdx(sch.Len())
	compute := func() ([]*batch, error) {
		lb, err := vecDrainOne(l.vecInput(), sch)
		if err != nil {
			r.it.close()
			return nil, err
		}
		rb, err := vecDrainOne(r.vecInput(), r.schema)
		if err != nil {
			return nil, err
		}
		fb, sb := rb, lb
		if budgetLeft {
			fb, sb = lb, rb
		}
		fundParts := vecHashPartition(fb, idx, workers)
		scanParts := vecHashPartition(sb, idx, workers)
		survivors := make([][]int, workers)
		if err := runTasks(workers, workers, func(p int) error {
			groups := newVecGroups(idx, len(fundParts[p]))
			var budget []int
			for _, i := range fundParts[p] {
				gid, fresh := groups.groupOf(fb, i)
				if fresh {
					budget = append(budget, 0)
				}
				budget[gid]++
			}
			sel := make([]int, 0, len(scanParts[p]))
			for _, i := range scanParts[p] {
				if gid := groups.lookup(sb, i, idx); gid >= 0 && budget[gid] > 0 {
					budget[gid]--
					continue
				}
				sel = append(sel, i)
			}
			survivors[p] = sel
			return nil
		}); err != nil {
			return nil, err
		}
		merged := mergeAscending(survivors)
		if !budgetLeft {
			if len(merged) == 0 {
				return nil, nil
			}
			e.stats.VectorBatches++
			return []*batch{lb.withSel(merged)}, nil
		}
		var bs []*batch
		if lb.n > 0 {
			bs = append(bs, lb)
		}
		if len(merged) > 0 {
			bs = append(bs, rb.withSel(merged))
		}
		e.stats.VectorBatches += len(bs)
		return bs, nil
	}
	return vecSource(&lazyBatchesIter{compute: compute}, sch, nil)
}
