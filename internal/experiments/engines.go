package experiments

import (
	"math/rand"
	"time"

	"tqp/internal/algebra"
	"tqp/internal/datagen"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/testutil"
)

// E11Engines is an extension experiment: the streaming hash-based exec
// engine head-to-head against the reference evaluator. It verifies
// differential parity (identical result lists and Table 1 order annotations
// on random conventional+temporal plans) and measures the wall-clock
// speedup of the hash pipeline on an equijoin → rdupᵀ → coalᵀ plan — the
// shape whose nested-loop evaluation dominates the reference's cost.
func E11Engines() Report {
	b := newReport()

	plans, mismatches := 0, 0
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalog(seed)
		ref := eval.New(c)
		ex := exec.New(c)
		for trial := 0; trial < 6; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			want, errRef := ref.Eval(plan)
			got, errExec := ex.Eval(plan)
			if (errRef == nil) != (errExec == nil) {
				mismatches++
				continue
			}
			if errRef != nil {
				continue
			}
			plans++
			if !got.EqualAsList(want) || !got.Order().Equal(want.Order()) {
				mismatches++
			}
		}
	}
	b.printf("  %d random conventional+temporal plans through both engines, %d disagreements\n",
		plans, mismatches)
	b.check(mismatches == 0, "exec and reference agree list-exactly on every random plan")

	b.printf("  join+rdupT+coalT  %12s %12s %9s\n", "reference", "exec", "speedup")
	okParity, okSpeed := true, true
	var lastSpeedup float64
	for _, rows := range []int{500, 2000} {
		l := datagen.Temporal(datagen.TemporalSpec{
			Rows: rows, Values: rows / 4, TimeRange: 200, MaxPeriod: 12, Seed: 11})
		r := datagen.Temporal(datagen.TemporalSpec{
			Rows: 256, Values: rows / 4, TimeRange: 200, MaxPeriod: 12, Seed: 12})
		src := eval.MapSource{"L": l, "R": r}
		ln := algebra.NewRel("L", l.Schema(), algebra.BaseInfo{})
		rn := algebra.NewRel("R", r.Schema(), algebra.BaseInfo{})
		pred := expr.Compare(expr.Eq, expr.Column("1.Grp"), expr.Column("2.Grp"))
		plan := algebra.NewCoal(algebra.NewTRdup(algebra.NewTJoin(pred, ln, rn)))

		want, dRef, err1 := timedEval(eval.New(src), plan)
		got, dExec, err2 := timedEval(exec.New(src), plan)
		if err1 != nil || err2 != nil {
			b.pass = false
			b.printf("  rows=%d: evaluation error: %v %v\n", rows, err1, err2)
			continue
		}
		okParity = okParity && got.EqualAsList(want)
		if dExec <= 0 {
			dExec = time.Nanosecond
		}
		lastSpeedup = float64(dRef) / float64(dExec)
		b.printf("  rows=%-8d %12s %12s %8.1fx\n", rows, dRef.Round(time.Microsecond),
			dExec.Round(time.Microsecond), lastSpeedup)
	}
	// The real margin is 30-100x; the gate is deliberately loose (best-of-5
	// timings, 1.5x at the largest scale) so a loaded CI runner cannot turn
	// a scheduling stall into a spurious failure. BenchmarkEngines carries
	// the precise speedup trajectory.
	okSpeed = lastSpeedup >= 1.5
	b.check(okParity, "both engines produce the identical join+rdupT+coalT result list")
	b.check(okSpeed, "exec is at least 1.5x faster at the largest scale (hash join vs pair loop)")
	return Report{ID: "E11", Title: "Extension — streaming hash engine vs reference evaluator", Pass: b.pass, Body: b.String()}
}

// timedEval evaluates plan on the engine, best of five runs (minimizing the
// influence of scheduling stalls on shared runners).
func timedEval(e eval.Engine, plan algebra.Node) (*relation.Relation, time.Duration, error) {
	return timedEvalN(e, plan, 5)
}

// timedEvalN is timedEval with an explicit repetition count, for plans
// large enough that five runs would dominate an experiment's wall time.
func timedEvalN(e eval.Engine, plan algebra.Node, n int) (*relation.Relation, time.Duration, error) {
	var out *relation.Relation
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		start := time.Now()
		r, err := e.Eval(plan)
		d := time.Since(start)
		if err != nil {
			return nil, 0, err
		}
		if out == nil || d < best {
			out, best = r, d
		}
	}
	return out, best, nil
}
