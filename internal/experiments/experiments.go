// Package experiments regenerates every table and figure of the paper
// (EXPERIMENTS.md records paper-vs-measured for each). The paper is a
// foundations paper — its artifacts are worked examples, operation tables
// and algorithm properties rather than wall-clock plots — so each
// experiment here reproduces the artifact exactly and, where meaningful,
// attaches the performance measurements the paper defers to future work.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/core"
	"tqp/internal/cost"
	"tqp/internal/datagen"
	"tqp/internal/enum"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/props"
	"tqp/internal/relation"
	"tqp/internal/rules"
	"tqp/internal/stratum"
	"tqp/internal/tsql"
)

// Report is one experiment's rendered outcome.
type Report struct {
	ID    string
	Title string
	Pass  bool
	Body  string
}

// PaperQuerySQL is the running example as a statement of the tsql dialect.
const PaperQuerySQL = `VALIDTIME SELECT DISTINCT COALESCED EmpName FROM EMPLOYEE
EXCEPT SELECT EmpName FROM PROJECT ORDER BY EmpName ASC`

// All runs every experiment in order on the reference evaluator.
func All() []Report { return AllWith(eval.Reference()) }

// AllWith runs every experiment with the given physical engine executing
// stratum subplans and plan evaluations. The artifacts must come out
// identical on either engine — the engines agree list-exactly — so running
// `tqbench -engine exec` is itself an end-to-end differential check.
func AllWith(spec eval.EngineSpec) []Report {
	return []Report{
		E1With(spec), E2With(spec), E3With(spec), E4Table1(), E5Theorem31(),
		E6Figure4(), E7Figure6(), E8Figure5(), E9With(spec), E10Ablation(),
		E11Engines(), E12OrderAware(), E13ParallelScaling(), E14MemoryBounded(),
	}
}

type reportBuilder struct {
	strings.Builder
	pass bool
}

func newReport() *reportBuilder { return &reportBuilder{pass: true} }

func (b *reportBuilder) printf(format string, args ...any) {
	fmt.Fprintf(b, format, args...)
}

func (b *reportBuilder) check(ok bool, what string) {
	status := "ok"
	if !ok {
		status = "FAIL"
		b.pass = false
	}
	b.printf("  [%-4s] %s\n", status, what)
}

// E1Figure1 reproduces Figure 1: the EMPLOYEE and PROJECT instances and the
// exact Result relation of the running example query.
func E1Figure1() Report { return E1With(eval.Reference()) }

// E1With is E1Figure1 on an explicit engine.
func E1With(spec eval.EngineSpec) Report {
	b := newReport()
	c := catalog.Paper()
	emp, _ := c.Resolve("EMPLOYEE")
	prj, _ := c.Resolve("PROJECT")
	b.printf("EMPLOYEE (%d tuples):\n%s\nPROJECT (%d tuples):\n%s\n",
		emp.Len(), indent(emp.String()), prj.Len(), indent(prj.String()))

	got, err := spec.New(c).Eval(catalog.PaperInitialPlan(c))
	if err != nil {
		b.pass = false
		b.printf("eval error: %v\n", err)
	} else {
		b.printf("Result:\n%s\n", indent(got.String()))
		want := relation.MustFromRows(got.Schema(), catalog.PaperResultRows())
		b.check(got.EqualAsList(want), "result matches Figure 1's Result relation tuple-for-tuple")
		b.check(!got.HasSnapshotDuplicates(), "result has no duplicates in snapshots")
		b.check(got.IsCoalesced(), "result is coalesced")
		b.check(got.SortedBy(relation.OrderSpec{relation.Key("EmpName")}), "result is sorted by EmpName")
	}
	return Report{ID: "E1", Title: "Figure 1 — example relations and the query's Result", Pass: b.pass, Body: b.String()}
}

// E2Figure2 reproduces Figure 2: the initial algebra expression from the
// user-level query, the optimized plan, and — as the extension measurement —
// their costs under the model and their simulated execution work.
func E2Figure2() Report { return E2With(eval.Reference()) }

// E2With is E2Figure2 on an explicit engine.
func E2With(spec eval.EngineSpec) Report {
	b := newReport()
	c := catalog.Paper()
	q, err := tsql.Parse(PaperQuerySQL)
	if err != nil {
		return Report{ID: "E2", Title: "Figure 2", Body: err.Error()}
	}
	initial, err := q.Plan(c)
	if err != nil {
		return Report{ID: "E2", Title: "Figure 2", Body: err.Error()}
	}
	b.check(algebra.Canonical(initial) == algebra.Canonical(catalog.PaperInitialPlan(c)),
		"user-level query maps to the initial plan of Figure 2(a)")
	b.printf("Figure 2(a):\n%s", indent(algebra.Render(initial, nil)))
	final := catalog.PaperOptimizedPlan(c)
	b.printf("Figure 2(b)/6(b):\n%s", indent(algebra.Render(final, nil)))

	model := cost.New(c, cost.DefaultParams())
	ci, _ := model.Cost(initial)
	cf, _ := model.Cost(final)
	b.printf("  model cost: initial=%.0f optimized=%.0f (%.1fx)\n", ci, cf, ci/cf)
	b.check(cf < ci, "optimized plan is cheaper under the cost model")

	for name, plan := range map[string]algebra.Node{"initial": initial, "optimized": final} {
		_, tr, err := stratum.NewWithEngine(c, 1, spec).Execute(plan)
		if err != nil {
			b.pass = false
			b.printf("  %s execution error: %v\n", name, err)
			continue
		}
		b.printf("  %s simulated units: stratum=%.0f dbms=%.0f transfer=%.0f total=%.0f\n",
			name, tr.StratumUnits, tr.DBMSUnits, tr.TransferUnits, tr.TotalUnits())
	}
	return Report{ID: "E2", Title: "Figure 2 — initial vs optimized query plan", Pass: b.pass, Body: b.String()}
}

// E3Figure3 reproduces Figure 3: R1 = π(EMPLOYEE), R2 = rdup(R1) with the
// 1.T1/1.T2 renaming, R3 = rdupᵀ(R1) with John's period cut to [8,11).
func E3Figure3() Report { return E3With(eval.Reference()) }

// E3With is E3Figure3 on an explicit engine.
func E3With(spec eval.EngineSpec) Report {
	b := newReport()
	c := catalog.Paper()
	ev := spec.New(c)
	r1n := catalog.PaperProjection(c.MustNode("EMPLOYEE"))

	r1, _ := ev.Eval(r1n)
	r2, _ := ev.Eval(algebra.NewRdup(r1n))
	r3, _ := ev.Eval(algebra.NewTRdup(r1n))
	b.printf("R1 = π(EMPLOYEE):\n%s\nR2 = rdup(R1):\n%s\nR3 = rdupT(R1):\n%s\n",
		indent(r1.String()), indent(r2.String()), indent(r3.String()))

	b.check(r2.Schema().Has("1.T1") && r2.Schema().Has("1.T2"),
		"rdup result renames time attributes (snapshot relation)")
	wantR3 := relation.MustFromRows(r3.Schema(), [][]any{
		{"John", 1, 8}, {"John", 8, 11}, {"Anna", 2, 6}, {"Anna", 6, 12},
	})
	b.check(r3.EqualAsList(wantR3), "R3 matches the paper (John's second period becomes [8,11))")
	b.check(r2.Len() == 4 && r1.Len() == 5, "R2 removes exactly Anna's duplicate [2,6) tuple")
	return Report{ID: "E3", Title: "Figure 3 — regular vs temporal duplicate elimination", Pass: b.pass, Body: b.String()}
}

// E4Table1 verifies Table 1 row by row on generated data: each operation's
// order propagation, duplicate behaviour (eliminates / retains / generates)
// and coalescing behaviour (enforces / retains / destroys).
func E4Table1() Report {
	b := newReport()
	for _, row := range table1Rows() {
		err := row.verify()
		b.check(err == nil, fmt.Sprintf("%-10s order=%-28s duplicates=%-10s coalescing=%s%s",
			row.name, row.order, row.dups, row.coal, errSuffix(err)))
	}
	return Report{ID: "E4", Title: "Table 1 — operation overview verified dynamically", Pass: b.pass, Body: b.String()}
}

// E5Theorem31 verifies the equivalence implication lattice of Theorem 3.1
// over randomized relation pairs.
func E5Theorem31() Report {
	b := newReport()
	checked, violations := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		a := datagen.Temporal(datagen.TemporalSpec{Rows: 8, Values: 3, DupFrac: 0.3, AdjFrac: 0.3, Seed: seed})
		variants := equivalenceVariants(a, seed)
		for _, v := range variants {
			holding := equiv.Holding(a, v)
			set := make(map[equiv.Type]bool, len(holding))
			for _, h := range holding {
				set[h] = true
			}
			for _, t := range holding {
				for _, u := range equiv.All() {
					if t.Implies(u) && !set[u] {
						violations++
					}
					checked++
				}
			}
		}
	}
	b.printf("  %d implication checks over randomized pairs, %d violations\n", checked, violations)
	b.check(violations == 0, "Theorem 3.1 lattice holds")
	return Report{ID: "E5", Title: "Theorem 3.1 — equivalence implication lattice", Pass: b.pass, Body: b.String()}
}

// E6Figure4 summarizes the rule catalog: every rule of Figure 4 and
// Section 4 with its equivalence type; the full randomized verification
// lives in the test suite (internal/rules).
func E6Figure4() Report {
	b := newReport()
	all := rules.All()
	byType := map[equiv.Type][]string{}
	for _, r := range all {
		byType[r.Type] = append(byType[r.Type], r.Name)
	}
	for _, t := range equiv.All() {
		names := byType[t]
		sort.Strings(names)
		b.printf("  %-4s %2d rules: %s\n", t, len(names), strings.Join(names, " "))
	}
	b.printf("  total %d rules; deviations from the paper's types: C5, C6 (≡L→≡SM), C9 (≡L→≡M) — see DESIGN.md\n", len(all))
	b.check(len(all) >= 40, "catalog covers D1–D6, C1–C10, S1–S3(+pushdowns), conventional and transfer rules")
	return Report{ID: "E6", Title: "Figure 4 / Section 4 — transformation-rule catalog", Pass: b.pass, Body: b.String()}
}

// E7Figure6 reproduces the property-annotated operator trees of Figure 6.
func E7Figure6() Report {
	b := newReport()
	c := catalog.Paper()
	for _, pl := range []struct {
		name string
		plan algebra.Node
	}{
		{"Figure 2(a) — initial", catalog.PaperInitialPlan(c)},
		{"Figure 6(a) — after D2+C10", catalog.PaperIntermediatePlan(c)},
		{"Figure 6(b) — final", catalog.PaperOptimizedPlan(c)},
	} {
		pm, err := props.Infer(pl.plan, equiv.ResultList, nil)
		if err != nil {
			b.pass = false
			continue
		}
		b.printf("%s:\n%s", pl.name, indent(algebra.Render(pl.plan, func(n algebra.Node, _ algebra.Path) string {
			return pm[n].Vector()
		})))
	}
	// The load-bearing claims of Section 5.2's discussion.
	initial := catalog.PaperInitialPlan(c)
	pm, _ := props.Infer(initial, equiv.ResultList, nil)
	sortNode := initial.Children()[0]
	coal := sortNode.Children()[0]
	topRdup := coal.Children()[0]
	diff := topRdup.Children()[0]
	leftRdup := diff.Children()[0]
	rightProj := diff.Children()[1]
	b.check(!pm[coal].OrderRequired, "below the sort, order need not be preserved")
	b.check(!pm[diff].DuplicatesRelevant, "below the top rdupT, duplicates are not relevant")
	b.check(pm[leftRdup].DuplicatesRelevant, "…except at the lower rdupT guarding the difference's left argument")
	b.check(!pm[diff].PeriodPreserving, "below the coalescing, periods need not be preserved")
	b.check(!pm[rightProj].OrderRequired && !pm[rightProj].DuplicatesRelevant && !pm[rightProj].PeriodPreserving,
		"the right branch of the temporal difference is fully unconstrained")
	return Report{ID: "E7", Title: "Table 2 + Figure 6 — operation properties", Pass: b.pass, Body: b.String()}
}

// E8Figure5 runs the enumeration algorithm on the running example:
// discovery of the paper's optimized plan, determinism, and the guard's
// rejection statistics.
func E8Figure5() Report {
	b := newReport()
	c := catalog.Paper()
	initial := catalog.PaperInitialPlan(c)
	res, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList})
	if err != nil {
		return Report{ID: "E8", Title: "Figure 5", Body: err.Error()}
	}
	b.printf("  %d plans enumerated from the initial plan (cap not hit: %v)\n", len(res.Plans), !res.Capped)
	seen := map[string]bool{}
	for _, p := range res.Plans {
		seen[algebra.Canonical(p)] = true
	}
	b.check(seen[algebra.Canonical(catalog.PaperIntermediatePlan(c))], "Figure 6(a) plan discovered")
	b.check(seen[algebra.Canonical(catalog.PaperOptimizedPlan(c))], "Figure 6(b) plan discovered")

	if step := res.Derivation(catalog.PaperOptimizedPlan(c)); len(step) > 0 {
		names := make([]string, len(step))
		for i, s := range step {
			names[i] = s.Rule
		}
		b.printf("  a derivation of Figure 6(b): %s\n", strings.Join(names, " → "))
	}
	rejected := 0
	for _, n := range res.GuardRejections {
		rejected += n
	}
	applied := 0
	for _, n := range res.Applications {
		applied += n
	}
	b.printf("  guard (Figure 5): %d applications admitted, %d rejected by the property vectors\n", applied, rejected)
	b.check(rejected > 0, "the property guard is load-bearing (it rejected unsafe applications)")
	return Report{ID: "E8", Title: "Figure 5 — plan enumeration algorithm", Pass: b.pass, Body: b.String()}
}

// E9Stratum measures the Section 2.1 narrative on scaled databases: the
// optimized division of labour (temporal operations in the stratum, sort in
// the DBMS) beats computing everything in the DBMS, increasingly so with
// size.
func E9Stratum() Report { return E9With(eval.Reference()) }

// E9With is E9Stratum on an explicit engine.
func E9With(spec eval.EngineSpec) Report {
	b := newReport()
	b.printf("  %-10s %14s %14s %8s\n", "employees", "initial units", "optimized", "speedup")
	okAll := true
	for _, emps := range []int{10, 30, 100, 300} {
		c := datagen.EmployeeDB(datagen.EmployeeSpec{
			Employees: emps, SpellsPerEmp: 3, AssignmentsPerEmp: 4, Seed: 42,
		})
		q, _ := tsql.Parse(PaperQuerySQL)
		initial, err := q.Plan(c)
		if err != nil {
			b.pass = false
			continue
		}
		opt := core.New(c, core.WithEngine(spec))
		plans, err := opt.Optimize(initial, equiv.ResultList, q.OrderBy())
		if err != nil {
			b.pass = false
			continue
		}
		_, trI, err1 := stratum.NewWithEngine(c, 1, spec).Execute(initial)
		_, trB, err2 := stratum.NewWithEngine(c, 1, spec).Execute(plans.Best)
		if err1 != nil || err2 != nil {
			b.pass = false
			continue
		}
		speedup := trI.TotalUnits() / trB.TotalUnits()
		b.printf("  %-10d %14.0f %14.0f %7.1fx\n", emps, trI.TotalUnits(), trB.TotalUnits(), speedup)
		okAll = okAll && speedup > 1
	}
	b.check(okAll, "the optimized division of labour wins at every scale")
	return Report{ID: "E9", Title: "Section 2.1/6 — stratum vs DBMS division of labour", Pass: b.pass, Body: b.String()}
}

// E10Ablation ablates the design choices: enumerate with (i) the full rule
// set, (ii) ≡L rules only (no weak equivalence types), (iii) no transfer
// rules — and compare the best costs the model can reach.
func E10Ablation() Report {
	b := newReport()
	c := catalog.Paper()
	q, _ := tsql.Parse(PaperQuerySQL)
	initial, _ := q.Plan(c)
	model := cost.New(c, cost.DefaultParams())

	variants := []struct {
		name  string
		rules []rules.Rule
	}{
		{"full catalog", rules.All()},
		{"≡L rules only", onlyType(rules.All(), equiv.List)},
		{"no transfer rules", without(rules.All(), "T")},
		{"no sort pushdown", without(rules.All(), "S")},
	}
	costs := make(map[string]float64, len(variants))
	for _, v := range variants {
		res, err := enum.Enumerate(initial, enum.Config{ResultType: equiv.ResultList, Rules: v.rules})
		if err != nil {
			b.pass = false
			continue
		}
		_, best, err := model.Best(res.Plans)
		if err != nil {
			b.pass = false
			continue
		}
		costs[v.name] = best
		b.printf("  %-18s %4d plans, best cost %8.0f\n", v.name, len(res.Plans), best)
	}
	b.check(costs["full catalog"] <= costs["≡L rules only"],
		"weak-equivalence rules never hurt and typically help")
	b.check(costs["full catalog"] < costs["no transfer rules"],
		"transfer rules are required to re-partition work between the sites")
	return Report{ID: "E10", Title: "Extension — optimizer ablations", Pass: b.pass, Body: b.String()}
}

func onlyType(rs []rules.Rule, t equiv.Type) []rules.Rule {
	var out []rules.Rule
	for _, r := range rs {
		if r.Type == t {
			out = append(out, r)
		}
	}
	return out
}

// without drops rules whose name starts with the given prefix followed by a
// digit or nothing else of note (the catalog's families share prefixes).
func without(rs []rules.Rule, prefix string) []rules.Rule {
	var out []rules.Rule
	for _, r := range rs {
		if strings.HasPrefix(r.Name, prefix) {
			continue
		}
		out = append(out, r)
	}
	return out
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func errSuffix(err error) string {
	if err == nil {
		return ""
	}
	return " — " + err.Error()
}

// equivalenceVariants derives relations standing in various equivalence
// relationships to a.
func equivalenceVariants(a *relation.Relation, seed int64) []*relation.Relation {
	src := eval.MapSource{"A": a}
	ev := eval.New(src)
	node := algebra.NewRel("A", a.Schema(), algebra.BaseInfo{})
	var out []*relation.Relation
	for _, plan := range []algebra.Node{
		node,
		algebra.NewSort(relation.OrderSpec{relation.Key("Name")}, node),
		algebra.NewTRdup(node),
		algebra.NewCoal(node),
		algebra.NewCoal(algebra.NewTRdup(node)),
		algebra.NewUnionAll(node, node),
	} {
		if r, err := ev.Eval(plan); err == nil {
			out = append(out, r)
		}
	}
	b := datagen.Temporal(datagen.TemporalSpec{Rows: 8, Values: 3, DupFrac: 0.3, AdjFrac: 0.3, Seed: seed + 1000})
	out = append(out, b)
	return out
}
