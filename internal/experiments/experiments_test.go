package experiments_test

import (
	"strings"
	"testing"

	"tqp/internal/core"
	"tqp/internal/experiments"
)

// TestAllExperimentsPass keeps cmd/tqbench honest under `go test`: every
// experiment must pass and carry a non-trivial body.
func TestAllExperimentsPass(t *testing.T) {
	reports := experiments.All()
	if len(reports) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("%s (%s) failed:\n%s", r.ID, r.Title, r.Body)
		}
		if len(r.Body) < 40 {
			t.Errorf("%s: suspiciously empty body", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

// TestE1PrintsResult: the E1 body must contain the Result table rows the
// paper prints.
func TestE1PrintsResult(t *testing.T) {
	r := experiments.E1Figure1()
	for _, row := range []string{"Anna     10  12", "John     10  11"} {
		if !strings.Contains(r.Body, row) {
			t.Errorf("E1 body missing row %q:\n%s", row, r.Body)
		}
	}
}

// TestE8ReportsDerivation: the enumeration experiment must show a concrete
// rule derivation of the Figure 6(b) plan.
func TestE8ReportsDerivation(t *testing.T) {
	r := experiments.E8Figure5()
	if !strings.Contains(r.Body, "derivation of Figure 6(b)") {
		t.Errorf("E8 body missing the derivation:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "C10") {
		t.Errorf("derivation should pass through C10 (coalescing below the difference):\n%s", r.Body)
	}
}

// TestE9SpeedupsMonotonic: larger databases should not shrink the benefit.
func TestE9SpeedupsMonotonic(t *testing.T) {
	r := experiments.E9Stratum()
	if !r.Pass {
		t.Fatalf("E9 failed:\n%s", r.Body)
	}
	if !strings.Contains(r.Body, "x") {
		t.Errorf("E9 body should report speedups:\n%s", r.Body)
	}
}

// TestAllExperimentsPassOnExec re-runs the engine-sensitive experiments on
// the exec engine: the paper's artifacts must come out identical, so every
// report still passes — tqbench -engine exec is an end-to-end differential
// check of the streaming engine.
func TestAllExperimentsPassOnExec(t *testing.T) {
	spec, err := core.EngineSpec("exec")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []experiments.Report{
		experiments.E1With(spec), experiments.E2With(spec),
		experiments.E3With(spec), experiments.E9With(spec),
	} {
		if !r.Pass {
			t.Errorf("%s (%s) failed on the exec engine:\n%s", r.ID, r.Title, r.Body)
		}
	}
}
