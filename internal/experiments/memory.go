package experiments

import (
	"math/rand"
	"os"
	"time"

	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/relation"
	"tqp/internal/testutil"
)

// E14MemoryBounded is the memory-bounded engine's experiment: differential
// parity against the reference evaluator on random plans under a tiny
// budget (vacuity-guarded by the engine's spill counters — the grace-hash
// paths must actually fire), then the throughput-vs-budget curve of the
// spill acceptance pipeline — rdupᵀ feeding coalᵀ — at 100k rows across
// budgets from 64KB to unlimited. BenchmarkSpill in the repo root runs the
// same pipeline (testutil.SpillPipeline) at 100k and 1M rows and feeds the
// BENCH_engines.json records CI's ns/B/allocs regression gates check; set
// TQP_E14_FULL=1 to extend this experiment's curve to 1M rows too (the
// spill acceptance test pins that scale under 16MB in the exec suite).
//
// The accounting gate holds every spilled run's PeakBytes near its budget:
// what the arbiter tracked as resident never exceeded budget plus the
// drain's one-tuple overshoot and the per-op share floor. The curve's
// interesting read is how flat it is — grace partitioning trades a giant
// hash table for sequential codec I/O, which modern page caches absorb.
func E14MemoryBounded() Report {
	b := newReport()

	// Differential parity on random conventional+temporal plans at a
	// spill-forcing budget, sequential and parallel.
	plans, mismatches, spilled := 0, 0, 0
	for seed := int64(70); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalogSized(seed, 240, 160)
		ref := eval.New(c)
		for trial := 0; trial < 5; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			want, errRef := ref.Eval(plan)
			for _, par := range []int{1, 3} {
				eng := exec.NewWith(c, exec.Options{MemoryBudget: 32 << 10, Parallelism: par})
				got, errB := eng.Eval(plan)
				if (errRef == nil) != (errB == nil) {
					mismatches++
					continue
				}
				if errRef != nil {
					continue
				}
				spilled += eng.Stats().SpilledOps
				if !got.EqualAsList(want) || !got.Order().Equal(want.Order()) {
					mismatches++
				}
			}
			if errRef == nil {
				plans++
			}
		}
	}
	b.printf("  %d random plans through reference vs exec at a 32KB budget (1 and 3 workers), %d disagreements, %d operators spilled\n",
		plans, mismatches, spilled)
	b.check(mismatches == 0, "budgeted engine agrees list-exactly with the reference on every random plan")
	b.check(spilled > 0, "the grace-hash spill paths actually fired (non-vacuous differential)")

	// Throughput vs budget on the acceptance pipeline.
	sizes := []int{100000}
	if os.Getenv("TQP_E14_FULL") != "" {
		sizes = append(sizes, 1000000)
	}
	reps := 2
	if raceEnabled {
		reps = 1
	}
	budgets := []struct {
		name   string
		budget int64
	}{
		{"64KB", 64 << 10},
		{"1MB", 1 << 20},
		{"16MB", 16 << 20},
		{"unlimited", 0},
	}
	b.printf("  rdupT+coalT throughput vs budget (best of %d):\n", reps)
	b.printf("  %8s %10s %12s %11s %13s %13s\n", "rows", "budget", "time", "rows/s", "spilled", "peak")
	okParity, okPeak := true, true
	for _, rows := range sizes {
		src, plan := testutil.SpillPipeline(rows)
		var want *relation.Relation
		spilledAtSmall := 0
		for _, bg := range budgets {
			eng := exec.NewWith(src, exec.Options{MemoryBudget: bg.budget})
			var got *relation.Relation
			best := time.Duration(0)
			var st exec.Stats
			var err error
			for i := 0; i < reps; i++ {
				start := time.Now()
				got, err = eng.Eval(plan)
				if err != nil {
					break
				}
				if d := time.Since(start); best == 0 || d < best {
					best = d
				}
				st = eng.Stats()
			}
			if err != nil {
				b.pass = false
				b.printf("  rows=%d budget=%s: %v\n", rows, bg.name, err)
				continue
			}
			if want == nil {
				want = got
			} else if !got.EqualAsList(want) {
				okParity = false
			}
			if bg.budget == 64<<10 {
				spilledAtSmall = st.SpilledOps
			}
			if st.SpilledOps > 0 && bg.budget > 0 && st.PeakBytes > bg.budget+(64<<10) {
				okPeak = false
			}
			b.printf("  %8d %10s %12s %11.0f %12dB %12dB\n",
				rows, bg.name, best.Round(time.Millisecond), float64(rows)/best.Seconds(),
				st.SpilledBytes, st.PeakBytes)
		}
		b.check(spilledAtSmall >= 2, "the 64KB budget spills both pipeline operators")
	}
	b.check(okParity, "every budget produces the identical result list")
	b.check(okPeak, "accounted peak stays within budget (plus the drain overshoot slack)")
	return Report{ID: "E14", Title: "Extension — memory-bounded execution: throughput vs budget", Pass: b.pass, Body: b.String()}
}
