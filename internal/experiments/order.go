package experiments

import (
	"time"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/cost"
	"tqp/internal/datagen"
	"tqp/internal/enum"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/expr"
	"tqp/internal/physical"
	"tqp/internal/relation"
)

// sortedCatalog builds a catalog whose base relations are physically sorted
// on ⟨Name, Grp⟩ with the order declared in BaseInfo (Add verifies the
// declaration against the data), the precondition for every
// order-exploiting physical variant.
func sortedCatalog(rows int) *catalog.Catalog {
	byNameGrp := relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}
	c := catalog.New()
	for i, spec := range []datagen.TemporalSpec{
		{Rows: rows, Values: rows / 4, DupFrac: 0.2, AdjFrac: 0.3, TimeRange: 300, MaxPeriod: 15, Seed: 21},
		{Rows: 256, Values: rows / 4, DupFrac: 0.1, AdjFrac: 0.3, TimeRange: 300, MaxPeriod: 15, Seed: 22},
	} {
		r := datagen.Temporal(spec)
		if err := r.SortStable(byNameGrp); err != nil {
			panic("experiments: " + err.Error())
		}
		name := []string{"L", "R"}[i]
		if err := c.Add(name, r, algebra.BaseInfo{Order: byNameGrp}); err != nil {
			panic("experiments: " + err.Error())
		}
	}
	return c
}

// E12OrderAware is the order-aware planning experiment: on a pre-sorted
// catalog the exec engine compiles merge joins, streaming group-at-a-time
// temporal operators and elided sorts; the three paths (reference
// evaluator, hash-only engine, merge engine) must agree list-exactly while
// the merge path measures faster; the order-aware cost model prices the
// same plans strictly below the order-blind model; and the cost-guided beam
// search, scoring with the order-aware model, discovers the sort-avoiding
// plan.
func E12OrderAware() Report {
	b := newReport()
	c := sortedCatalog(1200)
	byName := relation.OrderSpec{relation.Key("Name")}

	// Two order-sensitive plans over the sorted bases: a grouping pipeline
	// whose top sort elides, and a merge join under an elidable sort.
	pipe := algebra.NewSort(byName,
		algebra.NewCoal(algebra.NewTRdup(c.MustNode("L"))))
	join := algebra.NewSort(relation.OrderSpec{relation.Key("1.Name")},
		algebra.NewTJoin(
			expr.Compare(expr.Eq, expr.Column("1.Name"), expr.Column("2.Name")),
			c.MustNode("L"), c.MustNode("R")))

	// The static physical annotation must show the order-exploiting
	// variants — the same decisions the engine makes at build time.
	for _, pl := range []struct {
		name string
		plan algebra.Node
	}{{"pipeline", pipe}, {"join", join}} {
		dec, err := physical.Annotate(pl.plan)
		if err != nil {
			b.pass = false
			b.printf("  %s: annotate: %v\n", pl.name, err)
			continue
		}
		sum := physical.Summarize(dec)
		b.printf("  %s physical plan: %d elided sort(s), %d merge operator(s)\n",
			pl.name, sum.SortsElided, sum.MergeOps)
		b.check(sum.SortsElided >= 1 && sum.MergeOps >= 1,
			pl.name+" compiles with an elided sort and merge operators")
	}

	// Three-way parity with measured speedups: reference vs the hash-only
	// engine (PR 1's physical operators) vs the merge engine.
	b.printf("  %-10s %12s %12s %12s %11s %11s\n",
		"plan", "reference", "hash", "merge", "vs ref", "vs hash")
	okParity := true
	var joinSpeedup float64
	for _, pl := range []struct {
		name string
		plan algebra.Node
	}{{"pipeline", pipe}, {"join", join}} {
		want, dRef, err1 := timedEval(eval.New(c), pl.plan)
		hashEng := exec.NewWith(c, exec.Options{NoMerge: true, NoSortElision: true})
		gotHash, dHash, err2 := timedEval(hashEng, pl.plan)
		mergeEng := exec.New(c)
		gotMerge, dMerge, err3 := timedEval(mergeEng, pl.plan)
		if err1 != nil || err2 != nil || err3 != nil {
			b.pass = false
			b.printf("  %s: evaluation error: %v %v %v\n", pl.name, err1, err2, err3)
			continue
		}
		okParity = okParity && gotHash.EqualAsList(want) && gotMerge.EqualAsList(want) &&
			gotHash.Order().Equal(want.Order()) && gotMerge.Order().Equal(want.Order())
		st := mergeEng.Stats()
		if st.SortsElided == 0 || st.MergeJoins+st.MergeOps == 0 {
			b.pass = false
			b.printf("  %s: merge engine compiled no order-exploiting variant: %+v\n", pl.name, st)
		}
		vsRef := ratio(dRef, dMerge)
		vsHash := ratio(dHash, dMerge)
		if pl.name == "join" {
			joinSpeedup = vsRef
		}
		b.printf("  %-10s %12s %12s %12s %10.1fx %10.2fx\n",
			pl.name, dRef.Round(time.Microsecond), dHash.Round(time.Microsecond),
			dMerge.Round(time.Microsecond), vsRef, vsHash)
	}
	b.check(okParity, "reference, hash and merge paths produce the identical result list and order")
	// The hard gate compares against the reference's pairwise shapes, which
	// the merge path beats by a wide margin; the merge-vs-hash ratio is
	// reported (typically >1) but not gated — both are linear and a loaded
	// CI runner could invert a thin margin.
	b.check(joinSpeedup >= 1.3, "merge join measures at least 1.3x over the reference pair loop")

	// Order-conditional costing: the order-aware model must price the
	// order-exploiting plans strictly below the order-blind (PR 1) model.
	aware := cost.New(c, cost.ParamsFor(true))
	blindParams := cost.ParamsFor(true)
	blindParams.OrderBlind = true
	blind := cost.New(c, blindParams)
	okCost := true
	for _, pl := range []struct {
		name string
		plan algebra.Node
	}{{"pipeline", pipe}, {"join", join}} {
		ca, err1 := aware.Cost(pl.plan)
		cb, err2 := blind.Cost(pl.plan)
		if err1 != nil || err2 != nil {
			b.pass = false
			continue
		}
		b.printf("  %s model cost: order-aware %.0f vs order-blind %.0f (%.1fx)\n",
			pl.name, ca, cb, cb/ca)
		okCost = okCost && ca < cb
	}
	b.check(okCost, "the order-aware model prices both plans strictly below the order-blind model")

	// Beam search scored by the order-aware model: from the pipeline plan
	// it must discover the sort-avoiding plan (rule S1 removes the top sort
	// once order propagation proves it redundant) and rank it cheapest.
	res, err := enum.Beam(pipe, enum.BeamConfig{
		Config: enum.Config{ResultType: equiv.ResultList},
		Score:  aware.Cost,
	})
	if err != nil {
		b.pass = false
		b.printf("  beam search: %v\n", err)
		return Report{ID: "E12", Title: "Extension — order-aware physical planning", Pass: b.pass, Body: b.String()}
	}
	best, bestCost, err := aware.Best(res.Plans)
	if err != nil {
		b.pass = false
		return Report{ID: "E12", Title: "Extension — order-aware physical planning", Pass: b.pass, Body: b.String()}
	}
	initialCost, _ := aware.Cost(pipe)
	sorts := 0
	algebra.Walk(best, func(n algebra.Node, _ algebra.Path) bool {
		if n.Op() == algebra.OpSort {
			sorts++
		}
		return true
	})
	b.printf("  beam (order-aware score): %d plans; best %s (cost %.0f vs initial %.0f)\n",
		len(res.Plans), algebra.Canonical(best), bestCost, initialCost)
	b.check(sorts == 0, "the beam search discovers the sort-avoiding plan (no sort node survives)")
	b.check(bestCost < initialCost, "the discovered plan is strictly cheaper under the order-aware model")
	wantList, err1 := eval.New(c).Eval(pipe)
	gotList, err2 := exec.New(c).Eval(best)
	if err1 != nil || err2 != nil {
		b.pass = false
	} else {
		b.check(gotList.EqualAsList(wantList),
			"the sort-avoiding plan still produces the initial plan's exact list (≡L)")
	}
	return Report{ID: "E12", Title: "Extension — order-aware physical planning", Pass: b.pass, Body: b.String()}
}

func ratio(base, other time.Duration) float64 {
	if other <= 0 {
		other = time.Nanosecond
	}
	return float64(base) / float64(other)
}
