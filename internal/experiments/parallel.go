package experiments

import (
	"math/rand"
	"runtime"
	"time"

	"tqp/internal/eval"
	"tqp/internal/exec"
	"tqp/internal/relation"
	"tqp/internal/testutil"
)

// E13ParallelScaling is the morsel-parallel engine's experiment: end-to-end
// differential parity against the reference evaluator on random plans
// (vacuity-guarded by the engine's exchange counters), then the speedup
// curve of the acceptance pipeline — equijoin ⋈ᵀ, rdupᵀ, coalᵀ — over
// worker counts 1/2/4/8 at 10k and 100k probe rows, with the sequential
// merge engine (worker count 1) as the baseline. BenchmarkParallel in the
// repo root extends the same curve to 1M rows and feeds the
// BENCH_engines.json artifact that CI's regression gate checks.
//
// The speedup gate applies only when min(NumCPU, GOMAXPROCS) ≥ 4 and the
// build is not race-instrumented: with fewer usable cores the exchange
// cannot buy wall-clock time (every partition shares a core), and under
// the race detector shadow-memory bookkeeping distorts parallel scaling —
// in both cases the curve is reported for information, parity still
// enforced. CI's GOMAXPROCS=1 matrix leg exercises exactly the degenerate
// serialized shape.
func E13ParallelScaling() Report {
	b := newReport()

	// Differential parity on random conventional+temporal plans, the
	// exchange fan-out pinned by the engine's own counters.
	plans, mismatches, exchanges := 0, 0, 0
	for seed := int64(50); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c, bases := testutil.TemporalCatalog(seed)
		ref := eval.New(c)
		for trial := 0; trial < 6; trial++ {
			plan := testutil.RandomPlan(rng, bases, 2+rng.Intn(2))
			want, errRef := ref.Eval(plan)
			par := exec.NewWith(c, exec.Options{Parallelism: 3})
			got, errPar := par.Eval(plan)
			if (errRef == nil) != (errPar == nil) {
				mismatches++
				continue
			}
			if errRef != nil {
				continue
			}
			plans++
			exchanges += par.Stats().ParallelOps
			if !got.EqualAsList(want) || !got.Order().Equal(want.Order()) {
				mismatches++
			}
		}
	}
	b.printf("  %d random plans through reference vs exec-par3, %d disagreements, %d exchanges compiled\n",
		plans, mismatches, exchanges)
	b.check(mismatches == 0, "parallel engine agrees list-exactly with the reference on every random plan")
	b.check(exchanges > 0, "the parallel paths actually fired (non-vacuous differential)")

	// Scaling curve: the acceptance pipeline at 10k and 100k probe rows.
	// The usable width is min(cores, GOMAXPROCS): raising GOMAXPROCS past
	// the core count grants no parallel wall-clock, and CI's GOMAXPROCS=1
	// legs serialize every exchange by design.
	procs := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < procs {
		procs = n
	}
	b.printf("  join+rdupT+coalT scaling (best of 3), %d CPU(s), GOMAXPROCS=%d:\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	b.printf("  %8s %8s %12s %9s\n", "rows", "workers", "time", "speedup")
	var topSpeedup float64
	okParity := true
	for _, rows := range []int{10000, 100000} {
		src, plan := testutil.ParallelPipeline(rows)

		var base float64
		var want *relation.Relation
		for _, workers := range []int{1, 2, 4, 8} {
			eng := exec.NewWith(src, exec.Options{Parallelism: workers})
			got, d, err := timedEvalN(eng, plan, 3)
			if err != nil {
				b.pass = false
				b.printf("  rows=%d workers=%d: %v\n", rows, workers, err)
				continue
			}
			if want == nil {
				want, base = got, float64(d)
			} else if !got.EqualAsList(want) {
				okParity = false
			}
			speedup := base / float64(d)
			if rows == 100000 && speedup > topSpeedup {
				topSpeedup = speedup
			}
			b.printf("  %8d %8d %12s %8.2fx\n", rows, workers, d.Round(time.Microsecond), speedup)
		}
	}
	b.check(okParity, "every worker count produces the identical result list")
	switch {
	case raceEnabled:
		b.printf("  [skip] speedup gate: race-instrumented build; curve reported for information only\n")
	case procs >= 4:
		// The acceptance bar: ≥2x over the single-worker engine at 100k
		// rows on a multi-core host. The workload is ~90% partitioned, so
		// an idle 4-core machine lands near 3x — 2x leaves the same noise
		// margin E11's gate does.
		b.check(topSpeedup >= 2, "parallel engine is ≥2x the single-worker engine at 100k rows")
	default:
		b.printf("  [skip] speedup gate: %d usable core(s); curve reported for information only\n", procs)
	}
	return Report{ID: "E13", Title: "Extension — morsel-parallel engine scaling", Pass: b.pass, Body: b.String()}
}
