//go:build !race

package experiments

// raceEnabled reports that the race detector instruments this build.
const raceEnabled = false
