//go:build race

package experiments

// raceEnabled reports that the race detector instruments this build; E13's
// wall-clock speedup gate self-skips under it (shadow-memory bookkeeping
// distorts parallel scaling beyond what any noise margin absorbs).
const raceEnabled = true
