package experiments

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/eval"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// table1Row is one row of Table 1, verified dynamically: the operation's
// order column, duplicate behaviour and coalescing behaviour, each checked
// against the reference evaluator on crafted inputs.
type table1Row struct {
	name  string
	order string
	dups  string // Eliminates / Retains / Generates
	coal  string // Enforces / Retains / Destroys / —
	build func(l, r algebra.Node) algebra.Node
}

// fixtures for Table 1 verification: a sorted, distinct, coalesced temporal
// relation and a companion with duplicates and adjacency.
func table1Fixtures() (*eval.Evaluator, algebra.Node, algebra.Node) {
	ts := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
	// clean: sorted by Name, distinct, snapshot-distinct, coalesced.
	clean := relation.MustFromRows(ts, [][]any{
		{"a", 1, 1, 4},
		{"b", 2, 2, 6},
		{"c", 1, 5, 9},
		{"d", 3, 1, 3},
	})
	// messy: duplicates, snapshot duplicates, adjacent periods.
	messy := relation.MustFromRows(ts, [][]any{
		{"a", 1, 1, 4},
		{"a", 1, 1, 4},
		{"a", 1, 4, 7},
		{"b", 2, 2, 6},
		{"b", 2, 3, 8},
		{"c", 1, 5, 9},
	})
	src := eval.MapSource{"CLEAN": clean, "MESSY": messy}
	cleanInfo := algebra.BaseInfo{
		Order:            relation.OrderSpec{relation.Key("Name")},
		Distinct:         true,
		SnapshotDistinct: true,
		Coalesced:        true,
	}
	cleanNode := algebra.NewRel("CLEAN", ts, cleanInfo)
	messyNode := algebra.NewRel("MESSY", ts, algebra.BaseInfo{})
	return eval.New(src), cleanNode, messyNode
}

func table1Rows() []table1Row {
	grpPred := expr.Compare(expr.Ge, expr.Column("Grp"), expr.Literal(value.Int(1)))
	byName := relation.OrderSpec{relation.Key("Name")}
	aggs := []expr.Aggregate{{Func: expr.CountAll, As: "cnt"}}
	return []table1Row{
		{"select", "Order(r)", "Retains", "Retains",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewSelect(grpPred, l) }},
		{"project", "Prefix(Order(r), ProjPairs)", "Generates", "Destroys",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewProjectCols(l, "Name", "T1", "T2") }},
		{"unionall", "unordered", "Generates", "Destroys",
			func(l, r algebra.Node) algebra.Node { return algebra.NewUnionAll(l, r) }},
		{"product", "Order(r1)", "Retains", "—",
			func(l, r algebra.Node) algebra.Node { return algebra.NewProduct(l, r) }},
		{"diff", "Order(r1)", "Retains", "—",
			func(l, r algebra.Node) algebra.Node { return algebra.NewDiff(l, r) }},
		{"aggr", "Prefix(Order(r), GroupPairs)", "Eliminates", "—",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewAggregate([]string{"Name"}, aggs, l) }},
		{"rdup", "Order(r)", "Eliminates", "—",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewRdup(l) }},
		{"productT", "Order(r1) \\ TimePairs", "Retains", "Destroys",
			func(l, r algebra.Node) algebra.Node { return algebra.NewTProduct(l, r) }},
		{"diffT", "Order(r1) \\ TimePairs", "Retains", "Destroys",
			func(l, r algebra.Node) algebra.Node { return algebra.NewTDiff(l, r) }},
		{"aggrT", "Prefix(Order(r), GroupPairs)", "Eliminates", "Destroys",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewTAggregate([]string{"Name"}, aggs, l) }},
		{"rdupT", "Order(r) \\ TimePairs", "Eliminates", "Destroys",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewTRdup(l) }},
		{"union", "unordered", "Retains", "—",
			func(l, r algebra.Node) algebra.Node { return algebra.NewUnion(l, r) }},
		{"unionT", "unordered", "Retains", "Destroys",
			func(l, r algebra.Node) algebra.Node { return algebra.NewTUnion(l, r) }},
		{"sort", "A", "Retains", "Retains",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewSort(byName, l) }},
		{"coalT", "Order(r) \\ TimePairs", "Retains", "Enforces",
			func(l, _ algebra.Node) algebra.Node { return algebra.NewCoal(l) }},
	}
}

// verify checks the row's three behavioural claims dynamically.
func (row table1Row) verify() error {
	ev, clean, messy := table1Fixtures()

	// 1. The order the evaluator records must actually hold.
	outClean, err := ev.Eval(row.build(clean, clean))
	if err != nil {
		return fmt.Errorf("eval over clean input: %v", err)
	}
	if !outClean.SortedBy(outClean.Order()) {
		return fmt.Errorf("recorded order %s does not hold", outClean.Order())
	}

	outMessy, err := ev.Eval(row.build(messy, messy))
	if err != nil {
		return fmt.Errorf("eval over messy input: %v", err)
	}

	// 2. Duplicate behaviour.
	switch row.dups {
	case "Eliminates":
		if outMessy.HasDuplicates() {
			return fmt.Errorf("claims to eliminate duplicates but result has them")
		}
	case "Retains":
		if outClean.HasDuplicates() {
			return fmt.Errorf("claims to retain duplicates but created them from distinct input")
		}
	case "Generates":
		// Generation is a "may": verify at least that π dropping a
		// distinguishing column or ⊔ of a relation with itself shows it.
		if row.name == "unionall" && !outClean.HasDuplicates() {
			return fmt.Errorf("⊔ of a relation with itself must contain duplicates")
		}
	}

	// 3. Coalescing behaviour (only defined for temporal results).
	switch row.coal {
	case "Enforces":
		if !outMessy.IsCoalesced() {
			return fmt.Errorf("claims to enforce coalescing but result is not coalesced")
		}
	case "Retains":
		if outClean.Temporal() && !outClean.IsCoalesced() {
			return fmt.Errorf("claims to retain coalescing but destroyed it on a coalesced input")
		}
	case "Destroys":
		// "Destroys" is a may-property: the result can be uncoalesced even
		// over coalesced inputs; witnessed by the messy evaluation of ⊔,
		// πᵀ, \ᵀ et al. — nothing to assert universally here beyond
		// evaluability, which succeeded above.
	}
	return nil
}
