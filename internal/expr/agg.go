package expr

import (
	"fmt"

	"tqp/internal/period"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func periodOf(start, end value.Value) period.Period {
	return period.Period{Start: start.AsTime(), End: end.AsTime()}
}

// coerceTimes lifts integer literals in period-predicate operands to the
// time domain, so "PERIOD(T1, T2) OVERLAPS PERIOD(2, 6)" works without an
// explicit time constructor.
func coerceTimes(op PeriodOp, vs ...value.Value) (a, b, c, d value.Value, err error) {
	out := make([]value.Value, len(vs))
	for i, v := range vs {
		switch v.Kind() {
		case value.KindTime:
			out[i] = v
		case value.KindInt:
			out[i] = value.Time(period.Chronon(v.AsInt()))
		default:
			return a, b, c, d, fmt.Errorf("expr: %s over non-time operand of domain %s", op, v.Kind())
		}
	}
	return out[0], out[1], out[2], out[3], nil
}

// AggFunc names an aggregate function.
type AggFunc uint8

// Aggregate functions for the 𝒢 and 𝒢ᵀ operations.
const (
	Count AggFunc = iota
	CountAll
	Sum
	Avg
	Min
	Max
)

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "COUNT"
	case CountAll:
		return "COUNT(*)"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	default:
		return "MAX"
	}
}

// DuplicateInsensitive reports whether the aggregate yields the same result
// on multiset-equivalent inputs with different duplicate counts collapsed —
// i.e., MIN and MAX. The property refines DuplicatesRelevant propagation
// into aggregation arguments.
func (f AggFunc) DuplicateInsensitive() bool { return f == Min || f == Max }

// Aggregate pairs an aggregate function with its argument attribute and a
// result attribute name. CountAll ignores Arg.
type Aggregate struct {
	Func AggFunc
	Arg  string // argument attribute; empty for COUNT(*)
	As   string // result attribute name
}

// String renders e.g. "SUM(Salary) AS total".
func (a Aggregate) String() string {
	switch a.Func {
	case CountAll:
		return fmt.Sprintf("COUNT(*) AS %s", a.As)
	default:
		return fmt.Sprintf("%s(%s) AS %s", a.Func, a.Arg, a.As)
	}
}

// ResultKind returns the domain of the aggregate's result.
func (a Aggregate) ResultKind(s *schema.Schema) (value.Kind, error) {
	switch a.Func {
	case Count, CountAll:
		return value.KindInt, nil
	case Avg:
		return value.KindFloat, nil
	case Sum:
		k, err := s.KindOf(a.Arg)
		if err != nil {
			return value.KindInvalid, err
		}
		if k != value.KindInt && k != value.KindFloat {
			return value.KindInvalid, fmt.Errorf("expr: SUM over non-numeric attribute %s", a.Arg)
		}
		return k, nil
	default: // Min, Max
		return s.KindOf(a.Arg)
	}
}

// Attrs adds the aggregate's argument attribute to set.
func (a Aggregate) Attrs(set map[string]bool) {
	if a.Func != CountAll && a.Arg != "" {
		set[a.Arg] = true
	}
}

// Accumulator computes one aggregate over a stream of values.
type Accumulator struct {
	fn    AggFunc
	n     int64
	sumI  int64
	sumF  float64
	isInt bool
	best  value.Value
}

// NewAccumulator returns an accumulator for f; isInt selects integer SUM.
func NewAccumulator(f AggFunc, isInt bool) *Accumulator {
	return &Accumulator{fn: f, isInt: isInt}
}

// Add folds one value (ignored for COUNT(*) semantics if invalid).
func (ac *Accumulator) Add(v value.Value) {
	ac.n++
	switch ac.fn {
	case Sum, Avg:
		if ac.isInt && v.Kind() == value.KindInt {
			ac.sumI += v.AsInt()
		} else {
			ac.sumF += v.NumericValue()
		}
	case Min:
		if !ac.best.IsValid() || v.Compare(ac.best) < 0 {
			ac.best = v
		}
	case Max:
		if !ac.best.IsValid() || v.Compare(ac.best) > 0 {
			ac.best = v
		}
	}
}

// Result returns the aggregate value; aggregates over empty groups return
// COUNT=0 and invalid for the rest (the algebra's aggregation only produces
// non-empty groups, so this does not surface in query results).
func (ac *Accumulator) Result() value.Value {
	switch ac.fn {
	case Count, CountAll:
		return value.Int(ac.n)
	case Sum:
		if ac.isInt {
			return value.Int(ac.sumI)
		}
		return value.Float(ac.sumF)
	case Avg:
		if ac.n == 0 {
			return value.Value{}
		}
		total := ac.sumF
		if ac.isInt {
			total = float64(ac.sumI)
		}
		return value.Float(total / float64(ac.n))
	default:
		return ac.best
	}
}
