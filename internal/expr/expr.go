// Package expr implements the scalar expressions, selection predicates and
// aggregate descriptors of the algebra.
//
// Rule preconditions in Section 4 of the paper use the function attr(),
// which returns the set of attributes used in a selection predicate or in
// projection functions (e.g., rule C3 requires T1 ∉ attr(P) ∧ T2 ∉ attr(P));
// every node here therefore reports its attribute set.
package expr

import (
	"fmt"
	"sort"

	"tqp/internal/period"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// Expr is a scalar expression evaluated against a tuple.
type Expr interface {
	// Eval computes the expression over t, which conforms to s.
	Eval(s *schema.Schema, t relation.Tuple) (value.Value, error)
	// Kind returns the expression's result domain under s.
	Kind(s *schema.Schema) (value.Kind, error)
	// Attrs adds every attribute mentioned by the expression to set.
	Attrs(set map[string]bool)
	// String renders the expression.
	String() string
	// EqualExpr reports structural equality.
	EqualExpr(other Expr) bool
}

// Col references an attribute by name.
type Col struct{ Name string }

// Column returns a column reference expression.
func Column(name string) Col { return Col{Name: name} }

// Eval implements Expr.
func (c Col) Eval(s *schema.Schema, t relation.Tuple) (value.Value, error) {
	i := s.Index(c.Name)
	if i < 0 {
		return value.Value{}, fmt.Errorf("expr: unknown attribute %q in schema %s", c.Name, s)
	}
	return t[i], nil
}

// Kind implements Expr.
func (c Col) Kind(s *schema.Schema) (value.Kind, error) { return s.KindOf(c.Name) }

// Attrs implements Expr.
func (c Col) Attrs(set map[string]bool) { set[c.Name] = true }

// String implements Expr.
func (c Col) String() string { return c.Name }

// EqualExpr implements Expr.
func (c Col) EqualExpr(other Expr) bool {
	o, ok := other.(Col)
	return ok && o.Name == c.Name
}

// Lit is a literal value.
type Lit struct{ Val value.Value }

// Literal returns a literal expression.
func Literal(v value.Value) Lit { return Lit{Val: v} }

// Eval implements Expr.
func (l Lit) Eval(*schema.Schema, relation.Tuple) (value.Value, error) { return l.Val, nil }

// Kind implements Expr.
func (l Lit) Kind(*schema.Schema) (value.Kind, error) { return l.Val.Kind(), nil }

// Attrs implements Expr.
func (l Lit) Attrs(map[string]bool) {}

// String implements Expr.
func (l Lit) String() string {
	if l.Val.Kind() == value.KindString {
		return "'" + l.Val.String() + "'"
	}
	return l.Val.String()
}

// EqualExpr implements Expr.
func (l Lit) EqualExpr(other Expr) bool {
	o, ok := other.(Lit)
	return ok && o.Val.Equal(l.Val) && o.Val.Kind() == l.Val.Kind()
}

// ArithOp is an arithmetic operator.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	default:
		return "/"
	}
}

// Arith is a binary arithmetic expression over numeric or time operands.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr.
func (a Arith) Eval(s *schema.Schema, t relation.Tuple) (value.Value, error) {
	lv, err := a.L.Eval(s, t)
	if err != nil {
		return value.Value{}, err
	}
	rv, err := a.R.Eval(s, t)
	if err != nil {
		return value.Value{}, err
	}
	// Time arithmetic: time ± int yields time; time - time yields int.
	if lv.Kind() == value.KindTime || rv.Kind() == value.KindTime {
		return evalTimeArith(a.Op, lv, rv)
	}
	if !lv.Numeric() || !rv.Numeric() {
		return value.Value{}, fmt.Errorf("expr: %s over non-numeric operands %s, %s", a.Op, lv.Kind(), rv.Kind())
	}
	if lv.Kind() == value.KindInt && rv.Kind() == value.KindInt && a.Op != Div {
		x, y := lv.AsInt(), rv.AsInt()
		switch a.Op {
		case Add:
			return value.Int(x + y), nil
		case Sub:
			return value.Int(x - y), nil
		case Mul:
			return value.Int(x * y), nil
		}
	}
	x, y := lv.NumericValue(), rv.NumericValue()
	switch a.Op {
	case Add:
		return value.Float(x + y), nil
	case Sub:
		return value.Float(x - y), nil
	case Mul:
		return value.Float(x * y), nil
	default:
		if y == 0 {
			return value.Value{}, fmt.Errorf("expr: division by zero")
		}
		return value.Float(x / y), nil
	}
}

func evalTimeArith(op ArithOp, lv, rv value.Value) (value.Value, error) {
	switch {
	case lv.Kind() == value.KindTime && rv.Kind() == value.KindInt:
		switch op {
		case Add:
			return value.Time(lv.AsTime() + period.Chronon(rv.AsInt())), nil
		case Sub:
			return value.Time(lv.AsTime() - period.Chronon(rv.AsInt())), nil
		}
	case lv.Kind() == value.KindTime && rv.Kind() == value.KindTime && op == Sub:
		return value.Int(int64(lv.AsTime() - rv.AsTime())), nil
	}
	return value.Value{}, fmt.Errorf("expr: unsupported time arithmetic %s %s %s", lv.Kind(), op, rv.Kind())
}

// Kind implements Expr.
func (a Arith) Kind(s *schema.Schema) (value.Kind, error) {
	lk, err := a.L.Kind(s)
	if err != nil {
		return value.KindInvalid, err
	}
	rk, err := a.R.Kind(s)
	if err != nil {
		return value.KindInvalid, err
	}
	switch {
	case lk == value.KindTime && rk == value.KindInt:
		return value.KindTime, nil
	case lk == value.KindTime && rk == value.KindTime && a.Op == Sub:
		return value.KindInt, nil
	case lk == value.KindInt && rk == value.KindInt && a.Op != Div:
		return value.KindInt, nil
	case (lk == value.KindInt || lk == value.KindFloat) && (rk == value.KindInt || rk == value.KindFloat):
		return value.KindFloat, nil
	}
	return value.KindInvalid, fmt.Errorf("expr: invalid arithmetic %s %s %s", lk, a.Op, rk)
}

// Attrs implements Expr.
func (a Arith) Attrs(set map[string]bool) {
	a.L.Attrs(set)
	a.R.Attrs(set)
}

// String implements Expr.
func (a Arith) String() string {
	return "(" + a.L.String() + " " + a.Op.String() + " " + a.R.String() + ")"
}

// EqualExpr implements Expr.
func (a Arith) EqualExpr(other Expr) bool {
	o, ok := other.(Arith)
	return ok && o.Op == a.Op && a.L.EqualExpr(o.L) && a.R.EqualExpr(o.R)
}

// AttrsOf returns the sorted attribute set of any Expr or Pred.
func AttrsOf(node interface{ Attrs(map[string]bool) }) []string {
	set := make(map[string]bool)
	node.Attrs(set)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// UsesTime reports whether the node mentions either reserved time attribute —
// the precondition test "T1 ∉ attr(·) ∧ T2 ∉ attr(·)" of rules C3/C4.
func UsesTime(node interface{ Attrs(map[string]bool) }) bool {
	set := make(map[string]bool)
	node.Attrs(set)
	return set[schema.T1] || set[schema.T2]
}
