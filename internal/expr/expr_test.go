package expr

import (
	"strings"
	"testing"

	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func testSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr("Score", value.KindFloat),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime),
	)
}

func testTuple() relation.Tuple {
	return relation.NewTuple(
		value.String_("ada"), value.Int(3), value.Float(1.5),
		value.Time(2), value.Time(8))
}

func evalExpr(t *testing.T, e Expr) value.Value {
	t.Helper()
	v, err := e.Eval(testSchema(), testTuple())
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestColumnAndLiteral(t *testing.T) {
	if got := evalExpr(t, Column("Grp")); got.AsInt() != 3 {
		t.Errorf("Grp = %v", got)
	}
	if got := evalExpr(t, Literal(value.Int(9))); got.AsInt() != 9 {
		t.Errorf("literal = %v", got)
	}
	if _, err := Column("missing").Eval(testSchema(), testTuple()); err == nil {
		t.Error("missing column should fail")
	}
	if k, _ := Column("Score").Kind(testSchema()); k != value.KindFloat {
		t.Error("column kind")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{Arith{Op: Add, L: Column("Grp"), R: Literal(value.Int(2))}, value.Int(5)},
		{Arith{Op: Sub, L: Column("Grp"), R: Literal(value.Int(1))}, value.Int(2)},
		{Arith{Op: Mul, L: Column("Grp"), R: Column("Grp")}, value.Int(9)},
		{Arith{Op: Div, L: Literal(value.Int(7)), R: Literal(value.Int(2))}, value.Float(3.5)},
		{Arith{Op: Add, L: Column("Score"), R: Literal(value.Int(1))}, value.Float(2.5)},
		// Time arithmetic: T2 - T1 = duration; T1 + 3 = instant.
		{Arith{Op: Sub, L: Column("T2"), R: Column("T1")}, value.Int(6)},
		{Arith{Op: Add, L: Column("T1"), R: Literal(value.Int(3))}, value.Time(5)},
	}
	for _, c := range cases {
		if got := evalExpr(t, c.e); !got.Equal(c.want) || got.Kind() != c.want.Kind() {
			t.Errorf("%s = %v (%v), want %v (%v)", c.e, got, got.Kind(), c.want, c.want.Kind())
		}
	}
	if _, err := (Arith{Op: Div, L: Column("Grp"), R: Literal(value.Int(0))}).Eval(testSchema(), testTuple()); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := (Arith{Op: Add, L: Column("Name"), R: Literal(value.Int(1))}).Eval(testSchema(), testTuple()); err == nil {
		t.Error("string arithmetic should fail")
	}
}

func TestPredicates(t *testing.T) {
	grpLt5 := Compare(Lt, Column("Grp"), Literal(value.Int(5)))
	grpGt5 := Compare(Gt, Column("Grp"), Literal(value.Int(5)))
	cases := []struct {
		p    Pred
		want bool
	}{
		{grpLt5, true},
		{grpGt5, false},
		{Compare(Eq, Column("Name"), Literal(value.String_("ada"))), true},
		{Compare(Ne, Column("Name"), Literal(value.String_("bob"))), true},
		{Compare(Le, Column("Grp"), Literal(value.Int(3))), true},
		{Compare(Ge, Column("Grp"), Literal(value.Int(4))), false},
		{Conj(grpLt5, grpGt5), false},
		{Disj(grpLt5, grpGt5), true},
		{Neg(grpGt5), true},
		{TruePred{}, true},
	}
	for _, c := range cases {
		got, err := c.p.Holds(testSchema(), testTuple())
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPeriodPredicates(t *testing.T) {
	// Tuple period is [2,8).
	pp := func(op PeriodOp, s, e int64) PeriodPred {
		return PeriodPred{
			Op:     op,
			AStart: Column("T1"), AEnd: Column("T2"),
			BStart: Literal(value.Int(s)), BEnd: Literal(value.Int(e)),
		}
	}
	cases := []struct {
		p    Pred
		want bool
	}{
		{pp(POverlaps, 7, 10), true},
		{pp(POverlaps, 8, 10), false},
		{pp(PContains, 3, 5), true},
		{pp(PContains, 1, 5), false},
		{pp(PMeets, 8, 10), true},
		{pp(PPrecedes, 9, 12), true},
		{pp(PPrecedes, 5, 12), false},
	}
	for _, c := range cases {
		got, err := c.p.Holds(testSchema(), testTuple())
		if err != nil {
			t.Fatalf("%s: %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.p, got, c.want)
		}
	}
	bad := PeriodPred{Op: POverlaps,
		AStart: Column("Name"), AEnd: Column("T2"),
		BStart: Column("T1"), BEnd: Column("T2")}
	if _, err := bad.Holds(testSchema(), testTuple()); err == nil {
		t.Error("non-time operand should fail")
	}
}

func TestAttrsAndUsesTime(t *testing.T) {
	p := Conj(
		Compare(Lt, Column("Grp"), Literal(value.Int(5))),
		Compare(Ge, Column("T1"), Literal(value.Time(2))))
	attrs := AttrsOf(p)
	if len(attrs) != 2 || attrs[0] != "Grp" || attrs[1] != "T1" {
		t.Errorf("AttrsOf = %v", attrs)
	}
	if !UsesTime(p) {
		t.Error("predicate uses T1")
	}
	q := Compare(Eq, Column("Name"), Literal(value.String_("x")))
	if UsesTime(q) {
		t.Error("q does not use time attributes")
	}
}

func TestSubstitution(t *testing.T) {
	env := map[string]Expr{"Grp": Arith{Op: Add, L: Column("Score"), R: Literal(value.Int(1))}}
	e, err := SubstExpr(Arith{Op: Mul, L: Column("Grp"), R: Literal(value.Int(2))}, env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Eval(testSchema(), testTuple())
	if err != nil {
		t.Fatal(err)
	}
	if got.AsFloat() != 5.0 { // (1.5+1)*2
		t.Errorf("substituted expression = %v", got)
	}

	p, err := SubstPred(Compare(Gt, Column("Grp"), Literal(value.Int(4))), env)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := p.Holds(testSchema(), testTuple())
	if err != nil {
		t.Fatal(err)
	}
	if ok { // 2.5 > 4 is false
		t.Error("substituted predicate")
	}

	r, err := RenamePred(Compare(Eq, Column("Grp"), Column("Grp")), map[string]string{"Grp": "Score"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.String(), "Score") {
		t.Errorf("rename: %s", r)
	}
}

func TestConjSplitRoundTrip(t *testing.T) {
	a := Compare(Lt, Column("Grp"), Literal(value.Int(5)))
	b := Compare(Gt, Column("Grp"), Literal(value.Int(1)))
	c := TruePred{}
	folded := ConjList([]Pred{a, b, c})
	parts := SplitConj(folded)
	if len(parts) != 3 {
		t.Fatalf("SplitConj = %d parts", len(parts))
	}
	if !parts[0].EqualPred(a) || !parts[1].EqualPred(b) || !parts[2].EqualPred(c) {
		t.Error("round trip broke predicate identity")
	}
	if !ConjList(nil).EqualPred(TruePred{}) {
		t.Error("empty conjunction is TRUE")
	}
}

func TestAggregates(t *testing.T) {
	s := testSchema()
	cases := []struct {
		agg  Aggregate
		vals []value.Value
		want value.Value
	}{
		{Aggregate{Func: CountAll, As: "c"}, []value.Value{value.Int(1), value.Int(1)}, value.Int(2)},
		{Aggregate{Func: Sum, Arg: "Grp", As: "s"}, []value.Value{value.Int(2), value.Int(3)}, value.Int(5)},
		{Aggregate{Func: Avg, Arg: "Grp", As: "a"}, []value.Value{value.Int(2), value.Int(4)}, value.Float(3)},
		{Aggregate{Func: Min, Arg: "Grp", As: "m"}, []value.Value{value.Int(4), value.Int(2)}, value.Int(2)},
		{Aggregate{Func: Max, Arg: "Grp", As: "M"}, []value.Value{value.Int(4), value.Int(9)}, value.Int(9)},
	}
	for _, c := range cases {
		isInt := true
		acc := NewAccumulator(c.agg.Func, isInt)
		for _, v := range c.vals {
			acc.Add(v)
		}
		if got := acc.Result(); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.agg, got, c.want)
		}
		if _, err := c.agg.ResultKind(s); err != nil {
			t.Errorf("%s: ResultKind: %v", c.agg, err)
		}
	}
	if !(Min).DuplicateInsensitive() || (Sum).DuplicateInsensitive() {
		t.Error("DuplicateInsensitive")
	}
	bad := Aggregate{Func: Sum, Arg: "Name", As: "s"}
	if _, err := bad.ResultKind(s); err == nil {
		t.Error("SUM over a string should fail")
	}
}
