package expr

import (
	"fmt"

	"tqp/internal/relation"
	"tqp/internal/schema"
)

// Pred is a selection predicate evaluated against a tuple.
type Pred interface {
	// Holds reports whether the predicate is satisfied by t under s.
	Holds(s *schema.Schema, t relation.Tuple) (bool, error)
	// Attrs adds every attribute mentioned by the predicate to set; this is
	// the paper's attr(P) used in rule preconditions.
	Attrs(set map[string]bool)
	// String renders the predicate.
	String() string
	// EqualPred reports structural equality.
	EqualPred(other Pred) bool
}

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	default:
		return ">="
	}
}

// Cmp compares two scalar expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Compare builds a comparison predicate.
func Compare(op CmpOp, l, r Expr) Cmp { return Cmp{Op: op, L: l, R: r} }

// Holds implements Pred.
func (c Cmp) Holds(s *schema.Schema, t relation.Tuple) (bool, error) {
	lv, err := c.L.Eval(s, t)
	if err != nil {
		return false, err
	}
	rv, err := c.R.Eval(s, t)
	if err != nil {
		return false, err
	}
	cr := lv.Compare(rv)
	switch c.Op {
	case Eq:
		return cr == 0, nil
	case Ne:
		return cr != 0, nil
	case Lt:
		return cr < 0, nil
	case Le:
		return cr <= 0, nil
	case Gt:
		return cr > 0, nil
	default:
		return cr >= 0, nil
	}
}

// Attrs implements Pred.
func (c Cmp) Attrs(set map[string]bool) {
	c.L.Attrs(set)
	c.R.Attrs(set)
}

// String implements Pred.
func (c Cmp) String() string { return c.L.String() + " " + c.Op.String() + " " + c.R.String() }

// EqualPred implements Pred.
func (c Cmp) EqualPred(other Pred) bool {
	o, ok := other.(Cmp)
	return ok && o.Op == c.Op && c.L.EqualExpr(o.L) && c.R.EqualExpr(o.R)
}

// And is a conjunction of predicates.
type And struct{ L, R Pred }

// Conj builds a conjunction.
func Conj(l, r Pred) And { return And{L: l, R: r} }

// Holds implements Pred.
func (a And) Holds(s *schema.Schema, t relation.Tuple) (bool, error) {
	lb, err := a.L.Holds(s, t)
	if err != nil || !lb {
		return false, err
	}
	return a.R.Holds(s, t)
}

// Attrs implements Pred.
func (a And) Attrs(set map[string]bool) {
	a.L.Attrs(set)
	a.R.Attrs(set)
}

// String implements Pred.
func (a And) String() string { return "(" + a.L.String() + " AND " + a.R.String() + ")" }

// EqualPred implements Pred.
func (a And) EqualPred(other Pred) bool {
	o, ok := other.(And)
	return ok && a.L.EqualPred(o.L) && a.R.EqualPred(o.R)
}

// Or is a disjunction of predicates.
type Or struct{ L, R Pred }

// Disj builds a disjunction.
func Disj(l, r Pred) Or { return Or{L: l, R: r} }

// Holds implements Pred.
func (o Or) Holds(s *schema.Schema, t relation.Tuple) (bool, error) {
	lb, err := o.L.Holds(s, t)
	if err != nil || lb {
		return lb, err
	}
	return o.R.Holds(s, t)
}

// Attrs implements Pred.
func (o Or) Attrs(set map[string]bool) {
	o.L.Attrs(set)
	o.R.Attrs(set)
}

// String implements Pred.
func (o Or) String() string { return "(" + o.L.String() + " OR " + o.R.String() + ")" }

// EqualPred implements Pred.
func (o Or) EqualPred(other Pred) bool {
	p, ok := other.(Or)
	return ok && o.L.EqualPred(p.L) && o.R.EqualPred(p.R)
}

// Not negates a predicate.
type Not struct{ P Pred }

// Neg builds a negation.
func Neg(p Pred) Not { return Not{P: p} }

// Holds implements Pred.
func (n Not) Holds(s *schema.Schema, t relation.Tuple) (bool, error) {
	b, err := n.P.Holds(s, t)
	return !b, err
}

// Attrs implements Pred.
func (n Not) Attrs(set map[string]bool) { n.P.Attrs(set) }

// String implements Pred.
func (n Not) String() string { return "NOT " + n.P.String() }

// EqualPred implements Pred.
func (n Not) EqualPred(other Pred) bool {
	o, ok := other.(Not)
	return ok && n.P.EqualPred(o.P)
}

// TruePred is the always-true predicate.
type TruePred struct{}

// Holds implements Pred.
func (TruePred) Holds(*schema.Schema, relation.Tuple) (bool, error) { return true, nil }

// Attrs implements Pred.
func (TruePred) Attrs(map[string]bool) {}

// String implements Pred.
func (TruePred) String() string { return "TRUE" }

// EqualPred implements Pred.
func (TruePred) EqualPred(other Pred) bool {
	_, ok := other.(TruePred)
	return ok
}

// PeriodOp names an Allen-style period predicate over the tuple's own
// period attributes or over two qualified periods (e.g., in a temporal join
// condition).
type PeriodOp uint8

// Period predicates: the statement classes of Section 2.2 include statements
// that explicitly manipulate time values with "convenient operations and
// predicates defined on them"; these are those predicates.
const (
	POverlaps PeriodOp = iota
	PContains
	PMeets
	PPrecedes
)

func (op PeriodOp) String() string {
	switch op {
	case POverlaps:
		return "OVERLAPS"
	case PContains:
		return "CONTAINS"
	case PMeets:
		return "MEETS"
	default:
		return "PRECEDES"
	}
}

// PeriodPred applies a period predicate to two periods given by their
// endpoint expressions.
type PeriodPred struct {
	Op           PeriodOp
	AStart, AEnd Expr
	BStart, BEnd Expr
}

// Holds implements Pred.
func (p PeriodPred) Holds(s *schema.Schema, t relation.Tuple) (bool, error) {
	as, err := p.AStart.Eval(s, t)
	if err != nil {
		return false, err
	}
	ae, err := p.AEnd.Eval(s, t)
	if err != nil {
		return false, err
	}
	bs, err := p.BStart.Eval(s, t)
	if err != nil {
		return false, err
	}
	be, err := p.BEnd.Eval(s, t)
	if err != nil {
		return false, err
	}
	as, ae, bs, be, err = coerceTimes(p.Op, as, ae, bs, be)
	if err != nil {
		return false, err
	}
	a := periodOf(as, ae)
	b := periodOf(bs, be)
	switch p.Op {
	case POverlaps:
		return a.Overlaps(b), nil
	case PContains:
		return a.ContainsPeriod(b), nil
	case PMeets:
		return a.Meets(b), nil
	default:
		return a.Precedes(b), nil
	}
}

// Attrs implements Pred.
func (p PeriodPred) Attrs(set map[string]bool) {
	p.AStart.Attrs(set)
	p.AEnd.Attrs(set)
	p.BStart.Attrs(set)
	p.BEnd.Attrs(set)
}

// String implements Pred.
func (p PeriodPred) String() string {
	return fmt.Sprintf("PERIOD(%s,%s) %s PERIOD(%s,%s)",
		p.AStart, p.AEnd, p.Op, p.BStart, p.BEnd)
}

// EqualPred implements Pred.
func (p PeriodPred) EqualPred(other Pred) bool {
	o, ok := other.(PeriodPred)
	return ok && o.Op == p.Op &&
		p.AStart.EqualExpr(o.AStart) && p.AEnd.EqualExpr(o.AEnd) &&
		p.BStart.EqualExpr(o.BStart) && p.BEnd.EqualExpr(o.BEnd)
}

// ConjList folds a list of predicates into a right-nested conjunction;
// an empty list yields TruePred.
func ConjList(ps []Pred) Pred {
	switch len(ps) {
	case 0:
		return TruePred{}
	case 1:
		return ps[0]
	default:
		return Conj(ps[0], ConjList(ps[1:]))
	}
}

// SplitConj splits a predicate into its top-level conjuncts; used by the
// selection-cascade rule P2.
func SplitConj(p Pred) []Pred {
	if a, ok := p.(And); ok {
		return append(SplitConj(a.L), SplitConj(a.R)...)
	}
	return []Pred{p}
}
