package expr

import "fmt"

// SubstExpr replaces every column reference in e according to env: a column
// named n becomes env[n] when present. It is the engine behind projection
// composition (rule P7) and selection/projection pushdown (rule P8).
func SubstExpr(e Expr, env map[string]Expr) (Expr, error) {
	switch node := e.(type) {
	case Col:
		if repl, ok := env[node.Name]; ok {
			return repl, nil
		}
		return node, nil
	case Lit:
		return node, nil
	case Arith:
		l, err := SubstExpr(node.L, env)
		if err != nil {
			return nil, err
		}
		r, err := SubstExpr(node.R, env)
		if err != nil {
			return nil, err
		}
		return Arith{Op: node.Op, L: l, R: r}, nil
	default:
		return nil, fmt.Errorf("expr: cannot substitute into %T", e)
	}
}

// SubstPred replaces every column reference in p according to env.
func SubstPred(p Pred, env map[string]Expr) (Pred, error) {
	switch node := p.(type) {
	case Cmp:
		l, err := SubstExpr(node.L, env)
		if err != nil {
			return nil, err
		}
		r, err := SubstExpr(node.R, env)
		if err != nil {
			return nil, err
		}
		return Cmp{Op: node.Op, L: l, R: r}, nil
	case And:
		l, err := SubstPred(node.L, env)
		if err != nil {
			return nil, err
		}
		r, err := SubstPred(node.R, env)
		if err != nil {
			return nil, err
		}
		return And{L: l, R: r}, nil
	case Or:
		l, err := SubstPred(node.L, env)
		if err != nil {
			return nil, err
		}
		r, err := SubstPred(node.R, env)
		if err != nil {
			return nil, err
		}
		return Or{L: l, R: r}, nil
	case Not:
		inner, err := SubstPred(node.P, env)
		if err != nil {
			return nil, err
		}
		return Not{P: inner}, nil
	case TruePred:
		return node, nil
	case PeriodPred:
		as, err := SubstExpr(node.AStart, env)
		if err != nil {
			return nil, err
		}
		ae, err := SubstExpr(node.AEnd, env)
		if err != nil {
			return nil, err
		}
		bs, err := SubstExpr(node.BStart, env)
		if err != nil {
			return nil, err
		}
		be, err := SubstExpr(node.BEnd, env)
		if err != nil {
			return nil, err
		}
		return PeriodPred{Op: node.Op, AStart: as, AEnd: ae, BStart: bs, BEnd: be}, nil
	default:
		return nil, fmt.Errorf("expr: cannot substitute into %T", p)
	}
}

// RenameEnv builds a substitution environment from an attribute-rename map.
func RenameEnv(renames map[string]string) map[string]Expr {
	env := make(map[string]Expr, len(renames))
	for old, new := range renames {
		env[old] = Column(new)
	}
	return env
}

// RenamePred renames attributes in p per the given map.
func RenamePred(p Pred, renames map[string]string) (Pred, error) {
	return SubstPred(p, RenameEnv(renames))
}
