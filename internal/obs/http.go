package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry on /metrics in
// Prometheus text format, with the runtime profiling endpoints wired
// under /debug/pprof/. Both tqserver and tqcoord mount this on their
// -metrics-addr listener; the explicit pprof routes (instead of the
// net/http/pprof side-effect import) keep the handlers off
// http.DefaultServeMux, so nothing leaks onto a mux the binary does not
// own.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves Handler(r) on it until the returned
// shutdown function is called. It returns the bound address (useful with
// ":0" in tests) or an error if the listen fails. Serving errors after a
// successful bind are dropped: the metrics listener is best-effort
// scaffolding and must never take the query service down with it.
func Serve(addr string, r *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
