package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tqp/internal/obs"
)

func TestCounterGauge(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("y", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestRegistrationIdempotent pins the sharing contract: a second
// registration of the same series returns the same collector, and a
// type-confused re-registration panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("same-series registration must return the existing counter")
	}
	l1 := r.Counter("labeled_total", "help", obs.L("k", "a"))
	l2 := r.Counter("labeled_total", "help", obs.L("k", "b"))
	if l1 == l2 {
		t.Fatal("distinct label sets must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestHistogramQuantiles(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat", "help", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all land in the (1,2] bucket
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Sum(); got < 149.9 || got > 150.1 {
		t.Fatalf("sum = %v, want 150", got)
	}
	// The whole mass is in (1,2]; the median interpolates to its middle.
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", got)
	}
	h.Observe(100) // past the last bound: +Inf bucket
	if got := h.Quantile(1); got != 8 {
		t.Fatalf("p100 with +Inf mass = %v, want last bound 8", got)
	}
	s := h.Snapshot()
	if s.Count != 101 || s.P50 <= 0 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestDefaultBuckets(t *testing.T) {
	for _, b := range [][]float64{obs.LatencyBuckets(), obs.SizeBuckets()} {
		if len(b) == 0 {
			t.Fatal("empty default bucket set")
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("bounds not ascending: %v", b)
			}
		}
	}
}

// TestWritePrometheus pins the exposition format: HELP/TYPE lines,
// cumulative le buckets, +Inf, _sum/_count, label escaping.
func TestWritePrometheus(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("q_total", "Total queries.").Add(3)
	r.GaugeFunc("up_seconds", "Uptime.", func() float64 { return 1.5 })
	h := r.Histogram("lat_seconds", "Latency.", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	r.Counter("err_total", `Errors by code.`, obs.L("code", `we"ird`)).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP q_total Total queries.\n# TYPE q_total counter\nq_total 3\n",
		"# TYPE up_seconds gauge\nup_seconds 1.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="1"} 1`,
		`lat_seconds_bucket{le="2"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 11\n",
		"lat_seconds_count 3\n",
		`err_total{code="we\"ird"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsHandler serves a registry over the /metrics handler and
// checks content type and body.
func TestMetricsHandler(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("x_total", "help").Add(7)
	srv := httptest.NewServer(obs.Handler(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "x_total 7") {
		t.Fatalf("scrape missing counter:\n%s", body)
	}
	// The pprof index must answer on the same listener.
	pp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", pp.StatusCode)
	}
}

// TestRegistryRace hammers one registry from 32 goroutines — counters,
// gauges, histograms, lazy label registration — while scrapes render
// concurrently. Run under -race this is the data-race gate for the whole
// metrics layer.
func TestRegistryRace(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat", "help", obs.LatencyBuckets())
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("per_code_total", "help", obs.L("code", string(rune('a'+g%8))))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				r.Gauge("g", "help").Set(int64(i))
				h.Observe(float64(i%100) / 1000)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "per_code_total{") {
		t.Fatal("scrape after race missing labeled family")
	}
}

// sinkRecorder captures emitted records for assertions.
type sinkRecorder struct {
	mu   sync.Mutex
	recs []*obs.QueryRecord
}

func (s *sinkRecorder) Emit(r *obs.QueryRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, r)
}

func (s *sinkRecorder) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

func TestQueryLogThresholds(t *testing.T) {
	var nilLog *obs.QueryLog
	if nilLog.Enabled() {
		t.Fatal("nil log must be disabled")
	}
	nilLog.Emit(&obs.QueryRecord{}) // must not panic

	if obs.NewQueryLog(nil, 0).Enabled() {
		t.Fatal("nil sink must disable logging")
	}

	rec := &sinkRecorder{}
	l := obs.NewQueryLog(rec, 10) // slow threshold: 10ms
	l.Emit(&obs.QueryRecord{ExecMS: 5})
	if rec.len() != 0 {
		t.Fatal("fast success must be filtered")
	}
	l.Emit(&obs.QueryRecord{ExecMS: 5, Code: "exec"})
	if rec.len() != 1 {
		t.Fatal("errors must always log")
	}
	l.Emit(&obs.QueryRecord{QueueMS: 4, PlanMS: 4, ExecMS: 4})
	if rec.len() != 2 {
		t.Fatal("slow success (total 12ms >= 10ms) must log")
	}
}

// TestWriterSink pins the query log's line format: one JSON object per
// line, parseable back into the record shape.
func TestWriterSink(t *testing.T) {
	var b strings.Builder
	s := obs.WriterSink(&b)
	s.Emit(&obs.QueryRecord{SQLHash: "abc", Engine: "exec", Rows: 3, ExecMS: 1.5})
	line := b.String()
	if !strings.HasSuffix(line, "\n") {
		t.Fatal("record must end with newline")
	}
	var back obs.QueryRecord
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("record not JSON: %v", err)
	}
	if back.SQLHash != "abc" || back.Rows != 3 {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestHashStable(t *testing.T) {
	a, b := obs.Hash("SELECT 1"), obs.Hash("SELECT 1")
	if a != b || len(a) != 16 {
		t.Fatalf("Hash not a stable 16-hex id: %q %q", a, b)
	}
	if obs.Hash("SELECT 2") == a {
		t.Fatal("distinct inputs must hash apart")
	}
}

func TestPlanProbe(t *testing.T) {
	p := obs.NewPlanProbe()
	p.Observe("0.1", obs.RunSample{Rows: 5, Wall: time.Millisecond, PeakBytes: 10})
	p.Observe("0.1", obs.RunSample{Rows: 2, Wall: time.Millisecond, PeakBytes: 4})
	p.Observe("ε", obs.RunSample{Rows: 1})
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	n := p.Get("0.1")
	if n == nil || n.Rows != 7 || n.Evals != 2 || n.Wall != 2*time.Millisecond || n.PeakBytes != 10 {
		t.Fatalf("merged stats = %+v", n)
	}
	if p.Get("missing") != nil {
		t.Fatal("unobserved path must be nil")
	}
	seen := map[string]int64{}
	p.Each(func(path string, n *obs.NodeStats) { seen[path] = n.Rows })
	if seen["ε"] != 1 || seen["0.1"] != 7 {
		t.Fatalf("Each = %v", seen)
	}
}
