package obs

import (
	"sync"
	"time"
)

// RunSample is one engine evaluation's worth of actuals. The exec engines
// surface it through SetProbe at the end of each Eval; the stratum
// executor evaluates layered plans node-by-node on fresh engine
// instances, so under EXPLAIN ANALYZE each sample maps one-to-one onto a
// plan node.
type RunSample struct {
	Rows         int64         // tuples in the evaluation's result
	Batches      int64         // columnar batches produced (0 on tuple paths)
	Wall         time.Duration // wall time of the evaluation
	SpilledBytes int64         // bytes written to spill files
	SpilledOps   int64         // operators that spilled
	PeakBytes    int64         // peak tracked memory
}

// NodeStats accumulates samples for one plan node, keyed by the node's
// algebra path (the stable plan-node ID). Evals and Merge exist because a
// node can be evaluated more than once (retries, shard fan-out); for the
// single-process EXPLAIN ANALYZE path Evals is 1.
type NodeStats struct {
	RunSample
	Evals int64
}

// Merge folds s into n. Rows/Batches/Spill accumulate; Wall accumulates
// (total time attributed to the node); PeakBytes keeps the max.
func (n *NodeStats) Merge(s RunSample) {
	n.Evals++
	n.Rows += s.Rows
	n.Batches += s.Batches
	n.Wall += s.Wall
	n.SpilledBytes += s.SpilledBytes
	n.SpilledOps += s.SpilledOps
	if s.PeakBytes > n.PeakBytes {
		n.PeakBytes = s.PeakBytes
	}
}

// PlanProbe collects per-node actuals for one analyzed execution. Node
// IDs are algebra path strings ("ε", "0", "0.1.0"); obs stays
// dependency-free by treating them as opaque keys. Safe for concurrent
// use — parallel engines may observe from worker goroutines.
type PlanProbe struct {
	mu    sync.Mutex
	nodes map[string]*NodeStats
}

// NewPlanProbe returns an empty probe.
func NewPlanProbe() *PlanProbe {
	return &PlanProbe{nodes: make(map[string]*NodeStats)}
}

// Observe records one evaluation sample for the node at path.
func (p *PlanProbe) Observe(path string, s RunSample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ns, ok := p.nodes[path]
	if !ok {
		ns = &NodeStats{}
		p.nodes[path] = ns
	}
	ns.Merge(s)
}

// Get returns the accumulated stats for path, or nil if the node was
// never observed (e.g. it executed inside the DBMS black box).
func (p *PlanProbe) Get(path string) *NodeStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nodes[path]
}

// Len returns the number of observed nodes.
func (p *PlanProbe) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.nodes)
}

// Each calls fn for every observed node. Iteration order is unspecified;
// fn must not call back into the probe.
func (p *PlanProbe) Each(fn func(path string, n *NodeStats)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for path, n := range p.nodes {
		fn(path, n)
	}
}
