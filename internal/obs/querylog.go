package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// QueryRecord is one per-query structured log line. Latencies are split
// the way the server's pipeline is staged: queue (admission wait), plan
// (parse+optimize, 0 on cache hit), exec (engine evaluation), stream
// (result frames on the wire). All fields are stable JSON — the record is
// the schema external log pipelines parse.
type QueryRecord struct {
	Time         time.Time `json:"time"`
	SQLHash      string    `json:"sql_hash"`         // hash of the normalized statement
	Fingerprint  string    `json:"plan_fingerprint"` // plan identity (catalog+engine+sql)
	Engine       string    `json:"engine"`           // engine spec name
	Parallelism  int       `json:"parallelism,omitempty"`
	MemoryBudget int64     `json:"memory_budget,omitempty"`
	CacheHit     bool      `json:"cache_hit"`
	Rows         int64     `json:"rows"`
	QueueMS      float64   `json:"queue_ms"`
	PlanMS       float64   `json:"plan_ms"`
	ExecMS       float64   `json:"exec_ms"`
	StreamMS     float64   `json:"stream_ms"`
	PeakBytes    int64     `json:"peak_bytes,omitempty"`
	SpilledOps   int64     `json:"spilled_ops,omitempty"`
	SpilledBytes int64     `json:"spilled_bytes,omitempty"`
	Code         string    `json:"code,omitempty"` // error code on failure, empty on success
}

// TotalMS is the end-to-end latency the slow threshold applies to.
func (r *QueryRecord) TotalMS() float64 {
	return r.QueueMS + r.PlanMS + r.ExecMS + r.StreamMS
}

// Hash returns the stable 16-hex-char identity hash (truncated SHA-256)
// the observability layer keys things by: normalized SQL statements in
// the query log (callers normalize first, server.NormalizeSQL, so
// literal-spacing variants collapse) and canonical plan text for plan
// fingerprints.
func Hash(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:8])
}

// Sink receives completed query records. Implementations must be safe
// for concurrent use or wrap themselves in a lock; WriterSink locks.
type Sink interface {
	Emit(*QueryRecord)
}

// writerSink marshals records as JSON lines under a mutex.
type writerSink struct {
	mu sync.Mutex
	w  io.Writer
}

// WriterSink returns a Sink writing one JSON object per line to w.
func WriterSink(w io.Writer) Sink { return &writerSink{w: w} }

func (s *writerSink) Emit(r *QueryRecord) {
	b, err := json.Marshal(r)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.w.Write(b)
}

// QueryLog filters records through a slow threshold before handing them
// to the sink. SlowMS semantics: < 0 disables logging entirely, 0 logs
// every query, > 0 logs only queries whose total latency meets the
// threshold. Failed queries (Code != "") always log when logging is
// enabled — errors are the records you never want sampled away.
type QueryLog struct {
	sink   Sink
	slowMS float64
}

// NewQueryLog builds a log over sink. A nil sink disables logging
// regardless of slowMS.
func NewQueryLog(sink Sink, slowMS float64) *QueryLog {
	if sink == nil {
		slowMS = -1
	}
	return &QueryLog{sink: sink, slowMS: slowMS}
}

// Enabled reports whether Emit can ever write.
func (l *QueryLog) Enabled() bool { return l != nil && l.slowMS >= 0 }

// Emit applies the threshold and forwards r to the sink.
func (l *QueryLog) Emit(r *QueryRecord) {
	if !l.Enabled() {
		return
	}
	if r.Code == "" && r.TotalMS() < l.slowMS {
		return
	}
	l.sink.Emit(r)
}
