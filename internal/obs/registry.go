// Package obs is the dependency-free observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms) exported in
// Prometheus text exposition format, a structured JSON query log with a
// slow-query threshold, and the per-plan-node probe EXPLAIN ANALYZE
// collects actuals into. Every serving layer registers here —
// internal/server, internal/coord, internal/catalog and internal/store —
// and the tqserver/tqcoord -metrics-addr listeners scrape one shared
// Registry. The package imports only the standard library, so any layer
// may depend on it without widening the module's dependency surface.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant metric label (a {name="value"} pair in the
// exposition format). Labels are fixed at registration: the registry keys
// series by (metric name, label set), so two registrations with the same
// name and different labels are two series of one family.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metric is one registered series.
type metric struct {
	name   string // family name
	help   string
	typ    string // "counter", "gauge", "histogram"
	labels []Label

	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc/GaugeFunc callback
	hist    *Histogram
}

// seriesKey identifies a series within the registry.
func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + "=" + l.Value
	}
	sort.Strings(parts)
	return name + "{" + strings.Join(parts, ",") + "}"
}

// Registry holds metric series and renders them for scraping. All methods
// are safe for concurrent use; registration is idempotent — registering a
// name+label set that already exists returns the existing collector, so
// layers sharing one registry (a server and the catalog it serves) never
// fight over family ownership.
type Registry struct {
	mu     sync.Mutex
	series map[string]*metric
	order  []string // registration order, for stable family grouping
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*metric)}
}

// register adds m under its series key, returning the existing metric when
// the key is already taken (idempotent registration). A name reused with a
// different metric type is a programming error and panics: the exposition
// format forbids mixed-type families.
func (r *Registry) register(m *metric) *metric {
	key := seriesKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.series[key]; ok {
		if old.typ != m.typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", key, m.typ, old.typ))
		}
		return old
	}
	r.series[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(&metric{name: name, help: help, typ: "counter", labels: labels, counter: &Counter{}})
	return m.counter
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for layers that already keep their own atomic
// counters (the disk store, the coordinator) and should not take a
// dependency on registry handles in their hot paths.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, help: help, typ: "counter", labels: labels, fn: fn})
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(&metric{name: name, help: help, typ: "gauge", labels: labels, gauge: &Gauge{}})
	return m.gauge
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, help: help, typ: "gauge", labels: labels, fn: fn})
}

// Histogram is a fixed-bucket histogram: observation counts per upper
// bound plus a running sum and total count, rendered in the cumulative
// le-bucket form Prometheus expects. Buckets are fixed at registration;
// Observe is lock-free (atomic adds only), so request paths may observe
// from any number of goroutines while a scrape renders.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Find the first bucket whose upper bound contains v. Bucket counts
	// are stored per-bucket (not cumulative); rendering accumulates.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile approximates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket that holds it — the usual
// histogram_quantile estimate. It returns 0 with no observations; a
// quantile landing past the last finite bound reports that bound (the
// +Inf bucket has no width to interpolate in).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i, b := range h.bounds {
		c := h.counts[i].Load()
		if float64(seen)+float64(c) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			if c == 0 {
				return b
			}
			frac := (rank - float64(seen)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (b-lower)*frac
		}
		seen += c
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Snapshot is a point-in-time histogram summary, the shape the server's
// stats reply carries (scrape-free consumers like tqshell \stats).
type Snapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// LatencyBuckets is the default bound set for latency histograms, in
// seconds: 100µs to ~80s doubling, a range that covers a warm cached plan
// through a cold 1M-row spill run.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 20)
	for b := 0.0001; b < 100; b *= 2 {
		out = append(out, b)
	}
	return out
}

// SizeBuckets is the default bound set for row counts and byte sizes:
// powers of four from 1 to ~10^9.
func SizeBuckets() []float64 {
	out := make([]float64, 0, 16)
	for b := 1.0; b < 2e9; b *= 4 {
		out = append(out, b)
	}
	return out
}

// Histogram registers (or returns the existing) histogram series with the
// given ascending bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending at %d", name, i))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds))
	m := r.register(&metric{name: name, help: help, typ: "histogram", labels: labels, hist: h})
	return m.hist
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): one # HELP and # TYPE line per
// family, then each series' samples. Families render in first-registration
// order with their series grouped, so scrapes are stable and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	series := make([]*metric, len(keys))
	for i, k := range keys {
		series[i] = r.series[k]
	}
	r.mu.Unlock()

	// Group series by family, preserving registration order.
	byFamily := make(map[string][]*metric)
	var families []string
	for _, m := range series {
		if _, ok := byFamily[m.name]; !ok {
			families = append(families, m.name)
		}
		byFamily[m.name] = append(byFamily[m.name], m)
	}

	var b strings.Builder
	for _, fam := range families {
		ms := byFamily[fam]
		fmt.Fprintf(&b, "# HELP %s %s\n", fam, escapeHelp(ms[0].help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, ms[0].typ)
		for _, m := range ms {
			switch {
			case m.hist != nil:
				writeHistogram(&b, m)
			case m.fn != nil:
				fmt.Fprintf(&b, "%s %s\n", sampleName(m.name, m.labels, ""), formatFloat(m.fn()))
			case m.counter != nil:
				fmt.Fprintf(&b, "%s %d\n", sampleName(m.name, m.labels, ""), m.counter.Value())
			case m.gauge != nil:
				fmt.Fprintf(&b, "%s %d\n", sampleName(m.name, m.labels, ""), m.gauge.Value())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative le buckets, the
// implicit +Inf bucket, then _sum and _count.
func writeHistogram(b *strings.Builder, m *metric) {
	h := m.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s %d\n", sampleName(m.name+"_bucket", append(append([]Label(nil), m.labels...), L("le", formatFloat(bound))), ""), cum)
	}
	fmt.Fprintf(b, "%s %d\n", sampleName(m.name+"_bucket", append(append([]Label(nil), m.labels...), L("le", "+Inf")), ""), h.Count())
	fmt.Fprintf(b, "%s %s\n", sampleName(m.name+"_sum", m.labels, ""), formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s %d\n", sampleName(m.name+"_count", m.labels, ""), h.Count())
}

// sampleName renders name{l1="v1",...} with label values escaped.
func sampleName(name string, labels []Label, _ string) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
