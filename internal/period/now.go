package period

// NOW-relative values — an extension the paper lists as future work
// (Section 7, citing Clifford et al., "On the Semantics of 'Now' in
// Databases"). A fact that still holds is stored with the end of its period
// set to the NowMarker sentinel; before a query is evaluated the marker is
// bound to a concrete reference instant. Storing NOW as a maximal sentinel
// is the standard stratum implementation trick: unbound relations still
// sort and compare consistently, and binding is a pure substitution.

// NowMarker is the sentinel chronon denoting "until NOW".
const NowMarker Chronon = Forever

// IsNowRelative reports whether the period's end is the NOW sentinel.
func (p Period) IsNowRelative() bool { return p.End == NowMarker }

// BindNow returns the period with a NOW-relative end bound to the given
// reference instant. Facts that started after the reference instant bind to
// an empty period — they do not exist yet as of that time.
func (p Period) BindNow(now Chronon) Period {
	if !p.IsNowRelative() {
		return p
	}
	if p.Start >= now {
		return Period{}
	}
	return Period{Start: p.Start, End: now}
}
