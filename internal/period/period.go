// Package period implements the time domain of the algebra: closed-open
// periods [Start, End) over an abstract, granularity-independent chronon
// domain.
//
// Following Section 2.2 of the paper, all operations are expressed purely in
// terms of the start and end chronons of periods, so the package is
// independent of the granularity of time: a chronon may denote a month (as in
// the paper's examples), a second, or any other granule.
package period

import (
	"fmt"
	"math"
)

// Chronon is an instant of the time domain T. The domain is a finite,
// totally ordered set of integers; Beginning and Forever bound it.
type Chronon int64

// Beginning and Forever bound the time domain.
const (
	Beginning Chronon = math.MinInt64 / 4
	Forever   Chronon = math.MaxInt64 / 4
)

// Period is a closed-open time period [Start, End). A period is valid when
// Start < End; the zero Period{} is the canonical empty period.
type Period struct {
	Start Chronon
	End   Chronon
}

// New returns the period [start, end).
func New(start, end Chronon) Period { return Period{Start: start, End: end} }

// Empty reports whether p contains no chronons.
func (p Period) Empty() bool { return p.Start >= p.End }

// Valid reports whether p is a non-empty, in-domain period.
func (p Period) Valid() bool {
	return p.Start < p.End && p.Start >= Beginning && p.End <= Forever
}

// Duration returns the number of chronons in p, or 0 for an empty period.
func (p Period) Duration() int64 {
	if p.Empty() {
		return 0
	}
	return int64(p.End - p.Start)
}

// Contains reports whether instant t lies within p.
func (p Period) Contains(t Chronon) bool { return p.Start <= t && t < p.End }

// ContainsPeriod reports whether q is fully contained in p.
func (p Period) ContainsPeriod(q Period) bool {
	if q.Empty() {
		return true
	}
	return p.Start <= q.Start && q.End <= p.End
}

// Overlaps reports whether p and q share at least one chronon.
func (p Period) Overlaps(q Period) bool {
	if p.Empty() || q.Empty() {
		return false
	}
	return p.Start < q.End && q.Start < p.End
}

// Meets reports whether p ends exactly where q starts (Allen's "meets").
func (p Period) Meets(q Period) bool {
	return !p.Empty() && !q.Empty() && p.End == q.Start
}

// Adjacent reports whether p meets q or q meets p: the two periods can be
// merged into one with no gap and no overlap.
func (p Period) Adjacent(q Period) bool { return p.Meets(q) || q.Meets(p) }

// MergeableWith reports whether p and q can be coalesced into a single
// period, i.e. they overlap or are adjacent. Coalescing proper (coal^T)
// only merges adjacent periods of value-equivalent tuples; overlap merging
// additionally requires prior temporal duplicate elimination (Section 2.4).
func (p Period) MergeableWith(q Period) bool { return p.Overlaps(q) || p.Adjacent(q) }

// Precedes reports whether p ends at or before the start of q.
func (p Period) Precedes(q Period) bool {
	return !p.Empty() && !q.Empty() && p.End <= q.Start
}

// Intersect returns the common sub-period of p and q; the result is empty
// when they do not overlap.
func (p Period) Intersect(q Period) Period {
	if !p.Overlaps(q) {
		return Period{}
	}
	return Period{Start: maxC(p.Start, q.Start), End: minC(p.End, q.End)}
}

// Union returns the single period covering both p and q. It is only defined
// when the two periods are mergeable; ok is false otherwise.
func (p Period) Union(q Period) (Period, bool) {
	if p.Empty() {
		return q, true
	}
	if q.Empty() {
		return p, true
	}
	if !p.MergeableWith(q) {
		return Period{}, false
	}
	return Period{Start: minC(p.Start, q.Start), End: maxC(p.End, q.End)}, true
}

// Subtract returns p minus q as zero, one, or two disjoint periods in
// ascending order. This is the period arithmetic underlying Change^T in the
// definition of temporal duplicate elimination (Section 2.5): subtracting one
// tuple's period from an overlapping tuple's period yields zero, one, or two
// tuples.
func (p Period) Subtract(q Period) []Period {
	if p.Empty() {
		return nil
	}
	if !p.Overlaps(q) {
		return []Period{p}
	}
	var out []Period
	if p.Start < q.Start {
		out = append(out, Period{Start: p.Start, End: q.Start})
	}
	if q.End < p.End {
		out = append(out, Period{Start: q.End, End: p.End})
	}
	return out
}

// Equal reports whether p and q are the same period. All empty periods are
// considered equal.
func (p Period) Equal(q Period) bool {
	if p.Empty() && q.Empty() {
		return true
	}
	return p.Start == q.Start && p.End == q.End
}

// Compare orders periods by start, then end. Empty periods sort first.
func (p Period) Compare(q Period) int {
	pe, qe := p.Empty(), q.Empty()
	switch {
	case pe && qe:
		return 0
	case pe:
		return -1
	case qe:
		return 1
	}
	switch {
	case p.Start < q.Start:
		return -1
	case p.Start > q.Start:
		return 1
	case p.End < q.End:
		return -1
	case p.End > q.End:
		return 1
	}
	return 0
}

// String renders p in the paper's closed-open notation.
func (p Period) String() string {
	if p.Empty() {
		return "[)"
	}
	return fmt.Sprintf("[%d,%d)", p.Start, p.End)
}

func minC(a, b Chronon) Chronon {
	if a < b {
		return a
	}
	return b
}

func maxC(a, b Chronon) Chronon {
	if a > b {
		return a
	}
	return b
}
