package period

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyAndValid(t *testing.T) {
	cases := []struct {
		p     Period
		empty bool
	}{
		{New(1, 8), false},
		{New(8, 8), true},
		{New(9, 3), true},
		{Period{}, true},
	}
	for _, c := range cases {
		if got := c.p.Empty(); got != c.empty {
			t.Errorf("%v.Empty() = %v, want %v", c.p, got, c.empty)
		}
	}
	if !New(1, 8).Valid() {
		t.Error("New(1,8) should be valid")
	}
	if New(8, 8).Valid() {
		t.Error("New(8,8) should be invalid")
	}
}

func TestContains(t *testing.T) {
	p := New(2, 6)
	for _, c := range []struct {
		t    Chronon
		want bool
	}{{1, false}, {2, true}, {5, true}, {6, false}} {
		if got := p.Contains(c.t); got != c.want {
			t.Errorf("[2,6).Contains(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestOverlapsAndMeets(t *testing.T) {
	// The paper's example: John is in Sales over [1,8) and in Advertising
	// over [6,11); the two periods overlap.
	if !New(1, 8).Overlaps(New(6, 11)) {
		t.Error("[1,8) should overlap [6,11)")
	}
	// Anna's Sales periods [2,6) and [6,12) are adjacent, not overlapping.
	if New(2, 6).Overlaps(New(6, 12)) {
		t.Error("[2,6) should not overlap [6,12)")
	}
	if !New(2, 6).Meets(New(6, 12)) {
		t.Error("[2,6) should meet [6,12)")
	}
	if !New(2, 6).Adjacent(New(6, 12)) || !New(6, 12).Adjacent(New(2, 6)) {
		t.Error("adjacency should hold in both directions")
	}
	if New(2, 6).Meets(New(7, 9)) {
		t.Error("[2,6) should not meet [7,9)")
	}
}

func TestIntersect(t *testing.T) {
	got := New(1, 8).Intersect(New(6, 11))
	if !got.Equal(New(6, 8)) {
		t.Errorf("[1,8) ∩ [6,11) = %v, want [6,8)", got)
	}
	if !New(1, 3).Intersect(New(5, 9)).Empty() {
		t.Error("disjoint intersection should be empty")
	}
}

func TestSubtract(t *testing.T) {
	cases := []struct {
		p, q Period
		want []Period
	}{
		// Figure 3: [6,11) − [1,8) = [8,11) — John's second tuple in R3.
		{New(6, 11), New(1, 8), []Period{New(8, 11)}},
		// Full containment removes the period: Anna's duplicate [2,6).
		{New(2, 6), New(2, 6), nil},
		// Splitting: subtracting the middle yields two fragments.
		{New(1, 10), New(4, 6), []Period{New(1, 4), New(6, 10)}},
		// Disjoint subtraction is the identity.
		{New(1, 3), New(5, 9), []Period{New(1, 3)}},
	}
	for _, c := range cases {
		got := c.p.Subtract(c.q)
		if len(got) != len(c.want) {
			t.Errorf("%v − %v = %v, want %v", c.p, c.q, got, c.want)
			continue
		}
		for i := range got {
			if !got[i].Equal(c.want[i]) {
				t.Errorf("%v − %v = %v, want %v", c.p, c.q, got, c.want)
			}
		}
	}
}

func TestUnion(t *testing.T) {
	u, ok := New(2, 6).Union(New(6, 12))
	if !ok || !u.Equal(New(2, 12)) {
		t.Errorf("[2,6) ∪ [6,12) = %v (%v), want [2,12)", u, ok)
	}
	if _, ok := New(1, 3).Union(New(5, 9)); ok {
		t.Error("disjoint periods must not be unionable")
	}
}

func randomPeriod(r *rand.Rand) Period {
	a := Chronon(r.Intn(50))
	b := a + Chronon(1+r.Intn(20))
	return New(a, b)
}

// TestSubtractProperties checks, for random periods, the defining property
// of subtraction: the fragments partition p's chronons outside q.
func TestSubtractProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randomPeriod(r), randomPeriod(r)
		frags := p.Subtract(q)
		for c := p.Start - 2; c <= p.End+2; c++ {
			want := p.Contains(c) && !q.Contains(c)
			got := false
			for _, f := range frags {
				if f.Contains(c) {
					got = true
				}
			}
			if got != want {
				return false
			}
		}
		// Fragments are disjoint, non-empty, ascending.
		for i, f := range frags {
			if f.Empty() {
				return false
			}
			if i > 0 && frags[i-1].End > f.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestIntersectProperties checks pointwise correctness of intersection.
func TestIntersectProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randomPeriod(r), randomPeriod(r)
		iv := p.Intersect(q)
		for c := minC(p.Start, q.Start) - 1; c <= maxC(p.End, q.End)+1; c++ {
			if iv.Contains(c) != (p.Contains(c) && q.Contains(c)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	if New(1, 5).Compare(New(1, 8)) >= 0 {
		t.Error("[1,5) should precede [1,8) in the order")
	}
	if New(2, 3).Compare(New(1, 9)) <= 0 {
		t.Error("[2,3) should follow [1,9)")
	}
	if (Period{}).Compare(New(1, 2)) >= 0 {
		t.Error("empty periods sort first")
	}
}

func TestEndpointsAndWitnesses(t *testing.T) {
	ps := []Period{New(1, 8), New(6, 11), New(2, 6)}
	es := Endpoints(ps)
	want := []Chronon{1, 2, 6, 8, 11}
	if len(es) != len(want) {
		t.Fatalf("Endpoints = %v, want %v", es, want)
	}
	for i := range es {
		if es[i] != want[i] {
			t.Fatalf("Endpoints = %v, want %v", es, want)
		}
	}
	ivs := ElementaryIntervals(ps)
	if len(ivs) != 4 {
		t.Fatalf("ElementaryIntervals = %v, want 4 intervals", ivs)
	}
	ws := Witnesses(ps)
	if len(ws) != 4 || ws[0] != 1 || ws[3] != 8 {
		t.Fatalf("Witnesses = %v", ws)
	}
}

// TestWitnessesCoverMembershipChanges: between consecutive witnesses no
// period's membership changes — the core guarantee behind snapshot checks.
func TestWitnessesCoverMembershipChanges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		ps := make([]Period, n)
		for i := range ps {
			ps[i] = randomPeriod(r)
		}
		ivs := ElementaryIntervals(ps)
		for _, iv := range ivs {
			for c := iv.Start; c < iv.End; c++ {
				for _, p := range ps {
					if p.Contains(c) != p.Contains(iv.Start) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoalesceAll(t *testing.T) {
	got := CoalesceAll([]Period{New(6, 12), New(1, 4), New(2, 6), New(20, 22)})
	want := []Period{New(1, 12), New(20, 22)}
	if len(got) != len(want) {
		t.Fatalf("CoalesceAll = %v, want %v", got, want)
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("CoalesceAll = %v, want %v", got, want)
		}
	}
	if d := CoverageDuration([]Period{New(1, 4), New(2, 6)}); d != 5 {
		t.Errorf("CoverageDuration = %d, want 5", d)
	}
}
