package period

import "sort"

// Endpoints collects the distinct start and end chronons of the given
// periods in ascending order. Between two consecutive endpoints the
// membership of every period is constant, so the returned slice induces the
// elementary intervals used by snapshot-equivalence checks and by the
// constant-interval evaluation of temporal aggregation.
func Endpoints(ps []Period) []Chronon {
	set := make(map[Chronon]struct{}, 2*len(ps))
	for _, p := range ps {
		if p.Empty() {
			continue
		}
		set[p.Start] = struct{}{}
		set[p.End] = struct{}{}
	}
	out := make([]Chronon, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ElementaryIntervals returns the sequence of maximal periods within which
// the membership of every input period is constant. The result partitions
// the union of the inputs' coverage plus gaps between consecutive endpoints.
func ElementaryIntervals(ps []Period) []Period {
	es := Endpoints(ps)
	if len(es) < 2 {
		return nil
	}
	out := make([]Period, 0, len(es)-1)
	for i := 0; i+1 < len(es); i++ {
		out = append(out, Period{Start: es[i], End: es[i+1]})
	}
	return out
}

// Witnesses returns one representative chronon per elementary interval of
// the input periods. Checking a snapshot-reducible property at every witness
// is equivalent to checking it at every chronon of the domain, because
// snapshots are constant between consecutive endpoints.
func Witnesses(ps []Period) []Chronon {
	ivs := ElementaryIntervals(ps)
	out := make([]Chronon, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, iv.Start)
	}
	return out
}

// CoalesceAll merges every set of mergeable (overlapping or adjacent)
// periods in ps into maximal periods, returned in ascending order. It is a
// utility for statistics and tests; the algebra's coal^T operation merges
// adjacent periods of value-equivalent tuples only and lives in the
// evaluator.
func CoalesceAll(ps []Period) []Period {
	live := make([]Period, 0, len(ps))
	for _, p := range ps {
		if !p.Empty() {
			live = append(live, p)
		}
	}
	if len(live) == 0 {
		return nil
	}
	sort.Slice(live, func(i, j int) bool { return live[i].Compare(live[j]) < 0 })
	out := []Period{live[0]}
	for _, p := range live[1:] {
		last := &out[len(out)-1]
		if merged, ok := last.Union(p); ok {
			*last = merged
		} else {
			out = append(out, p)
		}
	}
	return out
}

// CoverageDuration returns the total number of chronons covered by at least
// one of the given periods.
func CoverageDuration(ps []Period) int64 {
	var total int64
	for _, p := range CoalesceAll(ps) {
		total += p.Duration()
	}
	return total
}
