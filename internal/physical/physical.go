// Package physical decides, per logical operator, which physical variant of
// the exec engine applies given the delivered orders of the operator's
// inputs: merge vs hash joins, streaming sort-based vs hash grouping, and
// sort elision. It is the single decision procedure shared by the exec
// engine (which decides with the run-time delivered orders of its compiled
// pipelines), the cost model (which decides with the statically inferred
// orders of props.State), the stratum executor's metering, and the tqplan
// display — so the engine and the model cannot drift on when the
// order-exploiting variants fire.
//
// The soundness of every decision rests on Table 1's order propagation: an
// input's OrderSpec is a list invariant, so a prefix of it covering exactly
// an operator's grouping attributes proves the operator's groups contiguous
// (GroupsContiguous), and a sort spec that is a prefix of the delivered
// order proves the sort a no-op (Table 1's special case).
package physical

import (
	"tqp/internal/algebra"
	"tqp/internal/expr"
	"tqp/internal/props"
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// Algo names a physical operator variant for display and tests.
type Algo string

// Physical operator variants.
const (
	AlgoSort       Algo = "merge-sort"  // run-forming external merge sort
	AlgoSortElided Algo = "sort~elided" // input already delivers the order
	AlgoMergeJoin  Algo = "merge-join"  // both inputs ordered on the equi-keys
	AlgoHashJoin   Algo = "hash-join"   // build/probe on the equi-keys
	AlgoNestedLoop Algo = "nested-loop" // no usable equi-keys
	AlgoMergeDedup Algo = "merge-rdup"  // adjacent-compare dedup on a total order
	AlgoHashDedup  Algo = "hash-rdup"   // hash-set dedup
	AlgoMergeDiff  Algo = "merge-diff"  // both inputs share a covering order
	AlgoHashDiff   Algo = "hash-diff"   // hash multiplicity counters
	AlgoMergeUnion Algo = "merge-union" // both inputs share a covering order
	AlgoHashUnion  Algo = "hash-union"  // hash multiplicity counters
	AlgoMergeGroup Algo = "merge-group" // groups contiguous under the input order
	AlgoHashGroup  Algo = "hash-group"  // hash value/group partitioning
	AlgoStream     Algo = "stream"      // order-indifferent tuple-at-a-time op
	AlgoHashPart   Algo = "hash-part"   // two-sided hash partitioning (\ᵀ, ∪ᵀ)
)

// Decision is the chosen physical variant for one node.
type Decision struct {
	// Algo is the variant for display.
	Algo Algo
	// Merge reports that the order-exploiting merge/sort-based variant
	// applies (cheaper than the hash variant under the cost model).
	Merge bool
	// SortElided reports that a sort node is a physical no-op because its
	// input already delivers an order the requested spec is a prefix of.
	SortElided bool
}

// Ordered reports that the decision exploits a delivered input order.
func (d Decision) Ordered() bool { return d.Merge || d.SortElided }

// Decide picks the physical variant for n given the delivered orders of its
// children. Child schemas are derived from the plan; nodes whose schemas do
// not validate get the zero decision (the engine will surface the error).
func Decide(n algebra.Node, childOrders []relation.OrderSpec) Decision {
	ch := n.Children()
	cs := make([]*schema.Schema, len(ch))
	for i, c := range ch {
		s, err := c.Schema()
		if err != nil {
			return Decision{}
		}
		cs[i] = s
	}
	ord := func(i int) relation.OrderSpec {
		if i < len(childOrders) {
			return childOrders[i]
		}
		return nil
	}

	switch node := n.(type) {
	case *algebra.Sort:
		if node.Spec.IsPrefixOf(ord(0)) {
			return Decision{Algo: AlgoSortElided, SortElided: true}
		}
		return Decision{Algo: AlgoSort}
	case *algebra.Join:
		out, err := n.Schema()
		if err != nil {
			return Decision{}
		}
		lw, rw := cs[0].Len(), cs[1].Len()
		lidx, ridx, _ := EquiKeys(node.P, out, lw, rw)
		if len(lidx) == 0 {
			return Decision{Algo: AlgoNestedLoop}
		}
		if _, ok := MergeJoinKeys(ord(0), ord(1), cs[0], cs[1], lidx, ridx); ok {
			return Decision{Algo: AlgoMergeJoin, Merge: true}
		}
		return Decision{Algo: AlgoHashJoin}
	case *algebra.Aggregate:
		gidx := make([]int, len(node.GroupBy))
		for i, g := range node.GroupBy {
			gidx[i] = cs[0].Index(g)
			if gidx[i] < 0 {
				// Unknown grouping attribute: the node is invalid and the
				// engine will surface the error; keep the zero decision.
				return Decision{}
			}
		}
		if GroupsContiguous(ord(0), cs[0], gidx) {
			return Decision{Algo: AlgoMergeGroup, Merge: true}
		}
		return Decision{Algo: AlgoHashGroup}
	}

	switch n.Op() {
	case algebra.OpRdup:
		if GroupsContiguous(ord(0), cs[0], identityIdx(cs[0].Len())) {
			return Decision{Algo: AlgoMergeDedup, Merge: true}
		}
		return Decision{Algo: AlgoHashDedup}
	case algebra.OpDiff:
		if _, ok := AlignedTotalOrder(ord(0), ord(1), cs[0]); ok {
			return Decision{Algo: AlgoMergeDiff, Merge: true}
		}
		return Decision{Algo: AlgoHashDiff}
	case algebra.OpUnion:
		if _, ok := AlignedTotalOrder(ord(0), ord(1), cs[0]); ok {
			return Decision{Algo: AlgoMergeUnion, Merge: true}
		}
		return Decision{Algo: AlgoHashUnion}
	case algebra.OpTRdup, algebra.OpCoal:
		if GroupsContiguous(ord(0), cs[0], ValueIdx(cs[0])) {
			return Decision{Algo: AlgoMergeGroup, Merge: true}
		}
		return Decision{Algo: AlgoHashGroup}
	case algebra.OpTDiff, algebra.OpTUnion:
		return Decision{Algo: AlgoHashPart}
	case algebra.OpProduct, algebra.OpTProduct:
		return Decision{Algo: AlgoNestedLoop}
	case algebra.OpSelect, algebra.OpProject, algebra.OpUnionAll:
		return Decision{Algo: AlgoStream}
	default:
		return Decision{}
	}
}

// Annotate decides the physical variant of every node of a plan from the
// statically inferred delivered orders (props.State.Order). This is the
// compile-time view the cost model prices and tqplan renders; the engine
// makes the same decisions at build time from its run-time orders, which
// coincide whenever the catalog's BaseInfo is truthful.
func Annotate(plan algebra.Node) (map[algebra.Node]Decision, error) {
	st, err := props.InferStates(plan)
	if err != nil {
		return nil, err
	}
	out := make(map[algebra.Node]Decision)
	var walk func(n algebra.Node)
	walk = func(n algebra.Node) {
		ch := n.Children()
		orders := make([]relation.OrderSpec, len(ch))
		for i, c := range ch {
			walk(c)
			orders[i] = st[c].Order
		}
		out[n] = Decide(n, orders)
	}
	walk(plan)
	return out, nil
}

// Summary counts the order-exploiting decisions of an annotated plan.
type Summary struct {
	SortsElided int
	MergeOps    int
}

// Summarize tallies an Annotate result.
func Summarize(dec map[algebra.Node]Decision) Summary {
	var s Summary
	for _, d := range dec {
		if d.SortElided {
			s.SortsElided++
		}
		if d.Merge {
			s.MergeOps++
		}
	}
	return s
}

// GroupsContiguous reports whether tuples equal on idx are guaranteed to be
// adjacent in a list sorted by ord: some prefix of ord covers exactly the
// idx attribute set. When true the grouping operators run without a hash
// table in a single comparison pass.
func GroupsContiguous(ord relation.OrderSpec, s *schema.Schema, idx []int) bool {
	_, ok := CoveringPrefix(ord, s, idx)
	return ok
}

// CoveringPrefix returns the shortest prefix of ord that mentions only —
// and all of — the attributes at idx. Equality under such a prefix is
// equality on every idx attribute, and a list sorted by ord keeps tuples
// equal on idx contiguous. Repeated keys in ord are admitted (sort_{A,A} is
// valid) and count once.
func CoveringPrefix(ord relation.OrderSpec, s *schema.Schema, idx []int) (relation.OrderSpec, bool) {
	if len(idx) == 0 {
		return nil, false
	}
	want := make(map[string]bool, len(idx))
	for _, j := range idx {
		if j < 0 || j >= s.Len() {
			return nil, false
		}
		want[s.At(j).Name] = true
	}
	covered := 0
	seen := make(map[string]bool, len(want))
	for i, k := range ord {
		if !want[k.Attr] {
			return nil, false
		}
		if !seen[k.Attr] {
			seen[k.Attr] = true
			covered++
		}
		if covered == len(want) {
			return ord[:i+1], true
		}
	}
	return nil, false
}

// AlignedTotalOrder reports that both inputs of a schema-preserving binary
// multiset operation (\, ∪) deliver one shared order covering every
// attribute — so full-tuple equality groups are contiguous on both sides
// and arrive in the same sequence, admitting a two-pointer merge. The
// returned spec is the shared covering prefix.
func AlignedTotalOrder(l, r relation.OrderSpec, s *schema.Schema) (relation.OrderSpec, bool) {
	idx := identityIdx(s.Len())
	lp, ok := CoveringPrefix(l, s, idx)
	if !ok {
		return nil, false
	}
	rp, ok := CoveringPrefix(r, s, idx)
	if !ok || !lp.Equal(rp) {
		return nil, false
	}
	return lp, true
}

// JoinKeys is the aligned comparison sequence of a merge join: position k
// compares left column L[k] against right column R[k] under direction
// Dirs[k]. Tuples equal under the whole sequence are equal on every
// equi-key pair.
type JoinKeys struct {
	L, R []int
	Dirs []relation.Direction
}

// Compare orders a left tuple against a right tuple under the key sequence.
func (k JoinKeys) Compare(lt, rt relation.Tuple) int {
	for i := range k.L {
		c := lt[k.L[i]].Compare(rt[k.R[i]])
		if k.Dirs[i] == relation.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

// MergeJoinKeys reports whether a merge join applies: both inputs deliver
// orders whose covering prefixes span exactly their side of the equi-key
// pairing, positionally aligned with equal directions. The key pairing must
// be functional in both directions (each left column equated with exactly
// one right column and vice versa); a predicate equating one column with
// two different ones falls back to the hash join.
func MergeJoinKeys(lOrd, rOrd relation.OrderSpec, ls, rs *schema.Schema, lidx, ridx []int) (JoinKeys, bool) {
	l2r := make(map[int]int, len(lidx))
	r2l := make(map[int]int, len(ridx))
	for m := range lidx {
		if j, dup := l2r[lidx[m]]; dup && j != ridx[m] {
			return JoinKeys{}, false
		}
		if i, dup := r2l[ridx[m]]; dup && i != lidx[m] {
			return JoinKeys{}, false
		}
		l2r[lidx[m]] = ridx[m]
		r2l[ridx[m]] = lidx[m]
	}
	lp, ok := CoveringPrefix(lOrd, ls, lidx)
	if !ok {
		return JoinKeys{}, false
	}
	rp, ok := CoveringPrefix(rOrd, rs, ridx)
	if !ok {
		return JoinKeys{}, false
	}
	ldist := distinctKeys(lp)
	rdist := distinctKeys(rp)
	if len(ldist) != len(rdist) {
		return JoinKeys{}, false
	}
	keys := JoinKeys{}
	for k := range ldist {
		li := ls.Index(ldist[k].Attr)
		ri, ok := l2r[li]
		if !ok {
			return JoinKeys{}, false
		}
		if rs.At(ri).Name != rdist[k].Attr || ldist[k].Dir != rdist[k].Dir {
			return JoinKeys{}, false
		}
		keys.L = append(keys.L, li)
		keys.R = append(keys.R, ri)
		keys.Dirs = append(keys.Dirs, ldist[k].Dir)
	}
	return keys, true
}

// distinctKeys drops repeated attributes from a spec, keeping first
// occurrences (a repeat constrains nothing further).
func distinctKeys(o relation.OrderSpec) relation.OrderSpec {
	seen := make(map[string]bool, len(o))
	var out relation.OrderSpec
	for _, k := range o {
		if seen[k.Attr] {
			continue
		}
		seen[k.Attr] = true
		out = append(out, k)
	}
	return out
}

// EquiKeys splits a (possibly fused) product predicate into hashable
// equality pairs — conjuncts of the form leftCol = rightCol over the
// product's output schema — and the residual predicate evaluated per
// candidate pair. Columns at or beyond lw+rw (a temporal product's fresh
// intersection period) cannot be keyed and stay residual.
func EquiKeys(p expr.Pred, out *schema.Schema, lw, rw int) (lidx, ridx []int, residual expr.Pred) {
	if p == nil {
		return nil, nil, nil
	}
	var rest []expr.Pred
	for _, c := range expr.SplitConj(p) {
		if cmp, ok := c.(expr.Cmp); ok && cmp.Op == expr.Eq {
			lc, lok := cmp.L.(expr.Col)
			rc, rok := cmp.R.(expr.Col)
			if lok && rok {
				i, j := out.Index(lc.Name), out.Index(rc.Name)
				switch {
				case i >= 0 && i < lw && j >= lw && j < lw+rw:
					lidx = append(lidx, i)
					ridx = append(ridx, j-lw)
					continue
				case j >= 0 && j < lw && i >= lw && i < lw+rw:
					lidx = append(lidx, j)
					ridx = append(ridx, i-lw)
					continue
				}
			}
		}
		rest = append(rest, c)
	}
	if len(lidx) == 0 {
		return nil, nil, p
	}
	if len(rest) == 0 {
		return lidx, ridx, nil
	}
	return lidx, ridx, expr.ConjList(rest)
}

// ValueIdx returns the positions of a temporal schema's non-time
// attributes: the value-equivalence columns of Section 2.1.
func ValueIdx(s *schema.Schema) []int {
	t1, t2 := s.TimeIndices()
	out := make([]int, 0, s.Len())
	for i := 0; i < s.Len(); i++ {
		if i == t1 || i == t2 {
			continue
		}
		out = append(out, i)
	}
	return out
}

func identityIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
