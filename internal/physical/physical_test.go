package physical_test

import (
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/expr"
	"tqp/internal/physical"
	"tqp/internal/relation"
	"tqp/internal/schema"
	"tqp/internal/value"
)

func temporalSchema() *schema.Schema {
	return schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
}

func leafWithOrder(name string, o relation.OrderSpec) algebra.Node {
	return algebra.NewRel(name, temporalSchema(), algebra.BaseInfo{Order: o})
}

var (
	byName    = relation.OrderSpec{relation.Key("Name")}
	byNameGrp = relation.OrderSpec{relation.Key("Name"), relation.Key("Grp")}
	byGrpDesc = relation.OrderSpec{relation.KeyDesc("Grp")}
	byAll     = relation.OrderSpec{
		relation.Key("Name"), relation.Key("Grp"), relation.Key("T1"), relation.Key("T2"),
	}
)

// TestDecideSort pins the elision predicate.
func TestDecideSort(t *testing.T) {
	l := leafWithOrder("L", nil)
	cases := []struct {
		spec, in relation.OrderSpec
		elided   bool
	}{
		{byName, byNameGrp, true},    // prefix: elide
		{byNameGrp, byNameGrp, true}, // equal: elide
		{byNameGrp, byName, false},   // stronger than delivered: sort
		{byName, nil, false},         // unordered input: sort
		{byGrpDesc, byNameGrp, false},
	}
	for _, c := range cases {
		d := physical.Decide(algebra.NewSort(c.spec, l), []relation.OrderSpec{c.in})
		if d.SortElided != c.elided {
			t.Errorf("sort %s over %s: elided=%v, want %v", c.spec, c.in, d.SortElided, c.elided)
		}
	}
}

// TestDecideJoin pins merge-join applicability: key-covering aligned orders
// on both sides, with direction and pairing checked.
func TestDecideJoin(t *testing.T) {
	eq := expr.Compare(expr.Eq, expr.Column("1.Name"), expr.Column("2.Name"))
	mk := func(lo, ro relation.OrderSpec) physical.Decision {
		j := algebra.NewTJoin(eq, leafWithOrder("L", lo), leafWithOrder("R", ro))
		return physical.Decide(j, []relation.OrderSpec{lo, ro})
	}
	if d := mk(byName, byName); d.Algo != physical.AlgoMergeJoin || !d.Merge {
		t.Errorf("both sides key-ordered: got %s", d.Algo)
	}
	// A longer left order still has the key-covering prefix ⟨Name⟩.
	if d := mk(byNameGrp, byName); d.Algo != physical.AlgoMergeJoin {
		t.Errorf("left ⟨Name,Grp⟩, right ⟨Name⟩: got %s", d.Algo)
	}
	if d := mk(byName, nil); d.Algo != physical.AlgoHashJoin {
		t.Errorf("unordered right side: got %s", d.Algo)
	}
	if d := mk(byName, relation.OrderSpec{relation.KeyDesc("Name")}); d.Algo != physical.AlgoHashJoin {
		t.Errorf("direction mismatch must fall back to hash: got %s", d.Algo)
	}
	if d := mk(byGrpDesc, byName); d.Algo != physical.AlgoHashJoin {
		t.Errorf("left order not key-covering: got %s", d.Algo)
	}
	theta := algebra.NewTJoin(
		expr.Compare(expr.Lt, expr.Column("1.Grp"), expr.Column("2.Grp")),
		leafWithOrder("L", byName), leafWithOrder("R", byName))
	if d := physical.Decide(theta, []relation.OrderSpec{byName, byName}); d.Algo != physical.AlgoNestedLoop {
		t.Errorf("theta join: got %s", d.Algo)
	}
}

// TestDecideGroupingAndSets pins the contiguity- and alignment-based
// decisions of the unary grouping operators and the multiset operations.
func TestDecideGroupingAndSets(t *testing.T) {
	lv := leafWithOrder("L", nil)
	rv := leafWithOrder("R", nil)
	cases := []struct {
		name   string
		plan   algebra.Node
		orders []relation.OrderSpec
		want   physical.Algo
	}{
		{"rdupT sorted on values", algebra.NewTRdup(lv), []relation.OrderSpec{byNameGrp}, physical.AlgoMergeGroup},
		{"rdupT sorted on prefix only", algebra.NewTRdup(lv), []relation.OrderSpec{byName}, physical.AlgoHashGroup},
		{"coalT unordered", algebra.NewCoal(lv), []relation.OrderSpec{nil}, physical.AlgoHashGroup},
		{"aggrT grouped on order prefix",
			algebra.NewTAggregate([]string{"Name"}, []expr.Aggregate{{Func: expr.CountAll, As: "c"}}, lv),
			[]relation.OrderSpec{byNameGrp}, physical.AlgoMergeGroup},
		{"rdup total order", algebra.NewRdup(lv), []relation.OrderSpec{byAll}, physical.AlgoMergeDedup},
		{"rdup partial order", algebra.NewRdup(lv), []relation.OrderSpec{byNameGrp}, physical.AlgoHashDedup},
		{"diff aligned", algebra.NewDiff(lv, rv), []relation.OrderSpec{byAll, byAll}, physical.AlgoMergeDiff},
		{"diff one-sided", algebra.NewDiff(lv, rv), []relation.OrderSpec{byAll, nil}, physical.AlgoHashDiff},
		{"union aligned", algebra.NewUnion(lv, rv), []relation.OrderSpec{byAll, byAll}, physical.AlgoMergeUnion},
		{"diffT always hash-partitions", algebra.NewTDiff(lv, rv), []relation.OrderSpec{byAll, byAll}, physical.AlgoHashPart},
	}
	for _, c := range cases {
		if d := physical.Decide(c.plan, c.orders); d.Algo != c.want {
			t.Errorf("%s: got %s, want %s", c.name, d.Algo, c.want)
		}
	}
}

// TestCoveringPrefix pins the prefix-covering predicate the decisions rest
// on, including the duplicate-key regression.
func TestCoveringPrefix(t *testing.T) {
	s := temporalSchema()
	vidx := physical.ValueIdx(s)
	if p, ok := physical.CoveringPrefix(byNameGrp, s, vidx); !ok || len(p) != 2 {
		t.Errorf("⟨Name,Grp⟩ must cover the value columns, got %v %v", p, ok)
	}
	if _, ok := physical.CoveringPrefix(byName, s, vidx); ok {
		t.Error("⟨Name⟩ must not cover {Name,Grp}")
	}
	dup := relation.OrderSpec{relation.Key("Name"), relation.Key("Name")}
	if _, ok := physical.CoveringPrefix(dup, s, vidx); ok {
		t.Error("sort_{Name,Name} must not cover {Name,Grp}")
	}
	if _, ok := physical.CoveringPrefix(nil, s, nil); ok {
		t.Error("empty attribute set has no covering prefix (no merge variant)")
	}
}

// TestAnnotateStaticPlan pins Annotate end to end on a plan whose base
// order makes every order-exploiting variant fire.
func TestAnnotateStaticPlan(t *testing.T) {
	l := leafWithOrder("L", byNameGrp)
	plan := algebra.NewSort(byName, algebra.NewCoal(algebra.NewTRdup(l)))
	dec, err := physical.Annotate(plan)
	if err != nil {
		t.Fatal(err)
	}
	sum := physical.Summarize(dec)
	if sum.SortsElided != 1 || sum.MergeOps != 2 {
		t.Fatalf("expected 1 elided sort and 2 merge groups, got %+v", sum)
	}
	if d := dec[plan]; d.Algo != physical.AlgoSortElided {
		t.Fatalf("top sort: got %s", d.Algo)
	}
}
