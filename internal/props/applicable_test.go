package props_test

import (
	"testing"

	"tqp/internal/equiv"
	"tqp/internal/props"
)

// vector builds Props from an [O D P] triple via the τ that projects to it
// where one exists; for direct guard testing we construct the booleans
// explicitly through representative τ values.
func propsOf(tau equiv.Type) props.Props {
	pm := props.PropsMap{}
	_ = pm
	// Infer's fromTau is unexported; reconstruct through the public fields.
	return props.Props{
		Tau:                tau,
		OrderRequired:      tau == equiv.List || tau == equiv.SnapshotList,
		DuplicatesRelevant: tau == equiv.List || tau == equiv.Multiset || tau == equiv.SnapshotList || tau == equiv.SnapshotMultiset,
		PeriodPreserving:   tau == equiv.List || tau == equiv.Multiset || tau == equiv.Set,
	}
}

// TestApplicableGuard pins the Figure 5 guard truth table: for each rule
// type and each participant τ, whether application is admitted.
func TestApplicableGuard(t *testing.T) {
	cases := []struct {
		ruleType equiv.Type
		tau      equiv.Type
		want     bool
	}{
		// ≡L rules: no restrictions.
		{equiv.List, equiv.List, true},
		{equiv.List, equiv.SnapshotSet, true},
		// ≡M rules need ¬OrderRequired.
		{equiv.Multiset, equiv.List, false},
		{equiv.Multiset, equiv.Multiset, true},
		{equiv.Multiset, equiv.SnapshotList, false},
		{equiv.Multiset, equiv.SnapshotSet, true},
		// ≡S rules need ¬Dups ∧ ¬Order.
		{equiv.Set, equiv.Multiset, false},
		{equiv.Set, equiv.Set, true},
		{equiv.Set, equiv.SnapshotMultiset, false},
		{equiv.Set, equiv.SnapshotSet, true},
		// ≡SL rules need ¬Period.
		{equiv.SnapshotList, equiv.List, false},
		{equiv.SnapshotList, equiv.SnapshotList, true},
		{equiv.SnapshotList, equiv.SnapshotSet, true},
		// ≡SM rules need ¬Order ∧ ¬Period.
		{equiv.SnapshotMultiset, equiv.SnapshotList, false},
		{equiv.SnapshotMultiset, equiv.SnapshotMultiset, true},
		{equiv.SnapshotMultiset, equiv.Multiset, false},
		// ≡SS rules need all three negated.
		{equiv.SnapshotSet, equiv.SnapshotMultiset, false},
		{equiv.SnapshotSet, equiv.SnapshotSet, true},
		{equiv.SnapshotSet, equiv.Set, false},
	}
	for _, c := range cases {
		got := props.Applicable(c.ruleType, []props.Props{propsOf(c.tau)})
		if got != c.want {
			t.Errorf("rule %s at participant τ=%s: applicable=%v, want %v",
				c.ruleType, c.tau, got, c.want)
		}
	}
}

// TestApplicableAllParticipants: one restrictive participant vetoes the
// whole location.
func TestApplicableAllParticipants(t *testing.T) {
	free := propsOf(equiv.SnapshotSet)
	pinned := propsOf(equiv.List)
	if !props.Applicable(equiv.Multiset, []props.Props{free, free}) {
		t.Error("all-free participants must admit ≡M")
	}
	if props.Applicable(equiv.Multiset, []props.Props{free, pinned}) {
		t.Error("one order-pinned participant must veto ≡M")
	}
	if !props.Applicable(equiv.List, []props.Props{pinned, pinned}) {
		t.Error("≡L is never vetoed")
	}
	if !props.Applicable(equiv.SnapshotSet, nil) {
		t.Error("no participants, no veto")
	}
}

// TestVectorRendering pins the Figure 6 bracket rendering.
func TestVectorRendering(t *testing.T) {
	if got := propsOf(equiv.List).Vector(); got != "[T T T]" {
		t.Errorf("List vector = %s", got)
	}
	if got := propsOf(equiv.SnapshotSet).Vector(); got != "[- - -]" {
		t.Errorf("SnapshotSet vector = %s", got)
	}
	if got := propsOf(equiv.SnapshotMultiset).Vector(); got != "[- T -]" {
		t.Errorf("SnapshotMultiset vector = %s", got)
	}
	if got := propsOf(equiv.Multiset).Vector(); got != "[- T T]" {
		t.Errorf("Multiset vector = %s", got)
	}
}
