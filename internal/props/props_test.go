package props_test

import (
	"strings"
	"testing"

	"tqp/internal/algebra"
	"tqp/internal/catalog"
	"tqp/internal/equiv"
	"tqp/internal/eval"
	"tqp/internal/props"
	"tqp/internal/relation"
)

// vectorsOf renders "label vector" lines for every node in pre-order.
func vectorsOf(t *testing.T, plan algebra.Node, rt equiv.ResultType) []string {
	t.Helper()
	pm, err := props.Infer(plan, rt, nil)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	var out []string
	algebra.Walk(plan, func(n algebra.Node, _ algebra.Path) bool {
		out = append(out, n.Label()+" "+pm[n].Vector())
		return true
	})
	return out
}

// TestInitialPlanProperties pins the property vectors of the paper's
// initial plan (Figure 2(a)) for the ORDER BY EmpName query. They encode
// exactly the paper's shaded regions: order need not be preserved below the
// sort; duplicates are not relevant below the top rdupᵀ except at the
// lower rdupᵀ (the temporal difference is sensitive to duplicates in its
// left argument); periods need not be preserved below the coalescing.
func TestInitialPlanProperties(t *testing.T) {
	c := catalog.Paper()
	plan := catalog.PaperInitialPlan(c)
	got := vectorsOf(t, plan, equiv.ResultList)
	want := []string{
		"TS [T T T]",
		"sort{EmpName ASC} [T T T]",
		"coalT [- T T]",
		"rdupT [- T -]",
		"diffT [- - -]",
		"rdupT [- T -]",
		"project{EmpName,T1,T2} [- - -]",
		"EMPLOYEE [- - -]",
		"project{EmpName,T1,T2} [- - -]",
		"PROJECT [- - -]",
	}
	if len(got) != len(want) {
		t.Fatalf("vectors:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("node %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestIntermediatePlanProperties pins the vectors for Figure 6(a): after
// C10, the right-hand coalescing sits in the region where order, duplicates
// and periods are all irrelevant — which is what licenses rule C2 to remove
// it, as the paper's walk-through does next.
func TestIntermediatePlanProperties(t *testing.T) {
	c := catalog.Paper()
	plan := catalog.PaperIntermediatePlan(c)
	got := vectorsOf(t, plan, equiv.ResultList)
	want := []string{
		"sort{EmpName ASC} [T T T]",
		"diffT [- T T]",
		"coalT [- T T]",
		"rdupT [- T -]",
		"TS [- - -]",
		"project{EmpName,T1,T2} [- - -]",
		"EMPLOYEE [- - -]",
		"coalT [- - -]",
		"TS [- - -]",
		"project{EmpName,T1,T2} [- - -]",
		"PROJECT [- - -]",
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("vectors:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}
}

// TestOptimizedPlanProperties pins the vectors for the final plan of
// Figure 6(b): with the sort pushed into the DBMS, every operation above it
// on the left chain must preserve order, while the right branch of the
// temporal difference remains fully unconstrained.
func TestOptimizedPlanProperties(t *testing.T) {
	c := catalog.Paper()
	plan := catalog.PaperOptimizedPlan(c)
	got := vectorsOf(t, plan, equiv.ResultList)
	want := []string{
		"diffT [T T T]",
		"coalT [T T T]",
		"rdupT [T T T]",
		"TS [T T T]",
		"sort{EmpName ASC} [T T T]",
		"project{EmpName,T1,T2} [- T T]",
		"EMPLOYEE [- T T]",
		"TS [- - -]",
		"project{EmpName,T1,T2} [- - -]",
		"PROJECT [- - -]",
	}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("vectors:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
		}
	}
}

// TestResultTypeSeedsRoot checks Definition 5.1's three cases at the root.
func TestResultTypeSeedsRoot(t *testing.T) {
	c := catalog.Paper()
	plan := catalog.PaperProjection(c.MustNode("EMPLOYEE"))
	cases := []struct {
		rt   equiv.ResultType
		want string
	}{
		{equiv.ResultList, "[T T T]"},
		{equiv.ResultMultiset, "[- T T]"},
		{equiv.ResultSet, "[- - T]"},
	}
	for _, cse := range cases {
		pm, err := props.Infer(plan, cse.rt, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := pm[plan].Vector(); got != cse.want {
			t.Errorf("result type %s: root vector %s, want %s", cse.rt, got, cse.want)
		}
	}
}

// TestStateInference checks the static state of the paper plans' key nodes:
// schema temporality, order propagation through the DBMS boundary, and the
// duplicate/coalescing flags that drive rule preconditions D2, C1, C10.
func TestStateInference(t *testing.T) {
	c := catalog.Paper()
	plan := catalog.PaperOptimizedPlan(c)
	st, err := props.InferStates(plan)
	if err != nil {
		t.Fatal(err)
	}

	root := plan // diffT
	rs := st[root]
	if !rs.SnapshotDistinct {
		t.Error("diffT over a snapshot-distinct left argument must be snapshot-distinct")
	}
	byName := relation.OrderSpec{relation.Key("EmpName")}
	if !rs.Order.Equal(byName) {
		t.Errorf("diffT order = %s, want %s (retained from the sorted left branch)", rs.Order, byName)
	}

	coal := root.Children()[0]
	if s := st[coal]; !s.Coalesced || !s.SnapshotDistinct {
		t.Errorf("coalT state = %+v, want coalesced and snapshot-distinct", s)
	}
	if s := st[coal]; s.Site != props.Stratum {
		t.Error("coalT must execute in the stratum")
	}

	ts := coal.Children()[0].Children()[0] // TS below rdupT
	if s := st[ts]; !s.Order.Equal(byName) {
		t.Errorf("TS over a DBMS sort should carry order %s, got %s", byName, s.Order)
	}

	sort := ts.Children()[0]
	if s := st[sort]; s.Site != props.DBMS {
		t.Error("the pushed-down sort must execute in the DBMS")
	}

	proj := sort.Children()[0]
	if s := st[proj]; !s.Order.Empty() {
		t.Errorf("a non-sort operation inside the DBMS has no order guarantee, got %s", s.Order)
	}
}

// TestStateSoundness: on randomized plans over the paper database, every
// static claim (order, distinct, snapshot-distinct, coalesced) must hold
// dynamically for the evaluated result.
func TestStateSoundness(t *testing.T) {
	c := catalog.Paper()
	plans := []algebra.Node{
		catalog.PaperInitialPlan(c),
		catalog.PaperIntermediatePlan(c),
		catalog.PaperOptimizedPlan(c),
		algebra.NewCoal(algebra.NewTRdup(catalog.PaperProjection(c.MustNode("EMPLOYEE")))),
		algebra.NewTRdup(algebra.NewTUnion(
			catalog.PaperProjection(c.MustNode("EMPLOYEE")),
			catalog.PaperProjection(c.MustNode("PROJECT")))),
		algebra.NewRdup(c.MustNode("PROJECT")),
		algebra.NewSort(relation.OrderSpec{relation.Key("EmpName"), relation.Key("Dept")},
			c.MustNode("EMPLOYEE")),
	}
	ev := eval.New(c)
	for pi, plan := range plans {
		st, err := props.InferStates(plan)
		if err != nil {
			t.Fatalf("plan %d: %v", pi, err)
		}
		var check func(n algebra.Node)
		check = func(n algebra.Node) {
			for _, ch := range n.Children() {
				check(ch)
			}
			// Skip DBMS-site nodes: the reference evaluator does not model
			// the DBMS's order nondeterminism (the stratum executor does).
			s := st[n]
			r, err := ev.Eval(n)
			if err != nil {
				t.Fatalf("plan %d eval %s: %v", pi, n.Label(), err)
			}
			if !s.Order.Empty() && !r.SortedBy(s.Order) {
				t.Errorf("plan %d node %s: claimed order %s not satisfied", pi, n.Label(), s.Order)
			}
			if s.Distinct && r.HasDuplicates() {
				t.Errorf("plan %d node %s: claimed distinct but has duplicates", pi, n.Label())
			}
			if s.SnapshotDistinct && r.HasSnapshotDuplicates() {
				t.Errorf("plan %d node %s: claimed snapshot-distinct but has snapshot duplicates", pi, n.Label())
			}
			if s.Coalesced && r.Temporal() && !r.IsCoalesced() {
				t.Errorf("plan %d node %s: claimed coalesced but is not", pi, n.Label())
			}
		}
		check(plan)
	}
}
