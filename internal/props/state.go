// Package props implements the static reasoning of Sections 5 and 6:
//
//   - State: bottom-up inference of what is statically known about each
//     node's result — its order (Table 1's Order column), duplicate
//     freeness, snapshot-duplicate freeness, and coalescing state. Rule
//     preconditions ("r does not have duplicates in snapshots", D2) consult
//     this state.
//
//   - Props: top-down inference of the paper's three Boolean operation
//     properties (Table 2) — OrderRequired, DuplicatesRelevant,
//     PeriodPreserving — which gate where transformation rules of each
//     equivalence type may be applied (Figure 5).
//
// Props are derived from a single per-node value τ: the weakest of the six
// equivalence types (Section 3) that a replacement of the subtree rooted at
// the node must preserve for the overall plan to stay ≡SQL-correct
// (Definition 5.1). The three booleans are projections of τ, which makes
// the Figure 5 guard exact:
//
//	OrderRequired      = τ ∈ {≡L, ≡SL}
//	DuplicatesRelevant = τ ∈ {≡L, ≡M, ≡SL, ≡SM}
//	PeriodPreserving   = τ ∈ {≡L, ≡M, ≡S}
//
// The full tech report [20] with the authors' formal property definitions
// is unavailable; the propagation rules here are re-derived and chosen to
// be sound (conservative) — see DESIGN.md — and they reproduce the paper's
// worked example (Figures 2 and 6) exactly.
package props

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/expr"
	"tqp/internal/relation"
	"tqp/internal/schema"
)

// Site is where an operation executes in the layered architecture: in the
// stratum, or in the underlying conventional DBMS (below a TS transfer).
type Site uint8

// Execution sites.
const (
	Stratum Site = iota
	DBMS
)

// String renders the site.
func (s Site) String() string {
	if s == DBMS {
		return "dbms"
	}
	return "stratum"
}

// State is what is statically known about one node's result relation.
type State struct {
	// Schema is the node's output schema.
	Schema *schema.Schema
	// Order is the statically guaranteed order of the result (Table 1).
	// For operations executed inside the DBMS it is empty unless the
	// operation is itself a sort: the DBMS gives no order guarantees
	// (Section 4.5), sort being the only exception.
	Order relation.OrderSpec
	// Distinct reports that the result can have no regular duplicates.
	Distinct bool
	// SnapshotDistinct reports that no snapshot of the result can have
	// duplicates; for snapshot relations it coincides with Distinct.
	SnapshotDistinct bool
	// Coalesced reports that the result is coalesced (temporal only).
	Coalesced bool
	// Site is where the operation executes.
	Site Site
}

// States maps every node of one plan to its state. Nodes are compared by
// identity, which is stable because plans are immutable trees.
type States map[algebra.Node]State

// InferStates computes the static state of every node in the plan.
func InferStates(root algebra.Node) (States, error) {
	st := make(States)
	sites := make(map[algebra.Node]Site)
	inferSites(root, Stratum, sites)
	if _, err := inferState(root, st, sites); err != nil {
		return nil, err
	}
	return st, nil
}

// inferSites assigns execution sites: operations below a TS run in the
// DBMS, operations below a TD run in the stratum again.
func inferSites(n algebra.Node, cur Site, out map[algebra.Node]Site) {
	out[n] = cur
	next := cur
	switch n.Op() {
	case algebra.OpTransferS:
		next = DBMS
	case algebra.OpTransferD:
		next = Stratum
	}
	for _, c := range n.Children() {
		inferSites(c, next, out)
	}
}

func inferState(n algebra.Node, out States, sites map[algebra.Node]Site) (State, error) {
	if s, ok := out[n]; ok {
		return s, nil
	}
	sch, err := n.Schema()
	if err != nil {
		return State{}, err
	}
	ch := n.Children()
	cs := make([]State, len(ch))
	for i, c := range ch {
		s, err := inferState(c, out, sites)
		if err != nil {
			return State{}, err
		}
		cs[i] = s
	}
	s := deriveState(n, sch, cs)
	s.Schema = sch
	s.Site = sites[n]
	// Inside the DBMS, only a sort's own result has a usable order
	// guarantee; every other operation's result order is unspecified.
	if s.Site == DBMS && n.Op() != algebra.OpSort {
		s.Order = nil
	}
	if !sch.Temporal() {
		s.SnapshotDistinct = s.Distinct
		s.Coalesced = false
	}
	out[n] = s
	return s, nil
}

// deriveState implements the Order / Duplicates / Coalescing columns of
// Table 1 plus snapshot-duplicate propagation.
func deriveState(n algebra.Node, sch *schema.Schema, cs []State) State {
	switch node := n.(type) {
	case *algebra.Rel:
		return State{
			Order:            node.Info.Order,
			Distinct:         node.Info.Distinct,
			SnapshotDistinct: node.Info.SnapshotDistinct,
			Coalesced:        node.Info.Coalesced,
		}
	case *algebra.Select:
		// σ retains order, duplicates and coalescing.
		return cs[0]
	case *algebra.Project:
		// π's order is Prefix(Order(r), ProjPairs); it generates
		// duplicates and destroys coalescing (projection can coarsen the
		// value-equivalence classes, Figure 3).
		return State{Order: projectedOrder(cs[0].Order, node)}
	case *algebra.Aggregate:
		// 𝒢/𝒢ᵀ eliminate duplicates; their order is
		// Prefix(Order(r), GroupPairs); 𝒢ᵀ destroys coalescing.
		return State{
			Order:            groupPrefixOrder(cs[0].Order, node.GroupBy, n.Op() == algebra.OpAggregate),
			Distinct:         true,
			SnapshotDistinct: true,
		}
	case *algebra.Sort:
		s := cs[0]
		if node.Spec.IsPrefixOf(s.Order) {
			// Special case of Table 1: sorting on a prefix of the existing
			// order keeps the stronger order.
			return s
		}
		s.Order = node.Spec
		return s
	case *algebra.Join:
		return productState(n.Op() == algebra.OpTJoin, cs, sch)
	}

	switch n.Op() {
	case algebra.OpUnionAll:
		// ⊔ is unordered, generates duplicates, destroys coalescing.
		return State{}
	case algebra.OpUnion:
		// ∪ is unordered and retains duplicates: the result is distinct
		// when both arguments are. On temporal arguments value-equivalent
		// tuples from the two sides may still overlap, so snapshot
		// distinctness is not retained.
		return State{Distinct: cs[0].Distinct && cs[1].Distinct}
	case algebra.OpTUnion:
		// ∪ᵀ: per instant each value occurs max(n1,n2) times, so snapshot
		// distinctness is the conjunction; regular distinctness
		// additionally needs the right side snapshot-distinct so that the
		// excess fragments cannot reproduce a left tuple (see eval).
		return State{
			Distinct:         cs[0].Distinct && cs[1].SnapshotDistinct,
			SnapshotDistinct: cs[0].SnapshotDistinct && cs[1].SnapshotDistinct,
		}
	case algebra.OpProduct:
		return productState(false, cs, sch)
	case algebra.OpTProduct:
		return productState(true, cs, sch)
	case algebra.OpDiff:
		// \ retains the left order and duplicates; the result is a
		// snapshot relation (time attributes qualified).
		return State{
			Order:    qualifyTimeOrder(cs[0].Order, sch),
			Distinct: cs[0].Distinct,
		}
	case algebra.OpTDiff:
		// \ᵀ retains the left order (time-free prefix: periods shrink);
		// with a snapshot-distinct left argument every fragment is unique.
		return State{
			Order:            cs[0].Order.TimeFreePrefix(),
			Distinct:         cs[0].SnapshotDistinct,
			SnapshotDistinct: cs[0].SnapshotDistinct,
		}
	case algebra.OpRdup:
		return State{
			Order:            qualifyTimeOrder(cs[0].Order, sch),
			Distinct:         true,
			SnapshotDistinct: true,
		}
	case algebra.OpTRdup:
		// rdupᵀ eliminates duplicates in snapshots (hence also regular
		// ones) and destroys coalescing.
		return State{
			Order:            cs[0].Order.TimeFreePrefix(),
			Distinct:         true,
			SnapshotDistinct: true,
		}
	case algebra.OpCoal:
		// coalᵀ retains order (time-free prefix — merged periods change),
		// retains duplicates and snapshot state, and enforces coalescing.
		return State{
			Order:            cs[0].Order.TimeFreePrefix(),
			Distinct:         cs[0].Distinct,
			SnapshotDistinct: cs[0].SnapshotDistinct,
			Coalesced:        true,
		}
	case algebra.OpTransferS, algebra.OpTransferD:
		// Transfers move data unchanged; the order guarantee of a DBMS
		// subplan survives only when produced by its top sort, which the
		// site handling in inferState enforces on the child itself.
		return cs[0]
	default:
		return State{}
	}
}

func productState(temporal bool, cs []State, sch *schema.Schema) State {
	var order relation.OrderSpec
	if temporal {
		order = productOrder(cs[0].Order.TimeFreePrefix(), cs[1].Schema, sch)
	} else {
		order = productOrder(cs[0].Order, cs[1].Schema, sch)
	}
	s := State{
		Order:    order,
		Distinct: cs[0].Distinct && cs[1].Distinct,
	}
	if temporal {
		s.SnapshotDistinct = cs[0].SnapshotDistinct && cs[1].SnapshotDistinct
	}
	return s
}

// productOrder maps the left argument's order into a product's result
// schema under the "1." qualification of clashing and time attributes.
func productOrder(in relation.OrderSpec, right, outSchema *schema.Schema) relation.OrderSpec {
	var out relation.OrderSpec
	for _, k := range in {
		name := k.Attr
		if name == schema.T1 || name == schema.T2 || (right != nil && right.Has(name)) {
			name = "1." + name
		}
		if !outSchema.Has(name) {
			break
		}
		out = append(out, relation.OrderKey{Attr: name, Dir: k.Dir})
	}
	return out
}

// qualifyTimeOrder renames T1/T2 order keys to their "1." qualified names
// in a snapshot result schema.
func qualifyTimeOrder(in relation.OrderSpec, outSchema *schema.Schema) relation.OrderSpec {
	var out relation.OrderSpec
	for _, k := range in {
		name := k.Attr
		if name == schema.T1 || name == schema.T2 {
			name = "1." + name
		}
		if !outSchema.Has(name) {
			break
		}
		out = append(out, relation.OrderKey{Attr: name, Dir: k.Dir})
	}
	return out
}

// projectedOrder computes Prefix(Order(r), ProjPairs) following renames of
// pure column items, mirroring the evaluator.
func projectedOrder(in relation.OrderSpec, n *algebra.Project) relation.OrderSpec {
	rename := make(map[string]string)
	for _, it := range n.Items {
		if col, ok := it.Expr.(expr.Col); ok {
			if _, seen := rename[col.Name]; !seen {
				rename[col.Name] = it.As
			}
		}
	}
	var out relation.OrderSpec
	for _, k := range in {
		newName, ok := rename[k.Attr]
		if !ok {
			break
		}
		out = append(out, relation.OrderKey{Attr: newName, Dir: k.Dir})
	}
	return out
}

// groupPrefixOrder computes Prefix(Order(r), GroupPairs); conventional
// aggregation over a temporal argument renames grouped time attributes.
func groupPrefixOrder(in relation.OrderSpec, groupBy []string, conventional bool) relation.OrderSpec {
	out := in.Prefix(groupBy)
	if conventional {
		out = out.Rename(schema.T1, "1."+schema.T1).Rename(schema.T2, "1."+schema.T2)
	}
	return out
}

// StateError reports a missing node in a States map — a sign that the map
// was computed for a different plan.
type StateError struct{ Node algebra.Node }

func (e *StateError) Error() string {
	return fmt.Sprintf("props: no state for node %s", e.Node.Label())
}
