package props

import (
	"fmt"

	"tqp/internal/algebra"
	"tqp/internal/equiv"
	"tqp/internal/expr"
	"tqp/internal/schema"
)

// Props carries the paper's three Boolean operation properties (Table 2)
// for one node, together with the underlying required-equivalence τ they
// project from.
type Props struct {
	// Tau is the weakest equivalence type a replacement of this subtree
	// must preserve.
	Tau equiv.Type
	// OrderRequired: the result of the operation must preserve some order.
	OrderRequired bool
	// DuplicatesRelevant: the operation cannot arbitrarily add or remove
	// regular duplicates.
	DuplicatesRelevant bool
	// PeriodPreserving: the operation cannot replace its result with a
	// snapshot-equivalent one.
	PeriodPreserving bool
}

// Vector renders the properties in the bracketed style of Figure 6:
// [OrderRequired DuplicatesRelevant PeriodPreserving], T for true and - for
// false.
func (p Props) Vector() string {
	b := func(v bool) byte {
		if v {
			return 'T'
		}
		return '-'
	}
	return fmt.Sprintf("[%c %c %c]", b(p.OrderRequired), b(p.DuplicatesRelevant), b(p.PeriodPreserving))
}

func fromTau(t equiv.Type) Props {
	return Props{
		Tau:                t,
		OrderRequired:      t == equiv.List || t == equiv.SnapshotList,
		DuplicatesRelevant: t == equiv.List || t == equiv.Multiset || t == equiv.SnapshotList || t == equiv.SnapshotMultiset,
		PeriodPreserving:   t == equiv.List || t == equiv.Multiset || t == equiv.Set,
	}
}

// PropsMap maps every node of a plan to its properties.
type PropsMap map[algebra.Node]Props

// Infer computes the properties of every node for a query with the given
// result type (Definition 5.1). It is re-run after each rewrite — the
// paper adjusts properties locally, which is an optimization of the same
// computation.
func Infer(root algebra.Node, rt equiv.ResultType, st States) (PropsMap, error) {
	if st == nil {
		var err error
		st, err = InferStates(root)
		if err != nil {
			return nil, err
		}
	}
	pm := make(PropsMap)
	propagate(root, rt.Guard(), st, pm)
	return pm, nil
}

// propagate assigns τ to n and derives each child's τ per the operation's
// semantics; see DESIGN.md for the derivations.
func propagate(n algebra.Node, tau equiv.Type, st States, pm PropsMap) {
	if old, ok := pm[n]; ok {
		// A node reachable twice (shared subtree) keeps the strongest
		// requirement.
		tau = strongest(old.Tau, tau)
	}
	pm[n] = fromTau(tau)
	ch := n.Children()
	if len(ch) == 0 {
		return
	}
	switch node := n.(type) {
	case *algebra.Select:
		// Time-free selections are snapshot-reducible; selections that
		// inspect T1/T2 pin the argument's exact periods.
		if expr.UsesTime(node.P) {
			propagate(ch[0], toNonSnapshot(tau), st, pm)
		} else {
			propagate(ch[0], tau, st, pm)
		}
		return
	case *algebra.Project:
		if periodTransparent(node) {
			propagate(ch[0], tau, st, pm)
		} else {
			// The projection reads periods as data or drops them; either
			// way the argument's exact periods matter.
			propagate(ch[0], toNonSnapshot(tau), st, pm)
		}
		return
	case *algebra.Sort:
		// Everything below a sort may be reordered freely (Section 5.2).
		propagate(ch[0], dropOrder(tau), st, pm)
		return
	case *algebra.Aggregate:
		propagate(ch[0], aggregateChildTau(tau, node), st, pm)
		return
	case *algebra.Join:
		// Join idioms behave as σ∘× — period values become data.
		l, r := toNonSnapshot(tau), toNonSnapshot(tau)
		propagate(ch[0], l, st, pm)
		propagate(ch[1], r, st, pm)
		return
	}

	switch n.Op() {
	case algebra.OpRdup:
		// rdup makes the argument's duplicate counts immaterial, but its
		// list output still follows the argument's list.
		if tau == equiv.List {
			propagate(ch[0], equiv.List, st, pm)
		} else {
			propagate(ch[0], dropDups(tau), st, pm)
		}
	case algebra.OpTRdup:
		// rdupᵀ is order-sensitive: its multiset output depends on the
		// argument's tuple distribution, so non-snapshot requirements
		// strengthen to ≡L. Its snapshots, however, are canonical — the
		// per-instant set of the argument — so snapshot requirements relax:
		// ≡SM (its output never has snapshot duplicates) becomes ≡SS below.
		switch tau {
		case equiv.SnapshotList:
			propagate(ch[0], equiv.SnapshotList, st, pm)
		case equiv.SnapshotMultiset, equiv.SnapshotSet:
			propagate(ch[0], equiv.SnapshotSet, st, pm)
		default:
			propagate(ch[0], equiv.List, st, pm)
		}
	case algebra.OpCoal:
		propagate(ch[0], coalChildTau(tau, st[ch[0]]), st, pm)
	case algebra.OpTDiff:
		leftTau, rightTau := tdiffChildTaus(tau, st[ch[0]])
		propagate(ch[0], leftTau, st, pm)
		propagate(ch[1], rightTau, st, pm)
	case algebra.OpDiff:
		// Conventional difference: the left side's duplicates always
		// matter (counts decide survival); the right side contributes only
		// its multiset.
		l := tau
		if l == equiv.Set {
			l = equiv.Multiset
		}
		propagate(ch[0], l, st, pm)
		propagate(ch[1], equiv.Multiset, st, pm)
	case algebra.OpProduct:
		propagate(ch[0], toNonSnapshot(tau), st, pm)
		propagate(ch[1], toNonSnapshot(tau), st, pm)
	case algebra.OpTProduct:
		// ×ᵀ retains its arguments' timestamps as data (1.T1 …), so even
		// snapshot requirements pin the arguments' exact periods.
		propagate(ch[0], toNonSnapshot(tau), st, pm)
		propagate(ch[1], toNonSnapshot(tau), st, pm)
	case algebra.OpUnionAll:
		// ⊔ is fully transparent: snapshots concatenate pointwise.
		propagate(ch[0], tau, st, pm)
		propagate(ch[1], tau, st, pm)
	case algebra.OpUnion:
		// ∪ compares whole tuples (periods as identity), so snapshot
		// requirements strengthen; set-level requirements survive (max ≥ 1
		// iff present in either side).
		u := toNonSnapshot(tau)
		propagate(ch[0], u, st, pm)
		propagate(ch[1], u, st, pm)
	case algebra.OpTUnion:
		l, r := tunionChildTau(tau), tunionChildTau(tau)
		propagate(ch[0], l, st, pm)
		propagate(ch[1], r, st, pm)
	case algebra.OpTransferS, algebra.OpTransferD:
		propagate(ch[0], tau, st, pm)
	default:
		// Unknown operator: require full list equivalence below.
		for _, c := range ch {
			propagate(c, equiv.List, st, pm)
		}
	}
}

// aggregateChildTau derives the argument requirement of 𝒢/𝒢ᵀ.
func aggregateChildTau(tau equiv.Type, n *algebra.Aggregate) equiv.Type {
	dupInsensitive := true
	for _, a := range n.Aggs {
		if !a.Func.DuplicateInsensitive() {
			dupInsensitive = false
		}
	}
	temporal := n.Op() == algebra.OpTAggregate
	switch tau {
	case equiv.List:
		return equiv.List
	case equiv.Multiset:
		return equiv.Multiset
	case equiv.Set:
		// COUNT/SUM/AVG read duplicate counts; MIN/MAX do not.
		if dupInsensitive {
			return equiv.Set
		}
		return equiv.Multiset
	case equiv.SnapshotList:
		// Output snapshot lists depend on global first-seen group order;
		// be conservative.
		return equiv.List
	case equiv.SnapshotMultiset:
		if temporal {
			return equiv.SnapshotMultiset
		}
		return equiv.Multiset
	default: // SnapshotSet
		if temporal && dupInsensitive {
			return equiv.SnapshotSet
		}
		if temporal {
			return equiv.SnapshotMultiset
		}
		return equiv.Multiset
	}
}

// coalChildTau derives the argument requirement of coalᵀ. When the
// argument is known to be snapshot-duplicate-free, coalescing returns a
// canonical relation for every snapshot-equivalent argument (Section 5.2),
// so multiset- and set-level requirements relax into their snapshot
// counterparts — the paper's "periods need not be preserved below
// coalescing".
func coalChildTau(tau equiv.Type, child State) equiv.Type {
	canonical := child.SnapshotDistinct
	switch tau {
	case equiv.List:
		return equiv.List
	case equiv.Multiset:
		if canonical {
			return equiv.SnapshotMultiset
		}
		return equiv.Multiset
	case equiv.Set:
		if canonical {
			return equiv.SnapshotSet
		}
		// Duplicate counts influence which tuples merge.
		return equiv.Multiset
	case equiv.SnapshotList:
		return equiv.List
	default: // SnapshotMultiset, SnapshotSet: coalescing never changes snapshots (C2)
		return tau
	}
}

// tdiffChildTaus derives the argument requirements of \ᵀ. The right
// argument only ever contributes per-instant counts — order and periods
// need not be preserved there, and with a snapshot-duplicate-free left
// argument only per-instant presence matters (the paper's Figure 2
// shading). The left argument keeps duplicate-level requirements because
// "temporal difference is sensitive to duplicates in its left argument".
func tdiffChildTaus(tau equiv.Type, left State) (equiv.Type, equiv.Type) {
	right := equiv.SnapshotMultiset
	if left.SnapshotDistinct {
		right = equiv.SnapshotSet
	}
	var l equiv.Type
	switch tau {
	case equiv.List:
		l = equiv.List
	case equiv.Multiset:
		if left.SnapshotDistinct {
			l = equiv.Multiset
		} else {
			// The output multiset depends on the left tuple distribution.
			l = equiv.List
		}
	case equiv.Set:
		if left.SnapshotDistinct {
			l = equiv.Multiset
		} else {
			l = equiv.List
		}
	case equiv.SnapshotList:
		l = equiv.SnapshotList
	case equiv.SnapshotMultiset:
		l = equiv.SnapshotMultiset
	default: // SnapshotSet
		l = equiv.SnapshotMultiset
	}
	return l, right
}

// tunionChildTau derives the argument requirements of ∪ᵀ.
func tunionChildTau(tau equiv.Type) equiv.Type {
	switch tau {
	case equiv.List, equiv.SnapshotList:
		return equiv.List
	case equiv.Multiset:
		return equiv.Multiset
	case equiv.Set:
		return equiv.Multiset
	default: // SnapshotMultiset, SnapshotSet
		return tau
	}
}

// periodTransparent reports whether a projection keeps the reserved time
// attributes as identity columns and mentions them nowhere else — the
// condition for π to be snapshot-reducible.
func periodTransparent(n *algebra.Project) bool {
	keepsT1, keepsT2 := false, false
	for _, it := range n.Items {
		col, isCol := it.Expr.(expr.Col)
		switch {
		case isCol && col.Name == schema.T1 && it.As == schema.T1:
			keepsT1 = true
		case isCol && col.Name == schema.T2 && it.As == schema.T2:
			keepsT2 = true
		case expr.UsesTime(it.Expr):
			return false
		case it.As == schema.T1 || it.As == schema.T2:
			// A non-time expression aliased to a reserved name fabricates
			// periods.
			return false
		}
	}
	return keepsT1 && keepsT2
}

func toNonSnapshot(t equiv.Type) equiv.Type {
	switch t {
	case equiv.SnapshotList:
		return equiv.List
	case equiv.SnapshotMultiset:
		return equiv.Multiset
	case equiv.SnapshotSet:
		return equiv.Set
	default:
		return t
	}
}

func dropOrder(t equiv.Type) equiv.Type {
	switch t {
	case equiv.List:
		return equiv.Multiset
	case equiv.SnapshotList:
		return equiv.SnapshotMultiset
	default:
		return t
	}
}

func dropDups(t equiv.Type) equiv.Type {
	switch t {
	case equiv.List, equiv.Multiset:
		return equiv.Set
	case equiv.SnapshotList, equiv.SnapshotMultiset:
		return equiv.SnapshotSet
	default:
		return t
	}
}

// strongest returns the stronger of two requirements under Theorem 3.1's
// lattice; incomparable pairs resolve to ≡L (always sufficient).
func strongest(a, b equiv.Type) equiv.Type {
	if a == b || a.Implies(b) {
		return a
	}
	if b.Implies(a) {
		return b
	}
	return equiv.List
}

// Applicable implements the guard of the enumeration algorithm (Figure 5):
// whether a transformation rule of equivalence type rt may be applied at a
// location whose participating operations have the given properties.
func Applicable(rt equiv.Type, ops []Props) bool {
	for _, p := range ops {
		switch rt {
		case equiv.List:
			// No restrictions.
		case equiv.Multiset:
			if p.OrderRequired {
				return false
			}
		case equiv.Set:
			if p.DuplicatesRelevant || p.OrderRequired {
				return false
			}
		case equiv.SnapshotList:
			if p.PeriodPreserving {
				return false
			}
		case equiv.SnapshotMultiset:
			if p.OrderRequired || p.PeriodPreserving {
				return false
			}
		case equiv.SnapshotSet:
			if p.DuplicatesRelevant || p.OrderRequired || p.PeriodPreserving {
				return false
			}
		}
	}
	return true
}
