package relation

import (
	"sync"
	"testing"

	"tqp/internal/schema"
	"tqp/internal/value"
)

func twoRowRelation(t *testing.T) *Relation {
	t.Helper()
	s := schema.MustNew(schema.Attr("K", value.KindInt))
	return MustFromRows(s, [][]any{{2}, {1}})
}

// TestColumnarImageStaleAfterSort pins the check-then-act race of the
// columnar scan cache as a deterministic interleaving: an engine reads the
// tuple list and starts converting, a concurrent SortStable permutes the
// list and invalidates the cache, and the engine then stores its pre-sort
// image. The row count is unchanged, so a staleness check based on it
// accepts the stale image and serves pre-sort order to every later query.
// The cache must reject the late store instead.
func TestColumnarImageStaleAfterSort(t *testing.T) {
	r := twoRowRelation(t)

	// Engine: observes the pre-sort tuple list and begins converting.
	v := r.ColumnarVersion()
	staleImg := append([]Tuple(nil), r.Tuples()...)

	// Concurrent writer: permutes the list, invalidating the cache.
	if err := r.SortStable(OrderSpec{Key("K")}); err != nil {
		t.Fatal(err)
	}

	// Engine: finishes and stores the image built from the pre-sort list.
	r.SetColumnarImage(staleImg, v)

	if got := r.ColumnarImage(); got != nil {
		t.Fatalf("cache served an image stored against the pre-sort list: %v", got)
	}
}

// TestColumnarImageVersionMonotonic checks that the version counter never
// re-admits an image across a mutate-and-restore cycle: sorting back to the
// original order must still reject an image captured before the first sort
// (the rows check cannot distinguish the two states; a monotonic counter
// can).
func TestColumnarImageVersionMonotonic(t *testing.T) {
	r := twoRowRelation(t)
	v := r.ColumnarVersion()

	if err := r.SortStable(OrderSpec{Key("K")}); err != nil {
		t.Fatal(err)
	}
	if err := r.SortStable(OrderSpec{KeyDesc("K")}); err != nil {
		t.Fatal(err)
	}

	r.SetColumnarImage("image-of-the-original-list", v)
	if got := r.ColumnarImage(); got != nil {
		t.Fatalf("cache re-admitted an image from before two sorts: %v", got)
	}

	// A store made against the current version is accepted…
	v2 := r.ColumnarVersion()
	r.SetColumnarImage("fresh", v2)
	if got := r.ColumnarImage(); got != "fresh" {
		t.Fatalf("cache rejected a fresh image: %v", got)
	}
	// …and dropped by the next mutation.
	r.Append(Tuple{value.Int(3)})
	if got := r.ColumnarImage(); got != nil {
		t.Fatalf("cache survived Append: %v", got)
	}
}

// TestColumnarImageConcurrentSortAndStore stresses the cache under the race
// detector: builders repeatedly capture a version, snapshot the first tuple,
// and store an image; a writer flips the sort order between rounds. At every
// point a served image must have been stored at the relation's then-current
// version, so after the writer's final sort the cache can only hold an image
// stored after it.
func TestColumnarImageConcurrentSortAndStore(t *testing.T) {
	r := twoRowRelation(t)
	asc := OrderSpec{Key("K")}
	desc := OrderSpec{KeyDesc("K")}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := r.ColumnarVersion()
				r.SetColumnarImage(v, v)
				if got := r.ColumnarImage(); got != nil {
					// A served image must carry the version it was stored
					// at; the load path guarantees it matches the current
					// version at the moment of the check.
					if _, ok := got.(uint64); !ok {
						t.Errorf("cache holds a foreign image: %v", got)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		spec := asc
		if i%2 == 1 {
			spec = desc
		}
		if err := r.SortStable(spec); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: one final mutation, then no builder runs again — the cache
	// must be empty, not holding any image stored against an older list.
	if err := r.SortStable(asc); err != nil {
		t.Fatal(err)
	}
	if got := r.ColumnarImage(); got != nil {
		t.Fatalf("cache holds an image from before the final sort: %v", got)
	}
}
