package relation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tqp/internal/period"
	"tqp/internal/schema"
	"tqp/internal/value"
)

// randomValue draws a value from a deliberately collision-prone pool: small
// domains across every kind, including integral floats (which compare equal
// to ints), period endpoints, and the NOW sentinel of NOW-relative
// relations.
func randomValue(rng *rand.Rand) value.Value {
	switch rng.Intn(7) {
	case 0:
		return value.Int(int64(rng.Intn(5)))
	case 1:
		return value.Float(float64(rng.Intn(5))) // integral: equal to the int
	case 2:
		return value.Float(float64(rng.Intn(5)) + 0.5)
	case 3:
		return value.String_(fmt.Sprintf("v%d", rng.Intn(5)))
	case 4:
		return value.Bool(rng.Intn(2) == 0)
	case 5:
		return value.Time(period.Chronon(rng.Intn(5)))
	default:
		return value.Time(period.NowMarker)
	}
}

// TestValueHashAgreesWithEquality is the property anchoring every hash
// operator: for all value pairs across all kinds, Equal (i.e. Compare == 0)
// implies equal hashes, and the hash agrees with the Key string's equality.
func TestValueHashAgreesWithEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20000; trial++ {
		a, b := randomValue(rng), randomValue(rng)
		if a.Equal(b) != (a.Compare(b) == 0) {
			t.Fatalf("Equal and Compare disagree for %s vs %s", a, b)
		}
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("%s and %s are equal but hash differently (%x vs %x)", a, b, a.Hash(), b.Hash())
		}
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("Key equality disagrees with Equal for %s vs %s", a, b)
		}
	}
}

// TestNumericCrossKindHash pins the subtle case: SQL comparison semantics
// make int 3 and float 3.0 equal, so they must share a hash while float 3.5
// must not collide with either by construction.
func TestNumericCrossKindHash(t *testing.T) {
	for i := int64(-4); i <= 4; i++ {
		vi, vf := value.Int(i), value.Float(float64(i))
		if !vi.Equal(vf) {
			t.Fatalf("int %d and float %d must be equal", i, i)
		}
		if vi.Hash() != vf.Hash() {
			t.Fatalf("int %d and float %d hash differently", i, i)
		}
		frac := value.Float(float64(i) + 0.5)
		if vi.Equal(frac) {
			t.Fatalf("int %d and float %g must differ", i, float64(i)+0.5)
		}
	}
}

// TestExtremeNumericConsistency pins the Equal ⇔ Key ⇒ Hash triangle at the
// numeric extremes where float64 loses integer precision: distinct int64s
// beyond 2^53 must stay distinct (comparison is exact, not via float64),
// floats at/beyond ±2^63 must not collapse onto the extreme ints, and every
// NaN payload is one self-equal value sorted below all numbers.
func TestExtremeNumericConsistency(t *testing.T) {
	check := func(a, b value.Value) {
		t.Helper()
		if a.Equal(b) != (a.Key() == b.Key()) {
			t.Fatalf("Equal/Key disagree for %s vs %s", a, b)
		}
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("%s and %s equal but hash differently", a, b)
		}
	}
	big := int64(1) << 62
	check(value.Int(big), value.Int(big+1)) // must be distinct
	if value.Int(big).Equal(value.Int(big + 1)) {
		t.Fatal("2^62 and 2^62+1 must not be equal")
	}
	check(value.Int(big), value.Float(float64(big))) // exactly equal
	if !value.Int(big).Equal(value.Float(float64(big))) {
		t.Fatal("2^62 and float 2^62 must be equal")
	}
	const two63 = 9223372036854775808.0
	check(value.Int(1<<63-1), value.Float(two63)) // maxint64 vs 2^63: distinct
	if value.Int(1<<63 - 1).Equal(value.Float(two63)) {
		t.Fatal("maxint64 must not equal float 2^63")
	}
	check(value.Int(-1<<63), value.Float(-two63)) // minint64 == -2^63 exactly
	if !value.Int(-1 << 63).Equal(value.Float(-two63)) {
		t.Fatal("minint64 must equal float -2^63")
	}
	nan := value.Float(math.NaN())
	check(nan, nan)
	if !nan.Equal(nan) {
		t.Fatal("NaN must equal itself (total order)")
	}
	if nan.Compare(value.Int(0)) != -1 || value.Int(0).Compare(nan) != 1 {
		t.Fatal("NaN must sort below every number")
	}
	check(nan, value.Float(math.Inf(1)))
	check(value.Float(math.Inf(1)), value.Int(1<<63-1))
	if value.Float(math.Inf(1)).Compare(value.Int(1<<63-1)) != 1 {
		t.Fatal("+Inf must sort above maxint64")
	}
}

// TestTupleHashAgreesWithEquality checks the tuple-level properties over
// random temporal tuples: Equal ⇒ Hash equal, EqualOn ⇒ HashOn equal, and
// the hash respects period rewrites (WithPeriodAt) the temporal operators
// perform — including binding NOW-relative ends.
func TestTupleHashAgreesWithEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := schema.MustNew(
		schema.Attr("Name", value.KindString),
		schema.Attr("Grp", value.KindInt),
		schema.Attr(schema.T1, value.KindTime),
		schema.Attr(schema.T2, value.KindTime))
	t1, t2 := s.TimeIndices()
	vidx := []int{0, 1}
	randomTuple := func() Tuple {
		end := period.Chronon(3 + rng.Intn(4))
		if rng.Intn(4) == 0 {
			end = period.NowMarker
		}
		return NewTuple(
			value.String_(fmt.Sprintf("v%d", rng.Intn(3))),
			value.Int(int64(rng.Intn(3))),
			value.Time(period.Chronon(rng.Intn(3))),
			value.Time(end))
	}
	for trial := 0; trial < 20000; trial++ {
		a, b := randomTuple(), randomTuple()
		if a.Equal(b) && a.Hash() != b.Hash() {
			t.Fatalf("%s and %s are equal but hash differently", a, b)
		}
		if (a.Key() == b.Key()) != a.Equal(b) {
			t.Fatalf("Key equality disagrees with Equal for %s vs %s", a, b)
		}
		if a.EqualOn(vidx, b) && a.HashOn(vidx) != b.HashOn(vidx) {
			t.Fatalf("%s and %s are value-equivalent but HashOn differs", a, b)
		}
		// Rewriting both tuples' periods identically must preserve both
		// equality and hash agreement; binding NOW keeps them comparable.
		p := a.PeriodAt(t1, t2).BindNow(5)
		ra, rb := a.WithPeriodAt(t1, t2, p), b.WithPeriodAt(t1, t2, p)
		if ra.EqualOn(vidx, rb) != a.EqualOn(vidx, rb) {
			t.Fatalf("period rewrite changed value equivalence of %s", a)
		}
		if ra.Equal(rb) && ra.Hash() != rb.Hash() {
			t.Fatalf("period-rewritten tuples %s and %s hash differently", ra, rb)
		}
	}
}

// TestTupleHashDistribution guards against a degenerate Hash (e.g. constant)
// sneaking in: across a modest pool of distinct tuples the number of
// distinct hashes must match the number of distinct keys.
func TestTupleHashDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hashes := make(map[uint64]string)
	keys := make(map[string]bool)
	collisions := 0
	for trial := 0; trial < 5000; trial++ {
		tp := NewTuple(
			value.String_(fmt.Sprintf("n%d", rng.Intn(50))),
			value.Int(int64(rng.Intn(50))),
			value.Time(period.Chronon(rng.Intn(50))),
			value.Time(period.Chronon(50+rng.Intn(50))))
		k := tp.Key()
		h := tp.Hash()
		if prev, ok := hashes[h]; ok && prev != k {
			collisions++
		}
		hashes[h] = k
		keys[k] = true
	}
	if collisions > 0 {
		t.Fatalf("%d hash collisions across %d distinct tuples — hash quality regression", collisions, len(keys))
	}
}
