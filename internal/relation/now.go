package relation

// BindNow returns a copy of a temporal relation in which every
// NOW-relative tuple (period end = period.NowMarker) is bound to the given
// reference instant; tuples whose bound period is empty (facts that had not
// yet started as of the instant) are dropped. Non-temporal relations are
// returned unchanged. This implements the stratum-side "as of" view the
// paper's future-work section points to (Section 7).
import "tqp/internal/period"

// BindNow materializes the relation as of the given instant.
func (r *Relation) BindNow(now period.Chronon) *Relation {
	if !r.Temporal() {
		return r.Clone()
	}
	t1, t2 := r.schema.TimeIndices()
	out := New(r.schema)
	for i, t := range r.tuples {
		p := r.PeriodOf(i).BindNow(now)
		if p.Empty() {
			continue
		}
		if p.Equal(r.PeriodOf(i)) {
			out.Append(t)
		} else {
			out.Append(t.WithPeriodAt(t1, t2, p))
		}
	}
	out.SetOrder(r.order)
	return out
}

// HasNowRelative reports whether any tuple's period ends at the NOW
// sentinel.
func (r *Relation) HasNowRelative() bool {
	if !r.Temporal() {
		return false
	}
	for i := range r.tuples {
		if r.PeriodOf(i).IsNowRelative() {
			return true
		}
	}
	return false
}
