package relation

import (
	"testing"

	"tqp/internal/period"
)

func nowSample() *Relation {
	r := MustFromRows(temporalSchema(), [][]any{
		{"a", 1, 1, 4},                     // closed fact
		{"b", 2, 3, int(period.NowMarker)}, // still true
		{"c", 3, 9, int(period.NowMarker)}, // starts later than some reference instants
	})
	return r
}

func TestBindNow(t *testing.T) {
	r := nowSample()
	if !r.HasNowRelative() {
		t.Fatal("sample holds NOW-relative tuples")
	}
	asOf7 := r.BindNow(7)
	if asOf7.HasNowRelative() {
		t.Error("binding must remove every sentinel")
	}
	if asOf7.Len() != 2 {
		t.Fatalf("as of 7: c has not started yet:\n%s", asOf7)
	}
	if p := asOf7.PeriodOf(1); !p.Equal(period.New(3, 7)) {
		t.Errorf("b bound to %s, want [3,7)", p)
	}
	if p := asOf7.PeriodOf(0); !p.Equal(period.New(1, 4)) {
		t.Errorf("closed facts must be untouched, got %s", p)
	}

	asOf12 := r.BindNow(12)
	if asOf12.Len() != 3 {
		t.Fatalf("as of 12 all facts exist:\n%s", asOf12)
	}
	if p := asOf12.PeriodOf(2); !p.Equal(period.New(9, 12)) {
		t.Errorf("c bound to %s, want [9,12)", p)
	}
}

func TestBindNowPreservesOrderSpec(t *testing.T) {
	r := nowSample()
	spec := OrderSpec{Key("Name")}
	if err := r.SortStable(spec); err != nil {
		t.Fatal(err)
	}
	bound := r.BindNow(10)
	if !bound.Order().Equal(spec) {
		t.Errorf("BindNow dropped the order spec: %s", bound.Order())
	}
	if !bound.SortedBy(spec) {
		t.Error("bound relation must stay sorted")
	}
}

func TestBindNowOnConventional(t *testing.T) {
	s := nowSample().Snapshot(3)
	if s.HasNowRelative() {
		t.Error("snapshots carry no periods")
	}
	if got := s.BindNow(5); got.Len() != s.Len() {
		t.Error("binding a conventional relation is the identity")
	}
}

func TestPeriodBindNow(t *testing.T) {
	open := period.New(3, period.NowMarker)
	if !open.IsNowRelative() {
		t.Fatal("IsNowRelative")
	}
	if p := open.BindNow(8); !p.Equal(period.New(3, 8)) {
		t.Errorf("bound = %s", p)
	}
	if p := open.BindNow(3); !p.Empty() {
		t.Errorf("a fact starting at the reference instant is empty, got %s", p)
	}
	closed := period.New(1, 5)
	if closed.IsNowRelative() || !closed.BindNow(3).Equal(closed) {
		t.Error("closed periods are untouched")
	}
}
