package relation

import (
	"strings"

	"tqp/internal/schema"
)

// Direction is a sort direction, ASC or DESC.
type Direction uint8

// Sort directions.
const (
	Asc Direction = iota
	Desc
)

// String renders the direction as in the paper's order lists ("A ASC").
func (d Direction) String() string {
	if d == Desc {
		return "DESC"
	}
	return "ASC"
}

// OrderKey pairs an attribute with a sort direction.
type OrderKey struct {
	Attr string
	Dir  Direction
}

// String renders "Attr ASC" / "Attr DESC".
func (k OrderKey) String() string { return k.Attr + " " + k.Dir.String() }

// OrderSpec is the paper's Order(r): a list of attributes paired with a
// sorting type. An empty spec denotes an unordered relation.
type OrderSpec []OrderKey

// Key is shorthand for an ascending OrderKey.
func Key(attr string) OrderKey { return OrderKey{Attr: attr, Dir: Asc} }

// KeyDesc is shorthand for a descending OrderKey.
func KeyDesc(attr string) OrderKey { return OrderKey{Attr: attr, Dir: Desc} }

// Empty reports whether the spec denotes an unordered relation.
func (o OrderSpec) Empty() bool { return len(o) == 0 }

// Equal reports element-wise equality of two specs.
func (o OrderSpec) Equal(p OrderSpec) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf implements the paper's IsPrefixOf predicate (Section 4.4): it
// reports whether o is a prefix of p.
func (o OrderSpec) IsPrefixOf(p OrderSpec) bool {
	if len(o) > len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Prefix implements the paper's Prefix function (Table 1): the largest
// prefix of o whose attributes all belong to keep. For example, a relation
// sorted on A, B, C projected on {A, C} is sorted on A.
func (o OrderSpec) Prefix(keep []string) OrderSpec {
	keepSet := make(map[string]bool, len(keep))
	for _, k := range keep {
		keepSet[k] = true
	}
	var out OrderSpec
	for _, k := range o {
		if !keepSet[k.Attr] {
			break
		}
		out = append(out, k)
	}
	return out
}

// TimeFreePrefix returns the largest prefix of o that mentions neither T1
// nor T2. Table 1 writes the order of period-modifying operations (×ᵀ, \ᵀ,
// rdupᵀ, coalᵀ) as "Order(r) \ TimePairs"; removing interior time attributes
// is not sound for a list invariant, so we take the largest time-free
// prefix, which is (see DESIGN.md) and agrees with every example in the
// paper.
func (o OrderSpec) TimeFreePrefix() OrderSpec {
	var out OrderSpec
	for _, k := range o {
		if k.Attr == schema.T1 || k.Attr == schema.T2 {
			break
		}
		out = append(out, k)
	}
	return out
}

// Rename returns a copy of the spec with attribute old renamed to new.
func (o OrderSpec) Rename(old, new string) OrderSpec {
	out := make(OrderSpec, len(o))
	for i, k := range o {
		if k.Attr == old {
			k.Attr = new
		}
		out[i] = k
	}
	return out
}

// Attrs returns the attribute names in the spec, in order.
func (o OrderSpec) Attrs() []string {
	out := make([]string, len(o))
	for i, k := range o {
		out[i] = k.Attr
	}
	return out
}

// String renders "⟨A ASC, B DESC⟩"; "⟨⟩" for unordered.
func (o OrderSpec) String() string {
	if len(o) == 0 {
		return "⟨⟩"
	}
	parts := make([]string, len(o))
	for i, k := range o {
		parts[i] = k.String()
	}
	return "⟨" + strings.Join(parts, ", ") + "⟩"
}

// Validate checks that every attribute in the spec exists in s.
func (o OrderSpec) Validate(s *schema.Schema) error {
	for _, k := range o {
		if !s.Has(k.Attr) {
			return &UnknownAttrError{Attr: k.Attr, Schema: s}
		}
	}
	return nil
}

// UnknownAttrError reports an order key over a missing attribute.
type UnknownAttrError struct {
	Attr   string
	Schema *schema.Schema
}

func (e *UnknownAttrError) Error() string {
	return "relation: order key over unknown attribute " + e.Attr + " in schema " + e.Schema.String()
}
